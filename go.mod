module polyraptor

go 1.24
