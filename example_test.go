package polyraptor_test

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"polyraptor"
)

// ExampleEncodeObject demonstrates the systematic rateless codec:
// source symbols come back verbatim, and any lost symbol is replaced
// by a fresh repair symbol rather than a retransmission.
func ExampleEncodeObject() {
	object := []byte("polyraptor: path and data redundancy for data centres!!")
	enc, err := polyraptor.EncodeObject(object, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	layout := enc.Layout()
	fmt.Println("blocks:", layout.Z(), "source symbols:", layout.TotalSymbols())

	dec, err := polyraptor.NewObjectDecoder(layout)
	if err != nil {
		log.Fatal(err)
	}
	// Deliver the source symbols, "losing" ESI 2; add repair symbols
	// until the block decodes.
	k := layout.K[0]
	for esi := 0; esi < k; esi++ {
		if esi == 2 {
			continue // eaten by a congested queue
		}
		dec.AddSymbol(0, uint32(esi), enc.Symbol(0, uint32(esi)))
	}
	esi := uint32(k)
	for !dec.TryDecode() {
		dec.AddSymbol(0, esi, enc.Symbol(0, esi))
		esi++
	}
	got, err := dec.Object()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(got))
	// Output:
	// blocks: 1 source symbols: 7
	// polyraptor: path and data redundancy for data centres!!
}

// ExampleFetch transfers an object over loopback UDP with the
// pull-based protocol.
func ExampleFetch() {
	object := []byte("an object worth replicating")
	srvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := polyraptor.NewServer(srvConn, object, polyraptor.DefaultTransportConfig())
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := polyraptor.Fetch(ctx, conn, srv.Addr(), 1, polyraptor.DefaultTransportConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(got))
	// Output:
	// an object worth replicating
}

// ExampleFigure1c regenerates a miniature of the paper's incast
// figure.
func ExampleFigure1c() {
	opt := polyraptor.IncastOptions{
		FatTreeK:       4,
		SenderCounts:   []int{4},
		BytesPerSender: []int64{70 << 10},
		Repetitions:    1,
		Seed:           1,
		Trimming:       true,
	}
	for _, s := range polyraptor.Figure1c(opt) {
		ok := "collapsed"
		if s.Y[0] > 0.5 {
			ok = "healthy"
		}
		fmt.Println(s.Label, ok)
	}
	// Output:
	// RQ 70KB healthy
	// TCP 70KB healthy
}
