// Command polysim runs a single Polyraptor, TCP or DCTCP scenario on a
// simulated fabric and prints per-session results — the exploratory
// companion to polybench's fixed figures. With -runs N it repeats the
// scenario over N SplitMix-derived sub-seeds on the sweep engine's
// worker pool and prints aggregated statistics (mean, CI95, tails)
// instead of per-receiver detail.
//
// Examples:
//
//	polysim -proto rq  -pattern unicast     -bytes 4194304
//	polysim -proto rq  -pattern multicast   -replicas 3
//	polysim -proto rq  -pattern multisource -replicas 3
//	polysim -proto rq  -pattern incast      -senders 32 -bytes 262144
//	polysim -proto tcp -pattern incast      -senders 32 -bytes 262144
//	polysim -proto rq  -pattern multicast -replicas 5 -detach
//	polysim -proto rq  -pattern incast -runs 5            # 5 seeds, parallel, aggregated
//	polysim -proto rq  -pattern incast -runs 5 -parallel 1
//	polysim -proto tcp -pattern incast -trace             # PolyScope trace of the run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/sweep"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// scenario bundles one polysim configuration.
type scenario struct {
	proto    string
	pattern  string
	k        int
	bytes    int64
	replicas int
	senders  int
	detach   bool
	trim     bool
	// traceBase, when non-empty, attaches a PolyScope trace to the run
	// and writes the export set (<traceBase>.trace.json, ...) after it.
	traceBase string
}

// run is main with its dependencies injected, so tests can drive the
// whole CLI in-process.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polysim", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		proto    = fs.String("proto", "rq", "transport: rq, tcp or dctcp")
		pattern  = fs.String("pattern", "unicast", "unicast, multicast, multisource, incast")
		k        = fs.Int("k", 4, "fat-tree arity (k even; hosts = k^3/4)")
		bytes    = fs.Int64("bytes", 4<<20, "object bytes (per sender for incast)")
		replicas = fs.Int("replicas", 3, "replica count for multicast/multisource")
		senders  = fs.Int("senders", 8, "sender count for incast")
		seed     = fs.Int64("seed", 1, "seed (base seed with -runs > 1)")
		detach   = fs.Bool("detach", false, "enable straggler detachment (rq multicast)")
		trim     = fs.Bool("trim", true, "NDP packet trimming switches (rq)")
		runs     = fs.Int("runs", 1, "repetitions over derived sub-seeds (1 = verbose single run)")
		parallel = fs.Int("parallel", 0, "max concurrent runs with -runs > 1 (0 = GOMAXPROCS)")
		trace    = fs.Bool("trace", false, "single-run mode: record a PolyScope trace and write Perfetto/CSV/explain files")
		traceOut = fs.String("trace-out", "polyscope", "base path for -trace files (<base>.trace.json, ...)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	sc := scenario{
		proto: *proto, pattern: *pattern, k: *k, bytes: *bytes,
		replicas: *replicas, senders: *senders, detach: *detach, trim: *trim,
	}
	if err := sc.validate(); err != nil {
		fmt.Fprintf(errw, "polysim: %v\n", err)
		return 2
	}
	if *runs < 1 {
		fmt.Fprintf(errw, "polysim: -runs must be >= 1, got %d\n", *runs)
		return 2
	}
	if *trace {
		if *runs > 1 {
			fmt.Fprintln(errw, "polysim: -trace applies to the single-run mode (drop -runs, or use polysweep -trace)")
			return 2
		}
		sc.traceBase = *traceOut
	}

	if *runs == 1 {
		metrics, err := sc.runOnce(*seed, out)
		if err != nil {
			fmt.Fprintf(errw, "polysim: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "%s %s: %.3f Gbps (makespan %v)\n",
			sc.proto, sc.pattern, metrics["goodput_gbps"],
			sim.Time(metrics["makespan_s"]*1e9))
		return 0
	}

	res, err := sweep.Matrix{
		Cells: []sweep.Cell{{
			Scenario: sc.pattern,
			Backend:  sc.proto,
			Params: map[string]string{
				"k":     fmt.Sprint(sc.k),
				"bytes": fmt.Sprint(sc.bytes),
			},
			Runner: sweep.RunnerFunc(func(s int64) (sweep.Metrics, error) {
				return sc.runOnce(s, nil)
			}),
		}},
		Seeds:       *runs,
		BaseSeed:    *seed,
		Parallelism: *parallel,
	}.Run()
	if err != nil {
		fmt.Fprintf(errw, "polysim: %v\n", err)
		return 1
	}
	fmt.Fprint(out, res.Table(nil))
	if n := len(res.Cells[0].Errors); n > 0 {
		fmt.Fprintf(errw, "polysim: %d run(s) failed\n", n)
		return 1
	}
	return 0
}

// validate rejects impossible flag combinations before anything is
// built: the peer picker requires enough distinct out-of-rack hosts,
// and an oversized -senders/-replicas used to spin it forever.
func (sc scenario) validate() error {
	switch sc.proto {
	case "rq", "tcp", "dctcp":
	default:
		return fmt.Errorf("unknown protocol %q (rq|tcp|dctcp)", sc.proto)
	}
	switch sc.pattern {
	case "unicast", "multicast", "multisource", "incast":
	default:
		return fmt.Errorf("unknown pattern %q (unicast|multicast|multisource|incast)", sc.pattern)
	}
	if err := topology.CheckArity(sc.k); err != nil {
		return err
	}
	if sc.bytes < 1 {
		return fmt.Errorf("bytes must be >= 1, got %d", sc.bytes)
	}
	// Peers must sit outside the client's rack.
	switch sc.pattern {
	case "multicast", "multisource":
		if err := topology.CheckFanout(sc.k, sc.replicas, "replicas"); err != nil {
			return fmt.Errorf("pattern %s %w", sc.pattern, err)
		}
	case "incast":
		if err := topology.CheckFanout(sc.k, sc.senders, "senders"); err != nil {
			return fmt.Errorf("incast %w", err)
		}
	}
	return nil
}

// netConfig builds the switch configuration for one seeded run.
func (sc scenario) netConfig(seed int64) netsim.Config {
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = seed
	ncfg.Trimming = sc.trim && sc.proto == "rq"
	if sc.proto == "dctcp" {
		ncfg.ECNThreshold = 20
	}
	return ncfg
}

// runOnce executes the scenario for one seed. When w is non-nil the
// run is verbose: fabric banner, per-receiver/flow completion lines
// and queue totals. Metrics are returned either way, so -runs > 1
// aggregates exactly what a single run reports.
func (sc scenario) runOnce(seed int64, w io.Writer) (sweep.Metrics, error) {
	ncfg := sc.netConfig(seed)
	ft, err := topology.NewFatTree(sc.k, ncfg)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "fabric: k=%d (%d hosts), link %d Mbps, delay %v, trimming=%v, ecn=%d\n",
			sc.k, ft.NumHosts(), ncfg.LinkRate/1e6, ncfg.LinkDelay, ncfg.Trimming, ncfg.ECNThreshold)
	}

	// PolyScope tracing: the recorder must be attached before any flow
	// starts so session-open events land in it; the probe starts after
	// all flows exist so every gauge sees every tick.
	var tr *telemetry.Trace
	if sc.traceBase != "" {
		tr = telemetry.New(telemetry.Options{})
		tr.SetMeta("scenario", sc.pattern)
		tr.SetMeta("backend", sc.proto)
		tr.SetMeta("seed", strconv.FormatInt(seed, 10))
		ft.Net.Rec = tr.Rec
	}

	var last sim.Time
	var openSessions func() float64
	transferred := sc.bytes // bytes the pattern moves end to end
	if sc.pattern == "incast" {
		transferred = sc.bytes * int64(sc.senders)
	}

	if sc.proto == "rq" {
		pcfg := polyraptor.DefaultConfig()
		pcfg.StragglerDetach = sc.detach
		sys := polyraptor.NewSystem(ft.Net, pcfg, seed)
		sys.PruneGroup = ft.PruneMulticastLeaf
		openSessions = func() float64 { send, recv := sys.OpenSessions(); return float64(send + recv) }
		report := func(ev polyraptor.CompletionEvent) {
			if ev.End > last {
				last = ev.End
			}
			if w != nil {
				fmt.Fprintf(w, "receiver %3d: %8.3f Gbps  (%d symbols, %d trims, %v, detached=%v)\n",
					ev.Receiver, ev.GoodputGbps(), ev.Symbols, ev.Trims, ev.End-ev.Start, ev.Detached)
			}
		}
		switch sc.pattern {
		case "unicast":
			sys.StartUnicast(0, pick(ft, 0, seed, 1)[0], sc.bytes, report)
		case "multicast":
			peers := pick(ft, 0, seed, sc.replicas)
			g := ft.InstallMulticastGroup(0, peers)
			sys.StartMulticast(0, peers, g, sc.bytes, report)
		case "multisource":
			peers := pick(ft, 0, seed, sc.replicas)
			sys.StartMultiSource(peers, 0, sc.bytes, report)
		case "incast":
			ic := workload.GenerateIncast(workload.IncastConfig{Senders: sc.senders, BytesPerSender: sc.bytes, Seed: seed}, ft)
			for _, s := range ic.Senders {
				sys.StartUnicast(s, ic.Client, ic.Bytes, report)
			}
		}
	} else {
		tcfg := tcpsim.DefaultConfig()
		if sc.proto == "dctcp" {
			tcfg = tcpsim.DCTCPConfig()
		}
		sys := tcpsim.NewSystem(ft.Net, tcfg)
		openSessions = func() float64 { return float64(sys.OpenFlows()) }
		report := func(r tcpsim.FlowResult) {
			if r.End > last {
				last = r.End
			}
			if w != nil {
				fmt.Fprintf(w, "flow %2d %3d->%3d: %8.3f Gbps  (%d rtx, %d RTO, %v)\n",
					r.Flow, r.Src, r.Dst, r.GoodputGbps(), r.Retransmits, r.Timeouts, r.End-r.Start)
			}
		}
		switch sc.pattern {
		case "unicast":
			sys.StartFlow(0, pick(ft, 0, seed, 1)[0], sc.bytes, report)
		case "multicast":
			for _, p := range pick(ft, 0, seed, sc.replicas) {
				sys.StartFlow(0, p, sc.bytes, report) // multi-unicast emulation
			}
		case "multisource":
			for _, p := range pick(ft, 0, seed, sc.replicas) {
				sys.StartFlow(p, 0, sc.bytes/int64(sc.replicas), report)
			}
		case "incast":
			ic := workload.GenerateIncast(workload.IncastConfig{Senders: sc.senders, BytesPerSender: sc.bytes, Seed: seed}, ft)
			for _, s := range ic.Senders {
				sys.StartFlow(s, ic.Client, ic.Bytes, report)
			}
		}
	}

	if tr != nil {
		ft.Net.RegisterProbes(tr.Probe)
		tr.Probe.Gauge("open-sessions", "count", openSessions)
		tr.Start(ft.Net.Eng)
	}
	ft.Net.Eng.Run()
	tot := ft.Net.QueueTotals()
	if w != nil {
		fmt.Fprintf(w, "switch queues: %d enqueued, %d trimmed, %d dropped (events: %d)\n",
			tot.Enqueued, tot.Trimmed, tot.Dropped, ft.Net.Eng.Processed())
	}
	if tr != nil {
		tr.Finish(ft.Net.Now())
		paths, err := tr.WriteFiles(sc.traceBase)
		if err != nil {
			return nil, err
		}
		if w != nil {
			fmt.Fprintf(w, "trace: wrote %s\n", strings.Join(paths, ", "))
		}
	}
	if last <= 0 {
		return nil, fmt.Errorf("no session completed (pattern %s)", sc.pattern)
	}
	return sweep.Metrics{
		"goodput_gbps": float64(transferred*8) / last.Seconds() / 1e9,
		"makespan_s":   last.Seconds(),
		"trimmed":      float64(tot.Trimmed),
		"dropped":      float64(tot.Dropped),
	}, nil
}

// pick selects n distinct hosts outside host `client`'s rack.
func pick(ft *topology.FatTree, client int, seed int64, n int) []int {
	rng := sim.RNG(seed, "polysim-peers")
	var out []int
	for len(out) < n {
		p := rng.Intn(ft.NumHosts())
		if p == client || ft.SameRack(client, p) {
			continue
		}
		dup := false
		for _, q := range out {
			dup = dup || q == p
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
