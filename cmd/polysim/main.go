// Command polysim runs a single Polyraptor or TCP scenario on a
// simulated fabric and prints per-session results — the exploratory
// companion to polybench's fixed figures.
//
// Examples:
//
//	polysim -proto rq  -pattern unicast     -bytes 4194304
//	polysim -proto rq  -pattern multicast   -replicas 3
//	polysim -proto rq  -pattern multisource -replicas 3
//	polysim -proto rq  -pattern incast      -senders 32 -bytes 262144
//	polysim -proto tcp -pattern incast      -senders 32 -bytes 262144
//	polysim -proto rq  -pattern multicast -replicas 5 -detach
package main

import (
	"flag"
	"fmt"
	"os"

	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

func main() {
	var (
		proto    = flag.String("proto", "rq", "transport: rq or tcp")
		pattern  = flag.String("pattern", "unicast", "unicast, multicast, multisource, incast")
		k        = flag.Int("k", 4, "fat-tree arity (k even; hosts = k^3/4)")
		bytes    = flag.Int64("bytes", 4<<20, "object bytes (per sender for incast)")
		replicas = flag.Int("replicas", 3, "replica count for multicast/multisource")
		senders  = flag.Int("senders", 8, "sender count for incast")
		seed     = flag.Int64("seed", 1, "seed")
		detach   = flag.Bool("detach", false, "enable straggler detachment (rq multicast)")
		trim     = flag.Bool("trim", true, "NDP packet trimming switches (rq)")
	)
	flag.Parse()

	ncfg := netsim.DefaultConfig()
	ncfg.Seed = *seed
	ncfg.Trimming = *trim && *proto == "rq"
	if *proto == "dctcp" {
		ncfg.ECNThreshold = 20
	}
	ft, err := topology.NewFatTree(*k, ncfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
	fmt.Printf("fabric: k=%d (%d hosts), link %d Mbps, delay %v, trimming=%v, ecn=%d\n",
		*k, ft.NumHosts(), ncfg.LinkRate/1e6, ncfg.LinkDelay, ncfg.Trimming, ncfg.ECNThreshold)

	switch *proto {
	case "rq":
		runRQ(ft, *pattern, *bytes, *replicas, *senders, *seed, *detach)
	case "tcp":
		runTCP(ft, *pattern, *bytes, *replicas, *senders, *seed, tcpsim.DefaultConfig())
	case "dctcp":
		runTCP(ft, *pattern, *bytes, *replicas, *senders, *seed, tcpsim.DCTCPConfig())
	default:
		fmt.Fprintf(os.Stderr, "polysim: unknown protocol %q\n", *proto)
		os.Exit(2)
	}
}

func runRQ(ft *topology.FatTree, pattern string, bytes int64, replicas, senders int, seed int64, detach bool) {
	pcfg := polyraptor.DefaultConfig()
	pcfg.StragglerDetach = detach
	sys := polyraptor.NewSystem(ft.Net, pcfg, seed)
	sys.PruneGroup = ft.PruneMulticastLeaf
	report := func(ev polyraptor.CompletionEvent) {
		fmt.Printf("receiver %3d: %8.3f Gbps  (%d symbols, %d trims, %v, detached=%v)\n",
			ev.Receiver, ev.GoodputGbps(), ev.Symbols, ev.Trims, ev.End-ev.Start, ev.Detached)
	}
	switch pattern {
	case "unicast":
		sys.StartUnicast(0, pick(ft, 0, seed, 1)[0], bytes, report)
	case "multicast":
		peers := pick(ft, 0, seed, replicas)
		g := ft.InstallMulticastGroup(0, peers)
		sys.StartMulticast(0, peers, g, bytes, report)
	case "multisource":
		peers := pick(ft, 0, seed, replicas)
		sys.StartMultiSource(peers, 0, bytes, report)
	case "incast":
		ic := workload.GenerateIncast(workload.IncastConfig{Senders: senders, BytesPerSender: bytes, Seed: seed}, ft)
		var last sim.Time
		for _, s := range ic.Senders {
			sys.StartUnicast(s, ic.Client, ic.Bytes, func(ev polyraptor.CompletionEvent) {
				if ev.End > last {
					last = ev.End
				}
			})
		}
		ft.Net.Eng.Run()
		agg := float64(bytes*int64(senders)*8) / last.Seconds() / 1e9
		fmt.Printf("incast: %d senders x %d B -> aggregate %.3f Gbps (makespan %v)\n",
			senders, bytes, agg, last)
		printQueueStats(ft)
		return
	default:
		fmt.Fprintf(os.Stderr, "polysim: unknown pattern %q\n", pattern)
		os.Exit(2)
	}
	ft.Net.Eng.Run()
	printQueueStats(ft)
}

func runTCP(ft *topology.FatTree, pattern string, bytes int64, replicas, senders int, seed int64, tcfg tcpsim.Config) {
	sys := tcpsim.NewSystem(ft.Net, tcfg)
	report := func(r tcpsim.FlowResult) {
		fmt.Printf("flow %2d %3d->%3d: %8.3f Gbps  (%d rtx, %d RTO, %v)\n",
			r.Flow, r.Src, r.Dst, r.GoodputGbps(), r.Retransmits, r.Timeouts, r.End-r.Start)
	}
	switch pattern {
	case "unicast":
		sys.StartFlow(0, pick(ft, 0, seed, 1)[0], bytes, report)
	case "multicast":
		for _, p := range pick(ft, 0, seed, replicas) {
			sys.StartFlow(0, p, bytes, report) // multi-unicast emulation
		}
	case "multisource":
		for _, p := range pick(ft, 0, seed, replicas) {
			sys.StartFlow(p, 0, bytes/int64(replicas), report)
		}
	case "incast":
		ic := workload.GenerateIncast(workload.IncastConfig{Senders: senders, BytesPerSender: bytes, Seed: seed}, ft)
		var last sim.Time
		for _, s := range ic.Senders {
			sys.StartFlow(s, ic.Client, ic.Bytes, func(r tcpsim.FlowResult) {
				if r.End > last {
					last = r.End
				}
			})
		}
		ft.Net.Eng.Run()
		agg := float64(bytes*int64(senders)*8) / last.Seconds() / 1e9
		fmt.Printf("incast: %d senders x %d B -> aggregate %.3f Gbps (makespan %v)\n",
			senders, bytes, agg, last)
		printQueueStats(ft)
		return
	default:
		fmt.Fprintf(os.Stderr, "polysim: unknown pattern %q\n", pattern)
		os.Exit(2)
	}
	ft.Net.Eng.Run()
	printQueueStats(ft)
}

// pick selects n distinct hosts outside host `client`'s rack.
func pick(ft *topology.FatTree, client int, seed int64, n int) []int {
	rng := sim.RNG(seed, "polysim-peers")
	var out []int
	for len(out) < n {
		p := rng.Intn(ft.NumHosts())
		if p == client || ft.SameRack(client, p) {
			continue
		}
		dup := false
		for _, q := range out {
			dup = dup || q == p
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

func printQueueStats(ft *topology.FatTree) {
	tot := ft.Net.QueueTotals()
	fmt.Printf("switch queues: %d enqueued, %d trimmed, %d dropped (events: %d)\n",
		tot.Enqueued, tot.Trimmed, tot.Dropped, ft.Net.Eng.Processed())
}
