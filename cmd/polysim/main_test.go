package main

import (
	"bytes"
	"strings"
	"testing"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

// TestPickInvariants checks the peer picker: n distinct hosts, none in
// the client's rack, never the client itself.
func TestPickInvariants(t *testing.T) {
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		got := pick(ft, 0, seed, 4)
		if len(got) != 4 {
			t.Fatalf("seed %d: got %d peers, want 4", seed, len(got))
		}
		seen := map[int]bool{}
		for _, p := range got {
			if p == 0 || ft.SameRack(0, p) {
				t.Fatalf("seed %d: peer %d is the client or shares its rack", seed, p)
			}
			if seen[p] {
				t.Fatalf("seed %d: duplicate peer %d", seed, p)
			}
			seen[p] = true
		}
	}
}

// TestRunSmoke exercises the verbose single-run paths end to end on a
// small fabric, in-process.
func TestRunSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "rq", "-pattern", "multisource", "-k", "4", "-bytes", "65536", "-replicas", "3"},
		{"-proto", "rq", "-pattern", "incast", "-k", "4", "-bytes", "32768", "-senders", "4"},
		{"-proto", "tcp", "-pattern", "multicast", "-k", "4", "-bytes", "65536", "-replicas", "3"},
		{"-proto", "dctcp", "-pattern", "unicast", "-k", "4", "-bytes", "65536"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 0 {
			t.Fatalf("run(%v) exited %d: %s", args, code, errw.String())
		}
		s := out.String()
		for _, want := range []string{"fabric: k=4", "switch queues:", "Gbps"} {
			if !strings.Contains(s, want) {
				t.Fatalf("run(%v) output missing %q:\n%s", args, want, s)
			}
		}
	}
}

// TestRunMultiSeed: -runs > 1 aggregates over derived sub-seeds on the
// worker pool, and the aggregate table is identical at -parallel 1.
func TestRunMultiSeed(t *testing.T) {
	table := func(parallel string) string {
		args := []string{
			"-proto", "rq", "-pattern", "incast", "-k", "4",
			"-bytes", "32768", "-senders", "4",
			"-runs", "3", "-parallel", parallel,
		}
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 0 {
			t.Fatalf("run(-parallel %s) exited %d: %s", parallel, code, errw.String())
		}
		return out.String()
	}
	serial := table("1")
	parallel := table("0")
	if serial != parallel {
		t.Fatalf("aggregate differs between -parallel 1 and -parallel 0:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	for _, want := range []string{"3 seeds", "incast/rq", "goodput_gbps", "±CI95"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("aggregate output missing %q:\n%s", want, serial)
		}
	}
	// Multi-seed mode must not print per-receiver detail.
	if strings.Contains(serial, "receiver") {
		t.Fatalf("aggregate output contains per-receiver detail:\n%s", serial)
	}
}

// TestRunRejectsBadFlags: impossible configurations fail fast with a
// clear error instead of hanging in the peer picker or panicking in
// the engine.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "quic"},
		{"-pattern", "broadcast"},
		{"-k", "5"},
		{"-k", "0"},
		{"-bytes", "0"},
		{"-pattern", "incast", "-k", "4", "-senders", "15"}, // 14 out-of-rack hosts
		{"-pattern", "multicast", "-k", "4", "-replicas", "15"},
		{"-pattern", "multisource", "-k", "4", "-replicas", "0"},
		{"-runs", "0"},
		{"-nope"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("run(%v) exited %d, want 2; stderr: %s", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("run(%v) printed no error", args)
		}
	}
}

// TestScenarioValidateBounds pins the out-of-rack arithmetic: a k=4
// fabric has 16 hosts, 2 per rack, so at most 14 eligible peers.
func TestScenarioValidateBounds(t *testing.T) {
	sc := scenario{proto: "rq", pattern: "incast", k: 4, bytes: 1, senders: 14}
	if err := sc.validate(); err != nil {
		t.Fatalf("14 senders on k=4 should be valid: %v", err)
	}
	sc.senders = 15
	if err := sc.validate(); err == nil {
		t.Fatal("15 senders on k=4 accepted")
	}
}

// TestRunHelpExitsZero: -h prints usage and exits 0, matching the
// pre-refactor flag.ExitOnError behaviour.
func TestRunHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("run(-h) exited %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "Usage") {
		t.Fatalf("help output missing usage: %s", errw.String())
	}
}
