package main

import (
	"testing"

	"polyraptor/internal/netsim"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/topology"
)

// TestPickInvariants checks the peer picker: n distinct hosts, none in
// the client's rack, never the client itself.
func TestPickInvariants(t *testing.T) {
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		got := pick(ft, 0, seed, 4)
		if len(got) != 4 {
			t.Fatalf("seed %d: got %d peers, want 4", seed, len(got))
		}
		seen := map[int]bool{}
		for _, p := range got {
			if p == 0 || ft.SameRack(0, p) {
				t.Fatalf("seed %d: peer %d is the client or shares its rack", seed, p)
			}
			if seen[p] {
				t.Fatalf("seed %d: duplicate peer %d", seed, p)
			}
			seen[p] = true
		}
	}
}

// TestRunSmoke exercises the RQ and TCP scenario paths end to end on a
// small fabric (output goes to stdout, as in normal CLI use).
func TestRunSmoke(t *testing.T) {
	mkTree := func(trim bool) *topology.FatTree {
		cfg := netsim.DefaultConfig()
		cfg.Trimming = trim
		ft, err := topology.NewFatTree(4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ft
	}
	runRQ(mkTree(true), "multisource", 64<<10, 3, 0, 1, false)
	runRQ(mkTree(true), "incast", 32<<10, 0, 4, 1, false)
	runTCP(mkTree(false), "multicast", 64<<10, 3, 0, 1, tcpsim.DefaultConfig())
}
