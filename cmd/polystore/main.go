// Command polystore runs the PolyStore experiment: a simulated
// GFS/HDFS-style replicated object store on a fat-tree fabric, with
// PUTs replicated one-to-many and GETs assembled many-to-one, compared
// across the Polyraptor, TCP and DCTCP transports — optionally with a
// server or rack failure and its re-replication storm mid-run.
//
// With -runs N the same cluster template is repeated over N
// SplitMix-derived sub-seeds per backend on the sweep engine's worker
// pool, and aggregated statistics (mean, CI95, tails) are printed
// instead of the single-run table.
//
// Examples:
//
//	polystore                                  # medium cluster, all backends, rack failure
//	polystore -k 4 -requests 200 -backend rq,tcp
//	polystore -replicas 2 -zipf 1.1 -putfrac 0.3
//	polystore -fail server -failfrac 0.25
//	polystore -fail none -csv
//	polystore -runs 5                          # 5 seeds per backend, parallel, aggregated
//	polystore -runs 5 -json > sweep.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"polyraptor/internal/harness"
	"polyraptor/internal/store"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive the
// whole CLI in-process.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polystore", flag.ContinueOnError)
	fs.SetOutput(errw)
	def := store.DefaultConfig() // flag defaults, so -help never disagrees with behaviour
	var (
		k        = fs.Int("k", def.FatTreeK, "fat-tree arity (k even; hosts = k^3/4)")
		replicas = fs.Int("replicas", def.Replicas, "replication factor R (needs R+1 racks)")
		objects  = fs.Int("objects", def.Objects, "pre-loaded catalogue objects")
		bytes    = fs.Int64("bytes", def.ObjectBytes, "object (block) size in bytes")
		requests = fs.Int("requests", def.Requests, "client requests to issue")
		zipf     = fs.Float64("zipf", def.ZipfSkew, "Zipf popularity skew (0 = uniform)")
		putfrac  = fs.Float64("putfrac", def.PutFrac, "fraction of requests that are PUTs")
		load     = fs.Float64("load", def.LoadFactor, "target per-host delivered load fraction")
		lambda   = fs.Float64("lambda", def.Lambda, "request arrival rate /s (0 = derive from -load)")
		failMode = fs.String("fail", def.FailMode.String(), "mid-run failure: none, server, rack")
		failfrac = fs.Float64("failfrac", def.FailFrac, "failure position as a fraction of the request stream")
		backends = fs.String("backend", "all", "comma list of rq|polyraptor, tcp, dctcp, or all")
		seed     = fs.Int64("seed", def.Seed, "seed (base seed with -runs > 1)")
		csv      = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		nruns    = fs.Int("runs", 1, "repetitions per backend over derived sub-seeds (1 = single detailed run)")
		parallel = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		jsonOut  = fs.Bool("json", false, "emit aggregated sweep JSON (implies the multi-seed path)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Validate every flag combination up front — including R against
	// the -k fabric's rack count — so an impossible matrix is a clear
	// immediate error instead of a failure deep in placement.
	mode, ok := store.ParseFailMode(*failMode)
	if !ok {
		fmt.Fprintf(errw, "polystore: unknown failure mode %q\n", *failMode)
		return 2
	}
	kinds, err := store.ParseBackends(*backends)
	if err != nil {
		fmt.Fprintf(errw, "polystore: %v\n", err)
		return 2
	}
	if *nruns < 1 {
		fmt.Fprintf(errw, "polystore: -runs must be >= 1, got %d\n", *nruns)
		return 2
	}
	if *csv && *jsonOut {
		fmt.Fprintln(errw, "polystore: -csv and -json are mutually exclusive")
		return 2
	}

	cfg := store.DefaultConfig()
	cfg.FatTreeK = *k
	cfg.Replicas = *replicas
	cfg.Objects = *objects
	cfg.ObjectBytes = *bytes
	cfg.Requests = *requests
	cfg.ZipfSkew = *zipf
	cfg.PutFrac = *putfrac
	cfg.LoadFactor = *load
	cfg.Lambda = *lambda
	cfg.FailMode = mode
	cfg.FailFrac = *failfrac
	cfg.Seed = *seed
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(errw, "polystore: %v\n", err)
		return 2
	}

	if *nruns > 1 || *jsonOut {
		return runSweep(cfg, kinds, *nruns, *parallel, *csv, *jsonOut, out, errw)
	}

	runs, err := harness.RunStorageCluster(harness.StorageOptions{
		Cluster: cfg, Backends: kinds, Parallelism: *parallel,
	})
	if err != nil {
		fmt.Fprintf(errw, "polystore: %v\n", err)
		return 1
	}

	if *csv {
		writeCSV(out, runs)
		return 0
	}
	writeTable(out, cfg, runs)
	return 0
}

// runSweep is the multi-seed path: the cluster template repeated over
// derived sub-seeds per backend, aggregated by the sweep engine.
func runSweep(cfg store.Config, kinds []store.BackendKind, runs, parallel int, csv, jsonOut bool, out, errw io.Writer) int {
	res, err := harness.StorageSweep(cfg, kinds, runs, parallel)
	if err != nil {
		fmt.Fprintf(errw, "polystore: %v\n", err)
		return 1
	}
	switch {
	case jsonOut:
		js, err := res.JSON()
		if err != nil {
			fmt.Fprintf(errw, "polystore: %v\n", err)
			return 1
		}
		out.Write(js)
		io.WriteString(out, "\n")
	case csv:
		fmt.Fprint(out, res.CSV())
	default:
		fmt.Fprint(out, res.Table(nil))
	}
	for _, c := range res.Cells {
		if len(c.Errors) > 0 {
			fmt.Fprintf(errw, "polystore: backend %s: %d run(s) failed: %s\n",
				c.Backend, len(c.Errors), c.Errors[0])
			return 1
		}
	}
	return 0
}

func writeTable(w io.Writer, cfg store.Config, runs []harness.StorageRun) {
	fmt.Fprintf(w, "== PolyStore cluster ==\n")
	fmt.Fprintf(w, "k=%d (%d hosts), %d objects x %d KB, R=%d, zipf=%.2f, %d requests (%.0f%% PUT), fail=%v\n\n",
		cfg.FatTreeK, cfg.Hosts(), cfg.Objects, cfg.ObjectBytes>>10, cfg.Replicas,
		cfg.ZipfSkew, cfg.Requests, cfg.PutFrac*100, cfg.FailMode)
	fmt.Fprintf(w, "%-11s %9s %9s %9s %9s %9s %9s %9s\n",
		"backend", "GET Gbps", "GETp50ms", "GETp99ms", "PUT Gbps", "PUTp99ms", "recovery", "interfere")
	for _, r := range runs {
		fmt.Fprintf(w, "%-11s %9.3f %9.2f %9.2f %9.3f %9.2f %9s %9s\n",
			r.Backend,
			r.GetGoodput.Mean, r.GetFCT.P50*1e3, r.GetFCT.P99*1e3,
			r.PutGoodput.Mean, r.PutFCT.P99*1e3,
			recoveryLabel(r), interferenceLabel(r))
	}
	fmt.Fprintln(w)
	for _, r := range runs {
		rec := r.Result.Recovery
		if rec.Mode == store.FailNone {
			continue
		}
		fmt.Fprintf(w, "%s recovery: %d hosts down at %v, %d replicas lost, %d repaired (%d unrepairable), full replication %v after %v\n",
			r.Backend, len(rec.FailedHosts), rec.InjectedAt, rec.LostReplicas,
			rec.Repaired, rec.Unrepairable, rec.FullyReplicated, rec.Duration())
		if r.Result.SkippedGets > 0 {
			fmt.Fprintf(w, "%s: %d GETs found no alive replica\n", r.Backend, r.Result.SkippedGets)
		}
	}
}

// recoveryLabel renders the recovery duration, or "-" for no-failure
// runs.
func recoveryLabel(r harness.StorageRun) string {
	rec := r.Result.Recovery
	if rec.Mode == store.FailNone {
		return "-"
	}
	return fmt.Sprintf("%.0fms", rec.Duration().Seconds()*1e3)
}

// interferenceLabel renders the storm-interference ratio, or "-" when
// it could not be measured.
func interferenceLabel(r harness.StorageRun) string {
	ratio, ok := r.Interference()
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2fx", ratio)
}

func writeCSV(w io.Writer, runs []harness.StorageRun) {
	fmt.Fprintln(w, "backend,get_gbps_mean,get_fct_p50_s,get_fct_p95_s,get_fct_p99_s,put_gbps_mean,put_fct_p99_s,recovery_s,interference,repaired,skipped_gets")
	for _, r := range runs {
		rec := r.Result.Recovery
		interferenceCSV := "" // empty field when unmeasured
		if ratio, ok := r.Interference(); ok {
			interferenceCSV = fmt.Sprintf("%.4f", ratio)
		}
		fmt.Fprintf(w, "%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%s,%d,%d\n",
			r.Backend,
			r.GetGoodput.Mean, r.GetFCT.P50, r.GetFCT.P95, r.GetFCT.P99,
			r.PutGoodput.Mean, r.PutFCT.P99,
			rec.Duration().Seconds(), interferenceCSV, rec.Repaired, r.Result.SkippedGets)
	}
}
