package main

import (
	"bytes"
	"strings"
	"testing"

	"polyraptor/internal/store"
)

// TestRunSmoke drives the whole CLI in-process on a tiny cluster.
func TestRunSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-k", "4", "-objects", "16", "-bytes", "65536", "-requests", "40",
		"-backend", "rq,tcp", "-fail", "rack",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"PolyStore cluster", "polyraptor", "tcp", "recovery", "full replication true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-k", "4", "-objects", "8", "-bytes", "65536", "-requests", "20",
		"-backend", "rq", "-fail", "none", "-csv",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV should have header + 1 row, got %d lines:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[1], "polyraptor,") {
		t.Fatalf("CSV row %q", lines[1])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-fail", "meteor"},
		{"-backend", "quic"},
		{"-backend", ","},
		{"-nope"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code == 0 {
			t.Fatalf("run(%v) succeeded, want failure", args)
		}
	}
}

func TestParseBackends(t *testing.T) {
	all, err := parseBackends("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("parseBackends(all) = %v, %v", all, err)
	}
	got, err := parseBackends("rq, dctcp")
	if err != nil || len(got) != 2 || got[0] != store.BackendPolyraptor || got[1] != store.BackendDCTCP {
		t.Fatalf("parseBackends(rq, dctcp) = %v, %v", got, err)
	}
}
