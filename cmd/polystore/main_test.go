package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"polyraptor/internal/store"
)

// TestRunSmoke drives the whole CLI in-process on a tiny cluster.
func TestRunSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-k", "4", "-objects", "16", "-bytes", "65536", "-requests", "40",
		"-backend", "rq,tcp", "-fail", "rack",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"PolyStore cluster", "polyraptor", "tcp", "recovery", "full replication true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-k", "4", "-objects", "8", "-bytes", "65536", "-requests", "20",
		"-backend", "rq", "-fail", "none", "-csv",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV should have header + 1 row, got %d lines:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[1], "polyraptor,") {
		t.Fatalf("CSV row %q", lines[1])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-fail", "meteor"},
		{"-backend", "quic"},
		{"-backend", ","},
		{"-nope"},
		{"-k", "5"},
		{"-k", "4", "-replicas", "8"}, // 9 racks needed, k=4 has 8
		{"-replicas", "0"},
		{"-objects", "0"},
		{"-bytes", "0"},
		{"-putfrac", "1.5"},
		{"-failfrac", "-0.1"},
		{"-zipf", "-1"},
		{"-requests", "-1"},
		{"-load", "0", "-lambda", "0"},
		{"-runs", "0"},
		{"-csv", "-json"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("run(%v) exited %d, want 2; stderr: %s", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("run(%v) printed no error", args)
		}
	}
}

// TestRunValidatesBeforeRunning: an impossible replicas/rack combo is
// reported with the rack arithmetic, up front.
func TestRunValidatesBeforeRunning(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-k", "4", "-replicas", "8"}, &out, &errw)
	if code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
	s := errw.String()
	for _, want := range []string{"R=8", "9 distinct racks", "k=4", "has 8"} {
		if !strings.Contains(s, want) {
			t.Fatalf("error missing %q: %s", want, s)
		}
	}
	if out.Len() != 0 {
		t.Fatalf("stdout should be empty, got: %s", out.String())
	}
}

// TestRunMultiSeed: -runs > 1 aggregates per backend over derived
// sub-seeds, byte-identically at any parallelism.
func TestRunMultiSeed(t *testing.T) {
	sweepArgs := func(extra ...string) []string {
		return append([]string{
			"-k", "4", "-objects", "8", "-bytes", "65536", "-requests", "20",
			"-backend", "rq,tcp", "-fail", "rack", "-runs", "3",
		}, extra...)
	}
	var serial, parallel, errw bytes.Buffer
	if code := run(sweepArgs("-parallel", "1", "-json"), &serial, &errw); code != 0 {
		t.Fatalf("serial run exited %d: %s", code, errw.String())
	}
	errw.Reset()
	if code := run(sweepArgs("-json"), &parallel, &errw); code != 0 {
		t.Fatalf("parallel run exited %d: %s", code, errw.String())
	}
	if serial.String() != parallel.String() {
		t.Fatalf("JSON differs between -parallel 1 and default:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
	var res struct {
		Seeds int `json:"seeds"`
		Cells []struct {
			Backend string   `json:"backend"`
			Errors  []string `json:"errors"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(serial.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if res.Seeds != 3 || len(res.Cells) != 2 {
		t.Fatalf("decoded %d cells x %d seeds, want 2 x 3", len(res.Cells), res.Seeds)
	}

	var table bytes.Buffer
	errw.Reset()
	if code := run(sweepArgs(), &table, &errw); code != 0 {
		t.Fatalf("table run exited %d: %s", code, errw.String())
	}
	for _, want := range []string{"storage/polyraptor", "storage/tcp", "get_gbps", "±CI95"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("aggregate table missing %q:\n%s", want, table.String())
		}
	}
}

func TestParseBackends(t *testing.T) {
	all, err := store.ParseBackends("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("ParseBackends(all) = %v, %v", all, err)
	}
	got, err := store.ParseBackends("rq, dctcp")
	if err != nil || len(got) != 2 || got[0] != store.BackendPolyraptor || got[1] != store.BackendDCTCP {
		t.Fatalf("ParseBackends(rq, dctcp) = %v, %v", got, err)
	}
}

// TestRunHelpExitsZero: -h prints usage and exits 0, like
// flag.ExitOnError tools do.
func TestRunHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("run(-h) exited %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "Usage") {
		t.Fatalf("help output missing usage: %s", errw.String())
	}
}
