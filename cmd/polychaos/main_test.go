package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinyArgs keeps the in-process CLI runs sub-second: a k=4 fabric,
// 256 KB flows, fault at 500 µs, scored at 1 s.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-k", "4", "-flows", "6", "-bytes", "262144",
		"-fail-at", "500us", "-deadline", "1s",
	}, extra...)
}

// TestRunSmoke drives the whole CLI in-process: the headline contrast
// (rq zero stalls, tcp stranded) must show in the table.
func TestRunSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-backend", "rq,tcp"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"PolyChaos failure injection", "pattern=one2one", "link x4 at core tier", "polyraptor", "tcp", "blackholed"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunVerboseSchedule: -v appends the struck targets and the fault
// event log.
func TestRunVerboseSchedule(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-backend", "rq", "-recover-at", "50ms", "-v"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"fault schedule (seed 1)", "strike agg-", "link-down", "link-up"} {
		if !strings.Contains(s, want) {
			t.Fatalf("verbose output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-backend", "rq", "-csv"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV should have header + 1 row, got %d lines:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "backend,flows,completed,stalled") {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "polyraptor,6,") {
		t.Fatalf("CSV row %q", lines[1])
	}
}

// TestRunRejectsBadFlags: every invalid flag combination exits 2 with
// a diagnostic, before any simulation runs.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-backend", "quic"},
		{"-backend", ","},
		{"-nope"},
		{"-k", "5"},
		{"-pattern", "tornado"},
		{"-flows", "0"},
		{"-k", "4", "-flows", "9"}, // 18 hosts > 16
		{"-pattern", "incast", "-senders", "0"},
		{"-pattern", "multicast", "-replicas", "0"},
		{"-pattern", "shuffle", "-k", "4", "-mappers", "10", "-reducers", "7"},
		{"-bytes", "0"},
		{"-fault", "meteor"},
		{"-layer", "sea"},
		{"-frac", "1.5"},
		{"-frac", "-0.1"},
		{"-fail-at", "-1ms"},
		{"-fail-at", "2ms", "-recover-at", "1ms"},
		{"-fault", "loss"},                      // loss without a rate
		{"-fault", "loss", "-loss-rate", "1.2"}, // rate out of range
		{"-fault", "flap"},                      // flap without period/end
		{"-fault", "flap", "-flap-period", "1ms"},
		{"-fault", "flap", "-flap-period", "1ns", "-recover-at", "1ms"}, // toggle-event storm
		{"-deadline", "0s"},
		{"-deadline", "1ms"}, // deadline before the default 2 ms fault
		{"-runs", "0"},
		{"-csv", "-json"},
		{"-plan", "meteor core 0.5"},
		{"-plan", "link core 0.5 rate 0.1"}, // rate is loss-only
		{"-plan", "link core 0.5 @10ms recover 1ms"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("run(%v) exited %d, want 2; stderr: %s", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("run(%v) printed no error", args)
		}
	}
}

// TestRunMultiSeed: -runs > 1 aggregates per backend over derived
// sub-seeds, byte-identically at any parallelism — the sweep
// determinism criterion at the CLI surface.
func TestRunMultiSeed(t *testing.T) {
	sweepArgs := func(extra ...string) []string {
		return tinyArgs(append([]string{"-backend", "rq,tcp", "-runs", "3"}, extra...)...)
	}
	var serial, parallel, errw bytes.Buffer
	if code := run(sweepArgs("-parallel", "1", "-json"), &serial, &errw); code != 0 {
		t.Fatalf("serial run exited %d: %s", code, errw.String())
	}
	errw.Reset()
	if code := run(sweepArgs("-json"), &parallel, &errw); code != 0 {
		t.Fatalf("parallel run exited %d: %s", code, errw.String())
	}
	if serial.String() != parallel.String() {
		t.Fatalf("JSON differs between -parallel 1 and default:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
	var res struct {
		Seeds int `json:"seeds"`
		Cells []struct {
			Scenario string   `json:"scenario"`
			Backend  string   `json:"backend"`
			Errors   []string `json:"errors"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(serial.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if res.Seeds != 3 || len(res.Cells) != 2 {
		t.Fatalf("decoded %d cells x %d seeds, want 2 x 3", len(res.Cells), res.Seeds)
	}
	for _, c := range res.Cells {
		if c.Scenario != "chaos" || len(c.Errors) > 0 {
			t.Fatalf("cell %+v", c)
		}
	}

	var table bytes.Buffer
	errw.Reset()
	if code := run(sweepArgs(), &table, &errw); code != 0 {
		t.Fatalf("table run exited %d: %s", code, errw.String())
	}
	for _, want := range []string{"chaos/polyraptor", "chaos/tcp", "stall_rate", "±CI95"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("aggregate table missing %q:\n%s", want, table.String())
		}
	}
}

// TestRunPlanFlag: -plan parses the compact grammar and overrides the
// individual fault flags — the spec below must produce the same run as
// the equivalent -fault/-frac/-recover-at invocation.
func TestRunPlanFlag(t *testing.T) {
	var specOut, flagOut, errw bytes.Buffer
	args := []string{"-k", "4", "-flows", "6", "-bytes", "262144", "-deadline", "1s", "-backend", "rq"}
	code := run(append(args, "-plan", "link core 0.5 @500us recover 50ms"), &specOut, &errw)
	if code != 0 {
		t.Fatalf("run(-plan) exited %d: %s", code, errw.String())
	}
	code = run(append(args, "-fault", "link", "-layer", "core", "-frac", "0.5",
		"-fail-at", "500us", "-recover-at", "50ms"), &flagOut, &errw)
	if code != 0 {
		t.Fatalf("run(flags) exited %d: %s", code, errw.String())
	}
	if specOut.String() != flagOut.String() {
		t.Fatalf("-plan and flag spellings diverge:\n%s\nvs\n%s", specOut.String(), flagOut.String())
	}
}

// TestRunHelpExitsZero: -h prints usage and exits 0.
func TestRunHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("run(-h) exited %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "Usage") {
		t.Fatalf("help output missing usage: %s", errw.String())
	}
}
