// Command polychaos runs the fault-injection experiments: a traffic
// pattern (one-to-one, incast, multicast or shuffle) starts on a
// healthy fat tree, a seeded fault plan executes mid-flow on the sim
// timeline — core/agg/host links blackholed, whole switches killed,
// links made lossy or flapping — and the Polyraptor, TCP and DCTCP
// transports are scored on completions versus stalls, FCT percentiles,
// goodput, and blackholed-vs-queue-dropped packet counts at a fixed
// deadline. This is the experiment behind the paper's robustness
// claim: per-packet spraying plus rateless coding rides through path
// failures with no rerouting, while a hash-pinned TCP flow routed
// into a remote blackhole is stranded until the fault heals.
//
// With -runs N the same template is repeated over N SplitMix-derived
// sub-seeds per backend on the sweep engine's worker pool (each seed
// draws its own fault targets and workload) and aggregated statistics
// are printed instead of the single-run table.
//
// Examples:
//
//	polychaos                                        # 12 cross-pod flows, 25% of core links down at 2 ms
//	polychaos -frac 0.5 -recover-at 50ms             # heavier fault, healed mid-run
//	polychaos -fault switch -layer core -frac 0.25   # kill a quarter of the core switches
//	polychaos -fault loss -loss-rate 0.2             # lossy links instead of blackholes
//	polychaos -fault flap -flap-period 10ms -recover-at 100ms
//	polychaos -plan "link core 0.5 @2ms recover 50ms"         # same grammar as config files
//	polychaos -pattern shuffle -mappers 6 -reducers 6
//	polychaos -runs 5 -json > chaos.json             # 5 seeds per backend, aggregated
//	polychaos -trace -trace-out chaos                # PolyScope trace per backend + explain report
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polyraptor/internal/chaos"
	"polyraptor/internal/harness"
	"polyraptor/internal/metrics"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive the
// whole CLI in-process.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polychaos", flag.ContinueOnError)
	fs.SetOutput(errw)
	def := harness.DefaultChaosOptions() // flag defaults, so -help never disagrees with behaviour
	var (
		k        = fs.Int("k", def.FatTreeK, "fat-tree arity (k even; hosts = k^3/4)")
		pattern  = fs.String("pattern", def.Pattern, "traffic pattern: one2one, incast, multicast, shuffle")
		flows    = fs.Int("flows", def.Flows, "one2one: cross-pod flow count")
		senders  = fs.Int("senders", def.Senders, "incast: fan-in")
		replicas = fs.Int("replicas", def.Replicas, "multicast: fan-out")
		mappers  = fs.Int("mappers", def.Mappers, "shuffle: mapper count")
		reducers = fs.Int("reducers", def.Reducers, "shuffle: reducer count")
		bytes    = fs.Int64("bytes", def.Bytes, "object bytes per flow/sender/receiver/pair")

		plan      = fs.String("plan", "", "compact fault spec, e.g. \"link core 0.25 @2ms recover 50ms\"; overrides the individual fault flags (a \"seed n\" clause overrides -seed)")
		fault     = fs.String("fault", def.Fault.Kind.String(), "fault kind: link (blackhole), switch (kill), loss, flap")
		layer     = fs.String("layer", def.Fault.Layer.String(), "fabric tier: core, agg, host")
		frac      = fs.Float64("frac", def.Fault.Frac, "fraction of the tier's links/switches to strike")
		failAt    = fs.Duration("fail-at", def.Fault.FailAt, "when the fault strikes (sim time)")
		recoverAt = fs.Duration("recover-at", def.Fault.RecoverAt, "when it heals (0 = never; required for flap)")
		flapP     = fs.Duration("flap-period", def.Fault.FlapPeriod, "flap: full down+up cycle length")
		lossRate  = fs.Float64("loss-rate", def.Fault.LossRate, "loss: per-frame destruction probability (0, 1]")
		deadline  = fs.Duration("deadline", def.Deadline, "sim-time budget; incomplete flows count as stalled")

		sloFCT = fs.Duration("slo-fct", 0, "sweep mode: per-flow completion deadline; meters each run and reports slo_attainment + FCT/goodput histograms (0 = off)")

		backends = fs.String("backend", "all", "comma list of rq|polyraptor, tcp, dctcp, or all")
		seed     = fs.Int64("seed", 1, "seed (base seed with -runs > 1)")
		nruns    = fs.Int("runs", 1, "repetitions per backend over derived sub-seeds (1 = single detailed run)")
		parallel = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csv      = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut  = fs.Bool("json", false, "emit aggregated sweep JSON (implies the multi-seed path)")
		verbose  = fs.Bool("v", false, "single-run mode: list struck targets and the fault event log")
		trace    = fs.Bool("trace", false, "single-run mode: record a PolyScope trace per backend and write Perfetto/CSV/explain files")
		traceOut = fs.String("trace-out", "polyscope", "base path for -trace files (<base>-<backend>.trace.json, ...)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Validate every flag combination up front — fault grammar included
	// — so an impossible plan is a clear immediate error instead of a
	// panic mid-simulation.
	kind, ok := chaos.ParseKind(*fault)
	if !ok {
		fmt.Fprintf(errw, "polychaos: unknown fault kind %q (link, switch, loss, flap)\n", *fault)
		return 2
	}
	lay, ok := chaos.ParseLayer(*layer)
	if !ok {
		fmt.Fprintf(errw, "polychaos: unknown layer %q (core, agg, host)\n", *layer)
		return 2
	}
	opt := harness.ChaosOptions{
		FatTreeK: *k,
		Pattern:  *pattern,
		Flows:    *flows,
		Senders:  *senders,
		Replicas: *replicas,
		Mappers:  *mappers,
		Reducers: *reducers,
		Bytes:    *bytes,
		Fault: chaos.Plan{
			Kind:       kind,
			Layer:      lay,
			Frac:       *frac,
			FailAt:     *failAt,
			RecoverAt:  *recoverAt,
			FlapPeriod: *flapP,
			LossRate:   *lossRate,
		},
		Deadline: *deadline,
	}
	if *plan != "" {
		p, err := chaos.ParsePlan(*plan)
		if err != nil {
			fmt.Fprintf(errw, "polychaos: %v\n", err)
			return 2
		}
		if p.Seed != 0 {
			*seed = p.Seed
		}
		p.Seed = 0 // the harness injects the per-run seed
		opt.Fault = p
	}
	if err := opt.Validate(); err != nil {
		fmt.Fprintf(errw, "polychaos: %v\n", err)
		return 2
	}
	kinds, err := store.ParseBackends(*backends)
	if err != nil {
		fmt.Fprintf(errw, "polychaos: %v\n", err)
		return 2
	}
	if *nruns < 1 {
		fmt.Fprintf(errw, "polychaos: -runs must be >= 1, got %d\n", *nruns)
		return 2
	}
	if *csv && *jsonOut {
		fmt.Fprintln(errw, "polychaos: -csv and -json are mutually exclusive")
		return 2
	}
	if *trace && (*nruns > 1 || *jsonOut) {
		fmt.Fprintln(errw, "polychaos: -trace applies to the single-run mode (drop -runs/-json, or use polysweep -scenarios chaos -trace)")
		return 2
	}
	if *sloFCT < 0 {
		fmt.Fprintf(errw, "polychaos: -slo-fct must be >= 0, got %v\n", *sloFCT)
		return 2
	}
	if *sloFCT > 0 && *nruns == 1 && !*jsonOut {
		fmt.Fprintln(errw, "polychaos: -slo-fct applies to the sweep mode (add -runs or -json)")
		return 2
	}

	if *nruns > 1 || *jsonOut {
		return runSweep(opt, kinds, *seed, *nruns, *parallel, *csv, *jsonOut, sloFCT.Seconds(), out, errw)
	}

	var runs []harness.ChaosRun
	var traces []*telemetry.Trace
	if *trace {
		// Traced runs are still independent simulations; run them on
		// the same worker pool, one trace per backend.
		topt := &harness.TraceOptions{}
		runs = make([]harness.ChaosRun, len(kinds))
		traces = make([]*telemetry.Trace, len(kinds))
		sweep.ForEach(len(kinds), *parallel, func(i int) {
			runs[i], traces[i] = harness.RunChaosTraced(opt, kinds[i], *seed, topt)
		})
	} else {
		var err error
		runs, err = harness.RunChaosAll(opt, kinds, *seed, *parallel)
		if err != nil {
			fmt.Fprintf(errw, "polychaos: %v\n", err)
			return 1
		}
	}
	if *csv {
		writeCSV(out, runs)
	} else {
		writeTable(out, opt, runs, *seed, *verbose)
	}
	for i, tr := range traces {
		base := fmt.Sprintf("%s-%s", *traceOut, runs[i].Backend)
		paths, err := tr.WriteFiles(base)
		if err != nil {
			fmt.Fprintf(errw, "polychaos: %v\n", err)
			return 1
		}
		fmt.Fprintf(errw, "polychaos: wrote %s\n", strings.Join(paths, ", "))
		if !*csv {
			// The explain report is the trace's headline: which flows
			// stalled and what killed them. CSV stdout stays pure.
			fmt.Fprintln(out)
			if err := tr.WriteExplain(out); err != nil {
				fmt.Fprintf(errw, "polychaos: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

// runSweep is the multi-seed path: the chaos template repeated over
// derived sub-seeds per backend, aggregated by the sweep engine.
func runSweep(opt harness.ChaosOptions, kinds []store.BackendKind, seed int64, runs, parallel int, csv, jsonOut bool, sloFCT float64, out, errw io.Writer) int {
	p := harness.DefaultSweepParams()
	p.Chaos = opt
	if sloFCT > 0 {
		p.SLO = &metrics.SLO{FCTDeadline: sloFCT}
	}
	var cells []sweep.Cell
	for _, be := range kinds {
		cell, err := harness.NewSweepCell("chaos", be, p)
		if err != nil {
			fmt.Fprintf(errw, "polychaos: %v\n", err)
			return 2
		}
		cells = append(cells, cell)
	}
	res, err := sweep.Matrix{Cells: cells, Seeds: runs, BaseSeed: seed, Parallelism: parallel}.Run()
	if err != nil {
		fmt.Fprintf(errw, "polychaos: %v\n", err)
		return 1
	}
	switch {
	case jsonOut:
		js, err := res.JSON()
		if err != nil {
			fmt.Fprintf(errw, "polychaos: %v\n", err)
			return 1
		}
		out.Write(js)
		io.WriteString(out, "\n")
	case csv:
		fmt.Fprint(out, res.CSV())
	default:
		fmt.Fprint(out, res.Table(nil))
	}
	for _, c := range res.Cells {
		if len(c.Errors) > 0 {
			fmt.Fprintf(errw, "polychaos: backend %s: %d run(s) failed: %s\n",
				c.Backend, len(c.Errors), c.Errors[0])
			return 1
		}
	}
	return 0
}

func writeTable(w io.Writer, opt harness.ChaosOptions, runs []harness.ChaosRun, seed int64, verbose bool) {
	fmt.Fprintf(w, "== PolyChaos failure injection ==\n")
	heal := "never healed"
	if opt.Fault.RecoverAt > 0 {
		heal = fmt.Sprintf("healed at %v", opt.Fault.RecoverAt)
	}
	extra := ""
	switch opt.Fault.Kind {
	case chaos.KindLinkLoss:
		extra = fmt.Sprintf(", loss rate %.2f", opt.Fault.LossRate)
	case chaos.KindLinkFlap:
		extra = fmt.Sprintf(", flap period %v", opt.Fault.FlapPeriod)
	}
	targets := 0
	if len(runs) > 0 {
		targets = runs[0].FaultTargets
	}
	fmt.Fprintf(w, "k=%d, pattern=%s, %d KB objects; fault: %s x%d at %s tier (frac %.2f) at %v, %s%s; deadline %v\n\n",
		opt.FatTreeK, opt.Pattern, opt.Bytes>>10,
		opt.Fault.Kind, targets, opt.Fault.Layer, opt.Fault.Frac, opt.Fault.FailAt, heal, extra, opt.Deadline)
	fmt.Fprintf(w, "%-11s %9s %8s %10s %10s %9s %11s %10s\n",
		"backend", "done", "stalled", "FCTp50ms", "FCTp99ms", "Gbps", "blackholed", "queuedrop")
	for _, r := range runs {
		// No finite FCT exists when every flow stalled; 0.00 would
		// read as instant completion.
		p50, p99 := "-", "-"
		if r.Completed > 0 {
			p50 = fmt.Sprintf("%.2f", r.FCT.P50*1e3)
			p99 = fmt.Sprintf("%.2f", r.FCT.P99*1e3)
		}
		fmt.Fprintf(w, "%-11s %5d/%-3d %8d %10s %10s %9.3f %11d %10d\n",
			r.Backend, r.Completed, r.Flows, r.Stalled,
			p50, p99, r.GoodputGbps, r.RouteDrops, r.QueueDrops)
	}
	if verbose {
		fmt.Fprintf(w, "\nfault schedule (seed %d):\n", seed)
		writeSchedule(w, opt, seed)
	}
}

// writeSchedule re-derives and prints the seeded fault schedule
// without running any traffic: the same Inject call the runs used.
func writeSchedule(w io.Writer, opt harness.ChaosOptions, seed int64) {
	in, err := harness.ChaosSchedule(opt, seed)
	if err != nil {
		fmt.Fprintf(w, "  (schedule unavailable: %v)\n", err)
		return
	}
	for _, t := range in.Targets {
		fmt.Fprintf(w, "  strike %s\n", t)
	}
	for _, ev := range in.Events {
		fmt.Fprintf(w, "  %10v  %-14s %s\n", ev.At, ev.Action, ev.Target)
	}
}

func writeCSV(w io.Writer, runs []harness.ChaosRun) {
	fmt.Fprintln(w, "backend,flows,completed,stalled,stall_rate,fct_p50_s,fct_p99_s,goodput_gbps,blackholed,link_drops,queue_drops,fault_targets")
	for _, r := range runs {
		// Empty FCT fields when nothing completed: there is no finite
		// completion time to report.
		p50, p99 := "", ""
		if r.Completed > 0 {
			p50 = fmt.Sprintf("%.6f", r.FCT.P50)
			p99 = fmt.Sprintf("%.6f", r.FCT.P99)
		}
		fmt.Fprintf(w, "%s,%d,%d,%d,%.6f,%s,%s,%.6f,%d,%d,%d,%d\n",
			r.Backend, r.Flows, r.Completed, r.Stalled, r.StallRate(),
			p50, p99, r.GoodputGbps,
			r.RouteDrops, r.LinkDrops, r.QueueDrops, r.FaultTargets)
	}
}
