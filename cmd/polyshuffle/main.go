// Command polyshuffle runs the many-to-many shuffle experiment: every
// mapper transfers one distinct partition to every reducer (the full
// M×R matrix at once), compared across the Polyraptor, TCP and DCTCP
// transports. The job-level metric is shuffle completion time — the
// slowest pair gates the job — alongside per-pair FCT percentiles and
// aggregate goodput. Partition sizes can be Zipf-skewed across
// reducers and one mapper can be made a straggler.
//
// With -runs N the same template is repeated over N SplitMix-derived
// sub-seeds per backend on the sweep engine's worker pool and
// aggregated statistics are printed instead of the single-run table.
//
// Examples:
//
//	polyshuffle                                  # 8x8 on k=6, all backends
//	polyshuffle -k 4 -mappers 8 -reducers 4 -bytes 65536
//	polyshuffle -skew 1.1 -straggler 4           # hot reducers + a 4x straggler mapper
//	polyshuffle -backend rq,tcp -csv
//	polyshuffle -runs 5 -json > shuffle.json     # 5 seeds per backend, aggregated
//	polyshuffle -trace -trace-out shuffle        # PolyScope trace per backend
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polyraptor/internal/harness"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive the
// whole CLI in-process.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polyshuffle", flag.ContinueOnError)
	fs.SetOutput(errw)
	def := harness.DefaultShuffleOptions() // flag defaults, so -help never disagrees with behaviour
	var (
		k         = fs.Int("k", def.FatTreeK, "fat-tree arity (k even; hosts = k^3/4)")
		mappers   = fs.Int("mappers", def.Mappers, "mapper count M")
		reducers  = fs.Int("reducers", def.Reducers, "reducer count R (M+R distinct hosts)")
		bytes     = fs.Int64("bytes", def.BytesPerPair, "mean partition bytes per (mapper, reducer) pair")
		skew      = fs.Float64("skew", def.Skew, "Zipf skew of partition sizes across reducers (0 = uniform)")
		straggler = fs.Float64("straggler", def.StragglerFactor, "scale one mapper's partitions by this factor (0 = off)")
		backends  = fs.String("backend", "all", "comma list of rq|polyraptor, tcp, dctcp, or all")
		seed      = fs.Int64("seed", 1, "seed (base seed with -runs > 1)")
		nruns     = fs.Int("runs", 1, "repetitions per backend over derived sub-seeds (1 = single detailed run)")
		parallel  = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csv       = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut   = fs.Bool("json", false, "emit aggregated sweep JSON (implies the multi-seed path)")
		trace     = fs.Bool("trace", false, "single-run mode: record a PolyScope trace per backend and write Perfetto/CSV/explain files")
		traceOut  = fs.String("trace-out", "polyscope", "base path for -trace files (<base>-<backend>.trace.json, ...)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Validate every flag combination up front — including M+R against
	// the fabric's host count — so an impossible matrix is a clear
	// immediate error instead of a panic deep in the workload draw.
	opt := harness.ShuffleOptions{
		FatTreeK:        *k,
		Mappers:         *mappers,
		Reducers:        *reducers,
		BytesPerPair:    *bytes,
		Skew:            *skew,
		StragglerFactor: *straggler,
	}
	if err := opt.Validate(); err != nil {
		fmt.Fprintf(errw, "polyshuffle: %v\n", err)
		return 2
	}
	kinds, err := store.ParseBackends(*backends)
	if err != nil {
		fmt.Fprintf(errw, "polyshuffle: %v\n", err)
		return 2
	}
	if *nruns < 1 {
		fmt.Fprintf(errw, "polyshuffle: -runs must be >= 1, got %d\n", *nruns)
		return 2
	}
	if *csv && *jsonOut {
		fmt.Fprintln(errw, "polyshuffle: -csv and -json are mutually exclusive")
		return 2
	}
	if *trace && (*nruns > 1 || *jsonOut) {
		fmt.Fprintln(errw, "polyshuffle: -trace applies to the single-run mode (drop -runs/-json, or use polysweep -scenarios shuffle -trace)")
		return 2
	}

	if *nruns > 1 || *jsonOut {
		return runSweep(opt, kinds, *seed, *nruns, *parallel, *csv, *jsonOut, out, errw)
	}

	var runs []harness.ShuffleRun
	var traces []*telemetry.Trace
	if *trace {
		// Traced runs are still independent simulations; run them on
		// the same worker pool, one trace per backend.
		topt := &harness.TraceOptions{}
		runs = make([]harness.ShuffleRun, len(kinds))
		traces = make([]*telemetry.Trace, len(kinds))
		sweep.ForEach(len(kinds), *parallel, func(i int) {
			runs[i], traces[i] = harness.RunShuffleTraced(opt, kinds[i], *seed, topt)
		})
	} else {
		var err error
		runs, err = harness.RunShuffleAll(opt, kinds, *seed, *parallel)
		if err != nil {
			fmt.Fprintf(errw, "polyshuffle: %v\n", err)
			return 1
		}
	}
	if *csv {
		writeCSV(out, runs)
	} else {
		writeTable(out, opt, runs)
	}
	for i, tr := range traces {
		base := fmt.Sprintf("%s-%s", *traceOut, runs[i].Backend)
		paths, err := tr.WriteFiles(base)
		if err != nil {
			fmt.Fprintf(errw, "polyshuffle: %v\n", err)
			return 1
		}
		fmt.Fprintf(errw, "polyshuffle: wrote %s\n", strings.Join(paths, ", "))
	}
	return 0
}

// runSweep is the multi-seed path: the shuffle template repeated over
// derived sub-seeds per backend, aggregated by the sweep engine.
func runSweep(opt harness.ShuffleOptions, kinds []store.BackendKind, seed int64, runs, parallel int, csv, jsonOut bool, out, errw io.Writer) int {
	p := harness.DefaultSweepParams()
	p.FatTreeK = opt.FatTreeK
	p.Mappers = opt.Mappers
	p.Reducers = opt.Reducers
	p.Bytes = opt.BytesPerPair
	p.ShuffleSkew = opt.Skew
	p.Straggler = opt.StragglerFactor
	var cells []sweep.Cell
	for _, be := range kinds {
		cell, err := harness.NewSweepCell("shuffle", be, p)
		if err != nil {
			fmt.Fprintf(errw, "polyshuffle: %v\n", err)
			return 2
		}
		cells = append(cells, cell)
	}
	res, err := sweep.Matrix{Cells: cells, Seeds: runs, BaseSeed: seed, Parallelism: parallel}.Run()
	if err != nil {
		fmt.Fprintf(errw, "polyshuffle: %v\n", err)
		return 1
	}
	switch {
	case jsonOut:
		js, err := res.JSON()
		if err != nil {
			fmt.Fprintf(errw, "polyshuffle: %v\n", err)
			return 1
		}
		out.Write(js)
		io.WriteString(out, "\n")
	case csv:
		fmt.Fprint(out, res.CSV())
	default:
		fmt.Fprint(out, res.Table(nil))
	}
	for _, c := range res.Cells {
		if len(c.Errors) > 0 {
			fmt.Fprintf(errw, "polyshuffle: backend %s: %d run(s) failed: %s\n",
				c.Backend, len(c.Errors), c.Errors[0])
			return 1
		}
	}
	return 0
}

func writeTable(w io.Writer, opt harness.ShuffleOptions, runs []harness.ShuffleRun) {
	fmt.Fprintf(w, "== Polyraptor shuffle (many-to-many) ==\n")
	straggler := "off"
	if opt.StragglerFactor > 1 {
		straggler = fmt.Sprintf("%gx", opt.StragglerFactor)
	}
	fmt.Fprintf(w, "k=%d, %d mappers x %d reducers (%d pairs), %d KB mean partition, skew=%.2f, straggler=%s\n\n",
		opt.FatTreeK, opt.Mappers, opt.Reducers, opt.Mappers*opt.Reducers,
		opt.BytesPerPair>>10, opt.Skew, straggler)
	fmt.Fprintf(w, "%-11s %10s %10s %10s %10s %9s\n",
		"backend", "shuffle", "FCTp50ms", "FCTp99ms", "agg Gbps", "vs rq")
	var rqTime float64
	for _, r := range runs {
		if r.Backend == "polyraptor" {
			rqTime = r.CompletionTime
		}
	}
	for _, r := range runs {
		slowdown := "-"
		if rqTime > 0 {
			slowdown = fmt.Sprintf("%.2fx", r.CompletionTime/rqTime)
		}
		fmt.Fprintf(w, "%-11s %8.2fms %10.2f %10.2f %10.3f %9s\n",
			r.Backend, r.CompletionTime*1e3,
			r.PairFCT.P50*1e3, r.PairFCT.P99*1e3, r.GoodputGbps, slowdown)
	}
}

func writeCSV(w io.Writer, runs []harness.ShuffleRun) {
	fmt.Fprintln(w, "backend,shuffle_s,pair_fct_p50_s,pair_fct_p95_s,pair_fct_p99_s,goodput_gbps,total_bytes")
	for _, r := range runs {
		fmt.Fprintf(w, "%s,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n",
			r.Backend, r.CompletionTime,
			r.PairFCT.P50, r.PairFCT.P95, r.PairFCT.P99,
			r.GoodputGbps, r.TotalBytes)
	}
}
