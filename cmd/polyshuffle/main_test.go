package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinyArgs keeps the in-process CLI runs sub-second.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-k", "4", "-mappers", "3", "-reducers", "4", "-bytes", "32768",
	}, extra...)
}

// TestRunSmoke drives the whole CLI in-process on a tiny matrix.
func TestRunSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-backend", "rq,tcp"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"Polyraptor shuffle", "3 mappers x 4 reducers (12 pairs)", "polyraptor", "tcp", "vs rq"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-backend", "rq", "-csv"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV should have header + 1 row, got %d lines:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[1], "polyraptor,") {
		t.Fatalf("CSV row %q", lines[1])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-backend", "quic"},
		{"-backend", ","},
		{"-nope"},
		{"-k", "5"},
		{"-k", "4", "-mappers", "10", "-reducers", "7"}, // 17 hosts > 16
		{"-mappers", "0"},
		{"-reducers", "0"},
		{"-bytes", "0"},
		{"-skew", "-1"},
		{"-straggler", "0.5"},
		{"-runs", "0"},
		{"-csv", "-json"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("run(%v) exited %d, want 2; stderr: %s", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("run(%v) printed no error", args)
		}
	}
}

// TestRunValidatesBeforeRunning: an impossible mapper/reducer count is
// reported with the host arithmetic, up front.
func TestRunValidatesBeforeRunning(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-k", "4", "-mappers", "10", "-reducers", "7"}, &out, &errw)
	if code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
	s := errw.String()
	for _, want := range []string{"17 distinct hosts", "k=4", "has 16"} {
		if !strings.Contains(s, want) {
			t.Fatalf("error missing %q: %s", want, s)
		}
	}
	if out.Len() != 0 {
		t.Fatalf("stdout should be empty, got: %s", out.String())
	}
}

// TestRunMultiSeed: -runs > 1 aggregates per backend over derived
// sub-seeds, byte-identically at any parallelism.
func TestRunMultiSeed(t *testing.T) {
	sweepArgs := func(extra ...string) []string {
		return tinyArgs(append([]string{"-backend", "rq,tcp", "-runs", "3"}, extra...)...)
	}
	var serial, parallel, errw bytes.Buffer
	if code := run(sweepArgs("-parallel", "1", "-json"), &serial, &errw); code != 0 {
		t.Fatalf("serial run exited %d: %s", code, errw.String())
	}
	errw.Reset()
	if code := run(sweepArgs("-json"), &parallel, &errw); code != 0 {
		t.Fatalf("parallel run exited %d: %s", code, errw.String())
	}
	if serial.String() != parallel.String() {
		t.Fatalf("JSON differs between -parallel 1 and default:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
	var res struct {
		Seeds int `json:"seeds"`
		Cells []struct {
			Scenario string   `json:"scenario"`
			Backend  string   `json:"backend"`
			Errors   []string `json:"errors"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(serial.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if res.Seeds != 3 || len(res.Cells) != 2 {
		t.Fatalf("decoded %d cells x %d seeds, want 2 x 3", len(res.Cells), res.Seeds)
	}
	for _, c := range res.Cells {
		if c.Scenario != "shuffle" || len(c.Errors) > 0 {
			t.Fatalf("cell %+v", c)
		}
	}

	var table bytes.Buffer
	errw.Reset()
	if code := run(sweepArgs(), &table, &errw); code != 0 {
		t.Fatalf("table run exited %d: %s", code, errw.String())
	}
	for _, want := range []string{"shuffle/polyraptor", "shuffle/tcp", "shuffle_s", "±CI95"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("aggregate table missing %q:\n%s", want, table.String())
		}
	}
}

// TestRunHelpExitsZero: -h prints usage and exits 0.
func TestRunHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("run(-h) exited %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "Usage") {
		t.Fatalf("help output missing usage: %s", errw.String())
	}
}
