// Command polybench regenerates every figure of the Polyraptor paper
// (SIGCOMM 2018) as text tables or CSV.
//
// Usage:
//
//	polybench -fig 1a                 # scaled-down default
//	polybench -fig 1b -scale medium   # larger fabric, more sessions
//	polybench -fig 1c -scale paper    # the paper's exact parameters
//	polybench -fig ablations
//	polybench -fig all -csv
//
// Scaled-down runs preserve per-host delivered load, so the *shape*
// of every figure (who wins, by what factor, where crossings fall)
// matches the paper; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polyraptor/internal/harness"
	"polyraptor/internal/stats"
	"polyraptor/internal/workload"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1a, 1b, 1c, ablations, all")
		scale  = flag.String("scale", "bench", "experiment scale: bench, medium, paper")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		points = flag.Int("points", 16, "max points per rank curve (1a/1b)")
		seed   = flag.Int64("seed", 1, "base seed")
		reps   = flag.Int("reps", 0, "override Figure 1c repetitions (0 = scale default)")
	)
	flag.Parse()

	sc, inc := scales(*scale)
	sc.Seed = *seed
	inc.Seed = *seed
	if *reps > 0 {
		inc.Repetitions = *reps
	}

	switch *fig {
	case "1a":
		runRank("Figure 1a — multicast replication", harness.Figure1a(sc, *points), sc, *csv)
	case "1b":
		runRank("Figure 1b — multi-source fetch", harness.Figure1b(sc, *points), sc, *csv)
	case "1c":
		runIncast(inc, *csv)
	case "ablations":
		runAblations(sc)
	case "ext":
		runExtensions(sc)
	case "all":
		runRank("Figure 1a — multicast replication", harness.Figure1a(sc, *points), sc, *csv)
		runRank("Figure 1b — multi-source fetch", harness.Figure1b(sc, *points), sc, *csv)
		runIncast(inc, *csv)
		runAblations(sc)
		runExtensions(sc)
	default:
		fmt.Fprintf(os.Stderr, "polybench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

// scales maps the -scale flag to figure and incast configurations.
func scales(name string) (harness.Scale, harness.IncastOptions) {
	switch name {
	case "bench":
		inc := harness.BenchIncastOptions()
		return harness.BenchScale(), inc
	case "medium":
		sc := harness.Scale{FatTreeK: 6, Sessions: 1000, Bytes: 1 << 20, LoadFactor: 0.33, Seed: 1}
		inc := harness.DefaultIncastOptions()
		inc.FatTreeK = 6
		inc.SenderCounts = []int{2, 5, 10, 15, 20, 30, 40}
		inc.Repetitions = 5
		return sc, inc
	case "paper":
		return harness.PaperScale(), harness.DefaultIncastOptions()
	default:
		fmt.Fprintf(os.Stderr, "polybench: unknown scale %q (bench|medium|paper)\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

func runRank(title string, series []harness.FigureSeries, sc harness.Scale, csv bool) {
	start := time.Now()
	var cols []stats.Series
	var xs []string
	for i, s := range series {
		if i == 0 {
			for _, x := range s.X {
				xs = append(xs, fmt.Sprintf("%.0f", x))
			}
		}
		cols = append(cols, stats.Series{Name: s.Label, Points: s.Y})
	}
	emit(title, fmt.Sprintf("k=%d hosts=%d sessions=%d bytes=%d",
		sc.FatTreeK, sc.FatTreeK*sc.FatTreeK*sc.FatTreeK/4, sc.Sessions, sc.Bytes),
		"rank", xs, cols, csv, start)
}

func runIncast(opt harness.IncastOptions, csv bool) {
	start := time.Now()
	series := harness.Figure1c(opt)
	var cols []stats.Series
	var xs []string
	for i, s := range series {
		if i == 0 {
			for _, x := range s.X {
				xs = append(xs, fmt.Sprintf("%.0f", x))
			}
		}
		cols = append(cols, stats.Series{Name: s.Label, Points: s.Y})
		cols = append(cols, stats.Series{Name: s.Label + " ±CI", Points: s.YErr})
	}
	emit("Figure 1c — incast", fmt.Sprintf("k=%d reps=%d", opt.FatTreeK, opt.Repetitions),
		"senders", xs, cols, csv, start)
}

func runAblations(sc harness.Scale) {
	k := sc.FatTreeK
	fmt.Println("== Ablations (DESIGN.md A1-A4) ==")
	a1 := harness.RunAblationNoTrim(k, 12, 70<<10, sc.Seed)
	fmt.Printf("A1 packet trimming (12-way incast, 70KB): with=%.3f Gbps  without=%.3f Gbps\n",
		a1.WithTrim, a1.WithoutTrim)
	a2 := harness.RunAblationInitialWindow(k, 40<<10, 20, sc.Seed)
	fmt.Printf("A2 first-RTT window (40KB flows): with=%v  pull-only=%v (mean FCT)\n",
		a2.MeanFCTWindow, a2.MeanFCTNoWindow)
	a3 := harness.RunAblationPartitioning(k, 3, 8, 512<<10, sc.Seed)
	fmt.Printf("A3 multi-source ESI scheme: partitioned=%.3f Gbps  random=%.3f Gbps\n",
		a3.GoodputPartitioned, a3.GoodputRandom)
	a4 := harness.RunAblationDecodeLatency(k, 512<<10, 2000, 6, sc.Seed)
	fmt.Printf("A4 decode latency (2µs/symbol): none=%.3f Gbps  with=%.3f Gbps\n",
		a4.GoodputNoLatency, a4.GoodputWithLatency)
	fmt.Println()
}

func runExtensions(sc harness.Scale) {
	k := sc.FatTreeK
	fmt.Println("== Extensions (paper's 'current work': DESIGN.md E1-E4, Ext-S) ==")
	e1 := harness.RunHotspotExperiment(k, 0.3, 10, 8, 1<<20, sc.Seed)
	fmt.Printf("E1 hotspots (30%% core links at 1/10 rate, %d degraded): RQ1=%.3f  RQ3=%.3f  TCP=%.3f Gbps\n",
		e1.DegradedLinks, e1.RQ1, e1.RQ3, e1.TCP1)
	for _, dist := range []workload.SizeDist{workload.WebSearchDist(), workload.DataMiningDist()} {
		e2 := harness.RunFlowSizeExperiment(k, dist, 60, sc.Seed)
		fmt.Printf("E2 %s workload:\n", e2.Dist)
		for i := range e2.RQ {
			fmt.Printf("   %-10s RQ %10v / %.3f Gbps (n=%d)   TCP %10v / %.3f Gbps\n",
				e2.RQ[i].Label, e2.RQ[i].MeanFCT, e2.RQ[i].MeanGoodput, e2.RQ[i].Count,
				e2.TCP[i].MeanFCT, e2.TCP[i].MeanGoodput)
		}
	}
	inc := harness.IncastOptions{FatTreeK: k, Trimming: true}
	fmt.Printf("E3 DCTCP 12-way incast (256KB): RQ=%.3f  TCP=%.3f  DCTCP=%.3f Gbps\n",
		harness.RunIncastRQ(inc, 12, 256<<10, sc.Seed),
		harness.RunIncastTCP(inc, 12, 256<<10, sc.Seed),
		harness.RunIncastDCTCP(inc, 12, 256<<10, sc.Seed))
	for _, ratio := range []int64{1, 4} {
		e4 := harness.RunOversubscription(k, ratio, sc.Seed)
		fmt.Printf("E4 oversubscription %d:1 (12-way incast): RQ=%.3f  TCP=%.3f Gbps\n",
			e4.Ratio, e4.RQ, e4.TCP)
	}
	sOn := harness.RunStragglerExperiment(true, 2<<20, sc.Seed)
	sOff := harness.RunStragglerExperiment(false, 2<<20, sc.Seed)
	fmt.Printf("Ext-S straggler detachment: healthy %.3f Gbps (on; straggler detached=%v at %.3f) vs %.3f Gbps (off)\n",
		sOn.HealthyGoodput, sOn.Detached, sOn.StragglerGoodput, sOff.HealthyGoodput)
	fmt.Println()
}

func emit(title, subtitle, xLabel string, xs []string, cols []stats.Series, csv bool, start time.Time) {
	if csv {
		fmt.Printf("# %s (%s)\n%s\n", title, subtitle, stats.RenderCSV(xLabel, xs, cols))
		return
	}
	fmt.Printf("== %s ==\n(%s, goodput in Gbps, elapsed %v)\n%s\n",
		title, subtitle, time.Since(start).Round(time.Millisecond), stats.RenderTable(xLabel, xs, cols))
}
