package main

import "testing"

func TestScales(t *testing.T) {
	sc, inc := scales("bench")
	if sc.Sessions == 0 || len(inc.SenderCounts) == 0 {
		t.Fatalf("bench scale empty: %+v / %+v", sc, inc)
	}
	med, medInc := scales("medium")
	if med.Sessions <= sc.Sessions {
		t.Fatal("medium must exceed bench")
	}
	if medInc.FatTreeK*medInc.FatTreeK*medInc.FatTreeK/4 <= medInc.SenderCounts[len(medInc.SenderCounts)-1] {
		t.Fatal("medium incast fabric too small for its sender counts")
	}
	paper, paperInc := scales("paper")
	if paper.FatTreeK != 10 || paper.Sessions != 10000 {
		t.Fatalf("paper scale wrong: %+v", paper)
	}
	if paperInc.SenderCounts[len(paperInc.SenderCounts)-1] != 70 {
		t.Fatal("paper incast must reach 70 senders")
	}
}
