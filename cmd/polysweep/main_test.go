package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"polyraptor/internal/sweep"
)

// tinyArgs keeps CLI smoke tests sub-second.
func tinyArgs(extra ...string) []string {
	base := []string{
		"-k", "4", "-bytes", "32768", "-senders", "4",
		"-objects", "8", "-requests", "20", "-seeds", "2",
	}
	return append(base, extra...)
}

// TestRunSmokeTable drives the default table path in-process.
func TestRunSmokeTable(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-scenarios", "incast", "-backends", "rq,tcp"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"sweep: 2 cells x 2 seeds", "incast/polyraptor", "incast/tcp", "goodput_gbps", "±CI95"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(errw.String(), "4 runs") {
		t.Fatalf("stderr missing run count: %s", errw.String())
	}
}

// TestRunShuffleScenario: the shuffle cell runs through the CLI and
// reports its completion-time metric.
func TestRunShuffleScenario(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-scenarios", "shuffle", "-backends", "rq,tcp",
		"-mappers", "3", "-reducers", "4"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"shuffle/polyraptor", "shuffle/tcp", "shuffle_s", "pair_fct_p99_s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunJSONParallelIdentical: the CLI's acceptance property — JSON
// on stdout is byte-identical at -parallel 1 and the default pool.
func TestRunJSONParallelIdentical(t *testing.T) {
	runJSON := func(parallel string) string {
		var out, errw bytes.Buffer
		code := run(tinyArgs("-scenarios", "incast,storage", "-backends", "rq,tcp",
			"-seeds", "5", "-format", "json", "-parallel", parallel), &out, &errw)
		if code != 0 {
			t.Fatalf("run(-parallel %s) exited %d: %s", parallel, code, errw.String())
		}
		return out.String()
	}
	serial := runJSON("1")
	parallel := runJSON("0")
	if serial != parallel {
		t.Fatalf("JSON differs between -parallel 1 and -parallel 0:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	var res sweep.Result
	if err := json.Unmarshal([]byte(serial), &res); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(res.Cells) != 4 || res.Seeds != 5 {
		t.Fatalf("decoded %d cells x %d seeds, want 4 x 5", len(res.Cells), res.Seeds)
	}
}

// TestRunCSV: CSV has a header and one row per (cell, metric).
func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(tinyArgs("-scenarios", "incast", "-backends", "rq", "-format", "csv"), &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,backend,params,metric,n,mean,ci95") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "incast,polyraptor,") {
		t.Fatalf("row = %q", lines[1])
	}
}

// TestRunRejectsBadFlags: every malformed invocation fails fast with
// exit code 2, before any simulation runs.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scenarios", "figure9"},
		{"-backends", "quic"},
		{"-backends", ","},
		{"-scenarios", ","},
		{"-seeds", "0"},
		{"-format", "yaml"},
		{"-k", "5"},
		{"-k", "4", "-senders", "99", "-scenarios", "incast"},
		{"-k", "4", "-replicas", "99", "-scenarios", "fig1a"},
		{"-k", "4", "-replicas", "50", "-scenarios", "storage"},
		{"-k", "4", "-mappers", "10", "-reducers", "7", "-scenarios", "shuffle"},
		{"-straggler", "0.5", "-scenarios", "shuffle"},
		{"-fail", "meteor"},
		{"-nope"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code == 0 {
			t.Fatalf("run(%v) succeeded, want failure; stderr: %s", args, errw.String())
		}
	}
}

// TestParseScenariosAll: "all" covers every canned scenario plus the
// ablation bundle.
func TestParseScenariosAll(t *testing.T) {
	got, err := parseScenarios("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || got[len(got)-1] != "ablations" {
		t.Fatalf("parseScenarios(all) = %v", got)
	}
}

// TestRunHelpExitsZero: -h prints usage and exits 0.
func TestRunHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("run(-h) exited %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "Usage") {
		t.Fatalf("help output missing usage: %s", errw.String())
	}
}

// TestRunAblationsBackendNote: selecting a non-rq backend with the
// ablations scenario is called out instead of silently ignored.
func TestRunAblationsBackendNote(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-scenarios", "ablations", "-backends", "tcp", "-k", "4", "-seeds", "1"}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "rq backend") {
		t.Fatalf("stderr missing ablation backend note: %s", errw.String())
	}
}

// TestRunRejectsSmallFabricForAblations: a k=2 fabric cannot host the
// 12-sender A1 incast; this used to spin the peer picker forever.
func TestRunRejectsSmallFabricForAblations(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-scenarios", "ablations", "-k", "2", "-seeds", "1"}, &out, &errw); code != 2 {
		t.Fatalf("run exited %d, want 2; stderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "out-of-rack") {
		t.Fatalf("error missing fabric bound: %s", errw.String())
	}
}
