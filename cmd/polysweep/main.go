// Command polysweep runs declarative experiment sweeps: a matrix of
// backend x scenario cells, each repeated over derived sub-seeds,
// executed concurrently on a worker pool and aggregated to mean, 95%
// confidence interval and tail percentiles. It is the multi-seed,
// parallel path to every experiment the repo knows how to run —
// reproducing a paper figure honestly (5 seeded repetitions with
// Student-t error bars) in minutes instead of hours.
//
// Results are byte-identical at any -parallel setting: each run gets
// its own SplitMix-derived sub-seed and its own simulation, and
// aggregation order is fixed by the matrix, not by completion order.
//
// Examples:
//
//	polysweep                                        # incast+storage x all backends x 5 seeds
//	polysweep -scenarios all -seeds 5
//	polysweep -scenarios incast -backends rq,dctcp -senders 16
//	polysweep -scenarios storage -requests 300 -fail rack -format json
//	polysweep -scenarios ablations -seeds 3
//	polysweep -scenarios chaos -chaos-frac 0.25 -chaos-recover-at 50ms
//	polysweep -slo-fct 5ms                           # PolyMeter: histograms + SLO attainment
//	polysweep -meter                                 # histograms only (attainment = completion rate)
//	polysweep -parallel 1                            # serial reference run
//	polysweep -scenarios chaos -trace -v             # PolyScope trace per run, progress on stderr
//	polysweep -cpuprofile sweep.pprof -memprofile sweep.mprof
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"polyraptor/internal/chaos"
	"polyraptor/internal/harness"
	"polyraptor/internal/metrics"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive the
// whole CLI in-process.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polysweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	def := harness.DefaultSweepParams()
	stdef := def.Store
	var (
		scenarios = fs.String("scenarios", "incast,storage", "comma list of fig1a, fig1b, incast, shuffle, storage, chaos, ablations, or all")
		backends  = fs.String("backends", "all", "comma list of rq|polyraptor, tcp, dctcp, or all")
		seeds     = fs.Int("seeds", 5, "repetitions per cell (paper: 5)")
		seed      = fs.Int64("seed", 1, "base seed for sub-seed derivation")
		parallel  = fs.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS)")
		format    = fs.String("format", "table", "output format: table, csv, json")
		verbose   = fs.Bool("v", false, "print per-run progress to stderr as cells finish")

		meterOn = fs.Bool("meter", false, "attach PolyMeter: pooled FCT/goodput/queue/stall histograms and slo_attainment per cell")
		sloFCT  = fs.Duration("slo-fct", 0, "SLO: per-flow completion deadline; implies -meter (0 = no deadline)")
		sloGbps = fs.Float64("slo-goodput", 0, "SLO: per-flow goodput floor in Gbps; implies -meter (0 = no floor)")

		trace    = fs.Bool("trace", false, "record a PolyScope trace for every run (incast/shuffle/chaos scenarios) and write per-run export files")
		traceOut = fs.String("trace-out", "polyscope", "base path for -trace files (<base>-<scenario>-<backend>-s<seed>.trace.json, ...)")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")

		k        = fs.Int("k", def.FatTreeK, "fat-tree arity (k even; hosts = k^3/4)")
		bytes    = fs.Int64("bytes", def.Bytes, "object bytes (per sender for incast)")
		replicas = fs.Int("replicas", def.Replicas, "replica count (fig1a/fig1b, storage)")
		senders  = fs.Int("senders", def.Senders, "incast fan-in")
		sessions = fs.Int("sessions", def.Sessions, "fig1a/fig1b session count")
		load     = fs.Float64("load", def.LoadFactor, "fig1a/fig1b offered-load fraction")

		mappers   = fs.Int("mappers", def.Mappers, "shuffle: mapper count M")
		reducers  = fs.Int("reducers", def.Reducers, "shuffle: reducer count R (M+R distinct hosts)")
		skew      = fs.Float64("skew", def.ShuffleSkew, "shuffle: Zipf skew of partition sizes across reducers")
		straggler = fs.Float64("straggler", def.Straggler, "shuffle: scale one mapper's partitions by this factor (0 = off)")

		chdef        = def.Chaos
		chaosPattern = fs.String("chaos-pattern", chdef.Pattern, "chaos: traffic pattern (one2one, incast, multicast, shuffle)")
		chaosFlows   = fs.Int("chaos-flows", chdef.Flows, "chaos: one2one flow count")
		chaosFault   = fs.String("chaos-fault", chdef.Fault.Kind.String(), "chaos: fault kind (link, switch, loss, flap)")
		chaosLayer   = fs.String("chaos-layer", chdef.Fault.Layer.String(), "chaos: fabric tier (core, agg, host)")
		chaosFrac    = fs.Float64("chaos-frac", chdef.Fault.Frac, "chaos: fraction of the tier struck")
		chaosFailAt  = fs.Duration("chaos-fail-at", chdef.Fault.FailAt, "chaos: when the fault strikes")
		chaosRecover = fs.Duration("chaos-recover-at", chdef.Fault.RecoverAt, "chaos: when it heals (0 = never)")
		chaosFlap    = fs.Duration("chaos-flap-period", chdef.Fault.FlapPeriod, "chaos: flap cycle length")
		chaosLoss    = fs.Float64("chaos-loss-rate", chdef.Fault.LossRate, "chaos: per-frame loss probability")
		chaosDeadl   = fs.Duration("chaos-deadline", chdef.Deadline, "chaos: sim-time budget; incomplete flows count as stalled")

		objects  = fs.Int("objects", stdef.Objects, "storage: pre-loaded catalogue objects")
		requests = fs.Int("requests", stdef.Requests, "storage: client requests")
		putfrac  = fs.Float64("putfrac", stdef.PutFrac, "storage: fraction of requests that are PUTs")
		zipf     = fs.Float64("zipf", stdef.ZipfSkew, "storage: Zipf popularity skew")
		failMode = fs.String("fail", stdef.FailMode.String(), "storage: mid-run failure: none, server, rack")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *seeds < 1 {
		fmt.Fprintf(errw, "polysweep: -seeds must be >= 1, got %d\n", *seeds)
		return 2
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		fmt.Fprintf(errw, "polysweep: unknown format %q (table|csv|json)\n", *format)
		return 2
	}
	if *sloFCT < 0 {
		fmt.Fprintf(errw, "polysweep: -slo-fct must be >= 0, got %v\n", *sloFCT)
		return 2
	}
	if *sloGbps < 0 {
		fmt.Fprintf(errw, "polysweep: -slo-goodput must be >= 0, got %v\n", *sloGbps)
		return 2
	}

	p := def
	p.FatTreeK = *k
	p.Bytes = *bytes
	p.Replicas = *replicas
	p.Senders = *senders
	p.Sessions = *sessions
	p.LoadFactor = *load
	p.Mappers = *mappers
	p.Reducers = *reducers
	p.ShuffleSkew = *skew
	p.Straggler = *straggler
	p.Store.FatTreeK = *k
	p.Store.ObjectBytes = *bytes
	p.Store.Replicas = *replicas
	p.Store.Objects = *objects
	p.Store.Requests = *requests
	p.Store.PutFrac = *putfrac
	p.Store.ZipfSkew = *zipf
	mode, ok := store.ParseFailMode(*failMode)
	if !ok {
		fmt.Fprintf(errw, "polysweep: unknown failure mode %q\n", *failMode)
		return 2
	}
	p.Store.FailMode = mode
	p.Store.Seed = *seed
	if *sloFCT > 0 || *sloGbps > 0 {
		p.SLO = &metrics.SLO{FCTDeadline: sloFCT.Seconds(), GoodputFloor: *sloGbps}
	} else if *meterOn {
		p.Meter = true
	}

	ckind, ok := chaos.ParseKind(*chaosFault)
	if !ok {
		fmt.Fprintf(errw, "polysweep: unknown chaos fault kind %q (link, switch, loss, flap)\n", *chaosFault)
		return 2
	}
	clayer, ok := chaos.ParseLayer(*chaosLayer)
	if !ok {
		fmt.Fprintf(errw, "polysweep: unknown chaos layer %q (core, agg, host)\n", *chaosLayer)
		return 2
	}
	p.Chaos.FatTreeK = *k
	p.Chaos.Bytes = *bytes
	p.Chaos.Senders = *senders
	p.Chaos.Replicas = *replicas
	p.Chaos.Mappers = *mappers
	p.Chaos.Reducers = *reducers
	p.Chaos.Pattern = *chaosPattern
	p.Chaos.Flows = *chaosFlows
	p.Chaos.Fault = chaos.Plan{
		Kind:       ckind,
		Layer:      clayer,
		Frac:       *chaosFrac,
		FailAt:     *chaosFailAt,
		RecoverAt:  *chaosRecover,
		FlapPeriod: *chaosFlap,
		LossRate:   *chaosLoss,
	}
	p.Chaos.Deadline = *chaosDeadl

	scen, err := parseScenarios(*scenarios)
	if err != nil {
		fmt.Fprintf(errw, "polysweep: %v\n", err)
		return 2
	}
	if *trace {
		// Traceable-scenario validation happens in NewSweepCell, but
		// ablation cells bypass it — reject the combination here so
		// -trace never silently produces nothing.
		for _, s := range scen {
			if s == "ablations" {
				fmt.Fprintf(errw, "polysweep: -trace does not support the ablations bundle (traceable: %v)\n",
					harness.TraceableScenarios())
				return 2
			}
		}
		p.Trace = &harness.TraceOptions{}
		var traceMu sync.Mutex
		p.TraceSink = func(scenario, backend string, seed int64, tr *telemetry.Trace) {
			base := fmt.Sprintf("%s-%s-%s-s%d", *traceOut, scenario, backend, seed)
			paths, err := tr.WriteFiles(base)
			traceMu.Lock()
			defer traceMu.Unlock()
			if err != nil {
				fmt.Fprintf(errw, "polysweep: trace %s: %v\n", base, err)
				return
			}
			fmt.Fprintf(errw, "polysweep: wrote %s\n", strings.Join(paths, ", "))
		}
	}
	kinds, err := store.ParseBackends(*backends)
	if err != nil {
		fmt.Fprintf(errw, "polysweep: %v\n", err)
		return 2
	}
	if err := validateParams(p, scen); err != nil {
		fmt.Fprintf(errw, "polysweep: %v\n", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(errw, "polysweep: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(errw, "polysweep: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintf(errw, "polysweep: %v\n", err)
			}
		}()
	}

	var cells []sweep.Cell
	for _, s := range scen {
		if s == "ablations" {
			// Ablations contrast Polyraptor against itself (trimming
			// off, pull-only start, ...), so the backend axis does not
			// apply — say so instead of silently dropping it.
			if *backends != "all" && *backends != "rq" && *backends != "polyraptor" {
				fmt.Fprintln(errw, "polysweep: note: ablation cells always run on the rq backend; -backends does not apply to them")
			}
			cells = append(cells, harness.AblationCells(p)...)
			continue
		}
		for _, be := range kinds {
			cell, err := harness.NewSweepCell(s, be, p)
			if err != nil {
				fmt.Fprintf(errw, "polysweep: %v\n", err)
				return 2
			}
			cells = append(cells, cell)
		}
	}

	start := time.Now()
	m := sweep.Matrix{Cells: cells, Seeds: *seeds, BaseSeed: *seed, Parallelism: *parallel}
	if *verbose {
		// Progress lines go to stderr in completion order; stdout stays
		// byte-identical across parallelism settings.
		m.Progress = func(p sweep.Progress) {
			fmt.Fprintf(errw, "polysweep: [%d/%d] %s seed=%d elapsed=%v eta=%v\n",
				p.Done, p.Total, p.Cell.Name(), p.Seed,
				p.Elapsed.Round(time.Millisecond), p.ETA.Round(time.Millisecond))
		}
	}
	res, err := m.Run()
	if err != nil {
		fmt.Fprintf(errw, "polysweep: %v\n", err)
		return 1
	}
	// Wall clock goes to stderr so machine-readable stdout stays
	// byte-identical across parallelism settings.
	fmt.Fprintf(errw, "polysweep: %d cells x %d seeds (%d runs) in %v\n",
		len(cells), *seeds, len(cells)**seeds, time.Since(start).Round(time.Millisecond))

	switch *format {
	case "table":
		fmt.Fprint(out, res.Table(nil))
	case "csv":
		fmt.Fprint(out, res.CSV())
	case "json":
		js, err := res.JSON()
		if err != nil {
			fmt.Fprintf(errw, "polysweep: %v\n", err)
			return 1
		}
		out.Write(js)
		io.WriteString(out, "\n")
	}
	if bad := failedRuns(res); bad > 0 {
		fmt.Fprintf(errw, "polysweep: %d run(s) failed (see errors above)\n", bad)
		return 1
	}
	return 0
}

// parseScenarios expands the -scenarios flag, preserving order and
// rejecting unknown names before anything runs.
func parseScenarios(arg string) ([]string, error) {
	if arg == "all" {
		return append(harness.SweepScenarios(), "ablations"), nil
	}
	known := map[string]bool{"ablations": true}
	for _, s := range harness.SweepScenarios() {
		known[s] = true
	}
	var out []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown scenario %q (have %v, ablations)", name, harness.SweepScenarios())
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	return out, nil
}

// validateParams checks the scenario parameters against the fabric
// before any cell runs — the sweep equivalent of polystore's up-front
// flag validation.
func validateParams(p harness.SweepParams, scenarios []string) error {
	if err := topology.CheckArity(p.FatTreeK); err != nil {
		return err
	}
	for _, s := range scenarios {
		switch s {
		case "ablations":
			// A1 runs a 12-sender incast; peers must be out-of-rack, so
			// a too-small fabric would spin the peer picker forever.
			if topology.OutOfRackHosts(p.FatTreeK) < 12 {
				return fmt.Errorf("ablations need >= 12 out-of-rack hosts (k >= 4), k=%d fabric has %d",
					p.FatTreeK, topology.OutOfRackHosts(p.FatTreeK))
			}
		case "incast":
			if err := topology.CheckFanout(p.FatTreeK, p.Senders, "senders"); err != nil {
				return fmt.Errorf("incast %w", err)
			}
		case "shuffle":
			opt := harness.ShuffleOptions{
				FatTreeK:        p.FatTreeK,
				Mappers:         p.Mappers,
				Reducers:        p.Reducers,
				BytesPerPair:    p.Bytes,
				Skew:            p.ShuffleSkew,
				StragglerFactor: p.Straggler,
			}
			if err := opt.Validate(); err != nil {
				return err
			}
		case "fig1a", "fig1b":
			if err := topology.CheckFanout(p.FatTreeK, p.Replicas, "replicas"); err != nil {
				return fmt.Errorf("%s %w", s, err)
			}
			if p.Sessions < 1 {
				return fmt.Errorf("%s needs sessions >= 1, got %d", s, p.Sessions)
			}
			if p.LoadFactor <= 0 {
				return fmt.Errorf("%s needs load > 0, got %g", s, p.LoadFactor)
			}
		case "storage":
			if err := p.Store.Validate(); err != nil {
				return err
			}
		case "chaos":
			if err := p.Chaos.Validate(); err != nil {
				return err
			}
		}
	}
	if p.Bytes < 1 {
		return fmt.Errorf("bytes must be >= 1, got %d", p.Bytes)
	}
	return nil
}

// writeHeapProfile snapshots the heap after a GC — the sweep's live
// set, not transient garbage — into the named file.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// failedRuns counts repetitions that errored across all cells.
func failedRuns(res *sweep.Result) int {
	n := 0
	for _, c := range res.Cells {
		n += len(c.Errors)
	}
	return n
}
