// Command polyload finds each backend's maximum sustainable load. For
// every (scenario, backend) pair it walks a geometric ladder of
// offered load — scaling the scenario's natural knob: the Figure 1 and
// storage load factors, the incast fan-in, the shuffle partition size
// — and scores each rung with PolyMeter: mergeable HDR histograms of
// per-flow FCT and goodput pooled across seeds, and SLO attainment
// (the fraction of offered flows completing within -slo-fct /
// -slo-goodput). It then bisects the bracket where attainment (or the
// -p99-max FCT tail ceiling) first crosses the -target threshold and
// reports the knee: the highest load the backend still sustains.
//
// Every probe is a deterministic metered sweep — fixed base seed,
// order-fixed histogram merging — so the knee is a pure function of
// the flags: re-runs, and runs at any -parallel level, reproduce the
// output byte for byte.
//
// Examples:
//
//	polyload                                         # incast knee, rq vs tcp vs dctcp
//	polyload -scenarios incast,shuffle -backends rq,tcp
//	polyload -slo-fct 5ms -target 0.95               # 95% of flows within 5 ms
//	polyload -p99-max 20ms                           # plus a pooled-P99 ceiling
//	polyload -rungs 6 -refine 0                      # ladder only, no bisection
//	polyload -format json > knees.json               # polyload/v1 JSON
//	polyload -hist-out hists.json                    # per-rung histogram snapshots
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polyraptor/internal/harness"
	"polyraptor/internal/metrics"
	"polyraptor/internal/store"
	"polyraptor/internal/topology"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// report is the polyload/v1 JSON document.
type report struct {
	Schema  string                     `json:"schema"`
	Target  float64                    `json:"target"`
	P99Max  float64                    `json:"p99_max_s,omitempty"`
	Results []harness.SaturationResult `json:"results"`
}

// run is main with its dependencies injected, so tests can drive the
// whole CLI in-process.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polyload", flag.ContinueOnError)
	fs.SetOutput(errw)
	defp := harness.DefaultSweepParams()
	defo := harness.DefaultSaturationOptions("incast")
	var (
		scenarios = fs.String("scenarios", "incast", "comma list of "+strings.Join(harness.SaturationScenarios(), ", "))
		backends  = fs.String("backends", "all", "comma list of rq|polyraptor, tcp, dctcp, or all")

		k        = fs.Int("k", defp.FatTreeK, "fat-tree arity (k even; hosts = k^3/4)")
		bytes    = fs.Int64("bytes", defp.Bytes, "object bytes (per sender for incast; mean per pair for shuffle)")
		senders  = fs.Int("senders", defp.Senders, "incast: base fan-in (the load knob)")
		mappers  = fs.Int("mappers", defp.Mappers, "shuffle: mapper count")
		reducers = fs.Int("reducers", defp.Reducers, "shuffle: reducer count")
		sessions = fs.Int("sessions", defp.Sessions, "fig1a/fig1b: session count")
		loadBase = fs.Float64("load", defp.LoadFactor, "fig1a/fig1b/storage: base load factor (the load knob)")
		objects  = fs.Int("objects", defp.Store.Objects, "storage: object count")
		requests = fs.Int("requests", defp.Store.Requests, "storage: request count")

		sloFCT  = fs.Duration("slo-fct", 0, "SLO: per-flow completion deadline (0 = no deadline)")
		sloGbps = fs.Float64("slo-goodput", defo.SLO.GoodputFloor, "SLO: per-flow goodput floor in Gbps (0 = no floor)")
		target  = fs.Float64("target", defo.Target, "required SLO attainment at a sustainable load")
		p99Max  = fs.Duration("p99-max", 0, "pooled FCT P99 ceiling (0 = attainment only)")

		loadMin  = fs.Float64("load-min", defo.LoadMin, "ladder floor as a multiplier of the base knob")
		loadMax  = fs.Float64("load-max", defo.LoadMax, "ladder ceiling as a multiplier of the base knob")
		rungs    = fs.Int("rungs", defo.Rungs, "geometric ladder size")
		refine   = fs.Int("refine", defo.Refine, "bisection steps after the ladder brackets the knee (0 = ladder only)")
		seeds    = fs.Int("seeds", defo.Seeds, "repetitions per probe over derived sub-seeds")
		seed     = fs.Int64("seed", defo.BaseSeed, "base seed")
		parallel = fs.Int("parallel", 0, "max concurrent repetitions per probe (0 = GOMAXPROCS; never changes results)")

		format  = fs.String("format", "table", "output format: table, csv, json")
		histOut = fs.String("hist-out", "", "write per-rung merged histogram snapshots (JSON) to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "polyload: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	kinds, err := store.ParseBackends(*backends)
	if err != nil {
		fmt.Fprintf(errw, "polyload: %v\n", err)
		return 2
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(errw, "polyload: unknown format %q (table, csv, json)\n", *format)
		return 2
	}
	if *sloFCT < 0 {
		fmt.Fprintf(errw, "polyload: -slo-fct must be >= 0, got %v\n", *sloFCT)
		return 2
	}
	if *sloGbps < 0 {
		fmt.Fprintf(errw, "polyload: -slo-goodput must be >= 0, got %v\n", *sloGbps)
		return 2
	}
	if *p99Max < 0 {
		fmt.Fprintf(errw, "polyload: -p99-max must be >= 0, got %v\n", *p99Max)
		return 2
	}
	if err := topology.CheckArity(*k); err != nil {
		fmt.Fprintf(errw, "polyload: %v\n", err)
		return 2
	}

	params := harness.DefaultSweepParams()
	params.FatTreeK = *k
	params.Bytes = *bytes
	params.Senders = *senders
	params.Mappers = *mappers
	params.Reducers = *reducers
	params.Sessions = *sessions
	params.LoadFactor = *loadBase
	params.Store.FatTreeK = *k
	params.Store.Objects = *objects
	params.Store.Requests = *requests
	params.Store.LoadFactor = *loadBase

	names := strings.Split(*scenarios, ",")
	var opts []harness.SaturationOptions
	for _, name := range names {
		o := harness.SaturationOptions{
			Scenario:    strings.TrimSpace(name),
			Params:      params,
			SLO:         metrics.SLO{FCTDeadline: sloFCT.Seconds(), GoodputFloor: *sloGbps},
			Target:      *target,
			P99Max:      p99Max.Seconds(),
			LoadMin:     *loadMin,
			LoadMax:     *loadMax,
			Rungs:       *rungs,
			Refine:      *refine,
			Seeds:       *seeds,
			BaseSeed:    *seed,
			Parallelism: *parallel,
			KeepHists:   *histOut != "" || *format == "json",
		}
		if err := o.Validate(); err != nil {
			fmt.Fprintf(errw, "polyload: %v\n", err)
			return 2
		}
		// Cell construction validates the scenario options (fabric arity,
		// fan-out, store config) without running anything — surface those
		// as flag errors too.
		for _, be := range kinds {
			if _, err := harness.NewSweepCell(o.Scenario, be, o.Params); err != nil {
				fmt.Fprintf(errw, "polyload: %v\n", err)
				return 2
			}
		}
		opts = append(opts, o)
	}

	rep := report{Schema: "polyload/v1", Target: *target, P99Max: p99Max.Seconds()}
	for _, o := range opts {
		for _, be := range kinds {
			res, err := harness.FindSaturation(o, be)
			if err != nil {
				fmt.Fprintf(errw, "polyload: %v\n", err)
				return 1
			}
			rep.Results = append(rep.Results, res)
		}
	}

	if *histOut != "" {
		if err := writeHists(*histOut, rep.Results); err != nil {
			fmt.Fprintf(errw, "polyload: %v\n", err)
			return 1
		}
		fmt.Fprintf(errw, "polyload: wrote %s\n", *histOut)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(errw, "polyload: %v\n", err)
			return 1
		}
	case "csv":
		writeCSV(out, rep.Results)
	default:
		writeTable(out, rep)
	}
	return 0
}

// histDump is the -hist-out document: every probe's merged histogram
// snapshots, keyed well enough to re-merge downstream.
type histDump struct {
	Scenario string  `json:"scenario"`
	Backend  string  `json:"backend"`
	Load     float64 `json:"load"`
	Knob     float64 `json:"knob"`
	Hists    any     `json:"hists"`
}

func writeHists(path string, results []harness.SaturationResult) error {
	var dump []histDump
	for _, res := range results {
		for _, r := range res.Probes {
			if len(r.Hists) == 0 {
				continue
			}
			dump = append(dump, histDump{
				Scenario: res.Scenario, Backend: res.Backend,
				Load: r.Load, Knob: r.Knob, Hists: r.Hists,
			})
		}
	}
	js, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

func writeCSV(w io.Writer, results []harness.SaturationResult) {
	fmt.Fprintln(w, "scenario,backend,kind,load,knob,slo_attainment,fct_p99_s,goodput_gbps,ok")
	row := func(scenario, backend, kind string, r harness.Rung) {
		fmt.Fprintf(w, "%s,%s,%s,%.6g,%.6g,%.6f,%.6g,%.6g,%t\n",
			scenario, backend, kind, r.Load, r.Knob, r.Attainment, r.FCTP99, r.GoodputGbps, r.OK)
	}
	for _, res := range results {
		for _, r := range res.Ladder {
			row(res.Scenario, res.Backend, "rung", r)
		}
		if res.Knee != nil {
			row(res.Scenario, res.Backend, "knee", *res.Knee)
		}
	}
}

func writeTable(w io.Writer, rep report) {
	fmt.Fprintf(w, "== PolyLoad saturation search ==\n")
	fmt.Fprintf(w, "target attainment %.3f", rep.Target)
	if rep.P99Max > 0 {
		fmt.Fprintf(w, ", pooled FCT P99 <= %.4gs", rep.P99Max)
	}
	fmt.Fprintln(w)
	for _, res := range rep.Results {
		fmt.Fprintf(w, "\n%s/%s (load scales %s):\n", res.Scenario, res.Backend, res.LoadKnob)
		fmt.Fprintf(w, "  %8s %12s %11s %11s %9s  %s\n", "load", res.LoadKnob, "attainment", "FCTp99ms", "Gbps", "")
		for _, r := range res.Ladder {
			mark := "miss"
			if r.OK {
				mark = "ok"
			}
			fmt.Fprintf(w, "  %8.3f %12.4g %11.4f %11.3f %9.3f  %s\n",
				r.Load, r.Knob, r.Attainment, r.FCTP99*1e3, r.GoodputGbps, mark)
		}
		switch {
		case res.Censored == "below-min":
			fmt.Fprintf(w, "  knee: below the ladder floor (%.3g) — backend cannot sustain the minimum load\n", res.Ladder[0].Load)
		case res.Censored == "above-max":
			fmt.Fprintf(w, "  knee: above the ladder ceiling — sustains %s=%.4g and beyond (load >= %.3g)\n",
				res.LoadKnob, res.Knee.Knob, res.Knee.Load)
		default:
			fmt.Fprintf(w, "  knee: max sustainable load %.4g (%s=%.4g, attainment %.4f, FCTp99 %.3fms)\n",
				res.Knee.Load, res.LoadKnob, res.Knee.Knob, res.Knee.Attainment, res.Knee.FCTP99*1e3)
		}
	}
}
