package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickArgs keeps CLI tests to a few hundred milliseconds: a tiny
// ladder on the k=4 fabric, one seed per probe.
func quickArgs(extra ...string) []string {
	base := []string{
		"-k", "4", "-senders", "4", "-bytes", "16384",
		"-scenarios", "incast", "-backends", "rq",
		"-slo-fct", "2ms", "-rungs", "3", "-refine", "1", "-seeds", "1",
	}
	return append(base, extra...)
}

func TestRunTable(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(quickArgs(), &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	for _, want := range []string{"PolyLoad saturation search", "incast/polyraptor", "knee:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(quickArgs("-format", "csv"), &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "scenario,backend,kind,load,knob,slo_attainment,fct_p99_s,goodput_gbps,ok" {
		t.Errorf("bad CSV header: %s", lines[0])
	}
	if len(lines) < 4 {
		t.Errorf("want >= 3 rung rows, got %d lines", len(lines)-1)
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != 8 {
			t.Errorf("row has %d commas, want 8: %s", n, l)
		}
	}
}

func TestRunJSONSchemaAndDeterminism(t *testing.T) {
	var a, b, errw bytes.Buffer
	if code := run(quickArgs("-format", "json"), &a, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if code := run(quickArgs("-format", "json", "-parallel", "4"), &b, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if a.String() != b.String() {
		t.Error("JSON output differs across -parallel settings")
	}
	var rep report
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "polyload/v1" {
		t.Errorf("schema = %q, want polyload/v1", rep.Schema)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(rep.Results))
	}
	res := rep.Results[0]
	if res.Scenario != "incast" || res.Backend != "polyraptor" {
		t.Errorf("unexpected result identity: %s/%s", res.Scenario, res.Backend)
	}
	for i := 1; i < len(res.Ladder); i++ {
		if res.Ladder[i].Load <= res.Ladder[i-1].Load {
			t.Errorf("ladder loads not ascending at %d", i)
		}
	}
	if res.Censored == "" && res.Knee == nil {
		t.Error("uncensored result without a knee")
	}
}

func TestRunHistOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hists.json")
	var out, errw bytes.Buffer
	if code := run(quickArgs("-hist-out", path), &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	var dump []histDump
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("invalid hist dump: %v", err)
	}
	if len(dump) == 0 {
		t.Fatal("hist dump is empty")
	}
	if dump[0].Scenario != "incast" {
		t.Errorf("dump[0].Scenario = %q", dump[0].Scenario)
	}
}

// Every bad flag combination must fail fast with exit code 2 and a
// polyload-prefixed message, before any simulation runs.
func TestBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"positional args", []string{"stray"}},
		{"bad scenario", quickArgs("-scenarios", "nope")},
		{"bad backend", quickArgs("-backends", "quic")},
		{"bad format", quickArgs("-format", "yaml")},
		{"negative slo", quickArgs("-slo-fct", "-1ms")},
		{"negative goodput floor", quickArgs("-slo-goodput", "-2")},
		{"negative p99 ceiling", quickArgs("-p99-max", "-5ms")},
		{"zero target", quickArgs("-target", "0")},
		{"target above one", quickArgs("-target", "1.5")},
		{"inverted ladder", quickArgs("-load-min", "2", "-load-max", "1")},
		{"zero load floor", quickArgs("-load-min", "0")},
		{"one rung", quickArgs("-rungs", "1")},
		{"negative refine", quickArgs("-refine", "-1")},
		{"zero seeds", quickArgs("-seeds", "0")},
		{"odd arity", quickArgs("-k", "5")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			code := run(tc.args, &out, &errw)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errw.String())
			}
			if errw.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}

// -help prints usage and exits 0.
func TestHelp(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-help"}, &out, &errw); code != 0 {
		t.Fatalf("-help exited %d", code)
	}
	if !strings.Contains(errw.String(), "-scenarios") {
		t.Error("usage text missing flag docs")
	}
}
