package main

import "testing"

func TestRunHandshakes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Errorf("-V=full exit = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Errorf("-flags exit = %d, want 0", got)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if got := run([]string{"-analyzers", "nosuch", "./..."}); got != 1 {
		t.Errorf("unknown analyzer exit = %d, want 1", got)
	}
}

// Standalone mode over this command's own package: a main package is
// not sim-visible and carries no annotations, so the suite is clean.
func TestRunStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	if got := run([]string{"."}); got != 0 {
		t.Errorf("standalone run exit = %d, want 0", got)
	}
}
