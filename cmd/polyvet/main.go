// Command polyvet runs the repo's custom determinism/RNG/hot-path
// analyzer suite (internal/polyvet). It drives in two modes:
//
//	polyvet [-deep] [-analyzers a,b] [packages]   standalone, via `go list`
//	go vet -vettool=$(which polyvet) [-deep] ./...  unitchecker protocol
//
// -deep additionally compiles each package with
// -gcflags='-m=2 -d=ssa/check_bce' and enforces the //polyvet:noalloc,
// //polyvet:nobce and //polyvet:inline directives against the
// compiler's real escape, bounds-check and inlining decisions
// (internal/polyvet/deep), reconciling the syntactic hotpath findings
// against the compiler's stack proofs along the way.
//
// Two benchmark gates run instead of package analysis when package
// patterns are omitted:
//
//	polyvet -allocbudget ALLOC_BUDGET.json   newest BENCH_<n>.json vs ceilings
//	polyvet -benchdrift                      consecutive BENCH_<n>.json diffs
//
// Standalone package mode defaults to ./... in the current module.
// Exit status: 0 clean (informational findings do not fail), 2
// findings, 1 internal error (matching go vet's conventions).
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"polyraptor/internal/polyvet"
	"polyraptor/internal/polyvet/deep"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet handshakes before sending any cfg; answer them first.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			polyvet.PrintVersion(os.Stdout, "polyvet")
			return 0
		case a == "-flags" || a == "--flags":
			polyvet.PrintFlagDefs(os.Stdout)
			return 0
		}
	}

	fs := flag.NewFlagSet("polyvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: polyvet [-deep] [-analyzers names] [package patterns]\n")
		fmt.Fprintf(fs.Output(), "       polyvet [-allocbudget file] [-benchdrift] [-benchdir dir]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which polyvet) -deep ./...\n\nanalyzers:\n")
		for _, a := range polyvet.Suite() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	names := fs.String("analyzers", "", "comma-separated subset of the suite (default: all)")
	deepMode := fs.Bool("deep", false, "also run the compiler-ground-truth gates (escape, bce, inline)")
	budgetPath := fs.String("allocbudget", "", "check the newest BENCH_<n>.json against this budget file")
	benchDrift := fs.Bool("benchdrift", false, "diff consecutive BENCH_<n>.json reports for alloc/throughput drift")
	benchDir := fs.String("benchdir", ".", "directory holding the BENCH_<n>.json trajectory")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 1
	}

	rest := fs.Args()

	// Benchmark gates: with no package patterns they run alone, so CI
	// can gate reports without re-analyzing the tree.
	if (*budgetPath != "" || *benchDrift) && len(rest) == 0 {
		return report(runBenchGates(*benchDir, *budgetPath, *benchDrift))
	}

	var sel []string
	if *names != "" {
		sel = strings.Split(*names, ",")
	}
	analyzers, err := polyvet.ByName(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if len(rest) == 1 && polyvet.IsVetCfg(rest[0]) {
		unit, err := polyvet.LoadUnit(rest[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if unit.Pkg == nil {
			return 0
		}
		diags, err := polyvet.RunPackage(unit.Pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *deepMode && !unit.Test {
			res, err := deep.AnalyzePackages(unit.Dir, []string{unit.ImportPath}, []*polyvet.Package{unit.Pkg})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			diags = deep.Reconcile(diags, res.Facts)
			diags = append(diags, res.Diags...)
		}
		return report(diags)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := polyvet.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []polyvet.Diagnostic
	for _, pkg := range pkgs {
		diags, err := polyvet.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
	}
	if *deepMode {
		res, err := deep.AnalyzePackages("", patterns, pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = deep.Reconcile(all, res.Facts)
		all = append(all, res.Diags...)
	}
	if *budgetPath != "" || *benchDrift {
		all = append(all, runBenchGates(*benchDir, *budgetPath, *benchDrift)...)
	}
	return report(all)
}

// runBenchGates runs the allocbudget and/or benchdrift checks,
// converting setup errors into failing diagnostics so a missing or
// malformed report never passes silently.
func runBenchGates(dir, budgetPath string, drift bool) []polyvet.Diagnostic {
	var diags []polyvet.Diagnostic
	var budget *deep.Budget
	if budgetPath != "" {
		d, err := deep.CheckBudget(dir, budgetPath)
		if err != nil {
			return append(diags, errDiag(budgetPath, err))
		}
		diags = append(diags, d...)
		budget, _ = deep.LoadBudget(budgetPath)
	}
	if drift {
		d, err := deep.CheckDrift(dir, budget)
		if err != nil {
			return append(diags, errDiag(dir, err))
		}
		diags = append(diags, d...)
	}
	return diags
}

func errDiag(file string, err error) polyvet.Diagnostic {
	return polyvet.Diagnostic{
		Pos:      token.Position{Filename: file, Line: 1},
		Analyzer: "polyvet",
		Message:  err.Error(),
	}
}

func report(diags []polyvet.Diagnostic) int {
	fatal := false
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
		if !d.Info {
			fatal = true
		}
	}
	if fatal {
		return 2
	}
	return 0
}
