// Command polyvet runs the repo's custom determinism/RNG/hot-path
// analyzer suite (internal/polyvet). It drives in two modes:
//
//	polyvet [-analyzers a,b] [packages]   standalone, via `go list`
//	go vet -vettool=$(which polyvet) ./...  unitchecker protocol
//
// Standalone mode defaults to ./... in the current module. Exit
// status: 0 clean, 2 findings, 1 internal error (matching go vet's
// conventions).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polyraptor/internal/polyvet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet handshakes before sending any cfg; answer them first.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			polyvet.PrintVersion(os.Stdout, "polyvet")
			return 0
		case a == "-flags" || a == "--flags":
			polyvet.PrintFlagDefs(os.Stdout)
			return 0
		}
	}

	fs := flag.NewFlagSet("polyvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: polyvet [-analyzers names] [package patterns]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which polyvet) ./...\n\nanalyzers:\n")
		for _, a := range polyvet.Suite() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	names := fs.String("analyzers", "", "comma-separated subset of the suite (default: all)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 1
	}
	var sel []string
	if *names != "" {
		sel = strings.Split(*names, ",")
	}
	analyzers, err := polyvet.ByName(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && polyvet.IsVetCfg(rest[0]) {
		diags, err := polyvet.RunUnit(rest[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return report(diags)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := polyvet.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []polyvet.Diagnostic
	for _, pkg := range pkgs {
		diags, err := polyvet.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
	}
	return report(all)
}

func report(diags []polyvet.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}
