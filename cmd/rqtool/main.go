// Command rqtool exercises the real RaptorQ codec and the UDP
// transport on real files.
//
// Subcommands:
//
//	rqtool serve -addr :9000 -file blob.bin
//	    Serve a file to pull-driven receivers.
//
//	rqtool fetch -out blob.bin -from host:9000[,host2:9000,...]
//	    Fetch a file; multiple comma-separated sources perform an
//	    uncoordinated multi-source fetch.
//
//	rqtool roundtrip -file blob.bin [-loss 0.2] [-symbol 1024] [-maxk 256]
//	    Offline: encode the file, simulate symbol loss, decode, verify
//	    bit-exactness, and print codec statistics.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"time"

	"polyraptor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "fetch":
		fetch(os.Args[2:])
	case "roundtrip":
		roundtrip(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rqtool {serve|fetch|roundtrip} [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "rqtool:", err)
	os.Exit(1)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":9000", "UDP listen address")
	file := fs.String("file", "", "file to serve")
	_ = fs.Parse(args)
	if *file == "" {
		die(fmt.Errorf("serve: -file required"))
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		die(err)
	}
	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		die(err)
	}
	cfg := polyraptor.DefaultTransportConfig()
	srv, err := polyraptor.NewServer(conn, data, cfg)
	if err != nil {
		die(err)
	}
	layout, err := polyraptor.NewBlockLayout(int64(len(data)), cfg.SymbolSize, cfg.MaxBlockK)
	if err != nil {
		die(err)
	}
	fmt.Printf("serving %s (%d bytes, %d blocks) on %s\n",
		*file, len(data), layout.Z(), srv.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		die(err)
	}
}

func fetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	out := fs.String("out", "", "output file")
	from := fs.String("from", "", "comma-separated server addresses")
	timeout := fs.Duration("timeout", time.Minute, "overall deadline")
	_ = fs.Parse(args)
	if *out == "" || *from == "" {
		die(fmt.Errorf("fetch: -out and -from required"))
	}
	var remotes []net.Addr
	for _, a := range splitComma(*from) {
		ra, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			die(err)
		}
		remotes = append(remotes, ra)
	}
	conn, err := net.ListenPacket("udp", ":0")
	if err != nil {
		die(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	data, err := polyraptor.FetchMultiSource(ctx, conn, remotes, uint32(os.Getpid()), polyraptor.DefaultTransportConfig())
	if err != nil {
		die(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	el := time.Since(start)
	fmt.Printf("fetched %d bytes from %d source(s) in %v (%.1f Mbit/s)\n",
		len(data), len(remotes), el.Round(time.Millisecond),
		float64(len(data)*8)/el.Seconds()/1e6)
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func roundtrip(args []string) {
	fs := flag.NewFlagSet("roundtrip", flag.ExitOnError)
	file := fs.String("file", "", "input file")
	loss := fs.Float64("loss", 0.2, "symbol loss fraction")
	symbol := fs.Int("symbol", 1024, "symbol size")
	maxK := fs.Int("maxk", 256, "max source symbols per block")
	seed := fs.Int64("seed", 1, "loss pattern seed")
	_ = fs.Parse(args)
	if *file == "" {
		die(fmt.Errorf("roundtrip: -file required"))
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		die(err)
	}
	t0 := time.Now()
	enc, err := polyraptor.EncodeObject(data, *symbol, *maxK)
	if err != nil {
		die(err)
	}
	encTime := time.Since(t0)
	layout := enc.Layout()
	fmt.Printf("encoded %d bytes: %d blocks, %d source symbols of %d B (%v, %.1f MB/s)\n",
		len(data), layout.Z(), layout.TotalSymbols(), *symbol,
		encTime.Round(time.Millisecond),
		float64(len(data))/encTime.Seconds()/1e6)

	dec, err := polyraptor.NewObjectDecoder(layout)
	if err != nil {
		die(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	lost, delivered, repair := 0, 0, 0
	for sbn, k := range layout.K {
		for i := 0; i < k; i++ {
			if rng.Float64() < *loss {
				lost++
				continue
			}
			delivered++
			if _, err := dec.AddSymbol(sbn, uint32(i), enc.Symbol(sbn, uint32(i))); err != nil {
				die(err)
			}
		}
		esi := uint32(k)
		for !dec.BlockComplete(sbn) {
			if dec.TryDecode() && dec.BlockComplete(sbn) {
				break
			}
			if _, err := dec.AddSymbol(sbn, esi, enc.Symbol(sbn, esi)); err != nil {
				die(err)
			}
			repair++
			esi++
		}
	}
	t1 := time.Now()
	got, err := dec.Object()
	if err != nil {
		die(err)
	}
	decTime := time.Since(t1)
	if !bytes.Equal(got, data) {
		die(fmt.Errorf("roundtrip: decoded object differs from input"))
	}
	fmt.Printf("lost %d source symbols (%.0f%%), used %d repair symbols, overhead %.2f%%\n",
		lost, *loss*100, repair, 100*float64(repair-lost)/float64(layout.TotalSymbols()))
	fmt.Printf("decoded and verified bit-exact (%v)\n", decTime.Round(time.Millisecond))
}
