// Command rqtool exercises the real RaptorQ codec and the UDP
// transport on real files.
//
// Subcommands:
//
//	rqtool serve -addr :9000 -file blob.bin
//	    Serve a file to pull-driven receivers.
//
//	rqtool fetch -out blob.bin -from host:9000[,host2:9000,...]
//	    Fetch a file; multiple comma-separated sources perform an
//	    uncoordinated multi-source fetch.
//
//	rqtool roundtrip -file blob.bin [-loss 0.2] [-symbol 1024] [-maxk 256]
//	    Offline: encode the file, simulate symbol loss, decode, verify
//	    bit-exactness, and print codec statistics.
//
//	rqtool throughput -file blob.bin [-loss 0.3] [-symbol 1436] [-maxk 256] [-reps 3] [-workers 0]
//	    Offline: measure encode and decode throughput (MB/s) and heap
//	    allocations over the file — the codec-pipeline numbers on real
//	    data rather than synthetic benchmark blocks.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"runtime"
	"time"

	"polyraptor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "fetch":
		fetch(os.Args[2:])
	case "roundtrip":
		roundtrip(os.Args[2:])
	case "throughput":
		throughput(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rqtool {serve|fetch|roundtrip|throughput} [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "rqtool:", err)
	os.Exit(1)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":9000", "UDP listen address")
	file := fs.String("file", "", "file to serve")
	_ = fs.Parse(args)
	if *file == "" {
		die(fmt.Errorf("serve: -file required"))
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		die(err)
	}
	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		die(err)
	}
	cfg := polyraptor.DefaultTransportConfig()
	srv, err := polyraptor.NewServer(conn, data, cfg)
	if err != nil {
		die(err)
	}
	layout, err := polyraptor.NewBlockLayout(int64(len(data)), cfg.SymbolSize, cfg.MaxBlockK)
	if err != nil {
		die(err)
	}
	fmt.Printf("serving %s (%d bytes, %d blocks) on %s\n",
		*file, len(data), layout.Z(), srv.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		die(err)
	}
}

func fetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	out := fs.String("out", "", "output file")
	from := fs.String("from", "", "comma-separated server addresses")
	timeout := fs.Duration("timeout", time.Minute, "overall deadline")
	_ = fs.Parse(args)
	if *out == "" || *from == "" {
		die(fmt.Errorf("fetch: -out and -from required"))
	}
	var remotes []net.Addr
	for _, a := range splitComma(*from) {
		ra, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			die(err)
		}
		remotes = append(remotes, ra)
	}
	conn, err := net.ListenPacket("udp", ":0")
	if err != nil {
		die(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	data, err := polyraptor.FetchMultiSource(ctx, conn, remotes, uint32(os.Getpid()), polyraptor.DefaultTransportConfig())
	if err != nil {
		die(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	el := time.Since(start)
	fmt.Printf("fetched %d bytes from %d source(s) in %v (%.1f Mbit/s)\n",
		len(data), len(remotes), el.Round(time.Millisecond),
		float64(len(data)*8)/el.Seconds()/1e6)
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func roundtrip(args []string) {
	fs := flag.NewFlagSet("roundtrip", flag.ExitOnError)
	file := fs.String("file", "", "input file")
	loss := fs.Float64("loss", 0.2, "symbol loss fraction")
	symbol := fs.Int("symbol", 1024, "symbol size")
	maxK := fs.Int("maxk", 256, "max source symbols per block")
	seed := fs.Int64("seed", 1, "loss pattern seed")
	_ = fs.Parse(args)
	if *file == "" {
		die(fmt.Errorf("roundtrip: -file required"))
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		die(err)
	}
	t0 := time.Now()
	enc, err := polyraptor.EncodeObject(data, *symbol, *maxK)
	if err != nil {
		die(err)
	}
	encTime := time.Since(t0)
	layout := enc.Layout()
	fmt.Printf("encoded %d bytes: %d blocks, %d source symbols of %d B (%v, %.1f MB/s)\n",
		len(data), layout.Z(), layout.TotalSymbols(), *symbol,
		encTime.Round(time.Millisecond),
		float64(len(data))/encTime.Seconds()/1e6)

	dec, err := polyraptor.NewObjectDecoder(layout)
	if err != nil {
		die(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	lost, delivered, repair := 0, 0, 0
	for sbn, k := range layout.K {
		for i := 0; i < k; i++ {
			if rng.Float64() < *loss {
				lost++
				continue
			}
			delivered++
			if _, err := dec.AddSymbol(sbn, uint32(i), enc.Symbol(sbn, uint32(i))); err != nil {
				die(err)
			}
		}
		esi := uint32(k)
		for !dec.BlockComplete(sbn) {
			if dec.TryDecode() && dec.BlockComplete(sbn) {
				break
			}
			if _, err := dec.AddSymbol(sbn, esi, enc.Symbol(sbn, esi)); err != nil {
				die(err)
			}
			repair++
			esi++
		}
	}
	t1 := time.Now()
	got, err := dec.Object()
	if err != nil {
		die(err)
	}
	decTime := time.Since(t1)
	if !bytes.Equal(got, data) {
		die(fmt.Errorf("roundtrip: decoded object differs from input"))
	}
	fmt.Printf("lost %d source symbols (%.0f%%), used %d repair symbols, overhead %.2f%%\n",
		lost, *loss*100, repair, 100*float64(repair-lost)/float64(layout.TotalSymbols()))
	fmt.Printf("decoded and verified bit-exact (%v)\n", decTime.Round(time.Millisecond))
}

// throughputOpts are the validated parameters of the throughput mode.
type throughputOpts struct {
	symbol  int
	maxK    int
	reps    int
	workers int
	loss    float64
	seed    int64
}

// validate rejects out-of-range flags before any file I/O happens, so
// a typo fails in microseconds instead of after reading a large file.
func (o throughputOpts) validate() error {
	if o.symbol < 1 || o.symbol > 60000 {
		return fmt.Errorf("throughput: -symbol %d out of range [1, 60000]", o.symbol)
	}
	if o.maxK < 1 {
		return fmt.Errorf("throughput: -maxk %d must be >= 1", o.maxK)
	}
	if o.reps < 1 || o.reps > 1000 {
		return fmt.Errorf("throughput: -reps %d out of range [1, 1000]", o.reps)
	}
	if o.workers < 0 {
		return fmt.Errorf("throughput: -workers %d must be >= 0", o.workers)
	}
	if o.loss < 0 || o.loss >= 1 {
		return fmt.Errorf("throughput: -loss %g out of range [0, 1)", o.loss)
	}
	return nil
}

func throughput(args []string) {
	fs := flag.NewFlagSet("throughput", flag.ExitOnError)
	file := fs.String("file", "", "input file")
	symbol := fs.Int("symbol", 1436, "symbol size (bytes)")
	maxK := fs.Int("maxk", 256, "max source symbols per block")
	reps := fs.Int("reps", 3, "repetitions per phase")
	workers := fs.Int("workers", 0, "block-parallel workers (0 = GOMAXPROCS)")
	loss := fs.Float64("loss", 0.30, "source loss fraction for the lossy decode phase")
	seed := fs.Int64("seed", 1, "loss pattern seed")
	_ = fs.Parse(args)
	opts := throughputOpts{
		symbol: *symbol, maxK: *maxK, reps: *reps,
		workers: *workers, loss: *loss, seed: *seed,
	}
	if err := opts.validate(); err != nil {
		die(err)
	}
	if *file == "" {
		die(fmt.Errorf("throughput: -file required"))
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		die(err)
	}
	if len(data) == 0 {
		die(fmt.Errorf("throughput: %s is empty", *file))
	}
	if err := runThroughput(os.Stdout, data, opts); err != nil {
		die(err)
	}
}

// measurePhase runs f under a MemStats bracket and returns wall time
// plus heap allocation count. A GC up front keeps the previous phase's
// garbage out of this phase's numbers.
func measurePhase(f func() error) (time.Duration, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := f()
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return el, m1.Mallocs - m0.Mallocs, err
}

// runThroughput measures the codec pipeline over real file bytes:
// object encode, systematic decode (no loss) and lossy decode at the
// configured loss fraction, each repeated opts.reps times. Every decode
// is verified bit-exact against the input before its timing counts.
func runThroughput(w io.Writer, data []byte, opts throughputOpts) error {
	mb := float64(len(data)) / 1e6
	report := func(phase string, el time.Duration, allocs uint64) {
		fmt.Fprintf(w, "%-18s %d x %.1f MB in %v  (%.1f MB/s, %d allocs/op)\n",
			phase, opts.reps, mb, el.Round(time.Millisecond),
			mb*float64(opts.reps)/el.Seconds(), allocs/uint64(opts.reps))
	}

	var enc *polyraptor.ObjectEncoder
	el, allocs, err := measurePhase(func() error {
		for r := 0; r < opts.reps; r++ {
			var err error
			enc, err = polyraptor.EncodeObjectWorkers(data, opts.symbol, opts.maxK, opts.workers)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	report("encode", el, allocs)

	layout := enc.Layout()
	decodeOnce := func(loss float64, seed int64) error {
		dec, err := polyraptor.NewObjectDecoder(layout)
		if err != nil {
			return err
		}
		dec.SetWorkers(opts.workers)
		rng := rand.New(rand.NewSource(seed))
		for sbn, k := range layout.K {
			for i := 0; i < k; i++ {
				if loss > 0 && rng.Float64() < loss {
					continue
				}
				if _, err := dec.AddSymbol(sbn, uint32(i), enc.Symbol(sbn, uint32(i))); err != nil {
					return err
				}
			}
			esi := uint32(k)
			for !dec.BlockComplete(sbn) {
				if dec.TryDecode() && dec.BlockComplete(sbn) {
					break
				}
				if _, err := dec.AddSymbol(sbn, esi, enc.Symbol(sbn, esi)); err != nil {
					return err
				}
				esi++
			}
		}
		got, err := dec.Object()
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("throughput: decoded object differs from input")
		}
		return nil
	}
	runDecode := func(loss float64) (time.Duration, uint64, error) {
		return measurePhase(func() error {
			for r := 0; r < opts.reps; r++ {
				if err := decodeOnce(loss, opts.seed+int64(r)); err != nil {
					return err
				}
			}
			return nil
		})
	}

	el, allocs, err = runDecode(0)
	if err != nil {
		return err
	}
	report("decode systematic", el, allocs)

	el, allocs, err = runDecode(opts.loss)
	if err != nil {
		return err
	}
	report(fmt.Sprintf("decode %.0f%% loss", opts.loss*100), el, allocs)
	return nil
}
