package main

import (
	"reflect"
	"testing"
)

func TestSplitComma(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{"a,b,c", []string{"a", "b", "c"}},
		{"a,", []string{"a"}},
		{",a", []string{"a"}},
		{"a,,b", []string{"a", "b"}},
		{"host:9000,host2:9001", []string{"host:9000", "host2:9001"}},
	}
	for _, c := range cases {
		if got := splitComma(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitComma(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
