package main

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestSplitComma(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{"a,b,c", []string{"a", "b", "c"}},
		{"a,", []string{"a"}},
		{",a", []string{"a"}},
		{"a,,b", []string{"a", "b"}},
		{"host:9000,host2:9001", []string{"host:9000", "host2:9001"}},
	}
	for _, c := range cases {
		if got := splitComma(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitComma(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestThroughputOptsValidate(t *testing.T) {
	good := throughputOpts{symbol: 1436, maxK: 256, reps: 3, workers: 0, loss: 0.3, seed: 1}
	if err := good.validate(); err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}
	bad := []throughputOpts{
		{symbol: 0, maxK: 256, reps: 3, loss: 0.3},
		{symbol: 60001, maxK: 256, reps: 3, loss: 0.3},
		{symbol: 1436, maxK: 0, reps: 3, loss: 0.3},
		{symbol: 1436, maxK: 256, reps: 0, loss: 0.3},
		{symbol: 1436, maxK: 256, reps: 1001, loss: 0.3},
		{symbol: 1436, maxK: 256, reps: 3, workers: -1, loss: 0.3},
		{symbol: 1436, maxK: 256, reps: 3, loss: -0.1},
		{symbol: 1436, maxK: 256, reps: 3, loss: 1.0},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("bad opts %d accepted: %+v", i, o)
		}
	}
}

// TestRunThroughputSmoke runs the full throughput pipeline on a small
// in-memory object and checks every phase reports and verifies.
func TestRunThroughputSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 200_000)
	rng.Read(data)
	opts := throughputOpts{symbol: 512, maxK: 64, reps: 2, workers: 2, loss: 0.25, seed: 7}
	var out strings.Builder
	if err := runThroughput(&out, data, opts); err != nil {
		t.Fatalf("runThroughput: %v", err)
	}
	got := out.String()
	for _, phase := range []string{"encode", "decode systematic", "decode 25% loss"} {
		if !strings.Contains(got, phase) {
			t.Errorf("output missing %q phase:\n%s", phase, got)
		}
	}
	if !strings.Contains(got, "MB/s") || !strings.Contains(got, "allocs/op") {
		t.Errorf("output missing throughput/alloc figures:\n%s", got)
	}
}
