// Command polyperf runs Polyraptor's fixed performance suite (gf256
// kernels, RaptorQ codec, event engine, end-to-end figure cells) and
// writes a BENCH_<n>.json report — the repo's perf trajectory; compare
// reports across PRs to spot regressions.
//
// Usage:
//
//	polyperf                # full suite, writes next BENCH_<n>.json
//	polyperf -quick         # CI smoke: small workloads, short budgets
//	polyperf -out perf.json # explicit output path
//	polyperf -out -         # JSON to stdout
//	polyperf -list          # print suite case names and exit
//	polyperf -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Progress lines go to stderr; only the report goes to the output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"

	"polyraptor/internal/perfbench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polyperf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick      = fs.Bool("quick", false, "small workloads and short budgets (CI smoke)")
		out        = fs.String("out", "", `output path; "" = next BENCH_<n>.json in the working directory, "-" = stdout`)
		list       = fs.Bool("list", false, "print suite case names and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (taken after the suite) to this file")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *list {
		for _, c := range perfbench.Suite(*quick) {
			fmt.Fprintln(stdout, c.Name)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "polyperf: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "polyperf: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintf(stderr, "polyperf: %v\n", err)
			}
		}()
	}

	rep := perfbench.Run(perfbench.Options{Quick: *quick, Progress: stderr})

	path := *out
	if path == "" {
		var err error
		path, rep.Index, err = nextBenchPath(".")
		if err != nil {
			fmt.Fprintf(stderr, "polyperf: %v\n", err)
			return 1
		}
	} else if path != "-" {
		rep.Index = indexFromPath(path)
	}

	if path == "-" {
		if err := perfbench.WriteJSON(stdout, rep); err != nil {
			fmt.Fprintf(stderr, "polyperf: %v\n", err)
			return 1
		}
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "polyperf: %v\n", err)
		return 1
	}
	if err := perfbench.WriteJSON(f, rep); err != nil {
		f.Close()
		fmt.Fprintf(stderr, "polyperf: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "polyperf: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "polyperf: wrote %s (%d results)\n", path, len(rep.Results))
	return 0
}

// writeHeapProfile snapshots the heap after a GC — the suite's live
// set, not transient garbage — into the named file.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchPath returns the next free BENCH_<n>.json in dir and its
// index.
func nextBenchPath(dir string) (string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	next := 0
	for _, e := range entries {
		if m := benchName.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), next, nil
}

// indexFromPath recovers the report index from a BENCH_<n>.json path,
// or 0 for other names.
func indexFromPath(path string) int {
	if m := benchName.FindStringSubmatch(filepath.Base(path)); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil {
			return n
		}
	}
	return 0
}
