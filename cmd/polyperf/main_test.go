package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polyraptor/internal/perfbench"
)

// TestRunQuickJSON drives the full quick suite in-process and
// validates the report.
func TestRunQuickJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0.json")
	var out, errw bytes.Buffer
	code := run([]string{"-quick", "-out", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errw.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep perfbench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != perfbench.Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if !rep.Quick || rep.Index != 0 {
		t.Fatalf("quick/index wrong: %+v", rep)
	}
	want := map[string]bool{}
	for _, c := range perfbench.Suite(true) {
		want[c.Name] = false
	}
	for _, r := range rep.Results {
		if _, ok := want[r.Name]; !ok {
			t.Fatalf("unexpected result %q", r.Name)
		}
		want[r.Name] = true
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Fatalf("%s: empty measurement: %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("suite case %q missing from report", name)
		}
	}
	// The event-engine rate metric must be present and positive.
	for _, r := range rep.Results {
		if r.Name == "sim/EventEngine/ScheduleRun" && r.Metrics["events_per_sec"] <= 0 {
			t.Fatalf("no events_per_sec metric: %+v", r)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"gf256/MulAddRow", "codec/Decode30pctLoss", "sim/EventEngine/ScheduleRun", "e2e/Fig1aRQ3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("-list output missing %q:\n%s", want, s)
		}
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	path, idx, err := nextBenchPath(dir)
	if err != nil || idx != 0 || filepath.Base(path) != "BENCH_0.json" {
		t.Fatalf("empty dir: path=%s idx=%d err=%v", path, idx, err)
	}
	for _, name := range []string{"BENCH_0.json", "BENCH_3.json", "BENCH_x.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, idx, err = nextBenchPath(dir)
	if err != nil || idx != 4 || filepath.Base(path) != "BENCH_4.json" {
		t.Fatalf("after 0 and 3: path=%s idx=%d err=%v", path, idx, err)
	}
	if got := indexFromPath("/some/dir/BENCH_7.json"); got != 7 {
		t.Fatalf("indexFromPath = %d, want 7", got)
	}
	if got := indexFromPath("perf.json"); got != 0 {
		t.Fatalf("indexFromPath(perf.json) = %d, want 0", got)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("-h exited %d", code)
	}
}
