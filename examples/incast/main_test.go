package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDemo sweeps a tiny sender range on a k=4 fabric, parallel and
// serial, and checks the outputs agree (derived sub-seeds make the
// table independent of scheduling).
func TestDemo(t *testing.T) {
	render := func(parallelism int) string {
		var out bytes.Buffer
		if err := demo(&out, 4, []int{2, 4}, 32<<10, 2, parallelism); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render(1)
	parallel := render(0)
	if serial != parallel {
		t.Fatalf("serial and parallel tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	for _, want := range []string{"senders", "RQ (Gbps)", "±CI95", "incast-free"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("output missing %q:\n%s", want, serial)
		}
	}
}
