// Incast (Figure 1c pattern): N synchronized servers each send a
// short block to one aggregator — the classic partition-aggregate
// pathology. The example sweeps N for Polyraptor and TCP on the same
// fat-tree and prints the aggregate goodput side by side: TCP
// collapses (timeouts dominate), Polyraptor holds near line rate
// because the receiver's single pull queue paces all sessions jointly
// and overloaded queues trim instead of dropping.
//
// Run with:
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"polyraptor/internal/harness"
)

func main() {
	opt := harness.DefaultIncastOptions()
	opt.FatTreeK = 6 // 54 hosts: enough for 40 senders, fast to run
	opt.Repetitions = 3
	senders := []int{2, 5, 10, 20, 30, 40}
	block := int64(70 << 10)

	fmt.Printf("incast on a k=%d fat-tree, %d KB per sender, %d repetitions\n\n",
		opt.FatTreeK, block>>10, opt.Repetitions)
	fmt.Printf("%8s %14s %14s %10s\n", "senders", "RQ (Gbps)", "TCP (Gbps)", "RQ/TCP")
	for _, n := range senders {
		var rq, tcp float64
		for rep := 0; rep < opt.Repetitions; rep++ {
			seed := int64(1 + rep*1000)
			rq += harness.RunIncastRQ(opt, n, block, seed)
			tcp += harness.RunIncastTCP(opt, n, block, seed)
		}
		rq /= float64(opt.Repetitions)
		tcp /= float64(opt.Repetitions)
		fmt.Printf("%8d %14.3f %14.3f %9.1fx\n", n, rq, tcp, rq/tcp)
	}
	fmt.Println("\nPolyraptor is incast-free: pull pacing + packet trimming + rateless symbols.")
}
