// Incast (Figure 1c pattern): N synchronized servers each send a
// short block to one aggregator — the classic partition-aggregate
// pathology. The example sweeps N for Polyraptor and TCP on the same
// fat-tree through the sweep engine: every (protocol, N) point is one
// cell repeated over SplitMix-derived sub-seeds on the parallel worker
// pool, so the repetitions are statistically independent and the whole
// table takes about as long as its slowest single cell. TCP collapses
// (timeouts dominate), Polyraptor holds near line rate because the
// receiver's single pull queue paces all sessions jointly and
// overloaded queues trim instead of dropping.
//
// Run with:
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polyraptor/internal/harness"
	"polyraptor/internal/sweep"
)

func main() {
	// k=6 -> 54 hosts: enough for 40 senders, fast to run.
	if err := demo(os.Stdout, 6, []int{2, 5, 10, 20, 30, 40}, 70<<10, 3, 0); err != nil {
		log.Fatal(err)
	}
}

// demo sweeps sender counts for Polyraptor and TCP, `reps` seeds per
// point, and prints mean goodput with 95% confidence half-widths.
func demo(w io.Writer, k int, senders []int, block int64, reps, parallelism int) error {
	opt := harness.IncastOptions{FatTreeK: k, Trimming: true}
	var cells []sweep.Cell
	for _, n := range senders {
		for _, proto := range []string{"rq", "tcp"} {
			n, proto := n, proto
			cells = append(cells, sweep.Cell{
				Scenario: "incast",
				Backend:  proto,
				Params:   map[string]string{"senders": fmt.Sprint(n)},
				Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
					var g float64
					if proto == "rq" {
						g = harness.RunIncastRQ(opt, n, block, seed)
					} else {
						g = harness.RunIncastTCP(opt, n, block, seed)
					}
					return sweep.Metrics{"goodput_gbps": g}, nil
				}),
			})
		}
	}
	res, err := sweep.Matrix{Cells: cells, Seeds: reps, BaseSeed: 1, Parallelism: parallelism}.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "incast on a k=%d fat-tree, %d KB per sender, %d independent seeds per point\n\n",
		k, block>>10, reps)
	fmt.Fprintf(w, "%8s %10s %7s %10s %7s %10s\n", "senders", "RQ (Gbps)", "±CI95", "TCP (Gbps)", "±CI95", "RQ/TCP")
	for i, n := range senders {
		rqCell, tcpCell := res.Cells[2*i], res.Cells[2*i+1]
		if len(rqCell.Errors) > 0 || len(tcpCell.Errors) > 0 {
			return fmt.Errorf("incast n=%d failed: %v %v", n, rqCell.Errors, tcpCell.Errors)
		}
		rq, _ := rqCell.Metric("goodput_gbps")
		tcp, _ := tcpCell.Metric("goodput_gbps")
		fmt.Fprintf(w, "%8d %10.3f %7.3f %10.3f %7.3f %9.1fx\n",
			n, rq.Mean, rq.CI95, tcp.Mean, tcp.CI95, rq.Mean/tcp.Mean)
	}
	fmt.Fprintln(w, "\nPolyraptor is incast-free: pull pacing + packet trimming + rateless symbols.")
	return nil
}
