package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCodecDemo runs the encode/lose/repair/decode loop on a small
// object.
func TestCodecDemo(t *testing.T) {
	var out bytes.Buffer
	if err := codecDemo(&out, 20_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bit-exact") {
		t.Fatalf("output missing verification line:\n%s", out.String())
	}
}

// TestTransportDemo fetches a small object over loopback UDP.
func TestTransportDemo(t *testing.T) {
	var out bytes.Buffer
	if err := transportDemo(&out, 100_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fetched 100000 bytes") {
		t.Fatalf("output missing fetch line:\n%s", out.String())
	}
}
