// Quickstart: the two things most users need from this library —
// (1) encode/decode an object with the RaptorQ codec, and
// (2) transfer an object over the pull-based UDP transport.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"polyraptor"
)

func main() {
	if err := codecDemo(os.Stdout, 200_000); err != nil {
		log.Fatal(err)
	}
	if err := transportDemo(os.Stdout, 500_000); err != nil {
		log.Fatal(err)
	}
}

// codecDemo encodes an object of `size` bytes, "loses" a third of the
// source symbols, repairs with fresh symbols, and verifies the decode.
func codecDemo(w io.Writer, size int) error {
	object := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(object)

	enc, err := polyraptor.EncodeObject(object, 1024, 256)
	if err != nil {
		return err
	}
	layout := enc.Layout()
	fmt.Fprintf(w, "codec: %d bytes -> %d block(s), %d source symbols\n",
		len(object), layout.Z(), layout.TotalSymbols())

	dec, err := polyraptor.NewObjectDecoder(layout)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	lost := 0
	for sbn, k := range layout.K {
		for esi := 0; esi < k; esi++ {
			if rng.Float64() < 0.33 { // a congested queue ate it
				lost++
				continue
			}
			if _, err := dec.AddSymbol(sbn, uint32(esi), enc.Symbol(sbn, uint32(esi))); err != nil {
				return err
			}
		}
	}
	// Rateless repair: send fresh symbols — never retransmissions —
	// until each block decodes.
	repair := 0
	for sbn, k := range layout.K {
		esi := uint32(k)
		for !dec.BlockComplete(sbn) {
			if dec.TryDecode() && dec.BlockComplete(sbn) {
				break
			}
			if _, err := dec.AddSymbol(sbn, esi, enc.Symbol(sbn, esi)); err != nil {
				return err
			}
			repair++
			esi++
		}
	}
	got, err := dec.Object()
	if err != nil {
		return err
	}
	if !bytes.Equal(got, object) {
		return fmt.Errorf("decode mismatch")
	}
	fmt.Fprintf(w, "codec: lost %d source symbols, repaired with %d fresh symbols — bit-exact\n\n", lost, repair)
	return nil
}

// transportDemo serves an object of `size` bytes on loopback UDP and
// fetches it with the receiver-driven protocol.
func transportDemo(w io.Writer, size int) error {
	object := make([]byte, size)
	rand.New(rand.NewSource(8)).Read(object)

	srvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv, err := polyraptor.NewServer(srvConn, object, polyraptor.DefaultTransportConfig())
	if err != nil {
		return err
	}
	go srv.Serve()
	defer srv.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	got, err := polyraptor.Fetch(ctx, conn, srv.Addr(), 1, polyraptor.DefaultTransportConfig())
	if err != nil {
		return err
	}
	if !bytes.Equal(got, object) {
		return fmt.Errorf("transport corrupted object")
	}
	el := time.Since(start)
	fmt.Fprintf(w, "transport: fetched %d bytes over UDP in %v (%.0f Mbit/s)\n",
		len(got), el.Round(time.Millisecond), float64(len(got)*8)/el.Seconds()/1e6)
	return nil
}
