// Chaos: kill a growing fraction of the fat tree's core links in the
// middle of a batch of cross-pod transfers and watch the two
// transports separate. Flow-hashed ECMP cannot see a *remote* dead
// link — a TCP flow whose hash leads through a core switch with a
// dead downlink retransmits into the blackhole until the deadline —
// while Polyraptor sprays every packet independently and recodes
// around whatever fraction of the fabric is gone: any surviving path
// carries the session. The example sweeps the failed-core-fraction
// past the point where ECMP strands flows and reports stall rates and
// completed-flow FCT tails for both.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"polyraptor/internal/harness"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

func main() {
	// k=6 -> 54 hosts, 54 core links; 12 cross-pod 1 MB flows with the
	// fault striking 2 ms in (mid-flow), scored at a 2 s deadline.
	if err := demo(os.Stdout, 6, []float64{0, 0.125, 0.25, 0.5}, 12, 1<<20, 3, 0); err != nil {
		log.Fatal(err)
	}
}

// demo sweeps the failed-core-fraction for Polyraptor and TCP, `reps`
// seeds per point, and prints mean stall rate and completed-flow P99
// FCT for both.
func demo(w io.Writer, k int, fracs []float64, flows int, bytes int64, reps, parallelism int) error {
	base := harness.DefaultChaosOptions()
	base.FatTreeK = k
	base.Flows = flows
	base.Bytes = bytes
	base.Fault.FailAt = 2 * time.Millisecond
	base.Deadline = 2 * time.Second

	var cells []sweep.Cell
	for _, frac := range fracs {
		opt := base
		opt.Fault.Frac = frac
		if err := opt.Validate(); err != nil {
			return err
		}
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
			opt, be := opt, be
			cells = append(cells, sweep.Cell{
				Scenario: "chaos",
				Backend:  be.String(),
				Params:   map[string]string{"frac": fmt.Sprint(frac)},
				Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
					r := harness.RunChaos(opt, be, seed)
					return sweep.Metrics{
						"stall_rate": r.StallRate(),
						"fct_p99_s":  r.FCT.P99,
					}, nil
				}),
			})
		}
	}
	res, err := sweep.Matrix{Cells: cells, Seeds: reps, BaseSeed: 1, Parallelism: parallelism}.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "mid-flow core-link blackholes on a k=%d fat-tree: %d cross-pod %d KB flows,\n",
		k, flows, bytes>>10)
	fmt.Fprintf(w, "fault at %v, never healed, %d seeds per point, scored at %v\n\n",
		base.Fault.FailAt, reps, base.Deadline)
	fmt.Fprintf(w, "%11s %11s %12s %13s %14s\n",
		"frac failed", "RQ stalled", "TCP stalled", "RQ p99 (ms)", "TCP p99 (ms)")
	for i, frac := range fracs {
		rqCell, tcpCell := res.Cells[2*i], res.Cells[2*i+1]
		if len(rqCell.Errors) > 0 || len(tcpCell.Errors) > 0 {
			return fmt.Errorf("chaos frac=%g failed: %v %v", frac, rqCell.Errors, tcpCell.Errors)
		}
		rqStall, _ := rqCell.Metric("stall_rate")
		tcpStall, _ := tcpCell.Metric("stall_rate")
		rqP99, _ := rqCell.Metric("fct_p99_s")
		tcpP99, _ := tcpCell.Metric("fct_p99_s")
		fmt.Fprintf(w, "%11.3f %10.0f%% %11.0f%% %13.1f %14.1f\n",
			frac, rqStall.Mean*100, tcpStall.Mean*100, rqP99.Mean*1e3, tcpP99.Mean*1e3)
	}
	fmt.Fprintln(w, "\nPer-packet spraying needs any surviving path; per-flow ECMP needs *its*")
	fmt.Fprintln(w, "path. TCP's completed-flow tail looks calm only because the stranded")
	fmt.Fprintln(w, "flows never finish at all.")
	return nil
}
