package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDemo sweeps two tiny fractions on a k=4 fabric, parallel and
// serial, and checks the outputs agree (derived sub-seeds make the
// table independent of scheduling).
func TestDemo(t *testing.T) {
	render := func(parallelism int) string {
		var out bytes.Buffer
		if err := demo(&out, 4, []float64{0, 0.25}, 4, 128<<10, 2, parallelism); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render(1)
	parallel := render(0)
	if serial != parallel {
		t.Fatalf("serial and parallel tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	for _, want := range []string{"frac failed", "RQ stalled", "TCP stalled", "surviving path"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("output missing %q:\n%s", want, serial)
		}
	}
}

// TestDemoRejectsImpossibleSweep: validation surfaces before any
// simulation runs.
func TestDemoRejectsImpossibleSweep(t *testing.T) {
	var out bytes.Buffer
	if err := demo(&out, 4, []float64{2}, 4, 128<<10, 1, 1); err == nil {
		t.Fatal("frac=2 should fail validation")
	}
}
