package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDemo fetches a small object from three loopback replicas.
func TestDemo(t *testing.T) {
	var out bytes.Buffer
	if err := demo(&out, 256<<10, 3); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"replicated on 3 servers", "bit-exact"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
