// Multi-source fetch over real UDP (Figure 1b pattern): three
// uncoordinated servers hold the same object; one client pulls from
// all three at once. The Hello index fixes each server's disjoint
// symbol schedule, so no server ever sends a symbol another server
// sends — without any server-to-server coordination.
//
// Run with:
//
//	go run ./examples/multisource
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"polyraptor"
)

func main() {
	object := make([]byte, 2<<20)
	rand.New(rand.NewSource(3)).Read(object)
	fmt.Printf("object: %d bytes, replicated on 3 servers\n", len(object))

	// Three independent replica servers (real UDP sockets).
	var servers []*polyraptor.Server
	var remotes []net.Addr
	for i := 0; i < 3; i++ {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv, err := polyraptor.NewServer(conn, object, polyraptor.DefaultTransportConfig())
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve()
		defer srv.Close()
		servers = append(servers, srv)
		remotes = append(remotes, srv.Addr())
		fmt.Printf("  replica %d serving on %s\n", i, srv.Addr())
	}

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	got, err := polyraptor.FetchMultiSource(ctx, conn, remotes, 99, polyraptor.DefaultTransportConfig())
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	if !bytes.Equal(got, object) {
		log.Fatal("multi-source fetch corrupted the object")
	}
	fmt.Printf("fetched %d bytes from 3 sources in %v (%.0f Mbit/s), bit-exact\n",
		len(got), el.Round(time.Millisecond), float64(len(got)*8)/el.Seconds()/1e6)
	fmt.Println("every symbol was unique by construction: partitioned source ranges + disjoint repair ESI residues")
}
