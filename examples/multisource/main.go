// Multi-source fetch over real UDP (Figure 1b pattern): three
// uncoordinated servers hold the same object; one client pulls from
// all three at once. The Hello index fixes each server's disjoint
// symbol schedule, so no server ever sends a symbol another server
// sends — without any server-to-server coordination.
//
// Run with:
//
//	go run ./examples/multisource
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"polyraptor"
)

func main() {
	if err := demo(os.Stdout, 2<<20, 3); err != nil {
		log.Fatal(err)
	}
}

// demo replicates an object of objectBytes across `replicas` loopback
// UDP servers and fetches it from all of them at once.
func demo(w io.Writer, objectBytes, replicas int) error {
	object := make([]byte, objectBytes)
	rand.New(rand.NewSource(3)).Read(object)
	fmt.Fprintf(w, "object: %d bytes, replicated on %d servers\n", len(object), replicas)

	// Independent replica servers (real UDP sockets).
	var remotes []net.Addr
	for i := 0; i < replicas; i++ {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := polyraptor.NewServer(conn, object, polyraptor.DefaultTransportConfig())
		if err != nil {
			conn.Close()
			return err
		}
		go srv.Serve()
		defer srv.Close()
		remotes = append(remotes, srv.Addr())
		fmt.Fprintf(w, "  replica %d serving on %s\n", i, srv.Addr())
	}

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	got, err := polyraptor.FetchMultiSource(ctx, conn, remotes, 99, polyraptor.DefaultTransportConfig())
	if err != nil {
		return err
	}
	el := time.Since(start)
	if !bytes.Equal(got, object) {
		return fmt.Errorf("multi-source fetch corrupted the object")
	}
	fmt.Fprintf(w, "fetched %d bytes from %d sources in %v (%.0f Mbit/s), bit-exact\n",
		len(got), replicas, el.Round(time.Millisecond), float64(len(got)*8)/el.Seconds()/1e6)
	fmt.Fprintln(w, "every symbol was unique by construction: partitioned source ranges + disjoint repair ESI residues")
	return nil
}
