// Shuffle (many-to-many): M mappers each transfer one distinct
// partition to every one of R reducers, the full M×R matrix at once —
// the pattern that completes Polyraptor's claim of serving all three
// data-centre traffic patterns with one rateless transport. The
// example sweeps the mapper count for Polyraptor and TCP on the same
// fat-tree through the sweep engine and reports shuffle completion
// time (the slowest pair gates the job). As the per-reducer fan-in
// grows past TCP's incast knee its completion time collapses, while
// Polyraptor's reducers jointly pace all inbound pairs through one
// pull queue and keep the job near the fabric's limit.
//
// Run with:
//
//	go run ./examples/shuffle
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polyraptor/internal/harness"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

func main() {
	// k=6 -> 54 hosts: room for 16 mappers + 8 reducers.
	if err := demo(os.Stdout, 6, []int{2, 4, 8, 12, 16}, 8, 128<<10, 3, 0); err != nil {
		log.Fatal(err)
	}
}

// demo sweeps mapper counts for Polyraptor and TCP, `reps` seeds per
// point, and prints mean shuffle completion time with 95% confidence
// half-widths.
func demo(w io.Writer, k int, mappers []int, reducers int, pairBytes int64, reps, parallelism int) error {
	var cells []sweep.Cell
	for _, m := range mappers {
		opt := harness.ShuffleOptions{
			FatTreeK:     k,
			Mappers:      m,
			Reducers:     reducers,
			BytesPerPair: pairBytes,
			Skew:         0.9,
		}
		if err := opt.Validate(); err != nil {
			return err
		}
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
			opt, be := opt, be
			cells = append(cells, sweep.Cell{
				Scenario: "shuffle",
				Backend:  be.String(),
				Params:   map[string]string{"mappers": fmt.Sprint(m)},
				Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
					r := harness.RunShuffle(opt, be, seed)
					return sweep.Metrics{"shuffle_s": r.CompletionTime}, nil
				}),
			})
		}
	}
	res, err := sweep.Matrix{Cells: cells, Seeds: reps, BaseSeed: 1, Parallelism: parallelism}.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "shuffle on a k=%d fat-tree, %d reducers, %d KB mean partition, %d seeds per point\n\n",
		k, reducers, pairBytes>>10, reps)
	fmt.Fprintf(w, "%8s %10s %7s %10s %7s %10s\n", "mappers", "RQ (ms)", "±CI95", "TCP (ms)", "±CI95", "TCP/RQ")
	for i, m := range mappers {
		rqCell, tcpCell := res.Cells[2*i], res.Cells[2*i+1]
		if len(rqCell.Errors) > 0 || len(tcpCell.Errors) > 0 {
			return fmt.Errorf("shuffle m=%d failed: %v %v", m, rqCell.Errors, tcpCell.Errors)
		}
		rq, _ := rqCell.Metric("shuffle_s")
		tcp, _ := tcpCell.Metric("shuffle_s")
		fmt.Fprintf(w, "%8d %10.2f %7.2f %10.2f %7.2f %9.1fx\n",
			m, rq.Mean*1e3, rq.CI95*1e3, tcp.Mean*1e3, tcp.CI95*1e3, tcp.Mean/rq.Mean)
	}
	fmt.Fprintln(w, "\nOne rateless transport, all three patterns: the reducers' shared pull")
	fmt.Fprintln(w, "queues pace the whole matrix; no per-flow congestion control needed.")
	return nil
}
