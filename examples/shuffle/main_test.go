package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDemo sweeps a tiny mapper range on a k=4 fabric, parallel and
// serial, and checks the outputs agree (derived sub-seeds make the
// table independent of scheduling).
func TestDemo(t *testing.T) {
	render := func(parallelism int) string {
		var out bytes.Buffer
		if err := demo(&out, 4, []int{2, 4}, 4, 32<<10, 2, parallelism); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render(1)
	parallel := render(0)
	if serial != parallel {
		t.Fatalf("serial and parallel tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	for _, want := range []string{"mappers", "RQ (ms)", "±CI95", "TCP/RQ", "all three patterns"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("output missing %q:\n%s", want, serial)
		}
	}
}

// TestDemoRejectsImpossibleMatrix: validation surfaces before any
// simulation runs.
func TestDemoRejectsImpossibleMatrix(t *testing.T) {
	var out bytes.Buffer
	if err := demo(&out, 4, []int{14}, 4, 32<<10, 1, 1); err == nil {
		t.Fatal("14 mappers + 4 reducers on a 16-host fabric should fail validation")
	}
}
