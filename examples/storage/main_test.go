package main

import (
	"bytes"
	"strings"
	"testing"

	"polyraptor/internal/store"
)

// TestDemo runs the storage contrast on a tiny cluster.
func TestDemo(t *testing.T) {
	cfg := store.ShortConfig()
	cfg.Objects = 8
	cfg.ObjectBytes = 64 << 10
	cfg.Requests = 30
	var out bytes.Buffer
	if err := demo(&out, cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"PolyStore:", "polyraptor:", "tcp:", "GETs:", "PUTs:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
