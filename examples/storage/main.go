// Storage cluster: the paper's motivating GFS-style scenario, run as
// a whole system instead of a single hand-picked transfer. PolyStore
// simulates a replicated object store on a fat-tree: a Zipf-popular
// catalogue placed R-way across racks, a Poisson stream of client GETs
// (many-to-one multi-source fetches) and PUTs (one-to-many multicast
// replication), and a rack failure mid-run whose re-replication storm
// the cluster must absorb. The same workload runs over Polyraptor and
// the TCP multi-unicast baseline — in parallel, one fabric each — and
// the contrast is printed.
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polyraptor/internal/harness"
	"polyraptor/internal/store"
)

func main() {
	cfg := store.DefaultConfig()
	cfg.FatTreeK = 6 // 54 hosts, 18 racks
	cfg.Objects = 120
	cfg.ObjectBytes = 1 << 20
	cfg.Requests = 300
	cfg.FailMode = store.FailRack

	if err := demo(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
}

// demo runs the cluster under Polyraptor and TCP and prints each
// backend's goodput, tail latency and recovery summary.
func demo(w io.Writer, cfg store.Config) error {
	fmt.Fprintf(w, "PolyStore: %d objects x %d MB, R=%d, zipf %.1f, on %d hosts; %v failure mid-run\n\n",
		cfg.Objects, cfg.ObjectBytes>>20, cfg.Replicas, cfg.ZipfSkew, cfg.Hosts(), cfg.FailMode)

	runs, err := harness.RunStorageCluster(harness.StorageOptions{
		Cluster:  cfg,
		Backends: []store.BackendKind{store.BackendPolyraptor, store.BackendTCP},
	})
	if err != nil {
		return err
	}

	for _, r := range runs {
		rec := r.Result.Recovery
		fmt.Fprintf(w, "%s:\n", r.Backend)
		fmt.Fprintf(w, "  GETs: %.3f Gbps mean, FCT p50 %.2f ms / p99 %.2f ms (%d served)\n",
			r.GetGoodput.Mean, r.GetFCT.P50*1e3, r.GetFCT.P99*1e3, r.GetFCT.N)
		fmt.Fprintf(w, "  PUTs: %.3f Gbps mean session goodput (%d x %d-way replication)\n",
			r.PutGoodput.Mean, r.PutFCT.N, cfg.Replicas)
		if rec.Mode != store.FailNone {
			fmt.Fprintf(w, "  %v failure: %d replicas lost, %d repaired, full replication after %v\n",
				rec.Mode, rec.LostReplicas, rec.Repaired, rec.Duration())
		}
		if ratio, ok := r.Interference(); ok {
			fmt.Fprintf(w, "  storm interference: GET latency %.2f ms -> %.2f ms (%.2fx)\n",
				r.GetFCTBefore.Mean*1e3, r.GetFCTDuring.Mean*1e3, ratio)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "Polyraptor sends one coded multicast stream per PUT and pulls each GET")
	fmt.Fprintln(w, "from all replicas at once; TCP pushes R full copies and fetches 1/R")
	fmt.Fprintln(w, "shares over hash-pinned paths — the gap above is the paper's argument.")
	return nil
}
