// Storage replication: the paper's motivating GFS-style scenario
// (Figure 1a pattern). A client writes a 4 MB block to three replica
// servers placed outside its rack, once with Polyraptor multicast and
// once with TCP multi-unicast, on the same 250-server fat-tree the
// paper simulates — and prints the goodput contrast.
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"

	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/topology"
)

const (
	blockSize = 4 << 20 // one GFS-ish block
	client    = 0
	seed      = 42
)

func main() {
	// The paper's fabric: k=10 fat-tree, 250 servers, 1 Gbps, 10 µs.
	replicas := pickReplicas()
	fmt.Printf("writing a %d MB block from host %d to replicas %v\n\n",
		blockSize>>20, client, replicas)

	rqWrite(replicas)
	tcpWrite(replicas)
}

// pickReplicas chooses three servers outside the client's rack, the
// paper's placement policy.
func pickReplicas() []int {
	ft, err := topology.NewFatTree(10, netsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.RNG(seed, "replica-placement")
	var out []int
	for len(out) < 3 {
		p := rng.Intn(ft.NumHosts())
		if p == client || ft.SameRack(client, p) {
			continue
		}
		dup := false
		for _, q := range out {
			dup = dup || q == p
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

func rqWrite(replicas []int) {
	ft, err := topology.NewFatTree(10, netsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
	sys.PruneGroup = ft.PruneMulticastLeaf
	group := ft.InstallMulticastGroup(client, replicas)

	var makespan sim.Time
	sys.StartMulticast(client, replicas, group, blockSize, func(ev polyraptor.CompletionEvent) {
		fmt.Printf("  RQ  replica %3d done at %v (%.3f Gbps at this replica)\n",
			ev.Receiver, ev.End, ev.GoodputGbps())
		if ev.End > makespan {
			makespan = ev.End
		}
	})
	ft.Net.Eng.Run()
	fmt.Printf("Polyraptor multicast write: %.3f Gbps session goodput "+
		"(one coded stream leaves the client)\n\n",
		gbps(blockSize, makespan))
}

func tcpWrite(replicas []int) {
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	ft, err := topology.NewFatTree(10, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys := tcpsim.NewSystem(ft.Net, tcpsim.DefaultConfig())
	var makespan sim.Time
	for _, r := range replicas {
		sys.StartFlow(client, r, blockSize, func(fr tcpsim.FlowResult) {
			fmt.Printf("  TCP replica %3d done at %v (%.3f Gbps flow)\n",
				fr.Dst, fr.End, fr.GoodputGbps())
			if fr.End > makespan {
				makespan = fr.End
			}
		})
	}
	ft.Net.Eng.Run()
	fmt.Printf("TCP multi-unicast write: %.3f Gbps session goodput "+
		"(three full copies share the client uplink)\n",
		gbps(blockSize, makespan))
}

func gbps(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes*8) / d.Seconds() / 1e9
}
