// Package chaos is a deterministic fault-injection engine for the
// simulated fat tree: it executes a seeded fault plan on the sim
// timeline — links blackholed and restored, whole switches killed,
// links made lossy, links flapping — via the netsim fault hooks
// (Port.SetUp/SetLossRate, Switch.SetDown) and the topology layer's
// link/switch enumeration. Polyraptor's headline claim is that
// per-packet spraying plus rateless coding rides through exactly these
// faults without rerouting or retransmission state; this package is
// what puts that claim under mid-flow failures instead of static
// pre-run degradation (FatPaths frames failure tolerance as the
// decisive axis for multipath transports — this is our testbed for
// it).
//
// Everything is deterministic per Plan.Seed: target selection uses the
// seeded-fraction picker shared with topology.DegradeCoreLinks, and
// fault timing is plain sim events, so experiment repetitions and
// parallel sweeps are byte-reproducible.
package chaos

import (
	"fmt"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
)

// MinFlapPeriod bounds how fast links may flap. Flapping faster than
// a handful of frame serializations is physically meaningless and
// would schedule an unbounded toggle-event storm (a 1 ns period over
// a 100 ms window is 10^8 events), so Validate rejects it.
const MinFlapPeriod = 100 * time.Microsecond

// Kind is the fault type a plan injects.
type Kind int

const (
	// KindLinkDown blackholes the targeted links (both directions) at
	// FailAt; RecoverAt restores them. Remote ECMP groups do not see
	// the failure — packets routed to a dead remote link are
	// blackholed, the scenario that strands hash-pinned TCP flows.
	KindLinkDown Kind = iota
	// KindSwitchKill kills whole switches: every arriving packet is
	// dropped, the switch's own egress stops, and neighbours filter it
	// from their equal-cost sets (local link-state reaction).
	KindSwitchKill
	// KindLinkLoss makes the targeted links lossy: each transmitted
	// frame is destroyed with probability LossRate.
	KindLinkLoss
	// KindLinkFlap toggles the targeted links down/up every
	// FlapPeriod/2 from FailAt until RecoverAt (ending up).
	KindLinkFlap
)

// String returns the CLI name of the kind.
func (k Kind) String() string {
	switch k {
	case KindLinkDown:
		return "link"
	case KindSwitchKill:
		return "switch"
	case KindLinkLoss:
		return "loss"
	case KindLinkFlap:
		return "flap"
	}
	return "unknown"
}

// ParseKind maps a CLI name to a Kind.
func ParseKind(name string) (Kind, bool) {
	switch name {
	case "link":
		return KindLinkDown, true
	case "switch":
		return KindSwitchKill, true
	case "loss":
		return KindLinkLoss, true
	case "flap":
		return KindLinkFlap, true
	}
	return 0, false
}

// Layer selects which tier of the fat tree the plan targets.
type Layer int

const (
	// LayerCore targets agg<->core links, or core switches for
	// KindSwitchKill.
	LayerCore Layer = iota
	// LayerAgg targets edge<->agg links, or aggregation switches.
	LayerAgg
	// LayerHost targets host<->edge links, or edge (ToR) switches.
	LayerHost
)

// String returns the CLI name of the layer.
func (l Layer) String() string {
	switch l {
	case LayerCore:
		return "core"
	case LayerAgg:
		return "agg"
	case LayerHost:
		return "host"
	}
	return "unknown"
}

// ParseLayer maps a CLI name to a Layer.
func ParseLayer(name string) (Layer, bool) {
	switch name {
	case "core":
		return LayerCore, true
	case "agg":
		return LayerAgg, true
	case "host":
		return LayerHost, true
	}
	return 0, false
}

// Plan is one declarative fault script: what to break, how much of
// it, and when. The zero value is not useful; fill every field the
// Kind requires and Validate before injecting.
type Plan struct {
	// Kind is the fault type.
	Kind Kind
	// Layer is the fabric tier targeted.
	Layer Layer
	// Frac is the fraction of the layer's links (or switches, for
	// KindSwitchKill) to target: round(Frac*n) seeded picks.
	Frac float64
	// FailAt is when the faults strike (sim time from run start).
	FailAt sim.Time
	// RecoverAt is when they heal; 0 means never (not allowed for
	// KindLinkFlap, which must end).
	RecoverAt sim.Time
	// FlapPeriod is the full down+up cycle length for KindLinkFlap.
	FlapPeriod sim.Time
	// LossRate is the per-frame destruction probability for
	// KindLinkLoss, in (0, 1].
	LossRate float64
	// Seed drives target selection.
	Seed int64
}

// Validate reports whether the plan is executable — the up-front
// check every CLI and harness entry point runs before building
// anything.
func (p Plan) Validate() error {
	if p.Kind < KindLinkDown || p.Kind > KindLinkFlap {
		return fmt.Errorf("chaos: unknown fault kind %d", p.Kind)
	}
	if p.Layer < LayerCore || p.Layer > LayerHost {
		return fmt.Errorf("chaos: unknown layer %d", p.Layer)
	}
	if !(p.Frac >= 0 && p.Frac <= 1) { // negated so NaN is rejected too
		return fmt.Errorf("chaos: frac must be in [0, 1], got %g", p.Frac)
	}
	if p.FailAt < 0 {
		return fmt.Errorf("chaos: fail-at must be >= 0, got %v", p.FailAt)
	}
	if p.RecoverAt != 0 && p.RecoverAt <= p.FailAt {
		return fmt.Errorf("chaos: recover-at %v must be after fail-at %v", p.RecoverAt, p.FailAt)
	}
	switch p.Kind {
	case KindLinkLoss:
		if !(p.LossRate > 0 && p.LossRate <= 1) { // negated so NaN is rejected too
			return fmt.Errorf("chaos: loss fault needs loss rate in (0, 1], got %g", p.LossRate)
		}
	case KindLinkFlap:
		if p.FlapPeriod < MinFlapPeriod {
			return fmt.Errorf("chaos: flap fault needs flap period >= %v, got %v", MinFlapPeriod, p.FlapPeriod)
		}
		if p.RecoverAt == 0 {
			return fmt.Errorf("chaos: flap fault needs a recover time (it must stop toggling)")
		}
	}
	return nil
}

// Event is one executed fault action, recorded for reports.
type Event struct {
	At     sim.Time
	Action string
	Target string
}

// Injection is one applied plan: the chosen targets and, as the
// simulation runs, the log of executed fault events.
type Injection struct {
	Plan Plan
	// Targets names the links or switches the plan struck.
	Targets []string
	// Events logs every executed action in timeline order.
	Events []Event

	// rec mirrors the log into the PolyScope flight recorder (nil when
	// tracing is off), so fault executions land on the trace timeline
	// next to the flows they strand.
	rec *telemetry.Recorder
}

// TargetCount returns how many links/switches the plan struck.
func (in *Injection) TargetCount() int { return len(in.Targets) }

func (in *Injection) log(at sim.Time, action, target string) {
	in.Events = append(in.Events, Event{At: at, Action: action, Target: target})
	if in.rec != nil {
		in.rec.RecordLabel(at, -1, telemetry.EvFault, -1, action+" "+target)
	}
}

// layerLinks enumerates the plan's link layer.
func layerLinks(ft *topology.FatTree, l Layer) []topology.Link {
	switch l {
	case LayerCore:
		return ft.CoreLinks()
	case LayerAgg:
		return ft.AggLinks()
	default:
		return ft.HostLinks()
	}
}

// layerSwitches enumerates the plan's switch layer.
func layerSwitches(ft *topology.FatTree, l Layer) []*netsim.Switch {
	switch l {
	case LayerCore:
		return ft.CoreSwitches()
	case LayerAgg:
		return ft.AggSwitches()
	default:
		return ft.EdgeSwitches()
	}
}

// Inject validates the plan, picks its seeded targets on the fat tree
// and schedules every fault action on the network's sim timeline. It
// must be called before the simulation starts (fault times are
// absolute). The returned Injection accumulates the event log as the
// engine executes.
func Inject(ft *topology.FatTree, p Plan) (*Injection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in := &Injection{Plan: p, rec: ft.Net.Rec}
	eng := ft.Net.Eng

	if p.Kind == KindSwitchKill {
		sws := topology.PickSwitches(layerSwitches(ft, p.Layer), p.Frac, p.Seed)
		for _, sw := range sws {
			in.Targets = append(in.Targets, sw.Name)
		}
		eng.At(p.FailAt, func() {
			for _, sw := range sws {
				sw.SetDown(true)
				// A dead switch stops transmitting too: park every
				// egress queue so frames stop draining out of it.
				for _, port := range sw.Ports {
					port.SetUp(false)
				}
				in.log(p.FailAt, "switch-kill", sw.Name)
			}
		})
		if p.RecoverAt > 0 {
			eng.At(p.RecoverAt, func() {
				for _, sw := range sws {
					sw.SetDown(false)
					for _, port := range sw.Ports {
						port.SetUp(true)
					}
					in.log(p.RecoverAt, "switch-restore", sw.Name)
				}
			})
		}
		return in, nil
	}

	links := topology.PickLinks(layerLinks(ft, p.Layer), p.Frac, p.Seed)
	for _, l := range links {
		in.Targets = append(in.Targets, l.Name)
	}
	switch p.Kind {
	case KindLinkDown:
		eng.At(p.FailAt, func() {
			for _, l := range links {
				l.SetUp(false)
				in.log(p.FailAt, "link-down", l.Name)
			}
		})
		if p.RecoverAt > 0 {
			eng.At(p.RecoverAt, func() {
				for _, l := range links {
					l.SetUp(true)
					in.log(p.RecoverAt, "link-up", l.Name)
				}
			})
		}
	case KindLinkLoss:
		eng.At(p.FailAt, func() {
			for _, l := range links {
				l.SetLossRate(p.LossRate)
				in.log(p.FailAt, "loss-on", l.Name)
			}
		})
		if p.RecoverAt > 0 {
			eng.At(p.RecoverAt, func() {
				for _, l := range links {
					l.SetLossRate(0)
					in.log(p.RecoverAt, "loss-off", l.Name)
				}
			})
		}
	case KindLinkFlap:
		// Toggle every half period, scheduling lazily so the engine's
		// queue holds at most one pending flap event at a time; the
		// final toggle at/after RecoverAt always leaves the links up.
		half := p.FlapPeriod / 2 // >= MinFlapPeriod/2 by Validate
		down := false
		set := func(d bool) {
			down = d
			action := "link-up"
			if d {
				action = "link-down"
			}
			for _, l := range links {
				l.SetUp(!d)
				in.log(eng.Now(), action, l.Name)
			}
		}
		var toggle func()
		toggle = func() {
			if eng.Now() >= p.RecoverAt {
				if down {
					set(false)
				}
				return
			}
			set(!down)
			eng.After(half, toggle)
		}
		eng.At(p.FailAt, toggle)
	}
	return in, nil
}
