package chaos

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

func tree(t *testing.T) *topology.FatTree {
	t.Helper()
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Kind: KindLinkDown, Layer: LayerCore, Frac: 0.25, FailAt: time.Millisecond, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Kind: Kind(9), Layer: LayerCore, Frac: 0.5},
		{Kind: KindLinkDown, Layer: Layer(9), Frac: 0.5},
		{Kind: KindLinkDown, Layer: LayerCore, Frac: -0.1},
		{Kind: KindLinkDown, Layer: LayerCore, Frac: 1.5},
		{Kind: KindLinkDown, Layer: LayerCore, Frac: 0.5, FailAt: -1},
		{Kind: KindLinkDown, Layer: LayerCore, Frac: 0.5, FailAt: 2 * time.Millisecond, RecoverAt: time.Millisecond},
		{Kind: KindLinkLoss, Layer: LayerCore, Frac: 0.5},                               // no loss rate
		{Kind: KindLinkLoss, Layer: LayerCore, Frac: 0.5, LossRate: 1.2},                // out of range
		{Kind: KindLinkFlap, Layer: LayerCore, Frac: 0.5, RecoverAt: time.Millisecond},  // no period
		{Kind: KindLinkFlap, Layer: LayerCore, Frac: 0.5, FlapPeriod: time.Millisecond}, // no end
		{Kind: KindLinkFlap, Layer: LayerCore, Frac: 0.5, // period below MinFlapPeriod: event storm
			FlapPeriod: MinFlapPeriod / 2, RecoverAt: time.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, k := range []Kind{KindLinkDown, KindSwitchKill, KindLinkLoss, KindLinkFlap} {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("kind %v does not round-trip", k)
		}
	}
	if _, ok := ParseKind("volcano"); ok {
		t.Fatal("unknown kind parsed")
	}
	for _, l := range []Layer{LayerCore, LayerAgg, LayerHost} {
		got, ok := ParseLayer(l.String())
		if !ok || got != l {
			t.Fatalf("layer %v does not round-trip", l)
		}
	}
	if _, ok := ParseLayer("sea"); ok {
		t.Fatal("unknown layer parsed")
	}
}

func TestInjectLinkDownAndRecover(t *testing.T) {
	ft := tree(t)
	p := Plan{Kind: KindLinkDown, Layer: LayerCore, Frac: 0.25, FailAt: time.Millisecond, RecoverAt: 3 * time.Millisecond, Seed: 2}
	in, err := Inject(ft, p)
	if err != nil {
		t.Fatal(err)
	}
	want := topology.PickCount(len(ft.CoreLinks()), 0.25)
	if in.TargetCount() != want {
		t.Fatalf("targeted %d links, want %d", in.TargetCount(), want)
	}
	downCount := func() int {
		n := 0
		for _, l := range ft.CoreLinks() {
			if !l.A.Up() || !l.B.Up() {
				n++
			}
		}
		return n
	}
	ft.Net.Eng.RunUntil(500 * time.Microsecond)
	if got := downCount(); got != 0 {
		t.Fatalf("%d links down before FailAt", got)
	}
	ft.Net.Eng.RunUntil(2 * time.Millisecond)
	if got := downCount(); got != want {
		t.Fatalf("%d links down during fault window, want %d", got, want)
	}
	ft.Net.Eng.RunUntil(4 * time.Millisecond)
	if got := downCount(); got != 0 {
		t.Fatalf("%d links still down after recovery", got)
	}
	if len(in.Events) != 2*want {
		t.Fatalf("event log has %d entries, want %d", len(in.Events), 2*want)
	}
}

func TestInjectSwitchKillParksPortsAndRestores(t *testing.T) {
	ft := tree(t)
	p := Plan{Kind: KindSwitchKill, Layer: LayerCore, Frac: 0.5, FailAt: time.Millisecond, RecoverAt: 2 * time.Millisecond, Seed: 1}
	in, err := Inject(ft, p)
	if err != nil {
		t.Fatal(err)
	}
	if in.TargetCount() != 2 { // k=4: 4 cores, half
		t.Fatalf("targeted %d switches, want 2", in.TargetCount())
	}
	ft.Net.Eng.RunUntil(1500 * time.Microsecond)
	downSwitches := 0
	for _, sw := range ft.CoreSwitches() {
		if sw.Down() {
			downSwitches++
			for _, port := range sw.Ports {
				if port.Up() {
					t.Fatalf("killed switch %s still has an up egress port", sw.Name)
				}
			}
		}
	}
	if downSwitches != 2 {
		t.Fatalf("%d switches down, want 2", downSwitches)
	}
	ft.Net.Eng.RunUntil(3 * time.Millisecond)
	for _, sw := range ft.CoreSwitches() {
		if sw.Down() {
			t.Fatalf("switch %s still down after restore", sw.Name)
		}
		for _, port := range sw.Ports {
			if !port.Up() {
				t.Fatalf("restored switch %s has a down port", sw.Name)
			}
		}
	}
}

func TestInjectLossOnOff(t *testing.T) {
	ft := tree(t)
	p := Plan{Kind: KindLinkLoss, Layer: LayerAgg, Frac: 0.5, LossRate: 0.3, FailAt: time.Millisecond, RecoverAt: 2 * time.Millisecond, Seed: 3}
	in, err := Inject(ft, p)
	if err != nil {
		t.Fatal(err)
	}
	lossy := func() int {
		n := 0
		for _, l := range ft.AggLinks() {
			if l.A.LossRate() > 0 || l.B.LossRate() > 0 {
				n++
			}
		}
		return n
	}
	ft.Net.Eng.RunUntil(1500 * time.Microsecond)
	if got := lossy(); got != in.TargetCount() {
		t.Fatalf("%d lossy links, want %d", got, in.TargetCount())
	}
	ft.Net.Eng.RunUntil(3 * time.Millisecond)
	if got := lossy(); got != 0 {
		t.Fatalf("%d links still lossy after recovery", got)
	}
}

func TestInjectFlapTogglesAndEndsUp(t *testing.T) {
	ft := tree(t)
	p := Plan{
		Kind: KindLinkFlap, Layer: LayerCore, Frac: 0.25,
		FailAt: time.Millisecond, RecoverAt: 5 * time.Millisecond,
		FlapPeriod: 2 * time.Millisecond, Seed: 4,
	}
	in, err := Inject(ft, p)
	if err != nil {
		t.Fatal(err)
	}
	// Half period is 1 ms: down at 1 ms, up at 2 ms, down at 3 ms, up
	// at 4 ms, down at 5 ms is past RecoverAt so it forces up instead.
	ft.Net.Eng.Run()
	for _, l := range ft.CoreLinks() {
		if !l.A.Up() || !l.B.Up() {
			t.Fatalf("link %s left down after flap ended", l.Name)
		}
	}
	downs, ups := 0, 0
	for _, ev := range in.Events {
		switch ev.Action {
		case "link-down":
			downs++
		case "link-up":
			ups++
		default:
			t.Fatalf("unexpected action %q", ev.Action)
		}
	}
	if downs == 0 || downs != ups {
		t.Fatalf("flap log unbalanced: %d downs, %d ups", downs, ups)
	}
	perLink := downs / in.TargetCount()
	if perLink < 2 {
		t.Fatalf("each link flapped %d times, want >= 2", perLink)
	}
}

func TestInjectDeterministicTargets(t *testing.T) {
	p := Plan{Kind: KindLinkDown, Layer: LayerCore, Frac: 0.5, FailAt: time.Millisecond, Seed: 9}
	a, err := Inject(tree(t), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Inject(tree(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("target counts differ: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("targets differ at %d: %s vs %s", i, a.Targets[i], b.Targets[i])
		}
	}
}

func TestInjectRejectsInvalidPlan(t *testing.T) {
	_, err := Inject(tree(t), Plan{Kind: KindLinkLoss, Layer: LayerCore, Frac: 0.5})
	if err == nil {
		t.Fatal("invalid plan injected")
	}
}
