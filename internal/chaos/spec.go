package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"polyraptor/internal/sim"
)

// ParsePlan parses the compact textual fault grammar used by CLI
// flags and experiment configs:
//
//	<kind> <layer> <frac> [@<fail-at>] [recover <dur>] [rate <p>]
//	                      [period <dur>] [seed <n>]
//
// For example, "link core 0.25 @10ms recover 50ms" blackholes a
// quarter of the agg<->core links at t=10ms and restores them at
// t=50ms; "flap agg 0.5 @1ms recover 20ms period 2ms" flaps half the
// edge<->agg links. Durations use Go syntax ("10ms", "1.5s"); fail-at
// defaults to 0 and recover to never. "rate" applies only to loss
// plans and "period" only to flap plans. The parsed plan is validated
// before being returned, and ParsePlan(p.Spec()) == p for every plan
// this returns.
func ParsePlan(spec string) (Plan, error) {
	fields := strings.Fields(spec)
	if len(fields) < 3 {
		return Plan{}, fmt.Errorf("chaos: plan %q: want \"<kind> <layer> <frac> [clauses]\"", spec)
	}
	var p Plan
	kind, ok := ParseKind(fields[0])
	if !ok {
		return Plan{}, fmt.Errorf("chaos: plan %q: unknown kind %q (want link, switch, loss or flap)", spec, fields[0])
	}
	p.Kind = kind
	layer, ok := ParseLayer(fields[1])
	if !ok {
		return Plan{}, fmt.Errorf("chaos: plan %q: unknown layer %q (want core, agg or host)", spec, fields[1])
	}
	p.Layer = layer
	frac, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Plan{}, fmt.Errorf("chaos: plan %q: bad fraction %q: %v", spec, fields[2], err)
	}
	p.Frac = frac

	for i := 3; i < len(fields); {
		f := fields[i]
		if rest, ok := strings.CutPrefix(f, "@"); ok {
			d, err := time.ParseDuration(rest)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: plan %q: bad fail-at %q: %v", spec, f, err)
			}
			p.FailAt = sim.Time(d)
			i++
			continue
		}
		if i+1 >= len(fields) {
			return Plan{}, fmt.Errorf("chaos: plan %q: clause %q needs a value", spec, f)
		}
		v := fields[i+1]
		switch f {
		case "recover":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: plan %q: bad recover time %q: %v", spec, v, err)
			}
			p.RecoverAt = sim.Time(d)
		case "rate":
			if p.Kind != KindLinkLoss {
				return Plan{}, fmt.Errorf("chaos: plan %q: rate applies only to loss plans", spec)
			}
			r, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: plan %q: bad loss rate %q: %v", spec, v, err)
			}
			p.LossRate = r
		case "period":
			if p.Kind != KindLinkFlap {
				return Plan{}, fmt.Errorf("chaos: plan %q: period applies only to flap plans", spec)
			}
			d, err := time.ParseDuration(v)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: plan %q: bad flap period %q: %v", spec, v, err)
			}
			p.FlapPeriod = d
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: plan %q: bad seed %q: %v", spec, v, err)
			}
			p.Seed = n
		default:
			return Plan{}, fmt.Errorf("chaos: plan %q: unknown clause %q", spec, f)
		}
		i += 2
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Spec renders the plan in the canonical form ParsePlan accepts;
// ParsePlan(p.Spec()) reproduces p exactly for any valid plan.
func (p Plan) Spec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s", p.Kind, p.Layer, formatFloat(p.Frac))
	if p.FailAt != 0 {
		fmt.Fprintf(&b, " @%s", time.Duration(p.FailAt))
	}
	if p.RecoverAt != 0 {
		fmt.Fprintf(&b, " recover %s", time.Duration(p.RecoverAt))
	}
	if p.Kind == KindLinkLoss {
		fmt.Fprintf(&b, " rate %s", formatFloat(p.LossRate))
	}
	if p.Kind == KindLinkFlap {
		fmt.Fprintf(&b, " period %s", p.FlapPeriod)
	}
	if p.Seed != 0 {
		fmt.Fprintf(&b, " seed %d", p.Seed)
	}
	return b.String()
}

// formatFloat renders f with the shortest representation that parses
// back to exactly the same value.
func formatFloat(f float64) string {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return "0" // unreachable for validated plans; keep Spec total
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
