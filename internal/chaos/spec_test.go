package chaos

import (
	"testing"
	"time"

	"polyraptor/internal/sim"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want Plan
	}{
		{"link core 0.25 @10ms recover 50ms", Plan{
			Kind: KindLinkDown, Layer: LayerCore, Frac: 0.25,
			FailAt: 10 * time.Millisecond, RecoverAt: 50 * time.Millisecond,
		}},
		{"switch agg 0.5", Plan{Kind: KindSwitchKill, Layer: LayerAgg, Frac: 0.5}},
		{"loss host 1 rate 0.01 seed 7", Plan{
			Kind: KindLinkLoss, Layer: LayerHost, Frac: 1, LossRate: 0.01, Seed: 7,
		}},
		{"flap core 0.125 @1ms recover 20ms period 2ms", Plan{
			Kind: KindLinkFlap, Layer: LayerCore, Frac: 0.125,
			FailAt: time.Millisecond, RecoverAt: 20 * time.Millisecond,
			FlapPeriod: 2 * time.Millisecond,
		}},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		back, err := ParsePlan(got.Spec())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q: got %+v, err %v", c.spec, got.Spec(), back, err)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"",
		"link core",
		"quake core 0.5",
		"link basement 0.5",
		"link core lots",
		"link core 1.5",
		"link core NaN",
		"link core 0.5 @banana",
		"link core 0.5 recover",
		"link core 0.5 sideways 3",
		"link core 0.5 rate 0.1",     // rate is loss-only
		"switch core 0.5 period 2ms", // period is flap-only
		"loss core 0.5 rate 0",
		"loss core 0.5 rate NaN",
		"loss core 0.5",                        // loss needs a rate
		"flap core 0.5 @1ms recover 5ms",       // flap needs a period
		"flap core 0.5 period 1ns recover 5ms", // period under MinFlapPeriod
		"flap core 0.5 period 2ms",             // flap must end
		"link core 0.5 @10ms recover 5ms",      // recover before fail
		"link core 0.5 @-10ms recover 5ms",     // negative fail-at
		"link core 0.5 seed twelve",
	}
	for _, spec := range bad {
		if p, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) = %+v, want error", spec, p)
		}
	}
}

// FuzzPlanParse: the parser must never panic, and every plan it
// accepts must validate and survive a Spec round trip unchanged.
func FuzzPlanParse(f *testing.F) {
	f.Add("link core 0.25 @10ms recover 50ms")
	f.Add("switch agg 0.5 seed -3")
	f.Add("loss host 1 rate 0.01")
	f.Add("flap core 0.125 @1ms recover 20ms period 2ms")
	f.Add("link core 1.5")
	f.Add("loss core 0.5 rate NaN")
	f.Add("@@@ recover recover")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) returned invalid plan %+v: %v", spec, p, verr)
		}
		canon := p.Spec()
		back, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("ParsePlan(%q) accepted, but canonical %q rejected: %v", spec, canon, err)
		}
		if back != p {
			t.Fatalf("round trip via %q: %+v != %+v", canon, back, p)
		}
	})
}

var _ = sim.Time(0) // keep the sim import tied to the Plan field types
