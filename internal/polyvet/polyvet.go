// Package polyvet is a static-analysis suite that machine-enforces
// the simulator's determinism, RNG-stream and hot-path invariants.
// Every headline result in this repo rests on properties that are
// otherwise only spot-tested: byte-identical sweep output at any
// parallelism, traced runs bit-identical to untraced, zero-cost
// disabled telemetry hooks, and seeded RNG streams with no shared
// state. The seed's own history shows how these rot silently — the
// tcpsim map-iteration nondeterminism fixed in PR 1 shipped in the
// original code and corrupted every DCTCP figure. polyvet turns the
// invariants into compile-time properties checked on every build.
//
// The suite:
//
//   - detmap: no `range` over a map in sim-visible packages unless the
//     loop body is provably order-insensitive or annotated
//     //polyvet:orderfree <reason>.
//   - simclock: no wall-clock (time.Now/Since/Sleep/...) and no global
//     math/rand top-level functions in sim packages — time comes from
//     the engine, randomness from a named seeded stream.
//   - rngstream: every *rand.Rand is constructed through the blessed
//     deriver (sim.RNG's seeded, stream-labelled derivation) and no
//     package-level RNG state is shared across sweep workers.
//   - nilhook: every exported *telemetry.Recorder method begins with
//     the nil-receiver guard, and call sites with allocation-free
//     arguments do not redundantly pre-check (the 0.36 ns
//     disabled-path contract).
//   - hotpath: functions annotated //polyvet:noalloc are checked for
//     obvious allocation sources (fmt calls, string concatenation,
//     capturing closures, interface boxing, map/slice literals,
//     make/new, byte/string conversions).
//
// polyvet is deliberately built on the standard library only (go/ast,
// go/types, `go list -export` for export data): the build environment
// has no module proxy, and the analyzers need nothing more. The
// Analyzer/Pass shapes mirror golang.org/x/tools/go/analysis so the
// suite can be rebased onto the real framework mechanically if the
// dependency ever becomes available.
package polyvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //polyvet:allow <name> suppressions.
	Name string
	// Doc is the one-paragraph description printed by `polyvet help`.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees. Test files (_test.go)
	// are excluded by the drivers: the enforced invariants are about
	// shipped sim code; tests assert on outputs and may freely use
	// wall-clock and map iteration.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Directives holds the package's parsed //polyvet: comments.
	Directives *Directives

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Info marks an informational diagnostic: printed, but not a
	// failure. Deep mode downgrades syntactic hotpath findings to Info
	// when the compiler proves the flagged site stack-allocated, and
	// uses Info for skip-and-warn notes when a toolchain's diagnostic
	// format is unrecognized.
	Info bool
}

func (d Diagnostic) String() string {
	sev := ""
	if d.Info {
		sev = "info: "
	}
	return fmt.Sprintf("%s: %s[%s] %s", d.Pos, sev, d.Analyzer, d.Message)
}

// Suite returns the full analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		DetMap,
		SimClock,
		RNGStream,
		NilHook,
		HotPath,
	}
}

// ByName resolves a subset of Suite by name; unknown names error.
func ByName(names []string) ([]*Analyzer, error) {
	all := Suite()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("polyvet: unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(all), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// A Package is one type-checked unit handed to RunPackage by a driver
// (the standalone loader, the unitchecker protocol, or the fixture
// harness).
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RunPackage runs the given analyzers over one package and returns
// the surviving diagnostics sorted by position: suppressed findings
// (matched by an adjacent //polyvet: directive) are dropped, and
// stale directives that suppressed nothing are themselves reported —
// an annotation must pay rent by silencing a real finding, so escape
// hatches cannot outlive the code they excused.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := withoutTestFiles(pkg.Fset, pkg.Files)
	dirs := parseDirectives(pkg.Fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      files,
			Pkg:        pkg.Pkg,
			TypesInfo:  pkg.Info,
			Directives: dirs,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("polyvet: %s: %w", a.Name, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if dirs.suppress(d) {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, dirs.unused(analyzers)...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

func withoutTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// simVisible reports whether pkg is one of the packages whose code
// runs inside (or feeds) the deterministic simulation, where the
// detmap/simclock/rngstream invariants apply. Matching is by package
// name so analysistest fixtures can model sim packages directly.
var simPackageNames = map[string]bool{
	"sim":        true,
	"netsim":     true,
	"polyraptor": true,
	"tcpsim":     true,
	"chaos":      true,
	"raptorq":    true,
	"store":      true,
	"sweep":      true,
	"workload":   true,
	"harness":    true,
	"topology":   true,
	"telemetry":  true,
	"metrics":    true,
}

func simVisible(pkg *types.Package) bool {
	return pkg != nil && simPackageNames[pkg.Name()]
}

// funcFor returns the object of a call's callee if statically known,
// whether a plain function or a method.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function
// pkgpath.name (not a method).
func isPkgFunc(f *types.Func, pkgpath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgpath && f.Name() == name
}
