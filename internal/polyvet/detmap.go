package polyvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` over a map in sim-visible packages unless the
// loop body is provably order-insensitive. Go randomizes map
// iteration order per run, so any order that leaks into simulation
// state, RNG draw order, or output breaks the byte-identical
// reproducibility bar every sweep and trace clears — exactly the PR 1
// tcpsim bug, where feeding an RTT EWMA in map order made DCTCP
// figures vary run to run.
//
// A body is accepted as order-insensitive when every statement is one
// of: integer commutative accumulation (x += e, x++, x |= e, ...);
// setting a bool flag to a constant; writing or deleting a map entry
// keyed by the range key (distinct keys — each iteration touches its
// own entry); integer min/max via the builtins (x = min(x, e));
// declaring iteration-local variables; branching on conditions that
// read only the range variables, iteration-locals and loop-invariant
// state; continue; and early returns of loop-invariant values. Float
// accumulation is rejected on purpose: float addition is not
// associative, so even a "commutative" sum is order-dependent in its
// low bits. Anything else needs //polyvet:orderfree <reason>.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flag range-over-map in sim-visible packages unless the body is provably order-insensitive",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) error {
	if !simVisible(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			_, isMap := tv.Type.Underlying().(*types.Map)
			if !isMap && mapIterCall(pass.TypesInfo, rs.X) == "" {
				return true
			}
			if !orderInsensitive(pass.TypesInfo, rs) {
				pass.Reportf(rs.Pos(),
					"range over map %s: iteration order is nondeterministic and the body is not provably order-insensitive; iterate a sorted/ordered key slice, or annotate //polyvet:orderfree <reason>",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
	return nil
}

// loopEnv carries the classification state for one range-over-map
// body.
type loopEnv struct {
	info *types.Info
	// rangeVars are the key/value objects: per-iteration values that
	// conditions and RHSs may freely read.
	rangeVars map[types.Object]bool
	// keyVars is just the key object: map keys are distinct per
	// iteration, so indexing another map by the range key can never
	// collide (the range value can).
	keyVars map[types.Object]bool
	// locals are objects declared inside the body — also
	// per-iteration.
	locals map[types.Object]bool
	// written are objects assigned inside the body but declared
	// outside it: cross-iteration accumulators. Reading one anywhere
	// except the blessed accumulation forms is order-sensitive.
	written map[types.Object]bool
	// rangeObj is the object of the ranged map expression, when it is
	// a plain identifier or field chain; writing through it (other
	// than delete-by-range-key) is order-sensitive.
	rangeObj types.Object
	// usesRangeVars records whether any statement reads the range
	// variables; a body that never looks at them (the `for range m {
	// n++ }` and emptiness-probe idioms) may break early.
	usesRangeVars bool
}

// mapIterCall recognizes `range maps.Keys(m)` / maps.Values / maps.All
// — the iterator forms are exactly as order-randomized as ranging the
// map directly, and without this check they would be a silent bypass.
func mapIterCall(info *types.Info, x ast.Expr) string {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return ""
	}
	f := funcFor(info, call)
	if f == nil {
		return ""
	}
	for _, name := range []string{"Keys", "Values", "All"} {
		if isPkgFunc(f, "maps", name) {
			return name
		}
	}
	return ""
}

func orderInsensitive(info *types.Info, rs *ast.RangeStmt) bool {
	rangeX := rs.X
	iterName := mapIterCall(info, rs.X)
	if iterName != "" {
		// Analyze relative to the underlying map, not the iterator
		// value: maps.Keys(m) yields m's keys as the single range var.
		if call, ok := ast.Unparen(rs.X).(*ast.CallExpr); ok && len(call.Args) == 1 {
			rangeX = call.Args[0]
		}
	}
	env := &loopEnv{
		info:      info,
		rangeVars: map[types.Object]bool{},
		keyVars:   map[types.Object]bool{},
		locals:    map[types.Object]bool{},
		written:   map[types.Object]bool{},
		rangeObj:  rootObject(info, rangeX),
	}
	for i, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				env.rangeVars[obj] = true
				// The first variable is the map key — except for
				// maps.Values, whose single yielded variable is a value
				// and gets no distinctness guarantee.
				if i == 0 && iterName != "Values" {
					env.keyVars[obj] = true
				}
			} else if obj := info.Uses[id]; obj != nil {
				// `for k = range m` assigning an outer variable: the
				// final value is the last key visited — order-sensitive.
				return false
			}
		}
	}
	// First pass: classify every object assigned or declared in the
	// body, and note whether the range variables are read at all.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if env.rangeVars[env.info.Uses[n]] {
				env.usesRangeVars = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := env.info.Defs[id]; obj != nil {
						env.locals[obj] = true
					} else if obj := env.info.Uses[id]; obj != nil {
						env.written[obj] = true
					}
				} else if obj := rootObject(env.info, lhs); obj != nil {
					env.written[obj] = true
				}
			}
		case *ast.IncDecStmt:
			if obj := rootObject(env.info, n.X); obj != nil && !env.locals[obj] {
				env.written[obj] = true
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if obj := env.info.Defs[id]; obj != nil {
							env.locals[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	for obj := range env.locals {
		delete(env.written, obj)
	}
	return env.stmtsOK(rs.Body.List)
}

func (env *loopEnv) stmtsOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !env.stmtOK(s) {
			return false
		}
	}
	return true
}

func (env *loopEnv) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return env.stmtsOK(s.List)
	case *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE && s.Label == nil {
			return true
		}
		// break is order-sensitive in general (which elements were
		// visited before it?) — except when the body never reads the
		// range variables, i.e. the emptiness-probe / bounded-count
		// idiom where every iteration does the same thing.
		return s.Tok == token.BREAK && s.Label == nil && !env.usesRangeVars
	case *ast.ReturnStmt:
		// Early return: acceptable only when the returned values are
		// loop-invariant, so it does not matter which element
		// triggered the exit.
		for _, r := range s.Results {
			if !env.pureExpr(r) || env.readsAny(r, env.rangeVars) || env.readsAny(r, env.locals) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !env.stmtOK(s.Init) {
			return false
		}
		if !env.pureExpr(s.Cond) {
			return false
		}
		if !env.stmtOK(s.Body) {
			return false
		}
		return s.Else == nil || env.stmtOK(s.Else)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !env.pureExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.IncDecStmt:
		// x++ / x-- on an integer accumulator commutes; on the ranged
		// map itself (m[k]++ histogramming) each key has its own cell.
		return env.integer(s.X) && env.lvalueOK(s.X)
	case *ast.AssignStmt:
		return env.assignOK(s)
	case *ast.ExprStmt:
		// Only delete(m, key-derived) has blessed side effects.
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		return env.deleteByRangeKey(call)
	case *ast.ForStmt:
		// An inner ordered loop is fine as long as its own body obeys
		// the same rules relative to the outer map iteration.
		if s.Init != nil && !env.stmtOK(s.Init) {
			return false
		}
		if !env.pureExpr(s.Cond) {
			return false
		}
		if s.Post != nil && !env.stmtOK(s.Post) {
			return false
		}
		return env.stmtOK(s.Body)
	case *ast.RangeStmt:
		// An inner range: its variables are per-(outer-)iteration
		// values. If it ranges a map itself, the top-level walk flags
		// it separately on its own merits.
		if !env.pureExpr(s.X) {
			return false
		}
		return env.stmtOK(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil && !env.stmtOK(s.Init) {
			return false
		}
		if !env.pureExpr(s.Tag) {
			return false
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				return false
			}
			for _, e := range cc.List {
				if !env.pureExpr(e) {
					return false
				}
			}
			if !env.stmtsOK(cc.Body) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (env *loopEnv) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		for _, r := range s.Rhs {
			if !env.pureExpr(r) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative/associative accumulation — integers only: float
		// addition is order-dependent in its low bits, and string +=
		// is concatenation.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		return env.integer(s.Lhs[0]) && env.lvalueOK(s.Lhs[0]) && env.pureExpr(s.Rhs[0])
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		// Flag-setting: x = true / x = false is idempotent.
		if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") && env.info.Uses[id] == types.Universe.Lookup(id.Name) {
			return env.lvalueOK(lhs)
		}
		// Integer min/max tracking via the builtins: x = min(x, e).
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && env.minMaxSelf(lhs, call) {
			return true
		}
		// Indexed writes. Order-free shapes: an entry keyed by exactly
		// the range key (map keys are distinct — each iteration owns
		// its entry; this includes the ranged map itself, since the
		// spec guarantees updating an existing entry during iteration
		// is safe), a self-append at the range key (m[k] = append(m[k],
		// pure...)), or an idempotent write (the stored value does not
		// depend on which iteration performs it, so collisions via the
		// range *value*, a derived index, or a constant key do not
		// matter). Inserting arbitrary keys into the ranged map is
		// unspecified and stays flagged.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && env.pureExpr(ix.Index) {
			obj := rootObject(env.info, ix.X)
			if obj == nil {
				return false
			}
			switch env.typeOf(ix.X).Underlying().(type) {
			case *types.Map:
				if env.isKeyVar(ix.Index) {
					return env.selfAppend(lhs, rhs) || env.pureExpr(rhs)
				}
				if obj == env.rangeObj {
					return false
				}
				return env.pureExpr(rhs) &&
					!env.readsAny(rhs, env.rangeVars) && !env.readsAny(rhs, env.locals)
			case *types.Slice, *types.Array:
				if obj == env.rangeObj {
					return false
				}
				if env.isKeyVar(ix.Index) {
					return env.pureExpr(rhs)
				}
				// Idempotent slice write (e.g. coeff[idx[c]] = 1): even
				// if derived indices collide, every iteration stores the
				// same iteration-invariant value.
				return env.pureExpr(rhs) &&
					!env.readsAny(rhs, env.rangeVars) && !env.readsAny(rhs, env.locals)
			}
		}
		return false
	}
	return false
}

// minMaxSelf recognizes x = min(x, e...) / x = max(x, e...) over
// integers, which is order-insensitive (unlike tracking an argmin
// key, which ties break by visit order).
func (env *loopEnv) minMaxSelf(lhs ast.Expr, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "min" && id.Name != "max") || env.info.Uses[id] != types.Universe.Lookup(id.Name) {
		return false
	}
	if !env.integer(lhs) || !env.lvalueOK(lhs) {
		return false
	}
	lobj := rootObject(env.info, lhs)
	if lobj == nil {
		return false
	}
	self := false
	for _, arg := range call.Args {
		if rootObject(env.info, arg) == lobj && env.sameShape(arg, lhs) {
			self = true
			continue
		}
		if !env.pureExpr(arg) {
			return false
		}
	}
	return self
}

// sameShape conservatively matches x against x, a.b against a.b, and
// m[k] against m[k].
func (env *loopEnv) sameShape(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		bid, ok := ast.Unparen(b).(*ast.Ident)
		return ok && env.info.Uses[a] != nil && env.info.Uses[a] == env.info.Uses[bid]
	case *ast.SelectorExpr:
		bsel, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == bsel.Sel.Name && env.sameShape(a.X, bsel.X)
	case *ast.IndexExpr:
		bix, ok := ast.Unparen(b).(*ast.IndexExpr)
		return ok && env.sameShape(a.X, bix.X) && env.sameShape(a.Index, bix.Index)
	}
	return false
}

// isKeyVar reports whether e is exactly the range-key variable (not
// merely an expression reading it — k%2 can collide, k cannot).
func (env *loopEnv) isKeyVar(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && env.keyVars[env.info.Uses[id]]
}

// selfAppend recognizes m[k] = append(m[k], pure...) — a per-key
// accumulation where each iteration extends its own entry.
func (env *loopEnv) selfAppend(lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || env.info.Uses[id] != types.Universe.Lookup("append") {
		return false
	}
	if !env.sameShape(call.Args[0], lhs) {
		return false
	}
	for _, arg := range call.Args[1:] {
		if !env.pureExpr(arg) {
			return false
		}
	}
	return true
}

// lvalueOK accepts accumulation targets: a variable, field chain, or
// map/slice element keyed by a pure index. The target may be an
// accumulator (that is the point); order-sensitivity is governed by
// what reads it.
func (env *loopEnv) lvalueOK(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr:
		return env.lvalueOK(e.X)
	case *ast.IndexExpr:
		// Indexing the ranged map itself is fine when keyed by exactly
		// the range key (m[k]-- updates an existing, distinct entry);
		// any other index into it could insert mid-iteration.
		obj := rootObject(env.info, e.X)
		if obj == env.rangeObj && !env.isKeyVar(e.Index) {
			return false
		}
		return env.pureExpr(e.Index) && env.lvalueOK(e.X)
	}
	return false
}

// pureExpr reports whether e can be evaluated in any iteration order
// with the same result: no calls (other than len/cap/min/max and
// basic conversions), no reads of cross-iteration accumulators, no
// channel/pointer tricks.
func (env *loopEnv) pureExpr(e ast.Expr) bool {
	if e == nil {
		return true
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !env.pureCall(n) {
				ok = false
			}
		case *ast.Ident:
			if obj := env.info.Uses[n]; obj != nil && env.written[obj] {
				ok = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND || n.Op == token.ARROW {
				ok = false
			}
		case *ast.FuncLit:
			ok = false
			return false
		}
		return ok
	})
	return ok
}

func (env *loopEnv) pureCall(call *ast.CallExpr) bool {
	// Conversions to basic or named types are value-pure.
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := env.info.Uses[fun]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
			if obj == types.Universe.Lookup(fun.Name) {
				switch fun.Name {
				case "len", "cap", "min", "max":
					return true
				}
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := env.info.Uses[sel.Sel]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
	}
	return false
}

func (env *loopEnv) deleteByRangeKey(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" || env.info.Uses[id] != types.Universe.Lookup("delete") {
		return false
	}
	if len(call.Args) != 2 {
		return false
	}
	// Deleting the range key from any map (including the one being
	// ranged — explicitly allowed by the spec) touches a distinct
	// entry per iteration.
	return env.readsAny(call.Args[1], env.rangeVars) && env.pureExpr(call.Args[1])
}

func (env *loopEnv) readsAny(e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && set[env.info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func (env *loopEnv) integer(e ast.Expr) bool {
	t := env.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (env *loopEnv) typeOf(e ast.Expr) types.Type {
	if tv, ok := env.info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// rootObject resolves the base object of an identifier or selector
// chain (a, a.b.c, a[i].b → a); nil when the expression is anything
// else.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return rootObject(info, e.X)
	case *ast.IndexExpr:
		return rootObject(info, e.X)
	case *ast.StarExpr:
		return rootObject(info, e.X)
	}
	return nil
}
