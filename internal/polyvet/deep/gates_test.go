package deep

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polyraptor/internal/polyvet"
)

// fixtureDir is the throwaway module with one clean and one dirty
// package, compiled for real by the live gate tests.
func fixtureDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "deepmod"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// skipOnSkew implements the format-drift contract: when the toolchain
// stops emitting recognizable diagnostics, the live tests skip loudly
// instead of failing — the canned-fixture tests keep covering the
// parser, and the skip message tells the maintainer what to refresh.
func skipOnSkew(t *testing.T, res *Result) {
	t.Helper()
	if res.FormatSkew {
		t.Skipf("compiler diagnostic format drift detected (unrecognized: %d lines) — "+
			"deep gates skipped; refresh the parsers and testdata fixtures for this toolchain",
			len(res.Facts.Unrecognized))
	}
}

func TestLiveCleanPackagePasses(t *testing.T) {
	res, err := Analyze(fixtureDir(t), []string{"./clean/"})
	if err != nil {
		t.Fatal(err)
	}
	skipOnSkew(t, res)
	if res.Fatal() {
		t.Fatalf("clean fixture package must pass all deep gates, got:\n%s", diagLines(res.Diags))
	}
}

func TestLiveDirtyPackageFailsEveryGate(t *testing.T) {
	res, err := Analyze(fixtureDir(t), []string{"./dirty/"})
	if err != nil {
		t.Fatal(err)
	}
	skipOnSkew(t, res)
	if !res.Fatal() {
		t.Fatal("dirty fixture package must fail")
	}
	wants := map[string]string{
		"escape (Leaky)":        "noalloc function Leaky",
		"escape (LeakyBuffer)":  "noalloc function LeakyBuffer",
		"bce in-loop (Gather)":  "nobce function Gather",
		"bce no-rent (NoLoops)": "pays no rent",
		"inline (Heavy)":        "cannot be inlined",
	}
	all := diagLines(res.Diags)
	for label, frag := range wants {
		if !strings.Contains(all, frag) {
			t.Errorf("injected %s regression not reported (want substring %q) in:\n%s", label, frag, all)
		}
	}
	// Gate failures must be fatal, not informational.
	for _, d := range res.Diags {
		if d.Info && d.Analyzer != polyvet.HotPath.Name {
			t.Errorf("gate finding downgraded to info: %s", d)
		}
	}
}

func TestLiveGF256KernelsBoundsCheckFree(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(root, []string{"./internal/gf256/"})
	if err != nil {
		t.Fatal(err)
	}
	skipOnSkew(t, res)
	if res.Fatal() {
		t.Fatalf("gf256 kernels must stay escape-free, bounds-check-free and within "+
			"inline budgets, got:\n%s", diagLines(res.Diags))
	}
	// The certification must be real, not vacuous: the package carries
	// nobce marks and the compiler reported bounds checks somewhere in
	// it (the allowed prologue ones).
	if !res.Facts.BoundsSeen() {
		t.Fatal("no check_bce output for gf256 — the bce gate proved nothing")
	}
}

// TestMutatedFixtureReintroducesEscape replays the canned gf256 output
// with one escape line injected inside the span of an annotated kernel
// and requires the escape gate to turn red. The injection point is
// located from the live package, not hard-coded, so the test cannot go
// vacuously green when gf256.go drifts.
func TestMutatedFixtureReintroducesEscape(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := polyvet.Load(root, []string{"./internal/gf256/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	marks, _ := polyvet.FuncMarks(pkg, "noalloc")
	var kernel *polyvet.FuncMark
	for i := range marks {
		if marks[i].Name == "mulAddRowWords" {
			kernel = &marks[i]
		}
	}
	if kernel == nil {
		t.Fatal("mulAddRowWords is no longer annotated noalloc")
	}

	rel, err := filepath.Rel(root, kernel.Start.Filename)
	if err != nil {
		t.Fatal(err)
	}
	line := kernel.Start.Line + 1
	mutation := fmt.Sprintf(
		"%[1]s:%[2]d:9: make([]byte, 8) escapes to heap:\n"+
			"%[1]s:%[2]d:9:   flow: {heap} = &{storage for make([]byte, 8)}:\n"+
			"%[1]s:%[2]d:9:     from make([]byte, 8) (spill) at %[1]s:%[2]d:9\n",
		filepath.ToSlash(rel), line)

	canned, err := os.ReadFile(filepath.Join("testdata", "m2_gf256.txt"))
	if err != nil {
		t.Fatal(err)
	}

	clean := Check(pkg, ParseDiagnostics(string(canned), root))
	mutated := Check(pkg, ParseDiagnostics(string(canned)+mutation, root))

	if fatalCount(clean) != 0 {
		t.Errorf("canned baseline not clean:\n%s", diagLines(clean))
	}
	found := false
	for _, d := range mutated {
		if d.Analyzer == GateEscape && !d.Info &&
			strings.Contains(d.Message, "mulAddRowWords") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reintroduced heap escape in mulAddRowWords not flagged:\n%s", diagLines(mutated))
	}
}

// TestMutatedFixtureReintroducesBoundsCheck does the same for the bce
// gate: a check_bce line injected inside a kernel loop must fail.
func TestMutatedFixtureReintroducesBoundsCheck(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := polyvet.Load(root, []string{"./internal/gf256/"})
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	marks, _ := polyvet.FuncMarks(pkg, "nobce")
	if len(marks) == 0 {
		t.Fatal("gf256 has no nobce kernels any more")
	}
	m := marks[0]
	rel, err := filepath.Rel(root, m.Start.Filename)
	if err != nil {
		t.Fatal(err)
	}
	// One line into the body lands inside the first loop for all three
	// kernels... except it may hit a declaration; scan the span for a
	// line the gate attributes to a loop by injecting at each line until
	// one reports. At least one line of an annotated kernel must be in a
	// loop (nobce on loop-free functions is itself a finding).
	canned, err := os.ReadFile(filepath.Join("testdata", "m2_gf256.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for line := m.Start.Line + 1; line < m.End.Line; line++ {
		mutation := fmt.Sprintf("%s:%d:13: Found IsInBounds\n", filepath.ToSlash(rel), line)
		diags := Check(pkg, ParseDiagnostics(string(canned)+mutation, root))
		for _, d := range diags {
			if d.Analyzer == GateBCE && !d.Info && strings.Contains(d.Message, m.Name) {
				return // gate went red: regression detected
			}
		}
	}
	t.Fatalf("injected in-loop bounds check in %s never reported", m.Name)
}

// TestMutatedFixtureLosesInlinability flips a can-inline decision to
// cannot-inline for an annotated function and requires the inline gate
// to fail.
func TestMutatedFixtureLosesInlinability(t *testing.T) {
	dir := fixtureDir(t)
	pkgs, err := polyvet.Load(dir, []string{"./clean/"})
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]

	canned := readFixture(t, "m2_canned.txt")
	mutated := strings.Replace(canned,
		"can inline Mix with cost 9 as: func(uint64, uint64) uint64 { a ^= b >> uint(17); return a * uint64(11400714819323198485) }",
		"cannot inline Mix: function too complex: cost 93 exceeds budget 80", 1)
	if mutated == canned {
		t.Fatal("fixture mutation did not apply — refresh m2_canned.txt")
	}

	clean := Check(pkg, ParseDiagnostics(canned, dir))
	if fatalCount(clean) != 0 {
		t.Errorf("canned baseline not clean for ./clean/:\n%s", diagLines(clean))
	}
	diags := Check(pkg, ParseDiagnostics(mutated, dir))
	found := false
	for _, d := range diags {
		if d.Analyzer == GateInline && strings.Contains(d.Message, "Mix") &&
			strings.Contains(d.Message, "cost 93") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost inlinability of Mix not flagged:\n%s", diagLines(diags))
	}
}

// TestReconcileBothDirections pins the syntactic-vs-compiler contract:
// a hotpath finding with a stack proof downgrades to informational; a
// hotpath finding on a real escape stays fatal.
func TestReconcileBothDirections(t *testing.T) {
	dir := fixtureDir(t)
	for _, tc := range []struct {
		pattern   string
		fn        string
		downgrade bool
	}{
		{"./clean/", "StackBuffer", true},
		{"./dirty/", "LeakyBuffer", false},
	} {
		pkgs, err := polyvet.Load(dir, []string{tc.pattern})
		if err != nil {
			t.Fatal(err)
		}
		pkg := pkgs[0]
		syntactic, err := polyvet.RunPackage(pkg, []*polyvet.Analyzer{polyvet.HotPath})
		if err != nil {
			t.Fatal(err)
		}
		res, err := AnalyzePackages(dir, []string{tc.pattern}, pkgs)
		if err != nil {
			t.Fatal(err)
		}
		skipOnSkew(t, res)
		reconciled := Reconcile(syntactic, res.Facts)

		var got *polyvet.Diagnostic
		for i := range reconciled {
			if reconciled[i].Analyzer == polyvet.HotPath.Name &&
				strings.Contains(reconciled[i].Message, "make") {
				got = &reconciled[i]
			}
		}
		if got == nil {
			t.Fatalf("%s: hotpath make finding missing before/after reconcile:\n%s",
				tc.fn, diagLines(reconciled))
		}
		if got.Info != tc.downgrade {
			t.Errorf("%s: finding Info=%v, want %v (%s)", tc.fn, got.Info, tc.downgrade, got.Message)
		}
		if tc.downgrade && !strings.Contains(got.Message, "compiler proves it stack-allocated") {
			t.Errorf("%s: downgrade lacks explanation: %s", tc.fn, got.Message)
		}
	}
}

// TestReconcileFailsSafeWithoutEscapeFacts: no escape output, no
// downgrades — the stricter verdict wins when the compiler is silent.
func TestReconcileFailsSafeWithoutEscapeFacts(t *testing.T) {
	diags := []polyvet.Diagnostic{{Analyzer: polyvet.HotPath.Name, Message: "make in noalloc function F"}}
	out := Reconcile(diags, &Facts{})
	if out[0].Info {
		t.Fatal("finding downgraded with zero escape facts")
	}
}

func fatalCount(diags []polyvet.Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Info {
			n++
		}
	}
	return n
}

func diagLines(diags []polyvet.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}
