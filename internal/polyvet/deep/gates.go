package deep

import (
	"fmt"
	"go/ast"
	"go/token"

	"polyraptor/internal/polyvet"
)

// The three compiler-ground-truth gates. Their names are registered
// in polyvet.DeepGates so //polyvet:allow can target them and so the
// syntactic suite knows which directive verbs belong to deep mode.
const (
	GateEscape = "escape"
	GateBCE    = "bce"
	GateInline = "inline"
)

// Check enforces the noalloc/nobce/inline directives of one package
// against the build's Facts and returns the diagnostics — gate
// failures plus stale function directives. Gates whose fact category
// is absent from the stream are skipped with an informational
// diagnostic instead of guessing (format drift across Go releases
// must fail safe, not fail loud with false positives).
func Check(pkg *polyvet.Package, facts *Facts) []polyvet.Diagnostic {
	var diags []polyvet.Diagnostic
	diags = append(diags, checkEscapes(pkg, facts)...)
	diags = append(diags, checkBCE(pkg, facts)...)
	diags = append(diags, checkInlines(pkg, facts)...)
	return polyvet.ApplyAllows(pkg, polyvet.DeepGates, diags)
}

func checkEscapes(pkg *polyvet.Package, facts *Facts) []polyvet.Diagnostic {
	marks, stale := polyvet.FuncMarks(pkg, "noalloc")
	// Stale noalloc directives are already reported by the syntactic
	// suite (hotpath owns the verb there); reporting them here too
	// would duplicate. Only nobce/inline staleness is deep's job.
	_ = stale
	if len(marks) == 0 {
		return nil
	}
	if !facts.EscapesSeen() {
		return []polyvet.Diagnostic{skipNote(pkg, GateEscape, marks[0],
			"no escape-analysis output recognized (-m format drift?); escape gate skipped")}
	}
	var diags []polyvet.Diagnostic
	for _, m := range marks {
		for _, e := range facts.Escapes {
			if !inSpan(e.Pos, m) {
				continue
			}
			if e.PanicOnly() {
				continue // allocates only while crashing
			}
			verb := "escapes to heap"
			if e.Moved {
				verb = "moved to heap"
			}
			diags = append(diags, polyvet.Diagnostic{
				Pos:      position(e.Pos),
				Analyzer: GateEscape,
				Message: fmt.Sprintf("%s in noalloc function %s: %s %s%s",
					"heap allocation", m.Name, e.What, verb, escapeWhy(e)),
			})
		}
	}
	return diags
}

// escapeWhy extracts the first flow step of an escape's -m=2 trace —
// the one-line answer to "why" that makes the finding actionable
// without re-running the compiler.
func escapeWhy(e EscapeSite) string {
	for _, d := range e.Details {
		if len(d) >= 5 && d[:5] == "from " {
			return " (" + d + ")"
		}
	}
	return ""
}

func checkBCE(pkg *polyvet.Package, facts *Facts) []polyvet.Diagnostic {
	marks, stale := polyvet.FuncMarks(pkg, "nobce")
	diags := append([]polyvet.Diagnostic(nil), stale...)
	if len(marks) == 0 {
		return diags
	}
	if !facts.EscapesSeen() && !facts.BoundsSeen() {
		// check_bce output can be legitimately empty for a clean
		// build, but a stream with no -m output either means the
		// flags never reached the compiler (or the format drifted):
		// don't certify loops bounds-check-free on missing data.
		return append(diags, skipNote(pkg, GateBCE, marks[0],
			"no compiler diagnostics recognized (check_bce format drift?); bce gate skipped"))
	}
	for _, m := range marks {
		loops := loopSpans(pkg.Fset, m.Decl)
		if len(loops) == 0 {
			diags = append(diags, polyvet.Diagnostic{
				Pos:      m.NamePos,
				Analyzer: GateBCE,
				Message:  fmt.Sprintf("//polyvet:nobce on %s, which has no loops — the directive pays no rent; remove it", m.Name),
			})
			continue
		}
		for _, b := range facts.Bounds {
			if b.Pos.File != m.NamePos.Filename {
				continue
			}
			for _, span := range loops {
				if b.Pos.Line >= span[0] && b.Pos.Line <= span[1] {
					kind := "bounds check (IsInBounds)"
					if b.Slice {
						kind = "slice bounds check (IsSliceInBounds)"
					}
					diags = append(diags, polyvet.Diagnostic{
						Pos:      position(b.Pos),
						Analyzer: GateBCE,
						Message: fmt.Sprintf("%s inside a loop of nobce function %s — restructure so the prove pass can eliminate it",
							kind, m.Name),
					})
					break
				}
			}
		}
	}
	return diags
}

func checkInlines(pkg *polyvet.Package, facts *Facts) []polyvet.Diagnostic {
	marks, stale := polyvet.FuncMarks(pkg, "inline")
	diags := append([]polyvet.Diagnostic(nil), stale...)
	if len(marks) == 0 {
		return diags
	}
	if !facts.InlinesSeen() {
		return append(diags, skipNote(pkg, GateInline, marks[0],
			"no inlining decisions recognized (-m format drift?); inline gate skipped"))
	}
	for _, m := range marks {
		d, ok := facts.InlineAt(m.NamePos.Filename, m.NamePos.Line)
		if !ok {
			d, ok = facts.InlineByName(m.NamePos.Filename, m.Name)
		}
		switch {
		case !ok:
			diags = append(diags, polyvet.Diagnostic{
				Pos:      m.NamePos,
				Analyzer: GateInline,
				Message:  fmt.Sprintf("no inlining decision recorded for %s (closure-only body, or name/position drift)", m.Name),
			})
		case !d.CanInline:
			reason := d.Reason
			if reason == "" {
				reason = "compiler declined"
			}
			diags = append(diags, polyvet.Diagnostic{
				Pos:      m.NamePos,
				Analyzer: GateInline,
				Message:  fmt.Sprintf("%s must stay inlinable but cannot be inlined: %s", m.Name, reason),
			})
		}
	}
	return diags
}

// Reconcile downgrades syntactic hotpath findings the compiler
// disproves: a make/closure/literal flagged by the AST walk but
// proven by escape analysis to stay on the stack becomes
// informational — printed, not fatal. Findings without a stack proof
// pass through untouched, so a real escape stays red in both modes.
// When the stream carried no escape output at all, nothing is
// downgraded (fail safe toward the stricter verdict).
func Reconcile(diags []polyvet.Diagnostic, facts *Facts) []polyvet.Diagnostic {
	if !facts.EscapesSeen() {
		return diags
	}
	out := make([]polyvet.Diagnostic, len(diags))
	for i, d := range diags {
		if d.Analyzer == polyvet.HotPath.Name && !d.Info &&
			facts.ProvedStackAt(d.Pos.Filename, d.Pos.Line) {
			d.Info = true
			d.Message += " — compiler proves it stack-allocated (syntactic finding downgraded)"
		}
		out[i] = d
	}
	return out
}

// loopSpans returns the [startLine, endLine] spans of every for/range
// statement in fn, including nested ones. A bounds check anywhere in
// a loop runs per iteration; one in straight-line prologue code runs
// once and is allowed.
func loopSpans(fset *token.FileSet, fn *ast.FuncDecl) [][2]int {
	var spans [][2]int
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			spans = append(spans, [2]int{
				fset.Position(n.Pos()).Line,
				fset.Position(n.End()).Line,
			})
		}
		return true
	})
	return spans
}

func inSpan(p Pos, m polyvet.FuncMark) bool {
	return p.File == m.Start.Filename && p.Line >= m.Start.Line && p.Line <= m.End.Line
}

func position(p Pos) token.Position {
	return token.Position{Filename: p.File, Line: p.Line, Column: p.Col}
}

func skipNote(pkg *polyvet.Package, gate string, m polyvet.FuncMark, msg string) polyvet.Diagnostic {
	return polyvet.Diagnostic{
		Pos:      m.NamePos,
		Analyzer: gate,
		Message:  pkg.Pkg.Path() + ": " + msg,
		Info:     true,
	}
}
