package deep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

type cellSpec struct {
	name   string
	allocs float64
	mbps   float64
}

func benchJSON(index int, cells []cellSpec) map[string]any {
	results := make([]map[string]any, 0, len(cells))
	for _, c := range cells {
		results = append(results, map[string]any{
			"name": c.name, "allocs_per_op": c.allocs, "mb_per_s": c.mbps,
		})
	}
	return map[string]any{"schema": "polyperf/v1", "index": index, "results": results}
}

func budgetJSON(cells map[string]BudgetCell) *Budget {
	return &Budget{Schema: "polyvet-allocbudget/v1", Cells: cells}
}

func TestBudgetCeilings(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_0.json"), benchJSON(0, []cellSpec{
		{"kernel/zero", 0, 1000},
		{"e2e/busy", 75100, 0},
		{"kernel/unlocked", 3, 10},
	}))
	bp := filepath.Join(dir, "budget.json")
	writeJSON(t, bp, budgetJSON(map[string]BudgetCell{
		"kernel/zero": {AllocsPerOp: 0},
		"e2e/busy":    {AllocsPerOp: 76000},
		"gone/cell":   {AllocsPerOp: 5},
	}))

	diags, err := CheckBudget(dir, bp)
	if err != nil {
		t.Fatal(err)
	}
	all := diagLines(diags)
	if fatalCount(diags) != 1 || !strings.Contains(all, `locked cell "gone/cell" missing`) {
		t.Errorf("missing locked cell must be the only failure, got:\n%s", all)
	}
	if !strings.Contains(all, `"kernel/unlocked" has no locked budget`) {
		t.Errorf("unlocked cell must be surfaced informationally, got:\n%s", all)
	}

	// Now push the zero cell over its ceiling.
	writeJSON(t, filepath.Join(dir, "BENCH_1.json"), benchJSON(1, []cellSpec{
		{"kernel/zero", 1, 1000},
		{"e2e/busy", 75200, 0},
		{"kernel/unlocked", 3, 10},
	}))
	writeJSON(t, bp, budgetJSON(map[string]BudgetCell{
		"kernel/zero": {AllocsPerOp: 0},
		"e2e/busy":    {AllocsPerOp: 76000},
	}))
	diags, err = CheckBudget(dir, bp)
	if err != nil {
		t.Fatal(err)
	}
	all = diagLines(diags)
	if !strings.Contains(all, "kernel/zero allocs/op 1.00 exceeds locked ceiling 0.00") {
		t.Errorf("zero-cell regression not reported:\n%s", all)
	}
}

func TestBudgetRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bp := filepath.Join(dir, "budget.json")
	writeJSON(t, bp, map[string]any{"schema": "something/else", "cells": map[string]any{"x": map[string]any{}}})
	if _, err := CheckBudget(dir, bp); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("bad schema accepted: %v", err)
	}
	writeJSON(t, bp, budgetJSON(map[string]BudgetCell{"x": {}}))
	if _, err := CheckBudget(dir, bp); err == nil || !strings.Contains(err.Error(), "no BENCH_") {
		t.Errorf("missing reports accepted: %v", err)
	}
	// Quick-mode reports must be rejected outright, not silently gated.
	q := benchJSON(0, []cellSpec{{"x", 0, 0}})
	q["quick"] = true
	writeJSON(t, filepath.Join(dir, "BENCH_0.json"), q)
	if _, err := CheckBudget(dir, bp); err == nil || !strings.Contains(err.Error(), "quick-mode") {
		t.Errorf("quick-mode report accepted: %v", err)
	}
}

func TestDriftAllocRegression(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_0.json"), benchJSON(0, []cellSpec{
		{"kernel/zero", 0, 1000},
		{"e2e/busy", 100000, 0},
	}))
	writeJSON(t, filepath.Join(dir, "BENCH_1.json"), benchJSON(1, []cellSpec{
		{"kernel/zero", 0, 900}, // −10%: unlocked cells tolerate noise
		{"e2e/busy", 101000, 0}, // +1%: inside the nonzero-cell slack
	}))
	diags, err := CheckDrift(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := fatalCount(diags); n != 0 {
		t.Fatalf("clean trajectory failed drift gate:\n%s", diagLines(diags))
	}

	// 0 → 1 alloc must fail even though the relative rise is small in
	// absolute terms; 101000 → 104000 (+3%) exceeds the slack for the
	// consecutive pair.
	writeJSON(t, filepath.Join(dir, "BENCH_2.json"), benchJSON(2, []cellSpec{
		{"kernel/zero", 1, 900},
		{"e2e/busy", 104000, 0},
	}))
	diags, err = CheckDrift(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := diagLines(diags)
	if !strings.Contains(all, "kernel/zero: allocs/op rose 0.00 → 1.00") {
		t.Errorf("zero-cell alloc regression not reported:\n%s", all)
	}
	if !strings.Contains(all, "e2e/busy: allocs/op rose 101000.00 → 104000.00") {
		t.Errorf("over-slack alloc growth not reported:\n%s", all)
	}
}

func TestDriftThroughputLockIsOptIn(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_0.json"), benchJSON(0, []cellSpec{
		{"kernel/locked", 0, 1000},
		{"kernel/noisy", 0, 1000},
	}))
	writeJSON(t, filepath.Join(dir, "BENCH_1.json"), benchJSON(1, []cellSpec{
		{"kernel/locked", 0, 800}, // −20%
		{"kernel/noisy", 0, 500},  // −50%
	}))
	budget := budgetJSON(map[string]BudgetCell{
		"kernel/locked": {AllocsPerOp: 0, LockMBps: true},
		"kernel/noisy":  {AllocsPerOp: 0}, // not throughput-locked
	})

	diags, err := CheckDrift(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	all := diagLines(diags)
	if !strings.Contains(all, "kernel/locked: MB/s fell 1000.0 → 800.0") {
		t.Errorf("locked throughput regression not reported:\n%s", all)
	}
	if strings.Contains(all, "kernel/noisy: MB/s") {
		t.Errorf("unlocked cell's throughput noise must not fail:\n%s", all)
	}

	// Without a budget no cell is locked at all.
	diags, err = CheckDrift(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := fatalCount(diags); n != 0 {
		t.Errorf("nil budget must disable throughput locks:\n%s", diagLines(diags))
	}
}

func TestDriftCellChurnIsInformational(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, filepath.Join(dir, "BENCH_0.json"), benchJSON(0, []cellSpec{
		{"old/cell", 1, 10},
	}))
	writeJSON(t, filepath.Join(dir, "BENCH_1.json"), benchJSON(1, []cellSpec{
		{"new/cell", 1, 10},
	}))
	diags, err := CheckDrift(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fatalCount(diags) != 0 {
		t.Fatalf("cell churn must not be fatal:\n%s", diagLines(diags))
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, `"new/cell" is new`) || !strings.Contains(joined, `"old/cell" from`) {
		t.Errorf("appearing/disappearing cells not surfaced: %s", joined)
	}
}

// TestRepoBudgetLocksHold runs the real gates over the checked-in
// trajectory and ALLOC_BUDGET.json: the committed state must pass.
func TestRepoBudgetLocksHold(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bp := filepath.Join(root, BudgetFile)
	diags, err := CheckBudget(root, bp)
	if err != nil {
		t.Fatal(err)
	}
	if n := fatalCount(diags); n != 0 {
		t.Errorf("checked-in budget violated:\n%s", diagLines(diags))
	}
	// Every benchmark cell must be locked: the informational "no locked
	// budget" note is a to-do, and the committed tree must have none.
	for _, d := range diags {
		if strings.Contains(d.Message, "no locked budget") {
			t.Errorf("unlocked benchmark cell: %s", d.Message)
		}
	}
	budget, err := LoadBudget(bp)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := CheckDrift(root, budget)
	if err != nil {
		t.Fatal(err)
	}
	if n := fatalCount(drift); n != 0 {
		t.Errorf("checked-in trajectory violates drift gate:\n%s", diagLines(drift))
	}
}
