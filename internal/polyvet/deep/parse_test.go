package deep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The canned fixtures are verbatim `go build -gcflags='-m=2
// -d=ssa/check_bce'` output captured from go1.24:
//
//	m2_canned.txt  the testdata/src/deepmod module (clean + dirty)
//	m2_gf256.txt   the real internal/gf256 package
//
// They let the parser tests run without invoking the compiler, pinning
// the exact message grammar this package understands. If a future Go
// release drifts the wording, TestParseLiveOutput (which does compile)
// skips with a warning while these keep guarding the parser itself.

func readFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	return string(data)
}

func TestParseCannedDeepmod(t *testing.T) {
	facts := ParseDiagnostics(readFixture(t, "m2_canned.txt"), "/mod")

	if !facts.EscapesSeen() || !facts.InlinesSeen() || !facts.BoundsSeen() {
		t.Fatalf("fact categories missing: escapes=%v inlines=%v bounds=%v",
			facts.EscapesSeen(), facts.InlinesSeen(), facts.BoundsSeen())
	}
	if len(facts.Unrecognized) != 0 {
		t.Errorf("unrecognized lines in canned fixture: %q", facts.Unrecognized)
	}

	// The panic-string escape in clean.Guarded must parse with its flow
	// trace and classify as panic-only.
	var panicEscape *EscapeSite
	for i := range facts.Escapes {
		if strings.Contains(facts.Escapes[i].What, "empty input") {
			panicEscape = &facts.Escapes[i]
		}
	}
	if panicEscape == nil {
		t.Fatal("panic-string escape not parsed")
	}
	if len(panicEscape.Details) == 0 {
		t.Error("panic escape lost its flow trace")
	}
	if !panicEscape.PanicOnly() {
		t.Errorf("panic-string escape not classified panic-only: details=%q", panicEscape.Details)
	}

	// dirty.Leaky's local must be a non-panic escape at a resolved path.
	var leaky *EscapeSite
	for i := range facts.Escapes {
		if facts.Escapes[i].What == "x" {
			leaky = &facts.Escapes[i]
		}
	}
	if leaky == nil {
		t.Fatal("dirty.Leaky escape not parsed")
	}
	if leaky.PanicOnly() {
		t.Error("real escape misclassified panic-only")
	}
	if want := filepath.Join("/mod", "dirty", "dirty.go"); leaky.Pos.File != want {
		t.Errorf("escape path not resolved against dir: got %q want %q", leaky.Pos.File, want)
	}

	// -m=2 prints each escape twice (with and without the flow-trace
	// colon); the duplicate must collapse to one site.
	count := 0
	for _, e := range facts.Escapes {
		if e.What == "x" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("duplicate escape lines not collapsed: %d sites for dirty.Leaky", count)
	}

	// Inline decisions: dirty.Heavy must be a cannot-inline with the
	// compiler's reason; clean.Mix a can-inline.
	d, ok := facts.InlineByName(filepath.Join("/mod", "dirty", "dirty.go"), "Heavy")
	if !ok {
		t.Fatal("no inline decision for dirty.Heavy")
	}
	if d.CanInline || !strings.Contains(d.Reason, "DEFER") {
		t.Errorf("Heavy decision wrong: can=%v reason=%q", d.CanInline, d.Reason)
	}
	m, ok := facts.InlineByName(filepath.Join("/mod", "clean", "clean.go"), "Mix")
	if !ok || !m.CanInline {
		t.Errorf("clean.Mix should be inlinable: ok=%v can=%v", ok, m.CanInline)
	}

	// Bounds checks: the two unprovable checks in dirty.Gather's loop
	// plus the two prologue reslices in clean.XorWords.
	if len(facts.Bounds) != 4 {
		t.Errorf("bounds checks parsed: got %d want 4: %+v", len(facts.Bounds), facts.Bounds)
	}

	// Stack proofs feed the reconciliation path.
	cleanFile := filepath.Join("/mod", "clean", "clean.go")
	proved := false
	for _, s := range facts.NoEscapes {
		if s.Pos.File == cleanFile && strings.Contains(s.What, "make([]byte, 64)") {
			proved = ProvedStackAtSite(facts, s.Pos)
		}
	}
	if !proved {
		t.Error("StackBuffer's make([]byte, 64) stack proof not parsed")
	}
}

// ProvedStackAtSite adapts ProvedStackAt for a parsed position.
func ProvedStackAtSite(f *Facts, p Pos) bool { return f.ProvedStackAt(p.File, p.Line) }

func TestParseCannedGF256(t *testing.T) {
	facts := ParseDiagnostics(readFixture(t, "m2_gf256.txt"), "/repo")
	if !facts.EscapesSeen() || !facts.InlinesSeen() || !facts.BoundsSeen() {
		t.Fatalf("fact categories missing from gf256 fixture")
	}
	if len(facts.Unrecognized) != 0 {
		t.Errorf("unrecognized lines in gf256 fixture: %q", facts.Unrecognized)
	}
	// The kernel contracts, as captured: every bounds check in the file
	// sits outside the *Words loops (verified structurally by the gate
	// tests; here just pin that checks parsed at all).
	if len(facts.Bounds) == 0 {
		t.Fatal("no bounds checks parsed from gf256 fixture")
	}
	if _, ok := facts.InlineByName(filepath.Join("/repo", "internal", "gf256", "gf256.go"), "Mul"); !ok {
		t.Error("gf256.Mul inline decision not parsed")
	}
}

func TestSplitPos(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		file string
		l, c int
		msg  string
	}{
		{"pkg/a.go:12:7: moved to heap: x", true, "/d/pkg/a.go", 12, 7, "moved to heap: x"},
		{"/abs/b.go:3:1: can inline F", true, "/abs/b.go", 3, 1, "can inline F"},
		{"pkg/a.go:12:7:   from &x (address-of) at pkg/a.go:13:9", true, "/d/pkg/a.go", 12, 7, "  from &x (address-of) at pkg/a.go:13:9"},
		{"<autogenerated>:1:2: leaking param", false, "", 0, 0, ""},
		{"# deepmod/clean", false, "", 0, 0, ""},
		{"no position here", false, "", 0, 0, ""},
		{"pkg/a.go:x:7: bad line", false, "", 0, 0, ""},
	}
	for _, tc := range cases {
		pos, msg, ok := splitPos(tc.line, "/d")
		if ok != tc.ok {
			t.Errorf("splitPos(%q): ok=%v want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if pos.File != tc.file || pos.Line != tc.l || pos.Col != tc.c || msg != tc.msg {
			t.Errorf("splitPos(%q) = %+v %q", tc.line, pos, msg)
		}
	}
}

func TestFormatDriftCollectsUnrecognized(t *testing.T) {
	out := "clean/a.go:1:1: the compiler now says something novel\n"
	facts := ParseDiagnostics(out, "/m")
	if len(facts.Unrecognized) != 1 {
		t.Fatalf("unrecognized = %q, want 1 entry", facts.Unrecognized)
	}
	if facts.EscapesSeen() || facts.InlinesSeen() || facts.BoundsSeen() {
		t.Error("novel wording must not count as recognized output")
	}
}
