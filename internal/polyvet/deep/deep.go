package deep

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"polyraptor/internal/polyvet"
)

// GCFlags is the compiler flag set deep mode builds with: -m=2 for
// escape analysis with flow traces and inlining decisions with costs,
// check_bce for the bounds checks the SSA prove pass kept.
const GCFlags = "-m=2 -d=ssa/check_bce"

// A Result is one deep run's findings. Fatal reports whether any
// non-informational diagnostic is present (the exit-status signal).
type Result struct {
	Diags []polyvet.Diagnostic
	// FormatSkew is set when a gate skipped because the toolchain's
	// diagnostic stream was unrecognizable — the signal for tests to
	// skip-and-warn rather than fail on a new Go release.
	FormatSkew bool
	// Facts is the parsed compiler model, exposed for tests and for
	// callers that reconcile their own syntactic findings.
	Facts *Facts
}

// Fatal reports whether the result contains failing diagnostics.
func (r *Result) Fatal() bool {
	for _, d := range r.Diags {
		if !d.Info {
			return true
		}
	}
	return false
}

// Analyze loads the packages matching patterns (rooted at dir, "" =
// cwd), compiles them with GCFlags, and enforces the noalloc, nobce
// and inline directives against the compiler's decisions. The
// returned diagnostics also include the syntactic-vs-compiler
// reconciliation input: callers that already ran the syntactic suite
// should pass its findings through Reconcile with the returned Facts.
func Analyze(dir string, patterns []string) (*Result, error) {
	pkgs, err := polyvet.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return AnalyzePackages(dir, patterns, pkgs)
}

// AnalyzePackages is Analyze for callers that already loaded the
// packages (the unitchecker path, which receives them from go vet).
// patterns name what to compile; pkgs are the loaded packages the
// directives are read from.
func AnalyzePackages(dir string, patterns []string, pkgs []*polyvet.Package) (*Result, error) {
	out, err := CompileDiagnostics(dir, patterns)
	if err != nil {
		return nil, err
	}
	facts := ParseDiagnostics(out, moduleRoot(dir))
	res := &Result{Facts: facts}
	for _, pkg := range pkgs {
		diags := Check(pkg, facts)
		for _, d := range diags {
			if d.Info {
				res.FormatSkew = res.FormatSkew || isSkipNote(d)
			}
		}
		res.Diags = append(res.Diags, diags...)
	}
	sortDiags(res.Diags)
	return res, nil
}

// CompileDiagnostics shells `go build` with GCFlags over patterns and
// returns the raw diagnostic stream. Binaries of main packages land
// in a throwaway directory. The go command replays cached compiler
// output, so repeated runs are cheap and still yield the full stream.
func CompileDiagnostics(dir string, patterns []string) (string, error) {
	tmp, err := os.MkdirTemp("", "polyvet-deep-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)
	args := append([]string{"build", "-o", tmp, "-gcflags", GCFlags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil && strings.Contains(string(out), "no main packages") {
		// -o requires at least one main package; without it go build
		// compiles and discards the objects, which is all we need.
		cmd = exec.Command("go", append([]string{"build", "-gcflags", GCFlags}, patterns...)...)
		cmd.Dir = dir
		out, err = cmd.CombinedOutput()
	}
	if err != nil {
		// Compiler diagnostics go to stderr but build FAILURES do too;
		// with -m the command succeeds and still prints. A non-nil err
		// means the build itself broke.
		return "", fmt.Errorf("polyvet deep: go build %v: %v\n%s", patterns, err, out)
	}
	return string(out), nil
}

// moduleRoot returns the base directory the compiler's relative
// diagnostic paths resolve against. The gc driver prints positions
// relative to the enclosing module's root, not the working directory
// (verified empirically: building ./sim/ from internal/ still prints
// internal/sim/sim.go), so joining against dir itself would break
// every position match when dir is a package subdirectory — exactly
// the situation in go vet's per-unit invocations.
func moduleRoot(dir string) string {
	if dir == "" {
		dir = "."
	}
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	if out, err := cmd.Output(); err == nil {
		gomod := strings.TrimSpace(string(out))
		if gomod != "" && gomod != os.DevNull {
			return filepath.Dir(gomod)
		}
	}
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return dir
}

func isSkipNote(d polyvet.Diagnostic) bool {
	return d.Info && (d.Analyzer == GateEscape || d.Analyzer == GateBCE || d.Analyzer == GateInline)
}

func sortDiags(diags []polyvet.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
