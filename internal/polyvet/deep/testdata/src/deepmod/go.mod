module deepmod

go 1.24
