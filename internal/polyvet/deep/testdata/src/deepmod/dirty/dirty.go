// Package dirty holds one deliberate violation per deep gate: the
// regression tests compile it for real and require every injected
// defect to be reported. If a toolchain change makes any of these
// pass, the corresponding gate has gone blind.
package dirty

// Sink keeps results observable.
var Sink int

// Leaky violates noalloc: returning the address of a local forces it
// off the stack ("moved to heap").
//
//polyvet:noalloc injected regression: the result pointer escapes
func Leaky(n int) *int {
	x := n * 2
	return &x
}

// Gather violates nobce: neither dst[i] nor src[j] relates to a loop
// bound the prove pass can use, so both checks stay in the loop.
//
//polyvet:nobce injected regression: unprovable indices in the loop
func Gather(dst, src []byte, idx []int) {
	for i, j := range idx {
		dst[i] = src[j]
	}
}

// Heavy violates inline: defer is beyond the inliner.
//
//polyvet:inline injected regression: defer blocks inlining
func Heavy(fn func()) int {
	defer fn()
	Sink++
	return Sink
}

// NoLoops wastes a nobce directive: nothing to bounds-check means the
// annotation pays no rent and must be flagged.
//
//polyvet:nobce injected regression: directive on a loop-free function
func NoLoops(a, b int) int { return a + b }

// LeakyBuffer is the anti-reconciliation case: the syntactic hotpath
// analyzer flags the make AND the compiler confirms it escapes, so
// the finding must stay fatal — no stack proof, no downgrade.
//
//polyvet:noalloc injected regression: the returned buffer escapes
func LeakyBuffer(n int) []byte {
	buf := make([]byte, n)
	return buf
}
