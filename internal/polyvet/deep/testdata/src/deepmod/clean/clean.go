// Package clean holds annotated functions every deep gate accepts:
// the regression tests compile it for real and expect zero findings.
package clean

import "encoding/binary"

// Sink keeps results observable so the compiler cannot discard the
// bodies under test.
var Sink uint64

//polyvet:noalloc steady-state kernel must not touch the heap
func SumScaled(xs []uint64, c uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x * c
	}
	return s
}

// XorWords is the length-cursor loop idiom: the only bounds check is
// the reslice before the loops.
//
//polyvet:noalloc innermost kernel
//polyvet:nobce in-loop checks would halve throughput
func XorWords(dst, src []byte) {
	dst = dst[:len(src)]
	for len(dst) >= 8 && len(src) >= 8 {
		binary.LittleEndian.PutUint64(dst,
			binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		dst = dst[8:]
		src = src[8:]
	}
	dst = dst[:len(src)]
	for i, s := range src {
		dst[i] ^= s
	}
}

// Mix must stay cheap enough to inline into per-element loops.
//
//polyvet:inline called per element
func Mix(a, b uint64) uint64 {
	a ^= b >> 17
	return a * 0x9E3779B97F4A7C15
}

// StackBuffer exercises the reconciliation path: the syntactic
// hotpath analyzer flags the make, but the compiler proves it never
// leaves the stack, so deep mode downgrades the finding.
//
//polyvet:noalloc scratch buffer is stack-allocated
func StackBuffer(seed byte) uint64 {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = seed + byte(i)
	}
	return SumScaled([]uint64{uint64(buf[0]), uint64(buf[63])}, 3)
}

// Guarded allocates only on its panic path; the escape gate must
// exempt the boxed constant.
//
//polyvet:noalloc allocation is unreachable in steady state
func Guarded(xs []uint64) uint64 {
	if len(xs) == 0 {
		panic("clean: empty input")
	}
	return xs[0]
}
