package deep

import (
	"fmt"
	"go/token"

	"polyraptor/internal/polyvet"
)

// The benchdrift gate diffs consecutive BENCH_<n>.json reports: an
// allocs/op increase in any shared cell is a failure (allocation
// counts are deterministic, so any rise is a real regression, not
// noise), and a throughput drop beyond DriftMBpsTolerance fails for
// cells that opted into the MB/s lock via ALLOC_BUDGET.json. The MB/s
// gate is opt-in because the trajectory was recorded across different
// containers: the BENCH_3→BENCH_4 hop alone moved gf256 AddRow by
// −40% with zero code change, and a blanket lock would institutionalize
// that noise as CI flake.

// DriftMBpsTolerance is the fractional MB/s regression allowed between
// consecutive reports for cells with lock_mbps.
const DriftMBpsTolerance = 0.15

// allocSlack is the fractional allocs/op headroom between consecutive
// reports for cells that do allocate: per-op averages of amortized
// allocations (map growth, slice doubling) wobble with b.N. Zero-alloc
// cells get no slack — 0 must stay exactly 0.
const allocSlack = 0.02

// CheckDrift compares each consecutive pair of BENCH_<n>.json reports
// under dir. Budget may be nil (no MB/s locks). Cells present in only
// one report of a pair are noted informationally: benchmarks appearing
// or disappearing should be deliberate.
func CheckDrift(dir string, budget *Budget) ([]polyvet.Diagnostic, error) {
	reports, err := benchTrajectory(dir)
	if err != nil {
		return nil, err
	}
	if len(reports) < 2 {
		return nil, fmt.Errorf("benchdrift: need at least two BENCH_<n>.json reports under %q, have %d", dir, len(reports))
	}
	var diags []polyvet.Diagnostic
	for i := 1; i < len(reports); i++ {
		diags = append(diags, diffReports(reports[i-1], reports[i], budget)...)
	}
	return diags, nil
}

func diffReports(prev, cur *benchReport, budget *Budget) []polyvet.Diagnostic {
	pos := token.Position{Filename: cur.path, Line: 1}
	var diags []polyvet.Diagnostic
	for _, res := range cur.Results {
		pAllocs, pMBps, ok := prev.cell(res.Name)
		if !ok {
			diags = append(diags, polyvet.Diagnostic{
				Pos: pos, Analyzer: "benchdrift", Info: true,
				Message: fmt.Sprintf("cell %q is new in %s (absent from %s)", res.Name, cur.path, prev.path),
			})
			continue
		}
		limit := pAllocs * (1 + allocSlack)
		if pAllocs == 0 {
			limit = 0
		}
		if res.AllocsPerOp > limit {
			diags = append(diags, polyvet.Diagnostic{
				Pos: pos, Analyzer: "benchdrift",
				Message: fmt.Sprintf("%s: allocs/op rose %.2f → %.2f vs %s — allocation regressions are deterministic, fix or re-budget deliberately",
					res.Name, pAllocs, res.AllocsPerOp, prev.path),
			})
		}
		if budget != nil && budget.Cells[res.Name].LockMBps && pMBps > 0 {
			drop := (pMBps - res.MBPerS) / pMBps
			if drop > DriftMBpsTolerance {
				diags = append(diags, polyvet.Diagnostic{
					Pos: pos, Analyzer: "benchdrift",
					Message: fmt.Sprintf("%s: MB/s fell %.1f → %.1f (−%.0f%%, tolerance %.0f%%) vs %s in a throughput-locked cell",
						res.Name, pMBps, res.MBPerS, drop*100, DriftMBpsTolerance*100, prev.path),
				})
			}
		}
	}
	for _, res := range prev.Results {
		if _, _, ok := cur.cell(res.Name); !ok {
			diags = append(diags, polyvet.Diagnostic{
				Pos: pos, Analyzer: "benchdrift", Info: true,
				Message: fmt.Sprintf("cell %q from %s is gone in %s", res.Name, prev.path, cur.path),
			})
		}
	}
	return diags
}
