package deep

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"

	"polyraptor/internal/polyvet"
)

// The allocbudget gate locks per-benchmark allocs/op ceilings in a
// checked-in ALLOC_BUDGET.json and fails when the newest BENCH_<n>
// report drifts over them. The ceilings come from the BENCH_0..n
// trajectory: steady-state kernels (gf256 rows, repair symbols, the
// sim event heap, the telemetry record hook) are locked at exactly 0
// allocs/op — those are the contracts the paper's GB/s codec target
// rests on — while construction-heavy cells carry a small headroom
// over the trajectory maximum, because per-op averages wobble with
// the benchmark iteration count.

// BudgetFile is the default budget filename at the repo root.
const BudgetFile = "ALLOC_BUDGET.json"

// A BudgetCell is one benchmark's locked limits.
type BudgetCell struct {
	// AllocsPerOp is the inclusive allocs/op ceiling.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// LockMBps opts the cell into benchdrift's throughput gate: a
	// >DriftMBpsTolerance MB/s regression between consecutive reports
	// fails. Only cells whose trajectory is stable across the recorded
	// machines opt in; wall-clock noise on shared runners would turn a
	// blanket lock into a flake machine.
	LockMBps bool `json:"lock_mbps,omitempty"`
}

// A Budget is the parsed ALLOC_BUDGET.json.
type Budget struct {
	Schema string `json:"schema"`
	// DerivedFrom names the BENCH_<n>.json trajectory the ceilings
	// were computed from, newest last.
	DerivedFrom []string              `json:"derived_from"`
	Cells       map[string]BudgetCell `json:"cells"`
}

// LoadBudget reads and validates a budget file.
func LoadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("allocbudget: %w", err)
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("allocbudget: parsing %s: %w", path, err)
	}
	if b.Schema != "polyvet-allocbudget/v1" {
		return nil, fmt.Errorf("allocbudget: %s: unknown schema %q", path, b.Schema)
	}
	if len(b.Cells) == 0 {
		return nil, fmt.Errorf("allocbudget: %s locks no cells", path)
	}
	return &b, nil
}

// benchReport is the subset of the polyperf report schema the gates
// consume (kept structurally independent of internal/perfbench so the
// vet tooling never imports the benchmark harness).
type benchReport struct {
	Schema  string `json:"schema"`
	Index   int    `json:"index"`
	Quick   bool   `json:"quick"`
	Results []struct {
		Name        string  `json:"name"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		MBPerS      float64 `json:"mb_per_s"`
	} `json:"results"`

	path string
}

func loadBench(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if r.Schema != "polyperf/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, r.Schema)
	}
	r.path = path
	return &r, nil
}

// benchTrajectory loads every BENCH_<n>.json under dir, ordered by
// index. Quick-mode reports are rejected: their shrunken workloads
// rename the cells and would silently unlock everything.
func benchTrajectory(dir string) ([]*benchReport, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var reports []*benchReport
	for _, p := range paths {
		r, err := loadBench(p)
		if err != nil {
			return nil, fmt.Errorf("benchdrift: %w", err)
		}
		if r.Quick {
			return nil, fmt.Errorf("benchdrift: %s is a quick-mode report; only full runs are gated", p)
		}
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Index < reports[j].Index })
	return reports, nil
}

func (r *benchReport) cell(name string) (allocs, mbps float64, ok bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res.AllocsPerOp, res.MBPerS, true
		}
	}
	return 0, 0, false
}

// CheckBudget compares the newest BENCH_<n>.json in dir against the
// budget: a locked cell over its ceiling, or missing from the report,
// is a failure; report cells absent from the budget are surfaced as
// informational, so new benchmarks get locked deliberately rather
// than silently riding along.
func CheckBudget(dir, budgetPath string) ([]polyvet.Diagnostic, error) {
	b, err := LoadBudget(budgetPath)
	if err != nil {
		return nil, err
	}
	reports, err := benchTrajectory(dir)
	if err != nil {
		return nil, err
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("allocbudget: no BENCH_<n>.json reports under %q", dir)
	}
	latest := reports[len(reports)-1]
	pos := token.Position{Filename: budgetPath, Line: 1}
	var diags []polyvet.Diagnostic
	for _, name := range sortedKeys(b.Cells) {
		cell := b.Cells[name]
		allocs, _, ok := latest.cell(name)
		if !ok {
			diags = append(diags, polyvet.Diagnostic{
				Pos: pos, Analyzer: "allocbudget",
				Message: fmt.Sprintf("locked cell %q missing from %s — a deleted benchmark must be unlocked explicitly", name, latest.path),
			})
			continue
		}
		if allocs > cell.AllocsPerOp {
			diags = append(diags, polyvet.Diagnostic{
				Pos: pos, Analyzer: "allocbudget",
				Message: fmt.Sprintf("%s: %s allocs/op %.2f exceeds locked ceiling %.2f",
					latest.path, name, allocs, cell.AllocsPerOp),
			})
		}
	}
	for _, res := range latest.Results {
		if _, locked := b.Cells[res.Name]; !locked {
			diags = append(diags, polyvet.Diagnostic{
				Pos: pos, Analyzer: "allocbudget", Info: true,
				Message: fmt.Sprintf("%s: cell %q has no locked budget — add it to %s", latest.path, res.Name, budgetPath),
			})
		}
	}
	return diags, nil
}

func sortedKeys(m map[string]BudgetCell) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
