// Package deep is PolyVet's compiler-ground-truth mode: instead of
// pattern-matching the AST (the syntactic suite in internal/polyvet),
// it derives facts from the gc toolchain itself by compiling each
// package with `-gcflags='-m=2 -d=ssa/check_bce'` and parsing the
// diagnostic stream into a structured model — heap-escape decisions
// (with the compiler's own flow traces), bounds-check sites the SSA
// prove pass could not eliminate, and inlining decisions with costs.
//
// Three function directives are enforced against that model:
//
//   - //polyvet:noalloc — no "escapes to heap" / "moved to heap" site
//     inside the function (panic-only escapes exempt: a constant that
//     heap-boxes on the crash path never allocates in steady state).
//     This is the interprocedural upgrade of the syntactic hotpath
//     check, and also its corrector: a make/closure the compiler
//     proves stack-allocated downgrades the syntactic finding to
//     informational (see Reconcile).
//   - //polyvet:nobce — the function's loops compile with zero bounds
//     checks. Prologue checks outside loops (the `dst =
//     dst[:len(src)]` hint idiom) are allowed: they run once, not per
//     element.
//   - //polyvet:inline — the compiler reports "can inline"; losing
//     inlinability (cost creep past the budget, a new call to a
//     non-inlinable callee) is a finding.
//
// The parsers are deliberately tolerant of message drift across Go
// releases: any diagnostic-shaped line that matches no known pattern
// is collected, and a gate whose entire fact category is missing
// skips with a warning instead of reporting false positives (see
// Facts.EscapesSeen and friends).
package deep

import (
	"path/filepath"
	"strconv"
	"strings"
)

// A Pos is a resolved source position (column as reported by the
// compiler, which counts bytes from 1).
type Pos struct {
	File string
	Line int
	Col  int
}

// An EscapeSite is one "escapes to heap" or "moved to heap" decision:
// a real heap allocation attributed to this position.
type EscapeSite struct {
	Pos  Pos
	What string // the expression or variable, as printed
	// Moved distinguishes "moved to heap: x" (a variable forced off
	// the stack) from "x escapes to heap" (a value that flows out).
	Moved bool
	// Details holds the indented flow-trace lines (-m=2 only),
	// verbatim with the position prefix stripped.
	Details []string
}

// PanicOnly reports whether every flow step of the escape runs only
// when panicking — the constant-spill-into-panic pattern. Such a site
// allocates exactly once, while crashing, and is exempt from the
// noalloc gate.
func (e EscapeSite) PanicOnly() bool {
	found := false
	for _, d := range e.Details {
		d = strings.TrimSpace(d)
		if !strings.HasPrefix(d, "from ") {
			continue
		}
		if strings.HasPrefix(d, "from panic(") {
			found = true
			continue
		}
		// Spills feeding the panic argument are part of the same
		// pattern; any other flow step means the value also escapes on
		// a non-panic path.
		if !strings.Contains(d, "(spill)") {
			return false
		}
	}
	return found
}

// A NoEscapeSite is a compiler proof that the value allocated at Pos
// stays on the stack ("... does not escape").
type NoEscapeSite struct {
	Pos  Pos
	What string
}

// An InlineDecision is the compiler's verdict on one function.
type InlineDecision struct {
	Pos       Pos
	Name      string // compiler-style: Name, T.Name or (*T).Name
	CanInline bool
	Reason    string // for CanInline == false: why not
}

// A BoundsCheck is one IsInBounds / IsSliceInBounds op the SSA prove
// pass could not eliminate.
type BoundsCheck struct {
	Pos   Pos
	Slice bool // IsSliceInBounds (s[i:j]) rather than IsInBounds (s[i])
}

// Facts is the structured model of one build's diagnostic stream.
type Facts struct {
	Escapes   []EscapeSite
	NoEscapes []NoEscapeSite
	Inlines   []InlineDecision
	Bounds    []BoundsCheck

	// Unrecognized holds diagnostic-shaped lines that matched no known
	// pattern — the early-warning signal for message-format drift
	// across Go releases.
	Unrecognized []string

	escapeLines int // lines recognized as escape-analysis output
	inlineLines int // lines recognized as inlining output
	bceLines    int // lines recognized as check_bce output
}

// EscapesSeen reports whether the stream contained any recognizable
// escape-analysis output. When false, the escape gate must skip: the
// toolchain either suppressed -m or changed its wording.
func (f *Facts) EscapesSeen() bool { return f.escapeLines > 0 }

// InlinesSeen reports whether inlining decisions were recognized.
func (f *Facts) InlinesSeen() bool { return f.inlineLines > 0 }

// BoundsSeen reports whether check_bce output was recognized. Unlike
// escapes and inlines, a small clean package can legitimately produce
// zero bounds checks, so callers should treat this as "gate on real
// data" only alongside BCELinesPossible heuristics; the repo-scale
// driver always sees some.
func (f *Facts) BoundsSeen() bool { return f.bceLines > 0 }

// InlineAt returns the inline decision whose position matches file
// and line (the position of the function's name token), if any.
func (f *Facts) InlineAt(file string, line int) (InlineDecision, bool) {
	for _, d := range f.Inlines {
		if d.Pos.Line == line && d.Pos.File == file {
			return d, true
		}
	}
	return InlineDecision{}, false
}

// InlineByName returns the inline decision for the compiler-style
// function name within file, if any — the fallback when the name
// token's line drifts from the reported position.
func (f *Facts) InlineByName(file, name string) (InlineDecision, bool) {
	for _, d := range f.Inlines {
		if d.Name == name && d.Pos.File == file {
			return d, true
		}
	}
	return InlineDecision{}, false
}

// ProvedStackAt reports whether a "does not escape" proof exists at
// file:line.
func (f *Facts) ProvedStackAt(file string, line int) bool {
	for _, s := range f.NoEscapes {
		if s.Pos.Line == line && s.Pos.File == file {
			return true
		}
	}
	return false
}

// ParseDiagnostics parses the combined stderr of a
// `go build -gcflags='-m=2 -d=ssa/check_bce'` run. Relative file
// paths are resolved against dir (the build's working directory) so
// positions compare equal to a token.FileSet loaded from absolute
// paths.
func ParseDiagnostics(output string, dir string) *Facts {
	f := &Facts{}
	var last *EscapeSite // open escape block collecting detail lines
	for _, line := range strings.Split(output, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue // package header
		}
		pos, msg, ok := splitPos(line, dir)
		if !ok {
			if strings.Contains(line, ".go:") {
				f.Unrecognized = append(f.Unrecognized, line)
			}
			continue
		}
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			// Indented flow-trace detail for the open escape block.
			if last != nil && last.Pos == pos {
				last.Details = append(last.Details, strings.TrimSpace(msg))
			}
			continue
		}
		last = nil
		switch {
		case msg == "Found IsInBounds":
			f.bceLines++
			f.Bounds = append(f.Bounds, BoundsCheck{Pos: pos})
		case msg == "Found IsSliceInBounds":
			f.bceLines++
			f.Bounds = append(f.Bounds, BoundsCheck{Pos: pos, Slice: true})
		case strings.HasSuffix(msg, " escapes to heap:"):
			f.escapeLines++
			f.Escapes = append(f.Escapes, EscapeSite{
				Pos: pos, What: strings.TrimSuffix(msg, " escapes to heap:"),
			})
			last = &f.Escapes[len(f.Escapes)-1]
		case strings.HasSuffix(msg, " escapes to heap"):
			f.escapeLines++
			what := strings.TrimSuffix(msg, " escapes to heap")
			// -m=2 prints each decision twice: once opening the flow
			// trace, once bare. Collapse the duplicate.
			if n := len(f.Escapes); n > 0 && f.Escapes[n-1].Pos == pos && f.Escapes[n-1].What == what {
				continue
			}
			f.Escapes = append(f.Escapes, EscapeSite{Pos: pos, What: what})
		case strings.HasPrefix(msg, "moved to heap: "):
			f.escapeLines++
			what := strings.TrimPrefix(msg, "moved to heap: ")
			if n := len(f.Escapes); n > 0 && f.Escapes[n-1].Pos == pos && f.Escapes[n-1].What == what {
				continue
			}
			f.Escapes = append(f.Escapes, EscapeSite{Pos: pos, What: what, Moved: true})
			last = &f.Escapes[len(f.Escapes)-1]
		case strings.HasSuffix(msg, " does not escape"):
			f.escapeLines++
			f.NoEscapes = append(f.NoEscapes, NoEscapeSite{
				Pos: pos, What: strings.TrimSuffix(msg, " does not escape"),
			})
		case strings.HasPrefix(msg, "can inline "):
			f.inlineLines++
			name := strings.TrimPrefix(msg, "can inline ")
			if i := strings.Index(name, " with cost "); i >= 0 {
				name = name[:i]
			}
			f.Inlines = append(f.Inlines, InlineDecision{Pos: pos, Name: name, CanInline: true})
		case strings.HasPrefix(msg, "cannot inline "):
			f.inlineLines++
			rest := strings.TrimPrefix(msg, "cannot inline ")
			name, reason := rest, ""
			if i := strings.Index(rest, ": "); i >= 0 {
				name, reason = rest[:i], rest[i+2:]
			}
			f.Inlines = append(f.Inlines, InlineDecision{Pos: pos, Name: name, Reason: reason})
		case msg == "index bounds check elided":
			// A bce proof, not a violation.
			f.bceLines++
		case strings.HasPrefix(msg, "inlining call to "):
			f.inlineLines++
		case strings.HasPrefix(msg, "leaking param"),
			strings.Contains(msg, " leaks to "),
			strings.Contains(msg, "ignoring self-assignment"):
			// Recognized but not gated on: parameter leak summaries are
			// caller-side facts (the caller's value may be forced to
			// heap, but nothing allocates at this site), and
			// self-assignment notes are optimizer chatter.
			f.escapeLines++
		default:
			f.Unrecognized = append(f.Unrecognized, line)
		}
	}
	return f
}

// splitPos splits "path.go:line:col: msg", resolving path against
// dir. Lines without that shape (including <autogenerated> positions)
// report ok == false.
func splitPos(line, dir string) (Pos, string, bool) {
	i := strings.Index(line, ".go:")
	if i < 0 || strings.HasPrefix(line, "<autogenerated>") {
		return Pos{}, "", false
	}
	file := line[:i+3]
	rest := line[i+4:]
	j := strings.Index(rest, ":")
	if j < 0 {
		return Pos{}, "", false
	}
	lineNo, err := strconv.Atoi(rest[:j])
	if err != nil {
		return Pos{}, "", false
	}
	rest = rest[j+1:]
	k := strings.Index(rest, ":")
	if k < 0 {
		return Pos{}, "", false
	}
	colNo, err := strconv.Atoi(rest[:k])
	if err != nil {
		return Pos{}, "", false
	}
	msg := rest[k+1:]
	// One space separates position and message; keep deeper
	// indentation intact (it marks flow-trace detail lines).
	msg = strings.TrimPrefix(msg, " ")
	if !filepath.IsAbs(file) {
		file = filepath.Join(dir, file)
	}
	return Pos{File: file, Line: lineNo, Col: colNo}, msg, true
}
