package polyvet

import (
	"go/token"
	"strings"
	"testing"
)

// The no-reason forms cannot be expressed in a want-comment fixture
// (any trailing text would become the reason), so they are unit-tested
// against the parser directly.
func TestDirectiveRequiresReason(t *testing.T) {
	cases := []struct {
		text string // after the //polyvet: prefix
		want string // substring of the malformed diagnostic
	}{
		{"", "empty //polyvet: directive"},
		{"orderfree", "needs a reason"},
		{"noalloc", "needs a reason"},
		{"allow", "needs an analyzer name and a reason"},
		{"allow detmap", "needs a reason"},
		{"allow nosuch why", "unknown analyzer"},
		{"sometimes because", "unknown //polyvet:sometimes"},
	}
	for _, c := range cases {
		d := &Directives{byFile: map[string][]*directive{}}
		d.add(token.Position{Filename: "x.go", Line: 1}, c.text)
		if len(d.malformed) != 1 {
			t.Errorf("%q: want 1 malformed diagnostic, got %d", c.text, len(d.malformed))
			continue
		}
		if msg := d.malformed[0].Message; !strings.Contains(msg, c.want) {
			t.Errorf("%q: diagnostic %q does not contain %q", c.text, msg, c.want)
		}
		if n := len(d.byFile["x.go"]); n != 0 {
			t.Errorf("%q: malformed directive was still registered (%d entries)", c.text, n)
		}
	}
}

func TestDirectiveWellFormed(t *testing.T) {
	d := &Directives{byFile: map[string][]*directive{}}
	d.add(token.Position{Filename: "x.go", Line: 3}, "orderfree XOR toggles commute")
	d.add(token.Position{Filename: "x.go", Line: 9}, "allow simclock boot-time only")
	d.add(token.Position{Filename: "x.go", Line: 12}, "noalloc benchmarked 0 allocs/op")
	if len(d.malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", d.malformed)
	}
	dirs := d.byFile["x.go"]
	if len(dirs) != 3 {
		t.Fatalf("want 3 directives, got %d", len(dirs))
	}
	if dirs[0].verb != "orderfree" || dirs[0].reason != "XOR toggles commute" {
		t.Errorf("orderfree parsed as %+v", dirs[0])
	}
	if dirs[1].verb != "allow" || dirs[1].arg != "simclock" || dirs[1].reason != "boot-time only" {
		t.Errorf("allow parsed as %+v", dirs[1])
	}
	if dirs[2].verb != "noalloc" || dirs[2].reason != "benchmarked 0 allocs/op" {
		t.Errorf("noalloc parsed as %+v", dirs[2])
	}
}

// A suppression only counts against analyzers present in the run:
// running a subset must not report another analyzer's annotations as
// stale.
func TestUnusedScopedToRun(t *testing.T) {
	d := &Directives{byFile: map[string][]*directive{}}
	d.add(token.Position{Filename: "x.go", Line: 3}, "orderfree some reason")
	if got := d.unused([]*Analyzer{NilHook}); len(got) != 0 {
		t.Errorf("orderfree reported stale by a run without detmap: %v", got)
	}
	if got := d.unused(Suite()); len(got) != 1 {
		t.Errorf("want 1 stale diagnostic from a full run, got %v", got)
	}
}
