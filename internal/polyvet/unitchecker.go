package polyvet

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// The `go vet -vettool` protocol (the same one
// golang.org/x/tools/go/analysis/unitchecker speaks, reimplemented on
// the standard library). The go command drives the tool in three
// ways:
//
//	polyvet -V=full        print a version line for the build cache
//	polyvet -flags         print the tool's flag schema as JSON
//	polyvet [flags] x.cfg  analyze one compilation unit described by
//	                       the JSON config the go command planned
//
// The cfg names the package's Go files, an import map, and the export
// data file for every dependency (already built by the go command),
// so a unit check needs no `go list` of its own. Facts are not
// exchanged between units (the suite needs none), but the protocol's
// facts file (VetxOutput) must still be written for the go command's
// cache.

// vetConfig mirrors the JSON the go command writes (see
// cmd/go/internal/work's buildVetConfig); unused fields are accepted
// and ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetCfg reports whether arg names a unitchecker config file.
func IsVetCfg(arg string) bool { return strings.HasSuffix(arg, ".cfg") }

// PrintVersion implements the -V=full handshake. The go command
// hashes this line into its build cache key, and requires the format
// "<name> version <semver-or-devel...>".
func PrintVersion(w io.Writer, progname string) {
	fmt.Fprintf(w, "%s version v1.0.0-polyvet\n", progname)
}

// PrintFlagDefs implements the -flags handshake: the JSON schema of
// analyzer flags the driver may forward. The schema mirrors the go
// command's expectation (cmd/go/internal/work): a JSON array of
// {Name, Bool, Usage} objects. Registering deep here is what lets
// `go vet -vettool=polyvet -deep ./...` forward the flag into every
// per-unit tool invocation.
func PrintFlagDefs(w io.Writer) {
	fmt.Fprintln(w, `[{"Name":"deep","Bool":true,"Usage":"also run the compiler-ground-truth gates (escape, bce, inline)"}]`)
}

// A Unit is one go vet compilation unit, loaded and type-checked.
// Pkg is nil when the unit needs no analysis (facts-only request or a
// tolerated typecheck failure).
type Unit struct {
	Pkg        *Package
	Dir        string
	ImportPath string
	// Test marks a test variant (an external _test package or an
	// in-package unit including _test.go files). Deep mode skips these:
	// test packages cannot be `go build` targets, and every gated
	// directive lives in non-test files of the base package, which gets
	// its own unit.
	Test bool
}

// LoadUnit reads the unitchecker config at cfgPath, writes the
// (empty) facts file the go command expects, and type-checks the
// unit's sources against its dependencies' export data.
func LoadUnit(cfgPath string) (*Unit, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("polyvet: reading vet config: %w", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("polyvet: parsing vet config %s: %w", cfgPath, err)
	}

	// The go command expects the facts file regardless of findings;
	// the suite exchanges none, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("polyvet: writing facts file: %w", err)
		}
	}
	unit := &Unit{Dir: cfg.Dir, ImportPath: cfg.ImportPath}
	unit.Test = strings.HasSuffix(cfg.ImportPath, "_test") ||
		strings.HasSuffix(cfg.ImportPath, ".test")
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			unit.Test = true
		}
	}
	if cfg.VetxOnly {
		return unit, nil
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return unit, nil
		}
		return nil, err
	}
	unit.Pkg = pkg
	return unit, nil
}

// RunUnit executes the suite over the compilation unit described by
// cfgPath and returns its diagnostics.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	unit, err := LoadUnit(cfgPath)
	if err != nil || unit.Pkg == nil {
		return nil, err
	}
	return RunPackage(unit.Pkg, analyzers)
}
