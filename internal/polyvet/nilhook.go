package polyvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilHook enforces the zero-cost disabled-telemetry contract from
// both sides. A nil *telemetry.Recorder IS the disabled state, so:
//
//  1. Every exported method with a *Recorder receiver must begin with
//     the nil-receiver guard (`if r == nil { return ... }`) — the
//     whole instrumentation scheme rests on any hook being callable
//     through nil.
//  2. Call sites must not redundantly pre-check the recorder
//     (`if rec != nil { rec.Record(...) }`) when every argument is
//     allocation-free: the method's own guard already makes the
//     disabled path a single branch (0.36 ns, measured by the
//     telemetry/Record/disabled perfbench cell), and scattered
//     pre-checks both obscure that contract and rot into
//     inconsistency. Pre-checks that avoid computing an *expensive*
//     argument (label formatting, string concatenation) are the one
//     legitimate form and are not flagged.
var NilHook = &Analyzer{
	Name: "nilhook",
	Doc:  "require nil-receiver guards in exported *telemetry.Recorder methods and flag redundant nil pre-checks at cheap call sites",
	Run:  runNilHook,
}

func runNilHook(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.Pkg.Name() == "telemetry" {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkRecorderGuard(pass, fd)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok {
				checkRedundantPrecheck(pass, ifs)
			}
			return true
		})
	}
	return nil
}

// isRecorderPtr matches *telemetry.Recorder structurally (package
// *name* telemetry, type name Recorder) so fixtures can model the
// real package.
func isRecorderPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Recorder" && obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}

// checkRecorderGuard verifies that an exported *Recorder method's
// first statement is the nil-receiver guard.
func checkRecorderGuard(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
		return
	}
	recv := fd.Recv.List[0]
	tv, ok := pass.TypesInfo.Types[recv.Type]
	if !ok || !isRecorderPtr(tv.Type) {
		return
	}
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		pass.Reportf(fd.Pos(),
			"exported Recorder method %s discards its receiver: it cannot begin with the nil-receiver guard the disabled-telemetry contract requires",
			fd.Name.Name)
		return
	}
	recvName := recv.Names[0].Name
	if len(fd.Body.List) == 0 || !isNilGuard(fd.Body.List[0], recvName) {
		pass.Reportf(fd.Pos(),
			"exported Recorder method %s must begin with `if %s == nil { return ... }`: a nil *Recorder is the disabled state and every hook must be callable through it",
			fd.Name.Name, recvName)
	}
}

// isNilGuard matches `if recv == nil { return ... }`. The receiver
// check may also be the leftmost disjunct of an || chain (`if r == nil
// || id < 0 { return ... }`): || evaluates left to right, so a nil
// receiver still short-circuits before any field access.
func isNilGuard(s ast.Stmt, recvName string) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	if !leadsWithNilCheck(ifs.Cond, recvName) {
		return false
	}
	if len(ifs.Body.List) != 1 {
		return false
	}
	_, isReturn := ifs.Body.List[0].(*ast.ReturnStmt)
	return isReturn
}

// leadsWithNilCheck reports whether cond is `recv == nil` or an ||
// chain whose leftmost operand is.
func leadsWithNilCheck(cond ast.Expr, recvName string) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LOR {
		return leadsWithNilCheck(bin.X, recvName)
	}
	if bin.Op != token.EQL {
		return false
	}
	return isIdent(bin.X, recvName) && isIdent(bin.Y, "nil") ||
		isIdent(bin.X, "nil") && isIdent(bin.Y, recvName)
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

// checkRedundantPrecheck flags `if rec != nil { rec.M(...); ... }`
// (plain or init form) when the body consists solely of Recorder
// method calls on the guarded value with allocation-free arguments.
func checkRedundantPrecheck(pass *Pass, ifs *ast.IfStmt) {
	if ifs.Else != nil {
		return
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return
	}
	var guarded ast.Expr
	switch {
	case isIdent(bin.Y, "nil"):
		guarded = bin.X
	case isIdent(bin.X, "nil"):
		guarded = bin.Y
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[guarded]
	if !ok || !isRecorderPtr(tv.Type) {
		return
	}
	gobj := rootObject(pass.TypesInfo, guarded)
	if gobj == nil {
		return
	}
	// In the init form `if rec := X; rec != nil`, the guarded ident
	// must be the one the init declares.
	if ifs.Init != nil {
		as, ok := ifs.Init.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); !ok || pass.TypesInfo.Defs[id] != gobj {
			return
		}
	}
	if len(ifs.Body.List) == 0 {
		return
	}
	for _, s := range ifs.Body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || rootObject(pass.TypesInfo, sel.X) != gobj {
			return
		}
		for _, arg := range call.Args {
			if !cheapExpr(pass.TypesInfo, arg) {
				return
			}
		}
	}
	pass.Reportf(ifs.Pos(),
		"redundant nil pre-check: Recorder methods nil-guard themselves (disabled path is one branch); call directly — pre-checks are only for sites that must skip computing an expensive argument")
}

// cheapExpr reports whether evaluating e on the disabled path is
// obviously allocation-free: literals, variables, field chains,
// indexing, arithmetic on non-strings, basic conversions, and
// zero-argument clock reads (.Now()). Anything that formats, concats
// strings, builds composites or calls arbitrary code is expensive —
// a pre-check guarding it is legitimate.
func cheapExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return cheapExpr(info, e.X)
	case *ast.IndexExpr:
		return cheapExpr(info, e.X) && cheapExpr(info, e.Index)
	case *ast.UnaryExpr:
		return e.Op != token.AND && cheapExpr(info, e.X)
	case *ast.BinaryExpr:
		if tv, ok := info.Types[e]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return false // string concat allocates
			}
		}
		return cheapExpr(info, e.X) && cheapExpr(info, e.Y)
	case *ast.CallExpr:
		// len/cap are constant-time reads, not calls.
		if fun, ok := ast.Unparen(e.Fun).(*ast.Ident); ok &&
			(fun.Name == "len" || fun.Name == "cap") &&
			info.Uses[fun] == types.Universe.Lookup(fun.Name) {
			return len(e.Args) == 1 && cheapExpr(info, e.Args[0])
		}
		// Basic-type conversions are free; []byte(s)/string(b) are not.
		if fun, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isType := info.Uses[fun].(*types.TypeName); isType && len(e.Args) == 1 {
				if tv, ok := info.Types[e]; ok {
					if _, basic := tv.Type.Underlying().(*types.Basic); basic {
						return cheapExpr(info, e.Args[0])
					}
				}
				return false
			}
		}
		// The engine clock read: Eng.Now() — a zero-argument method
		// named Now on a cheap chain.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok &&
			sel.Sel.Name == "Now" && len(e.Args) == 0 {
			return cheapExpr(info, sel.X)
		}
		return false
	default:
		return false
	}
}
