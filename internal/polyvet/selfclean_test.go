package polyvet

import "testing"

// TestRepoIsClean is the enforcement test: the whole module must pass
// the full suite with zero findings. Every invariant violation either
// gets fixed or gets an adjacent //polyvet: annotation with a reason —
// there is no third state, and CI runs this on every push (plus the
// `go vet -vettool` job, which exercises the unitchecker path).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module via go list -export")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("go list returned no packages")
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, Suite())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Pkg.Path(), err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
