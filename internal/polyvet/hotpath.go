package polyvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath checks functions annotated //polyvet:noalloc for obvious
// allocation sources. The annotation marks the kernels whose
// benchmarked contracts say 0 allocs/op — the gf256 row kernels, the
// sim event heap, the encoder fast paths, the telemetry record hook —
// and the analyzer keeps refactors from quietly reintroducing an
// allocation the benchmarks would only catch after the fact.
//
// Flagged inside a noalloc function: fmt.* calls, string
// concatenation, capturing closures, interface boxing of non-pointer
// values (implicit conversions at call sites, assignments and
// returns), map/slice composite literals, make/new, string<->[]byte
// conversions, and spawning goroutines. Calls to other functions are
// NOT followed (no interprocedural analysis): annotate the callee too
// if it is on the same path. append is deliberately allowed — the
// noalloc kernels append into caller-provided buffers, which is
// amortized-zero and exactly the idiom the contract blesses.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "check //polyvet:noalloc-annotated functions for obvious allocation sources",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Directives.noallocFor(pass.Fset, fd) {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in noalloc function %s", what, name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "goroutine spawn")
		case *ast.CallExpr:
			checkNoAllocCall(pass, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info, n) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				report(n.Pos(), "string concatenation")
			}
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					checkBoxing(pass, n.Lhs[i], rhs, report)
				}
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal")
			case *types.Slice:
				report(n.Pos(), "slice literal")
			}
		case *ast.FuncLit:
			if captures(info, n) {
				report(n.Pos(), "capturing closure")
			}
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.TypesInfo
	if fn := funcFor(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" call (formats and allocates)")
		return
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[fun]; obj != nil && obj == types.Universe.Lookup(fun.Name) {
			switch fun.Name {
			case "make":
				report(call.Pos(), "make")
				return
			case "new":
				report(call.Pos(), "new")
				return
			case "panic":
				// A panic argument heap-boxes only while crashing — cold
				// path by definition. Deep mode's escape gate exempts
				// the same sites via their panic-only flow traces.
				return
			}
		}
	}
	// Conversions: string<->[]byte/[]rune copy and allocate. The
	// callee may be a named type ident or a composite type expression
	// ([]byte(s)), so detect via the type checker, not the syntax.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := info.Types[call].Type, info.Types[call.Args[0]].Type
		if to != nil && from != nil && stringBytesConv(to, from) {
			report(call.Pos(), "string/[]byte conversion")
		}
		return
	}
	// Interface boxing at call arguments: passing a concrete
	// non-pointer value where the parameter is an interface heap-boxes
	// it (pointers and interfaces themselves are stored directly).
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				param = last
			} else if s, ok := last.(*types.Slice); ok {
				param = s.Elem()
			}
		case i < params.Len():
			param = params.At(i).Type()
		}
		if boxes(info, arg, param) {
			report(arg.Pos(), "interface boxing of argument")
		}
	}
}

// checkBoxing flags assignments that box a concrete non-pointer value
// into an interface-typed location.
func checkBoxing(pass *Pass, lhs, rhs ast.Expr, report func(token.Pos, string)) {
	ltv, ok := pass.TypesInfo.Types[lhs]
	if !ok {
		return
	}
	if boxes(pass.TypesInfo, rhs, ltv.Type) {
		report(rhs.Pos(), "interface boxing in assignment")
	}
}

func boxes(info *types.Info, val ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := info.Types[val]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return false // stored directly, no heap box
	}
	return true
}

func stringBytesConv(to, from types.Type) bool {
	str := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	byteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (str(to) && byteSlice(from)) || (byteSlice(to) && str(from))
}

// captures reports whether a func literal references any variable
// declared outside itself (other than package-level ones): such
// closures carry a context and allocate when they escape.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	inside := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || inside[obj] || obj.IsField() {
			return true
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level variable: no capture context
		}
		found = true
		return false
	})
	return found
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
