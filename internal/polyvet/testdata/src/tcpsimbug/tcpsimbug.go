// Mutation fixture: the PR 1 tcpsim bug pattern, reintroduced
// verbatim in shape. Feeding an RTT EWMA once per acked segment in
// map-iteration order made srtt (and so RTO behaviour) differ run to
// run. detmap must flag it — this is the regression the analyzer
// exists to prevent.
package tcpsim

type sender struct {
	srtt   float64
	rttvar float64
}

func (s *sender) onCumAck(sent map[int64]float64, now float64) {
	for seq, t := range sent { // want "iteration order is nondeterministic"
		sample := now - t
		s.rttvar = 0.75*s.rttvar + 0.25*abs(s.srtt-sample)
		s.srtt = 0.875*s.srtt + 0.125*sample
		delete(sent, seq)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
