// Fixture for the rngstream analyzer (package name netsim =
// sim-visible).
package netsim

import (
	"math/rand"

	"sim"
)

var sharedRNG *rand.Rand // want "package-level RNG state"

var lookup = map[string]*rand.Rand{} // want "package-level RNG state"

type spray struct {
	rng *rand.Rand // ok: a field — owners construct it via the deriver
}

func fresh(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "direct rand.New" "direct rand.NewSource"
}

func derived(seed int64) *spray {
	return &spray{rng: sim.RNG(seed, "ecmp-spray")} // ok: the blessed deriver
}
