// Package sim models the real engine package for fixtures: the
// blessed RNG deriver lives here, and nothing in this file should be
// flagged by rngstream or simclock.
package sim

import "math/rand"

// Time mirrors the engine clock type.
type Time int64

// RNG is the fixture's stand-in for the blessed deriver: the one
// function allowed to call rand.New/rand.NewSource directly.
func RNG(seed int64, stream string) *rand.Rand {
	h := uint64(1469598103934665603)
	for _, c := range stream {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ int64(h)))
}
