// Fixture for the hotpath analyzer: //polyvet:noalloc functions must
// not contain obvious allocation sources.
package kernels

import "fmt"

//polyvet:noalloc fixture: the XOR kernel contract — index ops only
func addRow(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

//polyvet:noalloc fixture: appending into a caller buffer is blessed
func appendByte(dst []byte, b byte) []byte {
	return append(dst, b)
}

//polyvet:noalloc fixture: flags the obvious allocators
func bad(dst []byte, n int, s string) []byte {
	buf := make([]byte, n)      // want "make in noalloc"
	msg := fmt.Sprintf("%d", n) // want "fmt.Sprintf call"
	b := []byte(s)              // want "byte conversion"
	s2 := s + msg               // want "string concatenation"
	_ = s2
	dst = append(dst, buf...)
	dst = append(dst, b...)
	return dst
}

//polyvet:noalloc fixture: closures, boxing and goroutines
func worse(vals []int, sink func(any), counter *int) {
	go blank()                 // want "goroutine spawn"
	f := func() { *counter++ } // want "capturing closure"
	f()
	sink(vals[0])  // want "interface boxing of argument"
	sink(&vals[0]) // ok: pointers are stored directly in interfaces
}

func blank() {}

// free is unannotated: allocations are fine outside noalloc functions.
func free(n int) []byte {
	return make([]byte, n)
}

// guard documents the panic exemption: a panic argument heap-boxes
// only while crashing, so the cold path is not a hot-path finding.
//
//polyvet:noalloc fixture: panic arguments are cold-path
func guard(n int) int {
	if n < 0 {
		panic("hotpath: negative length") // ok: boxing on the crash path only
	}
	return n * 2
}
