// Fixture for the simclock analyzer (package name netsim =
// sim-visible).
package netsim

import (
	"math/rand"
	"time"
)

type cfg struct {
	timeout time.Duration // ok: time types are config plumbing, not clock reads
}

func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

func nap() {
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
}

func deadline(d time.Duration) <-chan time.Time {
	return time.After(d) // want "wall-clock time.After"
}

func jitter() float64 {
	return rand.Float64() // want "global rand.Float64"
}

func pick(n int) int {
	return rand.Intn(n) // want "global rand.Intn"
}

func localDraw(seed int64) float64 {
	// ok for simclock: New/NewSource build private state, no global
	// source involved (rngstream owns the construction-path rule).
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func span(a, b time.Time) time.Duration {
	return b.Sub(a) // ok: method on time.Time, not a clock read
}
