// Fixture for nilhook's call-site half: pre-checks at hook call sites
// are redundant unless they skip computing an expensive argument.
package netsim

import "telemetry"

type port struct {
	rec   *telemetry.Recorder
	label string
	flow  int32
}

func (p *port) onDrop(now telemetry.Time) {
	if p.rec != nil { // want "redundant nil pre-check"
		p.rec.Record(now, p.flow, 1)
	}
}

func (p *port) onDropInit(now telemetry.Time) {
	if rec := p.rec; rec != nil { // want "redundant nil pre-check"
		rec.Record(now, p.flow, 1)
	}
}

func (p *port) onDropPair(now telemetry.Time) {
	if p.rec != nil { // want "redundant nil pre-check"
		p.rec.Record(now, p.flow, 1)
		p.rec.RecordLabel(now, p.flow, p.label)
	}
}

func (p *port) onExpensive(now telemetry.Time, a, b string) {
	if p.rec != nil { // ok: the pre-check skips the concatenation
		p.rec.RecordLabel(now, p.flow, a+" "+b)
	}
}

func (p *port) mixed(now telemetry.Time) {
	if p.rec != nil { // ok: the body does more than call hooks
		p.flow++
		p.rec.Record(now, p.flow, 1)
	}
}

func (p *port) direct(now telemetry.Time) {
	p.rec.Record(now, p.flow, int64(len(p.label))) // ok: direct call, len is cheap
}
