// Fixture for directive hygiene: stale suppressions and malformed
// directives are findings of their own — annotations must pay rent.
package netsim

func clean(xs []int) int {
	n := 0
	//polyvet:orderfree this slice loop never needed a suppression // want "stale //polyvet:orderfree"
	for _, x := range xs {
		n += x
	}
	return n
}

//polyvet:frobnicate whatever // want "unknown //polyvet:frobnicate"

//polyvet:allow nosuch because reasons // want "names unknown analyzer"
