// Fixture modeling the real telemetry package: nilhook checks the
// method-side half of the zero-cost disabled-telemetry contract here.
package telemetry

// Time mirrors sim.Time.
type Time int64

// Recorder models the flight recorder; nil is the disabled state.
type Recorder struct {
	events []int64
	labels []string
}

// Record is properly guarded.
func (r *Recorder) Record(now Time, flow int32, v int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, v)
}

// RecordLabel is properly guarded.
func (r *Recorder) RecordLabel(now Time, flow int32, label string) {
	if r == nil {
		return
	}
	r.labels = append(r.labels, label)
}

// LabelName's compound guard keeps the receiver check leftmost, which
// still short-circuits before any field access.
func (r *Recorder) LabelName(id int64) string {
	if r == nil || id < 0 || id >= int64(len(r.labels)) {
		return ""
	}
	return r.labels[id]
}

func (r *Recorder) Flush() { // want "must begin with"
	r.events = r.events[:0]
}

func (r *Recorder) Wrong(id int64) int64 { // want "must begin with"
	if id < 0 || r == nil { // receiver check is not leftmost: r.events could be reached first
		return 0
	}
	return r.events[id]
}

func (_ *Recorder) Reset() { // want "discards its receiver"
}

// grow is unexported: not part of the hook contract.
func (r *Recorder) grow() {
	r.events = append(r.events, 0)
}
