// Fixture for the detmap analyzer: package name netsim makes it
// sim-visible.
package netsim

import "maps"

func sumInts(m map[string]int) int {
	n := 0
	for _, v := range m { // ok: integer accumulation commutes
		n += v
	}
	return n
}

func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "iteration order is nondeterministic"
		s += v
	}
	return s
}

func keysInOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}

func iterBypass(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want "iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}

func valuesBypass(m map[string]int) int {
	n := 0
	for v := range maps.Values(m) { // ok: accumulation through the iterator form
		n += v
	}
	return n
}

func minMax(m map[int32]int) (int, int) {
	lo, hi := 1<<62, -(1 << 62)
	for _, v := range m { // ok: min/max builtins self-update
		lo = min(lo, v)
		hi = max(hi, v)
	}
	return lo, hi
}

func drain(pulls map[int32]int) {
	for r := range pulls { // ok: updates the ranged map's own entry at the range key
		pulls[r]--
	}
}

func invert(m map[string]int, out map[int]string) {
	for k, v := range m { // want "iteration order is nondeterministic"
		out[v] = k // value-keyed write: colliding values pick a random winner
	}
}

func double(m map[string]int, out map[string]int) {
	for k, v := range m { // ok: keyed by the distinct range key
		out[k] = v * 2
	}
}

func collect(m map[string][]int, byKey map[string][]int) {
	for k, v := range m { // ok: self-append at the range key
		byKey[k] = append(byKey[k], len(v))
	}
}

func mark(m map[int]struct{}, idx map[int]int, seen []bool) {
	for c := range m { // ok: idempotent slice write — every iteration stores the same value
		seen[idx[c]] = true
	}
}

func anyNegative(m map[string]int) bool {
	found := false
	for _, v := range m { // ok: idempotent flag set under a pure condition
		if v < 0 {
			found = true
		}
	}
	return found
}

func prune(m map[string]int) {
	for k, v := range m { // ok: delete at the range key (spec-blessed)
		if v == 0 {
			delete(m, k)
		}
	}
}

func nonEmpty(m map[string]int) bool {
	found := false
	for range m { // ok: the body never reads the range variables, so break is safe
		found = true
		break
	}
	return found
}

func firstKey(m map[string]int) string {
	for k := range m { // want "iteration order is nondeterministic"
		return k
	}
	return ""
}

func lastKey(m map[string]int) (k string) {
	for k = range m { // want "iteration order is nondeterministic"
	}
	return k
}

func annotated(m map[string]float64) float64 {
	s := 0.0
	//polyvet:orderfree fixture: tolerated float sum, exercising suppression
	for _, v := range m {
		s += v
	}
	return s
}
