package polyvet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// The standalone driver. `go vet -vettool` hands us one pre-planned
// compilation at a time (see unitchecker.go); this path instead loads
// packages itself so `polyvet ./...` and the in-repo enforcement test
// work with nothing but the go tool: `go list -export -deps` yields
// every package's file list plus compiled export data for its
// dependencies, and the stdlib gc importer consumes that export data
// for type checking. This is the same shape golang.org/x/tools'
// go/packages driver uses, minus the dependency.

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (in dir; "" = cwd), type
// checks the non-dependency ones from source against their deps'
// export data, and returns them ready for RunPackage.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,ImportMap,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("polyvet: go list: %w", err)
	}

	var pkgs []*listPackage
	exports := map[string]string{} // import path -> export data file
	resolve := map[string]string{} // vendor/test-variant remapping
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("polyvet: go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("polyvet: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			resolve[from] = to
		}
		if !p.DepOnly {
			pkgs = append(pkgs, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := resolve[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out2 []*Package
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out2 = append(out2, pkg)
	}
	return out2, nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("polyvet: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("polyvet: typecheck %s: %w", path, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
