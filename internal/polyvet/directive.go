package polyvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //polyvet: comment. Five forms exist:
//
//	//polyvet:orderfree <reason>   — suppresses a detmap finding on the
//	                                 next (or same) line
//	//polyvet:allow <analyzer> <reason> — suppresses that analyzer's (or
//	                                 deep gate's) finding on the next
//	                                 (or same) line
//	//polyvet:noalloc <reason>     — marks the following function for
//	                                 the hotpath allocation check and
//	                                 deep mode's escape gate
//	//polyvet:nobce <reason>       — marks the following function's
//	                                 loops as bounds-check-free (deep
//	                                 mode, compiler check_bce output)
//	//polyvet:inline <reason>      — marks the following function as
//	                                 one the compiler must keep
//	                                 inlinable (deep mode, -m output)
//
// A reason is mandatory: an escape hatch with no justification is a
// finding of its own. Suppressions must be adjacent (same line or the
// line directly above) to the code they excuse, and a suppression
// that matches no finding is reported as stale — annotations cannot
// outlive the code they excused.
type directive struct {
	pos  token.Position
	verb string // "orderfree", "allow", "noalloc", "nobce", "inline"
	// arg is the analyzer name for "allow", empty otherwise.
	arg    string
	reason string
	used   bool
}

// DeepGates names the compiler-ground-truth gates run by deep mode
// (internal/polyvet/deep). They are valid //polyvet:allow targets and
// own the function-marking verbs: escape owns noalloc (jointly with
// hotpath), bce owns nobce, inline owns inline.
var DeepGates = []string{"escape", "bce", "inline"}

func knownGate(name string) bool {
	for _, a := range Suite() {
		if a.Name == name {
			return true
		}
	}
	for _, g := range DeepGates {
		if g == name {
			return true
		}
	}
	return false
}

// Directives holds one package's parsed //polyvet: comments plus the
// malformed ones (reported as diagnostics by RunPackage via unused).
type Directives struct {
	byFile    map[string][]*directive
	malformed []Diagnostic
}

const directivePrefix = "//polyvet:"

func parseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byFile: map[string][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d.add(fset.Position(c.Slash), strings.TrimPrefix(c.Text, directivePrefix))
			}
		}
	}
	return d
}

func (d *Directives) add(pos token.Position, text string) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "polyvet",
			Message: "empty //polyvet: directive",
		})
		return
	}
	dir := &directive{pos: pos, verb: fields[0]}
	rest := fields[1:]
	switch dir.verb {
	case "orderfree", "noalloc", "nobce", "inline":
	case "allow":
		if len(rest) == 0 {
			d.malformed = append(d.malformed, Diagnostic{
				Pos: pos, Analyzer: "polyvet",
				Message: "//polyvet:allow needs an analyzer name and a reason",
			})
			return
		}
		dir.arg, rest = rest[0], rest[1:]
		if !knownGate(dir.arg) {
			d.malformed = append(d.malformed, Diagnostic{
				Pos: pos, Analyzer: "polyvet",
				Message: "//polyvet:allow names unknown analyzer " + dir.arg,
			})
			return
		}
	default:
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "polyvet",
			Message: "unknown //polyvet:" + dir.verb + " directive (want orderfree, allow, noalloc, nobce or inline)",
		})
		return
	}
	dir.reason = strings.Join(rest, " ")
	if dir.reason == "" {
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "polyvet",
			Message: "//polyvet:" + dir.verb + " needs a reason",
		})
		return
	}
	d.byFile[pos.Filename] = append(d.byFile[pos.Filename], dir)
}

// suppress reports whether an adjacent directive excuses d, marking
// the directive used.
func (ds *Directives) suppress(d Diagnostic) bool {
	for _, dir := range ds.byFile[d.Pos.Filename] {
		if dir.pos.Line != d.Pos.Line && dir.pos.Line != d.Pos.Line-1 {
			continue
		}
		if (dir.verb == "orderfree" && d.Analyzer == DetMap.Name) ||
			(dir.verb == "allow" && dir.arg == d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// markedFor reports whether fn carries a //polyvet:<verb> directive,
// either inside its doc comment or on the line directly above its
// declaration, marking the directive used. It returns the directive's
// reason when found.
func (ds *Directives) markedFor(fset *token.FileSet, fn *ast.FuncDecl, verb string) (string, bool) {
	pos := fset.Position(fn.Pos())
	for _, dir := range ds.byFile[pos.Filename] {
		if dir.verb != verb {
			continue
		}
		if dir.pos.Line == pos.Line-1 ||
			(fn.Doc != nil && dir.pos.Offset >= fset.Position(fn.Doc.Pos()).Offset &&
				dir.pos.Offset < fset.Position(fn.Doc.End()).Offset) {
			dir.used = true
			return dir.reason, true
		}
	}
	return "", false
}

// noallocFor reports whether fn carries a //polyvet:noalloc directive.
func (ds *Directives) noallocFor(fset *token.FileSet, fn *ast.FuncDecl) bool {
	_, ok := ds.markedFor(fset, fn, "noalloc")
	return ok
}

// A FuncMark is one function annotated with a //polyvet:<verb>
// function directive, with everything deep mode needs to match it
// against compiler diagnostics: the compiler-style name, the position
// of the name token (where inline decisions are reported) and the
// file span of the declaration (where escape and bounds-check sites
// land).
type FuncMark struct {
	Decl    *ast.FuncDecl
	Name    string // compiler-style: Name, T.Name or (*T).Name
	NamePos token.Position
	Start   token.Position
	End     token.Position
	Reason  string
}

// FuncMarks returns the functions in pkg annotated //polyvet:<verb>
// (test files excluded), plus diagnostics for <verb> directives that
// are attached to no function declaration — a function directive with
// nothing to guard is stale by definition.
func FuncMarks(pkg *Package, verb string) ([]FuncMark, []Diagnostic) {
	files := withoutTestFiles(pkg.Fset, pkg.Files)
	dirs := parseDirectives(pkg.Fset, files)
	var marks []FuncMark
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reason, ok := dirs.markedFor(pkg.Fset, fd, verb)
			if !ok {
				continue
			}
			marks = append(marks, FuncMark{
				Decl:    fd,
				Name:    compilerFuncName(fd),
				NamePos: pkg.Fset.Position(fd.Name.Pos()),
				Start:   pkg.Fset.Position(fd.Pos()),
				End:     pkg.Fset.Position(fd.End()),
				Reason:  reason,
			})
		}
	}
	var stale []Diagnostic
	for _, fileDirs := range dirs.byFile {
		for _, dir := range fileDirs {
			if dir.verb != verb || dir.used {
				continue
			}
			stale = append(stale, Diagnostic{
				Pos: dir.pos, Analyzer: "polyvet",
				Message: "//polyvet:" + verb + " directive not attached to a function declaration",
			})
		}
	}
	return marks, stale
}

// ApplyAllows filters diags through the package's //polyvet:allow
// directives for the given gate names: an adjacent allow drops the
// finding, and an allow targeting one of the gates that suppressed
// nothing is reported stale. This is RunPackage's suppression
// contract, exported for deep mode, whose gates run outside the
// analyzer suite.
func ApplyAllows(pkg *Package, gates []string, diags []Diagnostic) []Diagnostic {
	files := withoutTestFiles(pkg.Fset, pkg.Files)
	dirs := parseDirectives(pkg.Fset, files)
	inRun := map[string]bool{}
	for _, g := range gates {
		inRun[g] = true
	}
	kept := diags[:0:0]
	for _, d := range diags {
		if inRun[d.Analyzer] && dirs.suppress(d) {
			continue
		}
		kept = append(kept, d)
	}
	for _, fileDirs := range dirs.byFile {
		for _, dir := range fileDirs {
			if dir.verb != "allow" || dir.used || !inRun[dir.arg] {
				continue
			}
			kept = append(kept, Diagnostic{
				Pos: dir.pos, Analyzer: "polyvet",
				Message: "stale //polyvet:allow " + dir.arg + " directive: no " + dir.arg + " finding here — remove it",
			})
		}
	}
	return kept
}

// compilerFuncName renders fn's name the way gc's -m diagnostics do:
// plain functions as Name, methods as T.Name or (*T).Name.
func compilerFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		return "(*" + recvTypeName(star.X) + ")." + fd.Name.Name
	}
	return recvTypeName(t) + "." + fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// unused returns diagnostics for malformed directives and for
// suppressions that matched nothing this run. Only directives owned
// by an analyzer in the run are checked, so running a subset of the
// suite never flags another analyzer's annotations.
func (ds *Directives) unused(analyzers []*Analyzer) []Diagnostic {
	inRun := map[string]bool{}
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	out := append([]Diagnostic(nil), ds.malformed...)
	for _, dirs := range ds.byFile {
		for _, dir := range dirs {
			if dir.used {
				continue
			}
			owner := ""
			switch dir.verb {
			case "orderfree":
				owner = DetMap.Name
			case "noalloc":
				owner = HotPath.Name
			case "nobce":
				owner = "bce" // deep-mode gate; never in a syntactic run
			case "inline":
				owner = "inline"
			case "allow":
				owner = dir.arg
			}
			if !inRun[owner] {
				continue
			}
			out = append(out, Diagnostic{
				Pos: dir.pos, Analyzer: "polyvet",
				Message: "stale //polyvet:" + dir.verb + " directive: no " + owner + " finding here — remove it",
			})
		}
	}
	return out
}
