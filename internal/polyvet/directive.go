package polyvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //polyvet: comment. Three forms exist:
//
//	//polyvet:orderfree <reason>   — suppresses a detmap finding on the
//	                                 next (or same) line
//	//polyvet:allow <analyzer> <reason> — suppresses that analyzer's
//	                                 finding on the next (or same) line
//	//polyvet:noalloc <reason>     — marks the following function for
//	                                 the hotpath allocation check
//
// A reason is mandatory: an escape hatch with no justification is a
// finding of its own. Suppressions must be adjacent (same line or the
// line directly above) to the code they excuse, and a suppression
// that matches no finding is reported as stale — annotations cannot
// outlive the code they excused.
type directive struct {
	pos  token.Position
	verb string // "orderfree", "allow", "noalloc"
	// arg is the analyzer name for "allow", empty otherwise.
	arg    string
	reason string
	used   bool
}

// Directives holds one package's parsed //polyvet: comments plus the
// malformed ones (reported as diagnostics by RunPackage via unused).
type Directives struct {
	byFile    map[string][]*directive
	malformed []Diagnostic
}

const directivePrefix = "//polyvet:"

func parseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byFile: map[string][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d.add(fset.Position(c.Slash), strings.TrimPrefix(c.Text, directivePrefix))
			}
		}
	}
	return d
}

func (d *Directives) add(pos token.Position, text string) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "polyvet",
			Message: "empty //polyvet: directive",
		})
		return
	}
	dir := &directive{pos: pos, verb: fields[0]}
	rest := fields[1:]
	switch dir.verb {
	case "orderfree", "noalloc":
	case "allow":
		if len(rest) == 0 {
			d.malformed = append(d.malformed, Diagnostic{
				Pos: pos, Analyzer: "polyvet",
				Message: "//polyvet:allow needs an analyzer name and a reason",
			})
			return
		}
		dir.arg, rest = rest[0], rest[1:]
		known := false
		for _, a := range Suite() {
			known = known || a.Name == dir.arg
		}
		if !known {
			d.malformed = append(d.malformed, Diagnostic{
				Pos: pos, Analyzer: "polyvet",
				Message: "//polyvet:allow names unknown analyzer " + dir.arg,
			})
			return
		}
	default:
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "polyvet",
			Message: "unknown //polyvet:" + dir.verb + " directive (want orderfree, allow or noalloc)",
		})
		return
	}
	dir.reason = strings.Join(rest, " ")
	if dir.reason == "" {
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "polyvet",
			Message: "//polyvet:" + dir.verb + " needs a reason",
		})
		return
	}
	d.byFile[pos.Filename] = append(d.byFile[pos.Filename], dir)
}

// suppress reports whether an adjacent directive excuses d, marking
// the directive used.
func (ds *Directives) suppress(d Diagnostic) bool {
	for _, dir := range ds.byFile[d.Pos.Filename] {
		if dir.pos.Line != d.Pos.Line && dir.pos.Line != d.Pos.Line-1 {
			continue
		}
		if (dir.verb == "orderfree" && d.Analyzer == DetMap.Name) ||
			(dir.verb == "allow" && dir.arg == d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// noallocFor reports whether fn carries a //polyvet:noalloc directive,
// either inside its doc comment or on the line directly above its
// declaration, marking the directive used.
func (ds *Directives) noallocFor(fset *token.FileSet, fn *ast.FuncDecl) bool {
	pos := fset.Position(fn.Pos())
	for _, dir := range ds.byFile[pos.Filename] {
		if dir.verb != "noalloc" {
			continue
		}
		if dir.pos.Line == pos.Line-1 ||
			(fn.Doc != nil && dir.pos.Offset >= fset.Position(fn.Doc.Pos()).Offset &&
				dir.pos.Offset < fset.Position(fn.Doc.End()).Offset) {
			dir.used = true
			return true
		}
	}
	return false
}

// unused returns diagnostics for malformed directives and for
// suppressions that matched nothing this run. Only directives owned
// by an analyzer in the run are checked, so running a subset of the
// suite never flags another analyzer's annotations.
func (ds *Directives) unused(analyzers []*Analyzer) []Diagnostic {
	inRun := map[string]bool{}
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	out := append([]Diagnostic(nil), ds.malformed...)
	for _, dirs := range ds.byFile {
		for _, dir := range dirs {
			if dir.used {
				continue
			}
			owner := ""
			switch dir.verb {
			case "orderfree":
				owner = DetMap.Name
			case "noalloc":
				owner = HotPath.Name
			case "allow":
				owner = dir.arg
			}
			if !inRun[owner] {
				continue
			}
			out = append(out, Diagnostic{
				Pos: dir.pos, Analyzer: "polyvet",
				Message: "stale //polyvet:" + dir.verb + " directive: no " + owner + " finding here — remove it",
			})
		}
	}
	return out
}
