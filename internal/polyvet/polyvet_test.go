package polyvet

import "testing"

func TestDetMapFixture(t *testing.T) {
	RunFixture(t, "detmap", DetMap)
}

// TestDetMapCatchesPR1TcpsimBug is the mutation test: the map-ordered
// RTT EWMA feed fixed in PR 1, reintroduced in a fixture. If detmap
// ever stops flagging this shape, the suite has lost the regression it
// was built around.
func TestDetMapCatchesPR1TcpsimBug(t *testing.T) {
	RunFixture(t, "tcpsimbug", DetMap)
}

func TestSimClockFixture(t *testing.T) {
	RunFixture(t, "simclock", SimClock)
}

func TestRNGStreamFixture(t *testing.T) {
	RunFixture(t, "rngstream", RNGStream)
}

// TestBlessedDeriver: the deriver package itself (func RNG in package
// sim) is exempt from both RNG analyzers — zero findings expected.
func TestBlessedDeriver(t *testing.T) {
	RunFixture(t, "sim", RNGStream, SimClock, DetMap)
}

func TestNilHookMethodGuards(t *testing.T) {
	RunFixture(t, "telemetry", NilHook)
}

func TestNilHookCallSites(t *testing.T) {
	RunFixture(t, "nilhook", NilHook)
}

func TestHotPathFixture(t *testing.T) {
	RunFixture(t, "hotpath", HotPath)
}

func TestDirectiveHygiene(t *testing.T) {
	RunFixture(t, "directives", DetMap)
}
