package polyvet

import (
	"go/ast"
	"go/types"
)

// SimClock forbids wall-clock reads and global math/rand state in
// sim-visible packages. Simulated time comes from the engine
// (sim.Engine.Now); randomness comes from a named, seeded stream
// (sim.RNG). A single time.Now or global rand.Intn inside the sim
// makes runs irreproducible — the exact property every sweep,
// ablation and trace in this repo certifies.
//
// Using the time package's *types* (time.Duration for config
// plumbing) and constructing local *rand.Rand generators is fine;
// only the wall-clock functions and the package-level math/rand
// functions (which share one global, lock-guarded source) are
// flagged. Escape hatch: //polyvet:allow simclock <reason>.
var SimClock = &Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock (time.Now/Since/Sleep/...) and global math/rand functions in sim packages",
	Run:  runSimClock,
}

// wallClockFuncs are the time-package functions that read or wait on
// the wall clock. Parsing/formatting helpers and Duration arithmetic
// stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandExempt are the math/rand package-level functions that do
// NOT touch the shared global source: constructors for private
// generator state. Everything else package-level draws from the
// process-wide source and is banned in sim code.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runSimClock(pass *Pass) error {
	if !simVisible(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. time.Time.Sub, rand.Rand.Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in sim package %q: simulated time must come from the engine (sim.Engine.Now / After / At)",
						fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandExempt[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s in sim package %q: draws from the shared process-wide source; use a named seeded stream (sim.RNG(seed, %q))",
						fn.Name(), pass.Pkg.Name(), "stream-name")
				}
			}
			return true
		})
	}
	return nil
}
