package polyvet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// A fixture harness in the style of
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<path>/, and each line that should produce a
// finding carries a trailing `// want "regexp"` comment (several
// regexps for several findings). RunFixture loads the package, runs
// the analyzers, and reports every mismatch in either direction.
//
// Fixture imports resolve within testdata/src first (so a fixture can
// model the telemetry package, or split across packages), then fall
// back to the source importer for the standard library — everything
// offline.

// wantRe matches one `// want "..."` trailing comment; multiple
// quoted regexps may follow a single want.
var wantRe = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// TB is the subset of testing.TB the harness needs, kept as an
// interface so fixture.go itself stays out of test binaries' way.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads testdata/src/<pkgpath> relative to the caller's
// package directory, runs the analyzers over it, and checks the
// diagnostics against the fixture's want comments.
func RunFixture(t TB, pkgpath string, analyzers ...*Analyzer) {
	t.Helper()
	base := filepath.Join("testdata", "src")
	pkg, err := loadFixture(base, pkgpath)
	if err != nil {
		t.Fatalf("polyvet fixture %s: %v", pkgpath, err)
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("polyvet fixture %s: %v", pkgpath, err)
	}
	checkWants(t, pkg, diags)
}

type wantKey struct {
	file string
	line int
}

func checkWants(t TB, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]string{} // unmatched want regexps
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					unq := strings.ReplaceAll(strings.ReplaceAll(q[1], `\"`, `"`), `\\`, `\`)
					wants[key] = append(wants[key], unq)
				}
			}
		}
	}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			ok, err := regexp.MatchString(re, d.Message)
			if err != nil {
				t.Errorf("%s: bad want regexp %q: %v", d.Pos, re, err)
			}
			if ok {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	var keys []wantKey
	for k, res := range wants {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// loadFixture type-checks the fixture package rooted at base/pkgpath.
func loadFixture(base, pkgpath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		base:   base,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*Package{},
	}
	return imp.load(pkgpath)
}

type fixtureImporter struct {
	base   string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(fi.base, path); isDir(dir) {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return fi.std.Import(path)
}

func (fi *fixtureImporter) load(pkgpath string) (*Package, error) {
	if pkg, ok := fi.loaded[pkgpath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.base, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: fi, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(pkgpath, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgpath, err)
	}
	pkg := &Package{Fset: fi.fset, Files: files, Pkg: tpkg, Info: info}
	fi.loaded[pkgpath] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
