package polyvet

import (
	"go/ast"
	"go/types"
)

// RNGStream enforces the RNG-stream discipline that keeps parallel
// sweeps byte-identical at any worker count:
//
//  1. Inside sim-visible packages, *rand.Rand values are constructed
//     only through the blessed deriver sim.RNG(seed, stream), which
//     mixes a SplitMix64-style golden-ratio multiply with a
//     stream-label hash so independent components never share state
//     and seed/seed+1 runs are decorrelated. Direct rand.New /
//     rand.NewSource calls bypass the derivation (and invite the
//     correlated-seed bug sweep.SubSeed exists to prevent).
//  2. No package-level variable may hold RNG state (*rand.Rand or
//     rand.Source): a global generator is reachable from every sweep
//     worker goroutine at once, which is both a data race and an
//     iteration-order dependency between cells.
//
// The deriver itself (function RNG in package sim) is exempt; so is
// anything annotated //polyvet:allow rngstream <reason>.
var RNGStream = &Analyzer{
	Name: "rngstream",
	Doc:  "require *rand.Rand construction via the seeded deriver sim.RNG and forbid package-level RNG state",
	Run:  runRNGStream,
}

func runRNGStream(pass *Pass) error {
	if !simVisible(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				checkGlobalRNGState(pass, decl)
			case *ast.FuncDecl:
				if blessedDeriver(pass, decl) {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := funcFor(pass.TypesInfo, call)
					for _, path := range []string{"math/rand", "math/rand/v2"} {
						if isPkgFunc(fn, path, "New") || isPkgFunc(fn, path, "NewSource") ||
							isPkgFunc(fn, path, "NewPCG") || isPkgFunc(fn, path, "NewChaCha8") {
							pass.Reportf(call.Pos(),
								"direct rand.%s in sim package %q: construct RNG streams via sim.RNG(seed, \"stream-name\") so every stream is seed-derived, named and unshared",
								fn.Name(), pass.Pkg.Name())
						}
					}
					return true
				})
			}
		}
	}
	return nil
}

// blessedDeriver reports whether decl is the deriver itself: func RNG
// in package sim, the one place allowed to touch rand.NewSource.
func blessedDeriver(pass *Pass, decl *ast.FuncDecl) bool {
	return pass.Pkg.Name() == "sim" && decl.Recv == nil && decl.Name.Name == "RNG"
}

// checkGlobalRNGState flags package-level vars whose type contains
// *rand.Rand or rand.Source.
func checkGlobalRNGState(pass *Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || obj.Parent() != pass.Pkg.Scope() {
				continue
			}
			if holdsRNGState(obj.Type()) {
				pass.Reportf(name.Pos(),
					"package-level RNG state %s: a global generator is shared across sweep workers (race + draw-order coupling); derive a per-run stream with sim.RNG instead",
					name.Name)
			}
		}
	}
}

// holdsRNGState reports whether t is, points to, or wraps math/rand
// generator state.
func holdsRNGState(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Pointer:
			return walk(t.Elem())
		case *types.Slice:
			return walk(t.Elem())
		case *types.Array:
			return walk(t.Elem())
		case *types.Map:
			return walk(t.Elem())
		case *types.Named:
			if obj := t.Obj(); obj != nil && obj.Pkg() != nil {
				path := obj.Pkg().Path()
				if (path == "math/rand" || path == "math/rand/v2") &&
					(obj.Name() == "Rand" || obj.Name() == "Source" || obj.Name() == "Source64" ||
						obj.Name() == "PCG" || obj.Name() == "ChaCha8") {
					return true
				}
			}
			return walk(t.Underlying())
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				if walk(t.Field(i).Type()) {
					return true
				}
			}
		case *types.Interface:
			// rand.Source is an interface; named check above catches
			// it. Other interfaces: can't tell, don't guess.
		}
		return false
	}
	return walk(t)
}
