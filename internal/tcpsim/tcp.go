// Package tcpsim implements the paper's comparison baseline: a
// packet-level TCP NewReno model (slow start, congestion avoidance,
// fast retransmit/recovery with NewReno partial-ACK handling, and
// exponential-backoff retransmission timeouts) running over netsim
// with per-flow ECMP hashing and drop-tail switch queues.
//
// The paper emulates one-to-many transfer with TCP by multi-unicasting
// (n independent flows from the writer) and many-to-one by letting
// each replica server send a distinct 1/n of the block without
// coordination; helpers for both patterns live in the harness.
package tcpsim

import (
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
	"polyraptor/internal/telemetry"
)

// Config holds TCP parameters.
type Config struct {
	// SegPayload is the payload bytes per segment (wire size is
	// SegPayload + header; we transmit netsim.DataSize on the wire).
	SegPayload int
	// InitCwnd is the initial congestion window in segments (RFC 6928
	// style IW10).
	InitCwnd float64
	// RTOMin clamps the retransmission timeout. The paper's baseline
	// is *standard* TCP, whose 200 ms minimum RTO dwarfs data-centre
	// transfer times — the root cause of Incast collapse (Vasudevan et
	// al., SIGCOMM 2009). Set to ~1 ms to model a DC-tuned stack.
	RTOMin sim.Time
	// MaxBackoff caps exponential RTO backoff doublings.
	MaxBackoff int
	// DCTCP enables DCTCP congestion control (Alizadeh et al., SIGCOMM
	// 2010): segments are sent ECN-capable, receivers echo CE marks,
	// and the sender scales cwnd by the smoothed mark fraction once
	// per window instead of halving. Requires switches configured with
	// netsim.Config.ECNThreshold. Loss handling stays NewReno.
	DCTCP bool
	// DCTCPGain is the EWMA gain g for the mark-fraction estimate
	// (canonical 1/16).
	DCTCPGain float64
}

// DefaultConfig returns the paper's baseline: standard TCP.
func DefaultConfig() Config {
	return Config{
		SegPayload: netsim.PayloadSize,
		InitCwnd:   10,
		RTOMin:     200 * time.Millisecond,
		MaxBackoff: 6,
	}
}

// TunedConfig returns a data-centre-tuned stack (RTOmin lowered to
// 1 ms), used by mechanism tests and the RTOmin sensitivity ablation.
func TunedConfig() Config {
	cfg := DefaultConfig()
	cfg.RTOMin = time.Millisecond
	return cfg
}

// DCTCPConfig returns a DCTCP stack (DC-tuned RTOmin, ECN-driven
// window control). Pair it with netsim.Config.ECNThreshold ≈ 20.
func DCTCPConfig() Config {
	cfg := TunedConfig()
	cfg.DCTCP = true
	cfg.DCTCPGain = 1.0 / 16
	return cfg
}

// FlowResult reports one completed flow.
type FlowResult struct {
	Flow        int32
	Src, Dst    int
	Bytes       int64
	Start, End  sim.Time
	Retransmits int64
	Timeouts    int64
}

// GoodputGbps returns application goodput in Gbit/s.
func (r FlowResult) GoodputGbps() float64 {
	d := (r.End - r.Start).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.Bytes*8) / d / 1e9
}

// System attaches a TCP agent to every host.
type System struct {
	Net      *netsim.Network
	Cfg      Config
	Agents   []*Agent
	nextFlow int32
}

// NewSystem wires an agent onto every host of the network.
func NewSystem(net *netsim.Network, cfg Config) *System {
	if cfg.SegPayload <= 0 {
		panic("tcpsim: SegPayload must be positive")
	}
	s := &System{Net: net, Cfg: cfg}
	for _, h := range net.Hosts {
		s.Agents = append(s.Agents, newAgent(s, h))
	}
	return s
}

// proto names the configured stack for traces.
func (s *System) proto() string {
	if s.Cfg.DCTCP {
		return "dctcp"
	}
	return "tcp"
}

// OpenFlows counts the live sender sessions across all agents — the
// open-session gauge sampled by PolyScope timeline probes.
func (s *System) OpenFlows() int {
	n := 0
	for _, a := range s.Agents {
		n += len(a.senders)
	}
	return n
}

// StartFlow begins a TCP transfer of `bytes` from src to dst. onDone
// fires at the sender when the final segment is cumulatively acked.
func (s *System) StartFlow(src, dst int, bytes int64, onDone func(FlowResult)) int32 {
	flow := s.nextFlow
	s.nextFlow++
	s.Net.Rec.OpenFlow(s.Net.Now(), flow, s.proto(),
		s.Agents[src].host.ID, s.Agents[dst].host.ID, bytes, 1)
	segs := (bytes + int64(s.Cfg.SegPayload) - 1) / int64(s.Cfg.SegPayload)
	if segs < 1 {
		segs = 1
	}
	snd := &tcpSender{
		sys:      s,
		flow:     flow,
		src:      src,
		dst:      dst,
		bytes:    bytes,
		total:    segs,
		cwnd:     s.Cfg.InitCwnd,
		ssthresh: 1 << 30,
		sent:     make(map[int64]sim.Time),
		start:    s.Net.Now(),
		onDone:   onDone,
	}
	s.Agents[src].senders[flow] = snd
	snd.trySend()
	return flow
}

// Agent is the per-host TCP endpoint: it demultiplexes segments to
// senders and receivers. Receiver state is created on first data
// arrival.
type Agent struct {
	sys       *System
	host      *netsim.Host
	senders   map[int32]*tcpSender
	receivers map[int32]*tcpReceiver
}

func newAgent(sys *System, host *netsim.Host) *Agent {
	a := &Agent{
		sys:       sys,
		host:      host,
		senders:   make(map[int32]*tcpSender),
		receivers: make(map[int32]*tcpReceiver),
	}
	host.Deliver = a.deliver
	return a
}

func (a *Agent) deliver(pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.KindData:
		rcv, ok := a.receivers[pkt.Flow]
		if !ok {
			rcv = &tcpReceiver{agent: a, flow: pkt.Flow, peer: pkt.Src, ooo: make(map[int64]bool)}
			a.receivers[pkt.Flow] = rcv
		}
		rcv.onData(pkt)
	case netsim.KindAck:
		if snd, ok := a.senders[pkt.Flow]; ok {
			snd.onAck(pkt.Seq, pkt.ECNEcho)
		}
	}
	// Handlers read fields synchronously and never retain the pointer;
	// recycle the packet once dispatch returns.
	a.sys.Net.FreePacket(pkt)
}

// tcpReceiver acknowledges every arriving segment with the cumulative
// next-expected sequence number, buffering out-of-order arrivals.
type tcpReceiver struct {
	agent    *Agent
	flow     int32
	peer     int32
	expected int64
	ooo      map[int64]bool
}

func (r *tcpReceiver) onData(pkt *netsim.Packet) {
	seq := pkt.Seq
	switch {
	case seq == r.expected:
		r.expected++
		for r.ooo[r.expected] {
			delete(r.ooo, r.expected)
			r.expected++
		}
		r.agent.sys.Net.Rec.Record(r.agent.sys.Net.Now(), r.flow, telemetry.EvSymbol, r.agent.host.ID, seq)
	case seq > r.expected:
		if !r.ooo[seq] {
			r.agent.sys.Net.Rec.Record(r.agent.sys.Net.Now(), r.flow, telemetry.EvSymbol, r.agent.host.ID, seq)
		}
		r.ooo[seq] = true
	default:
		// Below the cumulative point: a spurious retransmission.
		r.agent.sys.Net.Rec.Record(r.agent.sys.Net.Now(), r.flow, telemetry.EvDup, r.agent.host.ID, seq)
	}
	// Exact per-packet CE echo: we acknowledge every segment, so the
	// sender sees precisely which arrivals were marked (stronger than
	// RFC 3168's sticky ECE, matching DCTCP's intent).
	ack := r.agent.sys.Net.AllocPacket()
	ack.Flow = r.flow
	ack.Kind = netsim.KindAck
	ack.Size = netsim.HeaderSize
	ack.Src = r.agent.host.ID
	ack.Dst = r.peer
	ack.Group = -1
	ack.Seq = r.expected
	ack.ECNEcho = pkt.ECNMarked
	r.agent.host.Send(ack)
}

// tcpSender implements NewReno.
type tcpSender struct {
	sys    *System
	flow   int32
	src    int
	dst    int
	bytes  int64
	total  int64 // segments
	onDone func(FlowResult)
	start  sim.Time

	nextSeq  int64 // next new segment
	highAck  int64 // cumulative ack point
	cwnd     float64
	ssthresh float64
	dupAcks  int

	inRecovery bool
	recover    int64

	srtt, rttvar sim.Time
	backoff      int
	rtoTimer     sim.Timer
	rtoArmed     bool
	sent         map[int64]sim.Time // first-transmission times (Karn)

	// DCTCP state: smoothed mark fraction and per-window accounting.
	alpha       float64
	ackedInWin  int64
	markedInWin int64
	winEnd      int64

	retransmits int64
	timeouts    int64
	done        bool
}

// inflight is the NewReno estimate of outstanding segments.
func (s *tcpSender) inflight() int64 { return s.nextSeq - s.highAck }

// trySend transmits new segments while the window allows.
func (s *tcpSender) trySend() {
	for !s.done && s.nextSeq < s.total && float64(s.inflight()) < s.cwnd {
		s.transmit(s.nextSeq, true)
		s.nextSeq++
	}
	if !s.done && s.inflight() > 0 {
		s.armRTO()
	}
}

func (s *tcpSender) transmit(seq int64, first bool) {
	if first {
		s.sent[seq] = s.sys.Net.Now()
	} else {
		delete(s.sent, seq) // Karn: never time retransmitted segments
		s.retransmits++
		s.sys.Net.Rec.Record(s.sys.Net.Now(), s.flow, telemetry.EvRetransmit, s.sys.Agents[s.src].host.ID, seq)
	}
	seg := s.sys.Net.AllocPacket()
	seg.Flow = s.flow
	seg.Kind = netsim.KindData
	seg.Size = netsim.DataSize
	seg.Src = s.sys.Agents[s.src].host.ID
	seg.Dst = s.sys.Agents[s.dst].host.ID
	seg.Group = -1
	seg.Seq = seq
	seg.ECNCapable = s.sys.Cfg.DCTCP
	s.sys.Agents[s.src].host.Send(seg)
}

// rto returns the current retransmission timeout with backoff.
func (s *tcpSender) rto() sim.Time {
	base := s.srtt + 4*s.rttvar
	if base < s.sys.Cfg.RTOMin {
		base = s.sys.Cfg.RTOMin
	}
	return base << uint(s.backoff)
}

func (s *tcpSender) armRTO() {
	if s.rtoArmed {
		s.rtoTimer.Cancel()
	}
	s.rtoArmed = true
	s.rtoTimer = s.sys.Net.Eng.After(s.rto(), s.onRTO)
}

func (s *tcpSender) disarmRTO() {
	if s.rtoArmed {
		s.rtoTimer.Cancel()
		s.rtoArmed = false
	}
}

func (s *tcpSender) onRTO() {
	if s.done {
		return
	}
	s.timeouts++
	s.ssthresh = maxf(float64(s.inflight())/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inRecovery = false
	s.nextSeq = s.highAck // go-back-N from the ack point
	if s.backoff < s.sys.Cfg.MaxBackoff {
		s.backoff++
	}
	now := s.sys.Net.Now()
	host := s.sys.Agents[s.src].host.ID
	s.sys.Net.Rec.Record(now, s.flow, telemetry.EvTimeout, host, int64(s.backoff))
	s.sys.Net.Rec.Record(now, s.flow, telemetry.EvCwnd, host, int64(s.cwnd*1000))
	s.trySend()
}

func (s *tcpSender) sampleRTT(ackSeq int64) {
	// Use the earliest unacked first-transmission at or below ackSeq —
	// one sample per ACK. The selection must not depend on map
	// iteration order: feeding the EWMA once per covered segment in
	// random order made srtt/rttvar (and so RTO behaviour) vary from
	// run to run under cumulative ACKs.
	earliest := int64(-1)
	var at sim.Time
	//polyvet:orderfree argmin over distinct seq keys: every visit order selects the same (earliest, at) pair, and delete is per-key
	for seq, t := range s.sent {
		if seq < ackSeq {
			if earliest < 0 || seq < earliest {
				earliest, at = seq, t
			}
			delete(s.sent, seq)
		}
	}
	if earliest < 0 {
		return
	}
	rtt := s.sys.Net.Now() - at
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		delta := s.srtt - rtt
		if delta < 0 {
			delta = -delta
		}
		s.rttvar = (3*s.rttvar + delta) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
}

func (s *tcpSender) onAck(ack int64, ecnEcho bool) {
	if s.done {
		return
	}
	if ack > s.highAck {
		newly := ack - s.highAck
		s.highAck = ack
		s.dupAcks = 0
		s.backoff = 0
		s.sampleRTT(ack)
		if s.sys.Cfg.DCTCP {
			s.dctcpOnAck(newly, ecnEcho)
		}
		if s.inRecovery {
			if ack >= s.recover {
				// Full recovery: deflate to ssthresh.
				s.inRecovery = false
				s.cwnd = s.ssthresh
				s.sys.Net.Rec.Record(s.sys.Net.Now(), s.flow, telemetry.EvCwnd,
					s.sys.Agents[s.src].host.ID, int64(s.cwnd*1000))
			} else {
				// Partial ack (NewReno): retransmit the next hole,
				// deflate by the amount acked, allow one new segment.
				s.transmit(s.highAck, false)
				s.cwnd = maxf(s.cwnd-float64(newly)+1, 1)
			}
		} else if s.cwnd < s.ssthresh {
			s.cwnd += float64(newly) // slow start
		} else {
			s.cwnd += float64(newly) / s.cwnd // congestion avoidance
		}
		if s.highAck >= s.total {
			s.finish()
			return
		}
		s.armRTO()
		s.trySend()
		return
	}
	// Duplicate ack.
	s.dupAcks++
	if s.inRecovery {
		s.cwnd++ // inflation
	} else if s.dupAcks == 3 {
		s.ssthresh = maxf(float64(s.inflight())/2, 2)
		s.cwnd = s.ssthresh + 3
		s.inRecovery = true
		s.recover = s.nextSeq
		s.sys.Net.Rec.Record(s.sys.Net.Now(), s.flow, telemetry.EvCwnd,
			s.sys.Agents[s.src].host.ID, int64(s.cwnd*1000))
		s.transmit(s.highAck, false) // fast retransmit
	}
	s.trySend()
}

// dctcpOnAck maintains the smoothed mark fraction alpha and applies
// the proportional once-per-window reduction cwnd *= 1 - alpha/2
// (Alizadeh et al. §3.3). Growth between reductions is standard slow
// start / congestion avoidance, handled by the caller.
func (s *tcpSender) dctcpOnAck(newly int64, ecnEcho bool) {
	s.ackedInWin += newly
	if ecnEcho {
		s.markedInWin += newly
	}
	if s.highAck < s.winEnd {
		return
	}
	// One observation window (~RTT of data) has been acknowledged.
	if s.ackedInWin > 0 {
		f := float64(s.markedInWin) / float64(s.ackedInWin)
		g := s.sys.Cfg.DCTCPGain
		s.alpha = (1-g)*s.alpha + g*f
		if s.markedInWin > 0 {
			s.cwnd = maxf(s.cwnd*(1-s.alpha/2), 1)
			// Marks end slow start like a conventional congestion
			// signal would.
			s.ssthresh = s.cwnd
		}
	}
	s.ackedInWin, s.markedInWin = 0, 0
	s.winEnd = s.nextSeq
}

func (s *tcpSender) finish() {
	s.done = true
	s.disarmRTO()
	s.sys.Net.Rec.CloseFlow(s.sys.Net.Now(), s.flow, s.sys.Agents[s.dst].host.ID)
	delete(s.sys.Agents[s.src].senders, s.flow)
	delete(s.sys.Agents[s.dst].receivers, s.flow)
	if s.onDone != nil {
		s.onDone(FlowResult{
			Flow:        s.flow,
			Src:         s.src,
			Dst:         s.dst,
			Bytes:       s.bytes,
			Start:       s.start,
			End:         s.sys.Net.Now(),
			Retransmits: s.retransmits,
			Timeouts:    s.timeouts,
		})
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
