package tcpsim

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

// tcpNet returns a star network with drop-tail switches (TCP's fabric).
func tcpNet(hosts int) *topology.Star {
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	return topology.NewStar(hosts, cfg)
}

func TestSingleFlowCompletes(t *testing.T) {
	st := tcpNet(2)
	sys := NewSystem(st.Net, DefaultConfig())
	var res []FlowResult
	sys.StartFlow(0, 1, 1<<20, func(r FlowResult) { res = append(res, r) })
	st.Net.Eng.Run()
	if len(res) != 1 {
		t.Fatalf("completions = %d", len(res))
	}
	r := res[0]
	if r.Bytes != 1<<20 || r.Src != 0 || r.Dst != 1 {
		t.Fatalf("bad result: %+v", r)
	}
	// Uncontended 1 MB: no retransmissions, goodput near line rate.
	if r.Retransmits != 0 || r.Timeouts != 0 {
		t.Fatalf("uncontended flow had %d rtx / %d RTOs", r.Retransmits, r.Timeouts)
	}
	if g := r.GoodputGbps(); g < 0.7 {
		t.Fatalf("uncontended TCP goodput %.3f Gbps", g)
	}
}

func TestTinyFlow(t *testing.T) {
	st := tcpNet(2)
	sys := NewSystem(st.Net, DefaultConfig())
	done := false
	sys.StartFlow(0, 1, 100, func(r FlowResult) { done = true })
	st.Net.Eng.Run()
	if !done {
		t.Fatal("1-segment flow did not complete")
	}
}

func TestSlowStartGrowth(t *testing.T) {
	// A medium flow must beat one-segment-per-RTT pacing by orders of
	// magnitude (i.e., the window actually grows).
	st := tcpNet(2)
	sys := NewSystem(st.Net, DefaultConfig())
	var res []FlowResult
	sys.StartFlow(0, 1, 512<<10, func(r FlowResult) { res = append(res, r) })
	st.Net.Eng.Run()
	if len(res) != 1 {
		t.Fatal("no completion")
	}
	d := res[0].End - res[0].Start
	if d > 20*time.Millisecond {
		t.Fatalf("512 KB took %v — window is not growing", d)
	}
}

func TestCompetingFlowsShare(t *testing.T) {
	// Two flows into the same receiver split the bottleneck roughly
	// evenly over a long transfer. Uses the DC-tuned stack so a tail
	// RTO does not dominate the makespan (the mechanism under test is
	// congestion-window sharing, not timeout behaviour).
	st := tcpNet(3)
	sys := NewSystem(st.Net, TunedConfig())
	var res []FlowResult
	sys.StartFlow(1, 0, 4<<20, func(r FlowResult) { res = append(res, r) })
	sys.StartFlow(2, 0, 4<<20, func(r FlowResult) { res = append(res, r) })
	st.Net.Eng.Run()
	if len(res) != 2 {
		t.Fatalf("completions = %d", len(res))
	}
	var last time.Duration
	for _, r := range res {
		if r.End > last {
			last = r.End
		}
	}
	// Aggregate goodput (total bytes over the makespan) must respect
	// link capacity and not collapse.
	agg := float64(8<<20*8) / last.Seconds() / 1e9
	if agg > 1.0 {
		t.Fatalf("aggregate exceeds link capacity: %.3f Gbps", agg)
	}
	if agg < 0.5 {
		t.Fatalf("aggregate badly underutilizes the link: %.3f Gbps", agg)
	}
}

func TestLossRecoveryViaFastRetransmit(t *testing.T) {
	// Overload a shallow queue: flows must recover via fast retransmit
	// (some retransmissions, bounded by recovery working at all).
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	cfg.DropTailCap = 16
	st := topology.NewStar(5, cfg)
	sys := NewSystem(st.Net, DefaultConfig())
	var res []FlowResult
	for s := 1; s <= 4; s++ {
		sys.StartFlow(s, 0, 2<<20, func(r FlowResult) { res = append(res, r) })
	}
	st.Net.Eng.Run()
	if len(res) != 4 {
		t.Fatalf("completions = %d, want 4 (flows wedged?)", len(res))
	}
	var rtx int64
	for _, r := range res {
		rtx += r.Retransmits
	}
	if rtx == 0 {
		t.Fatal("4-into-1 with 16-packet buffers should retransmit")
	}
}

func TestIncastCollapse(t *testing.T) {
	// The classic pathology the paper's Fig 1c relies on: many
	// synchronized senders into one port with shallow buffers collapse
	// aggregate goodput (timeouts dominate); Polyraptor's counterpart
	// test (TestIncastNoCollapse) shows the contrast.
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	cfg.DropTailCap = 64
	n := 48
	st := topology.NewStar(n+1, cfg)
	sys := NewSystem(st.Net, DefaultConfig())
	var res []FlowResult
	per := int64(256 << 10)
	for s := 1; s <= n; s++ {
		sys.StartFlow(s, 0, per, func(r FlowResult) { res = append(res, r) })
	}
	st.Net.Eng.Run()
	if len(res) != n {
		t.Fatalf("completions = %d, want %d", len(res), n)
	}
	var last time.Duration
	var timeouts int64
	for _, r := range res {
		if r.End > last {
			last = r.End
		}
		timeouts += r.Timeouts
	}
	agg := float64(per*int64(n)*8) / last.Seconds() / 1e9
	if timeouts == 0 {
		t.Fatal("48-way incast produced no RTOs; collapse model broken")
	}
	if agg > 0.85 {
		t.Fatalf("aggregate goodput %.3f Gbps — no incast collapse visible", agg)
	}
}

func TestRetransmissionTimeoutRecoversTailLoss(t *testing.T) {
	// Tail loss (last segments of a window dropped, no dupacks) can
	// only be recovered by RTO. Force it with a tiny queue and a short
	// flow burst.
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	cfg.DropTailCap = 2
	st := topology.NewStar(4, cfg)
	sys := NewSystem(st.Net, DefaultConfig())
	var res []FlowResult
	for s := 1; s <= 3; s++ {
		sys.StartFlow(s, 0, 64<<10, func(r FlowResult) { res = append(res, r) })
	}
	st.Net.Eng.Run()
	if len(res) != 3 {
		t.Fatalf("flows wedged: %d/3 done", len(res))
	}
}

func TestECMPPinsFlowInFatTree(t *testing.T) {
	// TCP over the fat-tree must complete and stay on one core path.
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	ft, _ := topology.NewFatTree(4, cfg)
	sys := NewSystem(ft.Net, DefaultConfig())
	var res []FlowResult
	sys.StartFlow(0, 15, 1<<20, func(r FlowResult) { res = append(res, r) })
	ft.Net.Eng.Run()
	if len(res) != 1 {
		t.Fatal("fat-tree TCP flow did not complete")
	}
	if g := res[0].GoodputGbps(); g < 0.5 {
		t.Fatalf("fat-tree TCP goodput %.3f", g)
	}
}

func TestFlowResultGoodput(t *testing.T) {
	r := FlowResult{Bytes: 1e9 / 8, Start: 0, End: time.Second}
	if g := r.GoodputGbps(); g < 0.99 || g > 1.01 {
		t.Fatalf("GoodputGbps = %v", g)
	}
}
