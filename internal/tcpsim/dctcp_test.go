package tcpsim

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

// dctcpNet builds a star fabric with ECN-marking drop-tail switches.
func dctcpNet(hosts int) *topology.Star {
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	cfg.ECNThreshold = 20
	return topology.NewStar(hosts, cfg)
}

func TestDCTCPSingleFlowCompletes(t *testing.T) {
	st := dctcpNet(2)
	sys := NewSystem(st.Net, DCTCPConfig())
	var res []FlowResult
	sys.StartFlow(0, 1, 1<<20, func(r FlowResult) { res = append(res, r) })
	st.Net.Eng.Run()
	if len(res) != 1 {
		t.Fatal("no completion")
	}
	if g := res[0].GoodputGbps(); g < 0.7 {
		t.Fatalf("DCTCP uncontended goodput %.3f Gbps", g)
	}
}

func TestDCTCPKeepsQueuesShort(t *testing.T) {
	// Two long flows into one port: DCTCP's proportional reaction must
	// hold the standing queue near the marking threshold instead of
	// filling the 100-packet buffer, and must avoid drops entirely.
	st := dctcpNet(3)
	sys := NewSystem(st.Net, DCTCPConfig())
	done := 0
	sys.StartFlow(1, 0, 4<<20, func(r FlowResult) { done++ })
	sys.StartFlow(2, 0, 4<<20, func(r FlowResult) { done++ })

	maxQ := 0
	st.Net.Eng.After(time.Millisecond, func() {})
	sample := func() {}
	var arm func()
	arm = func() {
		st.Net.Eng.After(100*time.Microsecond, func() {
			if q := st.SW.Ports[0].QueueLen(); q > maxQ {
				maxQ = q
			}
			if done < 2 {
				arm()
			}
		})
	}
	arm()
	_ = sample
	st.Net.Eng.Run()
	if done != 2 {
		t.Fatalf("%d/2 flows completed", done)
	}
	tot := st.Net.QueueTotals()
	if tot.Marked == 0 {
		t.Fatal("no ECN marks despite contention; marking is broken")
	}
	if tot.Dropped != 0 {
		t.Fatalf("%d drops; DCTCP should hold the queue below capacity", tot.Dropped)
	}
	if maxQ > 80 {
		t.Fatalf("standing queue reached %d packets; DCTCP should keep it near K=20", maxQ)
	}
}

func TestDCTCPBeatsTCPOnIncast(t *testing.T) {
	// Mid-scale incast: DCTCP's early reaction avoids the drop/RTO
	// spiral that collapses standard TCP.
	run := func(cfg Config, ecn int) float64 {
		ncfg := netsim.DefaultConfig()
		ncfg.Trimming = false
		ncfg.ECNThreshold = ecn
		st := topology.NewStar(17, ncfg)
		sys := NewSystem(st.Net, cfg)
		var last time.Duration
		done := 0
		per := int64(256 << 10)
		for s := 1; s <= 16; s++ {
			sys.StartFlow(s, 0, per, func(r FlowResult) {
				done++
				if r.End > last {
					last = r.End
				}
			})
		}
		st.Net.Eng.Run()
		if done != 16 {
			t.Fatalf("%d/16 flows completed", done)
		}
		return float64(per*16*8) / last.Seconds() / 1e9
	}
	dctcp := run(DCTCPConfig(), 20)
	tcp := run(DefaultConfig(), 0)
	if dctcp < 2*tcp {
		t.Fatalf("DCTCP (%.3f) not clearly better than TCP (%.3f) on 16-way incast", dctcp, tcp)
	}
	// Absolute goodput stays modest: 16 synchronized IW-10 bursts (160
	// packets) overflow the 100-packet buffer before any ECN feedback
	// exists — DCTCP's documented incast limitation, and exactly the
	// gap Polyraptor's trimming closes (TestIncastNoCollapse holds
	// >0.75 in the same scenario).
	if dctcp < 0.2 {
		t.Fatalf("DCTCP incast goodput %.3f fully collapsed", dctcp)
	}
}

func TestDCTCPAlphaConverges(t *testing.T) {
	// Under persistent congestion alpha must move off zero; without
	// any marks it must stay zero.
	st := dctcpNet(3)
	sys := NewSystem(st.Net, DCTCPConfig())
	sys.StartFlow(1, 0, 4<<20, nil)
	sys.StartFlow(2, 0, 4<<20, nil)
	snd := sys.Agents[1].senders[0]
	st.Net.Eng.RunUntil(20 * time.Millisecond)
	if snd.alpha == 0 {
		t.Fatal("alpha never updated under persistent congestion")
	}

	st2 := dctcpNet(2)
	sys2 := NewSystem(st2.Net, DCTCPConfig())
	sys2.StartFlow(0, 1, 1<<20, nil)
	snd2 := sys2.Agents[0].senders[0]
	st2.Net.Eng.Run()
	if snd2.alpha != 0 {
		t.Fatalf("alpha = %v for an uncontended flow", snd2.alpha)
	}
}

func TestECNMarkingOnlyWhenEnabled(t *testing.T) {
	// Standard TCP segments (not ECN-capable) must never be marked,
	// even on marking queues.
	st := dctcpNet(3)
	sys := NewSystem(st.Net, TunedConfig()) // ECN-capable off
	done := 0
	sys.StartFlow(1, 0, 2<<20, func(r FlowResult) { done++ })
	sys.StartFlow(2, 0, 2<<20, func(r FlowResult) { done++ })
	st.Net.Eng.Run()
	if done != 2 {
		t.Fatal("flows incomplete")
	}
	if st.Net.QueueTotals().Marked != 0 {
		t.Fatal("non-ECN-capable packets were marked")
	}
}
