package tcpsim

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

func TestBlackholeBacksOffAndNeverCompletes(t *testing.T) {
	// A route to nowhere: the sender must keep backing off its RTO
	// without completing, wedging, or flooding the event queue.
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	n := netsim.New(cfg)
	a := n.AddHost()
	sw := n.AddSwitch("s0")
	n.Connect(a, sw)
	sw.Route = func(pkt *netsim.Packet) []int { return nil } // blackhole

	sys := NewSystem(n, TunedConfig())
	completed := false
	sys.StartFlow(0, 0, 1<<20, func(r FlowResult) { completed = true })
	n.Eng.RunUntil(2 * time.Second)
	if completed {
		t.Fatal("flow through a blackhole completed")
	}
	snd := sys.Agents[0].senders[0]
	if snd == nil {
		t.Fatal("sender state vanished")
	}
	if snd.timeouts < 3 {
		t.Fatalf("only %d RTOs in 2s of blackhole", snd.timeouts)
	}
	if snd.backoff != sys.Cfg.MaxBackoff {
		t.Fatalf("backoff = %d, want capped at %d", snd.backoff, sys.Cfg.MaxBackoff)
	}
	// Event volume must stay tiny (exponential backoff, not a spin).
	if n.Eng.Processed() > 10000 {
		t.Fatalf("%d events processed for a blackholed flow", n.Eng.Processed())
	}
}

func TestDisjointDirectionsDoNotRetransmit(t *testing.T) {
	// Two flows in opposite directions between the same host pair use
	// disjoint simplex links end to end (full-duplex model): neither
	// may lose a packet or retransmit.
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	ft, _ := topology.NewFatTree(4, cfg)
	sys := NewSystem(ft.Net, DefaultConfig())
	var res []FlowResult
	sys.StartFlow(0, 15, 256<<10, func(r FlowResult) { res = append(res, r) })
	sys.StartFlow(15, 0, 256<<10, func(r FlowResult) { res = append(res, r) })
	ft.Net.Eng.Run()
	if len(res) != 2 {
		t.Fatalf("%d/2 flows completed", len(res))
	}
	for _, r := range res {
		if r.Retransmits != 0 || r.Timeouts != 0 {
			t.Fatalf("flow %d->%d retransmitted (%d rtx, %d RTO) on a clean full-duplex path",
				r.Src, r.Dst, r.Retransmits, r.Timeouts)
		}
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	st := tcpNet(2)
	sys := NewSystem(st.Net, DefaultConfig())
	var got FlowResult
	sys.StartFlow(0, 1, 1<<20, func(r FlowResult) { got = r })
	snd := sys.Agents[0].senders[0]
	st.Net.Eng.Run()
	_ = got
	// Base star RTT is ~65µs, but the flow's own slow-start burst
	// queues at its NIC, legitimately inflating sampled RTT
	// (self-induced bufferbloat). Assert the estimate is positive,
	// at least the propagation floor, and far below the RTOmin it
	// protects against.
	if snd.srtt < 40*time.Microsecond || snd.srtt > 50*time.Millisecond {
		t.Fatalf("srtt = %v, want within [40µs, 50ms]", snd.srtt)
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	// Stress: 50 concurrent flows criss-crossing a fat-tree must all
	// finish (no lost timers, no stuck recoveries).
	cfg := netsim.DefaultConfig()
	cfg.Trimming = false
	ft, _ := topology.NewFatTree(4, cfg)
	sys := NewSystem(ft.Net, TunedConfig())
	done := 0
	for i := 0; i < 50; i++ {
		src := i % ft.NumHosts()
		dst := (i*7 + 3) % ft.NumHosts()
		if src == dst {
			dst = (dst + 1) % ft.NumHosts()
		}
		sys.StartFlow(src, dst, 128<<10, func(r FlowResult) { done++ })
	}
	ft.Net.Eng.Run()
	if done != 50 {
		t.Fatalf("%d/50 flows completed", done)
	}
}

func TestZeroByteFlowStillCompletes(t *testing.T) {
	st := tcpNet(2)
	sys := NewSystem(st.Net, DefaultConfig())
	ok := false
	sys.StartFlow(0, 1, 0, func(r FlowResult) { ok = true })
	st.Net.Eng.Run()
	if !ok {
		t.Fatal("zero-byte flow never completed")
	}
}
