package netsim

// Queue is an egress queue discipline. Enqueue may mutate the packet
// (trimming) and reports whether the packet was kept in any form;
// Dequeue returns nil when empty.
type Queue interface {
	Enqueue(p *Packet) bool
	Dequeue() *Packet
	Len() int
	Stats() QueueStats
}

// QueueStats counts what happened to packets at this queue, plus the
// two fault counters. Queue disciplines themselves never fill the
// fault fields: Port.QueueStats fills LinkDrops (that port's Lost),
// and Network.QueueTotals additionally aggregates per-switch
// RouteDrops blackholes and host-NIC losses.
type QueueStats struct {
	Enqueued   int64
	Dropped    int64
	Trimmed    int64
	Marked     int64
	RouteDrops int64
	LinkDrops  int64
}

// fifo is a slice-backed ring-free FIFO; head compaction keeps
// amortised cost O(1) without a container dependency.
type fifo struct {
	buf  []*Packet
	head int
}

func (f *fifo) push(p *Packet) { f.buf = append(f.buf, p) }

func (f *fifo) pop() *Packet {
	if f.head >= len(f.buf) {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.buf) - f.head }

// DropTail is the classic single FIFO with a packet-count capacity —
// the TCP baseline's switch queue. With a non-zero mark threshold it
// additionally sets the CE codepoint on ECN-capable packets when the
// instantaneous occupancy reaches the threshold (DCTCP-style marking,
// Alizadeh et al., SIGCOMM 2010).
type DropTail struct {
	cap   int
	markK int
	q     fifo
	stats QueueStats
}

// NewDropTail returns a drop-tail queue holding at most capacity
// packets.
func NewDropTail(capacity int) *DropTail {
	return &DropTail{cap: capacity}
}

// NewECNDropTail returns a drop-tail queue that marks ECN-capable
// packets once occupancy reaches markThreshold packets.
func NewECNDropTail(capacity, markThreshold int) *DropTail {
	return &DropTail{cap: capacity, markK: markThreshold}
}

func (d *DropTail) Enqueue(p *Packet) bool {
	if d.q.len() >= d.cap {
		d.stats.Dropped++
		return false
	}
	if d.markK > 0 && p.ECNCapable && d.q.len() >= d.markK {
		p.ECNMarked = true
		d.stats.Marked++
	}
	d.q.push(p)
	d.stats.Enqueued++
	return true
}

func (d *DropTail) Dequeue() *Packet  { return d.q.pop() }
func (d *DropTail) Len() int          { return d.q.len() }
func (d *DropTail) Stats() QueueStats { return d.stats }

// TrimQueue is NDP's switch queue: a very short data queue plus a
// larger strict-priority header queue. When the data queue is full an
// arriving data packet is trimmed to its header and queued with
// priority, so the receiver learns of the loss within one RTT instead
// of waiting for a timeout; headers, pulls and acks always use the
// priority queue. This is the mechanism the paper credits for
// Polyraptor's Incast elimination and shallow-buffer operation.
type TrimQueue struct {
	dataCap   int
	headerCap int
	data      fifo
	header    fifo
	stats     QueueStats
}

// NewTrimQueue returns an NDP-style queue. dataCap is deliberately
// small (NDP uses 8 full-size packets); headerCap bounds the priority
// queue (headers are 64B, so even hundreds occupy little buffer).
func NewTrimQueue(dataCap, headerCap int) *TrimQueue {
	return &TrimQueue{dataCap: dataCap, headerCap: headerCap}
}

func (t *TrimQueue) Enqueue(p *Packet) bool {
	if p.priority() {
		if t.header.len() >= t.headerCap {
			t.stats.Dropped++
			return false
		}
		t.header.push(p)
		t.stats.Enqueued++
		return true
	}
	if t.data.len() >= t.dataCap {
		// Trim: payload is cut, header survives with priority.
		if t.header.len() >= t.headerCap {
			t.stats.Dropped++
			return false
		}
		p.trim()
		t.header.push(p)
		t.stats.Trimmed++
		t.stats.Enqueued++
		return true
	}
	t.data.push(p)
	t.stats.Enqueued++
	return true
}

func (t *TrimQueue) Dequeue() *Packet {
	if p := t.header.pop(); p != nil {
		return p
	}
	return t.data.pop()
}

func (t *TrimQueue) Len() int          { return t.data.len() + t.header.len() }
func (t *TrimQueue) Stats() QueueStats { return t.stats }
