package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestECNMarkingThreshold(t *testing.T) {
	q := NewECNDropTail(10, 3)
	// First three packets enqueue below the threshold: no marks.
	for i := 0; i < 3; i++ {
		p := &Packet{Kind: KindData, Size: DataSize, ECNCapable: true}
		if !q.Enqueue(p) || p.ECNMarked {
			t.Fatalf("packet %d marked below threshold", i)
		}
	}
	// Subsequent packets see occupancy >= 3: marked.
	p := &Packet{Kind: KindData, Size: DataSize, ECNCapable: true}
	q.Enqueue(p)
	if !p.ECNMarked {
		t.Fatal("packet at threshold not marked")
	}
	if q.Stats().Marked != 1 {
		t.Fatalf("Marked = %d", q.Stats().Marked)
	}
}

func TestECNIgnoresNonCapable(t *testing.T) {
	q := NewECNDropTail(10, 1)
	q.Enqueue(&Packet{Kind: KindData, Size: DataSize})
	p := &Packet{Kind: KindData, Size: DataSize} // not ECN-capable
	q.Enqueue(p)
	if p.ECNMarked || q.Stats().Marked != 0 {
		t.Fatal("non-capable packet marked")
	}
}

func TestECNStillDropsAtCapacity(t *testing.T) {
	q := NewECNDropTail(2, 1)
	for i := 0; i < 5; i++ {
		q.Enqueue(&Packet{Kind: KindData, Size: DataSize, ECNCapable: true})
	}
	if q.Stats().Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", q.Stats().Dropped)
	}
}

func TestPlainDropTailNeverMarks(t *testing.T) {
	q := NewDropTail(2)
	p := &Packet{Kind: KindData, Size: DataSize, ECNCapable: true}
	q.Enqueue(&Packet{Kind: KindData, Size: DataSize, ECNCapable: true})
	q.Enqueue(p)
	if p.ECNMarked {
		t.Fatal("plain drop-tail marked a packet")
	}
}

func TestSetRateChangesSerialization(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, sw := twoHosts(cfg)
	var at time.Duration
	b.Deliver = func(p *Packet) { at = n.Now() }
	// Degrade the switch->b port to 100 Mbps: its serialization grows
	// from 12 µs to 120 µs; total = host ser 12 + sw ser 120 + 2x10 prop.
	sw.Ports[1].SetRate(1e8)
	if sw.Ports[1].Rate() != 1e8 {
		t.Fatal("Rate not updated")
	}
	a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1})
	n.Eng.Run()
	want := 12*time.Microsecond + 120*time.Microsecond + 20*time.Microsecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSetRateRejectsNonPositive(t *testing.T) {
	cfg := DefaultConfig()
	_, _, _, sw := twoHosts(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRate(0) did not panic")
		}
	}()
	sw.Ports[0].SetRate(0)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData: "data", KindPull: "pull", KindAck: "ack", KindCtrl: "ctrl",
		Kind(99): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestPortCounters(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, sw := twoHosts(cfg)
	b.Deliver = func(p *Packet) {}
	for i := 0; i < 5; i++ {
		a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1})
	}
	n.Eng.Run()
	out := sw.Ports[1]
	if out.TxPackets != 5 || out.TxBytes != 5*DataSize {
		t.Fatalf("port counters: %d pkts / %d bytes", out.TxPackets, out.TxBytes)
	}
}

func TestTrimQueuePropertyNeverExceedsCaps(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewTrimQueue(4, 6)
		for _, op := range ops {
			if op%3 == 0 {
				q.Dequeue()
				continue
			}
			pkt := &Packet{Kind: KindData, Size: DataSize}
			if op%3 == 2 {
				pkt.Kind = KindPull
				pkt.Size = HeaderSize
			}
			q.Enqueue(pkt)
			if q.Len() > 4+6 {
				return false
			}
		}
		st := q.Stats()
		return st.Enqueued >= 0 && st.Dropped >= 0 && st.Trimmed >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
