package netsim

import (
	"testing"
	"time"

	"polyraptor/internal/sim"
)

// twoHosts builds host-A -- switch -- host-B with the given config.
func twoHosts(cfg Config) (*Network, *Host, *Host, *Switch) {
	n := New(cfg)
	a := n.AddHost()
	b := n.AddHost()
	sw := n.AddSwitch("s0")
	n.Connect(a, sw)
	_, sb := n.Connect(sw, b)
	_ = sb
	// Route: dst 0 -> port 0 (a side), dst 1 -> port 1 (b side).
	sw.Route = func(pkt *Packet) []int {
		return []int{int(pkt.Dst)}
	}
	return n, a, b, sw
}

func TestUnicastDelivery(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, _ := twoHosts(cfg)
	var got *Packet
	var at sim.Time
	b.Deliver = func(p *Packet) { got, at = p, n.Now() }
	a.Send(&Packet{Flow: 1, Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1})
	n.Eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// Two hops: 2 serializations (12 µs each at 1 Gbps/1500B) + 2
	// propagation delays (10 µs each) = 44 µs.
	want := 44 * time.Microsecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSerializationTimeScalesWithSize(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, _ := twoHosts(cfg)
	var at sim.Time
	b.Deliver = func(p *Packet) { at = n.Now() }
	a.Send(&Packet{Kind: KindAck, Size: HeaderSize, Src: 0, Dst: 1, Group: -1})
	n.Eng.Run()
	// 64B at 1 Gbps = 512 ns per hop; 2 hops + 20 µs propagation.
	want := sim.Time(2*512) + 20*time.Microsecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

// star builds n sender hosts and one receiver all attached to a single
// switch; the receiver's egress port is the congestion point. The
// receiver is host index 0 and its switch port is 0.
func star(cfg Config, senders int) (*Network, []*Host, *Host, *Switch) {
	n := New(cfg)
	sw := n.AddSwitch("s0")
	recv := n.AddHost()
	n.Connect(sw, recv) // switch port 0
	srcs := make([]*Host, senders)
	for i := range srcs {
		srcs[i] = n.AddHost()
		n.Connect(srcs[i], sw) // sender side; switch ports 1..n
	}
	sw.Route = func(pkt *Packet) []int {
		if pkt.Dst == recv.ID {
			return []int{0}
		}
		return nil
	}
	return n, srcs, recv, sw
}

func TestDropTailDropsWhenFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trimming = false
	cfg.DropTailCap = 4
	n, srcs, recv, sw := star(cfg, 8)
	delivered := 0
	recv.Deliver = func(p *Packet) { delivered++ }
	// Eight senders each burst 5 packets that converge on one port.
	for _, s := range srcs {
		for i := 0; i < 5; i++ {
			s.Send(&Packet{Kind: KindData, Size: DataSize, Src: s.ID, Dst: recv.ID, Group: -1, Seq: int64(i)})
		}
	}
	n.Eng.Run()
	if delivered >= 40 {
		t.Fatalf("no drops despite 8-into-1 overload: delivered=%d", delivered)
	}
	st := sw.Ports[0].QueueStats()
	if st.Dropped == 0 {
		t.Fatal("drop-tail queue recorded no drops")
	}
	if st.Trimmed != 0 {
		t.Fatal("drop-tail queue must never trim")
	}
}

func TestTrimQueueTrimsInsteadOfDropping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataQueueCap = 2
	n, srcs, recv, sw := star(cfg, 8)
	full, trimmed := 0, 0
	recv.Deliver = func(p *Packet) {
		if p.Trimmed {
			trimmed++
			if p.Size != HeaderSize {
				t.Errorf("trimmed packet has size %d", p.Size)
			}
			if p.Kind != KindData {
				t.Errorf("trimmed packet changed kind to %v", p.Kind)
			}
		} else {
			full++
		}
	}
	total := 0
	for _, s := range srcs {
		for i := 0; i < 5; i++ {
			s.Send(&Packet{Kind: KindData, Size: DataSize, Src: s.ID, Dst: recv.ID, Group: -1, Seq: int64(i)})
			total++
		}
	}
	n.Eng.Run()
	if trimmed == 0 {
		t.Fatal("no packets were trimmed under overload")
	}
	if full+trimmed != total {
		t.Fatalf("full=%d + trimmed=%d != %d (headers must survive)", full, trimmed, total)
	}
	st := sw.Ports[0].QueueStats()
	if st.Trimmed != int64(trimmed) {
		t.Fatalf("switch counted %d trims, receiver saw %d", st.Trimmed, trimmed)
	}
}

func TestPriorityQueueServesHeadersFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataQueueCap = 50
	n, srcs, recv, _ := star(cfg, 2)
	var order []Kind
	recv.Deliver = func(p *Packet) { order = append(order, p.Kind) }
	// Sender 0 bursts data that queues at the receiver port; sender 1's
	// pull arrives while data is queued and must overtake it.
	for i := 0; i < 6; i++ {
		srcs[0].Send(&Packet{Kind: KindData, Size: DataSize, Src: srcs[0].ID, Dst: recv.ID, Group: -1})
	}
	srcs[1].Send(&Packet{Kind: KindPull, Size: HeaderSize, Src: srcs[1].ID, Dst: recv.ID, Group: -1})
	n.Eng.Run()
	if len(order) != 7 {
		t.Fatalf("delivered %d packets", len(order))
	}
	pos := -1
	for i, k := range order {
		if k == KindPull {
			pos = i
		}
	}
	if pos == len(order)-1 {
		t.Fatalf("pull did not overtake any data packet: order=%v", order)
	}
}

func TestFlowHashStablePerFlowAndSpreadAcrossFlows(t *testing.T) {
	h1 := flowHash(7, 0)
	if h1 != flowHash(7, 0) {
		t.Fatal("flowHash not deterministic")
	}
	buckets := map[uint32]int{}
	for f := int32(0); f < 1000; f++ {
		buckets[flowHash(f, 0)%4]++
	}
	for b, c := range buckets {
		if c < 150 || c > 350 {
			t.Fatalf("ECMP bucket %d has %d/1000 flows; want rough balance", b, c)
		}
	}
}

func TestMulticastReplication(t *testing.T) {
	// one sender host, one switch, three receiver hosts
	cfg := DefaultConfig()
	n := New(cfg)
	src := n.AddHost()
	sw := n.AddSwitch("s0")
	n.Connect(src, sw) // switch port 0
	recvs := make([]*Host, 3)
	got := make([]int, 3)
	for i := range recvs {
		recvs[i] = n.AddHost()
		n.Connect(sw, recvs[i]) // ports 1..3
		idx := i
		recvs[i].Deliver = func(p *Packet) {
			got[idx]++
			if p.Group != 5 {
				t.Errorf("receiver %d got group %d", idx, p.Group)
			}
			if p.Size != DataSize {
				t.Errorf("receiver %d got size %d", idx, p.Size)
			}
		}
	}
	sw.Mcast[5] = []int{1, 2, 3}
	src.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Group: 5})
	n.Eng.Run()
	for i, c := range got {
		if c != 1 {
			t.Fatalf("receiver %d got %d copies", i, c)
		}
	}
}

func TestMulticastClonesAreIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataQueueCap = 1
	n := New(cfg)
	src := n.AddHost()
	sw := n.AddSwitch("s0")
	n.Connect(src, sw)
	a := n.AddHost()
	bHost := n.AddHost()
	n.Connect(sw, a)
	n.Connect(sw, bHost)
	sw.Mcast[1] = []int{1, 2}
	trimsSeen := map[int32]int{}
	a.Deliver = func(p *Packet) {
		if p.Trimmed {
			trimsSeen[a.ID]++
		}
	}
	bHost.Deliver = func(p *Packet) {
		if p.Trimmed {
			trimsSeen[bHost.ID]++
		}
	}
	// Two back-to-back multicast packets: with dataCap=1, the second
	// is trimmed on each egress independently; a shared packet struct
	// would corrupt the sibling copy.
	src.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Group: 1, Seq: 1})
	src.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Group: 1, Seq: 2})
	n.Eng.Run()
	_ = trimsSeen
}

func TestSprayUsesMultiplePaths(t *testing.T) {
	// host -- sw with two parallel "uplink" candidates, counted by port.
	cfg := DefaultConfig()
	n := New(cfg)
	h := n.AddHost()
	sw := n.AddSwitch("s0")
	n.Connect(h, sw) // port 0
	up1 := n.AddHost()
	up2 := n.AddHost()
	n.Connect(sw, up1) // port 1
	n.Connect(sw, up2) // port 2
	sw.Route = func(pkt *Packet) []int { return []int{1, 2} }
	c1, c2 := 0, 0
	up1.Deliver = func(p *Packet) { c1++ }
	up2.Deliver = func(p *Packet) { c2++ }
	for i := 0; i < 200; i++ {
		h.Send(&Packet{Kind: KindData, Size: HeaderSize, Src: 0, Dst: 99, Group: -1, Spray: true, Seq: int64(i)})
	}
	n.Eng.Run()
	if c1 == 0 || c2 == 0 {
		t.Fatalf("spraying used one path only: %d/%d", c1, c2)
	}
	// Per-flow hashing must pin all packets of a flow to one path.
	c1, c2 = 0, 0
	for i := 0; i < 50; i++ {
		h.Send(&Packet{Flow: 9, Kind: KindData, Size: HeaderSize, Src: 0, Dst: 99, Group: -1, Spray: false})
	}
	n.Eng.Run()
	if c1 != 0 && c2 != 0 {
		t.Fatalf("per-flow ECMP split a single flow: %d/%d", c1, c2)
	}
}

func TestHostSendWithoutNICPanics(t *testing.T) {
	n := New(DefaultConfig())
	h := n.AddHost()
	defer func() {
		if recover() == nil {
			t.Fatal("Send on unconnected host did not panic")
		}
	}()
	h.Send(&Packet{})
}

func TestQueueTotalsAggregate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataQueueCap = 1
	n, srcs, recv, _ := star(cfg, 4)
	recv.Deliver = func(p *Packet) {}
	for _, s := range srcs {
		for i := 0; i < 5; i++ {
			s.Send(&Packet{Kind: KindData, Size: DataSize, Src: s.ID, Dst: recv.ID, Group: -1})
		}
	}
	n.Eng.Run()
	tot := n.QueueTotals()
	if tot.Enqueued == 0 {
		t.Fatal("no switch enqueues counted")
	}
	if tot.Trimmed == 0 {
		t.Fatal("expected trims under converging burst with dataCap=1")
	}
}

func TestFIFOCompaction(t *testing.T) {
	var f fifo
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			f.push(&Packet{Seq: int64(i)})
		}
		for i := 0; i < 100; i++ {
			p := f.pop()
			if p == nil || p.Seq != int64(i) {
				t.Fatalf("round %d: pop %d = %+v", round, i, p)
			}
		}
		if f.pop() != nil {
			t.Fatal("pop on empty fifo")
		}
	}
	if len(f.buf) > 128 {
		t.Fatalf("fifo failed to compact: len(buf)=%d", len(f.buf))
	}
}
