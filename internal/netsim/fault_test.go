package netsim

import (
	"testing"
	"time"

	"polyraptor/internal/sim"
)

// Fault-injection regression tests: the Port/Switch dynamics the chaos
// engine leans on — link down mid-serialization, SetRate mid-run,
// recovery re-kick, live-candidate filtering and blackhole counting.

func TestRouteDropsCountsBlackholedPackets(t *testing.T) {
	cfg := DefaultConfig()
	n, srcs, recv, sw := star(cfg, 2)
	delivered := 0
	recv.Deliver = func(p *Packet) { delivered++ }
	// Dst 99 has no route: the star Route helper returns nil.
	srcs[0].Send(&Packet{Kind: KindData, Size: DataSize, Src: srcs[0].ID, Dst: 99, Group: -1})
	srcs[0].Send(&Packet{Kind: KindData, Size: DataSize, Src: srcs[0].ID, Dst: recv.ID, Group: -1})
	srcs[1].Send(&Packet{Kind: KindData, Size: DataSize, Src: srcs[1].ID, Dst: 99, Group: -1})
	n.Eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d routable packets, want 1", delivered)
	}
	if sw.RouteDrops != 2 {
		t.Fatalf("switch RouteDrops = %d, want 2", sw.RouteDrops)
	}
	tot := n.QueueTotals()
	if tot.RouteDrops != 2 {
		t.Fatalf("QueueTotals().RouteDrops = %d, want 2", tot.RouteDrops)
	}
}

func TestPortDownMidSerializationCutsFrameAndRecoveryRekicks(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, _ := twoHosts(cfg)
	delivered := 0
	b.Deliver = func(p *Packet) { delivered++ }
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1, Seq: int64(i)})
	}
	// Full-size frame serializes in 12 µs at 1 Gbps; fail the link while
	// the first frame is on the wire.
	n.Eng.RunUntil(5 * time.Microsecond)
	a.NIC.SetUp(false)
	n.Eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets across a dead link", delivered)
	}
	if a.NIC.Lost != 1 {
		t.Fatalf("cut frame: Lost = %d, want 1", a.NIC.Lost)
	}
	if a.NIC.TxPackets != 0 {
		t.Fatalf("cut frame still counted as transmitted: TxPackets = %d", a.NIC.TxPackets)
	}
	if got := a.NIC.QueueLen(); got != 2 {
		t.Fatalf("queue parked %d packets while down, want 2", got)
	}
	// A send attempted while the link is down is dropped at the
	// interface, not queued.
	a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1, Seq: 9})
	if a.NIC.Lost != 2 {
		t.Fatalf("send on down link: Lost = %d, want 2", a.NIC.Lost)
	}
	if got := a.NIC.QueueLen(); got != 2 {
		t.Fatalf("send on down link was queued: QueueLen = %d", got)
	}
	// Recovery re-kicks the transmitter and drains the parked queue.
	a.NIC.SetUp(true)
	n.Eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d packets after recovery, want 2", delivered)
	}
	if tot := n.QueueTotals(); tot.LinkDrops != 2 {
		t.Fatalf("QueueTotals().LinkDrops = %d, want 2", tot.LinkDrops)
	}
}

// TestFastFlapStillCutsInFlightFrame: a down->up cycle completing
// within one frame's serialization time must still lose that frame —
// the cut is recorded when the link goes down, not inferred from the
// link state at serialization end.
func TestFastFlapStillCutsInFlightFrame(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, _ := twoHosts(cfg)
	delivered := 0
	b.Deliver = func(p *Packet) { delivered++ }
	a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1, Seq: 0})
	a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1, Seq: 1})
	// Frame 0 serializes over [0, 12 µs); flap down at 4 µs and back
	// up at 6 µs — the link is up again before serialization ends.
	n.Eng.RunUntil(4 * time.Microsecond)
	a.NIC.SetUp(false)
	n.Eng.RunUntil(6 * time.Microsecond)
	a.NIC.SetUp(true)
	n.Eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d frames, want 1 (flapped frame must be cut, next frame must flow)", delivered)
	}
	if a.NIC.Lost != 1 {
		t.Fatalf("Lost = %d, want 1", a.NIC.Lost)
	}
}

func TestSetRateMidRunAffectsLaterFrames(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, _ := twoHosts(cfg)
	var at []sim.Time
	b.Deliver = func(p *Packet) { at = append(at, n.Now()) }
	a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1, Seq: 0})
	a.Send(&Packet{Kind: KindData, Size: DataSize, Src: 0, Dst: 1, Group: -1, Seq: 1})
	// Halve the NIC rate while frame 0 is serializing: frame 0 keeps its
	// in-flight 12 µs serialization; frame 1 starts after the call and
	// takes 24 µs.
	n.Eng.RunUntil(1 * time.Microsecond)
	a.NIC.SetRate(cfg.LinkRate / 2)
	n.Eng.Run()
	if len(at) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(at))
	}
	// Frame 0: 12 µs NIC + 10 µs prop + 12 µs switch + 10 µs prop.
	if want := 44 * time.Microsecond; at[0] != want {
		t.Fatalf("frame 0 delivered at %v, want %v", at[0], want)
	}
	// Frame 1: NIC 12..36 µs at the halved rate, switch egress idle by
	// arrival (46 µs), so 46 + 12 + 10.
	if want := 68 * time.Microsecond; at[1] != want {
		t.Fatalf("frame 1 delivered at %v, want %v (SetRate must only affect later frames)", at[1], want)
	}
}

// forkTopology is host -> swA with two switch uplinks (swB, swC), each
// feeding its own leaf host — the minimal fabric for candidate
// filtering: swA.Route offers both uplinks as equal cost.
func forkTopology(cfg Config) (n *Network, src *Host, swA, swB, swC *Switch, leafB, leafC *Host) {
	n = New(cfg)
	src = n.AddHost()
	swA = n.AddSwitch("swA")
	swB = n.AddSwitch("swB")
	swC = n.AddSwitch("swC")
	n.Connect(src, swA) // swA port 0
	n.Connect(swA, swB) // swA port 1, swB port 0
	n.Connect(swA, swC) // swA port 2, swC port 0
	leafB = n.AddHost()
	leafC = n.AddHost()
	n.Connect(swB, leafB) // swB port 1
	n.Connect(swC, leafC) // swC port 1
	swA.Route = func(pkt *Packet) []int { return []int{1, 2} }
	swB.Route = func(pkt *Packet) []int { return []int{1} }
	swC.Route = func(pkt *Packet) []int { return []int{1} }
	return
}

func TestDownPortFilteredFromCandidates(t *testing.T) {
	n, src, swA, _, _, leafB, leafC := forkTopology(DefaultConfig())
	gotB, gotC := 0, 0
	leafB.Deliver = func(p *Packet) { gotB++ }
	leafC.Deliver = func(p *Packet) { gotC++ }
	// Per-flow ECMP: find a flow that hashes onto port 1 (toward swB).
	var flow int32
	for flow = 0; ; flow++ {
		if flowHash(flow, 0)%2 == 0 {
			break
		}
	}
	src.Send(&Packet{Flow: flow, Kind: KindData, Size: HeaderSize, Src: 0, Dst: 9, Group: -1})
	n.Eng.Run()
	if gotB != 1 || gotC != 0 {
		t.Fatalf("flow did not hash to swB: B=%d C=%d", gotB, gotC)
	}
	// Take the swA->swB link down: the ECMP group shrinks and the same
	// flow rehashes onto the surviving uplink instead of blackholing.
	swA.Ports[1].SetUp(false)
	src.Send(&Packet{Flow: flow, Kind: KindData, Size: HeaderSize, Src: 0, Dst: 9, Group: -1})
	n.Eng.Run()
	if gotC != 1 {
		t.Fatalf("flow was not rerouted onto the live uplink: B=%d C=%d", gotB, gotC)
	}
	if swA.RouteDrops != 0 {
		t.Fatalf("live candidate remained but RouteDrops = %d", swA.RouteDrops)
	}
}

func TestKilledSwitchFilteredAndBlackholing(t *testing.T) {
	n, src, swA, swB, swC, leafB, leafC := forkTopology(DefaultConfig())
	gotB, gotC := 0, 0
	leafB.Deliver = func(p *Packet) { gotB++ }
	leafC.Deliver = func(p *Packet) { gotC++ }
	send := func(k int) {
		for i := 0; i < k; i++ {
			src.Send(&Packet{Kind: KindData, Size: HeaderSize, Src: 0, Dst: 9, Group: -1, Spray: true, Seq: int64(i)})
		}
		n.Eng.Run()
	}
	send(40)
	if gotB == 0 || gotC == 0 {
		t.Fatalf("spray did not use both uplinks: B=%d C=%d", gotB, gotC)
	}
	// Kill swB: swA must filter it from the candidate set (local
	// link-state reaction) and deliver everything via swC.
	swB.SetDown(true)
	b0, c0 := gotB, gotC
	send(40)
	if gotB != b0 {
		t.Fatalf("packets still delivered through a killed switch: B %d -> %d", b0, gotB)
	}
	if gotC != c0+40 {
		t.Fatalf("survivor uplink got %d/40 packets", gotC-c0)
	}
	// Kill swC too: no live candidate remains, so swA blackholes.
	swC.SetDown(true)
	send(10)
	if swA.RouteDrops != 10 {
		t.Fatalf("swA.RouteDrops = %d, want 10", swA.RouteDrops)
	}
	// A packet that reaches a killed switch directly is blackholed
	// there (in-flight arrivals during the kill).
	swB.SetDown(false)
	send(5) // all five go via swB (swC still dead)
	if gotB != b0+5 {
		t.Fatalf("restored switch did not carry traffic: B=%d want %d", gotB, b0+5)
	}
}

func TestLossyLinkDropsAboutTheConfiguredFraction(t *testing.T) {
	cfg := DefaultConfig()
	n, a, b, _ := twoHosts(cfg)
	delivered := 0
	b.Deliver = func(p *Packet) { delivered++ }
	a.NIC.SetLossRate(0.5)
	const sent = 400
	for i := 0; i < sent; i++ {
		a.Send(&Packet{Kind: KindData, Size: HeaderSize, Src: 0, Dst: 1, Group: -1, Seq: int64(i)})
	}
	n.Eng.Run()
	if delivered < sent/4 || delivered > sent*3/4 {
		t.Fatalf("delivered %d/%d at loss rate 0.5", delivered, sent)
	}
	if a.NIC.Lost != int64(sent-delivered) {
		t.Fatalf("Lost = %d, want %d", a.NIC.Lost, sent-delivered)
	}
	a.NIC.SetLossRate(0) // clean link again
	delivered = 0
	for i := 0; i < 50; i++ {
		a.Send(&Packet{Kind: KindData, Size: HeaderSize, Src: 0, Dst: 1, Group: -1})
	}
	n.Eng.Run()
	if delivered != 50 {
		t.Fatalf("recovered link delivered %d/50", delivered)
	}
}

func TestSetLossRateValidation(t *testing.T) {
	n, a, _, _ := twoHosts(DefaultConfig())
	_ = n
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetLossRate(%v) did not panic", bad)
				}
			}()
			a.NIC.SetLossRate(bad)
		}()
	}
}
