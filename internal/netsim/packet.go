// Package netsim is a packet-level data-centre network simulator built
// on the discrete-event engine in internal/sim. It models
// store-and-forward output-queued switches with either classic
// drop-tail queues (the TCP baseline) or NDP's two-queue architecture —
// a short data queue plus a priority header queue with packet trimming
// (Handley et al., SIGCOMM 2017) — which Polyraptor adopts. Unicast
// forwarding supports per-flow ECMP hashing and per-packet spraying
// over equal-cost paths; multicast forwarding replicates packets along
// per-group directed trees, the paper's "native support for
// multicasting".
package netsim

import "polyraptor/internal/sim"

// Kind classifies packets for queueing and protocol dispatch.
type Kind uint8

const (
	// KindData carries payload (a symbol or a TCP segment).
	KindData Kind = iota
	// KindPull is a Polyraptor pull request (receiver -> sender).
	KindPull
	// KindAck is an acknowledgement (TCP ACK or Polyraptor control).
	KindAck
	// KindCtrl is session control (establishment, completion).
	KindCtrl
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindPull:
		return "pull"
	case KindAck:
		return "ack"
	case KindCtrl:
		return "ctrl"
	}
	return "unknown"
}

// Wire sizes in bytes. DataSize is a full-MTU packet whose payload
// (PayloadSize) is an encoding symbol or TCP segment; HeaderSize is a
// trimmed data packet, and also the size of pulls and acks.
const (
	DataSize    = 1500
	HeaderSize  = 64
	PayloadSize = DataSize - HeaderSize // 1436
)

// Packet is the unit of simulation. Packets are passed by pointer and
// owned by the network once sent; multicast replication copies the
// struct.
type Packet struct {
	// Flow identifies the transport session (or TCP subflow).
	Flow int32
	// Kind is the protocol role of the packet.
	Kind Kind
	// Size is the current wire size in bytes (shrinks when trimmed).
	Size int32
	// Src and Dst are host IDs. Dst is ignored for multicast packets.
	Src, Dst int32
	// Group is the multicast group ID, or -1 for unicast.
	Group int32
	// Spray selects per-packet ECMP (true, Polyraptor) versus
	// per-flow hashing (false, TCP).
	Spray bool
	// Trimmed marks a data packet whose payload was cut by an
	// overloaded queue; only the header reached the receiver.
	Trimmed bool
	// Seq is the protocol sequence number (ESI for Polyraptor symbols,
	// byte sequence for TCP).
	Seq int64
	// SBN is the source block number for multi-block objects.
	SBN int32
	// Sender disambiguates the origin in multi-source sessions.
	Sender int32
	// ECNCapable marks the packet as ECN-capable transport (DCTCP
	// data segments).
	ECNCapable bool
	// ECNMarked is set by a queue whose occupancy exceeded its marking
	// threshold (CE codepoint).
	ECNMarked bool
	// ECNEcho is the receiver's echo of a mark back to the sender
	// (carried on ACKs).
	ECNEcho bool
	// Enqueued at origin, used for FCT-style diagnostics.
	Born sim.Time
}

// priority reports whether the packet belongs in the high-priority
// header queue of an NDP switch: control traffic and trimmed headers.
func (p *Packet) priority() bool {
	return p.Trimmed || p.Kind != KindData
}

// trim cuts the payload, leaving a header that still carries all
// addressing and sequencing metadata (NDP's key mechanism: the
// receiver learns what was lost and keeps the control loop tight).
func (p *Packet) trim() {
	p.Trimmed = true
	p.Size = HeaderSize
}

// AllocPacket returns a zeroed packet, reusing one retired via
// FreePacket when possible. The simulation is single-threaded, so a
// plain LIFO free list is both faster and more deterministic than
// sync.Pool (no per-P caches, no GC-cycle eviction). Transports
// allocate every outbound packet here so long experiments run the
// packet path allocation-free at steady state.
func (n *Network) AllocPacket() *Packet {
	if l := len(n.pktFree); l > 0 {
		p := n.pktFree[l-1]
		n.pktFree = n.pktFree[:l-1]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// FreePacket retires a packet to the network's free list. The caller
// must hold the packet's only live reference: the next AllocPacket may
// hand it out again. The network itself retires every packet it
// destroys (down-link and queue drops, cut frames, lossy-link losses,
// blackholes); transports retire delivered packets once dispatch
// returns. Freeing nil is a no-op so drop paths need no guards.
func (n *Network) FreePacket(p *Packet) {
	if p == nil {
		return
	}
	n.pktFree = append(n.pktFree, p)
}

// clonePacket copies p for multicast replication through the pool.
func (n *Network) clonePacket(p *Packet) *Packet {
	cp := n.AllocPacket()
	*cp = *p
	return cp
}
