package netsim

import (
	"fmt"
	"math/rand"

	"polyraptor/internal/sim"
)

// Node receives packets delivered by a link.
type Node interface {
	Receive(p *Packet)
	addPort(p *Port) int
}

// Config sets the physical and queueing parameters of a network. The
// defaults mirror the paper's evaluation: 1 Gbps links, 10 µs
// propagation delay, NDP-style trimming with a shallow data queue.
type Config struct {
	// LinkRate in bits per second.
	LinkRate int64
	// LinkDelay is the one-way propagation delay per link.
	LinkDelay sim.Time
	// Trimming selects the NDP two-queue switch (true, Polyraptor runs)
	// or classic drop-tail (false, TCP baseline).
	Trimming bool
	// DataQueueCap is the switch data-queue capacity in packets when
	// trimming; NDP's canonical value is 8.
	DataQueueCap int
	// HeaderQueueCap bounds the priority header queue.
	HeaderQueueCap int
	// DropTailCap is the switch queue capacity in packets without
	// trimming ("shallow buffers": 100 packets).
	DropTailCap int
	// ECNThreshold, when positive, makes drop-tail switch queues mark
	// ECN-capable packets at this occupancy (DCTCP's K; ~20 packets at
	// 1 Gbps). Zero disables marking.
	ECNThreshold int
	// HostQueueCap is the host NIC egress queue capacity.
	HostQueueCap int
	// Seed drives ECMP spraying and hashing.
	Seed int64
}

// DefaultConfig returns the paper's network parameters.
func DefaultConfig() Config {
	return Config{
		LinkRate:       1e9,
		LinkDelay:      10 * sim.Time(1000), // 10 µs
		Trimming:       true,
		DataQueueCap:   8,
		HeaderQueueCap: 4096, // headers are 64 B; this is only 256 KB of buffer
		DropTailCap:    100,
		HostQueueCap:   4096,
		Seed:           1,
	}
}

// Network owns the simulation engine, hosts and switches.
type Network struct {
	Eng      *sim.Engine
	Cfg      Config
	Hosts    []*Host
	Switches []*Switch
	rng      *rand.Rand
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LinkRate <= 0 {
		panic("netsim: LinkRate must be positive")
	}
	return &Network{
		Eng: sim.NewEngine(),
		Cfg: cfg,
		rng: sim.RNG(cfg.Seed, "ecmp-spray"),
	}
}

// AddHost creates a host. Its NIC port is created by Connect.
func (n *Network) AddHost() *Host {
	h := &Host{ID: int32(len(n.Hosts)), net: n}
	n.Hosts = append(n.Hosts, h)
	return h
}

// AddSwitch creates a switch with the given name (for diagnostics).
func (n *Network) AddSwitch(name string) *Switch {
	s := &Switch{ID: int32(len(n.Switches)), Name: name, net: n, Mcast: map[int32][]int{}}
	n.Switches = append(n.Switches, s)
	return s
}

// switchQueue builds the configured queue discipline for a switch
// egress port.
func (n *Network) switchQueue() Queue {
	if n.Cfg.Trimming {
		return NewTrimQueue(n.Cfg.DataQueueCap, n.Cfg.HeaderQueueCap)
	}
	if n.Cfg.ECNThreshold > 0 {
		return NewECNDropTail(n.Cfg.DropTailCap, n.Cfg.ECNThreshold)
	}
	return NewDropTail(n.Cfg.DropTailCap)
}

// Connect joins two nodes with a full-duplex link (two simplex ports).
// Hosts get a large drop-tail NIC queue (the sender's own buffer);
// switch egress ports get the configured switch discipline. It returns
// the port on a facing b and the port on b facing a.
func (n *Network) Connect(a, b Node) (pa, pb *Port) {
	mk := func(owner, peer Node) *Port {
		var q Queue
		if _, isHost := owner.(*Host); isHost {
			q = NewDropTail(n.Cfg.HostQueueCap)
		} else {
			q = n.switchQueue()
		}
		p := &Port{
			net:   n,
			owner: owner,
			peer:  peer,
			rate:  n.Cfg.LinkRate,
			delay: n.Cfg.LinkDelay,
			queue: q,
		}
		p.index = owner.addPort(p)
		return p
	}
	return mk(a, b), mk(b, a)
}

// QueueTotals aggregates queue statistics across every switch port.
func (n *Network) QueueTotals() QueueStats {
	var total QueueStats
	for _, s := range n.Switches {
		for _, p := range s.Ports {
			st := p.queue.Stats()
			total.Enqueued += st.Enqueued
			total.Dropped += st.Dropped
			total.Trimmed += st.Trimmed
			total.Marked += st.Marked
		}
	}
	return total
}

// Port is a simplex attachment of a node to a link: an egress queue,
// a serialization rate and a propagation delay to the peer node.
type Port struct {
	net   *Network
	owner Node
	peer  Node
	index int
	rate  int64
	delay sim.Time
	queue Queue
	busy  bool

	TxPackets int64
	TxBytes   int64
}

// Index returns the port's position in its owner's port list.
func (p *Port) Index() int { return p.index }

// SetRate overrides the port's transmission rate (bits per second),
// e.g. to model a degraded link or a network hotspot. It affects
// packets whose serialization starts after the call.
func (p *Port) SetRate(bps int64) {
	if bps <= 0 {
		panic("netsim: rate must be positive")
	}
	p.rate = bps
}

// Rate returns the port's current transmission rate in bits/s.
func (p *Port) Rate() int64 { return p.rate }

// Peer returns the node at the far end of the link.
func (p *Port) Peer() Node { return p.peer }

// QueueLen returns the instantaneous queue occupancy in packets.
func (p *Port) QueueLen() int { return p.queue.Len() }

// QueueStats returns the port's queue counters.
func (p *Port) QueueStats() QueueStats { return p.queue.Stats() }

// Send enqueues a packet for transmission.
func (p *Port) Send(pkt *Packet) {
	if !p.queue.Enqueue(pkt) {
		return // dropped; counted by the queue
	}
	p.kick()
}

// kick starts transmitting if the line is idle: serialize for
// size*8/rate, then propagate for delay, then deliver to the peer.
func (p *Port) kick() {
	if p.busy {
		return
	}
	pkt := p.queue.Dequeue()
	if pkt == nil {
		return
	}
	p.busy = true
	tx := sim.Time(int64(pkt.Size) * 8 * 1e9 / p.rate)
	p.net.Eng.After(tx, func() {
		p.busy = false
		p.TxPackets++
		p.TxBytes += int64(pkt.Size)
		p.net.Eng.After(p.delay, func() { p.peer.Receive(pkt) })
		p.kick()
	})
}

// Switch is an output-queued switch. Route supplies the candidate
// egress ports for a unicast packet (equal-cost set); Mcast maps a
// group ID to the egress ports of the group's directed tree at this
// switch.
type Switch struct {
	ID    int32
	Name  string
	net   *Network
	Ports []*Port
	// Route returns the equal-cost candidate egress port indices for a
	// unicast packet. Installed by the topology package.
	Route func(pkt *Packet) []int
	// Mcast maps group -> egress port indices.
	Mcast map[int32][]int
}

func (s *Switch) addPort(p *Port) int {
	s.Ports = append(s.Ports, p)
	return len(s.Ports) - 1
}

// Receive forwards a packet: multicast replication along the group
// tree, or unicast via spraying / per-flow ECMP over the candidate set.
func (s *Switch) Receive(pkt *Packet) {
	if pkt.Group >= 0 {
		outs := s.Mcast[pkt.Group]
		for i, out := range outs {
			if i == len(outs)-1 {
				s.Ports[out].Send(pkt) // last copy moves, not clones
			} else {
				s.Ports[out].Send(pkt.clone())
			}
		}
		return
	}
	if s.Route == nil {
		panic(fmt.Sprintf("netsim: switch %s has no route function", s.Name))
	}
	cands := s.Route(pkt)
	if len(cands) == 0 {
		return // no route: drop
	}
	var out int
	switch {
	case len(cands) == 1:
		out = cands[0]
	case pkt.Spray:
		out = cands[s.net.rng.Intn(len(cands))]
	default:
		out = cands[flowHash(pkt.Flow, pkt.Sender)%uint32(len(cands))]
	}
	s.Ports[out].Send(pkt)
}

// flowHash is a deterministic per-flow ECMP hash (fmix32).
func flowHash(flow, sender int32) uint32 {
	h := uint32(flow)*0x85EBCA6B ^ uint32(sender)*0xC2B2AE35
	h ^= h >> 16
	h *= 0x85EBCA6B
	h ^= h >> 13
	h *= 0xC2B2AE35
	h ^= h >> 16
	return h
}

// Host is an endpoint with a single NIC. Transport protocols register
// a Deliver callback for ingress traffic.
type Host struct {
	ID  int32
	NIC *Port
	net *Network
	// Deliver is invoked for every packet arriving at the host.
	Deliver func(pkt *Packet)
}

func (h *Host) addPort(p *Port) int {
	h.NIC = p
	return 0
}

// Receive hands an arriving packet to the registered transport.
func (h *Host) Receive(pkt *Packet) {
	if h.Deliver != nil {
		h.Deliver(pkt)
	}
}

// Send transmits a packet from this host.
func (h *Host) Send(pkt *Packet) {
	if h.NIC == nil {
		panic("netsim: host is not connected")
	}
	pkt.Born = h.net.Eng.Now()
	h.NIC.Send(pkt)
}

// Now returns the network's current simulated time.
func (n *Network) Now() sim.Time { return n.Eng.Now() }
