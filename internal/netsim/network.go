package netsim

import (
	"fmt"
	"math/rand"

	"polyraptor/internal/metrics"
	"polyraptor/internal/sim"
	"polyraptor/internal/telemetry"
)

// Node receives packets delivered by a link.
type Node interface {
	Receive(p *Packet)
	addPort(p *Port) int
}

// Config sets the physical and queueing parameters of a network. The
// defaults mirror the paper's evaluation: 1 Gbps links, 10 µs
// propagation delay, NDP-style trimming with a shallow data queue.
type Config struct {
	// LinkRate in bits per second.
	LinkRate int64
	// LinkDelay is the one-way propagation delay per link.
	LinkDelay sim.Time
	// Trimming selects the NDP two-queue switch (true, Polyraptor runs)
	// or classic drop-tail (false, TCP baseline).
	Trimming bool
	// DataQueueCap is the switch data-queue capacity in packets when
	// trimming; NDP's canonical value is 8.
	DataQueueCap int
	// HeaderQueueCap bounds the priority header queue.
	HeaderQueueCap int
	// DropTailCap is the switch queue capacity in packets without
	// trimming ("shallow buffers": 100 packets).
	DropTailCap int
	// ECNThreshold, when positive, makes drop-tail switch queues mark
	// ECN-capable packets at this occupancy (DCTCP's K; ~20 packets at
	// 1 Gbps). Zero disables marking.
	ECNThreshold int
	// HostQueueCap is the host NIC egress queue capacity.
	HostQueueCap int
	// Seed drives ECMP spraying and hashing.
	Seed int64
}

// DefaultConfig returns the paper's network parameters.
func DefaultConfig() Config {
	return Config{
		LinkRate:       1e9,
		LinkDelay:      10 * sim.Time(1000), // 10 µs
		Trimming:       true,
		DataQueueCap:   8,
		HeaderQueueCap: 4096, // headers are 64 B; this is only 256 KB of buffer
		DropTailCap:    100,
		HostQueueCap:   4096,
		Seed:           1,
	}
}

// Network owns the simulation engine, hosts and switches.
type Network struct {
	Eng      *sim.Engine
	Cfg      Config
	Hosts    []*Host
	Switches []*Switch
	// Rec is the PolyScope flight recorder; nil (the default) disables
	// tracing. Every layer above — transports, chaos, the harness —
	// reads it from here, so attaching a recorder to the network is
	// the single switch that turns instrumentation on.
	Rec *telemetry.Recorder
	// QueueHist is the PolyMeter queue-depth histogram, fed with the
	// post-enqueue occupancy of every port queue; nil (the default)
	// disables metering the same way a nil Rec disables tracing, and
	// recording never perturbs simulation state.
	QueueHist *metrics.Histogram
	rng       *rand.Rand
	lossRNG   *rand.Rand
	// pktFree is the packet free list behind AllocPacket/FreePacket.
	pktFree []*Packet
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LinkRate <= 0 {
		panic("netsim: LinkRate must be positive")
	}
	return &Network{
		Eng:     sim.NewEngine(),
		Cfg:     cfg,
		rng:     sim.RNG(cfg.Seed, "ecmp-spray"),
		lossRNG: sim.RNG(cfg.Seed, "link-loss"),
	}
}

// AddHost creates a host. Its NIC port is created by Connect.
func (n *Network) AddHost() *Host {
	h := &Host{ID: int32(len(n.Hosts)), net: n}
	n.Hosts = append(n.Hosts, h)
	return h
}

// AddSwitch creates a switch with the given name (for diagnostics).
func (n *Network) AddSwitch(name string) *Switch {
	s := &Switch{ID: int32(len(n.Switches)), Name: name, net: n, Mcast: map[int32][]int{}}
	n.Switches = append(n.Switches, s)
	return s
}

// switchQueue builds the configured queue discipline for a switch
// egress port.
func (n *Network) switchQueue() Queue {
	if n.Cfg.Trimming {
		return NewTrimQueue(n.Cfg.DataQueueCap, n.Cfg.HeaderQueueCap)
	}
	if n.Cfg.ECNThreshold > 0 {
		return NewECNDropTail(n.Cfg.DropTailCap, n.Cfg.ECNThreshold)
	}
	return NewDropTail(n.Cfg.DropTailCap)
}

// Connect joins two nodes with a full-duplex link (two simplex ports).
// Hosts get a large drop-tail NIC queue (the sender's own buffer);
// switch egress ports get the configured switch discipline. It returns
// the port on a facing b and the port on b facing a.
func (n *Network) Connect(a, b Node) (pa, pb *Port) {
	mk := func(owner, peer Node) *Port {
		var q Queue
		if _, isHost := owner.(*Host); isHost {
			q = NewDropTail(n.Cfg.HostQueueCap)
		} else {
			q = n.switchQueue()
		}
		p := &Port{
			net:   n,
			owner: owner,
			peer:  peer,
			rate:  n.Cfg.LinkRate,
			delay: n.Cfg.LinkDelay,
			queue: q,
			up:    true,
		}
		if sw, ok := peer.(*Switch); ok {
			p.peerSwitch = sw
		}
		p.txDone = p.onTxDone
		p.deliver = p.onDeliver
		p.index = owner.addPort(p)
		switch o := owner.(type) {
		case *Switch:
			p.label = fmt.Sprintf("%s:%d", o.Name, p.index)
		case *Host:
			p.label = fmt.Sprintf("host-%d", o.ID)
		default:
			p.label = fmt.Sprintf("port-%d", p.index)
		}
		return p
	}
	return mk(a, b), mk(b, a)
}

// QueueTotals aggregates queue statistics across every switch port,
// plus the two fault counters: RouteDrops (packets blackholed at a
// switch with no live egress candidate, or arriving at a killed
// switch) and LinkDrops (packets destroyed on a down or lossy link —
// any port, including host NICs).
func (n *Network) QueueTotals() QueueStats {
	var total QueueStats
	for _, s := range n.Switches {
		total.RouteDrops += s.RouteDrops
		for _, p := range s.Ports {
			st := p.QueueStats()
			total.Enqueued += st.Enqueued
			total.Dropped += st.Dropped
			total.Trimmed += st.Trimmed
			total.Marked += st.Marked
			total.LinkDrops += st.LinkDrops
		}
	}
	for _, h := range n.Hosts {
		if h.NIC != nil {
			total.LinkDrops += h.NIC.Lost
		}
	}
	return total
}

// Port is a simplex attachment of a node to a link: an egress queue,
// a serialization rate and a propagation delay to the peer node.
// Ports carry dynamic fault state for chaos injection: an up/down
// flag (down = blackhole: nothing serializes, a frame cut mid-wire is
// lost) and a random loss rate (a transmitted frame is destroyed with
// this probability — a lossy, not dead, link).
type Port struct {
	net        *Network
	owner      Node
	peer       Node
	peerSwitch *Switch // peer when it is a switch (avoids a hot-path type assert)
	index      int
	label      string // precomputed Label(), so drop hooks stay allocation-free
	rate       int64
	delay      sim.Time
	queue      Queue
	busy       bool
	up         bool
	cut        bool // the in-flight frame crossed a down window: lose it
	lossRate   float64

	// Serialization and propagation state. A port serializes one frame
	// at a time (txPkt) and its propagation delay is constant, so frames
	// in flight arrive strictly in emission order (flight is FIFO). That
	// invariant lets kick reuse two per-port callbacks (txDone, deliver)
	// instead of allocating fresh closures for every packet — the
	// simulator's hottest allocation site before the packet pool.
	txPkt   *Packet
	flight  fifo
	txDone  func()
	deliver func()

	TxPackets int64
	TxBytes   int64
	// Lost counts packets destroyed by link faults: sends attempted
	// while the link was down, frames cut when the link failed
	// mid-serialization, and random losses on a lossy link.
	Lost int64
}

// Index returns the port's position in its owner's port list.
func (p *Port) Index() int { return p.index }

// SetRate overrides the port's transmission rate (bits per second),
// e.g. to model a degraded link or a network hotspot. It affects
// packets whose serialization starts after the call.
func (p *Port) SetRate(bps int64) {
	if bps <= 0 {
		panic("netsim: rate must be positive")
	}
	p.rate = bps
}

// Rate returns the port's current transmission rate in bits/s.
func (p *Port) Rate() int64 { return p.rate }

// SetUp changes the link's up/down state. Taking a port down stops
// its transmitter: the frame on the wire (if any) is cut and counted
// in Lost, queued packets stay parked, and new Sends are dropped.
// Bringing it back up restarts transmission from the surviving queue.
func (p *Port) SetUp(up bool) {
	if p.up == up {
		return
	}
	p.up = up
	if up {
		p.kick()
	} else if p.busy {
		// Mark the in-flight frame cut now: a flap faster than one
		// serialization time must still lose the frame even though the
		// link is back up when serialization completes.
		p.cut = true
	}
}

// Up reports whether the link is up.
func (p *Port) Up() bool { return p.up }

// SetLossRate makes the link lossy: each transmitted frame is
// destroyed with probability r in [0, 1]. Zero restores a clean link.
func (p *Port) SetLossRate(r float64) {
	if r < 0 || r > 1 {
		panic("netsim: loss rate must be in [0, 1]")
	}
	p.lossRate = r
}

// LossRate returns the link's current random-loss probability.
func (p *Port) LossRate() float64 { return p.lossRate }

// Peer returns the node at the far end of the link.
func (p *Port) Peer() Node { return p.peer }

// QueueLen returns the instantaneous queue occupancy in packets.
func (p *Port) QueueLen() int { return p.queue.Len() }

// QueueStats returns the port's queue counters plus this port's
// link-fault losses (LinkDrops = Lost). RouteDrops is a switch-level
// counter and stays zero at port granularity.
func (p *Port) QueueStats() QueueStats {
	st := p.queue.Stats()
	st.LinkDrops = p.Lost
	return st
}

// Label names the port for diagnostics and traces: the owning
// switch's name plus the port index ("core-2:3"), or "host-N" for a
// NIC. Precomputed at wiring time so the drop hooks can pass it
// without formatting on the hot path.
func (p *Port) Label() string { return p.label }

// Send enqueues a packet for transmission. A down link drops it
// immediately (the interface is dead), counted in Lost.
func (p *Port) Send(pkt *Packet) {
	if !p.up {
		p.Lost++
		p.net.Rec.RecordLabel(p.net.Eng.Now(), pkt.Flow, telemetry.EvLinkDrop, -1, p.label)
		p.net.FreePacket(pkt)
		return
	}
	if !p.queue.Enqueue(pkt) {
		// Dropped; counted by the queue. Enqueue reporting false means
		// the packet was kept in no form (a trim keeps the header), so
		// this reference is the last one.
		p.net.Rec.RecordLabel(p.net.Eng.Now(), pkt.Flow, telemetry.EvQueueDrop, -1, p.label)
		p.net.FreePacket(pkt)
		return
	}
	p.net.QueueHist.Record(float64(p.queue.Len()))
	p.kick()
}

// kick starts transmitting if the line is idle: serialize for
// size*8/rate, then propagate for delay, then deliver to the peer. A
// down link never starts a frame; a link that goes down mid-frame
// loses that frame (checked when serialization completes) and parks
// the rest of the queue until SetUp re-kicks.
//
//polyvet:noalloc runs per transmitted packet; the reused txDone/deliver callbacks keep it closure-free
func (p *Port) kick() {
	if p.busy || !p.up {
		return
	}
	pkt := p.queue.Dequeue()
	if pkt == nil {
		return
	}
	p.busy = true
	p.txPkt = pkt
	tx := sim.Time(int64(pkt.Size) * 8 * 1e9 / p.rate)
	p.net.Eng.After(tx, p.txDone)
}

// onTxDone completes serialization of the frame on the wire: account
// for it, apply link faults, and hand survivors to propagation.
func (p *Port) onTxDone() {
	pkt := p.txPkt
	p.txPkt = nil
	p.busy = false
	if p.cut || !p.up {
		// The link failed at some point while this frame was on
		// the wire (it may have already recovered): the frame is
		// cut. kick() resumes the queue if the link is back up and
		// is a no-op while it is still down (recovery re-kicks).
		p.cut = false
		p.Lost++
		p.net.Rec.RecordLabel(p.net.Eng.Now(), pkt.Flow, telemetry.EvLinkDrop, -1, p.label)
		p.net.FreePacket(pkt)
		p.kick()
		return
	}
	p.TxPackets++
	p.TxBytes += int64(pkt.Size)
	if p.lossRate > 0 && p.net.lossRNG.Float64() < p.lossRate {
		p.Lost++ // corrupted on a lossy link
		p.net.Rec.RecordLabel(p.net.Eng.Now(), pkt.Flow, telemetry.EvLinkDrop, -1, p.label)
		p.net.FreePacket(pkt)
	} else {
		p.flight.push(pkt)
		p.net.Eng.After(p.delay, p.deliver)
	}
	p.kick()
}

// onDeliver completes propagation of the oldest in-flight frame. The
// FIFO matches deliveries to packets because the delay is constant and
// the engine fires simultaneous events in scheduling order.
func (p *Port) onDeliver() {
	p.peer.Receive(p.flight.pop())
}

// Switch is an output-queued switch. Route supplies the candidate
// egress ports for a unicast packet (equal-cost set); Mcast maps a
// group ID to the egress ports of the group's directed tree at this
// switch.
type Switch struct {
	ID    int32
	Name  string
	net   *Network
	Ports []*Port
	// Route returns the equal-cost candidate egress port indices for a
	// unicast packet. Installed by the topology package.
	Route func(pkt *Packet) []int
	// Mcast maps group -> egress port indices.
	Mcast map[int32][]int
	// RouteDrops counts packets blackholed at this switch: arrivals
	// while the switch was killed, and unicast packets whose candidate
	// set was empty or held no live port. Chaos runs report it against
	// queue drops to separate "routed into a hole" from "congested".
	RouteDrops int64

	down    bool
	candBuf []int // scratch for live-candidate filtering (single-threaded sim)
}

func (s *Switch) addPort(p *Port) int {
	s.Ports = append(s.Ports, p)
	return len(s.Ports) - 1
}

// SetDown kills or restores the whole switch. A killed switch drops
// every arriving packet (counted in RouteDrops) and is filtered out
// of its neighbours' equal-cost candidate sets — the local link-state
// reaction of a real ECMP group. Egress port state is separate: chaos
// takes a killed switch's ports down so queued frames stop draining.
func (s *Switch) SetDown(down bool) { s.down = down }

// Down reports whether the switch is killed.
func (s *Switch) Down() bool { return s.down }

// portLive reports whether candidate port i can carry traffic: its
// own link is up and, when the peer is a switch, the peer is alive.
func (s *Switch) portLive(i int) bool {
	p := s.Ports[i]
	return p.up && (p.peerSwitch == nil || !p.peerSwitch.down)
}

// liveCands filters the equal-cost candidate set to live ports. The
// common all-live case returns the input slice untouched (route
// closures share candidate slices, so they are never mutated); the
// filtered copy lives in a per-switch scratch buffer.
func (s *Switch) liveCands(cands []int) []int {
	for i, c := range cands {
		if s.portLive(c) {
			continue
		}
		live := append(s.candBuf[:0], cands[:i]...)
		for _, c2 := range cands[i+1:] {
			if s.portLive(c2) {
				live = append(live, c2)
			}
		}
		s.candBuf = live
		return live
	}
	return cands
}

// Receive forwards a packet: multicast replication along the group
// tree, or unicast via spraying / per-flow ECMP over the live subset
// of the candidate set. A packet with no live candidate is blackholed
// and counted in RouteDrops.
func (s *Switch) Receive(pkt *Packet) {
	if s.down {
		s.RouteDrops++
		s.net.Rec.RecordLabel(s.net.Eng.Now(), pkt.Flow, telemetry.EvRouteDrop, -1, s.Name)
		s.net.FreePacket(pkt)
		return
	}
	if pkt.Group >= 0 {
		outs := s.Mcast[pkt.Group]
		if len(outs) == 0 {
			s.net.FreePacket(pkt) // pruned-empty tree at this switch
			return
		}
		for i, out := range outs {
			if i == len(outs)-1 {
				s.Ports[out].Send(pkt) // last copy moves, not clones
			} else {
				s.Ports[out].Send(s.net.clonePacket(pkt))
			}
		}
		return
	}
	if s.Route == nil {
		panic(fmt.Sprintf("netsim: switch %s has no route function", s.Name))
	}
	cands := s.liveCands(s.Route(pkt))
	if len(cands) == 0 {
		s.RouteDrops++
		s.net.Rec.RecordLabel(s.net.Eng.Now(), pkt.Flow, telemetry.EvRouteDrop, -1, s.Name)
		s.net.FreePacket(pkt)
		return
	}
	var out int
	switch {
	case len(cands) == 1:
		out = cands[0]
	case pkt.Spray:
		out = cands[s.net.rng.Intn(len(cands))]
	default:
		out = cands[flowHash(pkt.Flow, pkt.Sender)%uint32(len(cands))]
	}
	s.Ports[out].Send(pkt)
}

// flowHash is a deterministic per-flow ECMP hash (fmix32).
func flowHash(flow, sender int32) uint32 {
	h := uint32(flow)*0x85EBCA6B ^ uint32(sender)*0xC2B2AE35
	h ^= h >> 16
	h *= 0x85EBCA6B
	h ^= h >> 13
	h *= 0xC2B2AE35
	h ^= h >> 16
	return h
}

// Host is an endpoint with a single NIC. Transport protocols register
// a Deliver callback for ingress traffic.
type Host struct {
	ID  int32
	NIC *Port
	net *Network
	// Deliver is invoked for every packet arriving at the host.
	Deliver func(pkt *Packet)
}

func (h *Host) addPort(p *Port) int {
	h.NIC = p
	return 0
}

// Receive hands an arriving packet to the registered transport.
func (h *Host) Receive(pkt *Packet) {
	if h.Deliver != nil {
		h.Deliver(pkt)
	}
}

// Send transmits a packet from this host.
func (h *Host) Send(pkt *Packet) {
	if h.NIC == nil {
		panic("netsim: host is not connected")
	}
	pkt.Born = h.net.Eng.Now()
	h.NIC.Send(pkt)
}

// Now returns the network's current simulated time.
func (n *Network) Now() sim.Time { return n.Eng.Now() }

// RegisterProbes registers timeline gauges for the whole fabric on a
// PolyScope probe: per switch port, instantaneous queue depth, the
// cumulative transmitted bytes (exporters turn deltas into link
// utilization) and cumulative drops (queue + link); per switch, the
// route-drop (blackhole) counter; per host NIC, the same trio. All
// gauges only read counters the simulation maintains anyway, so
// probing never perturbs protocol behaviour.
func (n *Network) RegisterProbes(p *telemetry.Probe) {
	port := func(pt *Port) {
		name := pt.Label()
		p.Gauge("q "+name, "pkt", func() float64 { return float64(pt.QueueLen()) })
		p.Gauge("tx "+name, "bytes-cum", func() float64 { return float64(pt.TxBytes) })
		p.Gauge("drops "+name, "pkt-cum", func() float64 {
			return float64(pt.queue.Stats().Dropped + pt.Lost)
		})
	}
	for _, s := range n.Switches {
		sw := s
		p.Gauge("routedrops "+sw.Name, "pkt-cum", func() float64 { return float64(sw.RouteDrops) })
		for _, pt := range sw.Ports {
			port(pt)
		}
	}
	for _, h := range n.Hosts {
		if h.NIC != nil {
			port(h.NIC)
		}
	}
}
