// Package wire defines the binary wire format of the real (UDP)
// Polyraptor transport in internal/rqudp: a fixed 8-byte header
// followed by a message-specific body, all big-endian. The format is
// versioned and deliberately tiny — symbols are self-describing via
// (SBN, ESI), which is all a rateless receiver needs.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic and Version guard against cross-protocol traffic.
const (
	Magic   = 0xA7
	Version = 1
)

// MsgType enumerates protocol messages.
type MsgType uint8

const (
	// MsgHello opens a session: receiver -> sender. It carries the
	// receiver's position in a multi-source fetch so the sender can
	// compute its symbol partition without coordination.
	MsgHello MsgType = iota + 1
	// MsgAnnounce answers a Hello with the object geometry.
	MsgAnnounce
	// MsgData carries one encoding symbol.
	MsgData
	// MsgPull requests more symbols (receiver -> sender).
	MsgPull
	// MsgDone tears the session down (receiver -> sender).
	MsgDone
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgAnnounce:
		return "announce"
	case MsgData:
		return "data"
	case MsgPull:
		return "pull"
	case MsgDone:
		return "done"
	}
	return fmt.Sprintf("unknown(%d)", uint8(t))
}

// Errors returned by parsers.
var (
	ErrTruncated  = errors.New("wire: truncated packet")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
)

const headerLen = 8

// Header is the fixed prefix of every packet.
type Header struct {
	Type MsgType
	Flow uint32
}

// appendHeader writes the common prefix.
func appendHeader(dst []byte, t MsgType, flow uint32) []byte {
	dst = append(dst, Magic, Version, byte(t), 0)
	return binary.BigEndian.AppendUint32(dst, flow)
}

// ParseHeader validates the prefix and returns the header and body.
func ParseHeader(pkt []byte) (Header, []byte, error) {
	if len(pkt) < headerLen {
		return Header{}, nil, ErrTruncated
	}
	if pkt[0] != Magic {
		return Header{}, nil, ErrBadMagic
	}
	if pkt[1] != Version {
		return Header{}, nil, ErrBadVersion
	}
	t := MsgType(pkt[2])
	if t < MsgHello || t > MsgDone {
		return Header{}, nil, ErrBadType
	}
	return Header{Type: t, Flow: binary.BigEndian.Uint32(pkt[4:8])}, pkt[headerLen:], nil
}

// Hello opens a session.
type Hello struct {
	Flow        uint32
	SenderIdx   uint8 // this sender's index in a multi-source fetch
	SenderCount uint8 // total senders (1 for unicast)
}

// AppendHello marshals a Hello.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendHeader(dst, MsgHello, h.Flow)
	return append(dst, h.SenderIdx, h.SenderCount)
}

// ParseHello unmarshals a Hello body.
func ParseHello(flow uint32, body []byte) (Hello, error) {
	if len(body) < 2 {
		return Hello{}, ErrTruncated
	}
	h := Hello{Flow: flow, SenderIdx: body[0], SenderCount: body[1]}
	if h.SenderCount == 0 || h.SenderIdx >= h.SenderCount {
		return Hello{}, fmt.Errorf("wire: sender %d of %d invalid", h.SenderIdx, h.SenderCount)
	}
	return h, nil
}

// Announce carries the object geometry from sender to receiver.
type Announce struct {
	Flow       uint32
	ObjectSize uint64
	SymbolSize uint32
	MaxK       uint32
}

// AppendAnnounce marshals an Announce.
func AppendAnnounce(dst []byte, a Announce) []byte {
	dst = appendHeader(dst, MsgAnnounce, a.Flow)
	dst = binary.BigEndian.AppendUint64(dst, a.ObjectSize)
	dst = binary.BigEndian.AppendUint32(dst, a.SymbolSize)
	return binary.BigEndian.AppendUint32(dst, a.MaxK)
}

// ParseAnnounce unmarshals an Announce body.
func ParseAnnounce(flow uint32, body []byte) (Announce, error) {
	if len(body) < 16 {
		return Announce{}, ErrTruncated
	}
	a := Announce{
		Flow:       flow,
		ObjectSize: binary.BigEndian.Uint64(body[0:8]),
		SymbolSize: binary.BigEndian.Uint32(body[8:12]),
		MaxK:       binary.BigEndian.Uint32(body[12:16]),
	}
	if a.ObjectSize == 0 || a.SymbolSize == 0 || a.MaxK == 0 {
		return Announce{}, fmt.Errorf("wire: zero geometry in announce")
	}
	return a, nil
}

// Data carries one encoding symbol.
type Data struct {
	Flow    uint32
	SBN     uint32
	ESI     uint32
	Payload []byte
}

// AppendData marshals a Data packet. The payload is copied into dst.
func AppendData(dst []byte, d Data) []byte {
	dst = appendHeader(dst, MsgData, d.Flow)
	dst = binary.BigEndian.AppendUint32(dst, d.SBN)
	dst = binary.BigEndian.AppendUint32(dst, d.ESI)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Payload)))
	return append(dst, d.Payload...)
}

// ParseData unmarshals a Data body. The payload aliases body.
func ParseData(flow uint32, body []byte) (Data, error) {
	if len(body) < 10 {
		return Data{}, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(body[8:10]))
	if len(body) < 10+n {
		return Data{}, ErrTruncated
	}
	return Data{
		Flow:    flow,
		SBN:     binary.BigEndian.Uint32(body[0:4]),
		ESI:     binary.BigEndian.Uint32(body[4:8]),
		Payload: body[10 : 10+n],
	}, nil
}

// Pull requests more symbols.
type Pull struct {
	Flow    uint32
	Credits uint16 // number of fresh symbols requested
}

// AppendPull marshals a Pull.
func AppendPull(dst []byte, p Pull) []byte {
	dst = appendHeader(dst, MsgPull, p.Flow)
	return binary.BigEndian.AppendUint16(dst, p.Credits)
}

// ParsePull unmarshals a Pull body.
func ParsePull(flow uint32, body []byte) (Pull, error) {
	if len(body) < 2 {
		return Pull{}, ErrTruncated
	}
	p := Pull{Flow: flow, Credits: binary.BigEndian.Uint16(body[0:2])}
	if p.Credits == 0 {
		return Pull{}, fmt.Errorf("wire: pull with zero credits")
	}
	return p, nil
}

// AppendDone marshals a Done message (header only).
func AppendDone(dst []byte, flow uint32) []byte {
	return appendHeader(dst, MsgDone, flow)
}
