package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Flow: 0xDEADBEEF, SenderIdx: 2, SenderCount: 5}
	pkt := AppendHello(nil, h)
	hdr, body, err := ParseHeader(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != MsgHello || hdr.Flow != h.Flow {
		t.Fatalf("header = %+v", hdr)
	}
	got, err := ParseHello(hdr.Flow, body)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestHelloValidation(t *testing.T) {
	if _, err := ParseHello(1, []byte{0}); err != ErrTruncated {
		t.Fatalf("short hello: %v", err)
	}
	if _, err := ParseHello(1, []byte{0, 0}); err == nil {
		t.Fatal("zero sender count accepted")
	}
	if _, err := ParseHello(1, []byte{3, 3}); err == nil {
		t.Fatal("senderIdx >= senderCount accepted")
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := Announce{Flow: 7, ObjectSize: 1 << 33, SymbolSize: 1024, MaxK: 256}
	hdr, body, err := ParseHeader(AppendAnnounce(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAnnounce(hdr.Flow, body)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestAnnounceValidation(t *testing.T) {
	if _, err := ParseAnnounce(1, make([]byte, 15)); err != ErrTruncated {
		t.Fatal("short announce accepted")
	}
	bad := AppendAnnounce(nil, Announce{Flow: 1, ObjectSize: 0, SymbolSize: 1, MaxK: 1})
	_, body, _ := ParseHeader(bad)
	if _, err := ParseAnnounce(1, body); err == nil {
		t.Fatal("zero object size accepted")
	}
}

func TestDataRoundTrip(t *testing.T) {
	d := Data{Flow: 9, SBN: 3, ESI: 77, Payload: []byte("symbol-bytes")}
	hdr, body, err := ParseHeader(AppendData(nil, d))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseData(hdr.Flow, body)
	if err != nil {
		t.Fatal(err)
	}
	if got.SBN != d.SBN || got.ESI != d.ESI || !bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("round trip: %+v != %+v", got, d)
	}
}

func TestDataTruncatedPayload(t *testing.T) {
	pkt := AppendData(nil, Data{Flow: 1, Payload: make([]byte, 100)})
	_, body, _ := ParseHeader(pkt[:len(pkt)-1])
	if _, err := ParseData(1, body); err != ErrTruncated {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestPullRoundTrip(t *testing.T) {
	p := Pull{Flow: 4, Credits: 12}
	hdr, body, err := ParseHeader(AppendPull(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePull(hdr.Flow, body)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
	if _, err := ParsePull(1, []byte{0, 0}); err == nil {
		t.Fatal("zero credits accepted")
	}
}

func TestDoneRoundTrip(t *testing.T) {
	hdr, body, err := ParseHeader(AppendDone(nil, 42))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != MsgDone || hdr.Flow != 42 || len(body) != 0 {
		t.Fatalf("done = %+v body=%d", hdr, len(body))
	}
}

func TestParseHeaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0x00, Version, byte(MsgData), 0, 0, 0, 0, 1}, // bad magic
		{Magic, 99, byte(MsgData), 0, 0, 0, 0, 1},     // bad version
		{Magic, Version, 0, 0, 0, 0, 0, 1},            // type 0
		{Magic, Version, 200, 0, 0, 0, 0, 1},          // type out of range
	}
	wants := []error{ErrTruncated, ErrTruncated, ErrBadMagic, ErrBadVersion, ErrBadType, ErrBadType}
	for i, pkt := range cases {
		if _, _, err := ParseHeader(pkt); err != wants[i] {
			t.Fatalf("case %d: err = %v, want %v", i, err, wants[i])
		}
	}
}

func TestDataRoundTripQuick(t *testing.T) {
	f := func(flow, sbn, esi uint32, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		d := Data{Flow: flow, SBN: sbn, ESI: esi, Payload: payload}
		hdr, body, err := ParseHeader(AppendData(nil, d))
		if err != nil || hdr.Flow != flow {
			return false
		}
		got, err := ParseData(flow, body)
		if err != nil {
			return false
		}
		return got.SBN == sbn && got.ESI == esi && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 128)
	out := AppendPull(buf, Pull{Flow: 1, Credits: 1})
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendPull reallocated despite capacity")
	}
}
