package topology

import (
	"testing"

	"polyraptor/internal/netsim"
)

func mustTree(t *testing.T, k int) *FatTree {
	t.Helper()
	ft, err := NewFatTree(k, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestLinkEnumerationCounts(t *testing.T) {
	for _, k := range []int{4, 6} {
		ft := mustTree(t, k)
		want := k * k * k / 4
		if got := len(ft.CoreLinks()); got != want {
			t.Fatalf("k=%d: CoreLinks = %d, want %d", k, got, want)
		}
		if got := len(ft.AggLinks()); got != want {
			t.Fatalf("k=%d: AggLinks = %d, want %d", k, got, want)
		}
		if got := len(ft.HostLinks()); got != want {
			t.Fatalf("k=%d: HostLinks = %d, want %d", k, got, want)
		}
		if got := len(ft.CoreSwitches()); got != k*k/4 {
			t.Fatalf("k=%d: CoreSwitches = %d, want %d", k, got, k*k/4)
		}
		if got := len(ft.AggSwitches()); got != k*k/2 {
			t.Fatalf("k=%d: AggSwitches = %d, want %d", k, got, k*k/2)
		}
		if got := len(ft.EdgeSwitches()); got != k*k/2 {
			t.Fatalf("k=%d: EdgeSwitches = %d, want %d", k, got, k*k/2)
		}
	}
}

func TestLinkDirectionsAreReverses(t *testing.T) {
	ft := mustTree(t, 4)
	for _, l := range ft.CoreLinks() {
		aggOwner := l.B.Peer()
		coreOwner := l.A.Peer()
		if _, ok := coreOwner.(*netsim.Switch); !ok {
			t.Fatalf("link %s: A does not face a switch", l.Name)
		}
		if _, ok := aggOwner.(*netsim.Switch); !ok {
			t.Fatalf("link %s: B does not face a switch", l.Name)
		}
	}
	// SetUp must affect both directions.
	l := ft.CoreLinks()[0]
	l.SetUp(false)
	if l.A.Up() || l.B.Up() {
		t.Fatal("Link.SetUp(false) left a direction up")
	}
	l.SetUp(true)
	if !l.A.Up() || !l.B.Up() {
		t.Fatal("Link.SetUp(true) left a direction down")
	}
}

func TestPickLinksDeterministicExactCount(t *testing.T) {
	ft := mustTree(t, 4)
	links := ft.CoreLinks()
	a := PickLinks(links, 0.25, 7)
	b := PickLinks(links, 0.25, 7)
	if len(a) != PickCount(len(links), 0.25) {
		t.Fatalf("picked %d links, want %d", len(a), PickCount(len(links), 0.25))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("selection not deterministic: %s vs %s at %d", a[i].Name, b[i].Name, i)
		}
	}
	c := PickLinks(links, 0.25, 8)
	same := len(c) == len(a)
	if same {
		for i := range a {
			same = same && a[i].Name == c[i].Name
		}
	}
	if same {
		t.Fatal("different seeds picked identical link sets (suspicious)")
	}
	if got := len(PickLinks(links, 0, 1)); got != 0 {
		t.Fatalf("frac 0 picked %d links", got)
	}
	if got := len(PickLinks(links, 1, 1)); got != len(links) {
		t.Fatalf("frac 1 picked %d/%d links", got, len(links))
	}
}

func TestPickSwitchesDeterministic(t *testing.T) {
	ft := mustTree(t, 4)
	a := PickSwitches(ft.CoreSwitches(), 0.5, 3)
	b := PickSwitches(ft.CoreSwitches(), 0.5, 3)
	if len(a) != 2 { // (k/2)^2 = 4 cores, half of them
		t.Fatalf("picked %d switches, want 2", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("switch selection not deterministic")
		}
	}
}

// TestDegradeCoreLinksDeterministic pins the retargeted hotspot
// helper: same inputs always degrade the same links, the returned
// count is the exact seeded fraction, and both directions slow down.
func TestDegradeCoreLinksDeterministic(t *testing.T) {
	snapshot := func(seed int64) (int, []int64) {
		ft := mustTree(t, 4)
		n := ft.DegradeCoreLinks(0.25, 4, seed)
		rates := make([]int64, 0, 2*len(ft.CoreLinks()))
		for _, l := range ft.CoreLinks() {
			rates = append(rates, l.A.Rate(), l.B.Rate())
		}
		return n, rates
	}
	n1, r1 := snapshot(5)
	n2, r2 := snapshot(5)
	if n1 != n2 {
		t.Fatalf("counts differ across identical runs: %d vs %d", n1, n2)
	}
	want := PickCount(4*4*4/4, 0.25) // k=4: 16 core links -> 4
	if n1 != want {
		t.Fatalf("degraded %d links, want %d", n1, want)
	}
	degradedDirs := 0
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rate pattern differs at %d: %d vs %d", i, r1[i], r2[i])
		}
		if r1[i] == netsim.DefaultConfig().LinkRate/4 {
			degradedDirs++
		}
	}
	if degradedDirs != 2*want {
		t.Fatalf("%d degraded directions, want %d (both directions per link)", degradedDirs, 2*want)
	}
	// A different seed hits a different set.
	_, r3 := snapshot(6)
	same := true
	for i := range r1 {
		same = same && r1[i] == r3[i]
	}
	if same {
		t.Fatal("different seeds degraded identical link sets (suspicious)")
	}
}

func TestDegradeCoreLinksValidation(t *testing.T) {
	ft := mustTree(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("divisor 0 did not panic")
		}
	}()
	ft.DegradeCoreLinks(0.5, 0, 1)
}
