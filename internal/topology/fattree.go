// Package topology builds simulated data-centre fabrics on top of
// netsim: the k-ary FatTree used throughout the paper's evaluation
// (k=10 gives the 250-server fabric of Figure 1) plus a single-switch
// star for focused protocol tests. It installs ECMP routing closures
// on every switch and constructs directed multicast trees per
// (sender, receiver-set) group, the "native support for multicasting
// in data centres" Polyraptor exploits.
package topology

import (
	"fmt"

	"polyraptor/internal/netsim"
)

// FatTree is a k-ary fat-tree: k pods of k/2 edge and k/2 aggregation
// switches, (k/2)^2 cores, and k^3/4 hosts, all with uniform link
// rate. Every inter-pod host pair has (k/2)^2 equal-cost paths.
type FatTree struct {
	K     int
	Net   *netsim.Network
	Hosts []*netsim.Host

	edges []*netsim.Switch // pod-major: pod*k/2 + edgeInPod
	aggs  []*netsim.Switch // pod-major: pod*k/2 + aggInPod
	cores []*netsim.Switch // index c connects agg c/(k/2) of each pod

	nextGroup    int32
	groupTouched map[int32][]*netsim.Switch
}

// NewFatTree builds a k-ary fat-tree (k even, >= 2) over a fresh
// network with the given config.
func NewFatTree(k int, cfg netsim.Config) (*FatTree, error) {
	if err := CheckArity(k); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	ft := &FatTree{K: k, Net: netsim.New(cfg), groupTouched: map[int32][]*netsim.Switch{}}
	half := k / 2
	nPods := k
	nHosts := HostsFor(k)

	for i := 0; i < nHosts; i++ {
		ft.Hosts = append(ft.Hosts, ft.Net.AddHost())
	}
	for p := 0; p < nPods; p++ {
		for e := 0; e < half; e++ {
			ft.edges = append(ft.edges, ft.Net.AddSwitch(fmt.Sprintf("edge-%d-%d", p, e)))
		}
	}
	for p := 0; p < nPods; p++ {
		for a := 0; a < half; a++ {
			ft.aggs = append(ft.aggs, ft.Net.AddSwitch(fmt.Sprintf("agg-%d-%d", p, a)))
		}
	}
	for c := 0; c < half*half; c++ {
		ft.cores = append(ft.cores, ft.Net.AddSwitch(fmt.Sprintf("core-%d", c)))
	}

	// Wire hosts to edges: edge ports 0..half-1 are down ports in host
	// order.
	for p := 0; p < nPods; p++ {
		for e := 0; e < half; e++ {
			edge := ft.edge(p, e)
			for h := 0; h < half; h++ {
				host := ft.Hosts[p*half*half+e*half+h]
				ft.Net.Connect(host, edge)
			}
		}
	}
	// Wire edges to aggs: edge ports half..k-1 are up ports in agg
	// order; agg ports 0..half-1 are down ports in edge order.
	for p := 0; p < nPods; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				ft.Net.Connect(ft.edge(p, e), ft.agg(p, a))
			}
		}
	}
	// Wire aggs to cores: agg ports half..k-1 are up ports; core port
	// p faces pod p. Core c attaches to agg c/half in every pod.
	for p := 0; p < nPods; p++ {
		for a := 0; a < half; a++ {
			for m := 0; m < half; m++ {
				ft.Net.Connect(ft.agg(p, a), ft.cores[a*half+m])
			}
		}
	}

	ft.installRoutes()
	return ft, nil
}

func (ft *FatTree) edge(pod, e int) *netsim.Switch { return ft.edges[pod*ft.K/2+e] }
func (ft *FatTree) agg(pod, a int) *netsim.Switch  { return ft.aggs[pod*ft.K/2+a] }

// NumHosts returns k^3/4.
func (ft *FatTree) NumHosts() int { return len(ft.Hosts) }

// Pod returns the pod index of host h.
func (ft *FatTree) Pod(h int) int { return h / (ft.K * ft.K / 4) }

// edgeOf returns (pod, edgeInPod, posInEdge) for host h.
func (ft *FatTree) edgeOf(h int) (pod, e, pos int) {
	half := ft.K / 2
	pod = h / (half * half)
	e = (h % (half * half)) / half
	pos = h % half
	return pod, e, pos
}

// SameRack reports whether hosts a and b share an edge (ToR) switch.
func (ft *FatTree) SameRack(a, b int) bool {
	pa, ea, _ := ft.edgeOf(a)
	pb, eb, _ := ft.edgeOf(b)
	return pa == pb && ea == eb
}

// RackOf returns the global edge-switch index of host h, usable as a
// rack identifier.
func (ft *FatTree) RackOf(h int) int {
	pod, e, _ := ft.edgeOf(h)
	return pod*ft.K/2 + e
}

// NumRacks returns the number of racks (edge switches): k^2/2.
func (ft *FatTree) NumRacks() int { return ft.K * ft.K / 2 }

// HostsFor returns the host count of a k-ary fat-tree (k^3/4) without
// building the fabric — the one place the formula lives, so capacity
// validators cannot drift from the constructor.
func HostsFor(k int) int { return k * k * k / 4 }

// OutOfRackHosts returns how many hosts of a k-ary fat-tree sit
// outside any one rack: k^3/4 - k/2 — the eligibility bound for
// out-of-rack peer pickers, computable before the fabric is built.
func OutOfRackHosts(k int) int { return HostsFor(k) - k/2 }

// CheckArity validates a fat-tree arity without building the fabric —
// the shared up-front check behind every CLI's -k flag.
func CheckArity(k int) error {
	if k < 2 || k%2 != 0 {
		return fmt.Errorf("fat-tree arity k=%d must be even and >= 2", k)
	}
	return nil
}

// CheckFanout validates that n out-of-rack peers (noun: "senders",
// "replicas", ...) fit a k-ary fabric; out-of-rack pickers spin
// forever on an oversized fan-out, so CLIs call this before building
// anything.
func CheckFanout(k, n int, noun string) error {
	if n < 1 || n > OutOfRackHosts(k) {
		return fmt.Errorf("needs 1 <= %s <= %d out-of-rack hosts on a k=%d fabric, got %d",
			noun, OutOfRackHosts(k), k, n)
	}
	return nil
}

// HostsPerRack returns the number of hosts under each edge switch: k/2.
func (ft *FatTree) HostsPerRack() int { return ft.K / 2 }

// RackHosts returns the host IDs under edge switch `rack`, in port
// order. Storage placement and whole-rack failure injection use it.
func (ft *FatTree) RackHosts(rack int) []int {
	half := ft.K / 2
	out := make([]int, half)
	for i := range out {
		out[i] = rack*half + i
	}
	return out
}

// installRoutes sets the unicast forwarding closures. Edge and agg
// switches return all uplinks as equal-cost candidates for non-local
// destinations, which is what per-packet spraying and per-flow ECMP
// choose among.
func (ft *FatTree) installRoutes() {
	half := ft.K / 2
	upPorts := make([]int, half)
	for i := range upPorts {
		upPorts[i] = half + i
	}
	for p := 0; p < ft.K; p++ {
		for e := 0; e < half; e++ {
			pod, eIdx := p, e
			sw := ft.edge(p, e)
			sw.Route = func(pkt *netsim.Packet) []int {
				dp, de, dpos := ft.edgeOf(int(pkt.Dst))
				if dp == pod && de == eIdx {
					return []int{dpos}
				}
				return upPorts
			}
		}
		for a := 0; a < half; a++ {
			pod := p
			sw := ft.agg(p, a)
			sw.Route = func(pkt *netsim.Packet) []int {
				dp, de, _ := ft.edgeOf(int(pkt.Dst))
				if dp == pod {
					return []int{de}
				}
				return upPorts
			}
		}
	}
	for c := range ft.cores {
		sw := ft.cores[c]
		sw.Route = func(pkt *netsim.Packet) []int {
			return []int{ft.Pod(int(pkt.Dst))}
		}
	}
}

// InstallMulticastGroup builds a directed multicast tree from sender
// to the receiver set and installs per-switch forwarding state. The
// tree follows the DCCast-style single-rendezvous construction: a core
// switch chosen by group hash, with early branching for receivers in
// the sender's pod or rack. It returns the group ID to stamp on
// packets.
func (ft *FatTree) InstallMulticastGroup(sender int, receivers []int) int32 {
	g := ft.nextGroup
	ft.nextGroup++
	half := ft.K / 2
	core := int(uint32(g)*2654435761>>7) % (half * half)
	aggJ := core / half // agg index carrying this core, in every pod
	coreUp := half + core%half

	add := func(sw *netsim.Switch, port int) {
		for _, q := range sw.Mcast[g] {
			if q == port {
				return
			}
		}
		if len(sw.Mcast[g]) == 0 {
			ft.groupTouched[g] = append(ft.groupTouched[g], sw)
		}
		sw.Mcast[g] = append(sw.Mcast[g], port)
	}

	sPod, sEdge, _ := ft.edgeOf(sender)
	for _, r := range receivers {
		if r == sender {
			continue
		}
		rPod, rEdge, rPos := ft.edgeOf(r)
		switch {
		case rPod == sPod && rEdge == sEdge:
			add(ft.edge(sPod, sEdge), rPos)
		case rPod == sPod:
			add(ft.edge(sPod, sEdge), half+aggJ)
			add(ft.agg(sPod, aggJ), rEdge)
			add(ft.edge(rPod, rEdge), rPos)
		default:
			add(ft.edge(sPod, sEdge), half+aggJ)
			add(ft.agg(sPod, aggJ), coreUp)
			add(ft.cores[core], rPod)
			add(ft.agg(rPod, aggJ), rEdge)
			add(ft.edge(rPod, rEdge), rPos)
		}
	}
	return g
}

// Oversubscribe models a cost-reduced fabric: every edge<->agg link
// (both directions) runs at 1/ratio of the host link rate, giving the
// common "ratio:1" oversubscription at the ToR uplink level. ratio=1
// is a no-op (full bisection bandwidth).
func (ft *FatTree) Oversubscribe(ratio int64) {
	if ratio < 1 {
		panic("topology: oversubscription ratio must be >= 1")
	}
	if ratio == 1 {
		return
	}
	half := ft.K / 2
	for _, edge := range ft.edges {
		for up := half; up < ft.K; up++ {
			p := edge.Ports[up]
			p.SetRate(p.Rate() / ratio)
			agg := p.Peer().(*netsim.Switch)
			for _, ap := range agg.Ports {
				if ap.Peer() == netsim.Node(edge) {
					ap.SetRate(ap.Rate() / ratio)
					break
				}
			}
		}
	}
}

// DegradeCoreLinks models network hotspots (the paper's "current
// work" scenario): a seeded fraction of agg<->core links in both
// directions has its rate divided by `divisor`. It returns the number
// of degraded links — exactly PickCount(len(CoreLinks()), frac), the
// same deterministic selection primitive the chaos engine uses.
// Traffic sprayed across all equal-cost paths (Polyraptor) flows
// around the hotspots; hash-pinned flows (TCP) that land on one are
// stuck with it.
func (ft *FatTree) DegradeCoreLinks(frac float64, divisor int64, seed int64) int {
	if divisor < 1 {
		panic("topology: divisor must be >= 1")
	}
	picked := PickLinks(ft.CoreLinks(), frac, seed)
	for _, l := range picked {
		l.DivideRate(divisor)
	}
	return len(picked)
}

// PruneMulticastLeaf removes one receiver's leaf port from a group's
// tree (straggler detachment). Interior tree state is left in place;
// it only carries traffic toward remaining leaves.
func (ft *FatTree) PruneMulticastLeaf(g int32, receiver int) {
	pod, e, pos := ft.edgeOf(receiver)
	sw := ft.edge(pod, e)
	outs := sw.Mcast[g]
	for i, p := range outs {
		if p == pos {
			sw.Mcast[g] = append(outs[:i], outs[i+1:]...)
			return
		}
	}
}

// RemoveMulticastGroup tears down a group's forwarding state.
func (ft *FatTree) RemoveMulticastGroup(g int32) {
	for _, sw := range ft.groupTouched[g] {
		delete(sw.Mcast, g)
	}
	delete(ft.groupTouched, g)
}

// Star is a single-switch topology with n hosts — the minimal fabric
// for focused transport tests (incast converges on one egress port).
type Star struct {
	Net   *netsim.Network
	Hosts []*netsim.Host
	SW    *netsim.Switch
}

// NewStar builds an n-host single-switch network.
func NewStar(n int, cfg netsim.Config) *Star {
	st := &Star{Net: netsim.New(cfg)}
	st.SW = st.Net.AddSwitch("star")
	for i := 0; i < n; i++ {
		h := st.Net.AddHost()
		st.Net.Connect(h, st.SW) // switch port i faces host i
		st.Hosts = append(st.Hosts, h)
	}
	st.SW.Route = func(pkt *netsim.Packet) []int {
		if int(pkt.Dst) < n {
			return []int{int(pkt.Dst)}
		}
		return nil
	}
	return st
}

// InstallMulticastGroup installs a star multicast group and returns
// its ID.
func (st *Star) InstallMulticastGroup(sender int, receivers []int) int32 {
	g := int32(len(st.SW.Mcast))
	var ports []int
	for _, r := range receivers {
		if r != sender {
			ports = append(ports, r)
		}
	}
	st.SW.Mcast[g] = ports
	return g
}

// PruneMulticastLeaf removes one receiver from a star group.
func (st *Star) PruneMulticastLeaf(g int32, receiver int) {
	outs := st.SW.Mcast[g]
	for i, p := range outs {
		if p == receiver {
			st.SW.Mcast[g] = append(outs[:i], outs[i+1:]...)
			return
		}
	}
}
