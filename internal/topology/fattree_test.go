package topology

import (
	"testing"

	"polyraptor/internal/netsim"
)

func TestFatTreeDimensions(t *testing.T) {
	for _, k := range []int{2, 4, 6, 10} {
		ft, err := NewFatTree(k, netsim.DefaultConfig())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got, want := ft.NumHosts(), k*k*k/4; got != want {
			t.Fatalf("k=%d: hosts=%d, want %d", k, got, want)
		}
		if got, want := len(ft.edges), k*k/2; got != want {
			t.Fatalf("k=%d: edges=%d, want %d", k, got, want)
		}
		if got, want := len(ft.aggs), k*k/2; got != want {
			t.Fatalf("k=%d: aggs=%d, want %d", k, got, want)
		}
		if got, want := len(ft.cores), k*k/4; got != want {
			t.Fatalf("k=%d: cores=%d, want %d", k, got, want)
		}
	}
}

// TestRackHelpers checks the storage-placement view of the tree:
// rack count, rack membership, and agreement with RackOf/SameRack.
func TestRackHelpers(t *testing.T) {
	for _, k := range []int{4, 6} {
		ft, err := NewFatTree(k, netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ft.NumRacks(), k*k/2; got != want {
			t.Fatalf("k=%d: NumRacks=%d, want %d", k, got, want)
		}
		if got, want := ft.HostsPerRack(), k/2; got != want {
			t.Fatalf("k=%d: HostsPerRack=%d, want %d", k, got, want)
		}
		seen := map[int]bool{}
		for r := 0; r < ft.NumRacks(); r++ {
			hosts := ft.RackHosts(r)
			if len(hosts) != ft.HostsPerRack() {
				t.Fatalf("k=%d rack %d: %d hosts, want %d", k, r, len(hosts), ft.HostsPerRack())
			}
			for _, h := range hosts {
				if seen[h] {
					t.Fatalf("k=%d: host %d in two racks", k, h)
				}
				seen[h] = true
				if ft.RackOf(h) != r {
					t.Fatalf("k=%d: RackOf(%d)=%d, want %d", k, h, ft.RackOf(h), r)
				}
				if !ft.SameRack(h, hosts[0]) {
					t.Fatalf("k=%d: hosts %d and %d in rack %d not SameRack", k, h, hosts[0], r)
				}
			}
		}
		if len(seen) != ft.NumHosts() {
			t.Fatalf("k=%d: racks cover %d hosts, want %d", k, len(seen), ft.NumHosts())
		}
	}
}

func TestFatTree250Servers(t *testing.T) {
	// The paper's fabric: k=10 -> 250 servers.
	ft, err := NewFatTree(10, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumHosts() != 250 {
		t.Fatalf("k=10 fat-tree has %d hosts, want 250", ft.NumHosts())
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	for _, k := range []int{1, 3, 0, -2} {
		if _, err := NewFatTree(k, netsim.DefaultConfig()); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
}

func TestSameRack(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	// k=4: 2 hosts per edge. Hosts 0,1 share a rack; 2,3 the next.
	if !ft.SameRack(0, 1) {
		t.Fatal("hosts 0 and 1 must share a rack")
	}
	if ft.SameRack(1, 2) {
		t.Fatal("hosts 1 and 2 must not share a rack")
	}
	if ft.RackOf(0) != ft.RackOf(1) || ft.RackOf(0) == ft.RackOf(2) {
		t.Fatal("RackOf inconsistent with SameRack")
	}
}

func TestPodIndex(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	// k=4: 4 hosts per pod.
	if ft.Pod(0) != 0 || ft.Pod(3) != 0 || ft.Pod(4) != 1 || ft.Pod(15) != 3 {
		t.Fatalf("Pod indices wrong: %d %d %d %d", ft.Pod(0), ft.Pod(3), ft.Pod(4), ft.Pod(15))
	}
}

// deliverOne sends a unicast packet and runs to quiescence, returning
// whether it arrived.
func deliverOne(ft *FatTree, src, dst int, spray bool) bool {
	arrived := false
	ft.Hosts[dst].Deliver = func(p *netsim.Packet) {
		if p.Src == int32(src) {
			arrived = true
		}
	}
	defer func() { ft.Hosts[dst].Deliver = nil }()
	ft.Hosts[src].Send(&netsim.Packet{
		Kind: netsim.KindData, Size: netsim.DataSize,
		Src: int32(src), Dst: int32(dst), Group: -1, Spray: spray,
	})
	ft.Net.Eng.Run()
	return true == arrived
}

func TestUnicastAllPairsSmall(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	n := ft.NumHosts()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if !deliverOne(ft, s, d, false) {
				t.Fatalf("packet %d->%d not delivered (ECMP)", s, d)
			}
			if !deliverOne(ft, s, d, true) {
				t.Fatalf("packet %d->%d not delivered (spray)", s, d)
			}
		}
	}
}

func TestSprayUsesAllCorePaths(t *testing.T) {
	// Between hosts in different pods of a k=4 tree there are 4
	// equal-cost paths through 4 distinct cores; spraying many packets
	// must light up every core.
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	ft.Hosts[15].Deliver = func(p *netsim.Packet) {}
	for i := 0; i < 400; i++ {
		ft.Hosts[0].Send(&netsim.Packet{
			Kind: netsim.KindData, Size: netsim.HeaderSize,
			Src: 0, Dst: 15, Group: -1, Spray: true, Seq: int64(i),
		})
	}
	ft.Net.Eng.Run()
	for c, core := range ft.cores {
		crossed := int64(0)
		for _, p := range core.Ports {
			crossed += p.TxPackets
		}
		if crossed == 0 {
			t.Fatalf("core %d never used by spraying", c)
		}
	}
}

func TestPerFlowECMPPinsOnePath(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	ft.Hosts[15].Deliver = func(p *netsim.Packet) {}
	for i := 0; i < 100; i++ {
		ft.Hosts[0].Send(&netsim.Packet{
			Flow: 77, Kind: netsim.KindData, Size: netsim.HeaderSize,
			Src: 0, Dst: 15, Group: -1, Spray: false, Seq: int64(i),
		})
	}
	ft.Net.Eng.Run()
	used := 0
	for _, core := range ft.cores {
		crossed := int64(0)
		for _, p := range core.Ports {
			crossed += p.TxPackets
		}
		if crossed > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("per-flow ECMP used %d cores, want exactly 1", used)
	}
}

func TestMulticastReachesAllReceivers(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	// Receivers spread across: same rack (1), same pod (2), remote pods
	// (5, 10, 15).
	receivers := []int{1, 2, 5, 10, 15}
	got := map[int]int{}
	for _, r := range receivers {
		r := r
		ft.Hosts[r].Deliver = func(p *netsim.Packet) { got[r]++ }
	}
	g := ft.InstallMulticastGroup(0, receivers)
	for i := 0; i < 3; i++ {
		ft.Hosts[0].Send(&netsim.Packet{
			Kind: netsim.KindData, Size: netsim.DataSize,
			Src: 0, Group: g, Seq: int64(i),
		})
	}
	ft.Net.Eng.Run()
	for _, r := range receivers {
		if got[r] != 3 {
			t.Fatalf("receiver %d got %d/3 multicast packets", r, got[r])
		}
	}
}

func TestMulticastIsATreeNotAFlood(t *testing.T) {
	// Total link transmissions for one multicast packet must be far
	// below receivers * path-length (unicast duplication): shared tree
	// segments are traversed once.
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	receivers := []int{4, 5, 6, 7} // one remote pod, two racks
	for _, r := range receivers {
		ft.Hosts[r].Deliver = func(p *netsim.Packet) {}
	}
	g := ft.InstallMulticastGroup(0, receivers)
	ft.Hosts[0].Send(&netsim.Packet{Kind: netsim.KindData, Size: netsim.DataSize, Src: 0, Group: g})
	ft.Net.Eng.Run()
	tx := int64(0)
	for _, sw := range append(append(append([]*netsim.Switch{}, ft.edges...), ft.aggs...), ft.cores...) {
		for _, p := range sw.Ports {
			tx += p.TxPackets
		}
	}
	// Tree: edge0->agg, agg->core, core->pod1 agg, agg->2 edges,
	// 2 edges -> 4 hosts = 1+1+1+2+4 = 9 switch transmissions.
	// Multi-unicast would use 4 paths x 5 switch hops = 20.
	if tx > 12 {
		t.Fatalf("multicast used %d switch transmissions; tree should use ~9", tx)
	}
}

func TestRemoveMulticastGroup(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	g := ft.InstallMulticastGroup(0, []int{5, 10})
	ft.RemoveMulticastGroup(g)
	for _, sw := range append(append(append([]*netsim.Switch{}, ft.edges...), ft.aggs...), ft.cores...) {
		if len(sw.Mcast[g]) != 0 {
			t.Fatalf("switch %s still has group state", sw.Name)
		}
	}
	// Sending to a removed group must not crash and not deliver.
	delivered := false
	ft.Hosts[5].Deliver = func(p *netsim.Packet) { delivered = true }
	ft.Hosts[0].Send(&netsim.Packet{Kind: netsim.KindData, Size: netsim.DataSize, Src: 0, Group: g})
	ft.Net.Eng.Run()
	if delivered {
		t.Fatal("removed group still forwards")
	}
}

func TestOversubscribe(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	ft.Oversubscribe(4)
	half := ft.K / 2
	for _, edge := range ft.edges {
		for up := half; up < ft.K; up++ {
			if r := edge.Ports[up].Rate(); r != 1e9/4 {
				t.Fatalf("edge uplink rate %d, want %d", r, int64(1e9/4))
			}
		}
		for down := 0; down < half; down++ {
			if r := edge.Ports[down].Rate(); r != 1e9 {
				t.Fatalf("host-facing rate changed: %d", r)
			}
		}
	}
	// Reverse (agg->edge) direction degraded too.
	for _, agg := range ft.aggs {
		for down := 0; down < half; down++ {
			if r := agg.Ports[down].Rate(); r != 1e9/4 {
				t.Fatalf("agg downlink rate %d", r)
			}
		}
	}
	// Cross-pod transfer still works, just slower.
	if !deliverOne(ft, 0, 15, true) {
		t.Fatal("oversubscribed fabric lost a packet outright")
	}
}

func TestOversubscribeValidation(t *testing.T) {
	ft, _ := NewFatTree(4, netsim.DefaultConfig())
	ft.Oversubscribe(1) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("ratio 0 accepted")
		}
	}()
	ft.Oversubscribe(0)
}

func TestStarTopology(t *testing.T) {
	st := NewStar(5, netsim.DefaultConfig())
	got := 0
	st.Hosts[4].Deliver = func(p *netsim.Packet) { got++ }
	st.Hosts[0].Send(&netsim.Packet{Kind: netsim.KindData, Size: netsim.DataSize, Src: 0, Dst: 4, Group: -1})
	st.Net.Eng.Run()
	if got != 1 {
		t.Fatalf("star unicast delivered %d", got)
	}
	g := st.InstallMulticastGroup(0, []int{1, 2, 3})
	count := 0
	for _, h := range st.Hosts[1:4] {
		h.Deliver = func(p *netsim.Packet) { count++ }
	}
	st.Hosts[0].Send(&netsim.Packet{Kind: netsim.KindData, Size: netsim.DataSize, Src: 0, Group: g})
	st.Net.Eng.Run()
	if count != 3 {
		t.Fatalf("star multicast delivered %d/3", count)
	}
}
