package topology

import (
	"fmt"
	"math"
	"sort"

	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
)

// Chaos targeting helpers: enumerate the fat tree's links and switches
// by layer in a deterministic order, and pick a seeded fraction of
// them — the one source of truth behind fault injection
// (internal/chaos) and the hotspot degradation experiment.

// Link is one full-duplex fabric link: the two simplex ports, one per
// direction. Fault and rate operations apply to both.
type Link struct {
	// Name identifies the link for logs and event traces
	// ("agg-0-1<->core-3").
	Name string
	// A and B are the two directions (A's owner faces B's owner).
	A, B *netsim.Port
}

// SetUp takes both directions of the link down or up.
func (l Link) SetUp(up bool) {
	l.A.SetUp(up)
	l.B.SetUp(up)
}

// SetLossRate applies a random-loss probability to both directions.
func (l Link) SetLossRate(r float64) {
	l.A.SetLossRate(r)
	l.B.SetLossRate(r)
}

// DivideRate divides both directions' transmission rate by div.
func (l Link) DivideRate(div int64) {
	l.A.SetRate(l.A.Rate() / div)
	l.B.SetRate(l.B.Rate() / div)
}

// reversePort returns the port on `peer` whose far end is `owner` —
// the other direction of a full-duplex link.
func reversePort(peer *netsim.Switch, owner netsim.Node) *netsim.Port {
	for _, p := range peer.Ports {
		if p.Peer() == owner {
			return p
		}
	}
	panic(fmt.Sprintf("topology: no reverse port on %s", peer.Name))
}

// CoreLinks enumerates every agg<->core link (k^3/4 of them),
// agg-major in pod order — the layer whose failures the paper's
// path-redundancy claim is about.
func (ft *FatTree) CoreLinks() []Link {
	half := ft.K / 2
	out := make([]Link, 0, len(ft.aggs)*half)
	for _, agg := range ft.aggs {
		for up := half; up < ft.K; up++ {
			ap := agg.Ports[up]
			core := ap.Peer().(*netsim.Switch)
			out = append(out, Link{
				Name: fmt.Sprintf("%s<->%s", agg.Name, core.Name),
				A:    ap,
				B:    reversePort(core, agg),
			})
		}
	}
	return out
}

// AggLinks enumerates every edge<->agg link (k^3/4), edge-major.
func (ft *FatTree) AggLinks() []Link {
	half := ft.K / 2
	out := make([]Link, 0, len(ft.edges)*half)
	for _, edge := range ft.edges {
		for up := half; up < ft.K; up++ {
			ep := edge.Ports[up]
			agg := ep.Peer().(*netsim.Switch)
			out = append(out, Link{
				Name: fmt.Sprintf("%s<->%s", edge.Name, agg.Name),
				A:    ep,
				B:    reversePort(agg, edge),
			})
		}
	}
	return out
}

// HostLinks enumerates every host<->edge link (k^3/4) in host order.
func (ft *FatTree) HostLinks() []Link {
	out := make([]Link, 0, len(ft.Hosts))
	for h, host := range ft.Hosts {
		pod, e, pos := ft.edgeOf(h)
		edge := ft.edge(pod, e)
		out = append(out, Link{
			Name: fmt.Sprintf("host-%d<->%s", h, edge.Name),
			A:    host.NIC,
			B:    edge.Ports[pos],
		})
	}
	return out
}

// CoreSwitches returns the core layer ((k/2)^2 switches).
func (ft *FatTree) CoreSwitches() []*netsim.Switch { return ft.cores }

// AggSwitches returns the aggregation layer (k^2/2 switches).
func (ft *FatTree) AggSwitches() []*netsim.Switch { return ft.aggs }

// EdgeSwitches returns the edge (ToR) layer (k^2/2 switches).
func (ft *FatTree) EdgeSwitches() []*netsim.Switch { return ft.edges }

// PickCount returns how many of n targets a fraction selects:
// round(frac*n), clamped to [0, n]. Exposed so callers can validate
// or report the exact blast radius before injecting anything.
func PickCount(n int, frac float64) int {
	c := int(math.Round(frac * float64(n)))
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	return c
}

// pickIndices selects PickCount(n, frac) indices by a seeded shuffle,
// returned in ascending order — the single deterministic "pick a
// fraction" primitive shared by link and switch targeting.
func pickIndices(n int, frac float64, seed int64) []int {
	count := PickCount(n, frac)
	idx := sim.RNG(seed, "pick-fraction").Perm(n)[:count]
	sort.Ints(idx)
	return idx
}

// PickLinks returns a seeded selection of round(frac*len(links))
// links, in enumeration order. Same (links, frac, seed) always yields
// the same selection.
func PickLinks(links []Link, frac float64, seed int64) []Link {
	idx := pickIndices(len(links), frac, seed)
	out := make([]Link, len(idx))
	for i, j := range idx {
		out[i] = links[j]
	}
	return out
}

// PickSwitches returns a seeded selection of round(frac*len(sws))
// switches, in enumeration order.
func PickSwitches(sws []*netsim.Switch, frac float64, seed int64) []*netsim.Switch {
	idx := pickIndices(len(sws), frac, seed)
	out := make([]*netsim.Switch, len(idx))
	for i, j := range idx {
		out[i] = sws[j]
	}
	return out
}
