package store

import (
	"polyraptor/internal/sim"
)

// FailMode selects the mid-run failure scenario.
type FailMode int

const (
	// FailNone runs without failures.
	FailNone FailMode = iota
	// FailServer kills one random storage server.
	FailServer
	// FailRack kills every server under one random edge switch — the
	// correlated failure rack-aware placement exists to survive.
	FailRack
)

// String returns the CLI/report name of the mode.
func (m FailMode) String() string {
	switch m {
	case FailNone:
		return "none"
	case FailServer:
		return "server"
	case FailRack:
		return "rack"
	}
	return "unknown"
}

// ParseFailMode maps a CLI name to a FailMode.
func ParseFailMode(name string) (FailMode, bool) {
	switch name {
	case "none":
		return FailNone, true
	case "server":
		return FailServer, true
	case "rack":
		return FailRack, true
	}
	return 0, false
}

// Recovery describes one failure and the re-replication storm that
// healed it.
type Recovery struct {
	// Mode is the injected failure kind (FailNone if the run had none).
	Mode FailMode
	// FailedHosts are the killed servers.
	FailedHosts []int
	// InjectedAt is when the hosts died; DetectedAt is when the storm
	// started (InjectedAt + DetectDelay).
	InjectedAt, DetectedAt sim.Time
	// LostReplicas is the number of objects that lost a replica. With
	// distinct-rack placement a single server or rack failure costs at
	// most one replica per object, so this equals the repair count.
	LostReplicas int
	// Repaired counts completed re-replication transfers.
	Repaired int
	// Unrepairable counts objects for which no eligible replacement
	// host existed (only possible when failures exhaust whole racks).
	Unrepairable int
	// CompletedAt is when the last repair finished.
	CompletedAt sim.Time
	// FullyReplicated reports whether every object ended with R alive
	// replicas in distinct racks.
	FullyReplicated bool
}

// Duration returns failure-to-full-replication time, the headline
// recovery metric.
func (r Recovery) Duration() sim.Time {
	if r.Mode == FailNone || r.CompletedAt < r.InjectedAt {
		return 0
	}
	return r.CompletedAt - r.InjectedAt
}

// injectFailure kills the configured victim set, strips it from the
// catalogue (so subsequent GETs immediately fail over to surviving
// replicas) and schedules the re-replication storm after the
// detection delay.
func (e *engine) injectFailure() {
	rng := sim.RNG(e.cfg.Seed, "store-failure")
	var victims []int
	switch e.cfg.FailMode {
	case FailServer:
		victims = []int{e.aliveVictim(rng)}
	case FailRack:
		rack := e.ft.RackOf(e.aliveVictim(rng))
		for _, h := range e.ft.RackHosts(rack) {
			if e.cat.Alive(h) {
				victims = append(victims, h)
			}
		}
	default:
		return
	}

	degraded := e.cat.Kill(victims)
	rec := &e.res.Recovery
	rec.Mode = e.cfg.FailMode
	rec.FailedHosts = victims
	rec.InjectedAt = e.ft.Net.Now()
	rec.DetectedAt = rec.InjectedAt + e.cfg.DetectDelay
	rec.LostReplicas = len(degraded)
	e.ft.Net.Eng.After(e.cfg.DetectDelay, func() { e.startRepairs(degraded) })
}

func (e *engine) aliveVictim(rng intner) int {
	for {
		h := rng.Intn(e.ft.NumHosts())
		if e.cat.Alive(h) {
			return h
		}
	}
}

// intner is the subset of *rand.Rand the victim picker needs.
type intner interface{ Intn(int) int }

// startRepairs plans the re-replication storm: every degraded object
// gets a replacement host (restoring the distinct-rack invariant) and
// a source — the surviving replica with the fewest repairs already
// assigned, so the storm spreads across source hosts. Each source
// serves its queue sequentially (the HDFS-style per-node repair
// throttle); sources run in parallel, which is what makes it a storm.
func (e *engine) startRepairs(degraded []int) {
	rng := sim.RNG(e.cfg.Seed, "store-repair")
	rec := &e.res.Recovery
	load := map[int]int{}
	var sources []int // first-assignment order: map iteration would be nondeterministic
	for _, id := range degraded {
		srcs := e.cat.AliveReplicas(id)
		if len(srcs) == 0 {
			rec.Unrepairable++
			continue
		}
		dst := e.cat.PlaceRepair(rng, id)
		if dst < 0 {
			rec.Unrepairable++
			continue
		}
		src := srcs[0]
		for _, s := range srcs[1:] {
			if load[s] < load[src] || (load[s] == load[src] && s < src) {
				src = s
			}
		}
		if load[src] == 0 {
			sources = append(sources, src)
		}
		load[src]++
		e.repairQ[src] = append(e.repairQ[src], repair{object: id, dst: dst})
		e.repairsLeft++
	}
	if e.repairsLeft == 0 {
		rec.CompletedAt = e.ft.Net.Now()
		rec.FullyReplicated = e.cat.FullyReplicated(e.cfg.Replicas)
		return
	}
	for _, src := range sources {
		e.nextRepair(src)
	}
}

// nextRepair pops one repair off src's queue and runs it; completion
// registers the new replica and chains to the next queued repair.
func (e *engine) nextRepair(src int) {
	q := e.repairQ[src]
	if len(q) == 0 {
		return
	}
	r := q[0]
	e.repairQ[src] = q[1:]
	start := e.ft.Net.Now()
	bytes := e.cat.Object(r.object).Bytes
	e.be.Write(src, []int{r.dst}, bytes, func() {
		e.cat.AddReplica(r.object, r.dst)
		rec := &e.res.Recovery
		rec.Repaired++
		e.res.Repairs = append(e.res.Repairs, Xfer{
			Object: r.object, Client: r.dst, Bytes: bytes,
			Start: start, End: e.ft.Net.Now(),
		})
		e.repairsLeft--
		if e.repairsLeft == 0 {
			rec.CompletedAt = e.ft.Net.Now()
			rec.FullyReplicated = e.cat.FullyReplicated(e.cfg.Replicas)
		}
		e.nextRepair(src)
	})
}
