package store

import (
	"fmt"
	"strings"

	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/topology"
)

// BackendKind selects the transport under the store.
type BackendKind int

const (
	// BackendPolyraptor maps PUTs to one-to-many multicast and GETs to
	// many-to-one multi-source fetches over NDP trimming switches.
	BackendPolyraptor BackendKind = iota
	// BackendTCP is the paper's baseline: PUTs multi-unicast R full
	// copies, GETs fetch uncoordinated 1/R shares, over drop-tail.
	BackendTCP
	// BackendDCTCP is BackendTCP with DCTCP congestion control and
	// ECN-marking switches.
	BackendDCTCP
)

// String returns the CLI/report name of the backend.
func (k BackendKind) String() string {
	switch k {
	case BackendPolyraptor:
		return "polyraptor"
	case BackendTCP:
		return "tcp"
	case BackendDCTCP:
		return "dctcp"
	}
	return "unknown"
}

// ParseBackend maps a CLI name to a BackendKind.
func ParseBackend(name string) (BackendKind, bool) {
	switch name {
	case "polyraptor", "rq":
		return BackendPolyraptor, true
	case "tcp":
		return BackendTCP, true
	case "dctcp":
		return BackendDCTCP, true
	}
	return 0, false
}

// ParseBackends expands a CLI backend list ("all" or a comma list of
// ParseBackend names) — the shared implementation behind every
// -backend/-backends flag.
func ParseBackends(arg string) ([]BackendKind, error) {
	if arg == "all" {
		return []BackendKind{BackendPolyraptor, BackendTCP, BackendDCTCP}, nil
	}
	var out []BackendKind
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		kind, ok := ParseBackend(name)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q", name)
		}
		out = append(out, kind)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends selected")
	}
	return out, nil
}

// NetConfig returns the switch configuration each backend assumes:
// trimming for Polyraptor, plain drop-tail for TCP, ECN-marking
// drop-tail for DCTCP.
func (k BackendKind) NetConfig(seed int64) netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.Seed = seed
	switch k {
	case BackendTCP:
		cfg.Trimming = false
	case BackendDCTCP:
		cfg.Trimming = false
		cfg.ECNThreshold = 20
	}
	return cfg
}

// backend abstracts the two transfer patterns the store issues. done
// fires once per call, when the last replica/share completes.
type backend interface {
	// Write pushes one full object from src to every dst.
	Write(src int, dsts []int, bytes int64, done func())
	// Read assembles one full object at dst from srcs, each of which
	// holds a complete copy.
	Read(dst int, srcs []int, bytes int64, done func())
}

// newBackend builds the transport systems on an existing fabric.
func newBackend(kind BackendKind, ft *topology.FatTree, seed int64) backend {
	switch kind {
	case BackendPolyraptor:
		sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
		sys.PruneGroup = ft.PruneMulticastLeaf
		return &polyBackend{ft: ft, sys: sys}
	case BackendTCP:
		return &tcpBackend{sys: tcpsim.NewSystem(ft.Net, tcpsim.DefaultConfig())}
	case BackendDCTCP:
		return &tcpBackend{sys: tcpsim.NewSystem(ft.Net, tcpsim.DCTCPConfig())}
	}
	panic("store: unknown backend kind")
}

// polyBackend drives polyraptor.System.
type polyBackend struct {
	ft  *topology.FatTree
	sys *polyraptor.System
}

func (b *polyBackend) Write(src int, dsts []int, bytes int64, done func()) {
	if len(dsts) == 1 {
		b.sys.StartUnicast(src, dsts[0], bytes, func(polyraptor.CompletionEvent) {
			if done != nil {
				done()
			}
		})
		return
	}
	g := b.ft.InstallMulticastGroup(src, dsts)
	remaining := len(dsts)
	b.sys.StartMulticast(src, dsts, g, bytes, func(polyraptor.CompletionEvent) {
		remaining--
		if remaining == 0 {
			b.ft.RemoveMulticastGroup(g)
			if done != nil {
				done()
			}
		}
	})
}

func (b *polyBackend) Read(dst int, srcs []int, bytes int64, done func()) {
	b.sys.StartMultiSource(srcs, dst, bytes, func(polyraptor.CompletionEvent) {
		if done != nil {
			done()
		}
	})
}

// tcpBackend drives tcpsim.System with the paper's pattern emulation.
type tcpBackend struct {
	sys *tcpsim.System
}

func (b *tcpBackend) Write(src int, dsts []int, bytes int64, done func()) {
	remaining := len(dsts)
	for _, d := range dsts {
		b.sys.StartFlow(src, d, bytes, func(tcpsim.FlowResult) {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}

func (b *tcpBackend) Read(dst int, srcs []int, bytes int64, done func()) {
	n := int64(len(srcs))
	share := bytes / n
	remaining := len(srcs)
	for i, s := range srcs {
		sz := share
		if i == len(srcs)-1 {
			sz = bytes - share*(n-1)
		}
		b.sys.StartFlow(s, dst, sz, func(tcpsim.FlowResult) {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}
