// Package store simulates a replicated object store — the GFS/HDFS-
// style system the Polyraptor paper assumes as its workload source —
// running on the simulated fat-tree fabric.
//
// The subsystem has three parts:
//
//   - A catalogue of R-way replicated objects with rack-aware
//     placement (no two replicas of an object share a rack, so any
//     single server or rack failure costs at most one replica per
//     object) and Zipf-skewed access popularity.
//   - A client request engine issuing a Poisson stream of GETs and
//     PUTs. Over the Polyraptor backend a PUT is a one-to-many
//     multicast replication and a GET a many-to-one multi-source
//     fetch; over the TCP/DCTCP baselines a PUT is R independent
//     full-copy unicasts and a GET R uncoordinated 1/R partial
//     fetches — exactly the paper's transfer-pattern mapping.
//   - A failure/recovery engine that kills a server or a whole rack
//     mid-run and drives the resulting re-replication storm, so
//     recovery time and its interference with foreground GET latency
//     become measurable quantities.
//
// Everything is deterministic per seed: the catalogue, the request
// schedule, the failure victim and the repair plan all derive from
// labelled sim.RNG streams.
//
// Modelling simplifications, chosen so the same request schedule is
// comparable across backends:
//
//   - The catalogue registers a PUT's placement at issue time (the
//     master grants the lease immediately); the transfer models the
//     data path separately, and GETs only ever target the pre-loaded
//     Zipf domain, so no read observes a write in flight.
//   - Host death is a catalogue event, not a transport event: it
//     redirects future placement, GET source selection and repair
//     planning, but transfers already in flight to or from a dead
//     host run to completion. A PUT overlapping the failure is
//     therefore still repaired from its issue-time placement, and its
//     copies to dead hosts still complete and are logged.
package store

import (
	"fmt"
	"math/rand"
)

// Topology is the placement-relevant view of the fabric.
type Topology interface {
	NumHosts() int
	NumRacks() int
	RackOf(h int) int
}

// Object is one replicated block in the catalogue.
type Object struct {
	// ID is dense, 0..N-1, in creation order (seeded objects first,
	// then PUT-created ones).
	ID int
	// Bytes is the object size.
	Bytes int64
	// Replicas are the hosts currently holding a full copy. Dead hosts
	// are removed on failure; repair appends the re-replicated copy.
	Replicas []int
}

// Catalog tracks objects, their placement, and host liveness.
type Catalog struct {
	topo    Topology
	objects []Object
	dead    map[int]bool
}

// NewCatalog returns an empty catalogue over the given fabric.
func NewCatalog(topo Topology) *Catalog {
	return &Catalog{topo: topo, dead: map[int]bool{}}
}

// Len returns the number of objects.
func (c *Catalog) Len() int { return len(c.objects) }

// Object returns object id by value (callers must not mutate
// placement behind the catalogue's back).
func (c *Catalog) Object(id int) Object { return c.objects[id] }

// Alive reports whether host h is in service.
func (c *Catalog) Alive(h int) bool { return !c.dead[h] }

// AliveReplicas returns the in-service replica hosts of object id.
func (c *Catalog) AliveReplicas(id int) []int {
	var out []int
	for _, h := range c.objects[id].Replicas {
		if !c.dead[h] {
			out = append(out, h)
		}
	}
	return out
}

// Add registers a new object with the given placement and returns it.
func (c *Catalog) Add(bytes int64, replicas []int) Object {
	o := Object{ID: len(c.objects), Bytes: bytes, Replicas: replicas}
	c.objects = append(c.objects, o)
	return o
}

// Place picks `r` replica hosts for a new object: distinct hosts in
// distinct racks, all alive, and — when writerRack >= 0 — all outside
// the writer's rack (the paper's GFS scenario places replicas
// "randomly ... outside the client's rack"). Seeded objects pass
// writerRack = -1. It returns nil when failures have left fewer
// eligible racks than the placement needs (the caller skips the PUT);
// asking for more racks than the fabric has at all is a configuration
// error and panics.
func (c *Catalog) Place(rng *rand.Rand, writerRack, r int) []int {
	need := r
	if writerRack >= 0 {
		need++
	}
	if need > c.topo.NumRacks() {
		panic(fmt.Sprintf("store: %d replicas need %d distinct racks, fabric has %d",
			r, need, c.topo.NumRacks()))
	}
	used := map[int]bool{}
	if writerRack >= 0 {
		used[writerRack] = true
	}
	out := make([]int, 0, r)
	for len(out) < r {
		// Count eligible hosts under the current rack exclusions so
		// dynamic exhaustion (dead racks) terminates instead of
		// spinning — same guard as PlaceRepair.
		eligible := 0
		for h := 0; h < c.topo.NumHosts(); h++ {
			if !c.dead[h] && !used[c.topo.RackOf(h)] {
				eligible++
			}
		}
		if eligible == 0 {
			return nil
		}
		for {
			h := rng.Intn(c.topo.NumHosts())
			if c.dead[h] || used[c.topo.RackOf(h)] {
				continue
			}
			used[c.topo.RackOf(h)] = true
			out = append(out, h)
			break
		}
	}
	return out
}

// PlaceRepair picks one replacement host for object id: alive, not
// already a replica, and in a rack none of the surviving replicas
// occupy, restoring the distinct-rack invariant. It returns -1 when no
// such host exists (every eligible rack is dead).
func (c *Catalog) PlaceRepair(rng *rand.Rand, id int) int {
	used := map[int]bool{}
	for _, h := range c.AliveReplicas(id) {
		used[c.topo.RackOf(h)] = true
	}
	// Count eligible hosts first so exhaustion terminates instead of
	// spinning: a whole-rack failure can make entire racks ineligible.
	eligible := 0
	for h := 0; h < c.topo.NumHosts(); h++ {
		if !c.dead[h] && !used[c.topo.RackOf(h)] {
			eligible++
		}
	}
	if eligible == 0 {
		return -1
	}
	for {
		h := rng.Intn(c.topo.NumHosts())
		if !c.dead[h] && !used[c.topo.RackOf(h)] {
			return h
		}
	}
}

// Kill marks hosts dead and strips them from every object's replica
// set. It returns the IDs of objects that lost at least one replica,
// in ID order — the re-replication work list.
func (c *Catalog) Kill(hosts []int) []int {
	for _, h := range hosts {
		c.dead[h] = true
	}
	var degraded []int
	for i := range c.objects {
		o := &c.objects[i]
		kept := o.Replicas[:0]
		lost := false
		for _, h := range o.Replicas {
			if c.dead[h] {
				lost = true
			} else {
				kept = append(kept, h)
			}
		}
		o.Replicas = kept
		if lost {
			degraded = append(degraded, o.ID)
		}
	}
	return degraded
}

// AddReplica records that host h now holds a full copy of object id
// (a completed repair transfer).
func (c *Catalog) AddReplica(id, h int) {
	c.objects[id].Replicas = append(c.objects[id].Replicas, h)
}

// FullyReplicated reports whether every object has at least r alive
// replicas in distinct racks.
func (c *Catalog) FullyReplicated(r int) bool {
	for i := range c.objects {
		alive := c.AliveReplicas(i)
		if len(alive) < r {
			return false
		}
		racks := map[int]bool{}
		for _, h := range alive {
			if racks[c.topo.RackOf(h)] {
				return false
			}
			racks[c.topo.RackOf(h)] = true
		}
	}
	return true
}
