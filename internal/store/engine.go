package store

import (
	"fmt"
	"math"
	"math/rand"

	"polyraptor/internal/sim"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

// Config parametrises one storage-cluster run.
type Config struct {
	// FatTreeK is the fabric arity (hosts = k^3/4, racks = k^2/2).
	FatTreeK int
	// Backend selects the transport under the store.
	Backend BackendKind
	// Objects is the number of pre-loaded catalogue objects; GETs draw
	// from this set under the Zipf popularity.
	Objects int
	// ObjectBytes is the object (block) size.
	ObjectBytes int64
	// Replicas is R, the replication factor. Placement needs R+1
	// distinct racks (R replica racks plus the writer's).
	Replicas int
	// ZipfSkew is the popularity exponent (0 = uniform, ~1 = web-like).
	ZipfSkew float64
	// Requests is the total number of client requests issued.
	Requests int
	// PutFrac is the fraction of requests that are PUTs.
	PutFrac float64
	// Lambda is the Poisson request arrival rate in requests/second.
	// Zero derives it from LoadFactor so scaled-down runs keep per-host
	// delivered load constant (same normalisation as harness.Scale).
	Lambda float64
	// LoadFactor is the target per-host delivered load fraction used
	// when Lambda is zero.
	LoadFactor float64
	// FailMode selects the mid-run failure, if any.
	FailMode FailMode
	// FailFrac positions the failure at the arrival time of request
	// floor(FailFrac * Requests).
	FailFrac float64
	// DetectDelay is the lag between failure and the start of the
	// re-replication storm (the master's heartbeat timeout).
	DetectDelay sim.Time
	// Seed drives every random choice.
	Seed int64
}

// DefaultConfig returns a medium cluster: 128-host fabric (k=8),
// 3-way replication, web-like skew, 10% writes, a rack failure
// mid-run.
func DefaultConfig() Config {
	return Config{
		FatTreeK:    8,
		Backend:     BackendPolyraptor,
		Objects:     200,
		ObjectBytes: 1 << 20,
		Replicas:    3,
		ZipfSkew:    0.9,
		Requests:    600,
		PutFrac:     0.1,
		LoadFactor:  0.3,
		FailMode:    FailRack,
		FailFrac:    0.5,
		DetectDelay: 10 * 1e6, // 10 ms heartbeat timeout
		Seed:        1,
	}
}

// ShortConfig returns a k=4 run small enough for go test -short while
// still exercising placement, both request patterns and a rack
// failure.
func ShortConfig() Config {
	cfg := DefaultConfig()
	cfg.FatTreeK = 4
	cfg.Objects = 48
	cfg.ObjectBytes = 256 << 10
	cfg.Requests = 160
	return cfg
}

// Hosts returns the fabric's host count, k^3/4 — the one place the
// formula lives.
func (cfg Config) Hosts() int {
	return cfg.FatTreeK * cfg.FatTreeK * cfg.FatTreeK / 4
}

// Racks returns the fabric's rack (edge switch) count, k^2/2.
func (cfg Config) Racks() int {
	return cfg.FatTreeK * cfg.FatTreeK / 2
}

// lambda returns the configured or derived arrival rate.
func (cfg Config) lambda(linkRate int64) float64 {
	if cfg.Lambda > 0 {
		return cfg.Lambda
	}
	// A GET delivers one copy to the client's downlink; a PUT delivers
	// R copies across replica downlinks.
	mult := cfg.PutFrac*float64(cfg.Replicas) + (1 - cfg.PutFrac)
	return cfg.LoadFactor * float64(cfg.Hosts()) * float64(linkRate) / (8 * float64(cfg.ObjectBytes) * mult)
}

// Validate checks every field combination against the fabric the
// config itself describes (racks = k^2/2), without building anything —
// CLIs call it before the engine runs, so an impossible matrix (e.g.
// R+1 racks on a fabric with fewer) is a clear immediate error instead
// of a failure deep in placement.
func (cfg Config) Validate() error {
	if cfg.FatTreeK < 2 || cfg.FatTreeK%2 != 0 {
		return fmt.Errorf("store: fat-tree arity k=%d must be even and >= 2", cfg.FatTreeK)
	}
	if cfg.Replicas < 1 {
		return fmt.Errorf("store: Replicas must be >= 1, got %d", cfg.Replicas)
	}
	if cfg.Objects < 1 {
		return fmt.Errorf("store: Objects must be >= 1, got %d", cfg.Objects)
	}
	if cfg.ObjectBytes < 1 {
		return fmt.Errorf("store: ObjectBytes must be >= 1, got %d", cfg.ObjectBytes)
	}
	if cfg.Replicas+1 > cfg.Racks() {
		return fmt.Errorf("store: R=%d needs %d distinct racks (replicas + writer), k=%d fabric has %d (k^2/2)",
			cfg.Replicas, cfg.Replicas+1, cfg.FatTreeK, cfg.Racks())
	}
	if cfg.PutFrac < 0 || cfg.PutFrac > 1 {
		return fmt.Errorf("store: PutFrac must be in [0,1], got %g", cfg.PutFrac)
	}
	if cfg.ZipfSkew < 0 {
		return fmt.Errorf("store: ZipfSkew must be non-negative, got %g", cfg.ZipfSkew)
	}
	if cfg.Lambda < 0 {
		return fmt.Errorf("store: Lambda must be >= 0, got %g", cfg.Lambda)
	}
	if cfg.Lambda <= 0 && cfg.LoadFactor <= 0 {
		return fmt.Errorf("store: either Lambda or LoadFactor must be positive")
	}
	if cfg.Requests < 0 {
		return fmt.Errorf("store: Requests must be >= 0, got %d", cfg.Requests)
	}
	if cfg.FailFrac < 0 || cfg.FailFrac > 1 {
		return fmt.Errorf("store: FailFrac must be in [0,1], got %g", cfg.FailFrac)
	}
	if cfg.DetectDelay < 0 {
		return fmt.Errorf("store: DetectDelay must be >= 0, got %v", cfg.DetectDelay)
	}
	return nil
}

// Xfer records one completed transfer (GET, PUT or repair).
type Xfer struct {
	// Object is the catalogue object ID.
	Object int
	// Client is the reading host (GET), writing host (PUT) or the
	// replacement replica host (repair).
	Client int
	// Bytes is the object size.
	Bytes int64
	// Start and End bound the transfer.
	Start, End sim.Time
}

// FCT returns the flow completion time.
func (x Xfer) FCT() sim.Time { return x.End - x.Start }

// GoodputGbps returns application goodput in Gbit/s.
func (x Xfer) GoodputGbps() float64 {
	d := x.FCT().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(x.Bytes*8) / d / 1e9
}

// Result is everything one run measured.
type Result struct {
	Backend BackendKind
	// Gets, Puts and Repairs are completed transfers in completion
	// order.
	Gets, Puts, Repairs []Xfer
	// SkippedGets counts GETs that found no alive replica (data
	// unavailable at issue time).
	SkippedGets int
	// SkippedPuts counts PUTs that found no eligible placement
	// (failures left fewer alive racks than R+1).
	SkippedPuts int
	// Recovery describes the failure and the re-replication storm.
	Recovery Recovery
	// Makespan is the simulated time when the last event ran.
	Makespan sim.Time
}

// GetGoodputs returns per-GET goodput in Gbps.
func (r *Result) GetGoodputs() []float64 { return Goodputs(r.Gets) }

// PutGoodputs returns per-PUT goodput in Gbps.
func (r *Result) PutGoodputs() []float64 { return Goodputs(r.Puts) }

// GetFCTs returns per-GET completion times in seconds.
func (r *Result) GetFCTs() []float64 { return FCTs(r.Gets) }

// PutFCTs returns per-PUT completion times in seconds.
func (r *Result) PutFCTs() []float64 { return FCTs(r.Puts) }

// GetsDuringRecovery returns the GETs issued while the re-replication
// storm was in flight — from failure detection (when the storm
// starts) to the last repair's completion. GETs in the degraded-but-
// storm-free window [InjectedAt, DetectedAt) belong to neither this
// set nor GetsBeforeFailure, so the interference ratio compares a
// clean baseline against genuinely storm-contended reads. Empty when
// no failure was injected.
func (r *Result) GetsDuringRecovery() []Xfer {
	if r.Recovery.Mode == FailNone {
		return nil
	}
	var out []Xfer
	for _, x := range r.Gets {
		if x.Start >= r.Recovery.DetectedAt && x.Start < r.Recovery.CompletedAt {
			out = append(out, x)
		}
	}
	return out
}

// GetsBeforeFailure returns the GETs that completed before the
// failure — the clean interference baseline (a GET merely issued
// before the failure can finish mid-storm with an inflated FCT) — or
// all GETs when no failure was injected.
func (r *Result) GetsBeforeFailure() []Xfer {
	if r.Recovery.Mode == FailNone {
		return r.Gets
	}
	var out []Xfer
	for _, x := range r.Gets {
		if x.End <= r.Recovery.InjectedAt {
			out = append(out, x)
		}
	}
	return out
}

// Goodputs maps transfers to per-transfer goodput in Gbps.
func Goodputs(xs []Xfer) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x.GoodputGbps()
	}
	return out
}

// FCTs maps transfers to completion times in seconds.
func FCTs(xs []Xfer) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x.FCT().Seconds()
	}
	return out
}

// engine is one in-flight run.
type engine struct {
	cfg Config
	ft  *topology.FatTree
	cat *Catalog
	be  backend

	zipf    *workload.Zipf
	kindRng *rand.Rand
	objRng  *rand.Rand
	cliRng  *rand.Rand
	plcRng  *rand.Rand

	res Result

	repairQ     map[int][]repair
	repairsLeft int
}

type repair struct {
	object int
	dst    int
}

// Run executes one storage-cluster simulation and returns its
// measurements. Everything — catalogue, schedule, failure, repairs —
// is deterministic per Config.Seed.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ft, err := topology.NewFatTree(cfg.FatTreeK, cfg.Backend.NetConfig(cfg.Seed))
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		ft:      ft,
		cat:     NewCatalog(ft),
		be:      newBackend(cfg.Backend, ft, cfg.Seed),
		zipf:    workload.NewZipf(cfg.Objects, cfg.ZipfSkew),
		kindRng: sim.RNG(cfg.Seed, "store-kind"),
		objRng:  sim.RNG(cfg.Seed, "store-objects"),
		cliRng:  sim.RNG(cfg.Seed, "store-clients"),
		plcRng:  sim.RNG(cfg.Seed, "store-placement"),
		repairQ: map[int][]repair{},
	}
	e.res.Backend = cfg.Backend

	// Pre-load the catalogue. Seeded objects have no writer, so no
	// writer-rack exclusion applies.
	for i := 0; i < cfg.Objects; i++ {
		e.cat.Add(cfg.ObjectBytes, e.cat.Place(e.plcRng, -1, cfg.Replicas))
	}

	// Poisson request schedule, generated up front so the failure can
	// be pinned to a request index.
	arrivals := sim.RNG(cfg.Seed, "store-arrivals")
	lambda := cfg.lambda(ft.Net.Cfg.LinkRate)
	times := make([]sim.Time, cfg.Requests)
	var t sim.Time
	for i := range times {
		gap := -math.Log(1-arrivals.Float64()) / lambda
		t += sim.Time(gap * 1e9)
		times[i] = t
	}
	for i := range times {
		ft.Net.Eng.At(times[i], e.issueRequest)
	}
	if cfg.FailMode != FailNone && cfg.Requests > 0 {
		idx := int(cfg.FailFrac * float64(cfg.Requests))
		if idx < 0 {
			idx = 0
		}
		if idx >= cfg.Requests {
			idx = cfg.Requests - 1
		}
		ft.Net.Eng.At(times[idx], e.injectFailure)
	}

	ft.Net.Eng.Run()
	e.res.Makespan = ft.Net.Now()
	return &e.res, nil
}

// issueRequest draws and starts one GET or PUT.
func (e *engine) issueRequest() {
	if e.kindRng.Float64() < e.cfg.PutFrac {
		e.issuePut()
	} else {
		e.issueGet()
	}
}

func (e *engine) issuePut() {
	client := e.drawClient(nil)
	replicas := e.cat.Place(e.plcRng, e.ft.RackOf(client), e.cfg.Replicas)
	if replicas == nil {
		e.res.SkippedPuts++
		return
	}
	// The catalogue registers placement at issue time (the master
	// grants the lease immediately); the transfer below models the data
	// path. GETs never target PUT-created objects — the Zipf domain is
	// the pre-loaded set — so no read observes a write in flight.
	obj := e.cat.Add(e.cfg.ObjectBytes, replicas)
	start := e.ft.Net.Now()
	e.be.Write(client, replicas, obj.Bytes, func() {
		e.res.Puts = append(e.res.Puts, Xfer{
			Object: obj.ID, Client: client, Bytes: obj.Bytes,
			Start: start, End: e.ft.Net.Now(),
		})
	})
}

func (e *engine) issueGet() {
	id := e.zipf.Sample(e.objRng)
	srcs := e.cat.AliveReplicas(id)
	if len(srcs) == 0 {
		e.res.SkippedGets++
		return
	}
	client := e.drawClient(srcs)
	o := e.cat.Object(id)
	start := e.ft.Net.Now()
	e.be.Read(client, srcs, o.Bytes, func() {
		e.res.Gets = append(e.res.Gets, Xfer{
			Object: id, Client: client, Bytes: o.Bytes,
			Start: start, End: e.ft.Net.Now(),
		})
	})
}

// drawClient picks an alive host outside `exclude` (a GET client must
// not already hold a replica: a local read would bypass the network).
func (e *engine) drawClient(exclude []int) int {
	n := e.ft.NumHosts()
	for tries := 0; tries < 100*n; tries++ {
		h := e.cliRng.Intn(n)
		if !e.cat.Alive(h) {
			continue
		}
		ok := true
		for _, x := range exclude {
			if x == h {
				ok = false
				break
			}
		}
		if ok {
			return h
		}
	}
	panic("store: no eligible client host")
}
