package store

import (
	"reflect"
	"testing"

	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
	"polyraptor/internal/topology"
)

func testTree(t *testing.T, k int) *topology.FatTree {
	t.Helper()
	ft, err := topology.NewFatTree(k, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// TestPlacementInvariants checks the catalogue's placement rules: R
// distinct hosts, pairwise-distinct racks, never the writer's rack,
// never a dead host.
func TestPlacementInvariants(t *testing.T) {
	ft := testTree(t, 4)
	cat := NewCatalog(ft)
	cat.Kill([]int{5})
	rng := sim.RNG(7, "test-placement")
	for trial := 0; trial < 500; trial++ {
		writer := trial % ft.NumHosts()
		reps := cat.Place(rng, ft.RackOf(writer), 3)
		if len(reps) != 3 {
			t.Fatalf("trial %d: got %d replicas, want 3", trial, len(reps))
		}
		racks := map[int]bool{ft.RackOf(writer): true}
		hosts := map[int]bool{}
		for _, h := range reps {
			if h == 5 {
				t.Fatalf("trial %d: placed replica on dead host 5", trial)
			}
			if hosts[h] {
				t.Fatalf("trial %d: duplicate replica host %d", trial, h)
			}
			hosts[h] = true
			if racks[ft.RackOf(h)] {
				t.Fatalf("trial %d: rack %d used twice (or is the writer's)", trial, ft.RackOf(h))
			}
			racks[ft.RackOf(h)] = true
		}
	}
}

// TestPlaceRepairRestoresRackDisjointness checks that a replacement
// replica never lands in a rack a surviving replica occupies, and that
// exhaustion returns -1 instead of spinning.
func TestPlaceRepair(t *testing.T) {
	ft := testTree(t, 4)
	cat := NewCatalog(ft)
	// Replicas in racks 1, 2, 3 (hosts 2, 4, 6); rack 0 = hosts 0,1.
	cat.Add(1<<20, []int{2, 4, 6})
	cat.Kill([]int{6})
	rng := sim.RNG(3, "test-repair")
	for trial := 0; trial < 200; trial++ {
		h := cat.PlaceRepair(rng, 0)
		if h < 0 {
			t.Fatal("PlaceRepair found no host on a healthy fabric")
		}
		if r := ft.RackOf(h); r == ft.RackOf(2) || r == ft.RackOf(4) {
			t.Fatalf("repair landed in occupied rack %d", r)
		}
		if h == 6 || !cat.Alive(h) {
			t.Fatalf("repair landed on dead host %d", h)
		}
	}
	// Kill everything except the racks the survivors occupy: no
	// eligible rack remains.
	var rest []int
	for h := 0; h < ft.NumHosts(); h++ {
		if r := ft.RackOf(h); r != ft.RackOf(2) && r != ft.RackOf(4) {
			rest = append(rest, h)
		}
	}
	cat.Kill(rest)
	if h := cat.PlaceRepair(rng, 0); h != -1 {
		t.Fatalf("PlaceRepair = %d on exhausted fabric, want -1", h)
	}
}

// TestPlaceExhaustion: when failures leave fewer alive racks than the
// placement needs, Place returns nil instead of spinning (the engine
// then skips the PUT).
func TestPlaceExhaustion(t *testing.T) {
	ft := testTree(t, 4) // 8 racks of 2 hosts
	cat := NewCatalog(ft)
	// Kill racks 4..7: 4 alive racks left; a PUT from rack 0 wanting
	// R=4 needs 5.
	var dead []int
	for r := 4; r < 8; r++ {
		dead = append(dead, ft.RackHosts(r)...)
	}
	cat.Kill(dead)
	rng := sim.RNG(1, "test-exhaustion")
	if got := cat.Place(rng, 0, 4); got != nil {
		t.Fatalf("Place on exhausted fabric = %v, want nil", got)
	}
	// R=3 still fits (racks 1,2,3) and must succeed.
	if got := cat.Place(rng, 0, 3); len(got) != 3 {
		t.Fatalf("Place with exactly enough racks = %v, want 3 hosts", got)
	}
}

// TestConfigValidation: bad configurations are errors, not hangs or
// codec panics.
func TestConfigValidation(t *testing.T) {
	base := ShortConfig()
	for name, mutate := range map[string]func(*Config){
		"negative zipf":  func(c *Config) { c.ZipfSkew = -0.5 },
		"zero rate":      func(c *Config) { c.Lambda = 0; c.LoadFactor = 0 },
		"zero replicas":  func(c *Config) { c.Replicas = 0 },
		"zero objects":   func(c *Config) { c.Objects = 0 },
		"negative bytes": func(c *Config) { c.ObjectBytes = -1 },
		"putfrac > 1":    func(c *Config) { c.PutFrac = 1.5 },
		"negative reqs":  func(c *Config) { c.Requests = -1 },
		"negative delay": func(c *Config) { c.DetectDelay = -1 },
		"too many racks": func(c *Config) { c.Replicas = 8 }, // k=4 has 8 racks, needs 9
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

// TestKillReportsDegradedObjects checks the repair work list.
func TestKillReportsDegradedObjects(t *testing.T) {
	ft := testTree(t, 4)
	cat := NewCatalog(ft)
	cat.Add(1<<20, []int{0, 2, 4}) // racks 0,1,2
	cat.Add(1<<20, []int{6, 8, 10})
	cat.Add(1<<20, []int{1, 3, 5})
	got := cat.Kill([]int{0, 1}) // rack 0
	if want := []int{0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Kill degraded %v, want %v", got, want)
	}
	if n := len(cat.AliveReplicas(0)); n != 2 {
		t.Fatalf("object 0 has %d alive replicas, want 2", n)
	}
	if cat.FullyReplicated(3) {
		t.Fatal("catalogue claims full replication after losing replicas")
	}
	cat.AddReplica(0, 7)
	cat.AddReplica(2, 9)
	if !cat.FullyReplicated(3) {
		t.Fatal("catalogue not fully replicated after repairs")
	}
}

// TestRunDeterministicPerSeed runs the same short config twice and
// demands identical transfer logs — the property the paper's
// five-seed error bars rest on.
func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := ShortConfig()
	cfg.Requests = 60
	cfg.Objects = 24
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Gets, b.Gets) || !reflect.DeepEqual(a.Puts, b.Puts) ||
		!reflect.DeepEqual(a.Repairs, b.Repairs) {
		t.Fatal("identical seeds produced different transfer logs")
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("identical seeds produced different recoveries:\n%+v\n%+v", a.Recovery, b.Recovery)
	}

	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Gets, c.Gets) {
		t.Fatal("different seeds produced identical GET logs")
	}
}

// TestRecoveryStorm runs the k=4 rack-failure scenario end to end and
// asserts the storm returns every object to full R-way, rack-disjoint
// replication.
func TestRecoveryStorm(t *testing.T) {
	for _, mode := range []FailMode{FailServer, FailRack} {
		cfg := ShortConfig()
		cfg.FailMode = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := res.Recovery
		if rec.Mode != mode {
			t.Fatalf("%v: recovery mode %v", mode, rec.Mode)
		}
		wantHosts := 1
		if mode == FailRack {
			wantHosts = 2 // k=4: two hosts per rack
		}
		if len(rec.FailedHosts) != wantHosts {
			t.Fatalf("%v: killed %d hosts, want %d", mode, len(rec.FailedHosts), wantHosts)
		}
		if rec.LostReplicas == 0 {
			t.Fatalf("%v: failure cost no replicas — storm untested", mode)
		}
		if rec.Repaired != rec.LostReplicas || rec.Unrepairable != 0 {
			t.Fatalf("%v: repaired %d of %d lost (%d unrepairable)",
				mode, rec.Repaired, rec.LostReplicas, rec.Unrepairable)
		}
		if !rec.FullyReplicated {
			t.Fatalf("%v: cluster not fully replicated after recovery", mode)
		}
		if rec.Duration() <= 0 {
			t.Fatalf("%v: non-positive recovery duration %v", mode, rec.Duration())
		}
		if rec.DetectedAt != rec.InjectedAt+cfg.DetectDelay {
			t.Fatalf("%v: detection at %v, want %v", mode, rec.DetectedAt, rec.InjectedAt+cfg.DetectDelay)
		}
		if len(res.Repairs) != rec.Repaired {
			t.Fatalf("%v: %d repair transfers logged, %d repaired", mode, len(res.Repairs), rec.Repaired)
		}
	}
}

// TestBackendsShareSchedule checks that the request mix is identical
// across backends for the same seed (same GET/PUT counts and arrival
// pattern), so cross-backend comparisons are apples to apples.
func TestBackendsShareSchedule(t *testing.T) {
	cfg := ShortConfig()
	cfg.FailMode = FailNone
	cfg.Requests = 80
	var gets, puts int
	for i, be := range []BackendKind{BackendPolyraptor, BackendTCP} {
		cfg.Backend = be
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			gets, puts = len(res.Gets), len(res.Puts)
			continue
		}
		if len(res.Gets) != gets || len(res.Puts) != puts {
			t.Fatalf("backend %v saw %d/%d gets/puts, polyraptor saw %d/%d",
				be, len(res.Gets), len(res.Puts), gets, puts)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	for _, c := range []struct {
		name string
		want BackendKind
	}{{"polyraptor", BackendPolyraptor}, {"rq", BackendPolyraptor}, {"tcp", BackendTCP}, {"dctcp", BackendDCTCP}} {
		got, ok := ParseBackend(c.name)
		if !ok || got != c.want {
			t.Fatalf("ParseBackend(%q) = %v,%v", c.name, got, ok)
		}
	}
	if _, ok := ParseBackend("quic"); ok {
		t.Fatal("ParseBackend accepted quic")
	}
	for _, c := range []struct {
		name string
		want FailMode
	}{{"none", FailNone}, {"server", FailServer}, {"rack", FailRack}} {
		got, ok := ParseFailMode(c.name)
		if !ok || got != c.want {
			t.Fatalf("ParseFailMode(%q) = %v,%v", c.name, got, ok)
		}
	}
	if _, ok := ParseFailMode("meteor"); ok {
		t.Fatal("ParseFailMode accepted meteor")
	}
}
