package harness

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/telemetry"
)

// TestTracedRunMatchesUntraced is the zero-cost guarantee at the
// harness level: attaching the flight recorder draws no randomness and
// perturbs no timing, so a traced run's metrics are bit-identical to
// the untraced run's. This is what lets -trace be a pure observability
// switch rather than a different experiment.
func TestTracedRunMatchesUntraced(t *testing.T) {
	o := testChaosOptions()
	for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
		plain := RunChaos(o, be, 1)
		traced, tr := RunChaosTraced(o, be, 1, &TraceOptions{})
		if tr == nil {
			t.Fatalf("%v: traced run returned no trace", be)
		}
		if plain != traced {
			t.Fatalf("%v: tracing perturbed the run:\nplain  %+v\ntraced %+v", be, plain, traced)
		}
		if tr.Rec.Len() == 0 {
			t.Fatalf("%v: trace recorded no events", be)
		}
	}
}

// TestTracedChaosAttributesBlackholeToDeadPath is the explain report's
// regression test: under the PR 5 acceptance scenario (a quarter of
// the core links blackholed mid-flow, hash-pinned TCP), every stranded
// flow must be attributed to the dead path — blackholed packets, the
// EvRouteDrop stream — and never to congestion, even though the same
// run also records genuine queue drops on healthy flows.
func TestTracedChaosAttributesBlackholeToDeadPath(t *testing.T) {
	o := testChaosOptions()
	run, tr := RunChaosTraced(o, store.BackendTCP, 1, &TraceOptions{})
	if run.Stalled == 0 {
		t.Fatal("no TCP flow stranded; the attribution scenario is vacuous")
	}
	diags := tr.Explain()
	if len(diags) != run.Flows {
		t.Fatalf("explain diagnosed %d flows, run had %d", len(diags), run.Flows)
	}
	stalled := 0
	for _, d := range diags {
		if !d.Stalled {
			if d.Verdict != telemetry.VerdictCompleted {
				t.Fatalf("flow %d completed but verdict is %q", d.Info.Flow, d.Verdict)
			}
			continue
		}
		stalled++
		if d.Verdict != telemetry.VerdictDeadPath {
			t.Fatalf("stalled flow %d verdict %q, want %q (route=%d link=%d queue=%d)",
				d.Info.Flow, d.Verdict, telemetry.VerdictDeadPath,
				d.RouteDrops, d.LinkDrops, d.QueueDrops)
		}
		if d.RouteDrops == 0 {
			t.Fatalf("stalled flow %d has dead-path verdict but no blackholed packets", d.Info.Flow)
		}
		if d.TopDropSite == "" {
			t.Fatalf("stalled flow %d has no worst drop site", d.Info.Flow)
		}
	}
	if stalled != run.Stalled {
		t.Fatalf("explain found %d stalled flows, run counted %d", stalled, run.Stalled)
	}
	var report bytes.Buffer
	if err := tr.WriteExplain(&report); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(report.Bytes(), []byte("dead-path")) {
		t.Fatalf("explain report never says dead-path:\n%s", report.String())
	}
}

// renderTrace serialises every trace export into one byte string, so
// determinism checks cover the Chrome JSON, both CSVs and the explain
// report at once.
func renderTrace(t *testing.T, tr *telemetry.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, write := range []func(w *bytes.Buffer) error{
		func(w *bytes.Buffer) error { return tr.WriteChrome(w) },
		func(w *bytes.Buffer) error { return tr.WriteCSV(w) },
		func(w *bytes.Buffer) error { return tr.WriteEventsCSV(w) },
		func(w *bytes.Buffer) error { return tr.WriteExplain(w) },
	} {
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossSweepParallelism: the same seed must
// yield a byte-identical trace no matter how many sweep workers run
// concurrently — traces are per-run artifacts fed by per-run
// recorders, so worker interleaving may not leak into them.
func TestTraceDeterministicAcrossSweepParallelism(t *testing.T) {
	collect := func(parallelism int) map[string][]byte {
		p := tinySweepParams()
		p.Trace = &TraceOptions{}
		var mu sync.Mutex
		out := map[string][]byte{}
		p.TraceSink = func(scenario, backend string, seed int64, tr *telemetry.Trace) {
			rendered := renderTrace(t, tr)
			mu.Lock()
			out[fmt.Sprintf("%s/%s/%d", scenario, backend, seed)] = rendered
			mu.Unlock()
		}
		var cells []sweep.Cell
		for _, scenario := range []string{"chaos", "shuffle"} {
			for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
				cell, err := NewSweepCell(scenario, be, p)
				if err != nil {
					t.Fatalf("NewSweepCell(%s, %v): %v", scenario, be, err)
				}
				cells = append(cells, cell)
			}
		}
		if _, err := (sweep.Matrix{Cells: cells, Seeds: 2, BaseSeed: 1, Parallelism: parallelism}).Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := collect(1)
	parallel := collect(0)
	if len(serial) != 8 || len(parallel) != 8 {
		t.Fatalf("expected 8 traces per pass, got %d serial / %d parallel", len(serial), len(parallel))
	}
	for key, want := range serial {
		got, ok := parallel[key]
		if !ok {
			t.Fatalf("parallel pass missing trace %s", key)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("trace %s differs between parallelism 1 and GOMAXPROCS", key)
		}
	}
}

// TestSweepRejectsUntraceableScenario: asking for traces on a scenario
// that cannot deliver them is a cell-construction error, not a silent
// no-op.
func TestSweepRejectsUntraceableScenario(t *testing.T) {
	p := tinySweepParams()
	p.Trace = &TraceOptions{}
	if _, err := NewSweepCell("fig1a", store.BackendPolyraptor, p); err == nil {
		t.Fatal("fig1a cell accepted a trace request it cannot honour")
	}
	p.Trace = nil
	if _, err := NewSweepCell("fig1a", store.BackendPolyraptor, p); err != nil {
		t.Fatalf("untraced fig1a cell rejected: %v", err)
	}
}
