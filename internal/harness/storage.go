package harness

import (
	"fmt"

	"polyraptor/internal/stats"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

// StorageOptions parametrises the storage-cluster experiment: one
// store.Config template run once per backend on its own fabric, so the
// transports see an identical request schedule.
type StorageOptions struct {
	// Cluster is the store configuration; its Backend field is
	// overridden per run.
	Cluster store.Config
	// Backends are the transports to compare.
	Backends []store.BackendKind
	// Parallelism caps concurrent backend runs; <= 0 means GOMAXPROCS.
	// Each backend simulates on its own fabric, so results are
	// identical at any setting.
	Parallelism int
}

// DefaultStorageOptions compares Polyraptor against both baselines on
// the default medium cluster.
func DefaultStorageOptions() StorageOptions {
	return StorageOptions{
		Cluster:  store.DefaultConfig(),
		Backends: []store.BackendKind{store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP},
	}
}

// ShortStorageOptions is sized for go test -short: a k=4 fabric,
// Polyraptor versus TCP.
func ShortStorageOptions() StorageOptions {
	return StorageOptions{
		Cluster:  store.ShortConfig(),
		Backends: []store.BackendKind{store.BackendPolyraptor, store.BackendTCP},
	}
}

// StorageRun is one backend's reduced measurements.
type StorageRun struct {
	// Backend names the transport.
	Backend string
	// GetFCT and PutFCT summarise foreground completion times in
	// seconds; GetGoodput and PutGoodput summarise per-request goodput
	// in Gbps.
	GetFCT, PutFCT         stats.Summary
	GetGoodput, PutGoodput stats.Summary
	// GetFCTBefore summarises GETs that completed before the failure;
	// GetFCTDuring those issued while the re-replication storm ran
	// (detection to last repair). The storm's interference is the gap
	// between them.
	GetFCTBefore, GetFCTDuring stats.Summary
	// Result is the raw run output for callers that need more.
	Result *store.Result
}

// Interference returns the ratio of mean GET latency during recovery
// to the pre-failure baseline — how hard the re-replication storm hit
// foreground reads. ok is false when either window holds no GETs, in
// which case the ratio is unmeasured.
func (r StorageRun) Interference() (ratio float64, ok bool) {
	if r.GetFCTDuring.N == 0 || r.GetFCTBefore.Mean <= 0 {
		return 0, false
	}
	return r.GetFCTDuring.Mean / r.GetFCTBefore.Mean, true
}

// RunStorageCluster runs the cluster once per backend and reduces each
// run to FCT and goodput summaries. It is the experiment the PolyStore
// subsystem exists for: Polyraptor's one-to-many PUTs and many-to-one
// GETs against TCP/DCTCP emulation on the same storage workload.
func RunStorageCluster(opt StorageOptions) ([]StorageRun, error) {
	if len(opt.Backends) == 0 {
		return nil, fmt.Errorf("harness: no backends selected")
	}
	// Backend runs are independent simulations on separate fabrics;
	// run them on the sweep worker pool, slotted by index so the
	// output order matches opt.Backends regardless of scheduling.
	out := make([]StorageRun, len(opt.Backends))
	errs := make([]error, len(opt.Backends))
	sweep.ForEach(len(opt.Backends), opt.Parallelism, func(i int) {
		cfg := opt.Cluster
		cfg.Backend = opt.Backends[i]
		res, err := store.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("harness: storage backend %v: %w", opt.Backends[i], err)
			return
		}
		out[i] = newStorageRun(res)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// newStorageRun reduces one raw run to the summaries reports print.
func newStorageRun(res *store.Result) StorageRun {
	return StorageRun{
		Backend:      res.Backend.String(),
		GetFCT:       stats.Summarize(res.GetFCTs()),
		PutFCT:       stats.Summarize(res.PutFCTs()),
		GetGoodput:   stats.Summarize(res.GetGoodputs()),
		PutGoodput:   stats.Summarize(res.PutGoodputs()),
		GetFCTBefore: stats.Summarize(store.FCTs(res.GetsBeforeFailure())),
		GetFCTDuring: stats.Summarize(store.FCTs(res.GetsDuringRecovery())),
		Result:       res,
	}
}
