package harness

import (
	"fmt"
	"math/rand"

	"polyraptor/internal/raptorq"
	"polyraptor/internal/sim"
)

// MeasureDecodeFailure empirically measures the real codec's decode
// failure probability: over `trials` independent draws, a K-symbol
// block is decoded from exactly K+overhead distinct encoding symbols
// chosen uniformly from a window of source and repair ESIs. This is
// the measurement that regenerates the paper's footnote-2 claim and
// keeps the simulator's closed-form overhead model honest.
func MeasureDecodeFailure(k, overhead, trials int, seed int64) float64 {
	src := make([][]byte, k)
	for i := range src {
		src[i] = []byte{byte(i), byte(i >> 8)}
	}
	enc, err := raptorq.NewEncoder(src)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	rng := sim.RNG(seed, "measure-decode-failure")
	failures := 0
	for trial := 0; trial < trials; trial++ {
		if !decodeOnce(enc, k, overhead, rng) {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}

func decodeOnce(enc *raptorq.Encoder, k, overhead int, rng *rand.Rand) bool {
	dec, err := raptorq.NewDecoder(k, 2)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	perm := rng.Perm(4 * k)
	for _, e := range perm[:k+overhead] {
		if _, err := dec.AddSymbol(uint32(e), enc.Symbol(uint32(e))); err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
	}
	_, err = dec.Decode()
	return err == nil
}
