package harness

import (
	"fmt"

	"polyraptor/internal/metrics"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/stats"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

// ShuffleOptions parametrises the many-to-many shuffle experiment: the
// full mapper×reducer transfer matrix started synchronously, measured
// by shuffle completion time (the slowest pair gates the job) and
// per-pair FCT percentiles. Polyraptor runs it as concurrently pulled
// sessions sharing each reducer's pull pacer; the TCP and DCTCP
// baselines run one flow per pair (the RepFlow-style multipath FCT
// reference point).
type ShuffleOptions struct {
	// FatTreeK is the fabric arity.
	FatTreeK int
	// Mappers and Reducers size the transfer matrix; the hosts are
	// drawn as disjoint random sets.
	Mappers, Reducers int
	// BytesPerPair is the mean partition size.
	BytesPerPair int64
	// Skew is the Zipf skew of partition sizes across reducers.
	Skew float64
	// StragglerFactor, when > 1, scales one mapper's partitions.
	StragglerFactor float64
}

// DefaultShuffleOptions is the cmd/polyshuffle default: a medium
// fabric with an 8x8 matrix and mildly skewed partitions.
func DefaultShuffleOptions() ShuffleOptions {
	return ShuffleOptions{
		FatTreeK:     6,
		Mappers:      8,
		Reducers:     8,
		BytesPerPair: 256 << 10,
		Skew:         0.9,
	}
}

// Validate surfaces impossible shuffle configurations before anything
// runs — the same up-front contract as the other scenario params.
func (o ShuffleOptions) Validate() error {
	if err := topology.CheckArity(o.FatTreeK); err != nil {
		return err
	}
	if o.Mappers < 1 || o.Reducers < 1 {
		return fmt.Errorf("shuffle needs >= 1 mapper and >= 1 reducer, got %dx%d", o.Mappers, o.Reducers)
	}
	if hosts := topology.HostsFor(o.FatTreeK); o.Mappers+o.Reducers > hosts {
		return fmt.Errorf("shuffle needs %d distinct hosts, k=%d fabric has %d",
			o.Mappers+o.Reducers, o.FatTreeK, hosts)
	}
	if o.BytesPerPair < 1 {
		return fmt.Errorf("shuffle needs bytes >= 1, got %d", o.BytesPerPair)
	}
	if o.Skew < 0 {
		return fmt.Errorf("shuffle skew must be non-negative, got %g", o.Skew)
	}
	if o.StragglerFactor != 0 && o.StragglerFactor < 1 {
		return fmt.Errorf("shuffle straggler factor must be 0 (off) or >= 1, got %g", o.StragglerFactor)
	}
	return nil
}

func (o ShuffleOptions) workloadConfig(seed int64) workload.ShuffleConfig {
	return workload.ShuffleConfig{
		Mappers:         o.Mappers,
		Reducers:        o.Reducers,
		BytesPerPair:    o.BytesPerPair,
		Skew:            o.Skew,
		StragglerFactor: o.StragglerFactor,
		Seed:            seed,
	}
}

// ShuffleRun is one shuffle's reduced measurements.
type ShuffleRun struct {
	// Backend names the transport.
	Backend string
	// CompletionTime is the shuffle completion time in seconds: the
	// max over pair completion times (the job-level metric).
	CompletionTime float64
	// PairFCT summarises per-pair flow completion times in seconds.
	PairFCT stats.Summary
	// GoodputGbps is aggregate goodput: total bytes over completion
	// time.
	GoodputGbps float64
	// TotalBytes is the volume moved.
	TotalBytes int64
}

// RunShuffle runs one shuffle under the named backend for one seed.
// The workload draw (hosts, partition matrix, straggler) depends only
// on the seed, so backends compare on identical matrices.
func RunShuffle(opt ShuffleOptions, backend store.BackendKind, seed int64) ShuffleRun {
	r, _ := RunShuffleTraced(opt, backend, seed, nil)
	return r
}

// RunShuffleTraced is RunShuffle with an optional PolyScope trace
// attached (nil topt reproduces RunShuffle exactly). The returned
// trace is finished and ready for export; it is nil when topt is nil.
func RunShuffleTraced(opt ShuffleOptions, backend store.BackendKind, seed int64, topt *TraceOptions) (ShuffleRun, *telemetry.Trace) {
	return runShuffle(opt, backend, seed, topt, meter{})
}

// RunShuffleMetered is RunShuffleTraced with PolyMeter instruments
// attached: per-pair FCT/goodput histograms, fabric queue depth,
// Polyraptor stall durations, and SLO attainment counters land in reg
// under (shuffle, backend) labels. A nil reg reproduces
// RunShuffleTraced exactly.
func RunShuffleMetered(opt ShuffleOptions, backend store.BackendKind, seed int64, topt *TraceOptions, reg *metrics.Registry, slo metrics.SLO) (ShuffleRun, *telemetry.Trace) {
	return runShuffle(opt, backend, seed, topt, newMeter(reg, "shuffle", backend, slo))
}

func runShuffle(opt ShuffleOptions, backend store.BackendKind, seed int64, topt *TraceOptions, mt meter) (ShuffleRun, *telemetry.Trace) {
	if err := opt.Validate(); err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	ft, err := topology.NewFatTree(opt.FatTreeK, backend.NetConfig(seed))
	if err != nil {
		panic(err)
	}
	tr := newTrace(ft, topt, "shuffle", backend, seed)
	mt.fabric(ft)
	sh := workload.GenerateShuffle(opt.workloadConfig(seed), ft)
	pairs := opt.Mappers * opt.Reducers
	mt.offered(pairs)

	fcts := make([]float64, 0, pairs)
	var last sim.Time
	if backend == store.BackendPolyraptor {
		sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
		sys.PruneGroup = ft.PruneMulticastLeaf
		mt.stallRQ(sys)
		done := false
		sys.StartShuffle(sh.Mappers, sh.Reducers, sh.PairBytes, func(r polyraptor.ShuffleResult) {
			for i := range r.Pairs {
				fct := (r.Pairs[i].Event.End - r.Pairs[i].Event.Start).Seconds()
				fcts = append(fcts, fct)
				mt.flow(fct, perFlowGbps(r.Pairs[i].Event.Bytes, fct))
			}
			last = r.End
			done = true
		})
		startTrace(tr, ft, func() float64 { send, recv := sys.OpenSessions(); return float64(send + recv) })
		ft.Net.Eng.Run()
		if !done {
			// fcts is only filled by the aggregate callback, so report
			// the live session counts instead — they point at the stuck
			// pairs.
			send, recv := sys.OpenSessions()
			panic(fmt.Sprintf("harness: shuffle RQ did not complete (%d sender / %d receiver sessions still open)", send, recv))
		}
	} else {
		var sys *tcpsim.System
		if backend == store.BackendDCTCP {
			sys = tcpsim.NewSystem(ft.Net, tcpsim.DCTCPConfig())
		} else {
			sys = tcpsim.NewSystem(ft.Net, tcpsim.DefaultConfig())
		}
		for mi, m := range sh.Mappers {
			for ri, r := range sh.Reducers {
				b := sh.Bytes[mi][ri]
				sys.StartFlow(m, r, b, func(fr tcpsim.FlowResult) {
					fct := (fr.End - fr.Start).Seconds()
					fcts = append(fcts, fct)
					mt.flow(fct, perFlowGbps(b, fct))
					if fr.End > last {
						last = fr.End
					}
				})
			}
		}
		startTrace(tr, ft, func() float64 { return float64(sys.OpenFlows()) })
		ft.Net.Eng.Run()
		if len(fcts) != pairs {
			panic(fmt.Sprintf("harness: shuffle %v finished %d/%d pairs", backend, len(fcts), pairs))
		}
	}
	finishTrace(tr, ft.Net.Now())

	total := sh.TotalBytes()
	return ShuffleRun{
		Backend:        backend.String(),
		CompletionTime: last.Seconds(),
		PairFCT:        stats.Summarize(fcts),
		GoodputGbps:    gbps(total, last),
		TotalBytes:     total,
	}, tr
}

// RunShuffleAll runs the same shuffle template once per backend on the
// sweep worker pool — the cmd/polyshuffle single-run path.
func RunShuffleAll(opt ShuffleOptions, backends []store.BackendKind, seed int64, parallelism int) ([]ShuffleRun, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("harness: no backends selected")
	}
	out := make([]ShuffleRun, len(backends))
	sweep.ForEach(len(backends), parallelism, func(i int) {
		out[i] = RunShuffle(opt, backends[i], seed)
	})
	return out, nil
}

// shuffleMetrics reduces one run to the scalars a sweep aggregates.
func shuffleMetrics(r ShuffleRun) sweep.Metrics {
	return sweep.Metrics{
		"shuffle_s":      r.CompletionTime,
		"pair_fct_p50_s": r.PairFCT.P50,
		"pair_fct_p99_s": r.PairFCT.P99,
		"goodput_gbps":   r.GoodputGbps,
	}
}
