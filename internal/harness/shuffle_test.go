package harness

import (
	"bytes"
	"testing"

	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

func tinyShuffleOptions() ShuffleOptions {
	return ShuffleOptions{
		FatTreeK:     4,
		Mappers:      3,
		Reducers:     4,
		BytesPerPair: 32 << 10,
		Skew:         0.9,
	}
}

func TestRunShuffleAllBackends(t *testing.T) {
	// 8 mappers into each reducer is past TCP's incast knee, where the
	// pattern actually stresses the transport (a 3x4 matrix is too
	// gentle: uncongested TCP wins on pure RTT).
	opt := tinyShuffleOptions()
	opt.Mappers = 8
	opt.BytesPerPair = 64 << 10
	runs, err := RunShuffleAll(opt, []store.BackendKind{
		store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP,
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShuffleRun{}
	for _, r := range runs {
		byName[r.Backend] = r
		if r.PairFCT.N != opt.Mappers*opt.Reducers {
			t.Fatalf("%s: %d pair FCTs, want %d", r.Backend, r.PairFCT.N, opt.Mappers*opt.Reducers)
		}
		if r.CompletionTime <= 0 || r.GoodputGbps <= 0 {
			t.Fatalf("%s: completion %v s, goodput %v Gbps", r.Backend, r.CompletionTime, r.GoodputGbps)
		}
		if r.CompletionTime < r.PairFCT.Max {
			t.Fatalf("%s: completion %v < slowest pair %v", r.Backend, r.CompletionTime, r.PairFCT.Max)
		}
		if r.TotalBytes <= 0 {
			t.Fatalf("%s: total bytes %d", r.Backend, r.TotalBytes)
		}
	}
	// The paper's claim for the third pattern: the shared pull pacer
	// keeps the reducers incast-free, so Polyraptor finishes the
	// shuffle well before loss-recovering TCP (deterministic per seed).
	if rq, tcp := byName["polyraptor"], byName["tcp"]; rq.CompletionTime >= tcp.CompletionTime {
		t.Fatalf("polyraptor shuffle (%v s) not faster than tcp (%v s)", rq.CompletionTime, tcp.CompletionTime)
	}
}

func TestRunShuffleDeterministicPerSeed(t *testing.T) {
	opt := tinyShuffleOptions()
	a := RunShuffle(opt, store.BackendPolyraptor, 3)
	b := RunShuffle(opt, store.BackendPolyraptor, 3)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := RunShuffle(opt, store.BackendPolyraptor, 4)
	if a == c {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestShuffleSweepParallelMatchesSerial is the shuffle determinism
// acceptance test: 3 backends x 3 seeds of the shuffle cell produce
// byte-identical aggregated JSON at parallelism 1 and GOMAXPROCS. Run
// under -race in CI.
func TestShuffleSweepParallelMatchesSerial(t *testing.T) {
	matrix := func(parallelism int) sweep.Matrix {
		p := tinySweepParams()
		p.Bytes = 32 << 10
		var cells []sweep.Cell
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP} {
			cell, err := NewSweepCell("shuffle", be, p)
			if err != nil {
				t.Fatalf("NewSweepCell(shuffle, %v): %v", be, err)
			}
			cells = append(cells, cell)
		}
		return sweep.Matrix{Cells: cells, Seeds: 3, BaseSeed: 1, Parallelism: parallelism}
	}
	serial, err := matrix(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := matrix(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("parallel shuffle sweep JSON differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
	for _, c := range serial.Cells {
		if len(c.Errors) > 0 {
			t.Fatalf("cell %s errored: %v", c.Backend, c.Errors)
		}
		for _, name := range []string{"shuffle_s", "pair_fct_p50_s", "pair_fct_p99_s", "goodput_gbps"} {
			a, ok := c.Metric(name)
			if !ok || a.N != 3 || a.Mean <= 0 {
				t.Fatalf("cell %s metric %s = %+v ok=%v, want N=3 mean>0", c.Backend, name, a, ok)
			}
		}
	}
}

func TestShuffleCellRejectsImpossibleMatrix(t *testing.T) {
	p := tinySweepParams()
	p.Mappers = 20 // 20+4 > 16 hosts on k=4
	if _, err := NewSweepCell("shuffle", store.BackendTCP, p); err == nil {
		t.Fatal("oversized shuffle matrix accepted")
	}
	p = tinySweepParams()
	p.Straggler = 0.5
	if _, err := NewSweepCell("shuffle", store.BackendTCP, p); err == nil {
		t.Fatal("fractional straggler factor accepted")
	}
}
