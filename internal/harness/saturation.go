package harness

import (
	"fmt"
	"math"
	"strings"

	"polyraptor/internal/metrics"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/topology"
)

// Saturation finder: walk a geometric ladder of offered load for one
// (scenario, backend), scoring each rung's SLO attainment and pooled
// FCT tail from metered sweep runs, then bisect the bracket where the
// score first crosses the threshold. The highest load that still
// meets the criteria is the backend's "max sustainable load" — the
// knee the paper's goodput-vs-load curves bend at. Every probe is a
// deterministic metered sweep (fixed base seed, order-fixed
// aggregation), so the knee is a pure function of the options: re-runs
// and different parallelism levels reproduce it byte for byte.

// SaturationScenarios lists the scenarios FindSaturation can drive.
// The chaos scenario is excluded: its degradation axis is the fault
// plan, not offered load.
func SaturationScenarios() []string {
	return []string{"fig1a", "fig1b", "incast", "shuffle", "storage"}
}

// loadKnob names what the load multiplier scales in each scenario.
func loadKnob(scenario string) string {
	switch scenario {
	case "fig1a", "fig1b":
		return "load_factor"
	case "incast":
		return "senders"
	case "shuffle":
		return "bytes_per_pair"
	case "storage":
		return "load_factor"
	}
	return ""
}

// SaturationOptions parametrises one knee search.
type SaturationOptions struct {
	// Scenario is one of SaturationScenarios.
	Scenario string
	// Params is the scenario template; the load knob inside it is
	// scaled per probe (fig1/storage: LoadFactor; incast: Senders;
	// shuffle: Bytes per pair).
	Params SweepParams
	// SLO scores every flow; a flow that misses it (or never
	// completes) counts against attainment.
	SLO metrics.SLO
	// Target is the required SLO attainment (default 0.99).
	Target float64
	// P99Max, when positive, additionally requires the pooled FCT P99
	// (worst tenant for storage) to stay at or below it, in seconds.
	P99Max float64
	// LoadMin and LoadMax bound the ladder as multipliers of the
	// template's knob (defaults 0.25 and 4).
	LoadMin, LoadMax float64
	// Rungs is the geometric ladder size (default 8, min 2).
	Rungs int
	// Refine is the bisection step count after the ladder brackets the
	// knee (default 6).
	Refine int
	// Seeds is the repetition count per probe (default 3).
	Seeds int
	// BaseSeed anchors sub-seed derivation (default 1).
	BaseSeed int64
	// Parallelism caps concurrent repetitions inside a probe; the knee
	// does not depend on it.
	Parallelism int
	// KeepHists retains each probe's merged histogram aggregates on
	// its Rung (the polyload -hist-out dump).
	KeepHists bool
}

// DefaultSaturationOptions returns a test-sized knee search for one
// scenario.
func DefaultSaturationOptions(scenario string) SaturationOptions {
	return SaturationOptions{
		Scenario: scenario,
		Params:   DefaultSweepParams(),
		Target:   0.99,
		LoadMin:  0.25,
		LoadMax:  4,
		Rungs:    8,
		Refine:   6,
		Seeds:    3,
		BaseSeed: 1,
	}
}

// Validate surfaces impossible searches before anything runs. Start
// from DefaultSaturationOptions; the zero value fails here on every
// numeric knob (Refine excepted — 0 legitimately means ladder-only).
func (o SaturationOptions) Validate() error {
	ok := false
	for _, s := range SaturationScenarios() {
		ok = ok || s == o.Scenario
	}
	if !ok {
		return fmt.Errorf("saturation: unknown scenario %q (have %v)", o.Scenario, SaturationScenarios())
	}
	if o.Target <= 0 || o.Target > 1 {
		return fmt.Errorf("saturation: target attainment must be in (0, 1], got %g", o.Target)
	}
	if o.P99Max < 0 {
		return fmt.Errorf("saturation: p99 ceiling must be >= 0, got %g", o.P99Max)
	}
	if o.LoadMin <= 0 || o.LoadMax <= o.LoadMin {
		return fmt.Errorf("saturation: need 0 < LoadMin < LoadMax, got [%g, %g]", o.LoadMin, o.LoadMax)
	}
	if o.Rungs < 2 {
		return fmt.Errorf("saturation: need >= 2 ladder rungs, got %d", o.Rungs)
	}
	if o.Refine < 0 {
		return fmt.Errorf("saturation: refine steps must be >= 0, got %d", o.Refine)
	}
	if o.Seeds < 1 {
		return fmt.Errorf("saturation: need >= 1 seed, got %d", o.Seeds)
	}
	return nil
}

// Rung is one probed load level.
type Rung struct {
	// Load is the knob multiplier relative to the template.
	Load float64 `json:"load"`
	// Knob is the effective knob value after scaling (and, for integer
	// knobs, rounding) — equal knobs mean equal runs, so the finder
	// memoises on it.
	Knob float64 `json:"knob"`
	// Attainment is the mean SLO attainment across the probe's seeds.
	Attainment float64 `json:"slo_attainment"`
	// FCTP99 is the pooled FCT P99 in seconds (worst tenant for
	// storage), from the merged histograms.
	FCTP99 float64 `json:"fct_p99_s"`
	// GoodputGbps is the scenario's headline goodput at this load.
	GoodputGbps float64 `json:"goodput_gbps"`
	// OK reports whether the rung met the target (and the P99 ceiling,
	// when set).
	OK bool `json:"ok"`
	// Hists holds the probe's merged histogram aggregates when
	// SaturationOptions.KeepHists is set.
	Hists []sweep.HistAggregate `json:"hists,omitempty"`
}

// SaturationResult is one completed knee search.
type SaturationResult struct {
	Scenario string `json:"scenario"`
	Backend  string `json:"backend"`
	// LoadKnob names what Load multiplies (load_factor, senders,
	// bytes_per_pair).
	LoadKnob string  `json:"load_knob"`
	Target   float64 `json:"target"`
	P99Max   float64 `json:"p99_max_s,omitempty"`
	// Ladder is the initial geometric ladder, ascending load.
	Ladder []Rung `json:"ladder"`
	// Probes is every distinct probe in probe order (ladder first,
	// then refinement).
	Probes []Rung `json:"probes"`
	// Knee is the highest probed load that met the criteria; nil when
	// even LoadMin missed.
	Knee *Rung `json:"knee,omitempty"`
	// Censored is "" when the ladder bracketed the knee, "below-min"
	// when every rung failed, "above-max" when every rung passed (the
	// knee lies outside [LoadMin, LoadMax]).
	Censored string `json:"censored,omitempty"`
}

// applyLoad scales the scenario's load knob by the multiplier and
// returns the effective knob value. Integer knobs round to the
// nearest valid value, so distinct multipliers can collapse to the
// same probe — the finder memoises on the returned knob.
func applyLoad(scenario string, p SweepParams, load float64) (SweepParams, float64) {
	switch scenario {
	case "fig1a", "fig1b":
		p.LoadFactor *= load
		return p, p.LoadFactor
	case "incast":
		n := int(math.Round(float64(p.Senders) * load))
		if n < 1 {
			n = 1
		}
		// Senders are drawn outside the client's rack; the picker spins
		// on a fan-in beyond the eligible host count.
		if max := topology.OutOfRackHosts(p.FatTreeK); n > max {
			n = max
		}
		p.Senders = n
		return p, float64(n)
	case "shuffle":
		b := int64(math.Round(float64(p.Bytes) * load))
		if b < 1 {
			b = 1
		}
		p.Bytes = b
		return p, float64(b)
	case "storage":
		p.Store.Lambda = 0 // re-derive the arrival rate from the scaled load factor
		p.Store.LoadFactor *= load
		return p, p.Store.LoadFactor
	}
	panic(fmt.Sprintf("harness: applyLoad on unknown scenario %q", scenario))
}

// worstFCTP99 reads the pooled FCT P99 from a metered cell: the
// maximum over every *fct_s histogram (plain runs have one; storage
// has a GET and a PUT tenant).
func worstFCTP99(c sweep.CellResult) float64 {
	worst := math.NaN()
	for _, a := range c.Hists {
		if !strings.HasSuffix(a.Metric, "fct_s") {
			continue
		}
		if math.IsNaN(worst) || a.P99 > worst {
			worst = a.P99
		}
	}
	return worst
}

// headlineGoodput reads the scenario's headline goodput aggregate.
func headlineGoodput(scenario string, c sweep.CellResult) float64 {
	name := "goodput_gbps"
	switch scenario {
	case "fig1a", "fig1b":
		name = "goodput_mean_gbps"
	case "storage":
		name = "get_gbps"
	}
	a, _ := c.Metric(name)
	return a.Mean
}

// FindSaturation walks the ladder and bisects to the knee for one
// (scenario, backend). Every probe is a full metered sweep over the
// option's seeds; probes at equal effective knob values run once.
func FindSaturation(o SaturationOptions, backend store.BackendKind) (SaturationResult, error) {
	if err := o.Validate(); err != nil {
		return SaturationResult{}, err
	}
	res := SaturationResult{
		Scenario: o.Scenario,
		Backend:  backend.String(),
		LoadKnob: loadKnob(o.Scenario),
		Target:   o.Target,
		P99Max:   o.P99Max,
	}
	slo := o.SLO
	memo := map[float64]Rung{}
	probe := func(load float64) (Rung, error) {
		params, knob := applyLoad(o.Scenario, o.Params, load)
		if r, ok := memo[knob]; ok {
			r.Load = load
			return r, nil
		}
		params.SLO = &slo
		cell, err := NewSweepCell(o.Scenario, backend, params)
		if err != nil {
			return Rung{}, err
		}
		sr, err := (sweep.Matrix{
			Cells: []sweep.Cell{cell}, Seeds: o.Seeds,
			BaseSeed: o.BaseSeed, Parallelism: o.Parallelism,
		}).Run()
		if err != nil {
			return Rung{}, err
		}
		c := sr.Cells[0]
		if len(c.Errors) > 0 {
			return Rung{}, fmt.Errorf("saturation: probe at load %g failed: %s", load, c.Errors[0])
		}
		att, _ := c.Metric("slo_attainment")
		r := Rung{
			Load:        load,
			Knob:        knob,
			Attainment:  att.Mean,
			FCTP99:      worstFCTP99(c),
			GoodputGbps: headlineGoodput(o.Scenario, c),
		}
		r.OK = r.Attainment >= o.Target && (o.P99Max <= 0 || r.FCTP99 <= o.P99Max)
		if o.KeepHists {
			r.Hists = c.Hists
		}
		memo[knob] = r
		res.Probes = append(res.Probes, r)
		return r, nil
	}

	// Geometric ladder from LoadMin to LoadMax.
	ratio := math.Pow(o.LoadMax/o.LoadMin, 1/float64(o.Rungs-1))
	kneeIdx := -1  // highest OK rung seen so far
	breakIdx := -1 // first failing rung above it
	for i := 0; i < o.Rungs; i++ {
		load := o.LoadMin * math.Pow(ratio, float64(i))
		if i == o.Rungs-1 {
			load = o.LoadMax // no accumulated rounding at the top rung
		}
		r, err := probe(load)
		if err != nil {
			return SaturationResult{}, err
		}
		res.Ladder = append(res.Ladder, r)
		if r.OK {
			kneeIdx = i
			breakIdx = -1
		} else if breakIdx < 0 {
			breakIdx = i
		}
	}

	switch {
	case kneeIdx < 0:
		res.Censored = "below-min"
		return res, nil
	case breakIdx < 0:
		res.Censored = "above-max"
		knee := res.Ladder[len(res.Ladder)-1]
		res.Knee = &knee
		return res, nil
	}

	// Bisect the bracket geometrically. Integer knobs can collapse the
	// midpoint onto an endpoint; the bracket cannot shrink further in
	// knob space, so stop early.
	knee := res.Ladder[kneeIdx]
	lo, hi := res.Ladder[kneeIdx], res.Ladder[breakIdx]
	for i := 0; i < o.Refine; i++ {
		mid := math.Sqrt(lo.Load * hi.Load)
		r, err := probe(mid)
		if err != nil {
			return SaturationResult{}, err
		}
		if r.Knob == lo.Knob || r.Knob == hi.Knob {
			break
		}
		if r.OK {
			lo = r
			if r.Load > knee.Load {
				knee = r
			}
		} else {
			hi = r
		}
	}
	res.Knee = &knee
	return res, nil
}
