package harness

import (
	"encoding/json"
	"testing"

	"polyraptor/internal/metrics"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

// Metering must never perturb a run: the metered entry points with a
// live registry must reproduce the unmetered results bit for bit.
func TestMeteredRunMatchesUnmetered(t *testing.T) {
	opt := IncastOptions{FatTreeK: 4, Trimming: true}
	slo := metrics.SLO{FCTDeadline: 0.1}
	for _, backend := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
		plain, _ := RunIncastTraced(opt, backend, 4, 64<<10, 7, nil)
		reg := metrics.NewRegistry()
		metered, _ := RunIncastMetered(opt, backend, 4, 64<<10, 7, nil, reg, slo)
		if plain != metered {
			t.Errorf("%v: metered incast goodput %v != unmetered %v", backend, metered, plain)
		}
		h := reg.Histogram("fct_s", metrics.Labels{Scenario: "incast", Backend: backend.String()})
		if h.Count() != 4 {
			t.Errorf("%v: fct hist has %d samples, want 4", backend, h.Count())
		}
	}

	co := testChaosOptions()
	plain, _ := RunChaosTraced(co, store.BackendTCP, 3, nil)
	reg := metrics.NewRegistry()
	metered, _ := RunChaosMetered(co, store.BackendTCP, 3, nil, reg, slo)
	if plain != metered {
		t.Errorf("metered chaos run %+v != unmetered %+v", metered, plain)
	}

	so := ShuffleOptions{FatTreeK: 4, Mappers: 3, Reducers: 3, BytesPerPair: 32 << 10, Skew: 0.9}
	sPlain, _ := RunShuffleTraced(so, store.BackendPolyraptor, 5, nil)
	reg = metrics.NewRegistry()
	sMetered, _ := RunShuffleMetered(so, store.BackendPolyraptor, 5, nil, reg, slo)
	if sPlain != sMetered {
		t.Errorf("metered shuffle run %+v != unmetered %+v", sMetered, sPlain)
	}
	l := metrics.Labels{Scenario: "shuffle", Backend: store.BackendPolyraptor.String()}
	if got := reg.Histogram("fct_s", l).Count(); got != 9 {
		t.Errorf("shuffle fct hist has %d samples, want 9", got)
	}
	if reg.Histogram("queue_depth_pkts", l).Count() == 0 {
		t.Error("shuffle queue-depth hist is empty; fabric hook not attached")
	}
}

func meteredTestParams() SweepParams {
	p := DefaultSweepParams()
	p.FatTreeK = 4
	p.Senders = 4
	p.Bytes = 32 << 10
	p.SLO = &metrics.SLO{FCTDeadline: 0.05}
	p.Store.Objects = 16
	p.Store.Requests = 40
	return p
}

// A metered cell must report the same scalar metrics as the unmetered
// cell plus slo_attainment, and carry the pooled histograms.
func TestMeteredCellMatchesUnmetered(t *testing.T) {
	p := meteredTestParams()
	plain := p
	plain.SLO = nil

	for _, scenario := range []string{"incast", "storage"} {
		mc, err := NewSweepCell(scenario, store.BackendPolyraptor, p)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := NewSweepCell(scenario, store.BackendPolyraptor, plain)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := (sweep.Matrix{Cells: []sweep.Cell{mc}, Seeds: 2, BaseSeed: 1}).Run()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := (sweep.Matrix{Cells: []sweep.Cell{pc}, Seeds: 2, BaseSeed: 1}).Run()
		if err != nil {
			t.Fatal(err)
		}
		m, pl := mr.Cells[0], pr.Cells[0]
		for _, a := range pl.Metrics {
			got, ok := m.Metric(a.Metric)
			if !ok {
				t.Fatalf("%s: metered cell lost metric %s", scenario, a.Metric)
			}
			if got != a {
				t.Errorf("%s: metered %s = %+v, unmetered %+v", scenario, a.Metric, got, a)
			}
		}
		att, ok := m.Metric("slo_attainment")
		if !ok {
			t.Fatalf("%s: metered cell has no slo_attainment", scenario)
		}
		if att.Mean < 0 || att.Mean > 1 {
			t.Errorf("%s: attainment %v outside [0,1]", scenario, att.Mean)
		}
		if len(m.Hists) == 0 {
			t.Fatalf("%s: metered cell has no histogram aggregates", scenario)
		}
		want := "fct_s"
		if scenario == "storage" {
			want = "get_fct_s"
		}
		if _, ok := m.Hist(want); !ok {
			t.Errorf("%s: no %s histogram (have %d hists)", scenario, want, len(m.Hists))
		}
		if len(pl.Hists) != 0 {
			t.Errorf("%s: unmetered cell unexpectedly has histograms", scenario)
		}
	}
}

// The PolyMeter determinism contract on the sweep: a metered matrix
// serialises to the same bytes at any parallelism (histogram merge is
// order-fixed in the aggregation loop, worker scheduling never leaks
// into results). Runs under -race in CI.
func TestMeteredSweepParallelIdentical(t *testing.T) {
	p := meteredTestParams()
	build := func() sweep.Matrix {
		var cells []sweep.Cell
		for _, scenario := range []string{"incast", "shuffle"} {
			for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
				c, err := NewSweepCell(scenario, be, p)
				if err != nil {
					t.Fatal(err)
				}
				cells = append(cells, c)
			}
		}
		return sweep.Matrix{Cells: cells, Seeds: 4, BaseSeed: 3}
	}
	serialM := build()
	serialM.Parallelism = 1
	serial, err := serialM.Run()
	if err != nil {
		t.Fatal(err)
	}
	parallelM := build()
	parallelM.Parallelism = 8
	parallel, err := parallelM.Run()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("metered sweep differs between parallelism 1 and 8:\nserial:   %.400s\nparallel: %.400s", sj, pj)
	}
}
