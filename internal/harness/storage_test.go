package harness

import (
	"reflect"
	"testing"

	"polyraptor/internal/store"
)

// TestRunStorageCluster runs the k=4 storage-cluster experiment end to
// end — Polyraptor vs the TCP multi-unicast baseline with a mid-run
// rack failure — and checks the paper's headline ordering: the
// rateless, replica-exploiting transport serves foreground GETs at
// least as fast as TCP, and recovery restores full R-way replication.
func TestRunStorageCluster(t *testing.T) {
	runs, err := RunStorageCluster(ShortStorageOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	byName := map[string]StorageRun{}
	for _, r := range runs {
		byName[r.Backend] = r
		if r.GetGoodput.N == 0 || r.PutGoodput.N == 0 {
			t.Fatalf("%s: empty GET/PUT samples (%d/%d)", r.Backend, r.GetGoodput.N, r.PutGoodput.N)
		}
		rec := r.Result.Recovery
		if !rec.FullyReplicated || rec.Repaired != rec.LostReplicas {
			t.Fatalf("%s: recovery incomplete: %+v", r.Backend, rec)
		}
		if r.Result.SkippedGets > r.GetGoodput.N/4 {
			t.Fatalf("%s: %d skipped GETs vs %d served — availability model broken",
				r.Backend, r.Result.SkippedGets, r.GetGoodput.N)
		}
	}
	rq, tcp := byName["polyraptor"], byName["tcp"]
	if rq.Backend == "" || tcp.Backend == "" {
		t.Fatalf("missing backends: %v", byName)
	}
	if rq.GetGoodput.Mean < tcp.GetGoodput.Mean {
		t.Fatalf("Polyraptor mean GET goodput %.3f Gbps below TCP's %.3f Gbps",
			rq.GetGoodput.Mean, tcp.GetGoodput.Mean)
	}
	if rq.PutGoodput.Mean <= tcp.PutGoodput.Mean {
		t.Fatalf("Polyraptor mean PUT goodput %.3f Gbps not above TCP multi-unicast's %.3f Gbps",
			rq.PutGoodput.Mean, tcp.PutGoodput.Mean)
	}
}

// TestRunStorageClusterDeterministic repeats the experiment and
// demands identical summaries, for every backend — the DCTCP path once
// diverged run to run via map-ordered RTT sampling in tcpsim.
func TestRunStorageClusterDeterministic(t *testing.T) {
	opt := ShortStorageOptions()
	opt.Cluster.Requests = 80
	opt.Cluster.Objects = 24
	opt.Backends = []store.BackendKind{store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP}
	a, err := RunStorageCluster(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStorageCluster(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].GetFCT, b[i].GetFCT) || !reflect.DeepEqual(a[i].PutFCT, b[i].PutFCT) {
			t.Fatalf("%s runs diverged:\n%+v\n%+v", a[i].Backend, a[i].GetFCT, b[i].GetFCT)
		}
	}
}
