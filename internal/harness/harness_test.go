package harness

import (
	"testing"

	"polyraptor/internal/stats"
)

// tinyScale keeps harness unit tests fast; shape assertions are loose
// here and tight in the benches/EXPERIMENTS.md.
func tinyScale() Scale {
	return Scale{FatTreeK: 4, Sessions: 60, Bytes: 256 << 10, LoadFactor: 0.3, Seed: 1}
}

func TestRunFig1RQMulticastProducesForegroundGoodputs(t *testing.T) {
	g := RunFig1RQ(tinyScale(), PatternMulticast, 3)
	// ~80% of 60 sessions are foreground.
	if len(g) < 35 || len(g) > 60 {
		t.Fatalf("foreground sessions = %d", len(g))
	}
	for i, v := range g {
		if v <= 0 || v > 1.0 {
			t.Fatalf("goodput[%d] = %v out of (0,1] Gbps", i, v)
		}
		if i > 0 && v > g[i-1] {
			t.Fatal("series not ranked descending")
		}
	}
	// In this deliberately tiny 16-host fabric, 3-replica delivery
	// inflates effective downlink load to ~0.8, so even the best
	// session contends; near-line-rate tops only appear at larger
	// scale (see the benches and EXPERIMENTS.md).
	if g[0] < 0.4 {
		t.Fatalf("best multicast session only %.3f Gbps", g[0])
	}
}

func TestRunFig1TCPMulticastSlowerWithReplicas(t *testing.T) {
	one := RunFig1TCP(tinyScale(), PatternMulticast, 1)
	three := RunFig1TCP(tinyScale(), PatternMulticast, 3)
	m1, m3 := stats.Mean(one), stats.Mean(three)
	// Multi-unicast to 3 replicas shares the writer's uplink: mean
	// session goodput must drop clearly below the single-replica case.
	if m3 >= m1 {
		t.Fatalf("TCP 3-replica mean %.3f >= 1-replica mean %.3f", m3, m1)
	}
	if m3 > 0.5 {
		t.Fatalf("TCP 3-replica mean %.3f suspiciously high (uplink is shared 3 ways)", m3)
	}
}

func TestRQMulticastBeatsTCPMultiUnicast(t *testing.T) {
	// The paper's headline for Fig 1a: with 3 replicas, Polyraptor
	// multicast sustains much higher session goodput than TCP
	// multi-unicast.
	rq := RunFig1RQ(tinyScale(), PatternMulticast, 3)
	tcp := RunFig1TCP(tinyScale(), PatternMulticast, 3)
	if stats.Mean(rq) < 1.5*stats.Mean(tcp) {
		t.Fatalf("RQ mean %.3f not clearly above TCP mean %.3f", stats.Mean(rq), stats.Mean(tcp))
	}
}

func TestRunFig1MultiSource(t *testing.T) {
	rq := RunFig1RQ(tinyScale(), PatternMultiSource, 3)
	if len(rq) == 0 {
		t.Fatal("no multi-source completions")
	}
	if rq[0] < 0.6 {
		t.Fatalf("best multi-source session only %.3f Gbps", rq[0])
	}
	tcp := RunFig1TCP(tinyScale(), PatternMultiSource, 3)
	if len(tcp) == 0 {
		t.Fatal("no TCP multi-source completions")
	}
}

func TestFigure1aShape(t *testing.T) {
	series := Figure1a(tinyScale(), 20)
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	labels := map[string]bool{}
	for _, s := range series {
		labels[s.Label] = true
		if len(s.X) != len(s.Y) {
			t.Fatalf("%s: x/y length mismatch", s.Label)
		}
		if len(s.Y) > 20 {
			t.Fatalf("%s: not downsampled (%d points)", s.Label, len(s.Y))
		}
	}
	for _, want := range []string{"1 Replica RQ", "3 Replicas RQ", "1 Replica TCP", "3 Replicas TCP"} {
		if !labels[want] {
			t.Fatalf("missing series %q (have %v)", want, labels)
		}
	}
}

func TestFigure1cShapeAndContrast(t *testing.T) {
	opt := IncastOptions{
		FatTreeK:       4,
		SenderCounts:   []int{2, 8},
		BytesPerSender: []int64{70 << 10},
		Repetitions:    2,
		Seed:           1,
		Trimming:       true,
	}
	series := Figure1c(opt)
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 (RQ, TCP at one size)", len(series))
	}
	var rq, tcp FigureSeries
	for _, s := range series {
		switch s.Label {
		case "RQ 70KB":
			rq = s
		case "TCP 70KB":
			tcp = s
		default:
			t.Fatalf("unexpected label %q", s.Label)
		}
	}
	if len(rq.Y) != 2 || len(rq.YErr) != 2 {
		t.Fatalf("RQ series malformed: %+v", rq)
	}
	// At 8 synchronized senders, Polyraptor must hold goodput well
	// above collapsing TCP.
	if rq.Y[1] < tcp.Y[1] {
		t.Fatalf("incast: RQ %.3f below TCP %.3f at 8 senders", rq.Y[1], tcp.Y[1])
	}
	if rq.Y[1] < 0.5 {
		t.Fatalf("RQ incast goodput %.3f collapsed", rq.Y[1])
	}
}

func TestAblationNoTrim(t *testing.T) {
	res := RunAblationNoTrim(4, 8, 70<<10, 1)
	if res.WithTrim <= res.WithoutTrim {
		t.Fatalf("trimming did not help incast: with=%.3f without=%.3f",
			res.WithTrim, res.WithoutTrim)
	}
}

func TestAblationInitialWindow(t *testing.T) {
	res := RunAblationInitialWindow(4, 40<<10, 10, 1)
	if res.MeanFCTWindow >= res.MeanFCTNoWindow {
		t.Fatalf("initial window did not reduce short-flow FCT: %v vs %v",
			res.MeanFCTWindow, res.MeanFCTNoWindow)
	}
}

func TestAblationPartitioning(t *testing.T) {
	res := RunAblationPartitioning(4, 3, 6, 512<<10, 1)
	if res.GoodputPartitioned <= 0 || res.GoodputRandom <= 0 {
		t.Fatalf("ablation produced zero goodput: %+v", res)
	}
	// Random seeding can only waste capacity (duplicates), never gain.
	if res.GoodputRandom > res.GoodputPartitioned*1.05 {
		t.Fatalf("random ESI beat partitioning: %+v", res)
	}
}

func TestAblationDecodeLatency(t *testing.T) {
	res := RunAblationDecodeLatency(4, 512<<10, 2000, 5, 1)
	if res.GoodputWithLatency >= res.GoodputNoLatency {
		t.Fatalf("decode latency had no cost: %+v", res)
	}
}

func TestScaleLambdaPreservesLoad(t *testing.T) {
	paper := PaperScale()
	l := paper.lambda(1e9, 1)
	// Paper parameters at 1 replica: 0.33 * 250 hosts * 1 Gbps /
	// (8*4MB) ~ 2460/s — close to the quoted 2560.
	if l < 2000 || l > 3000 {
		t.Fatalf("paper-scale lambda = %.0f, want ~2500", l)
	}
	bench := BenchScale()
	lb := bench.lambda(1e9, 1)
	perHostPaper := l * float64(paper.Bytes) * 8 / (250 * 1e9)
	perHostBench := lb * float64(bench.Bytes) * 8 / (16 * 1e9)
	if diff := perHostPaper - perHostBench; diff > 0.01 || diff < -0.01 {
		t.Fatalf("per-host load differs: paper %.3f vs bench %.3f", perHostPaper, perHostBench)
	}
	// Delivered-load normalisation: 3-replica multicast arrivals slow
	// down by the replication multiplier.
	c3 := paper.workloadConfig(1e9, PatternMulticast, 3)
	c1 := paper.workloadConfig(1e9, PatternMulticast, 1)
	if ratio := c1.Lambda / c3.Lambda; ratio < 2.5 || ratio > 2.7 {
		t.Fatalf("3-replica lambda ratio = %.2f, want ~2.6", ratio)
	}
	// Multi-source delivers one copy regardless of sender count.
	cm := paper.workloadConfig(1e9, PatternMultiSource, 3)
	if cm.Lambda != c1.Lambda {
		t.Fatal("multi-source lambda must not scale with senders")
	}
}
