package harness

import (
	"encoding/json"
	"testing"

	"polyraptor/internal/metrics"
	"polyraptor/internal/store"
)

func testSaturationOptions(scenario string) SaturationOptions {
	o := DefaultSaturationOptions(scenario)
	o.Params = meteredTestParams()
	o.Params.SLO = nil
	o.SLO = metrics.SLO{FCTDeadline: 0.002}
	o.LoadMin = 0.5
	o.LoadMax = 3
	o.Rungs = 4
	o.Refine = 2
	o.Seeds = 1
	return o
}

// The knee search must be a pure function of its options: two runs
// (the second at a different probe parallelism) serialise to the same
// bytes.
func TestFindSaturationDeterministic(t *testing.T) {
	o := testSaturationOptions("incast")
	a, err := FindSaturation(o, store.BackendPolyraptor)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 4
	b, err := FindSaturation(o, store.BackendPolyraptor)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("saturation result depends on parallelism:\n%s\nvs\n%s", aj, bj)
	}
}

// Structural invariants of the search: ladder loads strictly
// ascending across [LoadMin, LoadMax], effective knobs non-decreasing,
// and the verdict well-formed (a knee rung that passed, or an honest
// censoring marker).
func TestSaturationLadderShape(t *testing.T) {
	o := testSaturationOptions("incast")
	res, err := FindSaturation(o, store.BackendTCP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ladder) != o.Rungs {
		t.Fatalf("ladder has %d rungs, want %d", len(res.Ladder), o.Rungs)
	}
	if res.Ladder[0].Load != o.LoadMin || res.Ladder[len(res.Ladder)-1].Load != o.LoadMax {
		t.Errorf("ladder spans [%g, %g], want [%g, %g]",
			res.Ladder[0].Load, res.Ladder[len(res.Ladder)-1].Load, o.LoadMin, o.LoadMax)
	}
	for i := 1; i < len(res.Ladder); i++ {
		if res.Ladder[i].Load <= res.Ladder[i-1].Load {
			t.Errorf("ladder loads not ascending at rung %d: %g <= %g",
				i, res.Ladder[i].Load, res.Ladder[i-1].Load)
		}
		if res.Ladder[i].Knob < res.Ladder[i-1].Knob {
			t.Errorf("effective knob decreased at rung %d: %g < %g",
				i, res.Ladder[i].Knob, res.Ladder[i-1].Knob)
		}
	}
	for _, r := range res.Probes {
		if r.Attainment < 0 || r.Attainment > 1 {
			t.Errorf("probe at load %g: attainment %g outside [0,1]", r.Load, r.Attainment)
		}
	}
	switch res.Censored {
	case "":
		if res.Knee == nil {
			t.Fatal("uncensored search returned no knee")
		}
		if !res.Knee.OK {
			t.Errorf("knee rung at load %g did not meet the target", res.Knee.Load)
		}
	case "below-min":
		if res.Knee != nil {
			t.Errorf("below-min search returned a knee at load %g", res.Knee.Load)
		}
	case "above-max":
		if res.Knee == nil || res.Knee.Load != o.LoadMax {
			t.Errorf("above-max search should pin the knee at LoadMax")
		}
	default:
		t.Errorf("unknown censoring marker %q", res.Censored)
	}
}

// A tight SLO must saturate at or below the load where a loose SLO
// does: the knee is monotone in the spec.
func TestSaturationKneeMonotoneInSLO(t *testing.T) {
	tight := testSaturationOptions("incast")
	tight.SLO = metrics.SLO{FCTDeadline: 0.0008}
	loose := testSaturationOptions("incast")
	loose.SLO = metrics.SLO{FCTDeadline: 0.1}

	rt, err := FindSaturation(tight, store.BackendPolyraptor)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := FindSaturation(loose, store.BackendPolyraptor)
	if err != nil {
		t.Fatal(err)
	}
	kneeLoad := func(r SaturationResult) float64 {
		if r.Knee == nil {
			return 0
		}
		return r.Knee.Load
	}
	if kneeLoad(rt) > kneeLoad(rl) {
		t.Errorf("tight SLO knee %g exceeds loose SLO knee %g", kneeLoad(rt), kneeLoad(rl))
	}
	// The generous deadline comfortably covers every load in this tiny
	// ladder, so the loose search must max out.
	if rl.Censored != "above-max" {
		t.Errorf("loose SLO should be above-max censored, got %q (knee %+v)", rl.Censored, rl.Knee)
	}
}

// KeepHists retains each probe's merged histogram aggregates.
func TestSaturationKeepHists(t *testing.T) {
	o := testSaturationOptions("shuffle")
	o.Rungs = 2
	o.Refine = 0
	o.KeepHists = true
	res, err := FindSaturation(o, store.BackendPolyraptor)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Probes {
		if len(r.Hists) == 0 {
			t.Fatalf("probe at load %g kept no histograms", r.Load)
		}
	}
}
