package harness

import (
	"bytes"
	"strings"
	"testing"

	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

// tinySweepParams keeps each cell sub-second while still simulating
// real transfers on a real fabric.
func tinySweepParams() SweepParams {
	p := DefaultSweepParams()
	p.Senders = 4
	p.Bytes = 32 << 10
	p.Sessions = 30
	st := store.ShortConfig()
	st.Objects = 8
	st.ObjectBytes = 64 << 10
	st.Requests = 30
	p.Store = st
	return p
}

// acceptanceMatrix is the PR's acceptance configuration: 2 backends x
// 2 scenarios x 5 seeds.
func acceptanceMatrix(t *testing.T, parallelism int) sweep.Matrix {
	t.Helper()
	p := tinySweepParams()
	var cells []sweep.Cell
	for _, scenario := range []string{"incast", "storage"} {
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP} {
			cell, err := NewSweepCell(scenario, be, p)
			if err != nil {
				t.Fatalf("NewSweepCell(%s, %v): %v", scenario, be, err)
			}
			cells = append(cells, cell)
		}
	}
	return sweep.Matrix{Cells: cells, Seeds: 5, BaseSeed: 1, Parallelism: parallelism}
}

// TestSweepParallelMatchesSerial is the acceptance criterion: a
// 2-backend x 2-scenario x 5-seed sweep run on the full worker pool
// produces byte-identical aggregated JSON to the same sweep at
// parallelism 1. Run under -race in CI.
func TestSweepParallelMatchesSerial(t *testing.T) {
	serial, err := acceptanceMatrix(t, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := acceptanceMatrix(t, 0).Run() // 0 = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("parallel sweep JSON differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
	// The sweep must have actually measured something.
	for _, c := range serial.Cells {
		if len(c.Errors) > 0 {
			t.Fatalf("cell %s/%s errored: %v", c.Scenario, c.Backend, c.Errors)
		}
		name := "goodput_gbps"
		if c.Scenario == "storage" {
			name = "get_gbps"
		}
		a, ok := c.Metric(name)
		if !ok || a.N != 5 || a.Mean <= 0 {
			t.Fatalf("cell %s/%s metric %s = %+v ok=%v, want N=5 mean>0",
				c.Scenario, c.Backend, name, a, ok)
		}
	}
}

// TestNewSweepCellFig1 runs the fig1a and fig1b cells for one seed
// each across all three backends.
func TestNewSweepCellFig1(t *testing.T) {
	p := tinySweepParams()
	for _, scenario := range []string{"fig1a", "fig1b"} {
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP} {
			cell, err := NewSweepCell(scenario, be, p)
			if err != nil {
				t.Fatalf("NewSweepCell(%s, %v): %v", scenario, be, err)
			}
			m, err := cell.Runner.Run(sweep.SubSeed(1, 0))
			if err != nil {
				t.Fatalf("%s/%v: %v", scenario, be, err)
			}
			if m["goodput_mean_gbps"] <= 0 {
				t.Fatalf("%s/%v goodput_mean_gbps = %v, want > 0", scenario, be, m)
			}
			if m["goodput_p99_gbps"] < m["goodput_p50_gbps"] {
				t.Fatalf("%s/%v percentiles inverted: %v", scenario, be, m)
			}
		}
	}
}

// TestNewSweepCellRejectsUnknown: unknown scenarios and impossible
// storage templates fail at matrix-build time.
func TestNewSweepCellRejectsUnknown(t *testing.T) {
	if _, err := NewSweepCell("figure9", store.BackendTCP, tinySweepParams()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	p := tinySweepParams()
	p.Store.Replicas = 50 // 51 racks needed, k=4 has 8
	if _, err := NewSweepCell("storage", store.BackendTCP, p); err == nil {
		t.Fatal("impossible storage template accepted")
	}
}

// TestAblationCells: every ablation cell runs and reports both arms.
func TestAblationCells(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation cells are slow")
	}
	p := tinySweepParams()
	cells := AblationCells(p)
	if len(cells) != 4 {
		t.Fatalf("AblationCells returned %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		m, err := c.Runner.Run(sweep.SubSeed(1, 0))
		if err != nil {
			t.Fatalf("%s: %v", c.Scenario, err)
		}
		if len(m) != 2 {
			t.Fatalf("%s reported %d metrics, want 2 arms: %v", c.Scenario, len(m), m)
		}
		for name, v := range m {
			if v <= 0 {
				t.Fatalf("%s metric %s = %v, want > 0", c.Scenario, name, v)
			}
		}
	}
}

// TestStorageSweep: the polystore -runs path aggregates per backend
// with the shared seed stream.
func TestStorageSweep(t *testing.T) {
	p := tinySweepParams()
	res, err := StorageSweep(p.Store, []store.BackendKind{store.BackendPolyraptor, store.BackendTCP}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	want := sweep.SubSeeds(p.Store.Seed, 2)
	for _, c := range res.Cells {
		if len(c.Seeds) != 2 || c.Seeds[0] != want[0] || c.Seeds[1] != want[1] {
			t.Fatalf("cell %s seeds = %v, want %v", c.Backend, c.Seeds, want)
		}
		if a, ok := c.Metric("get_gbps"); !ok || a.N != 2 {
			t.Fatalf("cell %s get_gbps = %+v ok=%v", c.Backend, a, ok)
		}
	}
	if out := res.Table(nil); !strings.Contains(out, "storage/polyraptor") {
		t.Fatalf("table missing cell row:\n%s", out)
	}
}

// TestFigure1cSerialParallelIdentical: the figure itself is now a
// sweep; its series must not depend on parallelism.
func TestFigure1cSerialParallelIdentical(t *testing.T) {
	opt := IncastOptions{
		FatTreeK:       4,
		SenderCounts:   []int{2, 4},
		BytesPerSender: []int64{32 << 10},
		Repetitions:    3,
		Seed:           1,
		Trimming:       true,
	}
	serialOpt := opt
	serialOpt.Parallelism = 1
	parallelOpt := opt
	parallelOpt.Parallelism = 0

	serial := Figure1c(serialOpt)
	parallel := Figure1c(parallelOpt)
	if len(serial) != 2 || len(parallel) != 2 {
		t.Fatalf("series counts = %d, %d, want 2", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Label != parallel[i].Label {
			t.Fatalf("labels differ: %q vs %q", serial[i].Label, parallel[i].Label)
		}
		for j := range serial[i].Y {
			if serial[i].Y[j] != parallel[i].Y[j] || serial[i].YErr[j] != parallel[i].YErr[j] {
				t.Fatalf("series %q point %d differs: %v±%v vs %v±%v",
					serial[i].Label, j,
					serial[i].Y[j], serial[i].YErr[j],
					parallel[i].Y[j], parallel[i].YErr[j])
			}
		}
	}
}
