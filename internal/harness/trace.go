package harness

import (
	"strconv"

	"polyraptor/internal/sim"
	"polyraptor/internal/store"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
)

// TraceOptions is the harness-level switch for PolyScope tracing: a
// nil *TraceOptions means tracing is fully off (the fabric's recorder
// pointer stays nil and every instrumentation site reduces to one
// branch); a non-nil value — the zero value is fine — attaches a
// flight recorder and timeline probes to the run. Tracing draws no
// randomness and never mutates protocol state, so a traced run's
// results are bit-identical to the untraced run at the same seed.
type TraceOptions struct {
	// Interval is the probe sampling period (<= 0 selects
	// telemetry.DefaultProbeInterval).
	Interval sim.Time
	// Capacity bounds the event ring (0 = unbounded); when exceeded the
	// oldest events are overwritten, flight-recorder style.
	Capacity int
}

// telemetryOptions maps the harness switch to the telemetry config.
func (o *TraceOptions) telemetryOptions() telemetry.Options {
	if o == nil {
		return telemetry.Options{}
	}
	return telemetry.Options{Interval: o.Interval, Capacity: o.Capacity}
}

// newTrace builds a trace for one run, stamps its identifying
// metadata, and attaches the flight recorder to the fabric. It must
// run before faults are injected or flows started so those layers see
// the recorder. Returns nil (tracing off) when topt is nil.
func newTrace(ft *topology.FatTree, topt *TraceOptions, scenario string, backend store.BackendKind, seed int64) *telemetry.Trace {
	if topt == nil {
		return nil
	}
	tr := telemetry.New(topt.telemetryOptions())
	tr.SetMeta("scenario", scenario)
	tr.SetMeta("backend", backend.String())
	tr.SetMeta("seed", strconv.FormatInt(seed, 10))
	ft.Net.Rec = tr.Rec
	return tr
}

// startTrace registers the fabric gauges plus the transport's
// open-session gauge and begins probe sampling. Call after every flow
// has been started (gauges must all exist before the first sample) and
// before the engine runs.
func startTrace(tr *telemetry.Trace, ft *topology.FatTree, openSessions func() float64) {
	if tr == nil {
		return
	}
	ft.Net.RegisterProbes(tr.Probe)
	if openSessions != nil {
		tr.Probe.Gauge("open-sessions", "count", openSessions)
	}
	tr.Start(ft.Net.Eng)
}

// finishTrace stamps the run's end time once the engine has stopped.
func finishTrace(tr *telemetry.Trace, end sim.Time) {
	if tr != nil {
		tr.Finish(end)
	}
}
