package harness

import (
	"fmt"
	"strconv"

	"polyraptor/internal/metrics"
	"polyraptor/internal/stats"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/telemetry"
)

// Sweep cells: every experiment the harness knows how to run —
// Figure 1a/1b workloads, the incast pattern, the storage cluster and
// the DESIGN.md ablations — expressed behind the one sweep.Runner
// interface, so cmd/polysweep (and the -runs flags of the other CLIs)
// can execute any backend x scenario x seed matrix on the worker pool.

// SweepParams sizes the canned sweep scenarios. The zero value is not
// useful; start from DefaultSweepParams.
type SweepParams struct {
	// FatTreeK is the fabric arity for the figure scenarios.
	FatTreeK int
	// Bytes is the object size (per sender for incast).
	Bytes int64
	// Replicas is the replica/sender count for fig1a/fig1b.
	Replicas int
	// Senders is the incast fan-in.
	Senders int
	// Sessions is the fig1a/fig1b session count.
	Sessions int
	// LoadFactor is the fig1a/fig1b offered-load fraction.
	LoadFactor float64
	// Trimming enables NDP packet trimming for the Polyraptor backend.
	Trimming bool
	// Mappers and Reducers size the shuffle scenario's transfer matrix
	// (Bytes is the mean partition size per pair).
	Mappers, Reducers int
	// ShuffleSkew is the Zipf skew of partition sizes across reducers.
	ShuffleSkew float64
	// Straggler scales one mapper's partitions (0 disables, >= 1
	// scales).
	Straggler float64
	// Store is the storage-cluster template; its Backend and Seed are
	// overridden per run.
	Store store.Config
	// Chaos is the fault-injection template; its Fault.Seed is
	// overridden per run.
	Chaos ChaosOptions

	// Meter attaches a PolyMeter registry to every run: per-flow FCT
	// and goodput histograms (plus fabric queue depth and Polyraptor
	// stall durations where the scenario drives the fabric directly),
	// merged across repetitions into the cell's pooled distributions,
	// and an "slo_attainment" metric. Metering never changes run
	// results: a metered run's metrics are bit-identical to an
	// unmetered run of the same seed.
	Meter bool
	// SLO, when non-nil, scores every metered flow against the spec;
	// slo_attainment is the fraction of offered flows that completed
	// within it. Implies Meter. With no SLO, attainment degenerates to
	// the completion rate (every completed flow trivially meets the
	// empty spec; stalled or skipped flows still miss).
	SLO *metrics.SLO

	// Trace, when non-nil, attaches a PolyScope flight recorder and
	// timeline probes to every run of the scenarios that support
	// tracing (TraceableScenarios); NewSweepCell rejects it up front on
	// any other scenario. Tracing never changes run results.
	Trace *TraceOptions
	// TraceSink receives each traced run's finished trace. It is
	// invoked from sweep worker goroutines — possibly concurrently —
	// so implementations must be safe for concurrent use.
	TraceSink func(scenario, backend string, seed int64, tr *telemetry.Trace)
}

// DefaultSweepParams returns test-sized scenario parameters (a k=4
// fabric, sub-second cells) — the CLI scales them up via flags.
func DefaultSweepParams() SweepParams {
	return SweepParams{
		FatTreeK:    4,
		Bytes:       256 << 10,
		Replicas:    3,
		Senders:     8,
		Sessions:    80,
		LoadFactor:  0.33,
		Trimming:    true,
		Mappers:     4,
		Reducers:    4,
		ShuffleSkew: 0.9,
		Store:       store.ShortConfig(),
		Chaos:       testChaosOptions(),
	}
}

// testChaosOptions shrinks the chaos defaults to the sweep engine's
// test-sized k=4 fabric (sub-second cells); cmd/polychaos scales them
// up via flags.
func testChaosOptions() ChaosOptions {
	o := DefaultChaosOptions()
	o.FatTreeK = 4
	o.Flows = 6
	o.Senders = 6
	o.Bytes = 256 << 10
	o.Fault.FailAt = 500 * 1000 // 500 µs: mid-flow for 256 KB at 1 Gbps
	o.Deadline = 1e9            // 1 s
	return o
}

// SweepScenarios lists the scenario names NewSweepCell accepts, plus
// the "ablations" bundle expanded by AblationCells.
func SweepScenarios() []string {
	return []string{"fig1a", "fig1b", "incast", "shuffle", "storage", "chaos"}
}

// TraceableScenarios lists the sweep scenarios that support PolyScope
// tracing (SweepParams.Trace). The figure scenarios run many hundreds
// of overlapping sessions per cell and the storage cluster owns its
// own reporting, so tracing there is rejected rather than silently
// dropped.
func TraceableScenarios() []string {
	return []string{"incast", "shuffle", "chaos"}
}

// metered reports whether runs should carry a PolyMeter registry.
func (p SweepParams) metered() bool {
	return p.Meter || p.SLO != nil
}

// slo resolves the spec metered flows are scored against.
func (p SweepParams) slo() metrics.SLO {
	if p.SLO == nil {
		return metrics.SLO{}
	}
	return *p.SLO
}

// emitTrace hands a finished trace to the sink, if both exist.
func (p SweepParams) emitTrace(scenario string, backend store.BackendKind, seed int64, tr *telemetry.Trace) {
	if tr != nil && p.TraceSink != nil {
		p.TraceSink(scenario, backend.String(), seed, tr)
	}
}

// shuffleOptions builds the shuffle scenario options from the shared
// sweep parameters (Bytes doubles as the mean partition size).
func (p SweepParams) shuffleOptions() ShuffleOptions {
	return ShuffleOptions{
		FatTreeK:        p.FatTreeK,
		Mappers:         p.Mappers,
		Reducers:        p.Reducers,
		BytesPerPair:    p.Bytes,
		Skew:            p.ShuffleSkew,
		StragglerFactor: p.Straggler,
	}
}

// scale builds the Fig1 Scale for one run seed.
func (p SweepParams) scale(seed int64) Scale {
	return Scale{
		FatTreeK:   p.FatTreeK,
		Sessions:   p.Sessions,
		Bytes:      p.Bytes,
		LoadFactor: p.LoadFactor,
		Seed:       seed,
	}
}

// runner adapts a per-seed run (parameterised by its meter) to the
// sweep's Runner interface. Unmetered, the run gets the zero meter —
// every instrument nil, every recording site one dead branch — and
// the cell behaves exactly as before PolyMeter. Metered, each run
// gets a fresh single-goroutine registry whose histograms become the
// cell's pooled distributions and whose counters become
// slo_attainment.
func (p SweepParams) runner(scenario string, backend store.BackendKind, run func(seed int64, mt meter) (sweep.Metrics, error)) sweep.Runner {
	if !p.metered() {
		return sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
			return run(seed, meter{})
		})
	}
	return sweep.HistRunnerFunc(func(seed int64) (sweep.Metrics, sweep.Hists, error) {
		reg := metrics.NewRegistry()
		m, err := run(seed, newMeter(reg, scenario, backend, p.slo()))
		if err != nil {
			return nil, nil, err
		}
		m["slo_attainment"] = registryAttainment(reg)
		return m, registryHists(reg), nil
	})
}

// NewSweepCell builds the sweep cell for one scenario x backend point.
// Unknown scenarios and unsupported combinations are errors, reported
// before anything runs.
func NewSweepCell(scenario string, backend store.BackendKind, p SweepParams) (sweep.Cell, error) {
	if p.Trace != nil {
		traceable := false
		for _, s := range TraceableScenarios() {
			traceable = traceable || s == scenario
		}
		if !traceable {
			return sweep.Cell{}, fmt.Errorf("harness: scenario %q does not support tracing (traceable: %v)",
				scenario, TraceableScenarios())
		}
	}
	cell := sweep.Cell{Scenario: scenario, Backend: backend.String()}
	switch scenario {
	case "fig1a", "fig1b":
		pattern := PatternMulticast
		if scenario == "fig1b" {
			pattern = PatternMultiSource
		}
		cell.Params = map[string]string{
			"k":        strconv.Itoa(p.FatTreeK),
			"replicas": strconv.Itoa(p.Replicas),
			"sessions": strconv.Itoa(p.Sessions),
		}
		bytes := p.Bytes
		cell.Runner = p.runner(scenario, backend, func(seed int64, mt meter) (sweep.Metrics, error) {
			var goodputs []float64
			if backend == store.BackendPolyraptor {
				goodputs = RunFig1RQ(p.scale(seed), pattern, p.Replicas)
			} else {
				goodputs = runFig1Baseline(p.scale(seed), pattern, p.Replicas, backend)
			}
			// Fig1 reports per-session goodput, not raw FCTs; meter the
			// sessions from the goodputs (fct = bytes over goodput).
			mt.offered(len(goodputs))
			for _, g := range goodputs {
				mt.flow(fctFromGoodput(bytes, g), g)
			}
			return sessionMetrics(goodputs), nil
		})
	case "incast":
		cell.Params = map[string]string{
			"k":       strconv.Itoa(p.FatTreeK),
			"senders": strconv.Itoa(p.Senders),
			"bytes":   strconv.FormatInt(p.Bytes, 10),
		}
		opt := IncastOptions{FatTreeK: p.FatTreeK, Trimming: p.Trimming}
		cell.Runner = p.runner(scenario, backend, func(seed int64, mt meter) (sweep.Metrics, error) {
			switch backend {
			case store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP:
			default:
				return nil, fmt.Errorf("harness: incast does not support backend %v", backend)
			}
			g, tr := runIncast(opt, backend, p.Senders, p.Bytes, seed, p.Trace, mt)
			p.emitTrace("incast", backend, seed, tr)
			return sweep.Metrics{"goodput_gbps": g}, nil
		})
	case "shuffle":
		opt := p.shuffleOptions()
		if err := opt.Validate(); err != nil {
			return sweep.Cell{}, fmt.Errorf("harness: %w", err)
		}
		cell.Params = map[string]string{
			"k":        strconv.Itoa(p.FatTreeK),
			"mappers":  strconv.Itoa(p.Mappers),
			"reducers": strconv.Itoa(p.Reducers),
			"bytes":    strconv.FormatInt(p.Bytes, 10),
		}
		cell.Runner = p.runner(scenario, backend, func(seed int64, mt meter) (sweep.Metrics, error) {
			r, tr := runShuffle(opt, backend, seed, p.Trace, mt)
			p.emitTrace("shuffle", backend, seed, tr)
			return shuffleMetrics(r), nil
		})
	case "chaos":
		opt := p.Chaos
		if err := opt.Validate(); err != nil {
			return sweep.Cell{}, fmt.Errorf("harness: %w", err)
		}
		cell.Params = map[string]string{
			"k":       strconv.Itoa(opt.FatTreeK),
			"pattern": opt.Pattern,
			"fault":   opt.Fault.Kind.String(),
			"layer":   opt.Fault.Layer.String(),
			"frac":    strconv.FormatFloat(opt.Fault.Frac, 'g', -1, 64),
		}
		cell.Runner = p.runner(scenario, backend, func(seed int64, mt meter) (sweep.Metrics, error) {
			r, tr := runChaos(opt, backend, seed, p.Trace, mt)
			p.emitTrace("chaos", backend, seed, tr)
			return chaosMetrics(r), nil
		})
	case "storage":
		cfg := p.Store
		cell.Params = map[string]string{
			"k":        strconv.Itoa(cfg.FatTreeK),
			"replicas": strconv.Itoa(cfg.Replicas),
			"requests": strconv.Itoa(cfg.Requests),
			"fail":     cfg.FailMode.String(),
		}
		if err := validateStorageTemplate(cfg, backend); err != nil {
			return sweep.Cell{}, err
		}
		cell.Runner = p.runner(scenario, backend, func(seed int64, mt meter) (sweep.Metrics, error) {
			c := cfg
			c.Backend = backend
			c.Seed = seed
			res, err := store.Run(c)
			if err != nil {
				return nil, err
			}
			meterStorage(mt, res)
			return storageMetrics(res), nil
		})
	default:
		return sweep.Cell{}, fmt.Errorf("harness: unknown sweep scenario %q (have %v)", scenario, SweepScenarios())
	}
	return cell, nil
}

// meterStorage meters a finished storage run: the GET and PUT sides
// are separate tenants of the run's registry (their latency targets
// differ in practice, and the pooled histograms stay separable). A
// skipped GET (its object lost) never ran, so it counts as offered
// but cannot meet the SLO.
func meterStorage(mt meter, res *store.Result) {
	gm, pm := mt.tenant("get"), mt.tenant("put")
	getF, getG := res.GetFCTs(), res.GetGoodputs()
	putF, putG := res.PutFCTs(), res.PutGoodputs()
	gm.offered(len(getF) + res.SkippedGets)
	pm.offered(len(putF))
	for i, f := range getF {
		gm.flow(f, getG[i])
	}
	for i, f := range putF {
		pm.flow(f, putG[i])
	}
}

// runFig1Baseline runs the Figure 1 baseline side under the named
// transport: classic TCP on drop-tail, or DCTCP on ECN-marking
// drop-tail (K=20).
func runFig1Baseline(sc Scale, pattern Pattern, replicas int, kind store.BackendKind) []float64 {
	if kind == store.BackendDCTCP {
		return runFig1TCPWith(sc, pattern, replicas, tcpsim.DCTCPConfig(), 20)
	}
	return runFig1TCPWith(sc, pattern, replicas, tcpsim.DefaultConfig(), 0)
}

// validateStorageTemplate surfaces impossible storage configs at
// matrix-build time rather than as per-repetition errors.
func validateStorageTemplate(cfg store.Config, backend store.BackendKind) error {
	cfg.Backend = backend
	cfg.Seed = 1
	return cfg.Validate()
}

// sessionMetrics reduces per-session goodputs to the per-run summary a
// sweep aggregates across seeds.
func sessionMetrics(goodputs []float64) sweep.Metrics {
	s := stats.Summarize(goodputs)
	return sweep.Metrics{
		"goodput_mean_gbps": s.Mean,
		"goodput_p50_gbps":  s.P50,
		"goodput_p99_gbps":  s.P99,
		"goodput_min_gbps":  s.Min,
	}
}

// storageMetrics reduces one storage run to headline scalars (the
// table columns of cmd/polystore).
func storageMetrics(res *store.Result) sweep.Metrics {
	get := stats.Summarize(res.GetFCTs())
	put := stats.Summarize(res.PutFCTs())
	m := sweep.Metrics{
		"get_gbps":      stats.Mean(res.GetGoodputs()),
		"get_fct_p50_s": get.P50,
		"get_fct_p99_s": get.P99,
		"put_gbps":      stats.Mean(res.PutGoodputs()),
		"put_fct_p99_s": put.P99,
		"skipped_gets":  float64(res.SkippedGets),
	}
	if res.Recovery.Mode != store.FailNone {
		m["recovery_s"] = res.Recovery.Duration().Seconds()
	}
	before := stats.Summarize(store.FCTs(res.GetsBeforeFailure()))
	during := stats.Summarize(store.FCTs(res.GetsDuringRecovery()))
	if during.N > 0 && before.Mean > 0 {
		m["interference_x"] = during.Mean / before.Mean
	}
	return m
}

// AblationCells returns the DESIGN.md A1-A4 ablations as sweep cells.
// Each cell runs both arms of its ablation per seed and reports them
// as paired metrics, so the sweep's CI95 covers the per-seed contrast.
func AblationCells(p SweepParams) []sweep.Cell {
	k := p.FatTreeK
	return []sweep.Cell{
		{
			Scenario: "ablation-trim", Backend: "rq",
			Params: map[string]string{"k": strconv.Itoa(k)},
			Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
				r := RunAblationNoTrim(k, 12, 70<<10, seed)
				return sweep.Metrics{"trim_gbps": r.WithTrim, "notrim_gbps": r.WithoutTrim}, nil
			}),
		},
		{
			Scenario: "ablation-initwindow", Backend: "rq",
			Params: map[string]string{"k": strconv.Itoa(k)},
			Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
				r := RunAblationInitialWindow(k, 40<<10, 20, seed)
				return sweep.Metrics{
					"fct_window_us":   float64(r.MeanFCTWindow.Microseconds()),
					"fct_nowindow_us": float64(r.MeanFCTNoWindow.Microseconds()),
				}, nil
			}),
		},
		{
			Scenario: "ablation-esi", Backend: "rq",
			Params: map[string]string{"k": strconv.Itoa(k)},
			Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
				r := RunAblationPartitioning(k, 3, 8, 512<<10, seed)
				return sweep.Metrics{"partitioned_gbps": r.GoodputPartitioned, "random_gbps": r.GoodputRandom}, nil
			}),
		},
		{
			Scenario: "ablation-decode", Backend: "rq",
			Params: map[string]string{"k": strconv.Itoa(k)},
			Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
				r := RunAblationDecodeLatency(k, 512<<10, 2000, 6, seed)
				return sweep.Metrics{"nolat_gbps": r.GoodputNoLatency, "lat_gbps": r.GoodputWithLatency}, nil
			}),
		},
	}
}

// StorageSweep runs one cluster template across backends x seeds on
// the sweep engine — the multi-seed, parallel path behind
// cmd/polystore's -runs flag.
func StorageSweep(cfg store.Config, backends []store.BackendKind, seeds, parallelism int) (*sweep.Result, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("harness: no backends selected")
	}
	var cells []sweep.Cell
	for _, be := range backends {
		cell, err := NewSweepCell("storage", be, SweepParams{Store: cfg})
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return sweep.Matrix{Cells: cells, Seeds: seeds, BaseSeed: cfg.Seed, Parallelism: parallelism}.Run()
}
