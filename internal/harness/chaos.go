package harness

import (
	"fmt"
	"time"

	"polyraptor/internal/chaos"
	"polyraptor/internal/metrics"
	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/stats"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

// Chaos experiment: run a traffic pattern while a seeded fault plan
// executes mid-flow on the sim timeline, and compare how each
// transport degrades. Polyraptor sprays per packet and recodes around
// losses, so any surviving path carries the session; a hash-pinned
// TCP flow routed into a remote blackhole is stranded until (unless)
// the fault heals. Runs are bounded by a deadline: a flow that has
// not completed by then counts as stalled, the honest way to score a
// transport that would otherwise retransmit into a hole forever.

// ChaosPatterns lists the traffic patterns RunChaos accepts.
func ChaosPatterns() []string {
	return []string{"one2one", "incast", "multicast", "shuffle"}
}

// ChaosOptions parametrises one chaos experiment.
type ChaosOptions struct {
	// FatTreeK is the fabric arity.
	FatTreeK int
	// Pattern is the traffic pattern: one2one (Flows cross-pod unicast
	// transfers), incast (Senders -> 1), multicast (1 -> Replicas; TCP
	// runs multi-unicast), or shuffle (Mappers x Reducers).
	Pattern string
	// Flows is the transfer count for the one2one pattern.
	Flows int
	// Senders is the incast fan-in.
	Senders int
	// Replicas is the multicast fan-out.
	Replicas int
	// Mappers and Reducers size the shuffle matrix.
	Mappers, Reducers int
	// Bytes is the object size (per flow / sender / receiver / pair).
	Bytes int64
	// Fault is the fault plan; its Seed is overridden by the run seed
	// so sweep repetitions draw independent targets.
	Fault chaos.Plan
	// Deadline bounds the run in sim time. Transfers not complete by
	// then are stalled. It must exceed Fault.FailAt.
	Deadline sim.Time
}

// DefaultChaosOptions is the cmd/polychaos default: a k=6 fabric, 12
// cross-pod flows, a quarter of the core links blackholed 2 ms in
// (mid-flow for 1 MB objects), never healed.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		FatTreeK: 6,
		Pattern:  "one2one",
		Flows:    12,
		Senders:  8,
		Replicas: 3,
		Mappers:  4,
		Reducers: 4,
		Bytes:    1 << 20,
		Fault: chaos.Plan{
			Kind:   chaos.KindLinkDown,
			Layer:  chaos.LayerCore,
			Frac:   0.25,
			FailAt: 2 * time.Millisecond,
		},
		Deadline: 2 * time.Second,
	}
}

// Validate surfaces impossible chaos configurations before anything
// runs.
func (o ChaosOptions) Validate() error {
	if err := topology.CheckArity(o.FatTreeK); err != nil {
		return err
	}
	switch o.Pattern {
	case "one2one":
		if o.Flows < 1 {
			return fmt.Errorf("chaos one2one needs flows >= 1, got %d", o.Flows)
		}
		if 2*o.Flows > topology.HostsFor(o.FatTreeK) {
			return fmt.Errorf("chaos one2one needs %d distinct hosts, k=%d fabric has %d",
				2*o.Flows, o.FatTreeK, topology.HostsFor(o.FatTreeK))
		}
	case "incast":
		if err := topology.CheckFanout(o.FatTreeK, o.Senders, "senders"); err != nil {
			return err
		}
	case "multicast":
		if err := topology.CheckFanout(o.FatTreeK, o.Replicas, "replicas"); err != nil {
			return err
		}
	case "shuffle":
		opt := ShuffleOptions{
			FatTreeK: o.FatTreeK, Mappers: o.Mappers, Reducers: o.Reducers,
			BytesPerPair: o.Bytes,
		}
		if err := opt.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown chaos pattern %q (have %v)", o.Pattern, ChaosPatterns())
	}
	if o.Bytes < 1 {
		return fmt.Errorf("chaos needs bytes >= 1, got %d", o.Bytes)
	}
	if o.Deadline <= 0 {
		return fmt.Errorf("chaos needs a positive deadline, got %v", o.Deadline)
	}
	if o.Deadline <= o.Fault.FailAt {
		return fmt.Errorf("chaos deadline %v must exceed fault time %v", o.Deadline, o.Fault.FailAt)
	}
	plan := o.Fault
	plan.Seed = 1 // seed is injected per run; validate the rest
	if err := plan.Validate(); err != nil {
		return err
	}
	return nil
}

// ChaosRun is one transport's measurements under one executed fault
// plan.
type ChaosRun struct {
	// Backend names the transport.
	Backend string
	// Flows is the expected completion count (sessions for one2one/
	// incast, receivers for multicast, pairs for shuffle).
	Flows int
	// Completed and Stalled partition Flows at the deadline.
	Completed int
	Stalled   int
	// FCT summarises completion times in seconds, completed flows
	// only (a stalled flow has no finite FCT).
	FCT stats.Summary
	// GoodputGbps is completed bytes over the makespan (last
	// completion, or the deadline when anything stalled).
	GoodputGbps float64
	// FaultTargets is how many links/switches the plan struck.
	FaultTargets int
	// RouteDrops counts packets blackholed at switches (no live
	// route, or a killed switch) — the fault signature.
	RouteDrops int64
	// LinkDrops counts packets destroyed on down or lossy links.
	LinkDrops int64
	// QueueDrops counts ordinary congestion drops, for contrast.
	QueueDrops int64
	// Trimmed counts NDP header trims (Polyraptor runs only).
	Trimmed int64
}

// StallRate is the fraction of flows still incomplete at the
// deadline.
func (r ChaosRun) StallRate() float64 {
	if r.Flows == 0 {
		return 0
	}
	return float64(r.Stalled) / float64(r.Flows)
}

// chaosWorkload is the per-seed transfer list shared by every
// backend: sources, destinations and sizes drawn once per seed so
// transports are compared on identical workloads and fault draws.
// Every pattern — the shuffle matrix included — flattens to this
// shape; only the multicast pattern needs extra structure (one group
// session on rq), signalled explicitly by ChaosOptions.Pattern.
type chaosWorkload struct {
	srcs, dsts []int
	bytes      []int64
}

// one2onePairs draws Flows cross-pod (src, dst) pairs over distinct
// hosts. Cross-pod forces every transfer through the core layer,
// where the default fault plan strikes.
func one2onePairs(ft *topology.FatTree, flows int, seed int64) chaosWorkload {
	rng := sim.RNG(seed, "chaos-pairs")
	perm := rng.Perm(ft.NumHosts())
	var w chaosWorkload
	used := make([]bool, ft.NumHosts())
	for i := 0; i < flows; i++ {
		src := perm[i]
		used[src] = true
	}
	next := flows
	for i := 0; i < flows; i++ {
		src := perm[i]
		dst := -1
		// First unused host from the permutation tail in a different
		// pod; fall back to any unused host when the draw is exhausted
		// (tiny fabrics where a pod holds most remaining hosts).
		for j := next; j < len(perm); j++ {
			if !used[perm[j]] && ft.Pod(perm[j]) != ft.Pod(src) {
				dst = perm[j]
				break
			}
		}
		if dst < 0 {
			for j := next; j < len(perm); j++ {
				if !used[perm[j]] {
					dst = perm[j]
					break
				}
			}
		}
		if dst < 0 {
			panic("harness: chaos one2one ran out of hosts (validate should have caught this)")
		}
		used[dst] = true
		w.srcs = append(w.srcs, src)
		w.dsts = append(w.dsts, dst)
	}
	return w
}

// drawChaosWorkload materialises the pattern's transfers for one seed.
func drawChaosWorkload(o ChaosOptions, ft *topology.FatTree, seed int64) chaosWorkload {
	switch o.Pattern {
	case "one2one":
		w := one2onePairs(ft, o.Flows, seed)
		for range w.srcs {
			w.bytes = append(w.bytes, o.Bytes)
		}
		return w
	case "incast":
		ic := workload.GenerateIncast(workload.IncastConfig{
			Senders: o.Senders, BytesPerSender: o.Bytes, Seed: seed,
		}, ft)
		var w chaosWorkload
		for _, s := range ic.Senders {
			w.srcs = append(w.srcs, s)
			w.dsts = append(w.dsts, ic.Client)
			w.bytes = append(w.bytes, ic.Bytes)
		}
		return w
	case "multicast":
		// One writer replicating to Replicas out-of-rack receivers —
		// the PolyStore PUT pattern under faults.
		rng := sim.RNG(seed, "chaos-multicast")
		src := rng.Intn(ft.NumHosts())
		var w chaosWorkload
		seen := map[int]bool{src: true}
		for len(w.dsts) < o.Replicas {
			r := rng.Intn(ft.NumHosts())
			if seen[r] || ft.SameRack(src, r) {
				continue
			}
			seen[r] = true
			w.srcs = append(w.srcs, src)
			w.dsts = append(w.dsts, r)
			w.bytes = append(w.bytes, o.Bytes)
		}
		return w
	case "shuffle":
		sh := workload.GenerateShuffle(workload.ShuffleConfig{
			Mappers: o.Mappers, Reducers: o.Reducers,
			BytesPerPair: o.Bytes, Seed: seed,
		}, ft)
		var w chaosWorkload
		for mi, m := range sh.Mappers {
			for ri, r := range sh.Reducers {
				w.srcs = append(w.srcs, m)
				w.dsts = append(w.dsts, r)
				w.bytes = append(w.bytes, sh.Bytes[mi][ri])
			}
		}
		return w
	}
	panic(fmt.Sprintf("harness: unknown chaos pattern %q", o.Pattern))
}

// RunChaos runs one transport under the fault plan for one seed. The
// workload draw and the fault targets depend only on the seed, so
// backends compare on identical scenarios.
func RunChaos(o ChaosOptions, backend store.BackendKind, seed int64) ChaosRun {
	r, _ := RunChaosTraced(o, backend, seed, nil)
	return r
}

// RunChaosTraced is RunChaos with an optional PolyScope trace
// attached (nil topt reproduces RunChaos exactly). The returned trace
// is finished and ready for export; it is nil when topt is nil.
func RunChaosTraced(o ChaosOptions, backend store.BackendKind, seed int64, topt *TraceOptions) (ChaosRun, *telemetry.Trace) {
	return runChaos(o, backend, seed, topt, meter{})
}

// RunChaosMetered is RunChaosTraced with PolyMeter instruments
// attached: per-flow FCT/goodput histograms, fabric queue depth,
// Polyraptor stall durations, and SLO attainment counters land in reg
// under (chaos, backend) labels. A nil reg reproduces RunChaosTraced
// exactly.
func RunChaosMetered(o ChaosOptions, backend store.BackendKind, seed int64, topt *TraceOptions, reg *metrics.Registry, slo metrics.SLO) (ChaosRun, *telemetry.Trace) {
	return runChaos(o, backend, seed, topt, newMeter(reg, "chaos", backend, slo))
}

func runChaos(o ChaosOptions, backend store.BackendKind, seed int64, topt *TraceOptions, mt meter) (ChaosRun, *telemetry.Trace) {
	if err := o.Validate(); err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	ft, err := topology.NewFatTree(o.FatTreeK, backend.NetConfig(seed))
	if err != nil {
		panic(err)
	}
	tr := newTrace(ft, topt, "chaos", backend, seed)
	mt.fabric(ft)
	plan := o.Fault
	plan.Seed = seed
	inj, err := chaos.Inject(ft, plan)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	w := drawChaosWorkload(o, ft, seed)

	run := ChaosRun{Backend: backend.String(), FaultTargets: inj.TargetCount()}
	var fcts []float64
	var completedBytes int64
	var last sim.Time
	record := func(bytes int64, end sim.Time) {
		run.Completed++
		completedBytes += bytes
		fct := end.Seconds()
		fcts = append(fcts, fct)
		mt.flow(fct, perFlowGbps(bytes, fct))
		if end > last {
			last = end
		}
	}

	run.Flows = len(w.srcs)
	mt.offered(run.Flows)
	open := startChaosFlows(ft, backend, seed, w, o.Pattern == "multicast", record, mt)
	startTrace(tr, ft, open)

	ft.Net.Eng.RunUntil(o.Deadline)
	finishTrace(tr, ft.Net.Now())

	run.Stalled = run.Flows - run.Completed
	run.FCT = stats.Summarize(fcts)
	makespan := last
	if run.Stalled > 0 {
		makespan = o.Deadline
	}
	run.GoodputGbps = gbps(completedBytes, makespan)
	tot := ft.Net.QueueTotals()
	run.RouteDrops = tot.RouteDrops
	run.LinkDrops = tot.LinkDrops
	run.QueueDrops = tot.Dropped
	run.Trimmed = tot.Trimmed
	return run, tr
}

// startChaosFlows starts the pairwise patterns (one2one, incast,
// multicast) on the chosen transport. FCTs are per transfer; the
// multicast pattern completes once per receiver on both transports
// (rq runs one group session, TCP multi-unicasts). The returned gauge
// reads the transport's live session/flow count — the trace probe's
// open-sessions channel.
func startChaosFlows(ft *topology.FatTree, backend store.BackendKind, seed int64, w chaosWorkload, multicast bool, record func(int64, sim.Time), mt meter) func() float64 {
	if backend == store.BackendPolyraptor {
		sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
		sys.PruneGroup = ft.PruneMulticastLeaf
		mt.stallRQ(sys)
		open := func() float64 { send, recv := sys.OpenSessions(); return float64(send + recv) }
		if multicast {
			g := ft.InstallMulticastGroup(w.srcs[0], w.dsts)
			bytes := w.bytes[0]
			sys.StartMulticast(w.srcs[0], w.dsts, g, bytes, func(ev polyraptor.CompletionEvent) {
				record(bytes, ev.End)
			})
			return open
		}
		for i := range w.srcs {
			bytes := w.bytes[i]
			sys.StartUnicast(w.srcs[i], w.dsts[i], bytes, func(ev polyraptor.CompletionEvent) {
				record(bytes, ev.End)
			})
		}
		return open
	}
	sys := tcpsim.NewSystem(ft.Net, backendTCPConfig(backend))
	for i := range w.srcs {
		bytes := w.bytes[i]
		sys.StartFlow(w.srcs[i], w.dsts[i], bytes, func(r tcpsim.FlowResult) {
			record(bytes, r.End)
		})
	}
	return func() float64 { return float64(sys.OpenFlows()) }
}

// backendTCPConfig maps the baseline backends to their stacks.
func backendTCPConfig(backend store.BackendKind) tcpsim.Config {
	if backend == store.BackendDCTCP {
		return tcpsim.DCTCPConfig()
	}
	return tcpsim.DefaultConfig()
}

// ChaosSchedule executes the fault plan on an idle fabric — no
// traffic — and returns the injection with its complete event log:
// the dry run behind cmd/polychaos -v, showing exactly which targets
// a seed strikes and when.
func ChaosSchedule(o ChaosOptions, seed int64) (*chaos.Injection, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cfg := netsim.DefaultConfig()
	cfg.Seed = seed
	ft, err := topology.NewFatTree(o.FatTreeK, cfg)
	if err != nil {
		return nil, err
	}
	plan := o.Fault
	plan.Seed = seed
	inj, err := chaos.Inject(ft, plan)
	if err != nil {
		return nil, err
	}
	ft.Net.Eng.RunUntil(o.Deadline)
	return inj, nil
}

// RunChaosAll runs the same chaos template once per backend on the
// sweep worker pool — the cmd/polychaos single-run path.
func RunChaosAll(o ChaosOptions, backends []store.BackendKind, seed int64, parallelism int) ([]ChaosRun, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("harness: no backends selected")
	}
	out := make([]ChaosRun, len(backends))
	sweep.ForEach(len(backends), parallelism, func(i int) {
		out[i] = RunChaos(o, backends[i], seed)
	})
	return out, nil
}

// chaosMetrics reduces one run to the scalars a sweep aggregates. The
// FCT percentiles are omitted when nothing completed: a zero would
// read as instant completion for exactly the backend that performed
// worst, and the sweep engine aggregates ragged keys per sample (the
// aggregate's N shows how many seeds contributed).
func chaosMetrics(r ChaosRun) sweep.Metrics {
	m := sweep.Metrics{
		"completed":     float64(r.Completed),
		"stalled":       float64(r.Stalled),
		"stall_rate":    r.StallRate(),
		"goodput_gbps":  r.GoodputGbps,
		"blackholed":    float64(r.RouteDrops),
		"link_drops":    float64(r.LinkDrops),
		"queue_drops":   float64(r.QueueDrops),
		"fault_targets": float64(r.FaultTargets),
	}
	if r.Completed > 0 {
		m["fct_p50_s"] = r.FCT.P50
		m["fct_p99_s"] = r.FCT.P99
	}
	return m
}
