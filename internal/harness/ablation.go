package harness

import (
	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/stats"
	"polyraptor/internal/topology"
)

// Ablations quantify the design decisions the paper credits for
// Polyraptor's behaviour (DESIGN.md experiments A1-A3).

// AblationNoTrimResult compares Polyraptor incast goodput with and
// without NDP packet trimming (A1: "packet trimming along with RQ
// coding provide resilience").
type AblationNoTrimResult struct {
	Senders     int
	WithTrim    float64
	WithoutTrim float64
}

// RunAblationNoTrim measures one incast point with trimming on and
// off (drop-tail with the same shallow buffering).
func RunAblationNoTrim(k, senders int, bytes int64, seed int64) AblationNoTrimResult {
	on := DefaultIncastOptions()
	on.FatTreeK = k
	on.Trimming = true
	off := on
	off.Trimming = false
	return AblationNoTrimResult{
		Senders:     senders,
		WithTrim:    RunIncastRQ(on, senders, bytes, seed),
		WithoutTrim: RunIncastRQ(off, senders, bytes, seed),
	}
}

// AblationIWResult compares short-flow completion time with the
// paper's first-RTT window blast versus a pull-only start (A2).
type AblationIWResult struct {
	// MeanFCTWindow is the mean flow completion time with the default
	// initial window.
	MeanFCTWindow sim.Time
	// MeanFCTNoWindow is the mean FCT with InitWindow=1 (pure
	// pull-driven start).
	MeanFCTNoWindow sim.Time
}

// RunAblationInitialWindow measures mean FCT of short uncontended
// flows under both settings.
func RunAblationInitialWindow(k int, flowBytes int64, flows int, seed int64) AblationIWResult {
	run := func(iw int) sim.Time {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		ft, err := topology.NewFatTree(k, ncfg)
		if err != nil {
			panic(err)
		}
		pcfg := polyraptor.DefaultConfig()
		pcfg.InitWindow = iw
		sys := polyraptor.NewSystem(ft.Net, pcfg, seed)
		rng := sim.RNG(seed, "ablation-iw")
		var total sim.Time
		n := 0
		for i := 0; i < flows; i++ {
			src := rng.Intn(ft.NumHosts())
			dst := rng.Intn(ft.NumHosts())
			if dst == src {
				dst = (dst + 1) % ft.NumHosts()
			}
			// Serialise flows: each starts after the previous slice of
			// simulated time so they never contend (isolating latency).
			at := sim.Time(i) * 2e6
			ft.Net.Eng.At(at, func() {
				start := ft.Net.Now()
				sys.StartUnicast(src, dst, flowBytes, func(ev polyraptor.CompletionEvent) {
					total += ev.End - start
					n++
				})
			})
		}
		ft.Net.Eng.Run()
		if n == 0 {
			panic("harness: no ablation flows completed")
		}
		return total / sim.Time(n)
	}
	return AblationIWResult{
		MeanFCTWindow:   run(polyraptor.DefaultConfig().InitWindow),
		MeanFCTNoWindow: run(1),
	}
}

// AblationPartitionResult compares multi-source transfer efficiency
// with ESI partitioning versus independent random seeding (A3): the
// paper's partitioning guarantees zero duplicates.
type AblationPartitionResult struct {
	// GoodputPartitioned and GoodputRandom are mean session goodputs.
	GoodputPartitioned float64
	GoodputRandom      float64
}

// RunAblationPartitioning fetches objects from `senders` replicas
// repeatedly under both ESI schemes.
func RunAblationPartitioning(k, senders, sessions int, bytes int64, seed int64) AblationPartitionResult {
	run := func(randomESI bool) float64 {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		ft, err := topology.NewFatTree(k, ncfg)
		if err != nil {
			panic(err)
		}
		pcfg := polyraptor.DefaultConfig()
		pcfg.RandomESI = randomESI
		// Emphasise the repair phase, where duplicates can occur.
		pcfg.InitWindow = 4
		sys := polyraptor.NewSystem(ft.Net, pcfg, seed)
		rng := sim.RNG(seed, "ablation-part")
		var goodputs []float64
		for i := 0; i < sessions; i++ {
			client := rng.Intn(ft.NumHosts())
			peers := make([]int, 0, senders)
			for len(peers) < senders {
				p := rng.Intn(ft.NumHosts())
				ok := p != client
				for _, q := range peers {
					if q == p {
						ok = false
					}
				}
				if ok {
					peers = append(peers, p)
				}
			}
			at := sim.Time(i) * 20e6
			ft.Net.Eng.At(at, func() {
				start := ft.Net.Now()
				sys.StartMultiSource(peers, client, bytes, func(ev polyraptor.CompletionEvent) {
					goodputs = append(goodputs, gbps(bytes, ev.End-start))
				})
			})
		}
		ft.Net.Eng.Run()
		return stats.Mean(goodputs)
	}
	return AblationPartitionResult{
		GoodputPartitioned: run(false),
		GoodputRandom:      run(true),
	}
}

// AblationDecodeLatencyResult measures the effect of a non-zero
// decode cost on session goodput (the paper's "current work" question
// about encoding/decoding complexity).
type AblationDecodeLatencyResult struct {
	GoodputNoLatency   float64
	GoodputWithLatency float64
}

// RunAblationDecodeLatency runs unicast sessions with a linear decode
// cost of nsPerSymbol applied at completion.
func RunAblationDecodeLatency(k int, bytes int64, nsPerSymbol int64, sessions int, seed int64) AblationDecodeLatencyResult {
	run := func(withLatency bool) float64 {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		ft, err := topology.NewFatTree(k, ncfg)
		if err != nil {
			panic(err)
		}
		pcfg := polyraptor.DefaultConfig()
		if withLatency {
			pcfg.DecodeLatency = func(kSym int) sim.Time {
				return sim.Time(int64(kSym) * nsPerSymbol)
			}
		}
		sys := polyraptor.NewSystem(ft.Net, pcfg, seed)
		rng := sim.RNG(seed, "ablation-dl")
		var goodputs []float64
		for i := 0; i < sessions; i++ {
			src := rng.Intn(ft.NumHosts())
			dst := (src + 1 + rng.Intn(ft.NumHosts()-1)) % ft.NumHosts()
			at := sim.Time(i) * 10e6
			ft.Net.Eng.At(at, func() {
				start := ft.Net.Now()
				sys.StartUnicast(src, dst, bytes, func(ev polyraptor.CompletionEvent) {
					goodputs = append(goodputs, gbps(bytes, ev.End-start))
				})
			})
		}
		ft.Net.Eng.Run()
		return stats.Mean(goodputs)
	}
	return AblationDecodeLatencyResult{
		GoodputNoLatency:   run(false),
		GoodputWithLatency: run(true),
	}
}
