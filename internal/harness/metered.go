package harness

import (
	"math"

	"polyraptor/internal/metrics"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/topology"
)

// PolyMeter wiring. A metered run owns a metrics.Registry built for
// that run alone (single goroutine, nothing shared across sweep
// workers); the meter value carries it into the run cores together
// with the interned label set and the SLO under test. The zero meter
// (nil registry) is the disabled state: every instrument the registry
// hands out is nil and every recording site degenerates to a single
// branch, so an unmetered run is bit-identical to the pre-PolyMeter
// code path.

// meter bundles one run's PolyMeter attachments.
type meter struct {
	reg *metrics.Registry
	l   metrics.Labels
	slo metrics.SLO
}

// newMeter builds the meter for one (scenario, backend) run. A nil
// registry disables everything.
func newMeter(reg *metrics.Registry, scenario string, backend store.BackendKind, slo metrics.SLO) meter {
	return meter{reg: reg, l: metrics.Labels{Scenario: scenario, Backend: backend.String()}, slo: slo}
}

// fabric attaches the queue-depth histogram to the fabric: every
// port enqueue records the post-enqueue occupancy.
func (mt meter) fabric(ft *topology.FatTree) {
	ft.Net.QueueHist = mt.reg.Histogram("queue_depth_pkts", mt.l)
}

// stallRQ attaches the stall-duration histogram to a Polyraptor
// system: every stall-guard firing records how long the session had
// been starved.
func (mt meter) stallRQ(sys *polyraptor.System) {
	sys.StallHist = mt.reg.Histogram("stall_s", mt.l)
}

// offered declares how many flows the run offers. Attainment divides
// by this gauge, so a flow that stalls and never completes still
// counts against the SLO.
func (mt meter) offered(n int) {
	mt.reg.Gauge("offered_flows", mt.l).Set(float64(n))
}

// flow records one completed flow: its completion time and goodput
// enter the histograms, and the slo_met counter advances if the flow
// met every enabled SLO criterion.
func (mt meter) flow(fct, goodputGbps float64) {
	mt.reg.Histogram("fct_s", mt.l).Record(fct)
	mt.reg.Histogram("goodput_gbps", mt.l).Record(goodputGbps)
	if mt.slo.MetFCT(fct) && mt.slo.MetGoodput(goodputGbps) {
		mt.reg.Counter("slo_met", mt.l).Add(1)
	}
}

// registryAttainment reads a run's SLO attainment: met flows over
// offered flows, summed across every label set (the storage scenario
// meters its GET and PUT sides as separate tenants). 0 when nothing
// was offered.
func registryAttainment(reg *metrics.Registry) float64 {
	var met, offered float64
	reg.EachCounter(func(name string, _ metrics.Labels, c *metrics.Counter) {
		if name == "slo_met" {
			met += float64(c.Value())
		}
	})
	reg.EachGauge(func(name string, _ metrics.Labels, g *metrics.Gauge) {
		if name == "offered_flows" {
			offered += g.Value()
		}
	})
	if offered <= 0 {
		return 0
	}
	return met / offered
}

// tenant returns a meter for a sub-workload of the run (the storage
// cluster's GET and PUT sides), sharing the registry and SLO.
func (mt meter) tenant(name string) meter {
	t := mt
	t.l.Tenant = name
	return t
}

// perFlowGbps is one flow's goodput: its bytes over its own
// completion time (all harness flows start at t=0).
func perFlowGbps(bytes int64, fctSeconds float64) float64 {
	if fctSeconds <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e9 / fctSeconds
}

// fctFromGoodput inverts perFlowGbps for the scenarios that report
// per-session goodput rather than raw completion times (Figure 1).
// NaN for a non-positive goodput, so the flow misses any SLO.
func fctFromGoodput(bytes int64, gbps float64) float64 {
	if gbps <= 0 {
		return math.NaN()
	}
	return float64(bytes) * 8 / 1e9 / gbps
}

// registryHists flattens a run registry into the sweep's Hists map.
// Tenant-labelled histograms get a "tenant_" name prefix; empty
// histograms (e.g. stall_s in a run with no stalls) are dropped. The
// iteration order is deterministic but irrelevant: histogram merge is
// commutative.
func registryHists(reg *metrics.Registry) sweep.Hists {
	if reg == nil {
		return nil
	}
	hs := sweep.Hists{}
	reg.EachHistogram(func(name string, l metrics.Labels, h *metrics.Histogram) {
		if h.Count() == 0 {
			return
		}
		if l.Tenant != "" {
			name = l.Tenant + "_" + name
		}
		hs[name] = h
	})
	if len(hs) == 0 {
		return nil
	}
	return hs
}
