package harness

import (
	"fmt"

	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/stats"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

// Extension experiments for the paper's "current work" list: network
// hotspots (E1) and different application workloads (E2).

// HotspotResult reports goodput under degraded core links.
type HotspotResult struct {
	// DegradedLinks is how many agg<->core links were slowed.
	DegradedLinks int
	// RQ1 and RQ3 are mean multi-source session goodputs with 1 and 3
	// senders (Gbps).
	RQ1, RQ3 float64
	// TCP1 is the mean single-flow TCP goodput for the same transfers.
	TCP1 float64
}

// RunHotspotExperiment degrades `frac` of the agg<->core links by
// `divisor` and measures sequential (uncontended) transfers across
// pods. Polyraptor sprays symbols over all equal-cost paths so a
// hotspot costs it only its capacity share; a hash-pinned TCP flow
// that lands on a degraded path is stuck at the degraded rate, and a
// 3-source Polyraptor session additionally shifts load toward
// replicas with healthy paths (the paper's "natural load balancing").
func RunHotspotExperiment(k int, frac float64, divisor int64, transfers int, bytes int64, seed int64) HotspotResult {
	res := HotspotResult{}

	pick := func(ft *topology.FatTree, rng intner, client, n int) []int {
		var out []int
		for len(out) < n {
			p := rng.Intn(ft.NumHosts())
			if p == client || ft.Pod(p) == ft.Pod(client) {
				continue // cross-pod: the transfer must traverse cores
			}
			dup := false
			for _, q := range out {
				dup = dup || q == p
			}
			if !dup {
				out = append(out, p)
			}
		}
		return out
	}

	runRQ := func(senders int) float64 {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		ft, err := topology.NewFatTree(k, ncfg)
		if err != nil {
			panic(err)
		}
		res.DegradedLinks = ft.DegradeCoreLinks(frac, divisor, seed)
		sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
		rng := sim.RNG(seed, "hotspot-pairs")
		var goodputs []float64
		for i := 0; i < transfers; i++ {
			client := rng.Intn(ft.NumHosts())
			peers := pick(ft, rng, client, senders)
			at := sim.Time(i) * 200e6 // sequential: isolate hotspot effect
			ft.Net.Eng.At(at, func() {
				start := ft.Net.Now()
				sys.StartMultiSource(peers, client, bytes, func(ev polyraptor.CompletionEvent) {
					goodputs = append(goodputs, gbps(bytes, ev.End-start))
				})
			})
		}
		ft.Net.Eng.Run()
		return stats.Mean(goodputs)
	}

	runTCP := func() float64 {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		ncfg.Trimming = false
		ft, err := topology.NewFatTree(k, ncfg)
		if err != nil {
			panic(err)
		}
		ft.DegradeCoreLinks(frac, divisor, seed)
		sys := tcpsim.NewSystem(ft.Net, tcpsim.DefaultConfig())
		rng := sim.RNG(seed, "hotspot-pairs")
		var goodputs []float64
		for i := 0; i < transfers; i++ {
			client := rng.Intn(ft.NumHosts())
			peers := pick(ft, rng, client, 1)
			at := sim.Time(i) * 200e6
			ft.Net.Eng.At(at, func() {
				start := ft.Net.Now()
				sys.StartFlow(peers[0], client, bytes, func(r tcpsim.FlowResult) {
					goodputs = append(goodputs, gbps(bytes, r.End-start))
				})
			})
		}
		ft.Net.Eng.Run()
		return stats.Mean(goodputs)
	}

	res.RQ1 = runRQ(1)
	res.RQ3 = runRQ(3)
	res.TCP1 = runTCP()
	return res
}

// intner is the subset of *rand.Rand the helpers need.
type intner interface{ Intn(int) int }

// StragglerResult reports the straggler-detachment experiment (the
// paper's proposed extension, Ext-S in DESIGN.md).
type StragglerResult struct {
	// HealthyGoodput is the mean goodput of the unimpaired multicast
	// receivers.
	HealthyGoodput float64
	// StragglerGoodput is the impaired receiver's goodput.
	StragglerGoodput float64
	// Detached reports whether the impaired receiver was detached.
	Detached bool
}

// RunStragglerExperiment multicasts an object to three receivers while
// one of them is crushed by background incast, with detachment on or
// off. With detachment the healthy receivers decouple from the
// straggler's pace.
func RunStragglerExperiment(detach bool, bytes int64, seed int64) StragglerResult {
	st := topology.NewStar(8, netsim.DefaultConfig())
	pcfg := polyraptor.DefaultConfig()
	pcfg.StragglerDetach = detach
	sys := polyraptor.NewSystem(st.Net, pcfg, seed)
	sys.PruneGroup = st.PruneMulticastLeaf
	for s := 4; s <= 7; s++ {
		sys.StartUnicast(s, 3, 4<<20, nil) // persistent background on host 3
	}
	receivers := []int{1, 2, 3}
	g := st.InstallMulticastGroup(0, receivers)
	var evs []polyraptor.CompletionEvent
	sys.StartMulticast(0, receivers, g, bytes, func(ev polyraptor.CompletionEvent) {
		evs = append(evs, ev)
	})
	st.Net.Eng.Run()
	var res StragglerResult
	healthy := 0
	for _, ev := range evs {
		if ev.Receiver == 3 {
			res.StragglerGoodput = ev.GoodputGbps()
			res.Detached = ev.Detached
		} else {
			res.HealthyGoodput += ev.GoodputGbps()
			healthy++
		}
	}
	if healthy > 0 {
		res.HealthyGoodput /= float64(healthy)
	}
	return res
}

// OversubscriptionResult reports incast goodput across fabric
// oversubscription ratios (extension E4).
type OversubscriptionResult struct {
	Ratio   int64
	RQ, TCP float64
}

// RunOversubscription measures a 12-way, 256 KB incast on a fabric
// whose ToR uplinks run at 1/ratio capacity. Polyraptor's receiver-
// paced pulls keep the (now scarcer) core bandwidth busy without
// overflowing it; TCP's losses compound with the reduced capacity.
func RunOversubscription(k int, ratio int64, seed int64) OversubscriptionResult {
	senders, bytes := 12, int64(256<<10)
	run := func(trim bool) float64 {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		ncfg.Trimming = trim
		ft, err := topology.NewFatTree(k, ncfg)
		if err != nil {
			panic(err)
		}
		ft.Oversubscribe(ratio)
		ic := workload.GenerateIncast(workload.IncastConfig{Senders: senders, BytesPerSender: bytes, Seed: seed}, ft)
		var last sim.Time
		done := 0
		if trim {
			sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
			for _, s := range ic.Senders {
				sys.StartUnicast(s, ic.Client, ic.Bytes, func(ev polyraptor.CompletionEvent) {
					done++
					if ev.End > last {
						last = ev.End
					}
				})
			}
		} else {
			sys := tcpsim.NewSystem(ft.Net, tcpsim.DefaultConfig())
			for _, s := range ic.Senders {
				sys.StartFlow(s, ic.Client, ic.Bytes, func(r tcpsim.FlowResult) {
					done++
					if r.End > last {
						last = r.End
					}
				})
			}
		}
		ft.Net.Eng.Run()
		if done != senders {
			panic("harness: oversubscription run incomplete")
		}
		return gbps(bytes*int64(senders), last)
	}
	return OversubscriptionResult{Ratio: ratio, RQ: run(true), TCP: run(false)}
}

// FlowSizeBucket aggregates results for one flow-size class.
type FlowSizeBucket struct {
	Label string
	// MeanFCT is the mean flow completion time.
	MeanFCT sim.Time
	// MeanGoodput is the mean per-session goodput in Gbps.
	MeanGoodput float64
	// Count is the number of sessions in the bucket.
	Count int
}

// FlowSizeResult compares RQ and TCP under an empirical flow-size
// distribution, bucketed by flow size.
type FlowSizeResult struct {
	Dist    string
	RQ, TCP []FlowSizeBucket
}

// RunFlowSizeExperiment runs a unicast permutation workload whose
// foreground sizes follow the given empirical distribution (E2:
// "different workloads"). Short flows ride the systematic first-RTT
// window; long flows exercise pull pacing — the buckets expose both.
func RunFlowSizeExperiment(k int, dist workload.SizeDist, sessions int, seed int64) FlowSizeResult {
	buckets := []struct {
		label string
		max   int64
	}{
		{"<100KB", 100 << 10},
		{"100KB-1MB", 1 << 20},
		{">1MB", 1 << 62},
	}
	type rec struct {
		bytes int64
		fct   sim.Time
	}

	mkSessions := func(ft *topology.FatTree) []workload.Session {
		cfg := workload.Config{
			Sessions:        sessions,
			Lambda:          float64(ft.NumHosts()) * 0.2 * 1e9 / (8 * dist.Mean()),
			Bytes:           1 << 20,
			BackgroundBytes: 1 << 20,
			BackgroundFrac:  0,
			Replicas:        1,
			Sizes:           &dist,
			Seed:            seed,
		}
		return workload.Generate(cfg, ft)
	}

	bucketize := func(recs []rec) []FlowSizeBucket {
		out := make([]FlowSizeBucket, len(buckets))
		for i, b := range buckets {
			out[i].Label = b.label
		}
		for _, r := range recs {
			for i, b := range buckets {
				if r.bytes <= b.max {
					out[i].Count++
					out[i].MeanFCT += r.fct
					out[i].MeanGoodput += gbps(r.bytes, r.fct)
					break
				}
			}
		}
		for i := range out {
			if out[i].Count > 0 {
				out[i].MeanFCT /= sim.Time(out[i].Count)
				out[i].MeanGoodput /= float64(out[i].Count)
			}
		}
		return out
	}

	// Polyraptor run.
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = seed
	ft, err := topology.NewFatTree(k, ncfg)
	if err != nil {
		panic(err)
	}
	sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
	var rqRecs []rec
	for _, s := range mkSessions(ft) {
		s := s
		ft.Net.Eng.At(s.Start, func() {
			start := ft.Net.Now()
			sys.StartUnicast(s.Client, s.Peers[0], s.Bytes, func(ev polyraptor.CompletionEvent) {
				rqRecs = append(rqRecs, rec{s.Bytes, ev.End - start})
			})
		})
	}
	ft.Net.Eng.Run()

	// TCP run.
	ncfg2 := netsim.DefaultConfig()
	ncfg2.Seed = seed
	ncfg2.Trimming = false
	ft2, err := topology.NewFatTree(k, ncfg2)
	if err != nil {
		panic(err)
	}
	tsys := tcpsim.NewSystem(ft2.Net, tcpsim.DefaultConfig())
	var tcpRecs []rec
	for _, s := range mkSessions(ft2) {
		s := s
		ft2.Net.Eng.At(s.Start, func() {
			start := ft2.Net.Now()
			tsys.StartFlow(s.Client, s.Peers[0], s.Bytes, func(r tcpsim.FlowResult) {
				tcpRecs = append(tcpRecs, rec{s.Bytes, r.End - start})
			})
		})
	}
	ft2.Net.Eng.Run()

	if len(rqRecs) != len(tcpRecs) {
		panic(fmt.Sprintf("harness: flow-size runs diverged: %d vs %d sessions", len(rqRecs), len(tcpRecs)))
	}
	return FlowSizeResult{Dist: dist.Name, RQ: bucketize(rqRecs), TCP: bucketize(tcpRecs)}
}
