package harness

import (
	"math/rand"
	"testing"

	"polyraptor/internal/workload"
)

func TestHotspotExperiment(t *testing.T) {
	// A single seed can legitimately let every hash-pinned TCP flow
	// dodge the degraded links (6 sequential transfers, 5/16 hotspots),
	// so the RQ-vs-TCP contrast is asserted on the mean over seeds
	// while the per-seed invariants stay exact.
	var rq3Sum, tcpSum float64
	for seed := int64(1); seed <= 3; seed++ {
		res := RunHotspotExperiment(4, 0.3, 10, 6, 1<<20, seed)
		if res.DegradedLinks == 0 {
			t.Fatal("no links degraded at frac=0.3")
		}
		if res.RQ1 <= 0 || res.RQ3 <= 0 || res.TCP1 <= 0 {
			t.Fatalf("zero goodput: %+v", res)
		}
		// Three sources give more healthy-path diversity than one.
		if res.RQ3 < res.RQ1*0.95 {
			t.Fatalf("seed %d: RQ3 (%.3f) worse than RQ1 (%.3f) under hotspots", seed, res.RQ3, res.RQ1)
		}
		rq3Sum += res.RQ3
		tcpSum += res.TCP1
	}
	// Spraying + multiple sources must beat a hash-pinned single TCP
	// flow under hotspots on average.
	if rq3Sum <= tcpSum {
		t.Fatalf("mean RQ3 (%.3f) did not beat mean pinned TCP (%.3f) under hotspots", rq3Sum/3, tcpSum/3)
	}
}

func TestHotspotNoDegradationAtZeroFrac(t *testing.T) {
	res := RunHotspotExperiment(4, 0, 10, 2, 256<<10, 1)
	if res.DegradedLinks != 0 {
		t.Fatalf("degraded %d links at frac=0", res.DegradedLinks)
	}
	// Healthy fabric: sequential transfers near line rate.
	if res.RQ1 < 0.8 {
		t.Fatalf("RQ1 = %.3f on healthy fabric", res.RQ1)
	}
}

func TestFlowSizeExperiment(t *testing.T) {
	res := RunFlowSizeExperiment(4, workload.WebSearchDist(), 40, 1)
	if res.Dist != "web-search" {
		t.Fatalf("dist = %q", res.Dist)
	}
	total := 0
	for _, b := range res.RQ {
		total += b.Count
	}
	if total != 40 {
		t.Fatalf("RQ bucket counts sum to %d, want 40", total)
	}
	// Small flows must be fast for Polyraptor (first-RTT window):
	// sub-millisecond mean FCT in an uncongested-ish fabric.
	if res.RQ[0].Count > 0 && res.RQ[0].MeanFCT > 5e6 {
		t.Fatalf("RQ small-flow mean FCT = %v", res.RQ[0].MeanFCT)
	}
	// TCP buckets must cover the same sessions.
	totalTCP := 0
	for _, b := range res.TCP {
		totalTCP += b.Count
	}
	if totalTCP != 40 {
		t.Fatalf("TCP bucket counts sum to %d", totalTCP)
	}
}

func TestStragglerExperimentContrast(t *testing.T) {
	on := RunStragglerExperiment(true, 2<<20, 9)
	off := RunStragglerExperiment(false, 2<<20, 9)
	if !on.Detached {
		t.Fatal("detachment enabled but straggler not detached")
	}
	if off.Detached {
		t.Fatal("detachment disabled but straggler detached")
	}
	if on.HealthyGoodput <= off.HealthyGoodput {
		t.Fatalf("detachment did not help healthy receivers: %.3f vs %.3f",
			on.HealthyGoodput, off.HealthyGoodput)
	}
	if on.StragglerGoodput <= 0 {
		t.Fatal("straggler never finished its private tail")
	}
}

func TestOversubscriptionShapes(t *testing.T) {
	full := RunOversubscription(4, 1, 1)
	over := RunOversubscription(4, 4, 1)
	// 4:1 oversubscription caps the out-of-rack aggregate at 0.25 of
	// host rate-ish; both protocols must slow down, and Polyraptor
	// must stay ahead of TCP.
	if over.RQ >= full.RQ {
		t.Fatalf("RQ unaffected by 4:1 oversubscription: %.3f vs %.3f", over.RQ, full.RQ)
	}
	if over.RQ <= over.TCP {
		t.Fatalf("RQ (%.3f) lost to TCP (%.3f) under oversubscription", over.RQ, over.TCP)
	}
	if over.RQ < 0.15 {
		t.Fatalf("RQ collapsed under oversubscription: %.3f", over.RQ)
	}
}

func TestSizeDistSampling(t *testing.T) {
	for _, dist := range []workload.SizeDist{workload.WebSearchDist(), workload.DataMiningDist()} {
		rng := rand.New(rand.NewSource(1))
		small, large := 0, 0
		const n = 5000
		for i := 0; i < n; i++ {
			v := dist.Sample(rng)
			if v < 1 {
				t.Fatalf("%s: sampled %d", dist.Name, v)
			}
			if v < 100<<10 {
				small++
			}
			if v > 1<<20 {
				large++
			}
		}
		// Both distributions are small-flow dominated but heavy-tailed.
		if small < n/3 {
			t.Fatalf("%s: only %d/%d small flows", dist.Name, small, n)
		}
		if large == 0 {
			t.Fatalf("%s: no large flows sampled", dist.Name)
		}
		if dist.Mean() < 10<<10 {
			t.Fatalf("%s: mean %v implausibly small", dist.Name, dist.Mean())
		}
	}
}
