package harness

import (
	"bytes"
	"testing"
	"time"

	"polyraptor/internal/chaos"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
)

// tinyChaosOptions is the k=4 template the unit tests share: 6
// cross-pod flows of 256 KB with a quarter of the core links
// blackholed at 500 µs, never healed, scored at a 1 s deadline.
func tinyChaosOptions() ChaosOptions {
	return testChaosOptions()
}

// TestChaosRQCompletesWhereTCPStrands is the subsystem's acceptance
// test (the paper's headline under real mid-flow faults): with a
// seeded fraction of core links killed mid-flow, Polyraptor completes
// every flow — per-packet spraying plus rateless coding need any
// surviving path, no rerouting — while hash-pinned TCP strands the
// flows whose ECMP hash leads into a remote blackhole. Seed 1's draw
// keeps every pod reachable (a draw that severs all core links into
// one pod strands any transport; that physics is exercised in
// TestChaosSeveredPodStallsEveryone-like sweeps, not here).
func TestChaosRQCompletesWhereTCPStrands(t *testing.T) {
	o := tinyChaosOptions()
	rq := RunChaos(o, store.BackendPolyraptor, 1)
	tcp := RunChaos(o, store.BackendTCP, 1)

	if rq.FaultTargets == 0 || tcp.FaultTargets == 0 {
		t.Fatal("no links were targeted; the fault plan is vacuous")
	}
	if rq.RouteDrops == 0 {
		t.Fatal("no packets were blackholed; the fault did not bite")
	}
	if rq.Stalled != 0 || rq.Completed != rq.Flows {
		t.Fatalf("rq stalled %d/%d flows under core blackholes (want zero stalls)", rq.Stalled, rq.Flows)
	}
	if tcp.Stalled == 0 {
		t.Fatalf("tcp stranded no flows (completed %d/%d); the contrast is vacuous", tcp.Completed, tcp.Flows)
	}
	if rq.GoodputGbps <= tcp.GoodputGbps {
		t.Fatalf("rq goodput %.4f <= tcp %.4f under faults", rq.GoodputGbps, tcp.GoodputGbps)
	}
	// Completed-flow FCTs stay finite and inside the deadline.
	if rq.FCT.Max >= o.Deadline.Seconds() {
		t.Fatalf("rq FCT max %.3fs reached the deadline %v", rq.FCT.Max, o.Deadline)
	}
}

// TestChaosRecoveryUnstrandsTCP: the same fault healed mid-run frees
// the stranded TCP flows — their RTO backoff retries land on restored
// links — so stalls drop to zero but tail FCT keeps the scar.
func TestChaosRecoveryUnstrandsTCP(t *testing.T) {
	o := tinyChaosOptions()
	o.Fault.RecoverAt = 100 * time.Millisecond
	o.Deadline = 3 * time.Second
	tcp := RunChaos(o, store.BackendTCP, 1)
	if tcp.Stalled != 0 {
		t.Fatalf("tcp still stranded %d flows after the fault healed", tcp.Stalled)
	}
	// The stranded flows sat through the 100 ms outage plus RTO
	// backoff: the tail must be far beyond the healthy ~3 ms FCT.
	if tcp.FCT.Max < 0.05 {
		t.Fatalf("tcp max FCT %.4fs shows no outage scar", tcp.FCT.Max)
	}
}

func TestChaosPatternsRunOnAllBackends(t *testing.T) {
	for _, pattern := range ChaosPatterns() {
		o := tinyChaosOptions()
		o.Pattern = pattern
		// Multicast trees are single-path (no spraying inside the
		// group tree), so a permanent core blackhole can legitimately
		// park receivers behind the severed branch; heal it mid-run.
		if pattern == "multicast" {
			o.Fault.RecoverAt = 50 * time.Millisecond
		}
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP} {
			r := RunChaos(o, be, 3)
			if r.Flows == 0 {
				t.Fatalf("%s/%s: no flows", pattern, be)
			}
			if r.Completed+r.Stalled != r.Flows {
				t.Fatalf("%s/%s: completed %d + stalled %d != flows %d", pattern, be, r.Completed, r.Stalled, r.Flows)
			}
			if r.FCT.N != r.Completed {
				t.Fatalf("%s/%s: %d FCT samples for %d completions", pattern, be, r.FCT.N, r.Completed)
			}
			if r.Completed > 0 && r.GoodputGbps <= 0 {
				t.Fatalf("%s/%s: completed %d flows at %.4f Gbps", pattern, be, r.Completed, r.GoodputGbps)
			}
		}
	}
}

func TestRunChaosDeterministicPerSeed(t *testing.T) {
	o := tinyChaosOptions()
	a := RunChaos(o, store.BackendPolyraptor, 5)
	b := RunChaos(o, store.BackendPolyraptor, 5)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := RunChaos(o, store.BackendPolyraptor, 6)
	if a == c {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestChaosOptionsValidate(t *testing.T) {
	if err := tinyChaosOptions().Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	mut := func(f func(*ChaosOptions)) ChaosOptions {
		o := tinyChaosOptions()
		f(&o)
		return o
	}
	bad := []ChaosOptions{
		mut(func(o *ChaosOptions) { o.FatTreeK = 3 }),
		mut(func(o *ChaosOptions) { o.Pattern = "tornado" }),
		mut(func(o *ChaosOptions) { o.Flows = 0 }),
		mut(func(o *ChaosOptions) { o.Flows = 1000 }), // 2*flows > hosts
		mut(func(o *ChaosOptions) { o.Pattern = "incast"; o.Senders = 0 }),
		mut(func(o *ChaosOptions) { o.Pattern = "multicast"; o.Replicas = 10000 }),
		mut(func(o *ChaosOptions) { o.Pattern = "shuffle"; o.Mappers = 0 }),
		mut(func(o *ChaosOptions) { o.Bytes = 0 }),
		mut(func(o *ChaosOptions) { o.Deadline = 0 }),
		mut(func(o *ChaosOptions) { o.Deadline = o.Fault.FailAt }), // deadline before fault
		mut(func(o *ChaosOptions) { o.Fault.Frac = 2 }),
		mut(func(o *ChaosOptions) { o.Fault.Kind = chaos.KindLinkLoss }), // loss without rate
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad options %d accepted: %+v", i, o)
		}
	}
}

func TestNewSweepCellChaos(t *testing.T) {
	p := tinySweepParams()
	cell, err := NewSweepCell("chaos", store.BackendPolyraptor, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cell.Runner.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"completed", "stalled", "stall_rate", "fct_p50_s", "fct_p99_s", "goodput_gbps", "blackholed", "link_drops", "queue_drops", "fault_targets"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("chaos metrics missing %q: %v", key, m)
		}
	}
	if m["completed"]+m["stalled"] != float64(p.Chaos.Flows) {
		t.Fatalf("completed %v + stalled %v != flows %d", m["completed"], m["stalled"], p.Chaos.Flows)
	}
	// An invalid template is an error at cell-build time, not run time.
	p.Chaos.Fault.Frac = 9
	if _, err := NewSweepCell("chaos", store.BackendPolyraptor, p); err == nil {
		t.Fatal("invalid chaos template accepted")
	}
}

// TestChaosSweepParallelMatchesSerial is the determinism acceptance
// criterion: the chaos cell matrix (3 backends x 3 seeds) produces
// byte-identical aggregated JSON at parallelism 1 and GOMAXPROCS.
// Runs under -race in CI.
func TestChaosSweepParallelMatchesSerial(t *testing.T) {
	matrix := func(parallelism int) sweep.Matrix {
		p := tinySweepParams()
		var cells []sweep.Cell
		for _, be := range []store.BackendKind{store.BackendPolyraptor, store.BackendTCP, store.BackendDCTCP} {
			cell, err := NewSweepCell("chaos", be, p)
			if err != nil {
				t.Fatalf("NewSweepCell(chaos, %v): %v", be, err)
			}
			cells = append(cells, cell)
		}
		return sweep.Matrix{Cells: cells, Seeds: 3, BaseSeed: 1, Parallelism: parallelism}
	}
	serial, err := matrix(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := matrix(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("parallel chaos sweep JSON differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
	for _, c := range serial.Cells {
		if len(c.Errors) > 0 {
			t.Fatalf("cell %s errored: %v", c.Backend, c.Errors)
		}
	}
}
