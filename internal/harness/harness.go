// Package harness runs the paper's experiments end to end: it builds
// the fabric, schedules the workload, attaches the transport under
// test (Polyraptor or the TCP baseline), and reduces completions to
// the series each figure plots. One entry point exists per figure
// plus the ablations listed in DESIGN.md.
package harness

import (
	"fmt"

	"polyraptor/internal/metrics"
	"polyraptor/internal/netsim"
	"polyraptor/internal/polyraptor"
	"polyraptor/internal/sim"
	"polyraptor/internal/stats"
	"polyraptor/internal/store"
	"polyraptor/internal/sweep"
	"polyraptor/internal/tcpsim"
	"polyraptor/internal/telemetry"
	"polyraptor/internal/topology"
	"polyraptor/internal/workload"
)

// Scale selects the experiment size. The paper's full scale (k=10,
// 10,000 x 4 MB sessions) is minutes of CPU; the scaled defaults
// preserve per-host offered load and therefore the figures' shape.
type Scale struct {
	// FatTreeK is the fat-tree arity (paper: 10 -> 250 hosts).
	FatTreeK int
	// Sessions is the total session count (paper: 10,000).
	Sessions int
	// Bytes is the foreground object size (paper: 4 MB).
	Bytes int64
	// LoadFactor is the target per-host offered load as a fraction of
	// link rate; lambda is derived from it so scaled-down runs keep the
	// paper's utilisation (~0.33 at paper parameters).
	LoadFactor float64
	// Seed is the base seed.
	Seed int64
}

// PaperScale reproduces the figure captions exactly.
func PaperScale() Scale {
	return Scale{FatTreeK: 10, Sessions: 10000, Bytes: 4 << 20, LoadFactor: 0.33, Seed: 1}
}

// BenchScale is small enough for go test -bench while preserving load
// and shape.
func BenchScale() Scale {
	return Scale{FatTreeK: 4, Sessions: 150, Bytes: 512 << 10, LoadFactor: 0.33, Seed: 1}
}

// lambda converts the load factor to a Poisson arrival rate.
// deliveredMult is the average bytes delivered to host downlinks per
// session byte: replicating a session to R receivers over multicast
// delivers R copies, so arrival rate must scale down by the mix-
// weighted multiplier to keep *delivered* load (and hence queueing
// behaviour) constant across replica counts. At 1 replica and paper
// parameters this evaluates to λ ≈ 2500/s — the paper's quoted 2560.
// The paper reuses one λ for both replica counts, which at 3 replicas
// puts offered downlink load above capacity; we normalise instead and
// record the deviation in EXPERIMENTS.md.
func (s Scale) lambda(linkRate int64, deliveredMult float64) float64 {
	hosts := float64(s.FatTreeK * s.FatTreeK * s.FatTreeK / 4)
	return s.LoadFactor * hosts * float64(linkRate) / (8 * float64(s.Bytes) * deliveredMult)
}

func (s Scale) workloadConfig(linkRate int64, pattern Pattern, replicas int) workload.Config {
	mult := 1.0
	if pattern == PatternMulticast {
		// 80% of sessions deliver `replicas` copies; 20% background
		// delivers one.
		mult = 0.8*float64(replicas) + 0.2
	}
	return workload.Config{
		Sessions:        s.Sessions,
		Lambda:          s.lambda(linkRate, mult),
		Bytes:           s.Bytes,
		BackgroundBytes: s.Bytes,
		BackgroundFrac:  0.20,
		Replicas:        replicas,
		Seed:            s.Seed,
	}
}

// FigureSeries is one labelled curve of a figure.
type FigureSeries struct {
	Label string
	// X values (session rank for 1a/1b; sender count for 1c).
	X []float64
	// Y values (goodput in Gbps).
	Y []float64
	// YErr holds 95% CI half-widths (Figure 1c), nil otherwise.
	YErr []float64
}

// Pattern is the foreground transfer pattern of Figures 1a/1b.
type Pattern int

const (
	// PatternMulticast is Figure 1a: client replicates one object to
	// R servers (RQ: multicast; TCP: multi-unicast).
	PatternMulticast Pattern = iota
	// PatternMultiSource is Figure 1b: client fetches one object
	// available at R servers (RQ: multi-source; TCP: uncoordinated
	// 1/R partial fetches).
	PatternMultiSource
)

// RunFig1RQ runs the Polyraptor side of Figure 1a or 1b and returns
// per-foreground-session goodputs ranked descending.
func RunFig1RQ(sc Scale, pattern Pattern, replicas int) []float64 {
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = sc.Seed
	ft, err := topology.NewFatTree(sc.FatTreeK, ncfg)
	if err != nil {
		panic(err)
	}
	sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), sc.Seed)
	sys.PruneGroup = ft.PruneMulticastLeaf
	sessions := workload.Generate(sc.workloadConfig(ncfg.LinkRate, pattern, replicas), ft)

	goodputs := make([]float64, 0, len(sessions))
	for i := range sessions {
		s := sessions[i]
		ft.Net.Eng.At(s.Start, func() {
			if s.Kind == workload.Background {
				sys.StartUnicast(s.Client, s.Peers[0], s.Bytes, nil)
				return
			}
			switch {
			case pattern == PatternMultiSource:
				start := ft.Net.Now()
				sys.StartMultiSource(s.Peers, s.Client, s.Bytes, func(ev polyraptor.CompletionEvent) {
					goodputs = append(goodputs, gbps(s.Bytes, ev.End-start))
				})
			case replicas == 1:
				start := ft.Net.Now()
				sys.StartUnicast(s.Client, s.Peers[0], s.Bytes, func(ev polyraptor.CompletionEvent) {
					goodputs = append(goodputs, gbps(s.Bytes, ev.End-start))
				})
			default:
				g := ft.InstallMulticastGroup(s.Client, s.Peers)
				start := ft.Net.Now()
				remaining := len(s.Peers)
				var last sim.Time
				sys.StartMulticast(s.Client, s.Peers, g, s.Bytes, func(ev polyraptor.CompletionEvent) {
					if ev.End > last {
						last = ev.End
					}
					remaining--
					if remaining == 0 {
						ft.RemoveMulticastGroup(g)
						goodputs = append(goodputs, gbps(s.Bytes, last-start))
					}
				})
			}
		})
	}
	ft.Net.Eng.Run()
	return stats.RankSeries(goodputs)
}

// RunFig1TCP runs the TCP side of Figure 1a or 1b: multi-unicast for
// the multicast pattern, uncoordinated 1/R partial fetches for the
// multi-source pattern. Returns ranked per-session goodputs.
func RunFig1TCP(sc Scale, pattern Pattern, replicas int) []float64 {
	return runFig1TCPWith(sc, pattern, replicas, tcpsim.DefaultConfig(), 0)
}

// runFig1TCPWith is RunFig1TCP parameterised over the congestion
// control and switch ECN threshold, so the DCTCP baseline reuses the
// same workload and reduction.
func runFig1TCPWith(sc Scale, pattern Pattern, replicas int, tcfg tcpsim.Config, ecn int) []float64 {
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = sc.Seed
	ncfg.Trimming = false // TCP runs on classic drop-tail switches
	if ecn > 0 {
		ncfg.ECNThreshold = ecn
	}
	ft, err := topology.NewFatTree(sc.FatTreeK, ncfg)
	if err != nil {
		panic(err)
	}
	sys := tcpsim.NewSystem(ft.Net, tcfg)
	sessions := workload.Generate(sc.workloadConfig(ncfg.LinkRate, pattern, replicas), ft)

	goodputs := make([]float64, 0, len(sessions))
	for i := range sessions {
		s := sessions[i]
		ft.Net.Eng.At(s.Start, func() {
			if s.Kind == workload.Background {
				sys.StartFlow(s.Client, s.Peers[0], s.Bytes, nil)
				return
			}
			start := ft.Net.Now()
			remaining := len(s.Peers)
			var last sim.Time
			perFlowDone := func(r tcpsim.FlowResult) {
				if r.End > last {
					last = r.End
				}
				remaining--
				if remaining == 0 {
					goodputs = append(goodputs, gbps(s.Bytes, last-start))
				}
			}
			for fi, peer := range s.Peers {
				switch pattern {
				case PatternMulticast:
					// Multi-unicast: the client writes the full object
					// to every replica.
					sys.StartFlow(s.Client, peer, s.Bytes, perFlowDone)
				case PatternMultiSource:
					// Each replica returns a distinct 1/R share,
					// without coordination (paper §3).
					share := s.Bytes / int64(len(s.Peers))
					if fi == len(s.Peers)-1 {
						share = s.Bytes - share*int64(len(s.Peers)-1)
					}
					sys.StartFlow(peer, s.Client, share, perFlowDone)
				}
			}
		})
	}
	ft.Net.Eng.Run()
	return stats.RankSeries(goodputs)
}

func gbps(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes*8) / d.Seconds() / 1e9
}

// Figure1a returns the four curves of Figure 1a (1/3 replicas x
// RQ/TCP), each ranked descending and downsampled to at most maxPoints
// points.
func Figure1a(sc Scale, maxPoints int) []FigureSeries {
	return figure1(sc, PatternMulticast, maxPoints, "Replica")
}

// Figure1b returns the four curves of Figure 1b (1/3 senders x
// RQ/TCP).
func Figure1b(sc Scale, maxPoints int) []FigureSeries {
	return figure1(sc, PatternMultiSource, maxPoints, "Sender")
}

func figure1(sc Scale, pattern Pattern, maxPoints int, noun string) []FigureSeries {
	// The four curves are independent simulations; run them on the
	// sweep worker pool, each writing its pre-assigned slot so the
	// series order (and content) is identical to the serial loop.
	type arm struct {
		replicas int
		proto    string
	}
	arms := []arm{{1, "RQ"}, {1, "TCP"}, {3, "RQ"}, {3, "TCP"}}
	out := make([]FigureSeries, len(arms))
	sweep.ForEach(len(arms), 0, func(i int) {
		a := arms[i]
		plural := ""
		if a.replicas > 1 {
			plural = "s"
		}
		var ys []float64
		if a.proto == "RQ" {
			ys = RunFig1RQ(sc, pattern, a.replicas)
		} else {
			ys = RunFig1TCP(sc, pattern, a.replicas)
		}
		ys = stats.Downsample(ys, maxPoints)
		out[i] = FigureSeries{
			Label: fmt.Sprintf("%d %s%s %s", a.replicas, noun, plural, a.proto),
			X:     ranksFor(len(ys), sc.Sessions),
			Y:     ys,
		}
	})
	return out
}

func ranksFor(n, total int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		if n > 1 {
			xs[i] = float64(i) * float64(total-1) / float64(n-1)
		}
	}
	return xs
}

// IncastOptions parametrises Figure 1c.
type IncastOptions struct {
	// FatTreeK is the fabric arity.
	FatTreeK int
	// SenderCounts is the x-axis (paper: up to 70).
	SenderCounts []int
	// BytesPerSender are the block-size series (paper: 256 KB, 70 KB).
	BytesPerSender []int64
	// Repetitions is the number of seeds (paper: 5). Each repetition
	// runs under its own SplitMix-derived sub-seed (sweep.SubSeed), so
	// repetition streams are statistically independent.
	Repetitions int
	// Seed is the base seed.
	Seed int64
	// Trimming can be set false for ablation A1 (Polyraptor without
	// packet trimming).
	Trimming bool
	// Parallelism caps concurrent (point, repetition) runs in
	// Figure1c; <= 0 means GOMAXPROCS. Results are byte-identical at
	// any setting.
	Parallelism int
}

// DefaultIncastOptions mirrors Figure 1c at a fabric size that still
// fits the largest sender count.
func DefaultIncastOptions() IncastOptions {
	return IncastOptions{
		FatTreeK:       10,
		SenderCounts:   []int{2, 5, 10, 20, 30, 40, 50, 60, 70},
		BytesPerSender: []int64{256 << 10, 70 << 10},
		Repetitions:    5,
		Seed:           1,
		Trimming:       true,
	}
}

// BenchIncastOptions is sized for go test -bench.
func BenchIncastOptions() IncastOptions {
	return IncastOptions{
		FatTreeK:       4,
		SenderCounts:   []int{2, 4, 8, 12},
		BytesPerSender: []int64{256 << 10, 70 << 10},
		Repetitions:    3,
		Seed:           1,
		Trimming:       true,
	}
}

// RunIncastRQ measures Polyraptor aggregate goodput for one
// (senders, bytes, seed) point: n synchronized senders each transfer
// their own block to one client; goodput is total bytes over makespan.
func RunIncastRQ(opt IncastOptions, senders int, bytes int64, seed int64) float64 {
	g, _ := RunIncastTraced(opt, store.BackendPolyraptor, senders, bytes, seed, nil)
	return g
}

// RunIncastTCP measures the TCP baseline for one incast point.
func RunIncastTCP(opt IncastOptions, senders int, bytes int64, seed int64) float64 {
	g, _ := RunIncastTraced(opt, store.BackendTCP, senders, bytes, seed, nil)
	return g
}

// RunIncastDCTCP measures the DCTCP baseline (extension E3) for one
// incast point: ECN-marking drop-tail switches (K=20) and DCTCP
// congestion control.
func RunIncastDCTCP(opt IncastOptions, senders int, bytes int64, seed int64) float64 {
	g, _ := RunIncastTraced(opt, store.BackendDCTCP, senders, bytes, seed, nil)
	return g
}

// RunIncastTraced runs one incast point under the named backend with
// an optional PolyScope trace attached (nil topt reproduces the
// untraced entry points exactly — they all delegate here). Polyraptor
// runs on trimming switches per opt.Trimming; TCP on classic
// drop-tail; DCTCP on ECN-marking drop-tail (K=20).
func RunIncastTraced(opt IncastOptions, backend store.BackendKind, senders int, bytes int64, seed int64, topt *TraceOptions) (float64, *telemetry.Trace) {
	return runIncast(opt, backend, senders, bytes, seed, topt, meter{})
}

// RunIncastMetered is RunIncastTraced with PolyMeter instruments
// attached: per-sender FCT/goodput histograms, fabric queue depth,
// Polyraptor stall durations, and SLO attainment counters land in reg
// under (incast, backend) labels. A nil reg reproduces RunIncastTraced
// exactly.
func RunIncastMetered(opt IncastOptions, backend store.BackendKind, senders int, bytes int64, seed int64, topt *TraceOptions, reg *metrics.Registry, slo metrics.SLO) (float64, *telemetry.Trace) {
	return runIncast(opt, backend, senders, bytes, seed, topt, newMeter(reg, "incast", backend, slo))
}

func runIncast(opt IncastOptions, backend store.BackendKind, senders int, bytes int64, seed int64, topt *TraceOptions, mt meter) (float64, *telemetry.Trace) {
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = seed
	switch backend {
	case store.BackendPolyraptor:
		ncfg.Trimming = opt.Trimming
	case store.BackendDCTCP:
		ncfg.Trimming = false
		ncfg.ECNThreshold = 20
	default:
		ncfg.Trimming = false
	}
	ft, err := topology.NewFatTree(opt.FatTreeK, ncfg)
	if err != nil {
		panic(err)
	}
	tr := newTrace(ft, topt, "incast", backend, seed)
	mt.fabric(ft)
	ic := workload.GenerateIncast(workload.IncastConfig{Senders: senders, BytesPerSender: bytes, Seed: seed}, ft)
	mt.offered(senders)
	var last sim.Time
	done := 0
	if backend == store.BackendPolyraptor {
		sys := polyraptor.NewSystem(ft.Net, polyraptor.DefaultConfig(), seed)
		mt.stallRQ(sys)
		for _, s := range ic.Senders {
			sys.StartUnicast(s, ic.Client, ic.Bytes, func(ev polyraptor.CompletionEvent) {
				fct := ev.End.Seconds()
				mt.flow(fct, perFlowGbps(ev.Bytes, fct))
				if ev.End > last {
					last = ev.End
				}
				done++
			})
		}
		startTrace(tr, ft, func() float64 { send, recv := sys.OpenSessions(); return float64(send + recv) })
		ft.Net.Eng.Run()
		if done != senders {
			panic(fmt.Sprintf("harness: incast RQ finished %d/%d sessions", done, senders))
		}
	} else {
		var tcfg tcpsim.Config
		name := "TCP"
		if backend == store.BackendDCTCP {
			tcfg, name = tcpsim.DCTCPConfig(), "DCTCP"
		} else {
			tcfg = tcpsim.DefaultConfig()
		}
		sys := tcpsim.NewSystem(ft.Net, tcfg)
		for _, s := range ic.Senders {
			sys.StartFlow(s, ic.Client, ic.Bytes, func(r tcpsim.FlowResult) {
				fct := (r.End - r.Start).Seconds()
				mt.flow(fct, perFlowGbps(ic.Bytes, fct))
				if r.End > last {
					last = r.End
				}
				done++
			})
		}
		startTrace(tr, ft, func() float64 { return float64(sys.OpenFlows()) })
		ft.Net.Eng.Run()
		if done != senders {
			panic(fmt.Sprintf("harness: incast %s finished %d/%d flows", name, done, senders))
		}
	}
	finishTrace(tr, ft.Net.Now())
	return gbps(bytes*int64(senders), last), tr
}

// Figure1c returns mean goodput with 95% CI error bars versus sender
// count, one series per (protocol, block size) — the paper's Figure 1c.
// Every (block size, protocol, sender count) point is one sweep cell
// run over Repetitions derived sub-seeds on the worker pool; the same
// repetition uses the same sub-seed for every point, so protocols are
// compared on paired workload draws.
func Figure1c(opt IncastOptions) []FigureSeries {
	protos := []string{"RQ", "TCP"}
	var cells []sweep.Cell
	for _, bytes := range opt.BytesPerSender {
		for _, proto := range protos {
			for _, n := range opt.SenderCounts {
				bytes, proto, n := bytes, proto, n
				cells = append(cells, sweep.Cell{
					Scenario: "incast",
					Backend:  proto,
					Runner: sweep.RunnerFunc(func(seed int64) (sweep.Metrics, error) {
						var g float64
						if proto == "RQ" {
							g = RunIncastRQ(opt, n, bytes, seed)
						} else {
							g = RunIncastTCP(opt, n, bytes, seed)
						}
						return sweep.Metrics{"goodput_gbps": g}, nil
					}),
				})
			}
		}
	}
	res, err := sweep.Matrix{
		Cells:       cells,
		Seeds:       opt.Repetitions,
		BaseSeed:    opt.Seed,
		Parallelism: opt.Parallelism,
	}.Run()
	if err != nil {
		panic(fmt.Sprintf("harness: incast sweep: %v", err))
	}

	var out []FigureSeries
	i := 0
	for _, bytes := range opt.BytesPerSender {
		for _, proto := range protos {
			se := FigureSeries{Label: fmt.Sprintf("%s %dKB", proto, bytes>>10)}
			for _, n := range opt.SenderCounts {
				a, ok := res.Cells[i].Metric("goodput_gbps")
				if !ok {
					panic(fmt.Sprintf("harness: incast point %s n=%d failed: %v",
						proto, n, res.Cells[i].Errors))
				}
				se.X = append(se.X, float64(n))
				se.Y = append(se.Y, a.Mean)
				se.YErr = append(se.YErr, a.CI95)
				i++
			}
			out = append(out, se)
		}
	}
	return out
}
