// Package perfbench runs Polyraptor's fixed performance suite — the
// gf256 row-operation kernels, RaptorQ codec encode/decode, the
// discrete-event engine, and end-to-end figure cells — and serialises
// the results as a BENCH_<n>.json report so every PR carries a
// comparable perf baseline. cmd/polyperf is the CLI front end; the
// checked-in BENCH_*.json files form the repo's perf trajectory.
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"polyraptor/internal/gf256"
)

// Schema identifies the report format.
const Schema = "polyperf/v1"

// Result is one benchmark measurement.
type Result struct {
	// Name is the suite-stable benchmark identifier, e.g.
	// "gf256/MulAddRow/1436".
	Name string `json:"name"`
	// N is the number of iterations measured.
	N int `json:"n"`
	// NsPerOp is wall time per iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation counts/bytes per
	// iteration (from runtime.MemStats deltas).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// MBPerSec is throughput for benchmarks with a natural byte volume.
	MBPerSec float64 `json:"mb_per_s,omitempty"`
	// Metrics carries derived rates (events_per_sec, symbols_per_sec)
	// and benchmark-specific outputs (goodput_gbps).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full suite output.
type Report struct {
	Schema    string `json:"schema"`
	Index     int    `json:"index"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler width the suite ran under; the
	// benchmarks are single-goroutine but background GC work scales
	// with it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUFeatures lists the accelerated kernel paths the gf256 package
	// selected on this machine (empty = portable word-wise code), so
	// reports from different hardware are never compared blind.
	CPUFeatures []string `json:"cpu_features,omitempty"`
	// WallSeconds is the wall-clock duration of the whole suite run.
	WallSeconds float64  `json:"wall_seconds"`
	Quick       bool     `json:"quick"`
	Results     []Result `json:"results"`
}

// Case is one suite entry.
type Case struct {
	// Name is the stable identifier.
	Name string
	// Fn runs n iterations of the operation.
	Fn func(n int)
	// BytesPerOp, when non-zero, yields an MB/s figure.
	BytesPerOp int64
	// RateName/UnitsPerOp, when set, yield a derived rate metric:
	// Metrics[RateName] = UnitsPerOp / seconds-per-op.
	RateName   string
	UnitsPerOp float64
	// OneShot runs Fn exactly once with no warmup — for end-to-end
	// cells whose single run is already seconds long.
	OneShot bool
	// Metrics, when set, is called after the run to attach
	// benchmark-specific outputs.
	Metrics func() map[string]float64
}

// Options configures a suite run.
type Options struct {
	// Quick shrinks workloads and budgets for CI smoke runs.
	Quick bool
	// Progress, when non-nil, receives one line per completed case.
	Progress io.Writer
}

// budget returns the per-case measurement budget.
func (o Options) budget() time.Duration {
	if o.Quick {
		return 50 * time.Millisecond
	}
	return time.Second
}

// Run executes the fixed suite and returns the report (Index is left
// for the caller to assign).
func Run(opts Options) Report {
	rep := Report{
		Schema:      Schema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: gf256.Features(),
		Quick:       opts.Quick,
	}
	start := time.Now()
	for _, c := range Suite(opts.Quick) {
		res := runCase(c, opts.budget())
		rep.Results = append(rep.Results, res)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-34s %12.1f ns/op %10.0f allocs/op%s\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, rateSuffix(res))
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	return rep
}

func rateSuffix(r Result) string {
	if len(r.Metrics) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("  %s=%.4g", k, r.Metrics[k])
	}
	return s
}

// runCase measures one case: iterations grow geometrically until the
// run fills the budget, then per-op figures are derived from the final
// (largest) run.
func runCase(c Case, budget time.Duration) Result {
	if !c.OneShot {
		c.Fn(1) // warmup: table init, cache fill, JIT-ish first-run costs
	}
	runtime.GC()
	var before, after runtime.MemStats
	n := 1
	var elapsed time.Duration
	for {
		runtime.ReadMemStats(&before)
		start := time.Now()
		c.Fn(n)
		elapsed = time.Since(start)
		runtime.ReadMemStats(&after)
		if c.OneShot || elapsed >= budget || n >= 1<<29 {
			break
		}
		// Aim past the budget so the final run dominates noise.
		next := int64(float64(n) * 1.25 * float64(budget) / float64(elapsed+1))
		if next <= int64(n) {
			next = int64(n) * 2
		}
		if next > int64(n)*100 {
			next = int64(n) * 100
		}
		n = int(next)
	}
	res := Result{
		Name:        c.Name,
		N:           n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}
	secPerOp := res.NsPerOp / 1e9
	if c.BytesPerOp > 0 && secPerOp > 0 {
		res.MBPerSec = float64(c.BytesPerOp) / 1e6 / secPerOp
	}
	if c.RateName != "" && secPerOp > 0 {
		if res.Metrics == nil {
			res.Metrics = map[string]float64{}
		}
		res.Metrics[c.RateName] = c.UnitsPerOp / secPerOp
	}
	if c.Metrics != nil {
		if res.Metrics == nil {
			res.Metrics = map[string]float64{}
		}
		for k, v := range c.Metrics() {
			res.Metrics[k] = v
		}
	}
	return res
}

// WriteJSON serialises the report with stable formatting.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
