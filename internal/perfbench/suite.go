package perfbench

import (
	"fmt"
	"math/rand"
	"time"

	"polyraptor/internal/chaos"
	"polyraptor/internal/gf256"
	"polyraptor/internal/harness"
	"polyraptor/internal/metrics"
	"polyraptor/internal/raptorq"
	"polyraptor/internal/sim"
	"polyraptor/internal/store"
	"polyraptor/internal/telemetry"
)

// rowLen is the row length for the gf256 kernels: the 1436-byte
// MTU-sized symbol the object encoder uses on the wire.
const rowLen = 1436

// Suite returns the fixed benchmark suite. Names are stable across
// PRs; quick shrinks the workloads for CI smoke runs.
func Suite(quick bool) []Case {
	var cases []Case
	cases = append(cases, gf256Cases()...)
	cases = append(cases, codecCases(quick)...)
	cases = append(cases, simCases()...)
	cases = append(cases, telemetryCases()...)
	cases = append(cases, metricsCases()...)
	cases = append(cases, e2eCases(quick)...)
	return cases
}

// metricsCases measures the PolyMeter hot paths: the enabled histogram
// record (bucket index + counter bump), the disabled path — a nil
// receiver, which must stay a single branch so metering can be
// threaded through every flow-completion path unconditionally — and
// the snapshot merge that pools per-seed histograms. All three are
// locked at 0 allocs/op in ALLOC_BUDGET.json.
func metricsCases() []Case {
	enabled := Case{
		Name:       "metrics/Record/enabled",
		RateName:   "samples_per_sec",
		UnitsPerOp: 1,
	}
	{
		h := metrics.NewHistogram()
		// A few decades of FCT-like values; the modulo keeps the bucket
		// walk from degenerating into a single hot cache line.
		vals := make([]float64, 1024)
		for i := range vals {
			vals[i] = 1e-4 * float64(i+1)
		}
		enabled.Fn = func(n int) {
			for i := 0; i < n; i++ {
				h.Record(vals[i&1023])
			}
		}
	}
	disabled := Case{
		Name:       "metrics/Record/disabled",
		RateName:   "samples_per_sec",
		UnitsPerOp: 1,
	}
	{
		var h *metrics.Histogram // metering off: nil receiver
		disabled.Fn = func(n int) {
			for i := 0; i < n; i++ {
				h.Record(float64(i))
			}
		}
	}
	merge := Case{
		Name:       "metrics/Merge",
		RateName:   "merges_per_sec",
		UnitsPerOp: 1,
	}
	{
		// Two well-populated histograms, as the sweep aggregator sees
		// them: one per seed, pooled pairwise in seed order.
		src := metrics.NewHistogram()
		for i := 0; i < 4096; i++ {
			src.Record(1e-5 * float64(i+1))
		}
		dst := metrics.NewHistogram()
		merge.Fn = func(n int) {
			for i := 0; i < n; i++ {
				dst.Merge(src)
			}
		}
	}
	return []Case{enabled, disabled, merge}
}

// telemetryCases measures the PolyScope flight recorder: the enabled
// hot path (arena append) and the disabled path, which must stay a
// single nil-check branch — the guarantee that lets the recorder be
// threaded through every sim hot path unconditionally.
func telemetryCases() []Case {
	enabled := Case{
		Name:       "telemetry/Record/enabled",
		RateName:   "events_per_sec",
		UnitsPerOp: 1,
	}
	{
		// A bounded ring, as the CLIs configure it: once warm, appends
		// recycle arena blocks and allocate nothing.
		rec := telemetry.NewRecorder(1 << 16)
		enabled.Fn = func(n int) {
			for i := 0; i < n; i++ {
				rec.Record(sim.Time(i), int32(i&7), telemetry.EvSymbol, 3, int64(i))
			}
		}
	}
	disabled := Case{
		Name:       "telemetry/Record/disabled",
		RateName:   "events_per_sec",
		UnitsPerOp: 1,
	}
	{
		var rec *telemetry.Recorder // tracing off: nil receiver
		disabled.Fn = func(n int) {
			for i := 0; i < n; i++ {
				rec.Record(sim.Time(i), int32(i&7), telemetry.EvSymbol, 3, int64(i))
			}
		}
	}
	return []Case{enabled, disabled}
}

func gf256Cases() []Case {
	mk := func(name string, fn func(dst, src []byte, n int)) Case {
		dst := make([]byte, rowLen)
		src := make([]byte, rowLen)
		for i := range src {
			src[i] = byte(i*31 + 1)
		}
		return Case{
			Name:       fmt.Sprintf("gf256/%s/%d", name, rowLen),
			BytesPerOp: rowLen,
			Fn:         func(n int) { fn(dst, src, n) },
		}
	}
	return []Case{
		mk("AddRow", func(dst, src []byte, n int) {
			for i := 0; i < n; i++ {
				gf256.AddRow(dst, src)
			}
		}),
		mk("AddRowScalar", func(dst, src []byte, n int) {
			for i := 0; i < n; i++ {
				gf256.AddRowScalar(dst, src)
			}
		}),
		mk("MulAddRow", func(dst, src []byte, n int) {
			for i := 0; i < n; i++ {
				gf256.MulAddRow(dst, src, 0x35)
			}
		}),
		mk("MulAddRowScalar", func(dst, src []byte, n int) {
			for i := 0; i < n; i++ {
				gf256.MulAddRowScalar(dst, src, 0x35)
			}
		}),
		// ScaleRow cases operate on the initialized src buffer (not the
		// zero dst): scaling by a non-zero coefficient is a bijection,
		// so the data stays representative across iterations, while an
		// all-zero row would only measure the scalar path's zero-skip
		// branch.
		mk("ScaleRow", func(_, src []byte, n int) {
			for i := 0; i < n; i++ {
				gf256.ScaleRow(src, 0x35)
			}
		}),
		mk("ScaleRowScalar", func(_, src []byte, n int) {
			for i := 0; i < n; i++ {
				gf256.ScaleRowScalar(src, 0x35)
			}
		}),
	}
}

func codecSymbols(k, t int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, t)
		rng.Read(src[i])
	}
	return src
}

// codecCases measures the layered codec pipeline in its steady state:
// encoders and decoders are constructed once and reused via Reset, so
// the cells capture the replayed-schedule/arena regime the transport
// actually runs in (one warm round happens inside runCase's Fn(1)
// warmup). The Encode, DecodeSystematic, Decode5pctLoss and
// Decode30pctLoss cells are locked at 0 allocs/op in ALLOC_BUDGET.json.
func codecCases(quick bool) []Case {
	k := 256
	if quick {
		k = 64
	}
	const t = 1024
	src := codecSymbols(k, t)

	enc, err := raptorq.NewEncoder(src)
	if err != nil {
		panic(err)
	}
	encCase := Case{
		Name:       fmt.Sprintf("codec/Encode/K=%d", k),
		BytesPerOp: int64(k * t),
		RateName:   "symbols_per_sec",
		UnitsPerOp: float64(k),
		Fn: func(n int) {
			// Reset re-keys the encoder to the block and replays the
			// cached precode elimination schedule over the arena — the
			// steady-state cost of encoding one fresh block.
			for i := 0; i < n; i++ {
				if err := enc.Reset(src); err != nil {
					panic(err)
				}
			}
		},
	}

	buf := make([]byte, 0, t)
	repairCase := Case{
		Name:       fmt.Sprintf("codec/RepairSymbol/K=%d", k),
		BytesPerOp: t,
		RateName:   "symbols_per_sec",
		UnitsPerOp: 1,
		Fn: func(n int) {
			// A 1024-ESI window mirrors serving one object to many
			// receivers: the same repair ESIs recur across sessions.
			for i := 0; i < n; i++ {
				buf = enc.AppendSymbol(buf[:0], uint32(k+i%1024))
			}
		},
	}

	// Decode cells: one reused decoder per loss regime, each regime
	// exercising a different pipeline layer — keep=1 the no-matrix
	// systematic path, 5% the partial-systematic m x m solve, 30% the
	// cached full inactivation replay.
	mkDecode := func(name string, keep float64) Case {
		srcEnc, err := raptorq.NewEncoder(src)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(11))
		type arrival struct {
			esi uint32
			sym []byte
		}
		var arrivals []arrival
		for i := 0; i < k; i++ {
			if rng.Float64() < keep {
				arrivals = append(arrivals, arrival{uint32(i), srcEnc.Symbol(uint32(i))})
			}
		}
		for esi := uint32(k); len(arrivals) < k+2; esi++ {
			arrivals = append(arrivals, arrival{esi, srcEnc.Symbol(esi)})
		}
		dec, err := raptorq.NewDecoder(k, t)
		if err != nil {
			panic(err)
		}
		return Case{
			Name:       fmt.Sprintf("codec/%s/K=%d", name, k),
			BytesPerOp: int64(k * t),
			RateName:   "symbols_per_sec",
			UnitsPerOp: float64(k),
			Fn: func(n int) {
				for i := 0; i < n; i++ {
					dec.Reset()
					for _, a := range arrivals {
						if _, err := dec.AddSymbol(a.esi, a.sym); err != nil {
							panic(err)
						}
					}
					if _, err := dec.Decode(); err != nil {
						panic(err)
					}
				}
			},
		}
	}

	// Block-parallel object encode: partition a multi-block object and
	// solve the per-block precodes on the worker pool (GOMAXPROCS-wide;
	// output is identical for every worker count). Construction-heavy
	// by design — it carries the non-steady-state cost.
	objBytes := 2 << 20
	if quick {
		objBytes = 256 << 10
	}
	objData := make([]byte, objBytes)
	objRNG := rand.New(rand.NewSource(13))
	objRNG.Read(objData)
	objCase := Case{
		Name:       fmt.Sprintf("codec/ObjectEncodeParallel/%dKB", objBytes>>10),
		BytesPerOp: int64(objBytes),
		RateName:   "blocks_per_sec",
		UnitsPerOp: 0, // patched below once the layout is known
		Fn: func(n int) {
			for i := 0; i < n; i++ {
				if _, err := raptorq.NewObjectEncoder(objData, rowLen, k); err != nil {
					panic(err)
				}
			}
		},
	}
	layout, err := raptorq.NewBlockLayout(int64(objBytes), rowLen, k)
	if err != nil {
		panic(err)
	}
	objCase.UnitsPerOp = float64(layout.Z())

	return []Case{
		encCase,
		repairCase,
		mkDecode("DecodeSystematic", 1.01),
		mkDecode("Decode5pctLoss", 0.95),
		mkDecode("Decode30pctLoss", 0.70),
		objCase,
	}
}

func simCases() []Case {
	runCase := Case{
		Name:       "sim/EventEngine/ScheduleRun",
		RateName:   "events_per_sec",
		UnitsPerOp: 1,
	}
	{
		const depth = 1024
		e := sim.NewEngine()
		var refill func()
		refill = func() { e.After(time.Microsecond, refill) }
		for i := 0; i < depth; i++ {
			e.After(sim.Time(i), refill)
		}
		runCase.Fn = func(n int) {
			for i := 0; i < n; i++ {
				e.Step()
			}
		}
	}
	cancelCase := Case{
		Name:       "sim/EventEngine/ScheduleCancel",
		RateName:   "timers_per_sec",
		UnitsPerOp: 1,
	}
	{
		e := sim.NewEngine()
		var keepalive func()
		keepalive = func() { e.After(time.Microsecond, keepalive) }
		e.After(time.Microsecond, keepalive)
		nop := func() {}
		cancelCase.Fn = func(n int) {
			for i := 0; i < n; i++ {
				tm := e.After(time.Millisecond, nop)
				tm.Cancel()
				if i%1024 == 0 {
					e.Step()
				}
			}
		}
	}
	return []Case{runCase, cancelCase}
}

func e2eCases(quick bool) []Case {
	sc := harness.BenchScale()
	if quick {
		sc.Sessions = 40
	}
	var fig1aMean float64
	fig1a := Case{
		Name:    fmt.Sprintf("e2e/Fig1aRQ3/sessions=%d", sc.Sessions),
		OneShot: true,
		Fn: func(n int) {
			for i := 0; i < n; i++ {
				goodputs := harness.RunFig1RQ(sc, harness.PatternMulticast, 3)
				fig1aMean = mean(goodputs)
			}
		},
		Metrics: func() map[string]float64 {
			return map[string]float64{"mean_goodput_gbps": fig1aMean}
		},
	}

	opt := harness.BenchIncastOptions()
	senders, bytes := 12, int64(256<<10)
	if quick {
		senders, bytes = 8, 70<<10
	}
	var incastGoodput float64
	incast := Case{
		Name:    fmt.Sprintf("e2e/IncastRQ/%dx%dKB", senders, bytes>>10),
		OneShot: true,
		Fn: func(n int) {
			for i := 0; i < n; i++ {
				incastGoodput = harness.RunIncastRQ(opt, senders, bytes, 1)
			}
		},
		Metrics: func() map[string]float64 {
			return map[string]float64{"goodput_gbps": incastGoodput}
		},
	}

	// The many-to-many pattern: an M×R transfer matrix of concurrently
	// pulled sessions — the scenario with the most live sessions per
	// host, so it tracks the cost of the session-lifecycle layer.
	sopt := harness.ShuffleOptions{FatTreeK: 4, Mappers: 8, Reducers: 8, BytesPerPair: 128 << 10, Skew: 0.9}
	if quick {
		sopt.Mappers, sopt.Reducers, sopt.BytesPerPair = 4, 4, 32<<10
	}
	var shuffleRun harness.ShuffleRun
	shuffle := Case{
		Name:    fmt.Sprintf("e2e/ShuffleRQ/%dx%dx%dKB", sopt.Mappers, sopt.Reducers, sopt.BytesPerPair>>10),
		OneShot: true,
		Fn: func(n int) {
			for i := 0; i < n; i++ {
				shuffleRun = harness.RunShuffle(sopt, store.BackendPolyraptor, 1)
			}
		},
		Metrics: func() map[string]float64 {
			return map[string]float64{
				"shuffle_s":    shuffleRun.CompletionTime,
				"goodput_gbps": shuffleRun.GoodputGbps,
			}
		},
	}

	// Fault injection: cross-pod flows with a quarter of the core
	// links blackholed mid-flow. Stall-guard recovery makes this the
	// scenario with the most timer churn and re-primed pulls per
	// session — it tracks the cost of the failure paths themselves.
	copt := harness.ChaosOptions{
		FatTreeK: 4, Pattern: "one2one", Flows: 8, Bytes: 256 << 10,
		Fault: chaos.Plan{
			Kind: chaos.KindLinkDown, Layer: chaos.LayerCore,
			Frac: 0.25, FailAt: 500 * time.Microsecond,
		},
		Deadline: time.Second,
	}
	if quick {
		copt.Flows, copt.Bytes = 4, 64<<10
	}
	var chaosRun harness.ChaosRun
	chaosCase := Case{
		Name:    fmt.Sprintf("e2e/ChaosRQ/%dx%dKB-frac0.25", copt.Flows, copt.Bytes>>10),
		OneShot: true,
		Fn: func(n int) {
			for i := 0; i < n; i++ {
				chaosRun = harness.RunChaos(copt, store.BackendPolyraptor, 1)
			}
		},
		Metrics: func() map[string]float64 {
			return map[string]float64{
				"completed":    float64(chaosRun.Completed),
				"stall_rate":   chaosRun.StallRate(),
				"fct_p99_s":    chaosRun.FCT.P99,
				"goodput_gbps": chaosRun.GoodputGbps,
			}
		},
	}
	return []Case{fig1a, incast, shuffle, chaosCase}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
