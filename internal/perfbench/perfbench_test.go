package perfbench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRunCaseDerivedFigures(t *testing.T) {
	calls := 0
	c := Case{
		Name:       "test/spin",
		BytesPerOp: 1000,
		RateName:   "ops_per_sec",
		UnitsPerOp: 2,
		Fn: func(n int) {
			calls++
			time.Sleep(time.Duration(n) * 10 * time.Microsecond)
		},
	}
	res := runCase(c, 2*time.Millisecond)
	if res.N < 1 || res.NsPerOp <= 0 {
		t.Fatalf("bad measurement: %+v", res)
	}
	if calls < 2 {
		t.Fatalf("expected warmup plus at least one measured run, got %d calls", calls)
	}
	if res.MBPerSec <= 0 {
		t.Fatalf("MBPerSec not derived: %+v", res)
	}
	rate := res.Metrics["ops_per_sec"]
	wantRate := 2 / (res.NsPerOp / 1e9)
	if rate < wantRate*0.99 || rate > wantRate*1.01 {
		t.Fatalf("rate %.2f, want ~%.2f", rate, wantRate)
	}
}

func TestRunCaseOneShot(t *testing.T) {
	calls := 0
	res := runCase(Case{
		Name:    "test/oneshot",
		OneShot: true,
		Fn:      func(n int) { calls += n },
		Metrics: func() map[string]float64 { return map[string]float64{"x": 42} },
	}, time.Second)
	if calls != 1 {
		t.Fatalf("one-shot case ran %d iterations", calls)
	}
	if res.N != 1 || res.Metrics["x"] != 42 {
		t.Fatalf("one-shot result wrong: %+v", res)
	}
}

// The suite's names are the cross-PR contract: quick and full runs
// must expose the same families, and every kernel has its scalar
// baseline so speedups are computable from a single report.
func TestSuiteShape(t *testing.T) {
	for _, quick := range []bool{false, true} {
		names := map[string]bool{}
		for _, c := range Suite(quick) {
			if c.Fn == nil || c.Name == "" {
				t.Fatalf("malformed case %+v", c)
			}
			if names[c.Name] {
				t.Fatalf("duplicate case name %q", c.Name)
			}
			names[c.Name] = true
		}
		for _, kernel := range []string{"AddRow", "MulAddRow", "ScaleRow"} {
			var base, scalar bool
			for name := range names {
				if strings.Contains(name, kernel+"/") {
					base = true
				}
				if strings.Contains(name, kernel+"Scalar/") {
					scalar = true
				}
			}
			if !base || !scalar {
				t.Fatalf("kernel %s missing base or scalar case (quick=%v)", kernel, quick)
			}
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep := Report{Schema: Schema, Index: 3, Results: []Result{{Name: "a", N: 1, NsPerOp: 2}}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Index != 3 || len(back.Results) != 1 || back.Results[0].Name != "a" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
