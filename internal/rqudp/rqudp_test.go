package rqudp

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"polyraptor/internal/wire"
)

func newUDP(t *testing.T) net.PacketConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func randObject(t *testing.T, n int) []byte {
	t.Helper()
	obj := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(obj)
	return obj
}

func startServer(t *testing.T, obj []byte, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(newUDP(t), obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestUnicastFetch(t *testing.T) {
	obj := randObject(t, 300_000)
	srv := startServer(t, obj, DefaultConfig())
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := Fetch(ctx, conn, srv.Addr(), 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("fetched object differs")
	}
}

func TestFetchTinyObject(t *testing.T) {
	obj := []byte("polyraptor")
	srv := startServer(t, obj, DefaultConfig())
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := Fetch(ctx, conn, srv.Addr(), 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatalf("got %q", got)
	}
}

func TestFetchMultiBlockObject(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SymbolSize = 512
	cfg.MaxBlockK = 64 // forces many blocks
	obj := randObject(t, 200_000)
	srv := startServer(t, obj, cfg)
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := Fetch(ctx, conn, srv.Addr(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("multi-block fetch corrupted object")
	}
}

func TestMultiSourceFetch(t *testing.T) {
	obj := randObject(t, 400_000)
	cfg := DefaultConfig()
	srvs := []*Server{
		startServer(t, obj, cfg),
		startServer(t, obj, cfg),
		startServer(t, obj, cfg),
	}
	remotes := []net.Addr{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()}
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := FetchMultiSource(ctx, conn, remotes, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("multi-source fetch corrupted object")
	}
}

// lossyConn wraps a PacketConn and drops a deterministic fraction of
// outgoing data packets — simulating congestion loss on the symbol
// path while leaving control traffic intact.
type lossyConn struct {
	net.PacketConn
	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
}

func (l *lossyConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	if hdr, _, err := wire.ParseHeader(p); err == nil && hdr.Type == wire.MsgData {
		l.mu.Lock()
		drop := l.rng.Float64() < l.rate
		l.mu.Unlock()
		if drop {
			return len(p), nil // swallowed by the "network"
		}
	}
	return l.PacketConn.WriteTo(p, addr)
}

func TestFetchSurvivesSymbolLoss(t *testing.T) {
	obj := randObject(t, 150_000)
	base := newUDP(t)
	lossy := &lossyConn{PacketConn: base, rng: rand.New(rand.NewSource(5)), rate: 0.25}
	srv, err := NewServer(lossy, obj, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	conn := newUDP(t)
	defer conn.Close()
	cfg := DefaultConfig()
	cfg.RetryInterval = 30 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := Fetch(ctx, conn, srv.Addr(), 9, cfg)
	if err != nil {
		t.Fatalf("fetch under 25%% loss failed: %v", err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("fetch under loss corrupted object")
	}
}

func TestConcurrentFetchers(t *testing.T) {
	obj := randObject(t, 100_000)
	srv := startServer(t, obj, DefaultConfig())
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			got, err := Fetch(ctx, conn, srv.Addr(), uint32(i), DefaultConfig())
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, obj) {
				errs[i] = context.DeadlineExceeded
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetcher %d: %v", i, err)
		}
	}
}

func TestFetchContextCancellation(t *testing.T) {
	// No server: the fetch must give up when the context dies, not
	// spin forever.
	conn := newUDP(t)
	defer conn.Close()
	dead, _ := net.ResolveUDPAddr("udp", "127.0.0.1:1") // nothing listens
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := Fetch(ctx, conn, dead, 1, DefaultConfig())
	if err == nil {
		t.Fatal("fetch from dead address succeeded?!")
	}
}

func TestFetchStallAbort(t *testing.T) {
	conn := newUDP(t)
	defer conn.Close()
	dead, _ := net.ResolveUDPAddr("udp", "127.0.0.1:1")
	cfg := DefaultConfig()
	cfg.RetryInterval = 10 * time.Millisecond
	cfg.MaxRetries = 3
	ctx := context.Background()
	start := time.Now()
	_, err := Fetch(ctx, conn, dead, 1, cfg)
	if err == nil {
		t.Fatal("stalled fetch did not abort")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall abort took far too long")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SymbolSize: 0, MaxBlockK: 1, InitWindow: 1, PullBatch: 1, RetryInterval: 1, MaxRetries: 1},
		{SymbolSize: 1, MaxBlockK: 0, InitWindow: 1, PullBatch: 1, RetryInterval: 1, MaxRetries: 1},
		{SymbolSize: 1, MaxBlockK: 1, InitWindow: 0, PullBatch: 1, RetryInterval: 1, MaxRetries: 1},
		{SymbolSize: 1, MaxBlockK: 1, InitWindow: 1, PullBatch: 1, RetryInterval: 0, MaxRetries: 1},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if _, err := NewServer(nil, nil, Config{}); err == nil {
		t.Fatal("NewServer with zero config accepted")
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	obj := randObject(t, 10_000)
	srv := startServer(t, obj, DefaultConfig())
	conn := newUDP(t)
	defer conn.Close()
	// Garbage, bad magic, truncated — none of these may crash Serve.
	conn.WriteTo([]byte("not-a-polyraptor-packet"), srv.Addr())
	conn.WriteTo([]byte{0xA7}, srv.Addr())
	conn.WriteTo(nil, srv.Addr())
	// The server must still serve a normal fetch afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	got, err := Fetch(ctx, conn, srv.Addr(), 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("fetch after garbage corrupted")
	}
}
