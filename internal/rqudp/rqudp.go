// Package rqudp is the real-network Polyraptor transport: a
// receiver-driven, RaptorQ-coded object transfer protocol over UDP
// (any net.PacketConn). It runs the actual codec from
// internal/raptorq end to end — unlike the protocol simulator, every
// symbol on the wire here carries coded bytes.
//
// The protocol mirrors the paper's design at real-network granularity:
//
//	receiver                            sender
//	   | -- Hello{flow, idx, count} -->   |   (per sender; idx/count
//	   |                                  |    fix the ESI partition)
//	   | <-- Announce{F, T, maxK} ------  |
//	   | <-- Data x InitWindow ---------  |   (source symbols first)
//	   | -- Pull{credits} ------------->  |   (one per arrival)
//	   | <-- Data ... ------------------  |
//	   | -- Done ---------------------->  |
//
// Lost symbols are never re-requested: a pull elicits the next fresh
// symbol, which contributes equally to decoding. Multi-source fetches
// send one Hello per sender with a distinct index; senders partition
// source symbols and use disjoint repair ESI residue classes, so an
// uncoordinated replica set never produces duplicate symbols.
package rqudp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"polyraptor/internal/raptorq"
	"polyraptor/internal/wire"
)

// Config tunes the transport.
type Config struct {
	// SymbolSize is the payload bytes per symbol (default 1024, which
	// keeps packets under typical MTUs with headroom).
	SymbolSize int
	// MaxBlockK bounds source symbols per block (default 256; larger
	// blocks amortise better but decode slower).
	MaxBlockK int
	// InitWindow is the number of symbols a sender blasts after Hello.
	InitWindow int
	// PullBatch is the credit count in recovery pulls issued by the
	// stall guard.
	PullBatch int
	// RetryInterval is the receiver's stall guard period.
	RetryInterval time.Duration
	// MaxRetries bounds consecutive stall recoveries before the fetch
	// aborts.
	MaxRetries int
	// Workers bounds the block-parallel codec work: server-side object
	// encoding (per-block precode solves) and receiver-side block
	// decoding. Zero selects the codec default (GOMAXPROCS); 1 forces
	// serial. Output is byte-identical for every worker count — the
	// knob trades construction/decode wall-clock only.
	Workers int
}

// DefaultConfig returns sane defaults for LAN/loopback use.
func DefaultConfig() Config {
	return Config{
		SymbolSize:    1024,
		MaxBlockK:     256,
		InitWindow:    16,
		PullBatch:     16,
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    50,
	}
}

func (c Config) validate() error {
	if c.SymbolSize <= 0 || c.SymbolSize > 60000 {
		return fmt.Errorf("rqudp: SymbolSize %d out of range", c.SymbolSize)
	}
	if c.MaxBlockK <= 0 || c.MaxBlockK > raptorq.MaxK {
		return fmt.Errorf("rqudp: MaxBlockK %d out of range", c.MaxBlockK)
	}
	if c.InitWindow < 1 || c.PullBatch < 1 {
		return fmt.Errorf("rqudp: InitWindow and PullBatch must be >= 1")
	}
	if c.RetryInterval <= 0 || c.MaxRetries < 1 {
		return fmt.Errorf("rqudp: RetryInterval and MaxRetries must be positive")
	}
	if c.Workers < 0 {
		return fmt.Errorf("rqudp: Workers %d must be >= 0", c.Workers)
	}
	return nil
}

// Server serves one object to any number of receivers over a packet
// connection. Create it with NewServer, run Serve in a goroutine, and
// Close to stop.
type Server struct {
	conn net.PacketConn
	cfg  Config
	enc  *raptorq.ObjectEncoder

	sessions map[string]*serveSession
	closed   chan struct{}

	// pkt and sym are reusable scratch buffers for outgoing Data
	// packets; send appends into them instead of allocating per symbol.
	// They are touched only by the Serve goroutine.
	pkt []byte
	sym []byte
}

// serveSession tracks one receiver's cursors. Sessions are touched
// only by the Serve goroutine, so no locking is needed.
type serveSession struct {
	hello      wire.Hello
	cursors    []senderCursor
	rrBlock    int // round-robin block pointer for repair symbols
	lastActive time.Time
}

// senderCursor is the per-block symbol schedule for one sender in an
// n-way fetch: its slice of the source symbols, then repair ESIs from
// its residue class (K + idx, step n) — the paper's duplicate-free
// partitioning.
type senderCursor struct {
	srcNext, srcEnd int64
	repairNext      int64
	stride          int64
}

// NewServer builds the object encoders (the expensive part) and
// returns a server ready to Serve.
func NewServer(conn net.PacketConn, object []byte, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	enc, err := raptorq.NewObjectEncoderWorkers(object, cfg.SymbolSize, cfg.MaxBlockK, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &Server{
		conn:     conn,
		cfg:      cfg,
		enc:      enc,
		sessions: make(map[string]*serveSession),
		closed:   make(chan struct{}),
		pkt:      make([]byte, 0, cfg.SymbolSize+32),
		sym:      make([]byte, 0, cfg.SymbolSize),
	}, nil
}

// Addr returns the server's listening address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Close stops Serve and closes the connection.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	return s.conn.Close()
}

// Serve processes packets until Close. It is single-goroutine by
// design: the encoder is immutable after construction and sessions are
// private to this loop.
func (s *Server) Serve() error {
	buf := make([]byte, 65536)
	lastSweep := time.Now()
	for {
		select {
		case <-s.closed:
			return nil
		default:
		}
		_ = s.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if time.Since(lastSweep) > time.Minute {
					s.sweep()
					lastSweep = time.Now()
				}
				continue
			}
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.handle(buf[:n], from)
	}
}

// sweep drops sessions idle for over a minute (lost Done messages).
func (s *Server) sweep() {
	cutoff := time.Now().Add(-time.Minute)
	for k, sess := range s.sessions {
		if sess.lastActive.Before(cutoff) {
			delete(s.sessions, k)
		}
	}
}

func (s *Server) handle(pkt []byte, from net.Addr) {
	hdr, body, err := wire.ParseHeader(pkt)
	if err != nil {
		return // not ours; drop
	}
	key := fmt.Sprintf("%s|%d", from.String(), hdr.Flow)
	switch hdr.Type {
	case wire.MsgHello:
		hello, err := wire.ParseHello(hdr.Flow, body)
		if err != nil {
			return
		}
		sess, ok := s.sessions[key]
		if !ok {
			sess = s.newSession(hello)
			s.sessions[key] = sess
		}
		sess.lastActive = time.Now()
		layout := s.enc.Layout()
		out := wire.AppendAnnounce(nil, wire.Announce{
			Flow:       hdr.Flow,
			ObjectSize: uint64(layout.F),
			SymbolSize: uint32(layout.T),
			MaxK:       uint32(s.cfg.MaxBlockK),
		})
		_, _ = s.conn.WriteTo(out, from)
		// Initial window (fresh symbols even on Hello retry: with a
		// rateless code anything we send is useful).
		for i := 0; i < s.cfg.InitWindow; i++ {
			s.emit(sess, hdr.Flow, from)
		}
	case wire.MsgPull:
		pull, err := wire.ParsePull(hdr.Flow, body)
		if err != nil {
			return
		}
		sess, ok := s.sessions[key]
		if !ok {
			return // unknown session: receiver must re-Hello
		}
		sess.lastActive = time.Now()
		credits := int(pull.Credits)
		if credits > 1024 {
			credits = 1024 // cap malicious/corrupt credit counts
		}
		for i := 0; i < credits; i++ {
			s.emit(sess, hdr.Flow, from)
		}
	case wire.MsgDone:
		delete(s.sessions, key)
	}
}

// newSession builds the per-block cursors for one receiver.
func (s *Server) newSession(h wire.Hello) *serveSession {
	layout := s.enc.Layout()
	sess := &serveSession{hello: h}
	n := int64(h.SenderCount)
	idx := int64(h.SenderIdx)
	for _, k := range layout.K {
		kk := int64(k)
		il, is, jl, _ := raptorq.Partition(k, int(n))
		var start int64
		span := int64(is)
		if idx < int64(jl) {
			span = int64(il)
			start = idx * int64(il)
		} else {
			start = int64(jl)*int64(il) + (idx-int64(jl))*int64(is)
		}
		sess.cursors = append(sess.cursors, senderCursor{
			srcNext:    start,
			srcEnd:     start + span,
			repairNext: kk + idx,
			stride:     n,
		})
	}
	return sess
}

// emit sends the session's next symbol: source symbols of the
// partition block by block, then repair symbols round-robin across
// blocks.
func (s *Server) emit(sess *serveSession, flow uint32, to net.Addr) {
	// Source phase.
	for b := range sess.cursors {
		cur := &sess.cursors[b]
		if cur.srcNext < cur.srcEnd {
			esi := cur.srcNext
			cur.srcNext++
			s.send(flow, b, uint32(esi), to)
			return
		}
	}
	// Repair phase: round-robin blocks.
	b := sess.rrBlock % len(sess.cursors)
	sess.rrBlock++
	cur := &sess.cursors[b]
	esi := cur.repairNext
	cur.repairNext += cur.stride
	s.send(flow, b, uint32(esi), to)
}

//polyvet:noalloc per-datagram fast path; symbol and packet buffers are reused across sends
func (s *Server) send(flow uint32, sbn int, esi uint32, to net.Addr) {
	s.sym = s.enc.Block(sbn).AppendSymbol(s.sym[:0], esi)
	s.pkt = wire.AppendData(s.pkt[:0], wire.Data{
		Flow:    flow,
		SBN:     uint32(sbn),
		ESI:     esi,
		Payload: s.sym,
	})
	_, _ = s.conn.WriteTo(s.pkt, to)
}

// FetchStats reports what happened during a fetch.
type FetchStats struct {
	// Symbols is the number of fresh (non-duplicate) symbols received.
	Symbols int
	// Duplicates counts symbols the decoder already held (e.g. after a
	// Hello retry re-triggered an initial window).
	Duplicates int
	// PerSender counts fresh symbols contributed by each remote, in
	// the order passed to FetchMultiSource — the observable form of
	// the paper's "each server contributes symbols at its available
	// capacity".
	PerSender []int
	// Retries is the number of stall recoveries performed.
	Retries int
	// Elapsed is the wall-clock fetch duration.
	Elapsed time.Duration
}

// Fetch retrieves the object served at remote over conn (unicast).
func Fetch(ctx context.Context, conn net.PacketConn, remote net.Addr, flow uint32, cfg Config) ([]byte, error) {
	data, _, err := FetchMultiSourceStats(ctx, conn, []net.Addr{remote}, flow, cfg)
	return data, err
}

// FetchMultiSource retrieves one object replicated at every remote,
// pulling from all of them concurrently (the paper's many-to-one
// pattern). The senders need no coordination: the Hello index fixes
// each one's disjoint symbol schedule.
func FetchMultiSource(ctx context.Context, conn net.PacketConn, remotes []net.Addr, flow uint32, cfg Config) ([]byte, error) {
	data, _, err := FetchMultiSourceStats(ctx, conn, remotes, flow, cfg)
	return data, err
}

// FetchMultiSourceStats is FetchMultiSource returning transfer
// statistics alongside the object.
func FetchMultiSourceStats(ctx context.Context, conn net.PacketConn, remotes []net.Addr, flow uint32, cfg Config) ([]byte, FetchStats, error) {
	start := time.Now()
	stats := FetchStats{PerSender: make([]int, len(remotes))}
	if err := cfg.validate(); err != nil {
		return nil, stats, err
	}
	if len(remotes) == 0 || len(remotes) > 255 {
		return nil, stats, fmt.Errorf("rqudp: %d remotes", len(remotes))
	}
	// senderOf maps a source address back to its index in remotes.
	senderOf := make(map[string]int, len(remotes))
	for i, r := range remotes {
		senderOf[r.String()] = i
	}
	sendHello := func() {
		for i, r := range remotes {
			out := wire.AppendHello(nil, wire.Hello{
				Flow:        flow,
				SenderIdx:   uint8(i),
				SenderCount: uint8(len(remotes)),
			})
			_, _ = conn.WriteTo(out, r)
		}
	}
	sendHello()

	var (
		dec      *raptorq.ObjectDecoder
		buf      = make([]byte, 65536)
		retries  = 0
		progress = false // any new symbol since last stall check
		lastTick = time.Now()
	)
	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		_ = conn.SetReadDeadline(time.Now().Add(cfg.RetryInterval / 4))
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				return nil, stats, err
			}
			// Stall guard: on timeout with no progress, re-prime.
			if time.Since(lastTick) >= cfg.RetryInterval {
				lastTick = time.Now()
				if !progress {
					retries++
					stats.Retries++
					if retries > cfg.MaxRetries {
						stats.Elapsed = time.Since(start)
						return nil, stats, fmt.Errorf("rqudp: fetch stalled after %d retries", retries-1)
					}
					if dec == nil {
						sendHello()
					} else {
						pull := wire.AppendPull(nil, wire.Pull{Flow: flow, Credits: uint16(cfg.PullBatch)})
						for _, r := range remotes {
							_, _ = conn.WriteTo(pull, r)
						}
					}
				}
				progress = false
			}
			continue
		}
		hdr, body, err := wire.ParseHeader(buf[:n])
		if err != nil || hdr.Flow != flow {
			continue
		}
		switch hdr.Type {
		case wire.MsgAnnounce:
			a, err := wire.ParseAnnounce(hdr.Flow, body)
			if err != nil {
				continue
			}
			if dec == nil {
				layout, err := raptorq.NewBlockLayout(int64(a.ObjectSize), int(a.SymbolSize), int(a.MaxK))
				if err != nil {
					return nil, stats, fmt.Errorf("rqudp: bad announce: %w", err)
				}
				dec, err = raptorq.NewObjectDecoder(layout)
				if err != nil {
					return nil, stats, err
				}
				dec.SetWorkers(cfg.Workers)
			}
		case wire.MsgData:
			d, err := wire.ParseData(hdr.Flow, body)
			if err != nil || dec == nil {
				continue
			}
			fresh, err := dec.AddSymbol(int(d.SBN), d.ESI, d.Payload)
			if err != nil {
				continue // e.g. geometry mismatch; ignore packet
			}
			if fresh {
				stats.Symbols++
				if idx, ok := senderOf[from.String()]; ok {
					stats.PerSender[idx]++
				}
			} else {
				stats.Duplicates++
			}
			progress = progress || fresh
			// Only fresh symbols reset the stall budget: a sender
			// replaying duplicates must not defeat MaxRetries (the fetch
			// would stall forever instead of aborting).
			if fresh {
				retries = 0
			}
			if dec.TryDecode() {
				done := wire.AppendDone(nil, flow)
				for _, r := range remotes {
					_, _ = conn.WriteTo(done, r)
				}
				stats.Elapsed = time.Since(start)
				obj, err := dec.Object()
				return obj, stats, err
			}
			if !fresh {
				// No pull for a duplicate: clocking credits off
				// duplicates would let a replaying sender sustain a
				// data->pull->data ping-pong that keeps the socket warm
				// and starves the stall guard, defeating MaxRetries.
				// The sender goes quiet instead and the stall guard
				// takes over.
				continue
			}
			// Receiver-driven clocking: one pull per fresh arrival,
			// addressed to the sender that delivered (its path has
			// capacity).
			pull := wire.AppendPull(nil, wire.Pull{Flow: flow, Credits: 1})
			_, _ = conn.WriteTo(pull, from)
		}
	}
}
