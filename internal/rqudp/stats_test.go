package rqudp

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"
)

func TestFetchStatsUnicast(t *testing.T) {
	obj := randObject(t, 200_000)
	srv := startServer(t, obj, DefaultConfig())
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := FetchMultiSourceStats(ctx, conn, []net.Addr{srv.Addr()}, 11, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("object corrupted")
	}
	minSymbols := len(obj) / DefaultConfig().SymbolSize
	if stats.Symbols < minSymbols {
		t.Fatalf("stats report %d symbols, need at least %d", stats.Symbols, minSymbols)
	}
	if len(stats.PerSender) != 1 || stats.PerSender[0] != stats.Symbols {
		t.Fatalf("per-sender accounting wrong: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestFetchStatsMultiSourceBalance(t *testing.T) {
	obj := randObject(t, 400_000)
	cfg := DefaultConfig()
	srvs := []*Server{
		startServer(t, obj, cfg),
		startServer(t, obj, cfg),
		startServer(t, obj, cfg),
	}
	remotes := []net.Addr{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()}
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := FetchMultiSourceStats(ctx, conn, remotes, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("object corrupted")
	}
	total := 0
	for i, n := range stats.PerSender {
		if n == 0 {
			t.Fatalf("sender %d contributed nothing: %+v", i, stats)
		}
		total += n
	}
	if total != stats.Symbols {
		t.Fatalf("per-sender sum %d != symbols %d", total, stats.Symbols)
	}
	// On loopback all three paths are equal: contributions should be
	// roughly balanced (each within a factor ~4 of fair share).
	fair := stats.Symbols / 3
	for i, n := range stats.PerSender {
		if n < fair/4 {
			t.Fatalf("sender %d contributed %d of fair share %d", i, n, fair)
		}
	}
}

func TestFetchStatsStallCounting(t *testing.T) {
	conn := newUDP(t)
	defer conn.Close()
	dead, _ := net.ResolveUDPAddr("udp", "127.0.0.1:1")
	cfg := DefaultConfig()
	cfg.RetryInterval = 10 * time.Millisecond
	cfg.MaxRetries = 2
	_, stats, err := FetchMultiSourceStats(context.Background(), conn, []net.Addr{dead}, 13, cfg)
	if err == nil {
		t.Fatal("dead fetch succeeded")
	}
	if stats.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", stats.Retries)
	}
	if stats.Symbols != 0 {
		t.Fatalf("symbols = %d from a dead address", stats.Symbols)
	}
}
