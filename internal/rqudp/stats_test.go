package rqudp

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"polyraptor/internal/wire"
)

func TestFetchStatsUnicast(t *testing.T) {
	obj := randObject(t, 200_000)
	srv := startServer(t, obj, DefaultConfig())
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := FetchMultiSourceStats(ctx, conn, []net.Addr{srv.Addr()}, 11, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("object corrupted")
	}
	minSymbols := len(obj) / DefaultConfig().SymbolSize
	if stats.Symbols < minSymbols {
		t.Fatalf("stats report %d symbols, need at least %d", stats.Symbols, minSymbols)
	}
	if len(stats.PerSender) != 1 || stats.PerSender[0] != stats.Symbols {
		t.Fatalf("per-sender accounting wrong: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestFetchStatsMultiSourceBalance(t *testing.T) {
	obj := randObject(t, 400_000)
	cfg := DefaultConfig()
	srvs := []*Server{
		startServer(t, obj, cfg),
		startServer(t, obj, cfg),
		startServer(t, obj, cfg),
	}
	remotes := []net.Addr{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()}
	conn := newUDP(t)
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := FetchMultiSourceStats(ctx, conn, remotes, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("object corrupted")
	}
	total := 0
	for i, n := range stats.PerSender {
		if n == 0 {
			t.Fatalf("sender %d contributed nothing: %+v", i, stats)
		}
		total += n
	}
	if total != stats.Symbols {
		t.Fatalf("per-sender sum %d != symbols %d", total, stats.Symbols)
	}
	// On loopback all three paths are equal: contributions should be
	// roughly balanced (each within a factor ~4 of fair share).
	fair := stats.Symbols / 3
	for i, n := range stats.PerSender {
		if n < fair/4 {
			t.Fatalf("sender %d contributed %d of fair share %d", i, n, fair)
		}
	}
}

// duplicateSender is a misbehaving sender that answers every Hello
// with a valid Announce and every Hello/Pull with the same Data symbol
// (SBN 0, ESI 0) over and over. A correct receiver must hit the
// MaxRetries abort: duplicates are not progress.
func duplicateSender(t *testing.T, symbolSize int) net.Addr {
	t.Helper()
	conn := newUDP(t)
	t.Cleanup(func() { conn.Close() })
	payload := make([]byte, symbolSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() {
		buf := make([]byte, 65536)
		for {
			n, from, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			hdr, _, err := wire.ParseHeader(buf[:n])
			if err != nil {
				continue
			}
			switch hdr.Type {
			case wire.MsgHello:
				out := wire.AppendAnnounce(nil, wire.Announce{
					Flow:       hdr.Flow,
					ObjectSize: uint64(2 * symbolSize), // K=2: never decodable from one symbol
					SymbolSize: uint32(symbolSize),
					MaxK:       256,
				})
				_, _ = conn.WriteTo(out, from)
				fallthrough
			case wire.MsgPull:
				out := wire.AppendData(nil, wire.Data{
					Flow:    hdr.Flow,
					SBN:     0,
					ESI:     0,
					Payload: payload,
				})
				_, _ = conn.WriteTo(out, from)
			}
		}
	}()
	return conn.LocalAddr()
}

// Regression (ISSUE 3): a sender replaying duplicate symbols used to
// reset the retry counter on every Data packet, defeating MaxRetries —
// the fetch would stall forever instead of aborting.
func TestDuplicatesOnlySenderHitsRetryAbort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryInterval = 10 * time.Millisecond
	cfg.MaxRetries = 3
	sender := duplicateSender(t, cfg.SymbolSize)
	conn := newUDP(t)
	defer conn.Close()
	// The context bounds the test if the bug regresses (infinite stall);
	// the fetch itself must abort well before the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, stats, err := FetchMultiSourceStats(ctx, conn, []net.Addr{sender}, 21, cfg)
	if err == nil {
		t.Fatal("duplicates-only fetch succeeded?!")
	}
	if ctx.Err() != nil {
		t.Fatalf("fetch hit the test deadline instead of the MaxRetries abort: %v", err)
	}
	if stats.Retries <= cfg.MaxRetries {
		t.Fatalf("retries = %d, want > MaxRetries (%d)", stats.Retries, cfg.MaxRetries)
	}
	if stats.Duplicates == 0 {
		t.Fatal("no duplicates recorded; sender misbehaving in the wrong way")
	}
	if stats.Symbols != 1 {
		t.Fatalf("fresh symbols = %d, want exactly 1", stats.Symbols)
	}
}

func TestFetchStatsStallCounting(t *testing.T) {
	conn := newUDP(t)
	defer conn.Close()
	dead, _ := net.ResolveUDPAddr("udp", "127.0.0.1:1")
	cfg := DefaultConfig()
	cfg.RetryInterval = 10 * time.Millisecond
	cfg.MaxRetries = 2
	_, stats, err := FetchMultiSourceStats(context.Background(), conn, []net.Addr{dead}, 13, cfg)
	if err == nil {
		t.Fatal("dead fetch succeeded")
	}
	if stats.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", stats.Retries)
	}
	if stats.Symbols != 0 {
		t.Fatalf("symbols = %d from a dead address", stats.Symbols)
	}
}
