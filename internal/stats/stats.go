// Package stats provides the summary statistics the evaluation
// figures need: means, Student-t 95% confidence intervals (the error
// bars of Figure 1c), percentiles and rank-ordered goodput series
// (the x-axis of Figures 1a/1b).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DropNaN returns xs without its NaN elements. When xs has none it is
// returned as-is (no copy); otherwise a filtered copy is returned, so
// the input is never modified.
func DropNaN(xs []float64) []float64 {
	clean := true
	for _, x := range xs {
		if math.IsNaN(x) {
			clean = false
			break
		}
	}
	if clean {
		return xs
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// tCrit95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-based); beyond 30 the normal approximation is used.
var tCrit95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
	2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
	2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval
// of the mean (Student t), e.g. the error bars of Figure 1c: the paper
// uses 5 repetitions with different seeds, i.e. 4 degrees of freedom.
// NaN samples (a stalled flow that never completed) are skipped, like
// Percentile and Summarize.
func CI95(xs []float64) float64 {
	xs = DropNaN(xs)
	n := len(xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	var t float64
	if df < len(tCrit95) {
		t = tCrit95[df]
	} else {
		t = 1.960
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics. NaN samples are skipped: a
// single stalled-flow NaN must not poison the whole distribution
// (sort.Float64s would otherwise scatter NaNs through the order
// statistics).
func Percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), DropNaN(xs)...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile for a sample already sorted
// ascending: no copy, no re-sort. Callers that take many percentiles
// of one sample (sweep aggregation over thousands of cells) sort once
// and use this.
func PercentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	return percentileSorted(s, p)
}

// Summary condenses a sample into the headline numbers storage
// evaluations report: mean and tail percentiles. The zero value is the
// summary of an empty sample.
type Summary struct {
	N                  int
	Mean               float64
	Min, P50, P95, P99 float64
	Max                float64
}

// Summarize computes a Summary over a sorted copy of xs. NaN samples
// are skipped (see Percentile); N counts only the finite-ordered
// samples that remain.
func Summarize(xs []float64) Summary {
	s := append([]float64(nil), DropNaN(xs)...)
	sort.Float64s(s)
	return SummarizeSorted(s)
}

// HistSource is the read side of a quantile sketch — the subset of
// polyraptor/internal/metrics.Histogram that SummarizeHist needs.
// Keeping it an interface keeps stats a leaf package.
type HistSource interface {
	Count() uint64
	Mean() float64
	Min() float64
	Max() float64
	// Quantile returns the p-th percentile (0..100) with the sketch's
	// documented relative-error bound.
	Quantile(p float64) float64
}

// SummarizeHist condenses a histogram into the same Summary shape as
// the exact-sample path, with percentiles read from the sketch
// (bounded relative error) instead of a full sample sort.
func SummarizeHist(h HistSource) Summary {
	if h == nil || h.Count() == 0 {
		return Summary{}
	}
	return Summary{
		N:    int(h.Count()),
		Mean: h.Mean(),
		Min:  h.Min(),
		P50:  h.Quantile(50),
		P95:  h.Quantile(95),
		P99:  h.Quantile(99),
		Max:  h.Max(),
	}
}

// SummarizeSorted is Summarize for a sample already sorted ascending:
// the fast path for callers that have sorted (or can keep) the sample
// themselves.
func SummarizeSorted(s []float64) Summary {
	if len(s) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(s),
		Mean: Mean(s),
		Min:  s[0],
		P50:  percentileSorted(s, 50),
		P95:  percentileSorted(s, 95),
		P99:  percentileSorted(s, 99),
		Max:  s[len(s)-1],
	}
}

// percentileSorted is Percentile for an already-sorted sample.
func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// RankSeries sorts values in descending order — the "rank of transport
// session" presentation of Figures 1a and 1b (rank 0 is the fastest
// session).
func RankSeries(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s
}

// Downsample returns at most n points evenly spaced over the series
// (first and last always included), for readable plot output.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(xs) - 1) / (n - 1)
		out = append(out, xs[idx])
	}
	return out
}

// Series is a named data series for table rendering.
type Series struct {
	Name   string
	Points []float64
}

// RenderTable renders aligned columns: one row per index, one column
// per series, with the given x-axis labels. Missing or NaN points
// render as "-". The output is the textual equivalent of the paper's
// figures.
func RenderTable(xLabel string, xs []string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-16s", x)
		for _, s := range series {
			if i < len(s.Points) && !math.IsNaN(s.Points[i]) {
				fmt.Fprintf(&b, "%16.4f", s.Points[i])
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV renders the same data as CSV for external plotting.
func RenderCSV(xLabel string, xs []string, series []Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		b.WriteString(x)
		for _, s := range series {
			b.WriteByte(',')
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%.6f", s.Points[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
