package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single sample stddev must be 0")
	}
	// Known case: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestCI95FiveSeeds(t *testing.T) {
	// Five repetitions (the paper's setup): t(4df) = 2.776.
	xs := []float64{1, 2, 3, 4, 5}
	want := 2.776 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI95 of one sample must be 0")
	}
}

func TestCI95LargeN(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	want := 1.960 * StdDev(xs) / 10
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95(large n) = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRankSeries(t *testing.T) {
	got := RankSeries([]float64{0.3, 0.9, 0.5})
	if got[0] != 0.9 || got[1] != 0.5 || got[2] != 0.3 {
		t.Fatalf("RankSeries = %v", got)
	}
}

func TestRankSeriesSortedDescendingQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		r := RankSeries(xs)
		for i := 1; i < len(r); i++ {
			if r[i] > r[i-1] {
				return false
			}
		}
		return len(r) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	d := Downsample(xs, 10)
	if len(d) != 10 {
		t.Fatalf("len = %d", len(d))
	}
	if d[0] != 0 || d[9] != 99 {
		t.Fatalf("endpoints = %v, %v", d[0], d[9])
	}
	if got := Downsample(xs, 200); len(got) != 100 {
		t.Fatal("Downsample should not upsample")
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable("rank", []string{"0", "1"}, []Series{
		{Name: "RQ", Points: []float64{0.95, 0.90}},
		{Name: "TCP", Points: []float64{0.80}},
	})
	if !strings.Contains(out, "RQ") || !strings.Contains(out, "TCP") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.9500") {
		t.Fatalf("missing value:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for short series:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	out := RenderCSV("x", []string{"a", "b"}, []Series{{Name: "s", Points: []float64{1, 2}}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "x,s" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "a,1.000000" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.P50 != Percentile(xs, 50) || s.P95 != Percentile(xs, 95) || s.P99 != Percentile(xs, 99) {
		t.Fatalf("percentiles disagree with Percentile(): %+v", s)
	}
	if !(s.P50 < s.P95 && s.P95 < s.P99) {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
}

// TestPercentileSortedEdges pins the boundary behaviour of the sorted
// fast path: p <= 0 is the minimum, p >= 100 the maximum, a single
// sample is every percentile, and an empty sample is 0.
func TestPercentileSortedEdges(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	for _, p := range []float64{-10, 0} {
		if got := PercentileSorted(s, p); got != 1 {
			t.Fatalf("PercentileSorted(s, %g) = %g, want 1", p, got)
		}
	}
	for _, p := range []float64{100, 250} {
		if got := PercentileSorted(s, p); got != 4 {
			t.Fatalf("PercentileSorted(s, %g) = %g, want 4", p, got)
		}
	}
	one := []float64{7}
	for _, p := range []float64{-1, 0, 13, 50, 99, 100, 200} {
		if got := PercentileSorted(one, p); got != 7 {
			t.Fatalf("PercentileSorted([7], %g) = %g, want 7", p, got)
		}
	}
	if got := PercentileSorted(nil, 50); got != 0 {
		t.Fatalf("PercentileSorted(nil, 50) = %g, want 0", got)
	}
}

// TestPercentileEdges: the copying wrapper agrees with the fast path
// at the same boundaries.
func TestPercentileEdges(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil, 50) = %g, want 0", got)
	}
	if got := Percentile([]float64{5}, 0); got != 5 {
		t.Fatalf("Percentile([5], 0) = %g, want 5", got)
	}
	if got := Percentile([]float64{3, 1, 2}, 100); got != 3 {
		t.Fatalf("Percentile(unsorted, 100) = %g, want 3", got)
	}
	if got := Percentile([]float64{3, 1, 2}, 0); got != 1 {
		t.Fatalf("Percentile(unsorted, 0) = %g, want 1", got)
	}
}

// TestSummarizeSorted: the fast path equals Summarize without
// re-sorting, and does not copy (documented contract: input must
// already be sorted).
func TestSummarizeSorted(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	want := Summarize(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got := SummarizeSorted(sorted); got != want {
		t.Fatalf("SummarizeSorted = %+v, want %+v", got, want)
	}
	if s := SummarizeSorted(nil); s != (Summary{}) {
		t.Fatalf("SummarizeSorted(nil) = %+v, want zero", s)
	}
	if s := SummarizeSorted([]float64{4}); s.N != 1 || s.Min != 4 || s.P50 != 4 || s.P99 != 4 || s.Max != 4 {
		t.Fatalf("SummarizeSorted([4]) = %+v", s)
	}
}

// TestRenderTableNaN: NaN points render as "-" so sparse sweep tables
// stay aligned.
func TestRenderTableNaN(t *testing.T) {
	out := RenderTable("x", []string{"a", "b"}, []Series{
		{Name: "s", Points: []float64{math.NaN(), 2}},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], "-") || strings.Contains(lines[1], "NaN") {
		t.Fatalf("NaN row = %q, want '-'", lines[1])
	}
	if !strings.Contains(lines[2], "2.0000") {
		t.Fatalf("numeric row = %q", lines[2])
	}
}

// TestNaNSkipping: one stalled-flow NaN must not corrupt percentiles,
// means or confidence intervals.
func TestNaNSkipping(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 3, 4}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("Percentile with NaN = %g, want 2.5", got)
	}
	s := Summarize(xs)
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize with NaN = %+v, want N=4 mean=2.5", s)
	}
	if got := CI95(xs); math.IsNaN(got) || got == 0 {
		t.Errorf("CI95 with NaN = %g, want finite nonzero", got)
	}
	clean := []float64{1, 2, 3, 4}
	if got, want := CI95(xs), CI95(clean); got != want {
		t.Errorf("CI95 with NaN = %g, want %g (NaN dropped)", got, want)
	}
	if all := Summarize([]float64{math.NaN(), math.NaN()}); all.N != 0 {
		t.Errorf("all-NaN Summarize = %+v, want zero Summary", all)
	}
}

func TestDropNaN(t *testing.T) {
	clean := []float64{3, 1, 2}
	if got := DropNaN(clean); &got[0] != &clean[0] {
		t.Error("DropNaN must not copy a clean slice")
	}
	dirty := []float64{3, math.NaN(), 2}
	got := DropNaN(dirty)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Errorf("DropNaN = %v", got)
	}
	if !math.IsNaN(dirty[1]) {
		t.Error("DropNaN must not modify its input")
	}
}

// fakeHist drives SummarizeHist without importing internal/metrics
// (stats stays a leaf package; the real implementation is
// metrics.Histogram, wired up in internal/sweep).
type fakeHist struct{ n uint64 }

func (f fakeHist) Count() uint64              { return f.n }
func (f fakeHist) Mean() float64              { return 2 }
func (f fakeHist) Min() float64               { return 1 }
func (f fakeHist) Max() float64               { return 3 }
func (f fakeHist) Quantile(p float64) float64 { return 1 + 2*p/100 }

func TestSummarizeHist(t *testing.T) {
	s := SummarizeHist(fakeHist{n: 10})
	if s.N != 10 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.P50 != 2 {
		t.Errorf("SummarizeHist = %+v", s)
	}
	if s := SummarizeHist(fakeHist{}); s != (Summary{}) {
		t.Errorf("empty hist summary = %+v, want zero", s)
	}
	if s := SummarizeHist(nil); s != (Summary{}) {
		t.Errorf("nil hist summary = %+v, want zero", s)
	}
}
