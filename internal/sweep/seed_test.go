package sweep

import "testing"

// TestSubSeedDeterministic: same (base, rep) always maps to the same
// seed — the property byte-identical parallel sweeps rest on.
func TestSubSeedDeterministic(t *testing.T) {
	for base := int64(-3); base <= 3; base++ {
		for rep := 0; rep < 10; rep++ {
			if SubSeed(base, rep) != SubSeed(base, rep) {
				t.Fatalf("SubSeed(%d,%d) not deterministic", base, rep)
			}
		}
	}
}

// TestSubSeedDistinct: no collisions across a large rep range and
// across neighbouring bases — the ad-hoc Seed+i scheme this replaces
// produced heavily correlated rand.NewSource states.
func TestSubSeedDistinct(t *testing.T) {
	seen := map[int64][2]int64{}
	for base := int64(0); base < 8; base++ {
		for rep := 0; rep < 2000; rep++ {
			s := SubSeed(base, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SubSeed collision: (%d,%d) and (%d,%d) -> %d",
					base, rep, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(rep)}
		}
	}
}

// TestSubSeedsMatchesSubSeed: the batch helper is the pointwise one.
func TestSubSeedsMatchesSubSeed(t *testing.T) {
	got := SubSeeds(42, 7)
	if len(got) != 7 {
		t.Fatalf("SubSeeds returned %d seeds, want 7", len(got))
	}
	for i, s := range got {
		if s != SubSeed(42, i) {
			t.Fatalf("SubSeeds[%d] = %d, want %d", i, s, SubSeed(42, i))
		}
	}
}

// TestSubSeedMixes: consecutive reps should differ in many bits, not
// just the low ones (a smoke test that the output function is applied).
func TestSubSeedMixes(t *testing.T) {
	a, b := uint64(SubSeed(1, 0)), uint64(SubSeed(1, 1))
	diff := a ^ b
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 {
		t.Fatalf("SubSeed(1,0) and SubSeed(1,1) differ in only %d bits", bits)
	}
}
