// Package sweep is the experiment-sweep engine: it takes a declarative
// run matrix (cells = backend x scenario, each with a Runner), executes
// the independent discrete-event simulations concurrently on a worker
// pool, and aggregates per-cell metrics across repetition seeds into
// mean, 95% confidence interval and tail percentiles.
//
// Determinism is the design constraint everything else serves. Each
// (cell, repetition) run gets its own SplitMix-derived sub-seed
// (SubSeed) and its own simulation instance — no RNG state is shared
// across goroutines — and results are written into pre-assigned slots,
// so a sweep's aggregated output is byte-identical whether it runs on
// one worker or on GOMAXPROCS workers.
package sweep

import (
	"fmt"
	"maps"
	"runtime"
	"slices"
	"sort"
	"sync"

	"polyraptor/internal/stats"
)

// Metrics is the named scalar outputs of one run. A runner may omit a
// metric on some repetitions (e.g. an interference ratio that could
// not be measured); aggregation then uses the repetitions that
// reported it.
type Metrics map[string]float64

// Runner executes one simulation for one derived seed. Implementations
// must be safe for concurrent calls: every Run builds its own
// simulation state and shares nothing mutable.
type Runner interface {
	Run(seed int64) (Metrics, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(seed int64) (Metrics, error)

// Run implements Runner.
func (f RunnerFunc) Run(seed int64) (Metrics, error) { return f(seed) }

// Cell is one point of the run matrix: a scenario under a backend,
// plus any extra parameters worth echoing in reports.
type Cell struct {
	// Scenario names the workload (e.g. "incast", "storage").
	Scenario string
	// Backend names the transport under test (e.g. "polyraptor").
	Backend string
	// Params are extra axis values, rendered sorted by key.
	Params map[string]string
	// Runner executes the cell for one seed.
	Runner Runner
}

// Name returns the cell's display label: scenario/backend plus sorted
// params.
func (c Cell) Name() string {
	s := c.Scenario + "/" + c.Backend
	for _, k := range sortedKeys(c.Params) {
		s += fmt.Sprintf(" %s=%s", k, c.Params[k])
	}
	return s
}

// Matrix is a declarative sweep: cells x seeds, run with the given
// parallelism.
type Matrix struct {
	// Cells are the matrix points.
	Cells []Cell
	// Seeds is the repetition count per cell (the paper uses 5).
	Seeds int
	// BaseSeed anchors sub-seed derivation.
	BaseSeed int64
	// Parallelism caps concurrent runs; <= 0 means GOMAXPROCS.
	Parallelism int
	// Progress, when non-nil, is invoked once per completed
	// (cell, repetition) run with the count of finished runs, the
	// total, and the run that just finished. Calls are serialised
	// under a mutex but arrive in completion order, which depends on
	// scheduling — route them to stderr or a log, never into the
	// deterministic result stream.
	Progress func(done, total int, cell Cell, seed int64)
}

// Aggregate is one metric reduced across repetitions.
type Aggregate struct {
	// Metric is the metric name.
	Metric string `json:"metric"`
	// N is the number of repetitions that reported the metric.
	N int `json:"n"`
	// Mean is the arithmetic mean; CI95 the Student-t 95% confidence
	// half-width over the N repetitions.
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	// Min, P50, P95, P99 and Max are order statistics over the N
	// repetitions.
	Min float64 `json:"min"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// CellResult is one cell's aggregated output.
type CellResult struct {
	Scenario string            `json:"scenario"`
	Backend  string            `json:"backend"`
	Params   map[string]string `json:"params,omitempty"`
	// Seeds are the derived per-repetition sub-seeds, in repetition
	// order (identical for every cell, so backends pair up).
	Seeds []int64 `json:"seeds"`
	// Metrics are the aggregates, sorted by metric name.
	Metrics []Aggregate `json:"metrics"`
	// Samples holds the raw per-repetition values behind each
	// aggregate, in repetition order (repetitions that errored or did
	// not report the metric are skipped).
	Samples map[string][]float64 `json:"samples,omitempty"`
	// Errors records failed repetitions as "rep N: message".
	Errors []string `json:"errors,omitempty"`
}

// Result is a completed sweep.
type Result struct {
	BaseSeed int64        `json:"base_seed"`
	Seeds    int          `json:"seeds"`
	Cells    []CellResult `json:"cells"`
}

// ForEach runs n independent jobs on a pool of `parallelism` workers
// (<= 0 means GOMAXPROCS) and returns when all have finished. Jobs
// receive their index and must write results only to their own
// pre-assigned slots; under that contract the outcome is independent
// of scheduling order. A panicking job does not kill the worker
// goroutine (which would abort the process unrecoverably): the
// lowest-index panic is re-raised on the caller's goroutine after all
// jobs finish, so callers can recover exactly as they could from a
// serial loop.
func ForEach(n, parallelism int, job func(i int)) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	panics := make([]any, n)
	runJob := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		job(i)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runJob(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Run executes the matrix and aggregates each cell across its
// repetition seeds. A repetition that returns an error (or panics —
// the harness panics on malformed experiments) is recorded in the
// cell's Errors and excluded from aggregation; Run itself fails only
// on an invalid matrix.
func (m Matrix) Run() (*Result, error) {
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("sweep: matrix has no cells")
	}
	if m.Seeds < 1 {
		return nil, fmt.Errorf("sweep: Seeds must be >= 1, got %d", m.Seeds)
	}
	for i, c := range m.Cells {
		if c.Runner == nil {
			return nil, fmt.Errorf("sweep: cell %d (%s) has no runner", i, c.Name())
		}
	}
	seeds := SubSeeds(m.BaseSeed, m.Seeds)

	type runOut struct {
		metrics Metrics
		err     error
	}
	// One pre-assigned slot per (cell, rep): workers never contend and
	// aggregation order is independent of completion order.
	outs := make([]runOut, len(m.Cells)*m.Seeds)
	var progressMu sync.Mutex
	finished := 0
	ForEach(len(outs), m.Parallelism, func(i int) {
		cell := m.Cells[i/m.Seeds]
		seed := seeds[i%m.Seeds]
		metrics, err := runCell(cell, seed)
		outs[i] = runOut{metrics, err}
		if m.Progress != nil {
			progressMu.Lock()
			finished++
			m.Progress(finished, len(outs), cell, seed)
			progressMu.Unlock()
		}
	})

	res := &Result{BaseSeed: m.BaseSeed, Seeds: m.Seeds}
	for ci, cell := range m.Cells {
		cr := CellResult{
			Scenario: cell.Scenario,
			Backend:  cell.Backend,
			Params:   cell.Params,
			Seeds:    seeds,
		}
		samples := map[string][]float64{}
		for rep := 0; rep < m.Seeds; rep++ {
			o := outs[ci*m.Seeds+rep]
			if o.err != nil {
				cr.Errors = append(cr.Errors, fmt.Sprintf("rep %d: %v", rep, o.err))
				continue
			}
			for name, v := range o.metrics {
				samples[name] = append(samples[name], v)
			}
		}
		for _, name := range sortedKeys(samples) {
			cr.Metrics = append(cr.Metrics, aggregate(name, samples[name]))
		}
		if len(samples) > 0 {
			cr.Samples = samples
		}
		res.Cells = append(res.Cells, cr)
	}
	return res, nil
}

// runCell executes one repetition, converting runner panics into
// errors so one malformed cell cannot abort a whole sweep.
func runCell(c Cell, seed int64) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return c.Runner.Run(seed)
}

// aggregate reduces one metric's repetition samples. The sample is
// sorted once and the percentiles taken through the sorted fast path —
// cheap enough to run over thousands of cells.
func aggregate(name string, xs []float64) Aggregate {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := stats.SummarizeSorted(s)
	return Aggregate{
		Metric: name,
		N:      sum.N,
		Mean:   sum.Mean,
		CI95:   stats.CI95(xs),
		Min:    sum.Min,
		P50:    sum.P50,
		P95:    sum.P95,
		P99:    sum.P99,
		Max:    sum.Max,
	}
}

// Metric returns the named aggregate of a cell, or false.
func (cr CellResult) Metric(name string) (Aggregate, bool) {
	for _, a := range cr.Metrics {
		if a.Metric == name {
			return a, true
		}
	}
	return Aggregate{}, false
}

func sortedKeys[V any](m map[string]V) []string {
	return slices.Sorted(maps.Keys(m))
}
