// Package sweep is the experiment-sweep engine: it takes a declarative
// run matrix (cells = backend x scenario, each with a Runner), executes
// the independent discrete-event simulations concurrently on a worker
// pool, and aggregates per-cell metrics across repetition seeds into
// mean, 95% confidence interval and tail percentiles.
//
// Determinism is the design constraint everything else serves. Each
// (cell, repetition) run gets its own SplitMix-derived sub-seed
// (SubSeed) and its own simulation instance — no RNG state is shared
// across goroutines — and results are written into pre-assigned slots,
// so a sweep's aggregated output is byte-identical whether it runs on
// one worker or on GOMAXPROCS workers.
package sweep

import (
	"fmt"
	"maps"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"polyraptor/internal/metrics"
	"polyraptor/internal/stats"
)

// Metrics is the named scalar outputs of one run. A runner may omit a
// metric on some repetitions (e.g. an interference ratio that could
// not be measured); aggregation then uses the repetitions that
// reported it.
type Metrics map[string]float64

// Runner executes one simulation for one derived seed. Implementations
// must be safe for concurrent calls: every Run builds its own
// simulation state and shares nothing mutable.
type Runner interface {
	Run(seed int64) (Metrics, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(seed int64) (Metrics, error)

// Run implements Runner.
func (f RunnerFunc) Run(seed int64) (Metrics, error) { return f(seed) }

// Hists is the histogram-valued output of one run, keyed by metric
// name: whole per-sample distributions (per-flow FCT, goodput, queue
// depth) rather than pre-reduced scalars. Returned histograms are
// owned by the sweep and must not be mutated after return.
type Hists map[string]*metrics.Histogram

// HistRunner is a Runner that additionally emits mergeable histograms.
// Aggregation merges each metric's histograms across repetitions in
// repetition order (histogram merge is associative and commutative,
// so the result is byte-identical at any parallelism) instead of
// concatenating raw samples.
type HistRunner interface {
	Runner
	RunHist(seed int64) (Metrics, Hists, error)
}

// HistRunnerFunc adapts a function to the HistRunner interface.
type HistRunnerFunc func(seed int64) (Metrics, Hists, error)

// Run implements Runner (histograms are computed and dropped — prefer
// running HistRunnerFuncs through a Matrix, which keeps them).
func (f HistRunnerFunc) Run(seed int64) (Metrics, error) {
	m, _, err := f(seed)
	return m, err
}

// RunHist implements HistRunner.
func (f HistRunnerFunc) RunHist(seed int64) (Metrics, Hists, error) { return f(seed) }

// Cell is one point of the run matrix: a scenario under a backend,
// plus any extra parameters worth echoing in reports.
type Cell struct {
	// Scenario names the workload (e.g. "incast", "storage").
	Scenario string
	// Backend names the transport under test (e.g. "polyraptor").
	Backend string
	// Params are extra axis values, rendered sorted by key.
	Params map[string]string
	// Runner executes the cell for one seed.
	Runner Runner
}

// Name returns the cell's display label: scenario/backend plus sorted
// params.
func (c Cell) Name() string {
	s := c.Scenario + "/" + c.Backend
	for _, k := range sortedKeys(c.Params) {
		s += fmt.Sprintf(" %s=%s", k, c.Params[k])
	}
	return s
}

// Matrix is a declarative sweep: cells x seeds, run with the given
// parallelism.
type Matrix struct {
	// Cells are the matrix points.
	Cells []Cell
	// Seeds is the repetition count per cell (the paper uses 5).
	Seeds int
	// BaseSeed anchors sub-seed derivation.
	BaseSeed int64
	// Parallelism caps concurrent runs; <= 0 means GOMAXPROCS.
	Parallelism int
	// Progress, when non-nil, is invoked once per completed
	// (cell, repetition) run. Calls are serialised under a mutex but
	// arrive in completion order, which depends on scheduling — and
	// Elapsed/ETA are wall-clock — so route them to stderr or a log,
	// never into the deterministic result stream.
	Progress func(p Progress)
}

// Progress describes one completed run of a sweep, for -v style
// reporting during long ladders.
type Progress struct {
	// Done counts finished runs; Total is cells x seeds.
	Done, Total int
	// Cell and Seed identify the run that just finished.
	Cell Cell
	// Seed is the derived sub-seed of the finished repetition.
	Seed int64
	// Elapsed is wall-clock time since Matrix.Run started; ETA
	// extrapolates the remaining runs at the observed rate.
	Elapsed, ETA time.Duration
}

// Aggregate is one metric reduced across repetitions.
type Aggregate struct {
	// Metric is the metric name.
	Metric string `json:"metric"`
	// N is the number of repetitions that reported the metric.
	N int `json:"n"`
	// Mean is the arithmetic mean; CI95 the Student-t 95% confidence
	// half-width over the N repetitions.
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	// Min, P50, P95, P99 and Max are order statistics over the N
	// repetitions.
	Min float64 `json:"min"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// HistAggregate is one histogram-valued metric merged across a cell's
// repetitions. Unlike Aggregate — order statistics over per-repetition
// scalars — its percentiles are over the pooled per-sample
// distribution, read from the merged histogram with bounded relative
// error (metrics.RelError).
type HistAggregate struct {
	// Metric is the metric name.
	Metric string `json:"metric"`
	// Count is the pooled sample count across repetitions.
	Count uint64 `json:"count"`
	// Mean, Min, P50, P95, P99, Max summarize the pooled distribution.
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	// Snapshot is the merged histogram itself (sparse), so downstream
	// consumers can re-merge or re-quantile without the raw samples.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
}

// CellResult is one cell's aggregated output.
type CellResult struct {
	Scenario string            `json:"scenario"`
	Backend  string            `json:"backend"`
	Params   map[string]string `json:"params,omitempty"`
	// Seeds are the derived per-repetition sub-seeds, in repetition
	// order (identical for every cell, so backends pair up).
	Seeds []int64 `json:"seeds"`
	// Metrics are the aggregates, sorted by metric name.
	Metrics []Aggregate `json:"metrics"`
	// Hists are the histogram-valued metrics of a HistRunner cell,
	// merged across repetitions in repetition order and sorted by
	// metric name.
	Hists []HistAggregate `json:"hists,omitempty"`
	// Samples holds the raw per-repetition values behind each
	// aggregate, in repetition order (repetitions that errored or did
	// not report the metric are skipped).
	Samples map[string][]float64 `json:"samples,omitempty"`
	// Errors records failed repetitions as "rep N: message".
	Errors []string `json:"errors,omitempty"`
}

// Result is a completed sweep.
type Result struct {
	BaseSeed int64        `json:"base_seed"`
	Seeds    int          `json:"seeds"`
	Cells    []CellResult `json:"cells"`
}

// ForEach runs n independent jobs on a pool of `parallelism` workers
// (<= 0 means GOMAXPROCS) and returns when all have finished. Jobs
// receive their index and must write results only to their own
// pre-assigned slots; under that contract the outcome is independent
// of scheduling order. A panicking job does not kill the worker
// goroutine (which would abort the process unrecoverably): the
// lowest-index panic is re-raised on the caller's goroutine after all
// jobs finish, so callers can recover exactly as they could from a
// serial loop.
func ForEach(n, parallelism int, job func(i int)) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	panics := make([]any, n)
	runJob := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		job(i)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runJob(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Run executes the matrix and aggregates each cell across its
// repetition seeds. A repetition that returns an error (or panics —
// the harness panics on malformed experiments) is recorded in the
// cell's Errors and excluded from aggregation; Run itself fails only
// on an invalid matrix.
func (m Matrix) Run() (*Result, error) {
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("sweep: matrix has no cells")
	}
	if m.Seeds < 1 {
		return nil, fmt.Errorf("sweep: Seeds must be >= 1, got %d", m.Seeds)
	}
	for i, c := range m.Cells {
		if c.Runner == nil {
			return nil, fmt.Errorf("sweep: cell %d (%s) has no runner", i, c.Name())
		}
	}
	seeds := SubSeeds(m.BaseSeed, m.Seeds)

	// One pre-assigned slot per (cell, rep): workers never contend and
	// aggregation order is independent of completion order.
	outs := make([]runOut, len(m.Cells)*m.Seeds)
	var progressMu sync.Mutex
	finished := 0
	// Wall clock feeds only the Progress callback (stderr reporting),
	// never the result stream, so sweep determinism is untouched.
	start := time.Now() //polyvet:allow simclock elapsed/ETA progress reporting only; never enters results
	ForEach(len(outs), m.Parallelism, func(i int) {
		cell := m.Cells[i/m.Seeds]
		seed := seeds[i%m.Seeds]
		outs[i] = runCell(cell, seed)
		if m.Progress != nil {
			progressMu.Lock()
			finished++
			elapsed := time.Since(start) //polyvet:allow simclock elapsed/ETA progress reporting only; never enters results
			var eta time.Duration
			if finished > 0 {
				eta = elapsed / time.Duration(finished) * time.Duration(len(outs)-finished)
			}
			m.Progress(Progress{
				Done: finished, Total: len(outs), Cell: cell, Seed: seed,
				Elapsed: elapsed, ETA: eta,
			})
			progressMu.Unlock()
		}
	})

	res := &Result{BaseSeed: m.BaseSeed, Seeds: m.Seeds}
	for ci, cell := range m.Cells {
		cr := CellResult{
			Scenario: cell.Scenario,
			Backend:  cell.Backend,
			Params:   cell.Params,
			Seeds:    seeds,
		}
		samples := map[string][]float64{}
		merged := map[string]*metrics.Histogram{}
		for rep := 0; rep < m.Seeds; rep++ {
			o := outs[ci*m.Seeds+rep]
			if o.err != nil {
				cr.Errors = append(cr.Errors, fmt.Sprintf("rep %d: %v", rep, o.err))
				continue
			}
			for name, v := range o.metrics {
				samples[name] = append(samples[name], v)
			}
			// Merge repetition histograms in repetition order. Merge is
			// associative and commutative, so even this fixed order is
			// belt-and-braces: any order would give identical state.
			//polyvet:orderfree each name accumulates into its own histogram; Merge is a commutative vector add (TestMergeOrderByteIdentical)
			for name, h := range o.hists {
				acc := merged[name]
				if acc == nil {
					acc = metrics.NewHistogram()
					merged[name] = acc
				}
				acc.Merge(h)
			}
		}
		for _, name := range sortedKeys(samples) {
			cr.Metrics = append(cr.Metrics, aggregate(name, samples[name]))
		}
		for _, name := range sortedKeys(merged) {
			cr.Hists = append(cr.Hists, histAggregate(name, merged[name]))
		}
		if len(samples) > 0 {
			cr.Samples = samples
		}
		res.Cells = append(res.Cells, cr)
	}
	return res, nil
}

// runOut is one repetition's output slot.
type runOut struct {
	metrics Metrics
	hists   Hists
	err     error
}

// runCell executes one repetition, converting runner panics into
// errors so one malformed cell cannot abort a whole sweep. Runners
// that implement HistRunner also contribute histograms.
func runCell(c Cell, seed int64) (o runOut) {
	defer func() {
		if r := recover(); r != nil {
			o = runOut{err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if hr, ok := c.Runner.(HistRunner); ok {
		o.metrics, o.hists, o.err = hr.RunHist(seed)
		return o
	}
	o.metrics, o.err = c.Runner.Run(seed)
	return o
}

// aggregate reduces one metric's repetition samples. The sample is
// sorted once and the percentiles taken through the sorted fast path —
// cheap enough to run over thousands of cells. NaN samples (a
// repetition that could not measure the metric) are skipped rather
// than poisoning the aggregate.
func aggregate(name string, xs []float64) Aggregate {
	xs = stats.DropNaN(xs)
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := stats.SummarizeSorted(s)
	return Aggregate{
		Metric: name,
		N:      sum.N,
		Mean:   sum.Mean,
		CI95:   stats.CI95(xs),
		Min:    sum.Min,
		P50:    sum.P50,
		P95:    sum.P95,
		P99:    sum.P99,
		Max:    sum.Max,
	}
}

// histAggregate summarizes one merged histogram through the shared
// Summary shape (quantiles within metrics.RelError of exact).
func histAggregate(name string, h *metrics.Histogram) HistAggregate {
	sum := stats.SummarizeHist(h)
	return HistAggregate{
		Metric:   name,
		Count:    h.Count(),
		Mean:     sum.Mean,
		Min:      sum.Min,
		P50:      sum.P50,
		P95:      sum.P95,
		P99:      sum.P99,
		Max:      sum.Max,
		Snapshot: h.Snapshot(),
	}
}

// Hist returns the named histogram aggregate of a cell, or false.
func (cr CellResult) Hist(name string) (HistAggregate, bool) {
	for _, a := range cr.Hists {
		if a.Metric == name {
			return a, true
		}
	}
	return HistAggregate{}, false
}

// Metric returns the named aggregate of a cell, or false.
func (cr CellResult) Metric(name string) (Aggregate, bool) {
	for _, a := range cr.Metrics {
		if a.Metric == name {
			return a, true
		}
	}
	return Aggregate{}, false
}

func sortedKeys[V any](m map[string]V) []string {
	return slices.Sorted(maps.Keys(m))
}
