package sweep

// Sub-seed derivation. Every repetition of a sweep gets its own seed
// derived from the matrix base seed through the SplitMix64 output
// function, so the per-repetition RNG streams are statistically
// independent (Seed and Seed+1 feed rand.NewSource states that are
// heavily correlated; mixing destroys that structure) and — because
// derivation is a pure function of (base, rep) — byte-identical
// whether repetitions run serially or on a parallel worker pool.
//
// The same repetition index maps to the same sub-seed in every cell,
// so two backends compared at rep r see identical workload draws —
// the paired-comparison property the paper's five-seed error bars
// assume.

// golden is 2^64/phi, the SplitMix64 stream increment.
const golden = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output permutation (Steele, Lea & Flood,
// "Fast splittable pseudorandom number generators", OOPSLA 2014).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SubSeed returns the seed for repetition rep (0-based) of a sweep
// with the given base seed.
func SubSeed(base int64, rep int) int64 {
	return int64(mix64(uint64(base) + uint64(rep+1)*golden))
}

// SubSeeds returns the first n repetition seeds for base.
func SubSeeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = SubSeed(base, i)
	}
	return out
}
