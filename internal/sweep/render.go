package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"polyraptor/internal/stats"
)

// Rendering. JSON is the machine-readable archive format: it contains
// no wall-clock or host-dependent fields, so the same matrix always
// marshals to the same bytes regardless of parallelism (map values are
// marshalled with sorted keys by encoding/json).

// JSON renders the result as indented, deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSV renders one row per (cell, metric) with the full aggregate, for
// external plotting.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,backend,params,metric,n,mean,ci95,min,p50,p95,p99,max\n")
	for _, c := range r.Cells {
		var params []string
		for _, k := range sortedKeys(c.Params) {
			params = append(params, k+"="+c.Params[k])
		}
		for _, a := range c.Metrics {
			fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
				c.Scenario, c.Backend, strings.Join(params, " "), a.Metric,
				a.N, a.Mean, a.CI95, a.Min, a.P50, a.P95, a.P99, a.Max)
		}
		// Histogram aggregates share the row shape; n is the pooled
		// per-sample count and the ci95 column is empty (percentiles
		// are over the pooled distribution, not per-rep scalars).
		for _, a := range c.Hists {
			fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%.6g,,%.6g,%.6g,%.6g,%.6g,%.6g\n",
				c.Scenario, c.Backend, strings.Join(params, " "), a.Metric+"_hist",
				a.Count, a.Mean, a.Min, a.P50, a.P95, a.P99, a.Max)
		}
	}
	return b.String()
}

// MetricNames returns the sorted union of metric names across cells.
func (r *Result) MetricNames() []string {
	seen := map[string]bool{}
	for _, c := range r.Cells {
		for _, a := range c.Metrics {
			seen[a.Metric] = true
		}
	}
	return sortedKeys(seen)
}

// Table renders the result through the existing aligned-table
// renderer: one row per cell, one mean and one ±CI95 column per
// metric. An empty metric list selects every metric in the result.
func (r *Result) Table(metrics []string) string {
	if len(metrics) == 0 {
		metrics = r.MetricNames()
	}
	rows := make([]string, len(r.Cells))
	for i, c := range r.Cells {
		rows[i] = c.Scenario + "/" + c.Backend
	}
	var cols []stats.Series
	for _, name := range metrics {
		mean := stats.Series{Name: name}
		ci := stats.Series{Name: "±CI95"}
		for _, c := range r.Cells {
			if a, ok := c.Metric(name); ok {
				mean.Points = append(mean.Points, a.Mean)
				ci.Points = append(ci.Points, a.CI95)
			} else {
				// RenderTable prints NaN points as "-".
				mean.Points = append(mean.Points, math.NaN())
				ci.Points = append(ci.Points, math.NaN())
			}
		}
		cols = append(cols, mean, ci)
	}
	table := stats.RenderTable("cell", rows, cols)
	var b strings.Builder
	fmt.Fprintf(&b, "== sweep: %d cells x %d seeds (base seed %d) ==\n",
		len(r.Cells), r.Seeds, r.BaseSeed)
	b.WriteString(table)
	if lines := r.histLines(); len(lines) > 0 {
		b.WriteString("\npooled distributions (histogram, rel err ≤ 0.8%):\n")
		for _, l := range lines {
			b.WriteString("  " + l + "\n")
		}
	}
	if errs := r.errorLines(); len(errs) > 0 {
		b.WriteString("\nerrors:\n")
		for _, e := range errs {
			b.WriteString("  " + e + "\n")
		}
	}
	return b.String()
}

// histLines renders each cell's pooled histogram aggregates as
// compact one-liners for the table view.
func (r *Result) histLines() []string {
	var out []string
	for _, c := range r.Cells {
		for _, a := range c.Hists {
			out = append(out, fmt.Sprintf("%s/%s %s: n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
				c.Scenario, c.Backend, a.Metric, a.Count, a.Mean, a.P50, a.P95, a.P99, a.Max))
		}
	}
	return out
}

// errorLines flattens per-cell errors into "cell: error" lines.
func (r *Result) errorLines() []string {
	var out []string
	for _, c := range r.Cells {
		for _, e := range c.Errors {
			out = append(out, c.Scenario+"/"+c.Backend+": "+e)
		}
	}
	return out
}
