package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeRunner records the seeds it was called with and returns metrics
// derived purely from the seed, so serial and parallel sweeps must
// agree exactly.
type fakeRunner struct {
	mu    sync.Mutex
	seeds []int64
}

func (f *fakeRunner) Run(seed int64) (Metrics, error) {
	f.mu.Lock()
	f.seeds = append(f.seeds, seed)
	f.mu.Unlock()
	return Metrics{
		"value":  float64(seed % 1000),
		"square": float64((seed % 100) * (seed % 100)),
	}, nil
}

func testMatrix(par int) Matrix {
	return Matrix{
		Cells: []Cell{
			{Scenario: "s1", Backend: "b1", Runner: &fakeRunner{}},
			{Scenario: "s1", Backend: "b2", Runner: &fakeRunner{}},
			{Scenario: "s2", Backend: "b1", Params: map[string]string{"k": "4"}, Runner: &fakeRunner{}},
		},
		Seeds:       5,
		BaseSeed:    7,
		Parallelism: par,
	}
}

// TestRunSerialParallelIdentical: the acceptance property — aggregated
// JSON is byte-identical at parallelism 1 and parallelism 8.
func TestRunSerialParallelIdentical(t *testing.T) {
	serial, err := testMatrix(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := testMatrix(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel JSON differ:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatal("serial and parallel CSV differ")
	}
	if serial.Table(nil) != parallel.Table(nil) {
		t.Fatal("serial and parallel tables differ")
	}
}

// TestRunSeedsAreDerived: every cell sees exactly the SubSeeds stream,
// once per repetition.
func TestRunSeedsAreDerived(t *testing.T) {
	m := testMatrix(4)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{}
	for _, s := range SubSeeds(m.BaseSeed, m.Seeds) {
		want[s] = true
	}
	for i, c := range m.Cells {
		fr := c.Runner.(*fakeRunner)
		if len(fr.seeds) != m.Seeds {
			t.Fatalf("cell %d ran %d times, want %d", i, len(fr.seeds), m.Seeds)
		}
		for _, s := range fr.seeds {
			if !want[s] {
				t.Fatalf("cell %d ran with underived seed %d", i, s)
			}
		}
	}
}

// TestRunAggregates: known samples reduce to the right mean and order
// statistics.
func TestRunAggregates(t *testing.T) {
	var rep atomic.Int64
	m := Matrix{
		Cells: []Cell{{Scenario: "s", Backend: "b", Runner: RunnerFunc(func(seed int64) (Metrics, error) {
			// 1, 2, 3, 4, 5 in some order; value independent of seed so
			// parallelism cannot reorder the aggregate.
			return Metrics{"v": float64(rep.Add(1))}, nil
		})}},
		Seeds:       5,
		Parallelism: 1,
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, ok := res.Cells[0].Metric("v")
	if !ok {
		t.Fatal("metric v missing")
	}
	if a.N != 5 || a.Mean != 3 || a.Min != 1 || a.Max != 5 || a.P50 != 3 {
		t.Fatalf("aggregate = %+v, want N=5 mean=3 min=1 p50=3 max=5", a)
	}
	if a.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0", a.CI95)
	}
}

// TestRunRecordsErrorsAndPanics: failing repetitions land in Errors,
// do not poison aggregation, and panics are converted to errors.
func TestRunRecordsErrorsAndPanics(t *testing.T) {
	m := Matrix{
		Cells: []Cell{
			{Scenario: "bad", Backend: "err", Runner: RunnerFunc(func(seed int64) (Metrics, error) {
				return nil, fmt.Errorf("boom %d", seed%2)
			})},
			{Scenario: "bad", Backend: "panic", Runner: RunnerFunc(func(seed int64) (Metrics, error) {
				panic("kaboom")
			})},
			{Scenario: "good", Backend: "ok", Runner: RunnerFunc(func(seed int64) (Metrics, error) {
				return Metrics{"v": 1}, nil
			})},
		},
		Seeds:       3,
		Parallelism: 2,
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Cells[0].Errors); n != 3 {
		t.Fatalf("error cell recorded %d errors, want 3", n)
	}
	if n := len(res.Cells[1].Errors); n != 3 {
		t.Fatalf("panic cell recorded %d errors, want 3", n)
	}
	if !strings.Contains(res.Cells[1].Errors[0], "kaboom") {
		t.Fatalf("panic error = %q", res.Cells[1].Errors[0])
	}
	if a, ok := res.Cells[2].Metric("v"); !ok || a.N != 3 {
		t.Fatalf("good cell aggregate = %+v ok=%v, want N=3", a, ok)
	}
	if len(res.Cells[0].Metrics) != 0 {
		t.Fatal("error cell should have no aggregates")
	}
}

// TestRunValidation: malformed matrices are rejected up front.
func TestRunValidation(t *testing.T) {
	if _, err := (Matrix{Seeds: 1}).Run(); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := (Matrix{Cells: []Cell{{Scenario: "s", Backend: "b", Runner: &fakeRunner{}}}}).Run(); err == nil {
		t.Fatal("Seeds=0 accepted")
	}
	if _, err := (Matrix{Cells: []Cell{{Scenario: "s", Backend: "b"}}, Seeds: 1}).Run(); err == nil {
		t.Fatal("nil runner accepted")
	}
}

// TestForEachCoversAllIndices at several parallelism levels, including
// parallelism > n and <= 0 (GOMAXPROCS default).
func TestForEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{-1, 0, 1, 2, 7, 64} {
		n := 23
		var hits [23]atomic.Int64
		ForEach(n, par, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("par=%d: index %d ran %d times", par, i, got)
			}
		}
	}
}

// TestTableMissingMetric: a metric absent from one cell renders as "-"
// without misaligning other rows.
func TestTableMissingMetric(t *testing.T) {
	m := Matrix{
		Cells: []Cell{
			{Scenario: "a", Backend: "x", Runner: RunnerFunc(func(int64) (Metrics, error) {
				return Metrics{"only_a": 1}, nil
			})},
			{Scenario: "b", Backend: "x", Runner: RunnerFunc(func(int64) (Metrics, error) {
				return Metrics{"shared": 2}, nil
			})},
		},
		Seeds:       2,
		Parallelism: 1,
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table(nil)
	for _, want := range []string{"a/x", "b/x", "only_a", "shared", "-"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestForEachPanicIsRecoverable: a job panicking on a worker goroutine
// must not abort the process — the lowest-index panic re-raises on the
// caller's goroutine, where recover works, and every other job still
// runs.
func TestForEachPanicIsRecoverable(t *testing.T) {
	for _, par := range []int{1, 4} {
		var ran [8]atomic.Int64
		got := func() (r any) {
			defer func() { r = recover() }()
			ForEach(8, par, func(i int) {
				ran[i].Add(1)
				if i == 2 || i == 5 {
					panic(fmt.Sprintf("job %d", i))
				}
			})
			return nil
		}()
		if par == 1 {
			// Serial path: panic propagates at first occurrence.
			if got != "job 2" {
				t.Fatalf("par=1: recovered %v, want job 2", got)
			}
			continue
		}
		if got != "job 2" {
			t.Fatalf("par=%d: recovered %v, want lowest-index panic job 2", par, got)
		}
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Fatalf("par=%d: job %d ran %d times after sibling panic", par, i, ran[i].Load())
			}
		}
	}
}
