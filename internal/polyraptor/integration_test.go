package polyraptor

import (
	"bytes"
	"math/rand"
	"testing"

	"polyraptor/internal/netsim"
	"polyraptor/internal/raptorq"
	"polyraptor/internal/topology"
)

// Cross-layer integration: the protocol simulator models symbols by
// ESI only, so these tests replay the simulator's *actual delivered
// symbol pattern* (which ESIs survived trimming, from which senders,
// in which order) into the real RaptorQ codec and assert the object
// decodes bit-exactly. This validates that the protocol and the codec
// agree about what a "useful symbol" is — the contract the whole
// design rests on.

// capture records delivered full-symbol ESIs at a host.
func capture(host *netsim.Host) *[]int64 {
	esis := &[]int64{}
	prev := host.Deliver
	host.Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.KindData && !p.Trimmed {
			*esis = append(*esis, p.Seq)
		}
		if prev != nil {
			prev(p)
		}
	}
	return esis
}

// replay feeds the first `limit` captured ESIs' real symbols into a
// real decoder and returns whether decode succeeds with the data
// intact.
func replay(t *testing.T, object []byte, symSize int, esis []int64, limit int) bool {
	t.Helper()
	k := (len(object) + symSize - 1) / symSize
	src := make([][]byte, k)
	for i := range src {
		sym := make([]byte, symSize)
		copy(sym, object[min(i*symSize, len(object)):min((i+1)*symSize, len(object))])
		src[i] = sym
	}
	enc, err := raptorq.NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := raptorq.NewDecoder(k, symSize)
	if err != nil {
		t.Fatal(err)
	}
	if limit > len(esis) {
		limit = len(esis)
	}
	for _, esi := range esis[:limit] {
		dec.AddSymbol(uint32(esi), enc.Symbol(uint32(esi)))
	}
	out, err := dec.Decode()
	if err != nil {
		return false
	}
	joined := make([]byte, 0, k*symSize)
	for _, s := range out {
		joined = append(joined, s...)
	}
	return bytes.Equal(joined[:len(object)], object)
}

func TestRealCodecDecodesSimulatedUnicastDelivery(t *testing.T) {
	st := topology.NewStar(2, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.SymbolPayload = 256 // keep K small for the real codec
	sys := NewSystem(st.Net, cfg, 1)
	object := make([]byte, 40_000)
	rand.New(rand.NewSource(4)).Read(object)

	// capture chains in front of the agent's deliver installed by
	// NewSystem, so the protocol still runs normally.
	esis := capture(st.Hosts[1])
	var done []CompletionEvent
	sys.StartUnicast(0, 1, int64(len(object)), collect(&done))
	st.Net.Eng.Run()
	if len(done) != 1 {
		t.Fatal("transfer did not complete")
	}
	// The simulator declared completion after done[0].Symbols distinct
	// symbols; the real codec must decode from that same prefix.
	if !replay(t, object, 256, *esis, done[0].Symbols) {
		t.Fatalf("real codec failed on the simulator's delivered set (%d symbols)", done[0].Symbols)
	}
	assertNoOpenSessions(t, sys)
}

func TestRealCodecDecodesSimulatedIncastDeliveryWithTrims(t *testing.T) {
	// Heavy incast forces trimming: many source symbols are lost and
	// replaced by repair symbols. The delivered pattern must still be
	// decodable by the real codec.
	cfg := netsim.DefaultConfig()
	cfg.DataQueueCap = 2 // aggressive trimming
	st := topology.NewStar(5, cfg)
	pcfg := DefaultConfig()
	pcfg.SymbolPayload = 256
	sys := NewSystem(st.Net, pcfg, 2)

	object := make([]byte, 30_000)
	rand.New(rand.NewSource(5)).Read(object)

	// Track per-flow delivery at the aggregator, chaining in front of
	// the agent's deliver.
	perFlow := map[int32][]int64{}
	agentDeliver := st.Hosts[0].Deliver
	st.Hosts[0].Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.KindData && !p.Trimmed {
			perFlow[p.Flow] = append(perFlow[p.Flow], p.Seq)
		}
		agentDeliver(p)
	}

	var done []CompletionEvent
	flows := map[int32]int{}
	for s := 1; s <= 4; s++ {
		f := sys.StartUnicast(s, 0, int64(len(object)), collect(&done))
		flows[f] = s
	}
	st.Net.Eng.Run()
	if len(done) != 4 {
		t.Fatalf("%d/4 sessions completed", len(done))
	}
	trims := 0
	for _, ev := range done {
		trims += ev.Trims
	}
	if trims == 0 {
		t.Fatal("incast with dataCap=2 produced no trims; test is vacuous")
	}
	for _, ev := range done {
		esis := perFlow[ev.Flow]
		if !replay(t, object, 256, esis, ev.Symbols) {
			t.Fatalf("flow %d: real codec failed on delivered set (%d symbols, %d trims)",
				ev.Flow, ev.Symbols, ev.Trims)
		}
	}
	assertNoOpenSessions(t, sys)
}

func TestRealCodecDecodesMultiSourceDelivery(t *testing.T) {
	// Multi-source partitioning: three senders' disjoint ESI schedules
	// interleave at the receiver; the union must decode.
	st := topology.NewStar(4, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.SymbolPayload = 256
	sys := NewSystem(st.Net, cfg, 3)
	object := make([]byte, 50_000)
	rand.New(rand.NewSource(6)).Read(object)

	esis := capture(st.Hosts[0])
	var done []CompletionEvent
	sys.StartMultiSource([]int{1, 2, 3}, 0, int64(len(object)), collect(&done))
	st.Net.Eng.Run()
	if len(done) != 1 {
		t.Fatal("multi-source transfer did not complete")
	}
	if !replay(t, object, 256, *esis, done[0].Symbols) {
		t.Fatalf("real codec failed on multi-source delivered set (%d symbols)", done[0].Symbols)
	}
	assertNoOpenSessions(t, sys)
}
