package polyraptor

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

func TestPullTimeoutRecoversFromControlLoss(t *testing.T) {
	// A pathologically small header queue drops pulls and trimmed
	// headers under burst, starving the credit loop; the receiver's
	// pull-timeout guard must recover and every session must finish.
	cfg := netsim.DefaultConfig()
	cfg.DataQueueCap = 2
	cfg.HeaderQueueCap = 4 // drops control traffic under any burst
	st := topology.NewStar(6, cfg)
	pcfg := DefaultConfig()
	pcfg.PullTimeout = 500 * time.Microsecond
	sys := NewSystem(st.Net, pcfg, 1)
	done := 0
	for s := 1; s <= 5; s++ {
		sys.StartUnicast(s, 0, 256<<10, func(ev CompletionEvent) { done++ })
	}
	st.Net.Eng.Run()
	if done != 5 {
		t.Fatalf("%d/5 sessions survived control-plane loss", done)
	}
}

func TestNoPullTimeoutWedgesUnderControlLoss(t *testing.T) {
	// Control: with the guard disabled the same scenario can wedge —
	// documents why the guard exists. We only assert the run
	// terminates (no live-lock) and that the guard test above is the
	// meaningful contrast, not a tautology.
	cfg := netsim.DefaultConfig()
	cfg.DataQueueCap = 2
	cfg.HeaderQueueCap = 4
	st := topology.NewStar(6, cfg)
	pcfg := DefaultConfig()
	pcfg.PullTimeout = 0 // disabled
	sys := NewSystem(st.Net, pcfg, 1)
	done := 0
	for s := 1; s <= 5; s++ {
		sys.StartUnicast(s, 0, 256<<10, func(ev CompletionEvent) { done++ })
	}
	st.Net.Eng.RunUntil(5 * time.Second)
	t.Logf("without guard: %d/5 completed (wedging is permitted)", done)
}

func TestTrimmedSymbolsStillClockPulls(t *testing.T) {
	// Under heavy trimming the credit loop must keep turning: every
	// trimmed header yields a pull, so sessions complete with extra
	// symbols rather than stalling.
	cfg := netsim.DefaultConfig()
	cfg.DataQueueCap = 1
	st := topology.NewStar(4, cfg)
	sys := NewSystem(st.Net, DefaultConfig(), 2)
	var evs []CompletionEvent
	for s := 1; s <= 3; s++ {
		sys.StartUnicast(s, 0, 512<<10, collect(&evs))
	}
	st.Net.Eng.Run()
	if len(evs) != 3 {
		t.Fatalf("%d/3 completed", len(evs))
	}
	trims := 0
	for _, ev := range evs {
		trims += ev.Trims
	}
	if trims == 0 {
		t.Fatal("dataCap=1 incast produced no trims; scenario is vacuous")
	}
}

func TestSessionsFreeStateOnCompletion(t *testing.T) {
	st := topology.NewStar(2, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 3)
	var evs []CompletionEvent
	for i := 0; i < 10; i++ {
		sys.StartUnicast(0, 1, 64<<10, collect(&evs))
	}
	st.Net.Eng.Run()
	if len(evs) != 10 {
		t.Fatalf("%d/10 completed", len(evs))
	}
	if n := len(sys.Agents[1].recvSess); n != 0 {
		t.Fatalf("%d receiver sessions leaked", n)
	}
	// Finished sender sessions are deleted outright (the PR 4 leak
	// fix), not merely marked finished.
	if n := len(sys.Agents[0].sendSess); n != 0 {
		t.Fatalf("%d sender sessions leaked", n)
	}
}

func TestLateDataAfterCompletionIsIgnored(t *testing.T) {
	// Inject a stray symbol for a finished flow: must not panic or
	// double-complete.
	st := topology.NewStar(2, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 4)
	count := 0
	sys.StartUnicast(0, 1, 64<<10, func(ev CompletionEvent) { count++ })
	st.Net.Eng.Run()
	st.Hosts[0].Send(&netsim.Packet{
		Flow: 0, Kind: netsim.KindData, Size: netsim.DataSize,
		Src: 0, Dst: 1, Group: -1, Seq: 99999,
	})
	st.Net.Eng.Run()
	if count != 1 {
		t.Fatalf("completions = %d", count)
	}
}

func TestUnknownFlowPacketsIgnored(t *testing.T) {
	st := topology.NewStar(2, netsim.DefaultConfig())
	NewSystem(st.Net, DefaultConfig(), 5)
	for _, kind := range []netsim.Kind{netsim.KindData, netsim.KindPull, netsim.KindCtrl, netsim.KindAck} {
		st.Hosts[0].Send(&netsim.Packet{
			Flow: 7777, Kind: kind, Size: netsim.HeaderSize,
			Src: 0, Dst: 1, Group: -1,
		})
	}
	st.Net.Eng.Run() // must not panic
}

func TestMulticastTwoReceiversOneStrugglesBriefly(t *testing.T) {
	// Transient congestion (short background burst) on one receiver
	// must not detach it when detachment is enabled with the default
	// threshold — detachment is for persistent stragglers.
	st := topology.NewStar(6, netsim.DefaultConfig())
	pcfg := DefaultConfig()
	pcfg.StragglerDetach = true
	sys := NewSystem(st.Net, pcfg, 6)
	sys.PruneGroup = st.PruneMulticastLeaf
	// Short burst: 64 KB onto receiver 2's downlink.
	sys.StartUnicast(4, 2, 64<<10, nil)
	receivers := []int{1, 2}
	g := st.InstallMulticastGroup(0, receivers)
	var evs []CompletionEvent
	sys.StartMulticast(0, receivers, g, 2<<20, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 2 {
		t.Fatalf("%d/2 receivers completed", len(evs))
	}
	for _, ev := range evs {
		if ev.Detached {
			t.Fatalf("receiver %d detached over a transient 64KB burst", ev.Receiver)
		}
	}
}

func TestConfigValidationPanics(t *testing.T) {
	st := topology.NewStar(2, netsim.DefaultConfig())
	bad := DefaultConfig()
	bad.InitWindow = 0
	assertPanics(t, func() { NewSystem(st.Net, bad, 1) }, "InitWindow=0")
	bad2 := DefaultConfig()
	bad2.SymbolPayload = 0
	assertPanics(t, func() { NewSystem(st.Net, bad2, 1) }, "SymbolPayload=0")
	sys := NewSystem(st.Net, DefaultConfig(), 1)
	assertPanics(t, func() { sys.StartMultiSource(nil, 0, 100, nil) }, "no senders")
	assertPanics(t, func() { sys.StartMulticast(0, nil, 0, 100, nil) }, "no receivers")
}

func assertPanics(t *testing.T, f func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}
