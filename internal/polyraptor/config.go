// Package polyraptor implements the paper's transport protocol on the
// netsim substrate: receiver-driven, RaptorQ-coded sessions for
// unicast, one-to-many (multicast) and many-to-one (multi-source)
// transfer patterns.
//
// Protocol summary (paper §2):
//
//   - A sender first blasts an initial window of encoding symbols at
//     line rate (source symbols first — the code is systematic, so a
//     lossless transfer incurs zero decoding latency).
//   - Receivers then take over: every arriving full or trimmed symbol
//     enqueues one pull request into a single per-host pull queue
//     shared by all inbound sessions; the queue is drained at the
//     receiver's link rate, so aggregate inbound traffic matches link
//     capacity regardless of how many sessions or senders exist —
//     this is what eliminates Incast.
//   - A lost (trimmed) symbol is never re-requested: the pull simply
//     elicits the next fresh symbol, which is equally useful for
//     decoding (rateless property).
//   - Multicast: the sender aggregates pulls and multicasts a new
//     symbol only after every receiver has pulled; optional straggler
//     detachment (the paper's proposed extension) moves a lagging
//     receiver onto a private unicast tail.
//   - Multi-source: source symbols are partitioned across the n
//     senders and repair ESIs are drawn from disjoint residue classes,
//     so receivers never see duplicates without any coordination.
//
// The protocol simulation models symbols by ESI and applies the
// measured decode-overhead model from internal/raptorq
// (DecodeFailureProb); the real codec runs in internal/rqudp and the
// examples.
package polyraptor

import (
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/raptorq"
	"polyraptor/internal/sim"
)

// Config holds protocol parameters.
type Config struct {
	// SymbolPayload is the payload bytes carried per data packet.
	SymbolPayload int
	// InitWindow is the number of symbols blasted unsolicited at
	// session start ("a whole window ... at line rate for the first
	// RTT"). Roughly one BDP.
	InitWindow int
	// FailProb maps decode overhead (received-K) to failure
	// probability. Defaults to raptorq.DecodeFailureProb.
	FailProb func(overhead int) float64
	// PullTimeout re-arms a receiver whose session has gone quiet
	// (e.g. every in-flight pull was dropped). Zero disables.
	PullTimeout sim.Time
	// StragglerDetach enables the paper's proposed extension: multicast
	// receivers whose pull deficit exceeds StragglerThreshold are
	// detached from the group and served on a private unicast tail.
	StragglerDetach bool
	// StragglerThreshold is the pull deficit (in symbols) that marks a
	// receiver as lagging.
	StragglerThreshold int
	// StragglerGrace is how long the deficit must persist before the
	// receiver is actually detached — hysteresis that distinguishes a
	// transient queue from a persistently congested receiver.
	StragglerGrace sim.Time
	// RandomESI disables the multi-source partitioning scheme and lets
	// every sender seed its repair ESIs independently at random
	// (ablation A3: quantifies duplicate-symbol waste).
	RandomESI bool
	// DecodeLatency, if non-nil, adds a post-receipt decode delay as a
	// function of K (the paper lists decode complexity as future work;
	// exposed for ablations).
	DecodeLatency func(k int) sim.Time
}

// DefaultConfig returns the parameters used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		SymbolPayload: netsim.PayloadSize,
		// One BDP of the longest fat-tree path (6 store-and-forward
		// hops at 1 Gbps/10 µs gives an unloaded RTT of ~200 µs, i.e.
		// ~17 full-size packets).
		InitWindow:  20,
		FailProb:    raptorq.DecodeFailureProb,
		PullTimeout: 2 * time.Millisecond,
		// A receiver whose banked pull credits lag the healthiest
		// receiver by more than this is a straggler. The deficit is
		// structurally bounded by InitWindow, so the threshold must sit
		// below it.
		StragglerDetach:    false,
		StragglerThreshold: 12,
		StragglerGrace:     3 * time.Millisecond,
	}
}

// CompletionEvent reports one receiver finishing one session.
type CompletionEvent struct {
	// Flow is the session ID.
	Flow int32
	// Receiver is the host that completed.
	Receiver int
	// Start and End bound the transfer at this receiver.
	Start, End sim.Time
	// Bytes is the object size.
	Bytes int64
	// Symbols is the number of distinct full symbols received.
	Symbols int
	// Trims is the number of trimmed headers this receiver saw.
	Trims int
	// Detached reports whether this receiver finished on a straggler
	// unicast tail.
	Detached bool
}

// Goodput returns application goodput in bits per second.
func (c CompletionEvent) Goodput() float64 {
	d := c.End - c.Start
	if d <= 0 {
		return 0
	}
	return float64(c.Bytes*8) / d.Seconds() / 1e9 * 1e9
}

// GoodputGbps returns application goodput in Gbit/s.
func (c CompletionEvent) GoodputGbps() float64 {
	d := (c.End - c.Start).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(c.Bytes*8) / d / 1e9
}
