package polyraptor

import (
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
	"polyraptor/internal/telemetry"
)

// doneRetryFallback paces completion-ctrl retransmission when the
// stall guard (Config.PullTimeout) is disabled.
const doneRetryFallback = 2 * time.Millisecond

// receiverSession is the receiving half of a Polyraptor session at one
// host. It counts distinct full symbols, issues one pull per arrival
// through the host's shared pacer, and completes once enough symbols
// for a successful decode (K + sampled overhead) have arrived.
type receiverSession struct {
	sys      *System
	flow     int32
	receiver int
	bytes    int64
	k        int
	need     int
	senders  []int
	onDone   func(CompletionEvent)

	start       sim.Time
	distinct    int
	trims       int
	lastArrival sim.Time
	done        bool
	detached    bool
	// guardRR rotates the stall guard's round-robin start across
	// firings so every sender eventually receives re-primed pulls
	// even when the burst is clamped below the sender count.
	guardRR int

	// seen tracks distinct ESIs; allocated only when duplicates are
	// possible (RandomESI ablation), since the partitioning scheme
	// makes duplicates structurally impossible.
	seen map[int64]struct{}

	timeout sim.Timer

	// pendingDone holds the sender hosts that have not yet acknowledged
	// our completion ctrl. The ctrl is a single unreliable packet; were
	// it simply fired and forgotten, a trimmed-queue drop would leave a
	// multicast sender waiting on this receiver's pulls forever (its
	// round can never complete), so complete() retransmits the ctrl on
	// a timer until every sender has acked and only then tears the
	// session down.
	pendingDone map[int32]struct{}
	doneRetry   sim.Timer
}

// onData processes an arriving symbol packet (full or trimmed).
func (rs *receiverSession) onData(pkt *netsim.Packet) {
	if rs.done {
		return
	}
	if rs.detached && pkt.Group >= 0 {
		// We left the multicast group; in-flight copies delivered
		// before the tree prune took effect are ignored (the private
		// unicast tail is our only feed now).
		return
	}
	rs.lastArrival = rs.sys.Net.Now()
	if pkt.Trimmed {
		// The payload was cut by a congested queue. Never re-request:
		// just pull the next fresh symbol (rateless recovery).
		rs.trims++
		rs.sys.Net.Rec.Record(rs.lastArrival, rs.flow, telemetry.EvTrim, int32(rs.receiver), pkt.Seq)
		rs.pullFrom(pkt)
		return
	}
	if rs.seen != nil {
		if _, dup := rs.seen[pkt.Seq]; dup {
			// Duplicate (possible only in the RandomESI ablation):
			// wasted capacity, still pull replacement.
			rs.sys.Net.Rec.Record(rs.lastArrival, rs.flow, telemetry.EvDup, int32(rs.receiver), pkt.Seq)
			rs.pullFrom(pkt)
			return
		}
		rs.seen[pkt.Seq] = struct{}{}
	}
	rs.distinct++
	rs.sys.Net.Rec.Record(rs.lastArrival, rs.flow, telemetry.EvSymbol, int32(rs.receiver), pkt.Seq)
	if rs.distinct >= rs.need {
		rs.complete()
		return
	}
	rs.pullFrom(pkt)
}

// pullFrom enqueues one pull credit addressed to the sender of the
// packet that just arrived. Arrival-clocking the pull target is the
// paper's "natural load balancing": a sender on a congested path
// delivers fewer symbols, hence receives fewer pulls, contributing
// exactly its available capacity.
func (rs *receiverSession) pullFrom(pkt *netsim.Packet) {
	dst := pkt.Src
	rs.sys.Agents[rs.receiver].enqueuePull(rs.flow, dst)
}

// armTimeout schedules the stall guard.
func (rs *receiverSession) armTimeout() {
	d := rs.sys.Cfg.PullTimeout
	if d <= 0 {
		return
	}
	rs.lastArrival = rs.sys.Net.Now()
	var fire func()
	fire = func() {
		if rs.done {
			return
		}
		now := rs.sys.Net.Now()
		if now-rs.lastArrival >= d {
			// Session stalled: every in-flight pull or symbol was
			// dropped. Re-prime up to a full window of pulls, sized by
			// the known symbol deficit and spread round-robin across
			// senders. The deficit-aware burst is what lets a session
			// ride through a path blackhole (chaos runs): with fraction
			// f of sprayed packets blackholed, a single re-primed pull
			// chain dies after ~1/f symbols, while a window of W
			// independent chains sustains ~W(1-f)² arrivals per
			// timeout. Over-pulling is harmless — every elicited symbol
			// is fresh (rateless), so the only cost is capacity the
			// stalled session wasn't using anyway. lastArrival is
			// deliberately NOT updated here — only a data arrival
			// (onData) moves it — so if the re-primed pulls or their
			// symbols are lost too, now-lastArrival still exceeds d at
			// the next firing and the guard keeps re-firing every d
			// until a symbol actually lands. Pinned by
			// TestStallGuardRefiresEveryPullTimeout.
			deficit := rs.need - rs.distinct
			if deficit < len(rs.senders) {
				deficit = len(rs.senders)
			}
			if w := rs.sys.Cfg.InitWindow; deficit > w {
				deficit = w
			}
			// Rotate the round-robin start across firings: with more
			// senders than the clamped burst, a fixed start would
			// starve the senders past the window forever (fatal when
			// the early senders are the unreachable ones).
			rs.sys.Net.Rec.Record(now, rs.flow, telemetry.EvStall, int32(rs.receiver), int64(deficit))
			rs.sys.StallHist.Record((now - rs.lastArrival).Seconds())
			start := rs.guardRR
			for i := 0; i < deficit; i++ {
				s := rs.senders[(start+i)%len(rs.senders)]
				rs.sys.Agents[rs.receiver].enqueuePull(rs.flow, rs.sys.Agents[s].host.ID)
			}
			rs.guardRR = (start + deficit) % len(rs.senders)
		}
		rs.timeout = rs.sys.Net.Eng.After(d, fire)
	}
	rs.timeout = rs.sys.Net.Eng.After(d, fire)
}

// complete finishes the session at this receiver: it notifies every
// sender with a control packet (freeing multicast aggregation from
// waiting on us) and reports the completion event. The ctrl is
// retransmitted until each sender acknowledges it (see pendingDone);
// the session object itself is released by onDoneAck once the last
// ack arrives, so the agent map holds no finished sessions at rest.
func (rs *receiverSession) complete() {
	rs.done = true
	rs.timeout.Cancel()
	end := rs.sys.Net.Now()
	if dl := rs.sys.Cfg.DecodeLatency; dl != nil {
		end += dl(rs.k)
	}
	rs.pendingDone = make(map[int32]struct{}, len(rs.senders))
	for _, s := range rs.senders {
		rs.pendingDone[rs.sys.Agents[s].host.ID] = struct{}{}
	}
	rs.sys.Net.Rec.CloseFlow(end, rs.flow, int32(rs.receiver))
	rs.sendDoneCtrl()
	rs.armDoneRetry()
	if rs.onDone != nil {
		ev := CompletionEvent{
			Flow:     rs.flow,
			Receiver: rs.receiver,
			Start:    rs.start,
			End:      end,
			Bytes:    rs.bytes,
			Symbols:  rs.distinct,
			Trims:    rs.trims,
			Detached: rs.detached,
		}
		rs.onDone(ev)
	}
}

// sendDoneCtrl sends one completion ctrl to every sender that has not
// acked yet. Iteration follows the senders slice (not the pending map)
// so packet emission order is deterministic per seed.
func (rs *receiverSession) sendDoneCtrl() {
	for _, s := range rs.senders {
		dst := rs.sys.Agents[s].host.ID
		if _, waiting := rs.pendingDone[dst]; !waiting {
			continue
		}
		rs.sys.Net.Rec.Record(rs.sys.Net.Now(), rs.flow, telemetry.EvCtrl, int32(rs.receiver), int64(dst))
		ctrl := rs.sys.Net.AllocPacket()
		ctrl.Flow = rs.flow
		ctrl.Kind = netsim.KindCtrl
		ctrl.Size = netsim.HeaderSize
		ctrl.Src = int32(rs.receiver)
		ctrl.Dst = dst
		ctrl.Group = -1
		ctrl.Spray = true
		rs.sys.Agents[rs.receiver].host.Send(ctrl)
	}
}

// armDoneRetry schedules the next ctrl retransmission. The cadence
// reuses PullTimeout (the stall guard's clock); with the guard
// disabled a fixed fallback keeps the handshake live — an unacked
// completion must never be able to wedge the group.
func (rs *receiverSession) armDoneRetry() {
	d := rs.sys.Cfg.PullTimeout
	if d <= 0 {
		d = doneRetryFallback
	}
	rs.doneRetry = rs.sys.Net.Eng.After(d, func() {
		if len(rs.pendingDone) == 0 {
			return
		}
		rs.sendDoneCtrl()
		rs.armDoneRetry()
	})
}

// onDoneAck records one sender's acknowledgement of our completion
// ctrl. Once every sender has acked, the session is removed from the
// agent — the other half of the lifecycle contract asserted by
// System.OpenSessions.
func (rs *receiverSession) onDoneAck(from int32) {
	if !rs.done {
		return // stray ack for a live session; ignore
	}
	if _, waiting := rs.pendingDone[from]; !waiting {
		return // duplicate ack (our retransmit crossed their ack)
	}
	rs.sys.Net.Rec.Record(rs.sys.Net.Now(), rs.flow, telemetry.EvCtrlAck, int32(rs.receiver), int64(from))
	delete(rs.pendingDone, from)
	if len(rs.pendingDone) == 0 {
		rs.doneRetry.Cancel()
		delete(rs.sys.Agents[rs.receiver].recvSess, rs.flow)
	}
}
