package polyraptor

import (
	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
)

// receiverSession is the receiving half of a Polyraptor session at one
// host. It counts distinct full symbols, issues one pull per arrival
// through the host's shared pacer, and completes once enough symbols
// for a successful decode (K + sampled overhead) have arrived.
type receiverSession struct {
	sys      *System
	flow     int32
	receiver int
	bytes    int64
	k        int
	need     int
	senders  []int
	onDone   func(CompletionEvent)

	start       sim.Time
	distinct    int
	trims       int
	lastArrival sim.Time
	done        bool
	detached    bool

	// seen tracks distinct ESIs; allocated only when duplicates are
	// possible (RandomESI ablation), since the partitioning scheme
	// makes duplicates structurally impossible.
	seen map[int64]struct{}

	timeout      sim.Timer
	timeoutArmed bool
}

// onData processes an arriving symbol packet (full or trimmed).
func (rs *receiverSession) onData(pkt *netsim.Packet) {
	if rs.done {
		return
	}
	if rs.detached && pkt.Group >= 0 {
		// We left the multicast group; in-flight copies delivered
		// before the tree prune took effect are ignored (the private
		// unicast tail is our only feed now).
		return
	}
	rs.lastArrival = rs.sys.Net.Now()
	if pkt.Trimmed {
		// The payload was cut by a congested queue. Never re-request:
		// just pull the next fresh symbol (rateless recovery).
		rs.trims++
		rs.pullFrom(pkt)
		return
	}
	if rs.seen != nil {
		if _, dup := rs.seen[pkt.Seq]; dup {
			// Duplicate (possible only in the RandomESI ablation):
			// wasted capacity, still pull replacement.
			rs.pullFrom(pkt)
			return
		}
		rs.seen[pkt.Seq] = struct{}{}
	}
	rs.distinct++
	if rs.distinct >= rs.need {
		rs.complete()
		return
	}
	rs.pullFrom(pkt)
}

// pullFrom enqueues one pull credit addressed to the sender of the
// packet that just arrived. Arrival-clocking the pull target is the
// paper's "natural load balancing": a sender on a congested path
// delivers fewer symbols, hence receives fewer pulls, contributing
// exactly its available capacity.
func (rs *receiverSession) pullFrom(pkt *netsim.Packet) {
	dst := pkt.Src
	rs.sys.Agents[rs.receiver].enqueuePull(rs.flow, dst)
}

// armTimeout schedules the stall guard.
func (rs *receiverSession) armTimeout() {
	d := rs.sys.Cfg.PullTimeout
	if d <= 0 {
		return
	}
	rs.timeoutArmed = true
	rs.lastArrival = rs.sys.Net.Now()
	var fire func()
	fire = func() {
		if rs.done {
			return
		}
		now := rs.sys.Net.Now()
		if now-rs.lastArrival >= d {
			// Session stalled: every in-flight pull or symbol was
			// dropped. Re-prime one pull per sender.
			for _, s := range rs.senders {
				rs.sys.Agents[rs.receiver].enqueuePull(rs.flow, rs.sys.Agents[s].host.ID)
			}
		}
		rs.timeout = rs.sys.Net.Eng.After(d, fire)
	}
	rs.timeout = rs.sys.Net.Eng.After(d, fire)
}

// complete finishes the session at this receiver: it notifies every
// sender with a control packet (freeing multicast aggregation from
// waiting on us) and reports the completion event.
func (rs *receiverSession) complete() {
	rs.done = true
	rs.timeout.Cancel()
	end := rs.sys.Net.Now()
	if dl := rs.sys.Cfg.DecodeLatency; dl != nil {
		end += dl(rs.k)
	}
	for _, s := range rs.senders {
		rs.sys.Agents[rs.receiver].host.Send(&netsim.Packet{
			Flow:  rs.flow,
			Kind:  netsim.KindCtrl,
			Size:  netsim.HeaderSize,
			Src:   int32(rs.receiver),
			Dst:   rs.sys.Agents[s].host.ID,
			Group: -1,
			Spray: true,
		})
	}
	delete(rs.sys.Agents[rs.receiver].recvSess, rs.flow)
	if rs.onDone != nil {
		ev := CompletionEvent{
			Flow:     rs.flow,
			Receiver: rs.receiver,
			Start:    rs.start,
			End:      end,
			Bytes:    rs.bytes,
			Symbols:  rs.distinct,
			Trims:    rs.trims,
			Detached: rs.detached,
		}
		rs.onDone(ev)
	}
}
