package polyraptor

import (
	"maps"
	"math/rand"
	"slices"

	"polyraptor/internal/netsim"
)

// senderSession is one sender's half of a Polyraptor session. A
// unicast or multi-source sender serves exactly one receiver; a
// multicast sender serves a receiver set with pull aggregation.
type senderSession struct {
	sys  *System
	flow int32
	src  int // this sender's host ID
	k    int

	// Symbol generation cursors. Source symbols [srcNext, srcEnd) are
	// sent first (systematic), then repair ESIs repairNext, +stride, …
	// Multi-source senders get disjoint source partitions and disjoint
	// repair residue classes, which guarantees duplicate-free delivery
	// without coordination.
	srcNext, srcEnd int64
	repairNext      int64
	stride          int64
	senderIdx       int32
	randESI         *rand.Rand // ablation: independent random repair ESIs

	// Unicast / multi-source target.
	dst int32

	// Multicast state.
	group     int32 // -1 for unicast
	receivers []int32
	pulls     map[int32]int // outstanding pull credits per receiver
	doneRecv  int           // receivers that reported completion
	detached  map[int32]*detachedTail
	// emitted counts symbols sent; the straggler detector compares its
	// growth against the link's symbol rate.
	emitted int64
	// graceArmed guards the single outstanding rate-measurement timer;
	// emittedAtArm is the emission count when it was armed.
	graceArmed   bool
	emittedAtArm int64

	finished bool
}

// detachedTail serves a straggler receiver privately after detachment:
// every pull from it yields one fresh unicast repair symbol.
type detachedTail struct {
	served int
}

// nextESI advances the symbol cursor: source partition first, then
// repair symbols.
func (ss *senderSession) nextESI() int64 {
	if ss.srcNext < ss.srcEnd {
		esi := ss.srcNext
		ss.srcNext++
		return esi
	}
	if ss.randESI != nil {
		// Ablation A3: independent random repair ESI (collisions across
		// senders possible and wasted).
		return int64(ss.k) + int64(ss.randESI.Int63n(int64(ss.k)*8+1024))
	}
	esi := ss.repairNext
	ss.repairNext += ss.stride
	return esi
}

// sendInitialWindow blasts the first window unsolicited at line rate
// (the host NIC serializes back-to-back), covering the first RTT
// before receiver pulls take over.
func (ss *senderSession) sendInitialWindow() {
	n := ss.sys.Cfg.InitWindow
	for i := 0; i < n; i++ {
		ss.emit(ss.nextESI(), -1)
	}
}

// emit sends one symbol: multicast over the group, or unicast to a
// specific receiver (to >= 0 overrides the default destination, used
// for straggler tails).
func (ss *senderSession) emit(esi int64, to int32) {
	ss.emitted++
	pkt := ss.sys.Net.AllocPacket()
	pkt.Flow = ss.flow
	pkt.Kind = netsim.KindData
	pkt.Size = netsim.DataSize
	pkt.Src = ss.sys.Agents[ss.src].host.ID
	pkt.Group = -1
	pkt.Spray = true
	pkt.Seq = esi
	pkt.Sender = ss.senderIdx
	switch {
	case to >= 0:
		pkt.Dst = to
	case ss.group >= 0:
		pkt.Group = ss.group
	default:
		pkt.Dst = ss.dst
	}
	ss.sys.Agents[ss.src].host.Send(pkt)
}

// onPull handles one pull credit from a receiver.
func (ss *senderSession) onPull(pkt *netsim.Packet) {
	if ss.finished {
		return
	}
	if ss.group < 0 {
		// Unicast / multi-source: one pull, one fresh symbol.
		ss.emit(ss.nextESI(), -1)
		return
	}
	from := pkt.Src
	if tail, ok := ss.detached[from]; ok {
		// Straggler tail: serve privately.
		tail.served++
		ss.emit(ss.nextESI(), from)
		return
	}
	if _, ok := ss.pulls[from]; !ok {
		return // completed receiver's stale pull
	}
	ss.pulls[from]++
	ss.pump()
}

// pump multicasts one new symbol for every full round of pulls (one
// from each attached receiver), and applies straggler detachment when
// enabled.
func (ss *senderSession) pump() {
	for {
		minP, maxP := int(^uint(0)>>1), 0
		for _, c := range ss.pulls {
			minP = min(minP, c)
			maxP = max(maxP, c)
		}
		if len(ss.pulls) == 0 {
			return
		}
		if ss.sys.Cfg.StragglerDetach && len(ss.pulls) > 1 &&
			maxP-minP > ss.sys.Cfg.StragglerThreshold {
			// A deficit exists. It may be a harmless leftover of a past
			// transient (banked credits never drain under one-for-one
			// round consumption), so arm a rate measurement: only if
			// the group's emission rate over the grace window stays far
			// below link rate is someone *persistently* throttling the
			// group — then detach (see armGraceCheck).
			ss.armGraceCheck()
		}
		if minP < 1 {
			return
		}
		for r := range ss.pulls {
			ss.pulls[r]--
		}
		ss.emit(ss.nextESI(), -1)
	}
}

// armGraceCheck measures the group's emission rate over one grace
// window. If, at expiry, a pull deficit still exists AND the group
// emitted at under half the link's symbol rate, the minimum-credit
// receivers are persistent stragglers: prune them from the tree and
// serve them over private unicast tails. A transient (burst-delayed)
// receiver passes the check because emission returns to line rate as
// soon as its queue drains.
func (ss *senderSession) armGraceCheck() {
	if ss.graceArmed {
		return
	}
	ss.graceArmed = true
	ss.emittedAtArm = ss.emitted
	ss.sys.Net.Eng.After(ss.sys.Cfg.StragglerGrace, func() {
		ss.graceArmed = false
		if ss.finished || len(ss.pulls) <= 1 {
			return
		}
		minP, maxP := int(^uint(0)>>1), 0
		for _, c := range ss.pulls {
			minP = min(minP, c)
			maxP = max(maxP, c)
		}
		if maxP-minP <= ss.sys.Cfg.StragglerThreshold {
			return
		}
		// Symbols a full-rate group would have emitted in the window.
		linkSymbolsPerSec := float64(ss.sys.Net.Cfg.LinkRate) / (8 * float64(netsim.DataSize))
		expected := linkSymbolsPerSec * ss.sys.Cfg.StragglerGrace.Seconds()
		if float64(ss.emitted-ss.emittedAtArm) >= expected/2 {
			return // group is healthy; deficit is historical
		}
		// Detach in receiver-ID order: each detachment draws sequential
		// ESIs via emit, so when several receivers tie at minP the
		// emission order — and therefore which ESI serves which tail —
		// must not depend on map iteration order.
		for _, r := range slices.Sorted(maps.Keys(ss.pulls)) {
			c := ss.pulls[r]
			if c == minP {
				ss.detached[r] = &detachedTail{}
				delete(ss.pulls, r)
				ss.sys.detachReceiver(ss.flow, ss.group, r)
				// Honour its already-banked credits privately.
				for i := 0; i < c; i++ {
					ss.emit(ss.nextESI(), r)
				}
			}
		}
		ss.pump()
	})
}

// onReceiverDone removes a completed receiver from pull aggregation so
// the group is never throttled by a receiver that no longer pulls.
// Completion ctrls are retransmitted until acked, so duplicates are
// routine here: a receiver already absent from both pulls and detached
// has been counted and must not be counted again.
func (ss *senderSession) onReceiverDone(host int32) {
	if ss.finished {
		return
	}
	if ss.group < 0 {
		ss.finished = true
		ss.finish()
		return
	}
	_, attached := ss.pulls[host]
	_, tailed := ss.detached[host]
	if !attached && !tailed {
		return // duplicate ctrl from an already-counted receiver
	}
	delete(ss.pulls, host)
	delete(ss.detached, host)
	ss.doneRecv++
	if ss.doneRecv >= len(ss.receivers) {
		ss.finished = true
		ss.finish()
		return
	}
	// Remaining receivers may have a banked round ready.
	ss.pump()
}

// finish releases the completed session from its agent's map. Without
// this, every flow in a long run leaked a senderSession (plus its
// pulls/detached maps): onReceiverDone used to set finished and stop,
// and nothing ever deleted the entry.
func (ss *senderSession) finish() {
	delete(ss.sys.Agents[ss.src].sendSess, ss.flow)
}
