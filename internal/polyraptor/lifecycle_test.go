package polyraptor

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
	"polyraptor/internal/topology"
)

// Session-lifecycle regression tests: finished sessions must leave the
// agent maps (the sender-session leak), completion must survive a
// dropped ctrl or ack packet (the completion-loss deadlock), and the
// stall guard's re-fire cadence is pinned.

// assertNoOpenSessions fails the test if any agent still holds a
// session after the simulation has drained.
func assertNoOpenSessions(t *testing.T, sys *System) {
	t.Helper()
	send, recv := sys.OpenSessions()
	if send != 0 || recv != 0 {
		t.Fatalf("leaked sessions: %d sender, %d receiver", send, recv)
	}
}

func TestSessionLifecycleNoLeak(t *testing.T) {
	// N sequential flows of every pattern over one System: the agent
	// maps and the engine's pending-event count must return to their
	// empty baseline. Before the fix every flow leaked a senderSession
	// (onReceiverDone set finished without deleting the map entry).
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(ft.Net, DefaultConfig(), 11)
	sys.PruneGroup = ft.PruneMulticastLeaf
	if p := ft.Net.Eng.Pending(); p != 0 {
		t.Fatalf("pending baseline = %d, want 0", p)
	}

	var evs []CompletionEvent
	flows := 0
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 3 * time.Millisecond
		i := i
		ft.Net.Eng.At(at, func() {
			switch i % 3 {
			case 0:
				sys.StartUnicast(0, 5+(i%8), 64<<10, collect(&evs))
				flows++
			case 1:
				sys.StartMultiSource([]int{4, 8, 12}, 1, 96<<10, collect(&evs))
				flows++
			default:
				receivers := []int{6, 10, 14}
				g := ft.InstallMulticastGroup(2, receivers)
				sys.StartMulticast(2, receivers, g, 64<<10, collect(&evs))
				flows += 3 // one completion per receiver
			}
		})
	}
	ft.Net.Eng.Run()
	if len(evs) != flows {
		t.Fatalf("completions = %d, want %d", len(evs), flows)
	}
	assertNoOpenSessions(t, sys)
	if p := ft.Net.Eng.Pending(); p != 0 {
		t.Fatalf("pending events after drain = %d, want baseline 0", p)
	}
}

// dropFirst wraps a host's Deliver to swallow the first `n` packets of
// the given kind, simulating trimmed-queue loss of control traffic.
// It returns a counter of how many packets were dropped.
func dropFirst(host *netsim.Host, kind netsim.Kind, n int) *int {
	dropped := 0
	prev := host.Deliver
	host.Deliver = func(p *netsim.Packet) {
		if p.Kind == kind && dropped < n {
			dropped++
			return
		}
		if prev != nil {
			prev(p)
		}
	}
	return &dropped
}

func TestMulticastCompletesDespiteDroppedCtrl(t *testing.T) {
	// The deadlock scenario: the first receiver to finish notifies the
	// multicast sender with a single ctrl packet; if that packet is
	// lost the sender keeps the finished receiver in ss.pulls, pump()
	// can never complete a round, and the survivors' stall guards
	// re-fire forever without progress. The retransmit/ack handshake
	// must recover the group.
	st := topology.NewStar(4, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 12)
	sys.PruneGroup = st.PruneMulticastLeaf

	dropped := dropFirst(st.Hosts[0], netsim.KindCtrl, 1)
	receivers := []int{1, 2, 3}
	g := st.InstallMulticastGroup(0, receivers)
	var evs []CompletionEvent
	sys.StartMulticast(0, receivers, g, 1<<20, collect(&evs))
	// RunUntil bounds the test: the pre-fix livelock (stall guards
	// re-firing forever) would otherwise keep Run() from returning.
	st.Net.Eng.RunUntil(5 * time.Second)
	if *dropped != 1 {
		t.Fatalf("dropped %d ctrl packets, want exactly 1; test is vacuous", *dropped)
	}
	if len(evs) != 3 {
		t.Fatalf("completions = %d, want 3 despite the dropped ctrl", len(evs))
	}
	st.Net.Eng.Run() // drain the remaining retransmit/ack handshake
	assertNoOpenSessions(t, sys)
}

func TestMultiSourceCompletesDespiteDroppedCtrl(t *testing.T) {
	// The unicast flavour of the same loss: a multi-source receiver's
	// ctrl to one of its senders is dropped. Pre-fix that sender
	// session stayed in sendSess forever (a silent leak); now the
	// retransmit reaches it and the maps drain.
	st := topology.NewStar(4, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 13)
	dropped := dropFirst(st.Hosts[1], netsim.KindCtrl, 1)
	var evs []CompletionEvent
	sys.StartMultiSource([]int{1, 2, 3}, 0, 512<<10, collect(&evs))
	st.Net.Eng.Run()
	if *dropped != 1 {
		t.Fatal("no ctrl packet was dropped; test is vacuous")
	}
	if len(evs) != 1 {
		t.Fatalf("completions = %d, want 1", len(evs))
	}
	assertNoOpenSessions(t, sys)
}

func TestCompletionSurvivesDroppedAck(t *testing.T) {
	// The reverse loss: the sender's ack is dropped, so the receiver
	// retransmits its ctrl and the sender must treat the duplicate
	// idempotently (not double-count the receiver).
	st := topology.NewStar(4, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 14)
	sys.PruneGroup = st.PruneMulticastLeaf
	dropped := dropFirst(st.Hosts[1], netsim.KindAck, 1)
	receivers := []int{1, 2, 3}
	g := st.InstallMulticastGroup(0, receivers)
	var evs []CompletionEvent
	sys.StartMulticast(0, receivers, g, 1<<20, collect(&evs))
	st.Net.Eng.Run()
	if *dropped != 1 {
		t.Fatal("no ack packet was dropped; test is vacuous")
	}
	if len(evs) != 3 {
		t.Fatalf("completions = %d, want 3", len(evs))
	}
	assertNoOpenSessions(t, sys)
}

func TestStallGuardRefiresEveryPullTimeout(t *testing.T) {
	// Pins the stall guard's cadence: the guard does not move
	// lastArrival when it re-primes, so while pulls keep getting lost
	// it re-fires exactly every PullTimeout until a symbol lands.
	cfg := DefaultConfig()
	d := cfg.PullTimeout
	st := topology.NewStar(2, netsim.DefaultConfig())
	sys := NewSystem(st.Net, cfg, 15)

	// Swallow every pull reaching the sender during the blackout
	// window; record arrival times of the swallowed pulls.
	blackout := 9 * time.Millisecond
	var guardPulls []sim.Time
	prev := st.Hosts[0].Deliver
	st.Hosts[0].Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.KindPull && st.Net.Now() < blackout {
			guardPulls = append(guardPulls, st.Net.Now())
			return
		}
		prev(p)
	}

	var evs []CompletionEvent
	sys.StartUnicast(0, 1, 200<<10, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 1 {
		t.Fatal("flow did not complete after the blackout lifted")
	}

	// Discard the initial-window pull burst (all within the first
	// ~1 ms); what remains are guard re-primes. The guard now primes a
	// deficit-sized *burst* of pulls per firing (paced ~12 µs apart by
	// the host pull pacer), so group pulls into bursts and take each
	// burst's first arrival as the firing time. With lastArrival at
	// ~0.3 ms and the guard armed at t=0, firings land at ~4, 6 and
	// 8 ms: exactly PullTimeout apart.
	var refires []sim.Time
	for _, at := range guardPulls {
		if at <= d {
			continue
		}
		if len(refires) == 0 || at-refires[len(refires)-1] > d/2 {
			refires = append(refires, at)
		}
	}
	if len(refires) != 3 {
		t.Fatalf("guard re-prime bursts during blackout = %d (%v), want 3", len(refires), refires)
	}
	for i := 1; i < len(refires); i++ {
		gap := refires[i] - refires[i-1]
		if gap < d-100*time.Microsecond || gap > d+100*time.Microsecond {
			t.Fatalf("re-prime gap %v, want %v±100µs (cadence not pinned)", gap, d)
		}
	}
	assertNoOpenSessions(t, sys)
}

// TestStallGuardRotatesAcrossSenders: the guard's re-prime burst is
// clamped to InitWindow, so with more senders than the window a fixed
// round-robin start would pull the same leading senders every firing
// and permanently starve the rest — fatal when the leading senders
// are the unreachable ones. The rotation must reach every sender.
func TestStallGuardRotatesAcrossSenders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitWindow = 2 // guard burst (2) < sender count (3)
	st := topology.NewStar(5, netsim.DefaultConfig())
	sys := NewSystem(st.Net, cfg, 21)

	// Swallow every data packet during the blackout (killing all pull
	// chains); afterwards only sender host 3 — the *last* entry of the
	// sender list — is reachable, so completion requires the guard's
	// rotation to get past senders 1 and 2.
	blackout := 5 * time.Millisecond
	prev := st.Hosts[0].Deliver
	st.Hosts[0].Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.KindData && (st.Net.Now() < blackout || p.Src != 3) {
			return
		}
		prev(p)
	}

	var evs []CompletionEvent
	sys.StartMultiSource([]int{1, 2, 3}, 0, 64<<10, collect(&evs))
	st.Net.Eng.RunUntil(2 * time.Second)
	if len(evs) != 1 {
		t.Fatal("session did not complete: the stall guard never reached the only live sender")
	}
}

func TestShuffleAllPairsComplete(t *testing.T) {
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(ft.Net, DefaultConfig(), 16)
	mappers := []int{0, 1, 4}
	reducers := []int{8, 9, 12, 13}
	bytes := func(mi, ri int) int64 { return int64(mi+1) * int64(ri+1) * 8 << 10 }

	doneCalls := 0
	var res ShuffleResult
	flows := sys.StartShuffle(mappers, reducers, bytes, func(r ShuffleResult) {
		doneCalls++
		res = r
	})
	ft.Net.Eng.Run()

	if doneCalls != 1 {
		t.Fatalf("onDone fired %d times, want 1", doneCalls)
	}
	if len(flows) != 12 || len(res.Pairs) != 12 {
		t.Fatalf("pairs = %d flows / %d results, want 12", len(flows), len(res.Pairs))
	}
	var wantTotal int64
	var latest sim.Time
	for mi := range mappers {
		for ri := range reducers {
			p := res.Pairs[mi*len(reducers)+ri]
			if p.Mapper != mappers[mi] || p.Reducer != reducers[ri] {
				t.Fatalf("pair (%d,%d) holds hosts (%d,%d), want mapper-major order", mi, ri, p.Mapper, p.Reducer)
			}
			if p.Bytes != bytes(mi, ri) {
				t.Fatalf("pair (%d,%d) bytes = %d, want %d", mi, ri, p.Bytes, bytes(mi, ri))
			}
			if p.Event.End <= p.Event.Start || p.Event.Receiver != reducers[ri] {
				t.Fatalf("pair (%d,%d) event not filled: %+v", mi, ri, p.Event)
			}
			wantTotal += p.Bytes
			if p.Event.End > latest {
				latest = p.Event.End
			}
		}
	}
	if res.Bytes() != wantTotal {
		t.Fatalf("ShuffleResult.Bytes() = %d, want %d", res.Bytes(), wantTotal)
	}
	if res.End != latest {
		t.Fatalf("End = %v, want latest pair completion %v", res.End, latest)
	}
	assertNoOpenSessions(t, sys)
}

func TestShuffleValidation(t *testing.T) {
	st := topology.NewStar(4, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 17)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	one := func(int, int) int64 { return 1 }
	expectPanic("no mappers", func() { sys.StartShuffle(nil, []int{1}, one, nil) })
	expectPanic("no reducers", func() { sys.StartShuffle([]int{0}, nil, one, nil) })
	expectPanic("nil bytesPerPair", func() { sys.StartShuffle([]int{0}, []int{1}, nil, nil) })
	expectPanic("overlap", func() { sys.StartShuffle([]int{0, 1}, []int{1, 2}, one, nil) })
	expectPanic("non-positive bytes", func() {
		sys.StartShuffle([]int{0}, []int{1}, func(int, int) int64 { return 0 }, nil)
	})
}
