package polyraptor

import (
	"fmt"
	"math/rand"

	"polyraptor/internal/metrics"
	"polyraptor/internal/netsim"
	"polyraptor/internal/sim"
	"polyraptor/internal/telemetry"
)

// System attaches a Polyraptor agent to every host of a network and
// provides the session-establishment API used by the experiment
// harness and examples.
type System struct {
	Net    *netsim.Network
	Cfg    Config
	Agents []*Agent

	// PruneGroup, when set (wired by the harness to
	// topology.PruneMulticastLeaf), removes a receiver's leaf from a
	// multicast tree. Straggler detachment calls it so the straggler
	// genuinely leaves the group, as the paper prescribes.
	PruneGroup func(group int32, receiver int)

	// StallHist is the PolyMeter stall-duration histogram: every
	// stall-guard firing records how long the session had been starved
	// (seconds since the last data arrival). Nil (the default)
	// disables metering; recording never perturbs the protocol.
	StallHist *metrics.Histogram

	rng      *rand.Rand // decode-overhead sampling & random-ESI ablation
	nextFlow int32
}

// detachReceiver implements the group side of straggler detachment:
// prune the receiver's leaf from the multicast tree and tell its
// session to ignore any in-flight multicast copies.
func (s *System) detachReceiver(flow, group int32, receiver int32) {
	if s.PruneGroup != nil {
		s.PruneGroup(group, int(receiver))
	}
	if rs, ok := s.Agents[receiver].recvSess[flow]; ok {
		rs.detached = true
	}
}

// NewSystem wires an agent onto every host. The seed drives overhead
// sampling so experiment repetitions are reproducible.
func NewSystem(net *netsim.Network, cfg Config, seed int64) *System {
	if cfg.SymbolPayload <= 0 {
		panic("polyraptor: SymbolPayload must be positive")
	}
	if cfg.InitWindow < 1 {
		panic("polyraptor: InitWindow must be at least 1")
	}
	s := &System{Net: net, Cfg: cfg, rng: sim.RNG(seed, "polyraptor-overhead")}
	for _, h := range net.Hosts {
		s.Agents = append(s.Agents, newAgent(s, h))
	}
	return s
}

// numSymbols returns K for an object of the given size.
func (s *System) numSymbols(bytes int64) int {
	k := int((bytes + int64(s.Cfg.SymbolPayload) - 1) / int64(s.Cfg.SymbolPayload))
	if k < 1 {
		k = 1
	}
	return k
}

// sampleNeed samples the number of distinct symbols a receiver needs
// before decoding succeeds, per the overhead failure model.
func (s *System) sampleNeed(k int) int {
	o := 0
	for s.rng.Float64() < s.Cfg.FailProb(o) {
		o++
	}
	return k + o
}

// allocFlow returns a fresh session ID.
func (s *System) allocFlow() int32 {
	f := s.nextFlow
	s.nextFlow++
	return f
}

// StartUnicast begins a one-to-one session of `bytes` from host src to
// host dst. onDone fires when the receiver decodes the object.
func (s *System) StartUnicast(src, dst int, bytes int64, onDone func(CompletionEvent)) int32 {
	return s.StartMultiSource([]int{src}, dst, bytes, onDone)
}

// StartMultiSource begins a many-to-one session: the receiver fetches
// one object of `bytes` that is available in full at every sender
// (replicas). Source symbols are partitioned across senders; repair
// ESIs use disjoint residue classes (or independent random draws when
// Config.RandomESI is set, the ablation).
func (s *System) StartMultiSource(senders []int, dst int, bytes int64, onDone func(CompletionEvent)) int32 {
	if len(senders) == 0 {
		panic("polyraptor: no senders")
	}
	flow := s.allocFlow()
	k := s.numSymbols(bytes)
	n := len(senders)
	src := int32(-1)
	if n == 1 {
		src = s.Agents[senders[0]].host.ID
	}
	s.Net.Rec.OpenFlow(s.Net.Now(), flow, "rq", src, s.Agents[dst].host.ID, bytes, 1)

	recv := &receiverSession{
		sys:      s,
		flow:     flow,
		receiver: dst,
		bytes:    bytes,
		k:        k,
		need:     s.sampleNeed(k),
		senders:  senders,
		start:    s.Net.Now(),
		onDone:   onDone,
		seen:     nil,
	}
	if s.Cfg.RandomESI && n > 1 {
		recv.seen = make(map[int64]struct{}, k+16)
	}
	s.Agents[dst].recvSess[flow] = recv
	recv.armTimeout()

	// Partition[K, n] source symbols across senders in ESI order.
	il, is, jl, _ := partition(k, n)
	startESI := 0
	for i, host := range senders {
		span := is
		if i < jl {
			span = il
		}
		snd := &senderSession{
			sys:        s,
			flow:       flow,
			src:        host,
			k:          k,
			group:      -1,
			dst:        int32(dst),
			srcNext:    int64(startESI),
			srcEnd:     int64(startESI + span),
			repairNext: int64(k + i),
			stride:     int64(n),
			senderIdx:  int32(i),
		}
		if s.Cfg.RandomESI {
			snd.randESI = sim.RNG(int64(flow)*1000+int64(i), "random-esi")
		}
		startESI += span
		s.Agents[host].sendSess[flow] = snd
		snd.sendInitialWindow()
	}
	return flow
}

// StartMulticast begins a one-to-many session: src pushes one object
// to every receiver over the pre-installed multicast group. onDone
// fires once per receiver. The group's forwarding state must cover
// exactly `receivers` (see topology.InstallMulticastGroup).
func (s *System) StartMulticast(src int, receivers []int, group int32, bytes int64, onDone func(CompletionEvent)) int32 {
	if len(receivers) == 0 {
		panic("polyraptor: no receivers")
	}
	flow := s.allocFlow()
	k := s.numSymbols(bytes)
	s.Net.Rec.OpenFlow(s.Net.Now(), flow, "rq", s.Agents[src].host.ID, -1, bytes, len(receivers))

	snd := &senderSession{
		sys:        s,
		flow:       flow,
		src:        src,
		k:          k,
		group:      group,
		srcNext:    0,
		srcEnd:     int64(k),
		repairNext: int64(k),
		stride:     1,
		pulls:      make(map[int32]int, len(receivers)),
		detached:   make(map[int32]*detachedTail),
	}
	for _, r := range receivers {
		snd.receivers = append(snd.receivers, int32(r))
		snd.pulls[int32(r)] = 0
		recv := &receiverSession{
			sys:      s,
			flow:     flow,
			receiver: r,
			bytes:    bytes,
			k:        k,
			need:     s.sampleNeed(k),
			senders:  []int{src},
			start:    s.Net.Now(),
			onDone:   onDone,
		}
		s.Agents[r].recvSess[flow] = recv
		recv.armTimeout()
	}
	s.Agents[src].sendSess[flow] = snd
	snd.sendInitialWindow()
	return flow
}

// ShufflePair is one mapper→reducer transfer of a shuffle.
type ShufflePair struct {
	// Mapper and Reducer are host IDs.
	Mapper, Reducer int
	// Flow is the pair's session ID.
	Flow int32
	// Bytes is the partition size.
	Bytes int64
	// Event is the pair's completion event.
	Event CompletionEvent
}

// ShuffleResult reports one completed shuffle.
type ShuffleResult struct {
	// Start is when the shuffle was started; End is the latest pair
	// completion (the shuffle completion time is End-Start: a shuffle
	// is done only when its slowest pair is).
	Start, End sim.Time
	// Pairs holds every transfer in mapper-major order
	// (Pairs[mi*len(reducers)+ri]).
	Pairs []ShufflePair
}

// Bytes returns the total bytes moved by the shuffle.
func (r ShuffleResult) Bytes() int64 {
	var total int64
	for i := range r.Pairs {
		total += r.Pairs[i].Bytes
	}
	return total
}

// StartShuffle begins a many-to-many shuffle: every mapper transfers
// one distinct partition to every reducer, the full mapper×reducer
// matrix at once. Each pair runs as its own receiver-driven session,
// so a reducer's inbound transfers are jointly paced by its host's
// single pull queue (paper §2) and a mapper contributes to each
// reducer exactly the capacity its pulls arrive with — no per-flow
// congestion control, no incast at the reducers, no coordination
// between mappers. bytesPerPair maps (mapper index, reducer index) to
// the partition size, letting workload generators express skew and
// stragglers. onDone fires once, when the last pair completes. A host
// appearing as both a mapper and a reducer panics: local partitions
// never cross the network and must be excluded by the caller.
func (s *System) StartShuffle(mappers, reducers []int, bytesPerPair func(mi, ri int) int64, onDone func(ShuffleResult)) []int32 {
	if len(mappers) == 0 {
		panic("polyraptor: no mappers")
	}
	if len(reducers) == 0 {
		panic("polyraptor: no reducers")
	}
	if bytesPerPair == nil {
		panic("polyraptor: nil bytesPerPair")
	}
	reducerSet := make(map[int]struct{}, len(reducers))
	for _, r := range reducers {
		reducerSet[r] = struct{}{}
	}
	for _, m := range mappers {
		if _, both := reducerSet[m]; both {
			panic(fmt.Sprintf("polyraptor: host %d is both a mapper and a reducer", m))
		}
	}

	res := &ShuffleResult{
		Start: s.Net.Now(),
		Pairs: make([]ShufflePair, len(mappers)*len(reducers)),
	}
	remaining := len(res.Pairs)
	flows := make([]int32, 0, len(res.Pairs))
	for mi, m := range mappers {
		for ri, r := range reducers {
			bytes := bytesPerPair(mi, ri)
			if bytes <= 0 {
				panic(fmt.Sprintf("polyraptor: shuffle pair (%d,%d) has %d bytes", mi, ri, bytes))
			}
			idx := mi*len(reducers) + ri
			res.Pairs[idx] = ShufflePair{Mapper: m, Reducer: r, Bytes: bytes}
			flow := s.StartMultiSource([]int{m}, r, bytes, func(ev CompletionEvent) {
				res.Pairs[idx].Event = ev
				if ev.End > res.End {
					res.End = ev.End
				}
				remaining--
				if remaining == 0 && onDone != nil {
					onDone(*res)
				}
			})
			res.Pairs[idx].Flow = flow
			flows = append(flows, flow)
		}
	}
	return flows
}

// OpenSessions counts the live sender and receiver sessions across all
// agents. Both counts return to zero once every flow has fully torn
// down — the lifecycle contract the leak regression tests assert.
func (s *System) OpenSessions() (send, recv int) {
	for _, a := range s.Agents {
		send += len(a.sendSess)
		recv += len(a.recvSess)
	}
	return
}

// partition mirrors raptorq.Partition without importing it here.
func partition(i, j int) (il, is, jl, js int) {
	il = (i + j - 1) / j
	is = i / j
	jl = i - is*j
	js = j - jl
	return
}

// Agent is the per-host Polyraptor endpoint: it demultiplexes arriving
// packets to sessions and owns the host's single pull queue, drained
// at the host's link rate across all inbound sessions (paper §2).
type Agent struct {
	sys  *System
	host *netsim.Host

	sendSess map[int32]*senderSession
	recvSess map[int32]*receiverSession

	// Pull pacer state. drainFn is the bound drainPull callback,
	// created once so per-pull pacing never allocates a method value.
	pullQ    []pullReq
	pullHead int
	pacing   bool
	drainFn  func()
}

type pullReq struct {
	flow int32
	dst  int32 // sender host to address the pull to
}

func newAgent(sys *System, host *netsim.Host) *Agent {
	a := &Agent{
		sys:      sys,
		host:     host,
		sendSess: make(map[int32]*senderSession),
		recvSess: make(map[int32]*receiverSession),
	}
	a.drainFn = a.drainPull
	host.Deliver = a.deliver
	return a
}

func (a *Agent) deliver(pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.KindData:
		if sess, ok := a.recvSess[pkt.Flow]; ok {
			sess.onData(pkt)
		}
	case netsim.KindPull:
		if sess, ok := a.sendSess[pkt.Flow]; ok {
			sess.onPull(pkt)
		}
	case netsim.KindCtrl:
		// Completion notice from a receiver. Ack unconditionally — even
		// when the sender session is already gone — because the ctrl may
		// be a retransmission whose predecessor's ack was lost; without
		// the ack the receiver would retransmit forever.
		if sess, ok := a.sendSess[pkt.Flow]; ok {
			sess.onReceiverDone(pkt.Src)
		}
		ack := a.sys.Net.AllocPacket()
		ack.Flow = pkt.Flow
		ack.Kind = netsim.KindAck
		ack.Size = netsim.HeaderSize
		ack.Src = a.host.ID
		ack.Dst = pkt.Src
		ack.Group = -1
		ack.Spray = true
		a.host.Send(ack)
	case netsim.KindAck:
		// Sender's acknowledgement of our completion ctrl.
		if sess, ok := a.recvSess[pkt.Flow]; ok {
			sess.onDoneAck(pkt.Src)
		}
	default:
		panic(fmt.Sprintf("polyraptor: unknown packet kind %v", pkt.Kind))
	}
	// Dispatch done: the packet's journey ends here, recycle it. Every
	// handler above reads fields synchronously and never retains the
	// pointer, so this is the last live reference.
	a.sys.Net.FreePacket(pkt)
}

// enqueuePull adds one pull credit to the host's shared queue and
// starts the pacer if idle. Pacing interval is the serialization time
// of one full data packet at the host's link rate, so the aggregate
// data arrival rate matches link capacity.
func (a *Agent) enqueuePull(flow, dst int32) {
	a.pullQ = append(a.pullQ, pullReq{flow: flow, dst: dst})
	if !a.pacing {
		a.pacing = true
		a.drainPull()
	}
}

func (a *Agent) drainPull() {
	// Iterate past pulls whose sessions completed while queued; only a
	// live pull consumes a pacing slot. A loop (not recursion) keeps
	// the stack flat even when thousands of stale entries drain at
	// once at the end of a large experiment.
	for a.pullHead < len(a.pullQ) {
		req := a.pullQ[a.pullHead]
		a.pullHead++
		if sess, ok := a.recvSess[req.flow]; !ok || sess.done {
			continue
		}
		a.sys.Net.Rec.Record(a.sys.Net.Now(), req.flow, telemetry.EvPull, a.host.ID, int64(req.dst))
		pull := a.sys.Net.AllocPacket()
		pull.Flow = req.flow
		pull.Kind = netsim.KindPull
		pull.Size = netsim.HeaderSize
		pull.Src = a.host.ID
		pull.Dst = req.dst
		pull.Group = -1
		pull.Spray = true
		a.host.Send(pull)
		interval := sim.Time(int64(netsim.DataSize) * 8 * 1e9 / a.sys.Net.Cfg.LinkRate)
		a.sys.Net.Eng.After(interval, a.drainFn)
		return
	}
	a.pullQ = a.pullQ[:0]
	a.pullHead = 0
	a.pacing = false
}
