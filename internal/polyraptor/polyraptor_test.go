package polyraptor

import (
	"testing"
	"time"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

// collect returns a callback that appends completion events.
func collect(events *[]CompletionEvent) func(CompletionEvent) {
	return func(ev CompletionEvent) { *events = append(*events, ev) }
}

func TestUnicastTransferCompletes(t *testing.T) {
	st := topology.NewStar(2, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 1)
	var evs []CompletionEvent
	sys.StartUnicast(0, 1, 1<<20, collect(&evs)) // 1 MB
	st.Net.Eng.Run()
	if len(evs) != 1 {
		t.Fatalf("completions = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Receiver != 1 || ev.Bytes != 1<<20 {
		t.Fatalf("bad event: %+v", ev)
	}
	k := sys.numSymbols(1 << 20)
	if ev.Symbols < k {
		t.Fatalf("completed with %d < K=%d symbols", ev.Symbols, k)
	}
	// Uncontended 1 MB at 1 Gbps with 95.7% payload efficiency should
	// achieve > 0.8 Gbps goodput.
	if g := ev.GoodputGbps(); g < 0.8 || g > 1.0 {
		t.Fatalf("unicast goodput = %.3f Gbps, want ~0.9", g)
	}
}

func TestUnicastShortFlowLowLatency(t *testing.T) {
	// A flow within the initial window completes in about one RTT plus
	// serialization: the systematic first-RTT blast needs no pulls.
	st := topology.NewStar(2, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 1)
	var evs []CompletionEvent
	bytes := int64(4 * netsim.PayloadSize) // 4 symbols < InitWindow
	sys.StartUnicast(0, 1, bytes, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 1 {
		t.Fatal("no completion")
	}
	d := evs[0].End - evs[0].Start
	// 4 packets x 12 µs serialization x 2 hops + 20 µs propagation,
	// plus pacing slack: anything under 150 µs proves no pull round
	// trips were needed.
	if d > 150*time.Microsecond {
		t.Fatalf("short flow took %v; initial window should cover it", d)
	}
}

func TestIncastNoCollapse(t *testing.T) {
	// The paper's headline property (Fig 1c): N synchronized senders
	// into one receiver must sustain near-line-rate aggregate goodput
	// because the shared pull queue paces all sessions jointly and
	// overload only trims.
	for _, n := range []int{4, 16, 48} {
		st := topology.NewStar(n+1, netsim.DefaultConfig())
		sys := NewSystem(st.Net, DefaultConfig(), 2)
		var evs []CompletionEvent
		per := int64(256 << 10) // 256 KB each
		for s := 1; s <= n; s++ {
			sys.StartUnicast(s, 0, per, collect(&evs))
		}
		st.Net.Eng.Run()
		if len(evs) != n {
			t.Fatalf("n=%d: %d completions", n, len(evs))
		}
		var last time.Duration
		for _, ev := range evs {
			if ev.End > last {
				last = ev.End
			}
		}
		agg := float64(per*int64(n)*8) / last.Seconds() / 1e9
		if agg < 0.75 {
			t.Fatalf("n=%d: aggregate incast goodput %.3f Gbps — collapse!", n, agg)
		}
	}
}

func TestMulticastAllReceiversComplete(t *testing.T) {
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(ft.Net, DefaultConfig(), 3)
	receivers := []int{5, 10, 15} // outside host 0's rack
	g := ft.InstallMulticastGroup(0, receivers)
	var evs []CompletionEvent
	sys.StartMulticast(0, receivers, g, 1<<20, collect(&evs))
	ft.Net.Eng.Run()
	if len(evs) != 3 {
		t.Fatalf("completions = %d, want 3", len(evs))
	}
	for _, ev := range evs {
		if g := ev.GoodputGbps(); g < 0.6 {
			t.Fatalf("receiver %d multicast goodput %.3f Gbps too low", ev.Receiver, g)
		}
	}
}

func TestMulticastGoodputMatchesUnicast(t *testing.T) {
	// Replicating to 3 servers over multicast should cost roughly the
	// same time as a single unicast copy (the paper's Fig 1a claim),
	// because only one stream leaves the sender.
	ft, _ := topology.NewFatTree(4, netsim.DefaultConfig())
	sys := NewSystem(ft.Net, DefaultConfig(), 4)
	var uni []CompletionEvent
	sys.StartUnicast(0, 5, 1<<20, collect(&uni))
	ft.Net.Eng.Run()

	ft2, _ := topology.NewFatTree(4, netsim.DefaultConfig())
	sys2 := NewSystem(ft2.Net, DefaultConfig(), 4)
	receivers := []int{5, 10, 15}
	g := ft2.InstallMulticastGroup(0, receivers)
	var mc []CompletionEvent
	sys2.StartMulticast(0, receivers, g, 1<<20, collect(&mc))
	ft2.Net.Eng.Run()

	var worst time.Duration
	for _, ev := range mc {
		if d := ev.End - ev.Start; d > worst {
			worst = d
		}
	}
	uniD := uni[0].End - uni[0].Start
	if worst > uniD*3/2 {
		t.Fatalf("3-receiver multicast %v vs unicast %v: more than 50%% slower", worst, uniD)
	}
}

func TestMultiSourceCompletesAndBalances(t *testing.T) {
	st := topology.NewStar(4, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 5)
	var evs []CompletionEvent
	sys.StartMultiSource([]int{1, 2, 3}, 0, 3<<20, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 1 {
		t.Fatalf("completions = %d", len(evs))
	}
	ev := evs[0]
	// Aggregate from 3 senders into a 1 Gbps downlink: goodput is
	// bounded by the receiver link but must be close to it.
	if g := ev.GoodputGbps(); g < 0.75 {
		t.Fatalf("multi-source goodput %.3f Gbps", g)
	}
	// All three senders must have contributed (load balancing): check
	// transmit counters.
	for s := 1; s <= 3; s++ {
		if st.Hosts[s].NIC.TxPackets == 0 {
			t.Fatalf("sender %d contributed nothing", s)
		}
	}
}

func TestMultiSourcePartitioningNoDuplicates(t *testing.T) {
	// With partitioned ESIs the receiver must never see a duplicate:
	// distinct count equals delivered full symbols.
	st := topology.NewStar(4, netsim.DefaultConfig())
	cfg := DefaultConfig()
	sys := NewSystem(st.Net, cfg, 6)
	// Shadow-track ESIs delivered to host 0.
	seen := map[int64]int{}
	base := st.Hosts[0].Deliver
	st.Hosts[0].Deliver = func(p *netsim.Packet) {
		if p.Kind == netsim.KindData && !p.Trimmed {
			seen[p.Seq]++
		}
		base(p)
	}
	var evs []CompletionEvent
	sys.StartMultiSource([]int{1, 2, 3}, 0, 2<<20, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 1 {
		t.Fatal("no completion")
	}
	for esi, c := range seen {
		if c > 1 {
			t.Fatalf("ESI %d delivered %d times despite partitioning", esi, c)
		}
	}
}

func TestRandomESIAblationProducesDuplicates(t *testing.T) {
	// Ablation A3: independent random repair seeding must eventually
	// collide; the session still completes (duplicates are ignored).
	st := topology.NewStar(5, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.RandomESI = true
	cfg.InitWindow = 1 // push most traffic through random repair ESIs
	sys := NewSystem(st.Net, cfg, 7)
	var evs []CompletionEvent
	sys.StartMultiSource([]int{1, 2, 3, 4}, 0, 512<<10, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 1 {
		t.Fatal("random-ESI session did not complete")
	}
}

func TestPullPacingLimitsAggregateRate(t *testing.T) {
	// Even with 20 concurrent inbound sessions the receiver's data
	// arrival rate must not exceed link capacity for long: measure
	// total delivery time of 20 x 128 KB = 2.5 MB; at 1 Gbps that is
	// ~21 ms minimum. Finishing earlier would mean pacing is broken.
	n := 20
	st := topology.NewStar(n+1, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 8)
	var evs []CompletionEvent
	per := int64(128 << 10)
	for s := 1; s <= n; s++ {
		sys.StartUnicast(s, 0, per, collect(&evs))
	}
	st.Net.Eng.Run()
	var last time.Duration
	for _, ev := range evs {
		if ev.End > last {
			last = ev.End
		}
	}
	wire := float64(per*int64(n)) * float64(netsim.DataSize) / float64(netsim.PayloadSize)
	minTime := time.Duration(wire * 8)
	if last < minTime*95/100 {
		t.Fatalf("20 sessions finished in %v < line-rate floor %v: pacer exceeded capacity", last, minTime)
	}
}

func TestStragglerDetachment(t *testing.T) {
	// One multicast receiver is crushed by background incast; with
	// detachment enabled the two healthy receivers finish early and
	// the straggler is served on a private tail.
	cfg := netsim.DefaultConfig()
	st := topology.NewStar(8, cfg)
	pcfg := DefaultConfig()
	pcfg.StragglerDetach = true
	sys := NewSystem(st.Net, pcfg, 9)
	sys.PruneGroup = st.PruneMulticastLeaf

	// Background load onto receiver 3 (the straggler-to-be).
	var bg []CompletionEvent
	for s := 4; s <= 7; s++ {
		sys.StartUnicast(s, 3, 4<<20, collect(&bg))
	}
	receivers := []int{1, 2, 3}
	g := st.InstallMulticastGroup(0, receivers)
	var evs []CompletionEvent
	sys.StartMulticast(0, receivers, g, 2<<20, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 3 {
		t.Fatalf("completions = %d, want 3", len(evs))
	}
	byRecv := map[int]CompletionEvent{}
	for _, ev := range evs {
		byRecv[ev.Receiver] = ev
	}
	if !byRecv[3].Detached {
		t.Fatal("loaded receiver was not detached")
	}
	healthy := byRecv[1].End
	if byRecv[2].End > healthy {
		healthy = byRecv[2].End
	}
	if byRecv[3].End <= healthy {
		t.Fatal("straggler somehow finished before healthy receivers")
	}
	// Healthy receivers must be much faster than the straggler's
	// background-limited pace.
	if h := byRecv[1].GoodputGbps(); h < 0.5 {
		t.Fatalf("healthy receiver goodput %.3f Gbps despite detachment", h)
	}
}

func TestWithoutDetachmentGroupIsThrottled(t *testing.T) {
	// Control for the detachment test: with detachment disabled, the
	// healthy receivers are dragged down to the straggler's pace.
	cfg := netsim.DefaultConfig()
	st := topology.NewStar(8, cfg)
	pcfg := DefaultConfig()
	pcfg.StragglerDetach = false
	sys := NewSystem(st.Net, pcfg, 9)
	var bg []CompletionEvent
	for s := 4; s <= 7; s++ {
		sys.StartUnicast(s, 3, 4<<20, collect(&bg))
	}
	receivers := []int{1, 2, 3}
	g := st.InstallMulticastGroup(0, receivers)
	var evs []CompletionEvent
	sys.StartMulticast(0, receivers, g, 2<<20, collect(&evs))
	st.Net.Eng.Run()
	byRecv := map[int]CompletionEvent{}
	for _, ev := range evs {
		byRecv[ev.Receiver] = ev
	}
	if g1 := byRecv[1].GoodputGbps(); g1 > 0.6 {
		t.Fatalf("healthy receiver reached %.3f Gbps without detachment; expected throttling by straggler", g1)
	}
}

func TestCompletionEventGoodput(t *testing.T) {
	ev := CompletionEvent{Bytes: 1e9 / 8, Start: 0, End: time.Second}
	if g := ev.GoodputGbps(); g < 0.99 || g > 1.01 {
		t.Fatalf("GoodputGbps = %v, want 1.0", g)
	}
	zero := CompletionEvent{Bytes: 100, Start: 5, End: 5}
	if zero.GoodputGbps() != 0 {
		t.Fatal("zero-duration goodput must be 0")
	}
}

func TestManySessionsSameHostPairInterleave(t *testing.T) {
	// Two concurrent sessions between the same pair must both finish
	// and share the link roughly fairly through the shared pull queue.
	st := topology.NewStar(2, netsim.DefaultConfig())
	sys := NewSystem(st.Net, DefaultConfig(), 10)
	var evs []CompletionEvent
	sys.StartUnicast(0, 1, 1<<20, collect(&evs))
	sys.StartUnicast(0, 1, 1<<20, collect(&evs))
	st.Net.Eng.Run()
	if len(evs) != 2 {
		t.Fatalf("completions = %d", len(evs))
	}
	d0 := evs[0].End - evs[0].Start
	d1 := evs[1].End - evs[1].Start
	if d0 > 2*d1 && d1 > 2*d0 {
		t.Fatalf("unfair sharing: %v vs %v", d0, d1)
	}
}
