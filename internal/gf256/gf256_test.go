package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53,0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Add(7, 7) != 0 {
		t.Fatal("x + x must be 0 in GF(2^8)")
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d,1) = %d", a, got)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d,0) = %d", a, got)
		}
	}
}

// mulSlow is a reference bitwise (carry-less with reduction) multiply
// used to validate the table-driven implementation.
func mulSlow(a, b byte) byte {
	var p int
	x, y := int(a), int(b)
	for i := 0; i < 8; i++ {
		if y&1 != 0 {
			p ^= x
		}
		y >>= 1
		x <<= 1
		if x&0x100 != 0 {
			x ^= reductionPoly
		}
	}
	return byte(p)
}

func TestMulAgainstReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := mulSlow(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociativeQuick(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributivityQuick(t *testing.T) {
	distr := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distr, nil); err != nil {
		t.Error(err)
	}
}

func TestDivInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)*%d != %d", a, b, b, a)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a=%d", a)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	// alpha = 2 must generate the full multiplicative group: 255 distinct
	// powers before cycling.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if seen[v] {
			t.Fatalf("Exp(%d)=%d repeats before full cycle", i, v)
		}
		seen[v] = true
	}
	if Exp(255) != 1 {
		t.Fatalf("alpha^255 = %d, want 1", Exp(255))
	}
}

func TestAddRow(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	src := []byte{4, 3, 2, 1}
	AddRow(dst, src)
	want := []byte{5, 1, 1, 5}
	if !bytes.Equal(dst, want) {
		t.Fatalf("AddRow = %v, want %v", dst, want)
	}
	AddRow(dst, src) // adding twice restores the original
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Fatalf("AddRow twice did not cancel: %v", dst)
	}
}

func TestMulAddRowAgainstScalar(t *testing.T) {
	src := []byte{0, 1, 2, 0x53, 0xFF}
	for c := 0; c < 256; c++ {
		dst := []byte{9, 9, 9, 9, 9}
		MulAddRow(dst, src, byte(c))
		for i := range src {
			want := byte(9) ^ Mul(byte(c), src[i])
			if dst[i] != want {
				t.Fatalf("MulAddRow c=%d idx=%d got %d want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestScaleRow(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := []byte{0, 1, 7, 0x80, 0xFF}
		orig := append([]byte(nil), row...)
		ScaleRow(row, byte(c))
		for i := range row {
			if row[i] != Mul(orig[i], byte(c)) {
				t.Fatalf("ScaleRow c=%d idx=%d got %d want %d", c, i, row[i], Mul(orig[i], byte(c)))
			}
		}
	}
}

func TestDotProduct(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	want := Add(Add(Mul(1, 4), Mul(2, 5)), Mul(3, 6))
	if got := DotProduct(a, b); got != want {
		t.Fatalf("DotProduct = %d, want %d", got, want)
	}
}

func TestMulAddRowZeroAndOneFastPaths(t *testing.T) {
	src := []byte{10, 20, 30}
	dst := []byte{1, 2, 3}
	MulAddRow(dst, src, 0)
	if !bytes.Equal(dst, []byte{1, 2, 3}) {
		t.Fatalf("MulAddRow with c=0 modified dst: %v", dst)
	}
	MulAddRow(dst, src, 1)
	if !bytes.Equal(dst, []byte{11, 22, 29}) {
		t.Fatalf("MulAddRow with c=1 = %v", dst)
	}
}

func BenchmarkMulAddRow(b *testing.B) {
	dst := make([]byte, 1280)
	src := make([]byte, 1280)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddRow(dst, src, 0x35)
	}
}

func BenchmarkAddRow(b *testing.B) {
	dst := make([]byte, 1280)
	src := make([]byte, 1280)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddRow(dst, src)
	}
}
