// Package gf256 implements arithmetic over the finite field GF(2^8) as
// specified by RFC 6330 §5.7 (the "octet" field used by RaptorQ).
//
// The field is GF(2)[x]/(x^8+x^4+x^3+x^2+1), i.e. the reduction
// polynomial 0x11D, with generator element 2. Multiplication and
// division are performed through logarithm/exponential tables, exactly
// as prescribed by the RFC (OCT_LOG / OCT_EXP). Row operations used by
// the RaptorQ encoder and decoder (AddRow, MulAddRow, ScaleRow) operate
// on byte slices and form the hot path of matrix elimination, so they
// are written to be allocation-free.
package gf256

// Polynomial x^8 + x^4 + x^3 + x^2 + 1, per RFC 6330 §5.7.2.
const reductionPoly = 0x11D

// expTable[i] = alpha^i for i in [0, 510). Doubled so that
// mul can index expTable[log(a)+log(b)] without a modulo.
var expTable [510]byte

// logTable[a] = log_alpha(a) for a in [1, 256). logTable[0] is unused
// (log of zero is undefined); it is set to 0 and guarded by callers.
var logTable [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= reductionPoly
		}
	}
	// alpha^255 == 1; repeat the cycle so exp lookups for summed logs
	// (max 254+254 = 508) stay in range.
	for i := 255; i < 510; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Div panics if b == 0, mirroring integer
// division semantics; callers in the decoder always pivot on non-zero
// elements.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inv panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns alpha^i where alpha = 2 is the field generator and i may
// be any non-negative integer.
func Exp(i int) byte { return expTable[i%255] }

// Log returns log_alpha(a). Log panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// AddRow sets dst[i] ^= src[i] for every position. dst and src must
// have equal length. Empty rows are a no-op.
func AddRow(dst, src []byte) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1] // bounds-check hint
	for i := range src {
		dst[i] ^= src[i]
	}
}

// MulAddRow sets dst[i] ^= c * src[i]. A zero coefficient is a no-op;
// coefficient one degenerates to AddRow.
func MulAddRow(dst, src []byte, c byte) {
	switch {
	case c == 0 || len(src) == 0:
		return
	case c == 1:
		AddRow(dst, src)
		return
	}
	lc := int(logTable[c])
	_ = dst[len(src)-1]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// ScaleRow multiplies every element of row by c in place.
func ScaleRow(row []byte, c byte) {
	switch c {
	case 0:
		for i := range row {
			row[i] = 0
		}
		return
	case 1:
		return
	}
	lc := int(logTable[c])
	for i, s := range row {
		if s != 0 {
			row[i] = expTable[lc+int(logTable[s])]
		}
	}
}

// DotProduct returns the GF(2^8) inner product of a and b, which must
// have equal length.
func DotProduct(a, b []byte) byte {
	var acc byte
	for i := range a {
		acc ^= Mul(a[i], b[i])
	}
	return acc
}
