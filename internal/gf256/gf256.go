// Package gf256 implements arithmetic over the finite field GF(2^8) as
// specified by RFC 6330 §5.7 (the "octet" field used by RaptorQ).
//
// The field is GF(2)[x]/(x^8+x^4+x^3+x^2+1), i.e. the reduction
// polynomial 0x11D, with generator element 2. Multiplication and
// division are performed through logarithm/exponential tables, exactly
// as prescribed by the RFC (OCT_LOG / OCT_EXP). Row operations used by
// the RaptorQ encoder and decoder (AddRow, MulAddRow, ScaleRow) operate
// on byte slices and form the hot path of matrix elimination, so they
// are written to be allocation-free and operate on 8-byte words with
// byte tails: XOR proceeds a uint64 at a time, and multiplication uses
// a branchless bit-plane decomposition over eight byte lanes. On amd64
// with SSSE3 the multiply kernels additionally dispatch to a PSHUFB
// nibble-table routine processing 16 bytes per instruction group. The
// scalar byte-at-a-time paths are retained (AddRowScalar and friends)
// as the reference implementations for parity tests and perf
// baselines.
//
// MulAddRow requires dst and src to not overlap; ScaleRow is in-place
// by definition.
package gf256

import "encoding/binary"

// Polynomial x^8 + x^4 + x^3 + x^2 + 1, per RFC 6330 §5.7.2.
const reductionPoly = 0x11D

// Features reports which accelerated kernel paths this build selected
// at startup, in a stable order. An empty slice means the portable
// word-wise kernels only. Intended for perf-report metadata, so runs
// on different hardware are comparable.
func Features() []string {
	var fs []string
	if haveSSE2 {
		fs = append(fs, "sse2")
	}
	if useSSSE3 {
		fs = append(fs, "ssse3")
	}
	if useAVX2 {
		fs = append(fs, "avx2")
	}
	return fs
}

// expTable[i] = alpha^i mod alpha^255, doubled so that mul can index
// expTable[log(a)+log(b)] without a modulo. The length is 511 rather
// than 510: indexing with a sum of two byte-typed logs (each ≤ 255)
// then provably never exceeds 510, so the compiler's prove pass drops
// the bounds check from every table lookup in the row-kernel tails.
// Index 510 itself is unreachable (logs are ≤ 254) but holds the
// correct alpha^510 = 1 anyway.
var expTable [511]byte

// logTable[a] = log_alpha(a) for a in [1, 256). logTable[0] is unused
// (log of zero is undefined); it is set to 0 and guarded by callers.
var logTable [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= reductionPoly
		}
	}
	// alpha^255 == 1; repeat the cycle so exp lookups for summed logs
	// (max 254+254 = 508) stay in range.
	for i := 255; i < 511; i++ {
		expTable[i] = expTable[i-255]
	}
	// Nibble product tables for the SIMD kernels: for each coefficient
	// c, 16 products of the low-nibble values and 16 of the high-nibble
	// values, so c*s = lo[s&15] ^ hi[s>>4]. 8 KB total, computed once.
	for c := 1; c < 256; c++ {
		for v := 0; v < 16; v++ {
			nibTab[c][v] = Mul(byte(c), byte(v))
			nibTab[c][16+v] = Mul(byte(c), byte(v<<4))
		}
	}
}

// nibTab[c] holds the 32-byte PSHUFB table pair for coefficient c:
// products of c with the 16 low-nibble values, then with the 16
// high-nibble values.
var nibTab [256][32]byte

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Div panics if b == 0, mirroring integer
// division semantics; callers in the decoder always pivot on non-zero
// elements.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inv panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns alpha^i where alpha = 2 is the field generator and i may
// be any non-negative integer.
func Exp(i int) byte { return expTable[i%255] }

// Log returns log_alpha(a). Log panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// lsbLanes masks the low bit of each of the eight byte lanes of a word.
const lsbLanes = 0x0101010101010101

// mulPlanes returns the eight lane-broadcast multipliers c*2^j (in
// GF(2^8)) consumed by mulWord. Computed once per row operation and
// amortised over every word.
func mulPlanes(c byte) (m [8]uint64) {
	v := c
	for j := 0; j < 8; j++ {
		m[j] = uint64(v)
		if v&0x80 != 0 {
			v = v<<1 ^ (reductionPoly & 0xFF)
		} else {
			v <<= 1
		}
	}
	return m
}

// mulWord multiplies each of the eight byte lanes of w by the
// coefficient whose plane multipliers are m. Multiplication by c is
// GF(2)-linear in the source bits, so the product decomposes over bit
// planes: plane j of w, masked to lane low bits, is a 0/1 lane
// selector, and an integer multiply by c*2^j broadcasts that plane's
// contribution into the selected lanes — carry-free, because each
// contribution occupies disjoint 8-bit lanes. XOR across the eight
// planes assembles the product. Fully branchless.
func mulWord(w uint64, m *[8]uint64) uint64 {
	return (w&lsbLanes)*m[0] ^
		(w>>1&lsbLanes)*m[1] ^
		(w>>2&lsbLanes)*m[2] ^
		(w>>3&lsbLanes)*m[3] ^
		(w>>4&lsbLanes)*m[4] ^
		(w>>5&lsbLanes)*m[5] ^
		(w>>6&lsbLanes)*m[6] ^
		(w>>7&lsbLanes)*m[7]
}

// AddRow sets dst[i] ^= src[i] for every position — 16 bytes per step
// on amd64, 8-byte words elsewhere, with a byte tail. dst and src must
// have equal length and not overlap. Empty rows are a no-op.
//
//polyvet:noalloc matrix-elimination hot path; runs O(K^2) times per block
func AddRow(dst, src []byte) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1] // bounds-check hint
	i := 0
	if useAVX2 {
		if n := len(src) &^ 31; n > 0 {
			galXorAVX2(&dst[0], &src[0], n)
			i = n
		}
	}
	if haveSSE2 {
		if n := (len(src) - i) &^ 15; n > 0 {
			galXorSSE2(&dst[i], &src[i], n)
			i += n
		}
	}
	addRowWords(dst[i:len(src)], src[i:])
}

// addRowWords is the portable word-wise core of AddRow. Both loops are
// written in the length-cursor style the prove pass can verify: the
// one reslice up front is the only bounds check, and every in-loop
// access is covered by the loop condition (word loop) or the range
// clause (byte tail).
//
//polyvet:noalloc innermost XOR kernel of matrix elimination
//polyvet:nobce per-element bounds checks would halve word-loop throughput
func addRowWords(dst, src []byte) {
	dst = dst[:len(src)] // single bounds check; hints len(dst) == len(src)
	for len(dst) >= 8 && len(src) >= 8 {
		binary.LittleEndian.PutUint64(dst,
			binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		dst = dst[8:]
		src = src[8:]
	}
	dst = dst[:len(src)]
	for i, s := range src {
		dst[i] ^= s
	}
}

// AddRowScalar is the byte-at-a-time reference for AddRow, retained for
// parity tests and as the perf baseline.
func AddRowScalar(dst, src []byte) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	for i := range src {
		dst[i] ^= src[i]
	}
}

// MulAddRow sets dst[i] ^= c * src[i] for non-overlapping rows. A zero
// coefficient is a no-op; coefficient one degenerates to AddRow. It
// runs 16 bytes per step on amd64 with SSSE3, 8-byte words elsewhere,
// with a scalar byte tail.
//
//polyvet:noalloc matrix-elimination hot path; runs O(K^2) times per block
func MulAddRow(dst, src []byte, c byte) {
	switch {
	case c == 0 || len(src) == 0:
		return
	case c == 1:
		AddRow(dst, src)
		return
	}
	_ = dst[len(src)-1]
	i := 0
	if useAVX2 {
		if n := len(src) &^ 31; n > 0 {
			galMulAddAVX2(&nibTab[c][0], &dst[0], &src[0], n)
			i = n
		}
	}
	if useSSSE3 {
		if n := (len(src) - i) &^ 15; n > 0 {
			galMulAddSSSE3(&nibTab[c][0], &dst[i], &src[i], n)
			i += n
		}
	}
	mulAddRowWords(dst[i:len(src)], src[i:], c)
}

// mulAddRowWords is the portable word-wise core of MulAddRow: 8 bytes
// at a time via the bit-plane multiply, then a scalar byte tail. It is
// the whole kernel on non-SSSE3 targets and handles the sub-16-byte
// remainder on amd64. c must be neither 0 nor 1. Written in the same
// length-cursor style as addRowWords so the only bounds checks are the
// two reslices outside the loops; the exp-table lookups in the tail
// are proven in-bounds by expTable's 511-entry length.
//
//polyvet:noalloc innermost multiply-accumulate kernel of matrix elimination
//polyvet:nobce per-element bounds checks would halve word-loop throughput
func mulAddRowWords(dst, src []byte, c byte) {
	dst = dst[:len(src)] // single bounds check; hints len(dst) == len(src)
	m := mulPlanes(c)
	m0, m1, m2, m3 := m[0], m[1], m[2], m[3]
	m4, m5, m6, m7 := m[4], m[5], m[6], m[7]
	for len(dst) >= 8 && len(src) >= 8 {
		w := binary.LittleEndian.Uint64(src)
		p := (w&lsbLanes)*m0 ^ (w>>1&lsbLanes)*m1 ^
			(w>>2&lsbLanes)*m2 ^ (w>>3&lsbLanes)*m3 ^
			(w>>4&lsbLanes)*m4 ^ (w>>5&lsbLanes)*m5 ^
			(w>>6&lsbLanes)*m6 ^ (w>>7&lsbLanes)*m7
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^p)
		dst = dst[8:]
		src = src[8:]
	}
	dst = dst[:len(src)]
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// MulAddRowScalar is the log/exp-table byte-at-a-time reference for
// MulAddRow, retained for parity tests and as the perf baseline.
func MulAddRowScalar(dst, src []byte, c byte) {
	switch {
	case c == 0 || len(src) == 0:
		return
	case c == 1:
		AddRowScalar(dst, src)
		return
	}
	lc := int(logTable[c])
	_ = dst[len(src)-1]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// ScaleRow multiplies every element of row by c in place, 16 bytes per
// step on amd64 with SSSE3, 8-byte words elsewhere, with a scalar byte
// tail.
//
//polyvet:noalloc pivot-normalization hot path of matrix elimination
func ScaleRow(row []byte, c byte) {
	switch c {
	case 0:
		for i := range row {
			row[i] = 0
		}
		return
	case 1:
		return
	}
	i := 0
	if useAVX2 {
		if n := len(row) &^ 31; n > 0 {
			galMulAVX2(&nibTab[c][0], &row[0], n)
			i = n
		}
	}
	if useSSSE3 {
		if n := (len(row) - i) &^ 15; n > 0 {
			galMulSSSE3(&nibTab[c][0], &row[i], n)
			i += n
		}
	}
	scaleRowWords(row[i:], c)
}

// scaleRowWords is the portable word-wise core of ScaleRow. c must be
// neither 0 nor 1. Length-cursor style: the loop conditions cover
// every access, so no bounds check survives into either loop.
//
//polyvet:noalloc in-place scale kernel of matrix elimination
//polyvet:nobce per-element bounds checks would halve word-loop throughput
func scaleRowWords(row []byte, c byte) {
	m := mulPlanes(c)
	for len(row) >= 8 {
		binary.LittleEndian.PutUint64(row,
			mulWord(binary.LittleEndian.Uint64(row), &m))
		row = row[8:]
	}
	lc := int(logTable[c])
	for i, s := range row {
		if s != 0 {
			row[i] = expTable[lc+int(logTable[s])]
		}
	}
}

// ScaleRowScalar is the byte-at-a-time reference for ScaleRow, retained
// for parity tests and as the perf baseline.
func ScaleRowScalar(row []byte, c byte) {
	switch c {
	case 0:
		for i := range row {
			row[i] = 0
		}
		return
	case 1:
		return
	}
	lc := int(logTable[c])
	for i, s := range row {
		if s != 0 {
			row[i] = expTable[lc+int(logTable[s])]
		}
	}
}

// DotProduct returns the GF(2^8) inner product of a and b, which must
// have equal length.
func DotProduct(a, b []byte) byte {
	var acc byte
	for i := range a {
		acc ^= Mul(a[i], b[i])
	}
	return acc
}
