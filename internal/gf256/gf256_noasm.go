//go:build !amd64 || !gc

package gf256

// Non-amd64 (or non-gc toolchain) targets use the portable word-wise
// kernels only.
const useSSSE3 = false
const haveSSE2 = false
const useAVX2 = false

func cpuidFeatureECX() uint32 { return 0 }

func galXorAVX2(dst, src *byte, n int) {
	panic("gf256: AVX2 kernel called without asm support")
}

func galMulAddAVX2(tab, dst, src *byte, n int) {
	panic("gf256: AVX2 kernel called without asm support")
}

func galMulAVX2(tab, row *byte, n int) {
	panic("gf256: AVX2 kernel called without asm support")
}

func galXorSSE2(dst, src *byte, n int) {
	panic("gf256: SSE2 kernel called without asm support")
}

func galMulAddSSSE3(tab, dst, src *byte, n int) {
	panic("gf256: SSSE3 kernel called without asm support")
}

func galMulSSSE3(tab, row *byte, n int) {
	panic("gf256: SSSE3 kernel called without asm support")
}
