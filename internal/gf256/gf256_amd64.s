//go:build amd64 && gc

#include "textflag.h"

// Low-nibble lane mask used by both kernels.
DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA, $16

// func cpuidFeatureECX() (ecx uint32)
TEXT ·cpuidFeatureECX(SB), NOSPLIT, $0-4
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, ecx+0(FP)
	RET

// func galXorSSE2(dst, src *byte, n int)
//
// dst[i] ^= src[i] for i in [0, n), n a positive multiple of 16.
// SSE2 only, so available on every amd64.
TEXT ·galXorSSE2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xorLoop:
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X1, X0
	MOVOU X0, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNZ   xorLoop
	RET

// func galMulAddSSSE3(tab, dst, src *byte, n int)
//
// dst[i] ^= mul(src[i]) for i in [0, n), n a positive multiple of 16.
// tab is the 32-byte nibble product table: products of the coefficient
// with the 16 low-nibble values, then with the 16 high-nibble values.
// Each 16-byte block: split src bytes into nibbles, PSHUFB each half
// through its table, XOR the halves and the destination.
TEXT ·galMulAddSSSE3(SB), NOSPLIT, $0-32
	MOVQ  tab+0(FP), AX
	MOVQ  dst+8(FP), DI
	MOVQ  src+16(FP), SI
	MOVQ  n+24(FP), CX
	MOVOU (AX), X6            // low-nibble product table
	MOVOU 16(AX), X7          // high-nibble product table
	MOVOU nibbleMask<>(SB), X5

mulAddLoop:
	MOVOU  (SI), X0
	MOVO   X0, X1
	PSRLQ  $4, X1
	PAND   X5, X0             // low nibbles
	PAND   X5, X1             // high nibbles
	MOVO   X6, X2
	MOVO   X7, X3
	PSHUFB X0, X2             // products of low nibbles
	PSHUFB X1, X3             // products of high nibbles
	PXOR   X3, X2
	MOVOU  (DI), X4
	PXOR   X4, X2
	MOVOU  X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNZ    mulAddLoop
	RET

// func galMulSSSE3(tab, row *byte, n int)
//
// row[i] = mul(row[i]) for i in [0, n), n a positive multiple of 16.
TEXT ·galMulSSSE3(SB), NOSPLIT, $0-24
	MOVQ  tab+0(FP), AX
	MOVQ  row+8(FP), DI
	MOVQ  n+16(FP), CX
	MOVOU (AX), X6
	MOVOU 16(AX), X7
	MOVOU nibbleMask<>(SB), X5

mulLoop:
	MOVOU  (DI), X0
	MOVO   X0, X1
	PSRLQ  $4, X1
	PAND   X5, X0
	PAND   X5, X1
	MOVO   X6, X2
	MOVO   X7, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR   X3, X2
	MOVOU  X2, (DI)
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNZ    mulLoop
	RET
