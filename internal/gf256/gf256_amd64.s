//go:build amd64 && gc

#include "textflag.h"

// Low-nibble lane mask used by both kernels.
DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA, $16

// func cpuidFeatureECX() (ecx uint32)
TEXT ·cpuidFeatureECX(SB), NOSPLIT, $0-4
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, ecx+0(FP)
	RET

// func galXorSSE2(dst, src *byte, n int)
//
// dst[i] ^= src[i] for i in [0, n), n a positive multiple of 16.
// SSE2 only, so available on every amd64.
TEXT ·galXorSSE2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xorLoop:
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X1, X0
	MOVOU X0, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNZ   xorLoop
	RET

// func galMulAddSSSE3(tab, dst, src *byte, n int)
//
// dst[i] ^= mul(src[i]) for i in [0, n), n a positive multiple of 16.
// tab is the 32-byte nibble product table: products of the coefficient
// with the 16 low-nibble values, then with the 16 high-nibble values.
// Each 16-byte block: split src bytes into nibbles, PSHUFB each half
// through its table, XOR the halves and the destination.
TEXT ·galMulAddSSSE3(SB), NOSPLIT, $0-32
	MOVQ  tab+0(FP), AX
	MOVQ  dst+8(FP), DI
	MOVQ  src+16(FP), SI
	MOVQ  n+24(FP), CX
	MOVOU (AX), X6            // low-nibble product table
	MOVOU 16(AX), X7          // high-nibble product table
	MOVOU nibbleMask<>(SB), X5

mulAddLoop:
	MOVOU  (SI), X0
	MOVO   X0, X1
	PSRLQ  $4, X1
	PAND   X5, X0             // low nibbles
	PAND   X5, X1             // high nibbles
	MOVO   X6, X2
	MOVO   X7, X3
	PSHUFB X0, X2             // products of low nibbles
	PSHUFB X1, X3             // products of high nibbles
	PXOR   X3, X2
	MOVOU  (DI), X4
	PXOR   X4, X2
	MOVOU  X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNZ    mulAddLoop
	RET

// func galMulSSSE3(tab, row *byte, n int)
//
// row[i] = mul(row[i]) for i in [0, n), n a positive multiple of 16.
TEXT ·galMulSSSE3(SB), NOSPLIT, $0-24
	MOVQ  tab+0(FP), AX
	MOVQ  row+8(FP), DI
	MOVQ  n+16(FP), CX
	MOVOU (AX), X6
	MOVOU 16(AX), X7
	MOVOU nibbleMask<>(SB), X5

mulLoop:
	MOVOU  (DI), X0
	MOVO   X0, X1
	PSRLQ  $4, X1
	PAND   X5, X0
	PAND   X5, X1
	MOVO   X6, X2
	MOVO   X7, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR   X3, X2
	MOVOU  X2, (DI)
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNZ    mulLoop
	RET

// func cpuidLeaf7EBX() (ebx uint32)
TEXT ·cpuidLeaf7EBX(SB), NOSPLIT, $0-4
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, ebx+0(FP)
	RET

// func xgetbv0() (eax uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-4
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	RET

// func galXorAVX2(dst, src *byte, n int)
//
// dst[i] ^= src[i] for i in [0, n), n a positive multiple of 32.
// 64 bytes per main-loop step, one 32-byte step for the remainder.
TEXT ·galXorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	SUBQ $64, CX
	JL   xorTail32

xorLoop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	JGE     xorLoop64

xorTail32:
	ADDQ $64, CX
	JZ   xorDone
	// n is a multiple of 32, so exactly 32 bytes remain.
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

xorDone:
	VZEROUPPER
	RET

// func galMulAddAVX2(tab, dst, src *byte, n int)
//
// dst[i] ^= mul(src[i]) for i in [0, n), n a positive multiple of 32.
// The 16-byte nibble product tables are broadcast to both ymm lanes;
// VPSHUFB shuffles within each lane, so the SSSE3 scheme carries over
// unchanged at twice the width.
TEXT ·galMulAddAVX2(SB), NOSPLIT, $0-32
	MOVQ           tab+0(FP), AX
	MOVQ           dst+8(FP), DI
	MOVQ           src+16(FP), SI
	MOVQ           n+24(FP), CX
	VBROADCASTI128 (AX), Y6           // low-nibble product table
	VBROADCASTI128 16(AX), Y7         // high-nibble product table
	VBROADCASTI128 nibbleMask<>(SB), Y5

mulAddLoop32:
	VMOVDQU (SI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y5, Y0, Y0                // low nibbles
	VPAND   Y5, Y1, Y1                // high nibbles
	VPSHUFB Y0, Y6, Y2                // products of low nibbles
	VPSHUFB Y1, Y7, Y3                // products of high nibbles
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulAddLoop32
	VZEROUPPER
	RET

// func galMulAVX2(tab, row *byte, n int)
//
// row[i] = mul(row[i]) for i in [0, n), n a positive multiple of 32.
TEXT ·galMulAVX2(SB), NOSPLIT, $0-24
	MOVQ           tab+0(FP), AX
	MOVQ           row+8(FP), DI
	MOVQ           n+16(FP), CX
	VBROADCASTI128 (AX), Y6
	VBROADCASTI128 16(AX), Y7
	VBROADCASTI128 nibbleMask<>(SB), Y5

mulLoop32:
	VMOVDQU (DI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y5, Y0, Y0
	VPAND   Y5, Y1, Y1
	VPSHUFB Y0, Y6, Y2
	VPSHUFB Y1, Y7, Y3
	VPXOR   Y3, Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulLoop32
	VZEROUPPER
	RET
