package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// Parity tests: the word-wise kernels must be byte-identical to the
// scalar reference paths for every coefficient, every length (covering
// all word/tail splits) and unaligned sub-slices.

func randRow(rng *rand.Rand, n int) []byte {
	row := make([]byte, n)
	rng.Read(row)
	// Sprinkle zeros so the scalar paths' zero-skip branch is exercised.
	for i := 0; i < n/4; i++ {
		row[rng.Intn(n)] = 0
	}
	return row
}

func TestAddRowParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 70; n++ {
		src := randRow(rng, n)
		dst := randRow(rng, n)
		want := append([]byte(nil), dst...)
		AddRowScalar(want, src)
		got := append([]byte(nil), dst...)
		AddRow(got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("AddRow n=%d diverges from scalar", n)
		}
	}
}

func TestMulAddRowParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1024, 1031} {
		src := randRow(rng, n)
		dst := randRow(rng, n)
		for c := 0; c < 256; c++ {
			want := append([]byte(nil), dst...)
			MulAddRowScalar(want, src, byte(c))
			got := append([]byte(nil), dst...)
			MulAddRow(got, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAddRow n=%d c=%d diverges from scalar", n, c)
			}
		}
	}
}

func TestScaleRowParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 8, 9, 16, 65, 1024, 1031} {
		row := randRow(rng, n)
		for c := 0; c < 256; c++ {
			want := append([]byte(nil), row...)
			ScaleRowScalar(want, byte(c))
			got := append([]byte(nil), row...)
			ScaleRow(got, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("ScaleRow n=%d c=%d diverges from scalar", n, c)
			}
		}
	}
}

// The portable word-wise cores must stay byte-identical to the scalar
// paths too — on amd64 the exported kernels dispatch to SSSE3, so the
// fallback needs its own parity coverage.
func TestPortableWordCoresParity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 7, 8, 9, 15, 16, 17, 64, 1031} {
		src := randRow(rng, n)
		dst := randRow(rng, n)
		wantAdd := append([]byte(nil), dst...)
		AddRowScalar(wantAdd, src)
		gotAdd := append([]byte(nil), dst...)
		addRowWords(gotAdd, src)
		if !bytes.Equal(gotAdd, wantAdd) {
			t.Fatalf("addRowWords n=%d diverges from scalar", n)
		}
		for _, c := range []byte{2, 3, 0x35, 0x80, 0xFF} {
			want := append([]byte(nil), dst...)
			MulAddRowScalar(want, src, c)
			got := append([]byte(nil), dst...)
			mulAddRowWords(got, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulAddRowWords n=%d c=%d diverges from scalar", n, c)
			}
			wantRow := append([]byte(nil), src...)
			ScaleRowScalar(wantRow, c)
			gotRow := append([]byte(nil), src...)
			scaleRowWords(gotRow, c)
			if !bytes.Equal(gotRow, wantRow) {
				t.Fatalf("scaleRowWords n=%d c=%d diverges from scalar", n, c)
			}
		}
	}
}

// Unaligned sub-slices: the word loop must not assume 8-byte alignment
// of the slice data pointer.
func TestRowOpsUnalignedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	backingSrc := randRow(rng, 256)
	backingDst := randRow(rng, 256)
	for off := 0; off < 8; off++ {
		for _, n := range []int{24, 25, 31} {
			src := backingSrc[off : off+n]
			dst := backingDst[off : off+n]
			want := append([]byte(nil), dst...)
			MulAddRowScalar(want, src, 0x53)
			got := append([]byte(nil), dst...)
			MulAddRow(got, src, 0x53)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAddRow off=%d n=%d diverges from scalar", off, n)
			}
		}
	}
}

func TestMulWordMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var w [8]byte
	for c := 0; c < 256; c++ {
		rng.Read(w[:])
		var in, want [8]byte
		copy(in[:], w[:])
		for i := range w {
			want[i] = Mul(w[i], byte(c))
		}
		var got [8]byte
		putUint64 := func(b []byte, v uint64) {
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
		}
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(in[i]) << (8 * i)
		}
		m := mulPlanes(byte(c))
		putUint64(got[:], mulWord(v, &m))
		if got != want {
			t.Fatalf("mulWord c=%d: got %v want %v", c, got, want)
		}
	}
}

func BenchmarkMulAddRowScalar(b *testing.B) {
	dst := make([]byte, 1280)
	src := make([]byte, 1280)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddRowScalar(dst, src, 0x35)
	}
}

func BenchmarkAddRowScalar(b *testing.B) {
	dst := make([]byte, 1280)
	src := make([]byte, 1280)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddRowScalar(dst, src)
	}
}

func BenchmarkScaleRow(b *testing.B) {
	row := make([]byte, 1280)
	for i := range row {
		row[i] = byte(i*17 + 1)
	}
	b.SetBytes(int64(len(row)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScaleRow(row, 0x35)
	}
}

func BenchmarkScaleRowScalar(b *testing.B) {
	row := make([]byte, 1280)
	for i := range row {
		row[i] = byte(i*17 + 1)
	}
	b.SetBytes(int64(len(row)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScaleRowScalar(row, 0x35)
	}
}
