//go:build amd64 && gc

package gf256

// useSSSE3 gates the PSHUFB kernels. SSSE3 (2006) is near-universal on
// amd64 but not part of the GOAMD64=v1 baseline, so it is detected at
// startup via CPUID.
var useSSSE3 = cpuidFeatureECX()&(1<<9) != 0

// haveSSE2 gates the XOR kernel; SSE2 is part of the amd64 baseline.
const haveSSE2 = true

// cpuidFeatureECX returns ECX of CPUID leaf 1 (feature flags;
// bit 9 = SSSE3). Implemented in gf256_amd64.s.
func cpuidFeatureECX() (ecx uint32)

// galXorSSE2 computes dst[i] ^= src[i] for i in [0, n) where n is a
// positive multiple of 16. dst and src must not overlap. Implemented
// in gf256_amd64.s.
//
//go:noescape
func galXorSSE2(dst, src *byte, n int)

// galMulAddSSSE3 computes dst[i] ^= c*src[i] for i in [0, n) where tab
// points at the 32-byte nibble product table for c (nibTab[c]) and n
// is a positive multiple of 16. dst and src must not overlap.
// Implemented in gf256_amd64.s.
//
//go:noescape
func galMulAddSSSE3(tab, dst, src *byte, n int)

// galMulSSSE3 computes row[i] = c*row[i] for i in [0, n), with tab and
// n as in galMulAddSSSE3. Implemented in gf256_amd64.s.
//
//go:noescape
func galMulSSSE3(tab, row *byte, n int)

// useAVX2 gates the 32-byte-wide kernels: the CPU must report AVX2
// (CPUID leaf 7 EBX bit 5) and the OS must save/restore the ymm state
// (OSXSAVE set and XCR0 bits 1:2 enabled), the standard two-part check.
var useAVX2 = func() bool {
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx := cpuidFeatureECX(); ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	if xgetbv0()&6 != 6 {
		return false
	}
	return cpuidLeaf7EBX()&(1<<5) != 0
}()

// cpuidLeaf7EBX returns EBX of CPUID leaf 7 subleaf 0 (extended
// features; bit 5 = AVX2). Implemented in gf256_amd64.s.
func cpuidLeaf7EBX() (ebx uint32)

// xgetbv0 returns the low 32 bits of XCR0 (the XSAVE feature mask;
// bits 1:2 = SSE and AVX register state). Implemented in gf256_amd64.s.
func xgetbv0() (eax uint32)

// galXorAVX2 computes dst[i] ^= src[i] for i in [0, n) where n is a
// positive multiple of 32, 64 bytes per unrolled step. dst and src must
// not overlap. Implemented in gf256_amd64.s.
//
//go:noescape
func galXorAVX2(dst, src *byte, n int)

// galMulAddAVX2 is galMulAddSSSE3 widened to 32-byte steps: the 16-byte
// nibble tables are broadcast to both ymm lanes, so the same in-lane
// PSHUFB trick applies. n must be a positive multiple of 32.
//
//go:noescape
func galMulAddAVX2(tab, dst, src *byte, n int)

// galMulAVX2 computes row[i] = c*row[i] for i in [0, n), with tab and n
// as in galMulAddAVX2.
//
//go:noescape
func galMulAVX2(tab, row *byte, n int)
