//go:build amd64 && gc

package gf256

// useSSSE3 gates the PSHUFB kernels. SSSE3 (2006) is near-universal on
// amd64 but not part of the GOAMD64=v1 baseline, so it is detected at
// startup via CPUID.
var useSSSE3 = cpuidFeatureECX()&(1<<9) != 0

// haveSSE2 gates the XOR kernel; SSE2 is part of the amd64 baseline.
const haveSSE2 = true

// cpuidFeatureECX returns ECX of CPUID leaf 1 (feature flags;
// bit 9 = SSSE3). Implemented in gf256_amd64.s.
func cpuidFeatureECX() (ecx uint32)

// galXorSSE2 computes dst[i] ^= src[i] for i in [0, n) where n is a
// positive multiple of 16. dst and src must not overlap. Implemented
// in gf256_amd64.s.
//
//go:noescape
func galXorSSE2(dst, src *byte, n int)

// galMulAddSSSE3 computes dst[i] ^= c*src[i] for i in [0, n) where tab
// points at the 32-byte nibble product table for c (nibTab[c]) and n
// is a positive multiple of 16. dst and src must not overlap.
// Implemented in gf256_amd64.s.
//
//go:noescape
func galMulAddSSSE3(tab, dst, src *byte, n int)

// galMulSSSE3 computes row[i] = c*row[i] for i in [0, n), with tab and
// n as in galMulAddSSSE3. Implemented in gf256_amd64.s.
//
//go:noescape
func galMulSSSE3(tab, row *byte, n int)
