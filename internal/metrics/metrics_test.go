package metrics

import (
	"math"
	"testing"
)

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	l := Labels{Scenario: "incast", Backend: "rq"}
	h1 := r.Histogram("fct_s", l)
	h2 := r.Histogram("fct_s", Labels{Scenario: "incast", Backend: "rq"})
	if h1 != h2 {
		t.Fatal("same (name, labels) must return the same histogram")
	}
	if r.Histogram("fct_s", Labels{Scenario: "incast", Backend: "tcp"}) == h1 {
		t.Fatal("different labels must return a different histogram")
	}
	c := r.Counter("flows", l)
	if c != r.Counter("flows", l) {
		t.Fatal("same counter must be returned")
	}
	g := r.Gauge("peak", l)
	if g != r.Gauge("peak", l) {
		t.Fatal("same gauge must be returned")
	}
}

func TestRegistryNilChains(t *testing.T) {
	var r *Registry
	// The nil registry hands out nil instruments; recording through
	// them must be a no-op, not a panic — the disabled path.
	r.Histogram("x", Labels{}).Record(1)
	r.Counter("x", Labels{}).Add(1)
	r.Gauge("x", Labels{}).Set(1)
	r.EachHistogram(func(string, Labels, *Histogram) { t.Fatal("nil registry visited a histogram") })
	r.EachCounter(func(string, Labels, *Counter) { t.Fatal("nil registry visited a counter") })
	r.EachGauge(func(string, Labels, *Gauge) { t.Fatal("nil registry visited a gauge") })
}

func TestRegistryDeterministicOrder(t *testing.T) {
	build := func() []string {
		r := NewRegistry()
		r.Histogram("z_last", Labels{Scenario: "b"})
		r.Histogram("a_first", Labels{Scenario: "b"})
		r.Histogram("a_first", Labels{Scenario: "a"})
		var names []string
		r.EachHistogram(func(name string, l Labels, h *Histogram) {
			names = append(names, name+":"+l.String())
		})
		return names
	}
	want := build()
	if len(want) != 3 || want[0] != "a_first:b/" {
		t.Fatalf("unexpected order: %v (labels iterate in interning order)", want)
	}
	for i := 0; i < 10; i++ {
		got := build()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration order not deterministic: %v vs %v", got, want)
			}
		}
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-1)
	if c.Value() != 2 {
		t.Fatalf("Counter = %d, want 2", c.Value())
	}
	var c2 Counter
	c2.Add(5)
	c.Merge(&c2)
	if c.Value() != 7 {
		t.Fatalf("merged Counter = %d, want 7", c.Value())
	}
	var g Gauge
	g.Set(3)
	g.Set(1) // gauges keep the peak so merges are order-independent
	if g.Value() != 3 {
		t.Fatalf("Gauge = %g, want peak 3", g.Value())
	}
	var g2 Gauge
	g2.Set(9)
	g.Merge(&g2)
	if g.Value() != 9 {
		t.Fatalf("merged Gauge = %g, want 9", g.Value())
	}
	var nilC *Counter
	var nilG *Gauge
	nilC.Add(1)
	nilG.Set(1)
	if nilC.Value() != 0 || nilG.Value() != 0 {
		t.Fatal("nil counter/gauge must read 0")
	}
}

func TestCounterGaugeAllocFree(t *testing.T) {
	c := &Counter{}
	if allocs := testing.AllocsPerRun(100, func() { c.Add(1) }); allocs != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", allocs)
	}
	g := &Gauge{}
	if allocs := testing.AllocsPerRun(100, func() { g.Set(2) }); allocs != 0 {
		t.Errorf("Gauge.Set allocates %v per op, want 0", allocs)
	}
}

func TestSLO(t *testing.T) {
	var none SLO
	if none.Enabled() {
		t.Fatal("zero SLO must be disabled")
	}
	s := SLO{FCTDeadline: 0.5, GoodputFloor: 1.0}
	if !s.Enabled() {
		t.Fatal("SLO with criteria must be enabled")
	}
	if !s.MetFCT(0.4) || s.MetFCT(0.6) {
		t.Fatal("FCT deadline misapplied")
	}
	if !s.MetGoodput(1.5) || s.MetGoodput(0.5) {
		t.Fatal("goodput floor misapplied")
	}
	// A stalled flow (NaN FCT, NaN/zero goodput) always misses.
	if s.MetFCT(math.NaN()) || s.MetGoodput(math.NaN()) {
		t.Fatal("NaN must miss an enabled criterion")
	}
	if (SLO{GoodputFloor: 1}).MetFCT(math.NaN()) {
		t.Fatal("NaN FCT must miss even with the deadline disabled")
	}
}
