package metrics

import "math"

// Histogram layout. Positive values are bucketed log-linearly: the
// exponent range [minExp, maxExp] gives one octave [2^o, 2^(o+1)) per
// exponent o, and each octave is split into SubBuckets equal-width
// sub-buckets. Within a sub-bucket every value is represented by the
// bucket midpoint, so the representation error is at most half the
// bucket width: RelError = 1/(2*SubBuckets) relative. Values <= 0
// land in a dedicated zero bucket; positive values below 2^minExp
// clamp to the lowest bucket and values at or above 2^(maxExp+1)
// clamp to the highest (the exact min and max are tracked separately,
// so the extreme quantiles stay exact even for clamped samples). NaN
// samples are counted and otherwise ignored — one stalled-flow NaN
// must not poison a distribution.
const (
	subBits = 6
	// SubBuckets is the number of sub-buckets per octave.
	SubBuckets = 1 << subBits
	// minExp/maxExp bound the covered octaves: [2^-40, 2^40) spans
	// sub-nanosecond FCTs to tens-of-billions packet counts.
	minExp     = -40
	maxExp     = 39
	numOctaves = maxExp - minExp + 1
	// NumBuckets is the dense bucket count (excluding the zero bucket).
	NumBuckets = numOctaves * SubBuckets
)

// RelError is the documented worst-case relative error of a quantile
// read from the histogram versus the exact interpolated percentile of
// the recorded samples (stats.Percentile), for positive samples within
// the covered range: half of one sub-bucket's relative width,
// 1/(2*64) ≈ 0.78%.
const RelError = 1.0 / (2 * SubBuckets)

// maxTrackable is the clamp bound for recorded values: 2^(maxExp+1).
var maxTrackable = math.Ldexp(1, maxExp+1)

// bucketMid holds each bucket's representative value (its midpoint),
// shared by all histograms.
var bucketMid = makeBucketMids()

func makeBucketMids() *[NumBuckets]float64 {
	var m [NumBuckets]float64
	for i := range m {
		o := minExp + i>>subBits
		s := i & (SubBuckets - 1)
		m[i] = math.Ldexp(1+(float64(s)+0.5)/SubBuckets, o)
	}
	return &m
}

// BucketValue returns the representative (midpoint) value of dense
// bucket i — the inverse of the bucketing, for snapshot consumers.
func BucketValue(i int) float64 {
	return bucketMid[i]
}

// Histogram is a log-linear HDR-style histogram. Its state — bucket
// counts, zero/NaN counts, exact min/max — forms a commutative
// monoid under Merge, so merging any number of histograms in any
// order (or any grouping) yields identical state and byte-identical
// snapshots. Create with NewHistogram; the zero value is not useful.
// All methods are safe on a nil receiver — a nil *Histogram IS the
// disabled state, so recording sites need no separate enabled flag.
type Histogram struct {
	counts []uint64
	zero   uint64 // samples <= 0
	nans   uint64 // NaN samples (skipped, not part of count)
	count  uint64 // recorded samples, including zeros, excluding NaNs
	min    float64
	max    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, NumBuckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Record adds one sample. On a nil receiver (metering disabled) it is
// a single branch and no work.
//
//polyvet:noalloc called per simulated packet/flow; pure index arithmetic
//polyvet:inline the disabled-metering case must cost one branch, not a call
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	h.record(v)
}

// record is the enabled path of Record.
//
//polyvet:noalloc called per simulated packet/flow; pure index arithmetic
func (h *Histogram) record(v float64) {
	if v != v { // NaN
		h.nans++
		return
	}
	if v > maxTrackable {
		v = maxTrackable
	} else if v < -maxTrackable {
		v = -maxTrackable
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	if v <= 0 {
		h.zero++
		return
	}
	// v = f * 2^e with f in [0.5, 1): octave o = e-1, sub-bucket from
	// the top subBits+1 mantissa bits of f.
	f, e := math.Frexp(v)
	o := e - 1
	switch {
	case o < minExp:
		h.counts[0]++
	case o > maxExp:
		h.counts[NumBuckets-1]++
	default:
		h.counts[(o-minExp)<<subBits+int(f*(2*SubBuckets))-SubBuckets]++
	}
}

// Merge folds o's samples into h: bucket-wise count addition plus
// min/max. Addition and min/max are associative and commutative, so
// any merge order or grouping produces identical state — the property
// that keeps parallel sweep aggregation byte-identical. o is not
// modified.
//
//polyvet:noalloc snapshot-merge runs per (cell, repetition) in sweep aggregation; vector add over fixed buckets
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.zero += o.zero
	h.nans += o.nans
	h.count += o.count
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples (NaNs excluded).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// NaNs returns the number of NaN samples skipped.
func (h *Histogram) NaNs() uint64 {
	if h == nil {
		return 0
	}
	return h.nans
}

// Min returns the exact minimum recorded sample (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum recorded sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the bucket-midpoint
// representation (samples <= 0 contribute 0), within RelError of the
// exact mean for positive in-range samples. Computed by a fixed-order
// scan over bucket counts, so it is identical however the histogram
// was merged together.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c != 0 {
			sum += bucketMid[i] * float64(c)
		}
	}
	return sum / float64(h.count)
}

// Quantile returns the p-th percentile (0..100) of the recorded
// distribution, mirroring stats.Percentile's convention: linear
// interpolation between order statistics at position p/100*(count-1).
// Order statistics are bucket midpoints clamped to [min, max] (ranks
// 0 and count-1 are the exact min and max), so for positive samples
// within the covered range the result is within RelError of
// stats.Percentile over the raw samples. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	pos := p / 100 * float64(h.count-1)
	lo := uint64(pos)
	frac := pos - float64(lo)
	v := h.valueAtRank(lo)
	if frac == 0 || lo+1 >= h.count {
		return v
	}
	return v*(1-frac) + h.valueAtRank(lo+1)*frac
}

// valueAtRank returns the representative value of the r-th (0-based)
// order statistic. The caller guarantees count > 0 and r < count.
func (h *Histogram) valueAtRank(r uint64) float64 {
	if r == 0 {
		return h.min
	}
	if r >= h.count-1 {
		return h.max
	}
	cum := h.zero
	if r < cum {
		return h.clampRange(0)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if r < cum {
			return h.clampRange(bucketMid[i])
		}
	}
	return h.max
}

// clampRange clamps a representative value to the exact [min, max]
// envelope, keeping rank values monotone and never outside the
// observed range.
func (h *Histogram) clampRange(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// CDF returns the fraction of recorded samples <= v, at bucket
// resolution: all samples sharing v's bucket count as <= v. Returns 0
// when empty or for v < 0.
func (h *Histogram) CDF(v float64) float64 {
	if h == nil || h.count == 0 || v != v || v < 0 {
		return 0
	}
	cum := h.zero
	if v > 0 {
		hi := NumBuckets - 1
		if v < maxTrackable {
			f, e := math.Frexp(v)
			o := e - 1
			switch {
			case o < minExp:
				hi = 0
			case o > maxExp:
				hi = NumBuckets - 1
			default:
				hi = (o-minExp)<<subBits + int(f*(2*SubBuckets)) - SubBuckets
			}
		}
		for i := 0; i <= hi; i++ {
			cum += h.counts[i]
		}
	}
	return float64(cum) / float64(h.count)
}

// BucketCount is one populated bucket of a Snapshot.
type BucketCount struct {
	// Index is the dense bucket index; BucketValue(Index) recovers the
	// representative value.
	Index int `json:"i"`
	// Count is the bucket's sample count.
	Count uint64 `json:"n"`
}

// Snapshot is the portable, sparse export of a histogram: only
// populated buckets, in ascending index order, so equal histogram
// state always marshals to identical JSON bytes.
type Snapshot struct {
	// SubBuckets echoes the layout so readers can interpret indices.
	SubBuckets int    `json:"sub_buckets"`
	Count      uint64 `json:"count"`
	Zero       uint64 `json:"zero,omitempty"`
	NaNs       uint64 `json:"nans,omitempty"`
	// Min and Max are the exact extremes (0 when the histogram is
	// empty — infinities do not survive JSON).
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current state. Nil-safe (returns
// nil).
func (h *Histogram) Snapshot() *Snapshot {
	if h == nil {
		return nil
	}
	s := &Snapshot{SubBuckets: SubBuckets, Count: h.count, Zero: h.zero, NaNs: h.nans}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Index: i, Count: c})
		}
	}
	return s
}
