// Package metrics is PolyMeter: a deterministic, allocation-free,
// mergeable metrics layer for the simulation stack. It provides
//
//   - log-linear HDR-style Histograms (FCT, per-flow goodput, queue
//     depth, stall duration) whose quantiles carry a bounded relative
//     error (RelError) and whose state forms a commutative monoid, so
//     merging snapshots in any order yields byte-identical results;
//   - Counters and Gauges for scalar facts (flows completed, faults
//     injected, peak open sessions);
//   - a Registry that interns (scenario, backend, tenant) label sets
//     and hands out one instrument per (name, labels) pair.
//
// Like PolyScope (internal/telemetry), the whole layer hangs off
// nil-checked pointers: every recording site is a method call whose
// receiver is nil when metering is disabled, so the disabled path is a
// single predictable branch and a metered run is bit-identical to an
// unmetered one. Instruments consume no randomness and no wall clock;
// a metered run's histograms are byte-identical for a given seed at
// any sweep parallelism.
package metrics

import (
	"maps"
	"slices"
)

// Labels identifies one instrument instance: which scenario and
// backend produced the samples, and (for multi-tenant workloads like
// the storage cluster's GET/PUT split) which tenant. Empty fields are
// simply unused axes.
type Labels struct {
	Scenario string `json:"scenario,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
}

// String renders the label set as "scenario/backend/tenant" with empty
// trailing axes trimmed.
func (l Labels) String() string {
	s := l.Scenario + "/" + l.Backend
	if l.Tenant != "" {
		s += "/" + l.Tenant
	}
	return s
}

// Counter is a monotonic (or at least merge-by-sum) integer metric.
// All methods are safe on a nil receiver and do nothing — a nil
// *Counter IS the disabled state.
type Counter struct {
	n int64
}

// Add adds d to the counter. On a nil receiver (metering disabled) it
// is a single branch and no work.
//
//polyvet:noalloc called per simulated event; one field add
//polyvet:inline the disabled-metering case must cost one branch, not a call
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Value returns the counter's current value (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Merge adds o's count into c (merge of disjoint runs = sum).
//
//polyvet:noalloc merge runs once per (cell, repetition); one field add
func (c *Counter) Merge(o *Counter) {
	if c == nil || o == nil {
		return
	}
	c.n += o.n
}

// Gauge is a last/peak-value scalar metric. Merging takes the maximum,
// which is associative and commutative, so cross-run gauge merges are
// order-independent (a gauge therefore reports the peak across merged
// runs, not the last write). All methods are safe on a nil receiver.
type Gauge struct {
	v   float64
	set bool
}

// Set records v if it exceeds the current value (or if nothing was
// recorded yet). On a nil receiver it is a single branch and no work.
//
//polyvet:noalloc called per simulated event; two fields written
//polyvet:inline the disabled-metering case must cost one branch, not a call
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if !g.set || v > g.v {
		g.v = v
	}
	g.set = true
}

// Value returns the gauge's value (0 on nil or when never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Merge folds o into g (maximum of the two peaks).
//
//polyvet:noalloc merge runs once per (cell, repetition)
func (g *Gauge) Merge(o *Gauge) {
	if g == nil || o == nil || !o.set {
		return
	}
	g.Set(o.v)
}

// instrKey identifies one instrument: metric name plus interned label
// ID.
type instrKey struct {
	name  string
	label int
}

// Registry hands out instruments keyed by (name, labels), interning
// the label sets so repeated lookups cost one map probe and no
// allocation. A Registry is built per run (single goroutine) and read
// after the run completes; it is not safe for concurrent mutation.
// All methods are safe on a nil receiver and return nil instruments,
// so a nil *Registry IS the disabled state and the nil chains through
// to every recording site.
type Registry struct {
	labels   []Labels
	labelIDs map[Labels]int
	hists    map[instrKey]*Histogram
	counters map[instrKey]*Counter
	gauges   map[instrKey]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		labelIDs: map[Labels]int{},
		hists:    map[instrKey]*Histogram{},
		counters: map[instrKey]*Counter{},
		gauges:   map[instrKey]*Gauge{},
	}
}

// labelID interns l and returns its dense ID.
func (r *Registry) labelID(l Labels) int {
	if id, ok := r.labelIDs[l]; ok {
		return id
	}
	id := len(r.labels)
	r.labels = append(r.labels, l)
	r.labelIDs[l] = id
	return id
}

// Histogram returns the histogram registered under (name, l), creating
// it on first use. Nil registry → nil histogram (disabled).
func (r *Registry) Histogram(name string, l Labels) *Histogram {
	if r == nil {
		return nil
	}
	k := instrKey{name, r.labelID(l)}
	h := r.hists[k]
	if h == nil {
		h = NewHistogram()
		r.hists[k] = h
	}
	return h
}

// Counter returns the counter registered under (name, l), creating it
// on first use. Nil registry → nil counter (disabled).
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	k := instrKey{name, r.labelID(l)}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge registered under (name, l), creating it on
// first use. Nil registry → nil gauge (disabled).
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	if r == nil {
		return nil
	}
	k := instrKey{name, r.labelID(l)}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// sortedKeys returns m's keys sorted by (name, label ID) — the
// deterministic export order.
func sortedKeys[V any](m map[instrKey]V) []instrKey {
	ks := slices.Collect(maps.Keys(m))
	slices.SortFunc(ks, func(a, b instrKey) int {
		if a.name != b.name {
			if a.name < b.name {
				return -1
			}
			return 1
		}
		return a.label - b.label
	})
	return ks
}

// EachHistogram visits every registered histogram sorted by (name,
// label interning order). No-op on nil.
func (r *Registry) EachHistogram(fn func(name string, l Labels, h *Histogram)) {
	if r == nil {
		return
	}
	for _, k := range sortedKeys(r.hists) {
		fn(k.name, r.labels[k.label], r.hists[k])
	}
}

// EachCounter visits every registered counter in deterministic order.
func (r *Registry) EachCounter(fn func(name string, l Labels, c *Counter)) {
	if r == nil {
		return
	}
	for _, k := range sortedKeys(r.counters) {
		fn(k.name, r.labels[k.label], r.counters[k])
	}
}

// EachGauge visits every registered gauge in deterministic order.
func (r *Registry) EachGauge(fn func(name string, l Labels, g *Gauge)) {
	if r == nil {
		return
	}
	for _, k := range sortedKeys(r.gauges) {
		fn(k.name, r.labels[k.label], r.gauges[k])
	}
}

// SLO is a per-flow service-level objective: complete within
// FCTDeadline seconds and/or sustain at least GoodputFloor Gbps. A
// zero field disables that criterion; the zero value disables both.
// Attainment is the fraction of flows meeting every enabled criterion.
type SLO struct {
	// FCTDeadline is the flow-completion deadline in seconds (0 = off).
	FCTDeadline float64 `json:"fct_deadline_s,omitempty"`
	// GoodputFloor is the per-flow goodput floor in Gbps (0 = off).
	GoodputFloor float64 `json:"goodput_floor_gbps,omitempty"`
}

// Enabled reports whether any criterion is set.
func (s SLO) Enabled() bool { return s.FCTDeadline > 0 || s.GoodputFloor > 0 }

// MetFCT reports whether a flow-completion time meets the deadline.
// NaN (a stalled flow that never completed) always misses.
func (s SLO) MetFCT(fct float64) bool {
	if s.FCTDeadline <= 0 {
		return fct == fct // only a NaN FCT can miss a disabled deadline
	}
	return fct <= s.FCTDeadline
}

// MetGoodput reports whether a per-flow goodput meets the floor. NaN
// always misses.
func (s SLO) MetGoodput(g float64) bool {
	if s.GoodputFloor <= 0 {
		return g == g
	}
	return g >= s.GoodputFloor
}
