package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"polyraptor/internal/stats"
)

// adversarialSamples builds the distributions the quantile error bound
// is tested against: bimodal (two widely separated modes), heavy-tail
// (Pareto), and single-bucket (all samples inside one log-linear
// bucket), plus uniform as a baseline.
func adversarialSamples(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	n := 2000
	out := map[string][]float64{}

	bimodal := make([]float64, n)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 0.001 * (1 + 0.1*rng.Float64())
		} else {
			bimodal[i] = 10 * (1 + 0.1*rng.Float64())
		}
	}
	out["bimodal"] = bimodal

	heavy := make([]float64, n)
	for i := range heavy {
		u := rng.Float64()
		if u < 1e-6 {
			u = 1e-6
		}
		heavy[i] = 1e-3 / math.Pow(u, 1/1.1) // Pareto(alpha=1.1)
	}
	out["heavy-tail"] = heavy

	// One bucket at 1.0 covers [1, 1+1/64); keep every sample inside.
	single := make([]float64, n)
	for i := range single {
		single[i] = 1.002 + 0.012*rng.Float64()
	}
	out["single-bucket"] = single

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 0.5 + rng.Float64()
	}
	out["uniform"] = uniform
	return out
}

func histOf(samples []float64) *Histogram {
	h := NewHistogram()
	for _, v := range samples {
		h.Record(v)
	}
	return h
}

func TestQuantileRelativeErrorBound(t *testing.T) {
	for name, samples := range adversarialSamples(t) {
		h := histOf(samples)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
			exact := stats.Percentile(samples, p)
			got := h.Quantile(p)
			if err := math.Abs(got - exact); err > RelError*exact+1e-12 {
				t.Errorf("%s: Quantile(%g) = %g, exact %g: error %g exceeds bound %g",
					name, p, got, exact, err, RelError*exact)
			}
		}
		// The extreme quantiles are exact (min/max are tracked exactly).
		if got, exact := h.Quantile(0), stats.Percentile(samples, 0); got != exact {
			t.Errorf("%s: Quantile(0) = %g, want exact min %g", name, got, exact)
		}
		if got, exact := h.Quantile(100), stats.Percentile(samples, 100); got != exact {
			t.Errorf("%s: Quantile(100) = %g, want exact max %g", name, got, exact)
		}
	}
}

func TestMeanWithinBound(t *testing.T) {
	for name, samples := range adversarialSamples(t) {
		h := histOf(samples)
		exact := stats.Mean(samples)
		if got := h.Mean(); math.Abs(got-exact) > RelError*exact {
			t.Errorf("%s: Mean = %g, exact %g (bound %g)", name, got, exact, RelError*exact)
		}
	}
}

func snapshotBytes(t *testing.T, h *Histogram) []byte {
	t.Helper()
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return b
}

// TestMergeOrderByteIdentical is the mergeability property test: split
// a sample into parts, merge the part-histograms in many different
// orders and groupings, and demand byte-identical snapshots — the
// property that keeps parallel sweep aggregation deterministic.
func TestMergeOrderByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const parts = 7
	hs := make([]*Histogram, parts)
	for i := range hs {
		hs[i] = NewHistogram()
	}
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64() * 3) // log-normal spanning many octaves
		hs[rng.Intn(parts)].Record(v)
	}
	hs[0].Record(0)
	hs[1].Record(math.NaN())
	hs[2].Record(-1)

	mergeIn := func(order []int) []byte {
		acc := NewHistogram()
		for _, i := range order {
			acc.Merge(hs[i])
		}
		return snapshotBytes(t, acc)
	}
	want := mergeIn([]int{0, 1, 2, 3, 4, 5, 6})
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(parts)
		if got := mergeIn(order); string(got) != string(want) {
			t.Fatalf("merge order %v: snapshot differs\n got: %s\nwant: %s", order, got, want)
		}
	}
	// Associativity: tree-shaped grouping (a+(b+c)) vs flat.
	left := NewHistogram()
	left.Merge(hs[0])
	left.Merge(hs[1])
	right := NewHistogram()
	right.Merge(hs[2])
	for i := 3; i < parts; i++ {
		right.Merge(hs[i])
	}
	tree := NewHistogram()
	tree.Merge(left)
	tree.Merge(right)
	if got := snapshotBytes(t, tree); string(got) != string(want) {
		t.Fatalf("tree-grouped merge: snapshot differs from flat merge")
	}
}

func TestRecordEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Record(math.NaN())
	if h.Count() != 0 || h.NaNs() != 1 {
		t.Fatalf("NaN must be skipped: count=%d nans=%d", h.Count(), h.NaNs())
	}
	h.Record(0)
	h.Record(-3)
	h.Record(1e-300) // underflow: clamps to the lowest bucket
	h.Record(1e300)  // overflow: clamps to the highest bucket
	h.Record(math.Inf(1))
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Min() != -3 {
		t.Errorf("Min = %g, want -3 (exact, not clamped)", h.Min())
	}
	if h.Max() != maxTrackable {
		t.Errorf("Max = %g, want clamp bound %g", h.Max(), maxTrackable)
	}
	if q := h.Quantile(0); q != -3 {
		t.Errorf("Quantile(0) = %g, want -3", q)
	}
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatalf("snapshot with clamped/zero samples must marshal: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty snapshot JSON")
	}
}

func TestEmptyAndNilHistogram(t *testing.T) {
	var nilH *Histogram
	nilH.Record(1)
	nilH.Merge(NewHistogram())
	if nilH.Count() != 0 || nilH.Mean() != 0 || nilH.Quantile(50) != 0 ||
		nilH.Min() != 0 || nilH.Max() != 0 || nilH.CDF(1) != 0 {
		t.Fatal("nil histogram accessors must return zeros")
	}
	if nilH.Snapshot() != nil {
		t.Fatal("nil histogram snapshot must be nil")
	}
	empty := NewHistogram()
	if empty.Quantile(50) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if _, err := json.Marshal(empty.Snapshot()); err != nil {
		t.Fatalf("empty snapshot must marshal (no infinities): %v", err)
	}
}

func TestCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	if got := h.CDF(1000); got != 1 {
		t.Errorf("CDF above max = %g, want 1", got)
	}
	if got := h.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %g, want 0 (no zero samples)", got)
	}
	// Bucket resolution: CDF(50) within RelError of the exact 0.50.
	if got := h.CDF(50); math.Abs(got-0.5) > RelError+0.01 {
		t.Errorf("CDF(50) = %g, want ~0.5", got)
	}
	h.Record(0)
	if got := h.CDF(0); got != 1.0/101 {
		t.Errorf("CDF(0) with one zero sample = %g, want %g", got, 1.0/101)
	}
}

func TestRecordAndMergeAllocFree(t *testing.T) {
	h := NewHistogram()
	v := 0.123
	if allocs := testing.AllocsPerRun(200, func() {
		h.Record(v)
		v *= 1.37
		if v > 1e9 {
			v = 1e-6
		}
	}); allocs != 0 {
		t.Errorf("Record allocates %v per op, want 0", allocs)
	}
	a, b := histOf([]float64{1, 2, 3}), histOf([]float64{4, 5, 6})
	if allocs := testing.AllocsPerRun(100, func() { a.Merge(b) }); allocs != 0 {
		t.Errorf("Merge allocates %v per op, want 0", allocs)
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	for name, samples := range adversarialSamples(t) {
		h := histOf(samples)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 0.5 {
			q := h.Quantile(p)
			if q < prev {
				t.Fatalf("%s: Quantile not monotone at p=%g: %g < %g", name, p, q, prev)
			}
			prev = q
		}
	}
}
