package raptorq

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// Differential tests for the layered decode pipeline: the partial-
// systematic path (partial.go) must produce byte-identical output to
// the full inactivation solver on every loss pattern, and the block-
// parallel object front-end must be indistinguishable from its serial
// schedule. Both families run under -race in CI's sweep job.

// lossPattern names a deterministic choice of missing source rows.
type lossPattern struct {
	name string
	rows func(k, m int) []int
}

var lossPatterns = []lossPattern{
	{"prefix", func(k, m int) []int {
		rows := make([]int, m)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}},
	{"suffix", func(k, m int) []int {
		rows := make([]int, m)
		for i := range rows {
			rows[i] = k - m + i
		}
		return rows
	}},
	{"stride", func(k, m int) []int {
		// Evenly spread: adversarial for peeling because every loss
		// lands in a different neighbourhood of the LT graph.
		rows := make([]int, m)
		step := k / m
		for i := range rows {
			rows[i] = i * step
		}
		return rows
	}},
	{"middle-run", func(k, m int) []int {
		// One contiguous burst centred in the block — the classic
		// tail-drop shape.
		rows := make([]int, m)
		start := (k - m) / 2
		for i := range rows {
			rows[i] = start + i
		}
		return rows
	}},
}

// decodeWith runs one decode of the given received set with the decoder
// pinned to a single path.
func decodeWith(t *testing.T, k, symSize int, enc *Encoder, missing []int, repairs int, partial bool) ([][]byte, error) {
	t.Helper()
	dec, err := NewDecoder(k, symSize)
	if err != nil {
		t.Fatal(err)
	}
	dec.forceFull = !partial
	dec.forcePartial = partial
	gone := make(map[int]bool, len(missing))
	for _, r := range missing {
		gone[r] = true
	}
	for i := 0; i < k; i++ {
		if gone[i] {
			continue
		}
		if _, err := dec.AddSymbol(uint32(i), enc.Symbol(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < repairs; r++ {
		esi := uint32(k + r)
		if _, err := dec.AddSymbol(esi, enc.Symbol(esi)); err != nil {
			t.Fatal(err)
		}
	}
	return dec.Decode()
}

// TestPartialMatchesFullDifferential sweeps (K, loss fraction, loss
// pattern) — including adversarial masks and random masks — and
// asserts the partial-systematic decode is byte-identical to the full
// solver, which in turn must reproduce the source exactly.
func TestPartialMatchesFullDifferential(t *testing.T) {
	const symSize = 64
	for _, k := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		source := make([][]byte, k)
		for i := range source {
			source[i] = make([]byte, symSize)
			rng.Read(source[i])
		}
		enc, err := NewEncoder(source)
		if err != nil {
			t.Fatal(err)
		}

		type cse struct {
			name    string
			missing []int
		}
		var cases []cse
		counts := []int{1, 2, k / 16, k / 8, k / 4}
		for _, m := range counts {
			if m < 1 || m > k {
				continue
			}
			for _, pat := range lossPatterns {
				cases = append(cases, cse{pat.name, pat.rows(k, m)})
			}
			// Random masks: three seeds per loss count.
			for s := 0; s < 3; s++ {
				perm := rng.Perm(k)[:m]
				cases = append(cases, cse{"random", perm})
			}
		}
		for _, c := range cases {
			m := len(c.missing)
			repairs := m + partialExtraRows
			full, errFull := decodeWith(t, k, symSize, enc, c.missing, repairs, false)
			part, errPart := decodeWith(t, k, symSize, enc, c.missing, repairs, true)
			if errFull != nil {
				t.Fatalf("k=%d %s m=%d: full solver failed: %v", k, c.name, m, errFull)
			}
			if errPart != nil {
				// The partial path caps its repair subset; a rank-deficient
				// subset is legal (Decode would fall back) but with
				// partialExtraRows spare equations it should not happen on
				// these fixed seeds.
				if errors.Is(errPart, ErrSingular) {
					t.Fatalf("k=%d %s m=%d: partial path rank-deficient", k, c.name, m)
				}
				t.Fatalf("k=%d %s m=%d: partial path failed: %v", k, c.name, m, errPart)
			}
			for i := 0; i < k; i++ {
				if !bytes.Equal(full[i], source[i]) {
					t.Fatalf("k=%d %s m=%d: full decode corrupt at %d", k, c.name, m, i)
				}
				if !bytes.Equal(part[i], full[i]) {
					t.Fatalf("k=%d %s m=%d: partial != full at symbol %d:\n  partial %x\n  full    %x",
						k, c.name, m, i, part[i], full[i])
				}
			}
		}
	}
}

// TestPartialReusedDecoderDifferential drives one reused decoder
// through many Reset cycles with varying loss patterns, comparing
// against fresh full-solver decodes each time — the steady-state arena
// reuse must never leak bytes between blocks.
func TestPartialReusedDecoderDifferential(t *testing.T) {
	const k, symSize = 64, 48
	dec, err := NewDecoder(k, symSize)
	if err != nil {
		t.Fatal(err)
	}
	dec.forcePartial = true
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		source := make([][]byte, k)
		for i := range source {
			source[i] = make([]byte, symSize)
			rng.Read(source[i])
		}
		enc, err := NewEncoder(source)
		if err != nil {
			t.Fatal(err)
		}
		m := 1 + rng.Intn(k/8)
		missing := rng.Perm(k)[:m]
		gone := make(map[int]bool, m)
		for _, r := range missing {
			gone[r] = true
		}
		dec.Reset()
		for i := 0; i < k; i++ {
			if !gone[i] {
				dec.AddSymbol(uint32(i), enc.Symbol(uint32(i)))
			}
		}
		for r := 0; r < m+partialExtraRows; r++ {
			dec.AddSymbol(uint32(k+r), enc.Symbol(uint32(k+r)))
		}
		part, err := dec.Decode()
		if err != nil {
			t.Fatalf("round %d m=%d: %v", round, m, err)
		}
		full, err := decodeWith(t, k, symSize, enc, missing, m+partialExtraRows, false)
		if err != nil {
			t.Fatalf("round %d m=%d: full solver: %v", round, m, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(part[i], full[i]) || !bytes.Equal(full[i], source[i]) {
				t.Fatalf("round %d m=%d: mismatch at symbol %d", round, m, i)
			}
		}
	}
}

// TestObjectParallelIdenticalToSerial checks that the block-parallel
// object encoder and decoder produce byte-identical results to their
// serial schedules (worker count must change wall-clock only). Runs
// under -race in CI.
func TestObjectParallelIdenticalToSerial(t *testing.T) {
	const symSize, maxK = 128, 32
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 100_000) // ~25 blocks
	rng.Read(data)

	serial, err := NewObjectEncoderWorkers(data, symSize, maxK, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewObjectEncoderWorkers(data, symSize, maxK, 8)
	if err != nil {
		t.Fatal(err)
	}
	layout := serial.Layout()
	if layout.Z() != parallel.Layout().Z() {
		t.Fatalf("layouts differ: %d vs %d blocks", layout.Z(), parallel.Layout().Z())
	}
	for sbn, k := range layout.K {
		for esi := uint32(0); esi < uint32(k)+4; esi++ {
			if !bytes.Equal(serial.Symbol(sbn, esi), parallel.Symbol(sbn, esi)) {
				t.Fatalf("block %d symbol %d differs between worker counts", sbn, esi)
			}
		}
	}

	// Decode with 30% source loss, serial vs parallel workers.
	decode := func(workers int) []byte {
		dec, err := NewObjectDecoder(layout)
		if err != nil {
			t.Fatal(err)
		}
		dec.SetWorkers(workers)
		lossRNG := rand.New(rand.NewSource(11))
		for sbn, k := range layout.K {
			got := 0
			for esi := uint32(0); got < k+2; esi++ {
				if esi < uint32(k) && lossRNG.Float64() < 0.3 {
					continue
				}
				dec.AddSymbol(sbn, esi, serial.Symbol(sbn, esi))
				got++
			}
		}
		if !dec.TryDecode() {
			t.Fatal("object did not decode")
		}
		obj, err := dec.Object()
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	one := decode(1)
	many := decode(8)
	if !bytes.Equal(one, data) {
		t.Fatal("serial object decode corrupt")
	}
	if !bytes.Equal(one, many) {
		t.Fatal("parallel object decode differs from serial")
	}
}
