package raptorq

import (
	"fmt"
	"math/rand"
	"testing"
)

// Codec micro-benchmarks: encoder construction (the precode solve),
// symbol generation, and decoding under loss, swept over block size K.
// These quantify the paper's "current work" question on RQ
// encoding/decoding complexity.

func benchSymbols(k, t int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, t)
		rng.Read(src[i])
	}
	return src
}

func BenchmarkEncoderConstruction(b *testing.B) {
	for _, k := range []int{16, 64, 256, 1024} {
		src := benchSymbols(k, 1024)
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewEncoder(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRepairSymbol(b *testing.B) {
	for _, k := range []int{64, 1024} {
		src := benchSymbols(k, 1024)
		enc, err := NewEncoder(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			buf := make([]byte, 0, 1024)
			b.SetBytes(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = enc.AppendSymbol(buf[:0], uint32(k+i))
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	// Decode with 30% of source symbols lost, repaired by repair
	// symbols — the representative Polyraptor receive path.
	for _, k := range []int{16, 64, 256, 1024} {
		src := benchSymbols(k, 1024)
		enc, err := NewEncoder(src)
		if err != nil {
			b.Fatal(err)
		}
		// Precompute the arrival set once: 70% of source + enough
		// repair for +2 overhead.
		rng := rand.New(rand.NewSource(11))
		type arrival struct {
			esi uint32
			sym []byte
		}
		var arrivals []arrival
		for i := 0; i < k; i++ {
			if rng.Float64() < 0.7 {
				arrivals = append(arrivals, arrival{uint32(i), enc.Symbol(uint32(i))})
			}
		}
		esi := uint32(k)
		for len(arrivals) < k+2 {
			arrivals = append(arrivals, arrival{esi, enc.Symbol(esi)})
			esi++
		}
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := NewDecoder(k, 1024)
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range arrivals {
					dec.AddSymbol(a.esi, a.sym)
				}
				if _, err := dec.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeSystematicFastPath(b *testing.B) {
	// All source symbols present: decode must be near-free.
	k := 256
	src := benchSymbols(k, 1024)
	b.SetBytes(int64(k * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(k, 1024)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < k; j++ {
			dec.AddSymbol(uint32(j), src[j])
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectEncode4MB(b *testing.B) {
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(3)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewObjectEncoder(data, 1436, 512); err != nil {
			b.Fatal(err)
		}
	}
}
