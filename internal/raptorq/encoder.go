package raptorq

import (
	"fmt"
	"sync"

	"polyraptor/internal/gf256"
)

// addConstraintRows installs the S LDPC binary rows and H HDPC dense
// rows of the precode into the solver. Both encoder (precode solve) and
// decoder (recovery solve) call this, so the constraint structure is
// shared by construction.
func addConstraintRows(s *solver, p Params) {
	// LDPC rows (RFC 5053 §5.4.2.3 / RFC 6330 §5.3.3.3): each of the
	// B free LT columns contributes to exactly three of the S LDPC rows
	// through a circulant walk; row i additionally carries the identity
	// column B+i and two neighbours in the PI region, which protects
	// the LDPC equations themselves from low-weight dependencies. S is
	// prime and the step a is in [1, S-1], so the three circulant row
	// indices are distinct.
	bCols := p.B()
	ldpc := make([][]int32, p.S)
	for i := 0; i < bCols; i++ {
		a := 1 + (i/p.S)%(p.S-1)
		b := i % p.S
		ldpc[b] = append(ldpc[b], int32(i))
		b = (b + a) % p.S
		ldpc[b] = append(ldpc[b], int32(i))
		b = (b + a) % p.S
		ldpc[b] = append(ldpc[b], int32(i))
	}
	for i := 0; i < p.S; i++ {
		cols := append(ldpc[i], int32(bCols+i))
		pi1 := int32(p.W + i%p.P)
		pi2 := int32(p.W + (i+1)%p.P)
		if pi1 != pi2 {
			cols = append(cols, pi1, pi2)
		}
		s.addBinaryRow(cols, nil)
	}
	// HDPC rows: the RFC 6330 §5.3.3.3 MT x Gamma shape. Gamma is the
	// lower-triangular alpha-power Toeplitz matrix Gamma[j][c] =
	// alpha^(j-c) (alpha = 2, the field generator) over the L-H columns
	// before the HDPC identities, and MT is a sparse binary matrix with
	// two seeded row picks per column, so
	//
	//	coeff_r[c] = sum_{j >= c, MT[r][j]=1} alpha^(j-c)
	//	           = alpha * coeff_r[c+1] + MT[r][c].
	//
	// The rows are GF(256)-dense (every decode benefits: they catch the
	// handful of columns the sparse phase cannot resolve, failure
	// probability ~2^-8 per missing rank, measured by the failure-curve
	// test) but carry Horner structure the solver exploits: the whole
	// dense back-substitution collapses to one shared alpha-weighted
	// running sum plus two XORs per column instead of H dense
	// multiply-accumulates per pivot (see emitHornerChain in solver.go).
	state := hdpcSeed(p)
	picks := hdpcPicks(p, &state)
	for r := int32(0); r < int32(p.H); r++ {
		coeff := make([]byte, p.L)
		var acc byte
		for c := p.L - p.H - 1; c >= 0; c-- {
			acc = gf256.Mul(acc, 2)
			if picks[c][0] == r {
				acc ^= 1
			}
			if picks[c][1] == r {
				acc ^= 1
			}
			coeff[c] = acc
		}
		coeff[p.L-p.H+int(r)] = 1
		s.addDenseRow(coeff, nil)
	}
	s.hornerPicks = picks
	s.hornerCols = p.L - p.H
}

// hdpcPicks derives MT's two distinct row picks for every Gamma-region
// column from the seeded generator. H >= 4 for every K (the
// choose(H, ceil(H/2)) >= K+S bound), so two distinct picks always
// exist.
func hdpcPicks(p Params, state *uint64) [][2]int32 {
	picks := make([][2]int32, p.L-p.H)
	for c := range picks {
		x := splitmix64(state)
		r1 := int32(x % uint64(p.H))
		r2 := (r1 + 1 + int32((x>>32)%uint64(p.H-1))) % int32(p.H)
		picks[c] = [2]int32{r1, r2}
	}
	return picks
}

func hdpcSeed(p Params) uint64 {
	return 0x9E3779B97F4A7C15 ^ uint64(p.K)<<20 ^ uint64(p.SIdx)
}

// Encoder produces encoding symbols for a single source block. It is
// systematic: Symbol(esi) for esi < K returns the source symbol
// unchanged, and repair symbols (esi >= K) are valid for any esi up to
// 2^32-1, making the code rateless.
//
// An Encoder is safe for concurrent use after construction: Symbol only
// reads the intermediate symbols, and the repair-expansion cache is
// internally synchronised. Reset, however, must not run concurrently
// with any other method.
type Encoder struct {
	p   Params
	t   int
	c   [][]byte   // L intermediate symbols (views into the replay arena)
	src [][]byte   // source symbols (referenced, not copied)
	mu  sync.Mutex // guards ltRepair
	// ltRepair memoises LT expansions of repair ESIs. Entries are
	// immutable once stored, so readers copy the reference out under mu
	// and XOR outside it. Bounded: serving the same object to many
	// receivers revisits the same repair ESIs (disjoint residue classes
	// per sender index), while a one-shot unicast stream pays one map
	// insert per symbol until the cap and nothing after.
	ltRepair map[uint32][]int32

	// sched is the recorded precode elimination for K (shared, from the
	// global per-K cache); slots is the arena it replays over.
	sched *schedule
	slots slotArena
}

// ltRepairCacheCap bounds the repair-expansion memo (~a few hundred KB
// at the default symbol sizes).
const ltRepairCacheCap = 4096

// NewEncoder builds an encoder for the given source symbols. All
// symbols must be non-empty and the same size. The source slice is
// retained (not copied); callers must not mutate the symbols while the
// encoder is in use.
//
// The L x L precode system is solved by replaying the recorded
// elimination schedule for K (built once per K and cached), so
// construction cost is a few thousand GF(256) row kernels rather than
// a structural Gaussian elimination.
func NewEncoder(source [][]byte) (*Encoder, error) {
	e := &Encoder{}
	if err := e.Reset(source); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-keys the encoder to a new source block, reusing every
// internal buffer. When the new block has the same K and symbol size,
// the steady state allocates nothing: the precode solve is a pure
// schedule replay over the reused arena. Symbols previously returned
// by Symbol are unaffected; the intermediate views read by AppendSymbol
// are rebuilt.
func (e *Encoder) Reset(source [][]byte) error {
	k := len(source)
	if k == 0 {
		return fmt.Errorf("raptorq: no source symbols")
	}
	t := len(source[0])
	if t == 0 {
		return fmt.Errorf("raptorq: empty symbols")
	}
	for i, s := range source {
		if len(s) != t {
			return fmt.Errorf("raptorq: symbol %d has size %d, want %d", i, len(s), t)
		}
	}
	if e.sched == nil || k != e.p.K {
		p, err := NewParams(k)
		if err != nil {
			return err
		}
		sched, err := precodeSchedule(p)
		if err != nil {
			// The systematic index search guarantees an invertible precode,
			// so this is unreachable unless the cache was poisoned.
			return fmt.Errorf("raptorq: precode solve failed: %w", err)
		}
		e.p = p
		e.sched = sched
		e.c = make([][]byte, p.L)
		e.ltRepair = make(map[uint32][]int32)
	}
	e.t = t
	e.src = source
	e.replayPrecode(source)
	return nil
}

// replayPrecode computes the L intermediate symbols by replaying the
// precode schedule over the arena: LDPC and HDPC right-hand sides are
// zero, the K LT rows carry the source symbols (copied — replay
// mutates its slots).
//
//polyvet:noalloc steady-state precode solve: arena slots plus recorded gf256 kernels
func (e *Encoder) replayPrecode(source [][]byte) {
	syms := e.slots.slots(e.sched.nSlots, e.t)
	s := e.p.S
	for i := 0; i < s; i++ {
		clear(syms[i])
	}
	for i, src := range source {
		copy(syms[s+i], src)
	}
	for i := s + e.p.K; i < e.sched.nSlots; i++ {
		clear(syms[i])
	}
	e.sched.replay(syms)
	for c, slot := range e.sched.outSlot {
		e.c[c] = syms[slot]
	}
}

// ltIndices returns the memoised LT expansion for a repair ESI. Source
// ESIs never reach it: AppendSymbol's systematic fast path returns the
// source symbol directly.
func (e *Encoder) ltIndices(esi uint32) []int32 {
	e.mu.Lock()
	idx, ok := e.ltRepair[esi]
	if !ok {
		idx = e.p.LTIndices(esi)
		if len(e.ltRepair) < ltRepairCacheCap {
			e.ltRepair[esi] = idx
		}
	}
	e.mu.Unlock()
	return idx
}

// K returns the number of source symbols.
func (e *Encoder) K() int { return e.p.K }

// SymbolSize returns the symbol size T in bytes.
func (e *Encoder) SymbolSize() int { return e.t }

// Params returns the derived code parameters.
func (e *Encoder) Params() Params { return e.p }

// Symbol returns encoding symbol esi in a freshly allocated buffer.
// For esi < K this is the source symbol (systematic fast path); for
// esi >= K it is a repair symbol.
func (e *Encoder) Symbol(esi uint32) []byte {
	out := make([]byte, e.t)
	e.AppendSymbol(out[:0], esi)
	return out
}

// AppendSymbol appends encoding symbol esi to dst and returns the
// extended slice. It performs no allocation when dst has capacity and
// the expansion for esi is already cached.
//
//polyvet:noalloc per-packet repair generation; alloc-free when dst has capacity
func (e *Encoder) AppendSymbol(dst []byte, esi uint32) []byte {
	start := len(dst)
	if int(esi) < e.p.K && esi < uint32(len(e.src)) {
		return append(dst, e.src[esi]...)
	}
	if cap(dst)-start >= e.t {
		dst = dst[:start+e.t]
		clear(dst[start:])
	} else {
		dst = growZero(dst, e.t)
	}
	buf := dst[start:]
	for _, c := range e.ltIndices(esi) {
		gf256.AddRow(buf, e.c[c])
	}
	return dst
}

// growZero extends dst by n zero bytes, growing the backing array.
// This is AppendSymbol's cold path (an undersized caller buffer),
// split out so the annotated steady state stays allocation-free under
// both the syntactic and the compiler-verified gate. noinline keeps
// the compiler from folding the allocation site back into the
// annotated caller.
//
//go:noinline
func growZero(dst []byte, n int) []byte {
	return append(dst, make([]byte, n)...)
}
