package raptorq

import (
	"fmt"
	"sync"

	"polyraptor/internal/gf256"
)

// addConstraintRows installs the S LDPC binary rows and H HDPC dense
// rows of the precode into the solver. Both encoder (precode solve) and
// decoder (recovery solve) call this, so the constraint structure is
// shared by construction.
func addConstraintRows(s *solver, p Params) {
	// LDPC rows (RFC 5053 §5.4.2.3 / RFC 6330 §5.3.3.3): each of the
	// B free LT columns contributes to exactly three of the S LDPC rows
	// through a circulant walk; row i additionally carries the identity
	// column B+i and two neighbours in the PI region, which protects
	// the LDPC equations themselves from low-weight dependencies. S is
	// prime and the step a is in [1, S-1], so the three circulant row
	// indices are distinct.
	bCols := p.B()
	ldpc := make([][]int32, p.S)
	for i := 0; i < bCols; i++ {
		a := 1 + (i/p.S)%(p.S-1)
		b := i % p.S
		ldpc[b] = append(ldpc[b], int32(i))
		b = (b + a) % p.S
		ldpc[b] = append(ldpc[b], int32(i))
		b = (b + a) % p.S
		ldpc[b] = append(ldpc[b], int32(i))
	}
	for i := 0; i < p.S; i++ {
		cols := append(ldpc[i], int32(bCols+i))
		pi1 := int32(p.W + i%p.P)
		pi2 := int32(p.W + (i+1)%p.P)
		if pi1 != pi2 {
			cols = append(cols, pi1, pi2)
		}
		s.addBinaryRow(cols, nil)
	}
	// HDPC rows: dense pseudo-random GF(256) coefficients over all
	// columns before the HDPC identities, plus an identity coefficient
	// on column L-H+r. RFC 6330 derives these rows from a Gamma matrix
	// product; a seeded dense random construction has the same decoding
	// role (it catches the handful of columns the sparse phase cannot
	// resolve) with failure probability ~2^-8 per missing rank, which
	// the failure-curve test measures.
	state := hdpcSeed(p)
	for r := 0; r < p.H; r++ {
		coeff := make([]byte, p.L)
		for j := 0; j < p.L-p.H; j++ {
			coeff[j] = byte(splitmix64(&state))
		}
		coeff[p.L-p.H+r] = 1
		s.addDenseRow(coeff, nil)
	}
}

func hdpcSeed(p Params) uint64 {
	return 0x9E3779B97F4A7C15 ^ uint64(p.K)<<20 ^ uint64(p.SIdx)
}

// Encoder produces encoding symbols for a single source block. It is
// systematic: Symbol(esi) for esi < K returns the source symbol
// unchanged, and repair symbols (esi >= K) are valid for any esi up to
// 2^32-1, making the code rateless.
//
// An Encoder is safe for concurrent use after construction: Symbol only
// reads the intermediate symbols, and the repair-expansion cache is
// internally synchronised.
type Encoder struct {
	p   Params
	t   int
	c   [][]byte   // L intermediate symbols
	src [][]byte   // source symbols (referenced, not copied)
	mu  sync.Mutex // guards ltRepair
	// ltRepair memoises LT expansions of repair ESIs. Entries are
	// immutable once stored, so readers copy the reference out under mu
	// and XOR outside it. Bounded: serving the same object to many
	// receivers revisits the same repair ESIs (disjoint residue classes
	// per sender index), while a one-shot unicast stream pays one map
	// insert per symbol until the cap and nothing after.
	ltRepair map[uint32][]int32
}

// ltRepairCacheCap bounds the repair-expansion memo (~a few hundred KB
// at the default symbol sizes).
const ltRepairCacheCap = 4096

// NewEncoder builds an encoder for the given source symbols. All
// symbols must be non-empty and the same size. The source slice is
// retained (not copied); callers must not mutate the symbols while the
// encoder is in use.
//
// Construction solves the L x L precode system; cost is roughly
// O(K * avg-degree) symbol XORs plus a small dense solve.
func NewEncoder(source [][]byte) (*Encoder, error) {
	k := len(source)
	if k == 0 {
		return nil, fmt.Errorf("raptorq: no source symbols")
	}
	t := len(source[0])
	if t == 0 {
		return nil, fmt.Errorf("raptorq: empty symbols")
	}
	for i, s := range source {
		if len(s) != t {
			return nil, fmt.Errorf("raptorq: symbol %d has size %d, want %d", i, len(s), t)
		}
	}
	p, err := NewParams(k)
	if err != nil {
		return nil, err
	}
	sol := newSolver(p.L, t)
	addConstraintRows(sol, p)
	var scratch []int32 // reused LT expansion; addBinaryRow copies it
	for i := 0; i < k; i++ {
		scratch = p.AppendLTIndices(scratch[:0], uint32(i))
		sol.addBinaryRow(scratch, source[i])
	}
	c, err := sol.solve()
	if err != nil {
		// The systematic index search guarantees an invertible precode,
		// so this is unreachable unless the cache was poisoned.
		return nil, fmt.Errorf("raptorq: precode solve failed: %w", err)
	}
	return &Encoder{
		p: p, t: t, c: c, src: source,
		ltRepair: make(map[uint32][]int32),
	}, nil
}

// ltIndices returns the memoised LT expansion for a repair ESI. Source
// ESIs never reach it: AppendSymbol's systematic fast path returns the
// source symbol directly.
func (e *Encoder) ltIndices(esi uint32) []int32 {
	e.mu.Lock()
	idx, ok := e.ltRepair[esi]
	if !ok {
		idx = e.p.LTIndices(esi)
		if len(e.ltRepair) < ltRepairCacheCap {
			e.ltRepair[esi] = idx
		}
	}
	e.mu.Unlock()
	return idx
}

// K returns the number of source symbols.
func (e *Encoder) K() int { return e.p.K }

// SymbolSize returns the symbol size T in bytes.
func (e *Encoder) SymbolSize() int { return e.t }

// Params returns the derived code parameters.
func (e *Encoder) Params() Params { return e.p }

// Symbol returns encoding symbol esi in a freshly allocated buffer.
// For esi < K this is the source symbol (systematic fast path); for
// esi >= K it is a repair symbol.
func (e *Encoder) Symbol(esi uint32) []byte {
	out := make([]byte, e.t)
	e.AppendSymbol(out[:0], esi)
	return out
}

// AppendSymbol appends encoding symbol esi to dst and returns the
// extended slice. It performs no allocation when dst has capacity and
// the expansion for esi is already cached.
//
//polyvet:noalloc per-packet repair generation; alloc-free when dst has capacity
func (e *Encoder) AppendSymbol(dst []byte, esi uint32) []byte {
	start := len(dst)
	if int(esi) < e.p.K && esi < uint32(len(e.src)) {
		return append(dst, e.src[esi]...)
	}
	if cap(dst)-start >= e.t {
		dst = dst[:start+e.t]
		clear(dst[start:])
	} else {
		dst = growZero(dst, e.t)
	}
	buf := dst[start:]
	for _, c := range e.ltIndices(esi) {
		gf256.AddRow(buf, e.c[c])
	}
	return dst
}

// growZero extends dst by n zero bytes, growing the backing array.
// This is AppendSymbol's cold path (an undersized caller buffer),
// split out so the annotated steady state stays allocation-free under
// both the syntactic and the compiler-verified gate. noinline keeps
// the compiler from folding the allocation site back into the
// annotated caller.
//
//go:noinline
func growZero(dst []byte, n int) []byte {
	return append(dst, make([]byte, n)...)
}
