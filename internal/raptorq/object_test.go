package raptorq

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBlockLayout(t *testing.T) {
	bl, err := NewBlockLayout(10_000, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if bl.TotalSymbols() != 100 {
		t.Fatalf("TotalSymbols = %d, want 100", bl.TotalSymbols())
	}
	if bl.Z() != 3 { // ceil(100/40) = 3 blocks
		t.Fatalf("Z = %d, want 3", bl.Z())
	}
	for _, k := range bl.K {
		if k > 40 || k < 1 {
			t.Fatalf("block K=%d out of bounds", k)
		}
	}
}

func TestBlockLayoutErrors(t *testing.T) {
	if _, err := NewBlockLayout(0, 10, 10); err == nil {
		t.Fatal("zero-size object accepted")
	}
	if _, err := NewBlockLayout(10, 0, 10); err == nil {
		t.Fatal("zero symbol size accepted")
	}
	if _, err := NewBlockLayout(10, 10, 0); err == nil {
		t.Fatal("zero maxK accepted")
	}
	if _, err := NewBlockLayout(10, 10, MaxK+1); err == nil {
		t.Fatal("huge maxK accepted")
	}
}

func TestObjectRoundTripExactFit(t *testing.T) {
	data := make([]byte, 64*100)
	rand.New(rand.NewSource(1)).Read(data)
	objectRoundTrip(t, data, 100, 20, 0)
}

func TestObjectRoundTripWithPadding(t *testing.T) {
	data := make([]byte, 64*100+37) // tail symbol is padded
	rand.New(rand.NewSource(2)).Read(data)
	objectRoundTrip(t, data, 100, 20, 0)
}

func TestObjectRoundTripTiny(t *testing.T) {
	objectRoundTrip(t, []byte{0x42}, 16, 10, 0)
}

func TestObjectRoundTripWithLoss(t *testing.T) {
	data := make([]byte, 3000)
	rand.New(rand.NewSource(3)).Read(data)
	objectRoundTrip(t, data, 100, 10, 0.25)
}

// objectRoundTrip encodes data, delivers source symbols with the given
// loss rate plus repair symbols as needed, and verifies reassembly.
func objectRoundTrip(t *testing.T, data []byte, symSize, maxK int, loss float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	enc, err := NewObjectEncoder(data, symSize, maxK)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewObjectDecoder(enc.Layout())
	if err != nil {
		t.Fatal(err)
	}
	for sbn, k := range enc.Layout().K {
		for i := 0; i < k; i++ {
			if rng.Float64() < loss {
				continue
			}
			if _, err := dec.AddSymbol(sbn, uint32(i), enc.Symbol(sbn, uint32(i))); err != nil {
				t.Fatal(err)
			}
		}
		esi := uint32(k)
		for !dec.BlockComplete(sbn) {
			dec.TryDecode()
			if dec.BlockComplete(sbn) {
				break
			}
			dec.AddSymbol(sbn, esi, enc.Symbol(sbn, esi))
			esi++
			if esi > uint32(k+100) {
				t.Fatalf("block %d did not decode", sbn)
			}
		}
	}
	if !dec.Complete() {
		t.Fatal("object incomplete after all blocks decoded")
	}
	got, err := dec.Object()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("object round trip corrupted data")
	}
}

func TestObjectDecoderRejectsBadSBN(t *testing.T) {
	enc, _ := NewObjectEncoder(make([]byte, 100), 10, 5)
	dec, _ := NewObjectDecoder(enc.Layout())
	if _, err := dec.AddSymbol(99, 0, make([]byte, 10)); err == nil {
		t.Fatal("out-of-range SBN accepted")
	}
	if _, err := dec.AddSymbol(-1, 0, make([]byte, 10)); err == nil {
		t.Fatal("negative SBN accepted")
	}
}

func TestObjectIncompleteErrors(t *testing.T) {
	enc, _ := NewObjectEncoder(make([]byte, 100), 10, 5)
	dec, _ := NewObjectDecoder(enc.Layout())
	if _, err := dec.Object(); err == nil {
		t.Fatal("Object() on incomplete decoder succeeded")
	}
}
