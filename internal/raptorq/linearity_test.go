package raptorq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The entire RaptorQ construction — precode solve, LT combination —
// is linear over GF(2^8) with structure fixed by (K, SIdx). Therefore
// for any two source blocks A and B of the same geometry and any ESI:
//
//	Enc(A ⊕ B)[esi] == Enc(A)[esi] ⊕ Enc(B)[esi]
//
// This property tests the whole encoder pipeline at once: any
// non-determinism, cursor statefulness, or structural divergence
// between encoder instances breaks it.
func TestEncodingLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	k, tSize := 33, 24
	a := randSymbols(rng, k, tSize)
	b := randSymbols(rng, k, tSize)
	xor := make([][]byte, k)
	for i := range xor {
		xor[i] = make([]byte, tSize)
		for j := range xor[i] {
			xor[i][j] = a[i][j] ^ b[i][j]
		}
	}
	encA, err := NewEncoder(a)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := NewEncoder(b)
	if err != nil {
		t.Fatal(err)
	}
	encX, err := NewEncoder(xor)
	if err != nil {
		t.Fatal(err)
	}
	check := func(esi uint32) bool {
		sa := encA.Symbol(esi)
		sb := encB.Symbol(esi)
		sx := encX.Symbol(esi)
		for i := range sa {
			if sx[i] != sa[i]^sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// A zero source block must encode to all-zero symbols (the linear
// map's kernel contains zero), for source and repair ESIs alike.
func TestZeroBlockEncodesToZero(t *testing.T) {
	src := make([][]byte, 12)
	for i := range src {
		src[i] = make([]byte, 8)
	}
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 8)
	for esi := uint32(0); esi < 64; esi++ {
		if !bytes.Equal(enc.Symbol(esi), zero) {
			t.Fatalf("zero block produced non-zero symbol at ESI %d", esi)
		}
	}
}

// Two encoders over identical source data must agree on every
// encoding symbol (full determinism of the pipeline).
func TestEncoderDeterminism(t *testing.T) {
	src := randSymbols(rand.New(rand.NewSource(32)), 20, 16)
	e1, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	for esi := uint32(0); esi < 200; esi++ {
		if !bytes.Equal(e1.Symbol(esi), e2.Symbol(esi)) {
			t.Fatalf("encoders disagree at ESI %d", esi)
		}
	}
}
