package raptorq

// Deterministic PRNG machinery shared by the tuple generator and the
// HDPC row construction. RFC 6330 §5.3.5.1 defines Rand[y, i, m] over
// four 256-entry tables of random 32-bit words (V0..V3); the tables
// here are generated once from a fixed splitmix64 seed instead of being
// transcribed from the RFC, which preserves the statistical role of the
// tables while keeping the build self-contained. Encoder and decoder
// share this file, so both sides always agree.

var randV [4][256]uint32

func init() {
	state := uint64(0x0123456789ABCDEF)
	for t := 0; t < 4; t++ {
		for i := 0; i < 256; i++ {
			randV[t][i] = uint32(splitmix64(&state) >> 32)
		}
	}
}

// splitmix64 is the standard 64-bit mixing generator; it drives all
// deterministic table and coefficient generation in this package.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// rnd implements Rand[y, i, m] per RFC 6330 §5.3.5.1: four table
// lookups keyed on the bytes of y offset by i, XORed and reduced mod m.
// m must be > 0.
//
//polyvet:inline called four+ times per tuple; the call overhead would dominate the lookups
func rnd(y uint32, i uint8, m uint32) uint32 {
	x0 := randV[0][uint8(y)+i]
	x1 := randV[1][uint8(y>>8)+i]
	x2 := randV[2][uint8(y>>16)+i]
	x3 := randV[3][uint8(y>>24)+i]
	return (x0 ^ x1 ^ x2 ^ x3) % m
}

// degCum is the cumulative degree distribution table in the shape of
// RFC 6330 §5.3.5.2: a 20-bit uniform value v selects degree d where
// degCum[d-1] <= v < degCum[d]. The mass concentrates on degree 2
// (~50%) with a tail to degree 30, which is what gives LT peeling its
// throughput; exact decodability is verified empirically by the test
// suite rather than by table provenance.
var degCum = [31]uint32{
	0, 5243, 529531, 704294, 791675, 844104, 879057, 904023, 922747,
	937311, 948962, 958494, 966438, 973160, 978921, 983914, 988283,
	992138, 995565, 998631, 1001391, 1003887, 1006157, 1008229, 1010129,
	1011876, 1013490, 1014983, 1016370, 1017662, 1048576,
}

// deg maps a uniform v in [0, 2^20) to an LT degree in [1, 30].
func deg(v uint32) int {
	for d := 1; d < len(degCum); d++ {
		if v < degCum[d] {
			return d
		}
	}
	return len(degCum) - 1
}
