package raptorq

import (
	"errors"

	"polyraptor/internal/gf256"
)

// ErrSingular is returned when the received equations do not determine
// the intermediate symbols — the decoder needs more symbols.
var ErrSingular = errors.New("raptorq: equation system is singular")

// The solver performs sparse Gaussian elimination with column
// inactivation (the workhorse of RaptorQ decoding, RFC 6330 §5.4.2):
//
//  1. Peel: repeatedly pick a binary row whose active-column degree is
//     one; that (row, column) pair becomes a pivot. Because the pivot
//     row has a single active column, eliminating it from other rows
//     adds no active fill-in — only the pivot's inactive references and
//     its right-hand-side symbol propagate.
//  2. When no degree-one row exists, the highest-degree active column
//     is *inactivated*: removed from the active structure and deferred
//     to a small dense system.
//  3. The dense system over the inactivated columns is assembled from
//     the leftover binary rows and the HDPC rows (with pivoted columns
//     substituted out) and solved by Gauss-Jordan over GF(256).
//  4. Back-substitution through the pivot list yields every
//     intermediate symbol.
//
// Rows own their symbol buffers (inputs are copied), so callers may
// retry a failed solve on a fresh solver after collecting more rows.
//
// With record set, the solver additionally logs every symbol row
// operation it performs as a schedOp over stable row slots (binary row
// r is slot r, dense row j is slot len(bin)+j) and, on success, stores
// the pruned schedule in sched. Because every site that mutates a
// symbol maps one-to-one to a recorded op, replaying the schedule over
// the same initial slot contents reproduces the solve byte-for-byte.

// binRow is a GF(2) equation: XOR of the symbols at the active and
// inactive columns equals sym.
type binRow struct {
	active map[int32]struct{}
	inact  map[int32]struct{}
	sym    []byte
}

// denseRow is a GF(256) equation: sum(coeff[c] * symbol[c]) = sym.
type denseRow struct {
	coeff []byte
	sym   []byte
}

// Column lifecycle inside a solve.
const (
	colAlive = iota
	colPivoted
	colInactive
)

type solver struct {
	l int // number of unknowns (intermediate symbols)
	t int // symbol size in bytes; 0 for structure-only rank checks

	bin   []binRow
	dense []denseRow

	// colRows[c] lists the binary rows whose active set contains column
	// c. Rows never regain a column and a column leaves every row at
	// once (pivot elimination or inactivation nils the whole list), so
	// the per-column list is append-only and always exact — and, unlike
	// the map-backed set it replaces, iterates in insertion order,
	// which makes pivot discovery and therefore the recorded schedule
	// deterministic.
	colRows [][]int32

	// Scratch arenas: row symbols and dense coefficients are carved out
	// of large chunks instead of one heap allocation per row, cutting
	// allocator and GC pressure during a solve. Chunks are sliced
	// forward only, so handed-out sub-slices are never reused.
	symArena   []byte
	coeffArena []byte

	// Recording state (see schedule.go).
	record bool
	ops    []schedOp
	sched  *schedule

	// Horner structure of the dense rows, set by addConstraintRows when
	// the dense rows are the MT x Gamma HDPC construction: hornerPicks[c]
	// are the two MT row picks of column c, and columns [0, hornerCols)
	// form the Gamma region. When set, pivot substitution into the dense
	// rows runs as one shared alpha-weighted chain (emitHornerChain)
	// instead of per-(row, pivot) dense multiply-accumulates. nil means
	// generic dense rows.
	hornerPicks [][2]int32
	hornerCols  int
}

func newSolver(l, t int) *solver {
	return &solver{
		l:       l,
		t:       t,
		colRows: make([][]int32, l),
	}
}

// addBinaryRow adds the equation XOR(cols) = sym. cols must be
// distinct (duplicates would corrupt the per-column row lists). sym is
// copied; nil is treated as the zero symbol.
func (s *solver) addBinaryRow(cols []int32, sym []byte) {
	rid := int32(len(s.bin))
	s.bin = append(s.bin, binRow{
		active: make(map[int32]struct{}, len(cols)),
		inact:  make(map[int32]struct{}),
		sym:    s.copySym(sym),
	})
	r := &s.bin[rid]
	for _, c := range cols {
		r.active[c] = struct{}{}
		s.colRows[c] = append(s.colRows[c], rid)
	}
}

// addDenseRow adds the equation sum(coeff[c]*symbol[c]) = sym. coeff
// must have length l. Both slices are copied.
func (s *solver) addDenseRow(coeff []byte, sym []byte) {
	cc := s.scratchCoeff(s.l)
	copy(cc, coeff)
	s.dense = append(s.dense, denseRow{coeff: cc, sym: s.copySym(sym)})
}

// emptySym is the shared zero-length symbol of structure-only solves
// (t == 0). It must be non-nil: solve's final nil check distinguishes
// "column never determined" from "determined with an empty symbol".
var emptySym = make([]byte, 0)

func (s *solver) copySym(sym []byte) []byte {
	if s.t == 0 {
		return emptySym
	}
	if len(s.symArena) < s.t {
		n := 64 * s.t
		if n < 1<<12 {
			n = 1 << 12
		}
		s.symArena = make([]byte, n)
	}
	out := s.symArena[:s.t:s.t]
	s.symArena = s.symArena[s.t:]
	copy(out, sym)
	return out
}

// scratchCoeff returns a zeroed n-byte coefficient row from the arena.
func (s *solver) scratchCoeff(n int) []byte {
	if n == 0 {
		return nil
	}
	if len(s.coeffArena) < n {
		m := 32 * n
		if m < 1<<12 {
			m = 1 << 12
		}
		s.coeffArena = make([]byte, m)
	}
	out := s.coeffArena[:n:n]
	s.coeffArena = s.coeffArena[n:]
	return out
}

// emitAdd performs (and, when recording, logs) syms[dst] ^= syms[src].
func (s *solver) emitAdd(dst, src int32, dsym, ssym []byte) {
	if s.record {
		s.ops = append(s.ops, schedOp{dst: dst, src: src, kind: opAdd})
	}
	if s.t > 0 {
		gf256.AddRow(dsym, ssym)
	}
}

// emitMulAdd performs/logs syms[dst] += beta * syms[src].
func (s *solver) emitMulAdd(dst, src int32, beta byte, dsym, ssym []byte) {
	if s.record {
		s.ops = append(s.ops, schedOp{dst: dst, src: src, kind: opMulAdd, beta: beta})
	}
	if s.t > 0 {
		gf256.MulAddRow(dsym, ssym, beta)
	}
}

// emitScale performs/logs syms[dst] *= beta.
func (s *solver) emitScale(dst int32, beta byte, dsym []byte) {
	if s.record {
		s.ops = append(s.ops, schedOp{dst: dst, src: dst, kind: opScale, beta: beta})
	}
	if s.t > 0 {
		gf256.ScaleRow(dsym, beta)
	}
}

type pivot struct {
	row, col int32
}

// emitHornerChain substitutes every pivoted Gamma-region column into
// the dense HDPC rows using their MT x Gamma structure. With y_c the
// (pre-back-substitution) symbol of the pivot row at column c, each
// dense row r owes
//
//	sum_c coeff_r[c] * y_c  =  sum_{j : MT[r][j]=1} Q_j,
//	Q_j = sum_{c <= j, c pivoted} alpha^(j-c) * y_c,
//
// because coeff_r[c] = sum_{j >= c, MT[r][j]=1} alpha^(j-c). Q_j obeys
// Q_j = alpha*Q_{j-1} + y_j, so one column-ascending walk with a single
// scratch symbol Q — scale by alpha, add the pivot row, XOR Q into the
// <= 2 picked rows — performs the whole substitution in O(L) cheap row
// ops instead of O(H * pivots) dense multiply-accumulates. Q lives in
// the extra schedule slot appended after every row slot; replays zero
// it along with the other non-source slots.
func (s *solver) emitHornerChain(pivots []pivot, nBin int32) {
	qSlot := nBin + int32(len(s.dense))
	rowOf := make([]int32, s.hornerCols)
	for i := range rowOf {
		rowOf[i] = -1
	}
	for _, pv := range pivots {
		if int(pv.col) < s.hornerCols {
			rowOf[pv.col] = pv.row
		}
	}
	var qsym []byte
	if s.t > 0 {
		qsym = s.copySym(nil) // zeroed scratch symbol
	}
	started := false
	for c := 0; c < s.hornerCols; c++ {
		if started {
			s.emitScale(qSlot, 2, qsym) // alpha step: Q *= alpha
		}
		if pr := rowOf[c]; pr >= 0 {
			s.emitAdd(qSlot, pr, qsym, s.bin[pr].sym)
			started = true
		}
		if !started {
			continue // Q is still zero; the picks would be no-ops
		}
		for _, r := range s.hornerPicks[c] {
			dr := &s.dense[r]
			s.emitAdd(nBin+r, qSlot, dr.sym, qsym)
		}
	}
}

// nSlots returns the slot count of the recorded schedule: one slot per
// row plus, when the Horner chain is in play, its Q scratch slot.
func (s *solver) nSlots() int {
	n := len(s.bin) + len(s.dense)
	if s.hornerPicks != nil && len(s.dense) > 0 {
		n++
	}
	return n
}

// solve returns the l intermediate symbols, or ErrSingular.
func (s *solver) solve() ([][]byte, error) {
	var (
		pivots   []pivot
		isPivot  = make([]bool, len(s.bin))
		colState = make([]uint8, s.l)
		inactive []int32
		inactIdx = make(map[int32]int)
		queue    []int32 // candidate degree-one rows (validated lazily)
		outSlot  []int32
	)
	if s.record {
		outSlot = make([]int32, s.l)
	}
	for rid, r := range s.bin {
		if len(r.active) == 1 {
			queue = append(queue, int32(rid))
		}
	}
	alive := s.l

	for alive > 0 {
		rid := int32(-1)
		for len(queue) > 0 {
			cand := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if !isPivot[cand] && len(s.bin[cand].active) == 1 {
				rid = cand
				break
			}
		}
		if rid >= 0 {
			r := &s.bin[rid]
			var c int32
			//polyvet:orderfree the guard above ensures len(r.active) == 1, so there is exactly one visit order
			for col := range r.active {
				c = col
			}
			// Eliminate c from every other row containing it. The pivot
			// row has no other active columns, so no fill-in occurs.
			for _, orid := range s.colRows[c] {
				if orid == rid {
					continue
				}
				o := &s.bin[orid]
				delete(o.active, c)
				symDiff(o.inact, r.inact)
				s.emitAdd(orid, rid, o.sym, r.sym)
				if len(o.active) == 1 {
					queue = append(queue, orid)
				}
			}
			s.colRows[c] = nil
			delete(r.active, c)
			isPivot[rid] = true
			colState[c] = colPivoted
			pivots = append(pivots, pivot{rid, c})
			alive--
			continue
		}
		// No degree-one row: inactivate the alive column with the most
		// row references, which maximises degree reduction elsewhere.
		// Alive columns with no references at all (only reachable via
		// HDPC rows) are inactivated too, so the dense phase determines
		// them.
		best, bestDeg := int32(-1), -1
		for c := int32(0); c < int32(s.l); c++ {
			if colState[c] != colAlive {
				continue
			}
			if d := len(s.colRows[c]); d > bestDeg {
				best, bestDeg = c, d
			}
		}
		if best < 0 {
			break // unreachable: alive > 0 implies an alive column exists
		}
		for _, orid := range s.colRows[best] {
			o := &s.bin[orid]
			delete(o.active, best)
			o.inact[best] = struct{}{}
			if len(o.active) == 1 {
				queue = append(queue, orid)
			}
		}
		s.colRows[best] = nil
		colState[best] = colInactive
		inactIdx[best] = len(inactive)
		inactive = append(inactive, best)
		alive--
	}

	// Assemble the dense system over the inactivated columns. eqSlot
	// carries each dense equation's row slot through the swaps below so
	// recorded operations stay addressed to stable slots.
	nBin := int32(len(s.bin))
	u := len(inactive)
	var eq [][]byte
	var eqSym [][]byte
	var eqSlot []int32
	for rid := range s.bin {
		r := &s.bin[rid]
		if isPivot[rid] || len(r.inact) == 0 {
			continue
		}
		coeff := s.scratchCoeff(u)
		for c := range r.inact {
			coeff[inactIdx[c]] = 1
		}
		eq = append(eq, coeff)
		eqSym = append(eqSym, r.sym)
		eqSlot = append(eqSlot, int32(rid))
	}
	if len(s.dense) > 0 && s.hornerPicks != nil {
		s.emitHornerChain(pivots, nBin)
	}
	for di := range s.dense {
		dr := &s.dense[di]
		for _, pv := range pivots {
			beta := dr.coeff[pv.col]
			if beta == 0 {
				continue
			}
			dr.coeff[pv.col] = 0
			pr := &s.bin[pv.row]
			if s.hornerPicks == nil || int(pv.col) >= s.hornerCols {
				// Gamma-region symbol work was done by the Horner chain;
				// only identity-region pivots (at most H, each a single
				// add) go through the generic dense substitution. The
				// coefficient bookkeeping below runs either way — beta is
				// the original coefficient at the pivot column, which the
				// chain's algebra relies on.
				s.emitMulAdd(nBin+int32(di), pv.row, beta, dr.sym, pr.sym)
			}
			for c := range pr.inact {
				dr.coeff[c] ^= beta // GF(256) add of beta * 1
			}
		}
		coeff := s.scratchCoeff(u)
		for i, c := range inactive {
			coeff[i] = dr.coeff[c]
		}
		eq = append(eq, coeff)
		eqSym = append(eqSym, dr.sym)
		eqSlot = append(eqSlot, nBin+int32(di))
	}

	// Gauss-Jordan over the dense system (recorded inline so the row
	// swaps can permute eqSlot alongside).
	if len(eq) < u {
		return nil, ErrSingular
	}
	rowOfCol := make([]int, u)
	row := 0
	for col := 0; col < u; col++ {
		sel := -1
		for r := row; r < len(eq); r++ {
			if eq[r][col] != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			return nil, ErrSingular
		}
		eq[row], eq[sel] = eq[sel], eq[row]
		eqSym[row], eqSym[sel] = eqSym[sel], eqSym[row]
		eqSlot[row], eqSlot[sel] = eqSlot[sel], eqSlot[row]
		if pc := eq[row][col]; pc != 1 {
			inv := gf256.Inv(pc)
			gf256.ScaleRow(eq[row], inv)
			s.emitScale(eqSlot[row], inv, eqSym[row])
		}
		for r := 0; r < len(eq); r++ {
			if r == row || eq[r][col] == 0 {
				continue
			}
			beta := eq[r][col]
			gf256.MulAddRow(eq[r], eq[row], beta)
			s.emitMulAdd(eqSlot[r], eqSlot[row], beta, eqSym[r], eqSym[row])
		}
		rowOfCol[col] = row
		row++
	}

	// Back-substitute. Pivot equations reference only inactive columns,
	// so order is irrelevant.
	out := make([][]byte, s.l)
	for i, c := range inactive {
		out[c] = eqSym[rowOfCol[i]]
		if s.record {
			outSlot[c] = eqSlot[rowOfCol[i]]
		}
	}
	for _, pv := range pivots {
		r := s.bin[pv.row]
		sym := r.sym
		//polyvet:orderfree XOR accumulation over distinct columns commutes byte-for-byte, and the recorded ops form a commuting group between this slot's definition and its uses
		for c := range r.inact {
			if s.record {
				s.ops = append(s.ops, schedOp{dst: pv.row, src: outSlot[c], kind: opAdd})
			}
			if s.t > 0 {
				gf256.AddRow(sym, out[c])
			}
		}
		out[pv.col] = sym
		if s.record {
			outSlot[pv.col] = pv.row
		}
	}
	for c := range out {
		if out[c] == nil {
			return nil, ErrSingular
		}
	}
	if s.record {
		s.sched = &schedule{nSlots: s.nSlots(), ops: s.ops, outSlot: outSlot}
		s.sched.prune()
	}
	return out, nil
}

// gaussJordanScratch solves the dense len(eq) x u system over GF(256)
// in place using only caller-provided storage: after it returns nil,
// unknown j's symbol is eqSym[rowOfCol[j]]. It is the partial decode
// path's solver — small (u = missing source count) and allocation-free.
//
//polyvet:noalloc partial-path dense solve over caller-owned scratch
func gaussJordanScratch(eq, eqSym [][]byte, u int, rowOfCol []int) error {
	if len(eq) < u {
		return ErrSingular
	}
	row := 0
	for col := 0; col < u; col++ {
		sel := -1
		for r := row; r < len(eq); r++ {
			if eq[r][col] != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			return ErrSingular
		}
		eq[row], eq[sel] = eq[sel], eq[row]
		eqSym[row], eqSym[sel] = eqSym[sel], eqSym[row]
		if pc := eq[row][col]; pc != 1 {
			inv := gf256.Inv(pc)
			gf256.ScaleRow(eq[row], inv)
			gf256.ScaleRow(eqSym[row], inv)
		}
		for r := 0; r < len(eq); r++ {
			if r == row || eq[r][col] == 0 {
				continue
			}
			beta := eq[r][col]
			gf256.MulAddRow(eq[r], eq[row], beta)
			gf256.MulAddRow(eqSym[r], eqSym[row], beta)
		}
		rowOfCol[col] = row
		row++
	}
	return nil
}

// symDiff applies dst ^= src in set form (symmetric difference).
func symDiff(dst, src map[int32]struct{}) {
	//polyvet:orderfree per-key toggle: src keys are distinct, so each dst entry flips exactly once regardless of visit order
	for k := range src {
		if _, ok := dst[k]; ok {
			delete(dst, k)
		} else {
			dst[k] = struct{}{}
		}
	}
}
