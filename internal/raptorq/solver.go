package raptorq

import (
	"errors"

	"polyraptor/internal/gf256"
)

// ErrSingular is returned when the received equations do not determine
// the intermediate symbols — the decoder needs more symbols.
var ErrSingular = errors.New("raptorq: equation system is singular")

// The solver performs sparse Gaussian elimination with column
// inactivation (the workhorse of RaptorQ decoding, RFC 6330 §5.4.2):
//
//  1. Peel: repeatedly pick a binary row whose active-column degree is
//     one; that (row, column) pair becomes a pivot. Because the pivot
//     row has a single active column, eliminating it from other rows
//     adds no active fill-in — only the pivot's inactive references and
//     its right-hand-side symbol propagate.
//  2. When no degree-one row exists, the highest-degree active column
//     is *inactivated*: removed from the active structure and deferred
//     to a small dense system.
//  3. The dense system over the inactivated columns is assembled from
//     the leftover binary rows and the HDPC rows (with pivoted columns
//     substituted out) and solved by Gauss-Jordan over GF(256).
//  4. Back-substitution through the pivot list yields every
//     intermediate symbol.
//
// Rows own their symbol buffers (inputs are copied), so callers may
// retry a failed solve on a fresh solver after collecting more rows.

// binRow is a GF(2) equation: XOR of the symbols at the active and
// inactive columns equals sym.
type binRow struct {
	active map[int32]struct{}
	inact  map[int32]struct{}
	sym    []byte
}

// denseRow is a GF(256) equation: sum(coeff[c] * symbol[c]) = sym.
type denseRow struct {
	coeff []byte
	sym   []byte
}

// Column lifecycle inside a solve.
const (
	colAlive = iota
	colPivoted
	colInactive
)

type solver struct {
	l int // number of unknowns (intermediate symbols)
	t int // symbol size in bytes; 0 for structure-only rank checks

	bin   []binRow
	dense []denseRow

	// colRows[c] is the set of binary-row indices whose active set
	// currently contains column c.
	colRows []map[int32]struct{}

	// Scratch arenas: row symbols and dense coefficients are carved out
	// of large chunks instead of one heap allocation per row, cutting
	// allocator and GC pressure during a solve. Chunks are sliced
	// forward only, so handed-out sub-slices are never reused.
	symArena   []byte
	coeffArena []byte
}

func newSolver(l, t int) *solver {
	return &solver{
		l:       l,
		t:       t,
		colRows: make([]map[int32]struct{}, l),
	}
}

// addBinaryRow adds the equation XOR(cols) = sym. cols must be
// distinct. sym is copied; nil is treated as the zero symbol.
func (s *solver) addBinaryRow(cols []int32, sym []byte) {
	rid := int32(len(s.bin))
	s.bin = append(s.bin, binRow{
		active: make(map[int32]struct{}, len(cols)),
		inact:  make(map[int32]struct{}),
		sym:    s.copySym(sym),
	})
	r := &s.bin[rid]
	for _, c := range cols {
		r.active[c] = struct{}{}
		if s.colRows[c] == nil {
			s.colRows[c] = make(map[int32]struct{})
		}
		s.colRows[c][rid] = struct{}{}
	}
}

// addDenseRow adds the equation sum(coeff[c]*symbol[c]) = sym. coeff
// must have length l. Both slices are copied.
func (s *solver) addDenseRow(coeff []byte, sym []byte) {
	cc := s.scratchCoeff(s.l)
	copy(cc, coeff)
	s.dense = append(s.dense, denseRow{coeff: cc, sym: s.copySym(sym)})
}

// emptySym is the shared zero-length symbol of structure-only solves
// (t == 0). It must be non-nil: solve's final nil check distinguishes
// "column never determined" from "determined with an empty symbol".
var emptySym = make([]byte, 0)

func (s *solver) copySym(sym []byte) []byte {
	if s.t == 0 {
		return emptySym
	}
	if len(s.symArena) < s.t {
		n := 64 * s.t
		if n < 1<<12 {
			n = 1 << 12
		}
		s.symArena = make([]byte, n)
	}
	out := s.symArena[:s.t:s.t]
	s.symArena = s.symArena[s.t:]
	copy(out, sym)
	return out
}

// scratchCoeff returns a zeroed n-byte coefficient row from the arena.
func (s *solver) scratchCoeff(n int) []byte {
	if n == 0 {
		return nil
	}
	if len(s.coeffArena) < n {
		m := 32 * n
		if m < 1<<12 {
			m = 1 << 12
		}
		s.coeffArena = make([]byte, m)
	}
	out := s.coeffArena[:n:n]
	s.coeffArena = s.coeffArena[n:]
	return out
}

type pivot struct {
	row, col int32
}

// solve returns the l intermediate symbols, or ErrSingular.
func (s *solver) solve() ([][]byte, error) {
	var (
		pivots   []pivot
		isPivot  = make([]bool, len(s.bin))
		colState = make([]uint8, s.l)
		inactive []int32
		inactIdx = make(map[int32]int)
		queue    []int32 // candidate degree-one rows (validated lazily)
	)
	for rid, r := range s.bin {
		if len(r.active) == 1 {
			queue = append(queue, int32(rid))
		}
	}
	alive := s.l

	for alive > 0 {
		rid := int32(-1)
		for len(queue) > 0 {
			cand := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if !isPivot[cand] && len(s.bin[cand].active) == 1 {
				rid = cand
				break
			}
		}
		if rid >= 0 {
			r := &s.bin[rid]
			var c int32
			//polyvet:orderfree the guard above ensures len(r.active) == 1, so there is exactly one visit order
			for col := range r.active {
				c = col
			}
			// Eliminate c from every other row containing it. The pivot
			// row has no other active columns, so no fill-in occurs.
			//polyvet:orderfree GF(256) row additions commute and each target row is touched exactly once; queue order only permutes pivot discovery, and any elimination order yields the same unique solution
			for orid := range s.colRows[c] {
				if orid == rid {
					continue
				}
				o := &s.bin[orid]
				delete(o.active, c)
				symDiff(o.inact, r.inact)
				if s.t > 0 {
					gf256.AddRow(o.sym, r.sym)
				}
				if len(o.active) == 1 {
					queue = append(queue, orid)
				}
			}
			s.colRows[c] = nil
			delete(r.active, c)
			isPivot[rid] = true
			colState[c] = colPivoted
			pivots = append(pivots, pivot{rid, c})
			alive--
			continue
		}
		// No degree-one row: inactivate the alive column with the most
		// row references, which maximises degree reduction elsewhere.
		// Alive columns with no references at all (only reachable via
		// HDPC rows) are inactivated too, so the dense phase determines
		// them.
		best, bestDeg := int32(-1), -1
		for c := int32(0); c < int32(s.l); c++ {
			if colState[c] != colAlive {
				continue
			}
			if d := len(s.colRows[c]); d > bestDeg {
				best, bestDeg = c, d
			}
		}
		if best < 0 {
			break // unreachable: alive > 0 implies an alive column exists
		}
		//polyvet:orderfree each referencing row is updated independently (delete + insert at fixed column best); queue order only permutes pivot discovery, not the solution
		for orid := range s.colRows[best] {
			o := &s.bin[orid]
			delete(o.active, best)
			o.inact[best] = struct{}{}
			if len(o.active) == 1 {
				queue = append(queue, orid)
			}
		}
		s.colRows[best] = nil
		colState[best] = colInactive
		inactIdx[best] = len(inactive)
		inactive = append(inactive, best)
		alive--
	}

	// Assemble the dense system over the inactivated columns.
	u := len(inactive)
	var eq [][]byte
	var eqSym [][]byte
	for rid := range s.bin {
		r := &s.bin[rid]
		if isPivot[rid] || len(r.inact) == 0 {
			continue
		}
		coeff := s.scratchCoeff(u)
		for c := range r.inact {
			coeff[inactIdx[c]] = 1
		}
		eq = append(eq, coeff)
		eqSym = append(eqSym, r.sym)
	}
	for di := range s.dense {
		dr := &s.dense[di]
		for _, pv := range pivots {
			beta := dr.coeff[pv.col]
			if beta == 0 {
				continue
			}
			dr.coeff[pv.col] = 0
			pr := &s.bin[pv.row]
			if s.t > 0 {
				gf256.MulAddRow(dr.sym, pr.sym, beta)
			}
			for c := range pr.inact {
				dr.coeff[c] ^= beta // GF(256) add of beta * 1
			}
		}
		coeff := s.scratchCoeff(u)
		for i, c := range inactive {
			coeff[i] = dr.coeff[c]
		}
		eq = append(eq, coeff)
		eqSym = append(eqSym, dr.sym)
	}

	vals, err := gaussJordan(eq, eqSym, u, s.t)
	if err != nil {
		return nil, err
	}

	// Back-substitute. Pivot equations reference only inactive columns,
	// so order is irrelevant.
	out := make([][]byte, s.l)
	for i, c := range inactive {
		out[c] = vals[i]
	}
	for _, pv := range pivots {
		r := s.bin[pv.row]
		sym := r.sym
		if s.t > 0 {
			//polyvet:orderfree XOR accumulation over distinct columns commutes byte-for-byte
			for c := range r.inact {
				gf256.AddRow(sym, out[c])
			}
		}
		out[pv.col] = sym
	}
	for c := range out {
		if out[c] == nil {
			return nil, ErrSingular
		}
	}
	return out, nil
}

// gaussJordan solves the dense m x u system over GF(256) and returns
// the u unknown symbols. Rows and symbols are mutated in place.
func gaussJordan(eq [][]byte, eqSym [][]byte, u, t int) ([][]byte, error) {
	if len(eq) < u {
		return nil, ErrSingular
	}
	rowOfCol := make([]int, u)
	row := 0
	for col := 0; col < u; col++ {
		sel := -1
		for r := row; r < len(eq); r++ {
			if eq[r][col] != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			return nil, ErrSingular
		}
		eq[row], eq[sel] = eq[sel], eq[row]
		eqSym[row], eqSym[sel] = eqSym[sel], eqSym[row]
		if pc := eq[row][col]; pc != 1 {
			inv := gf256.Inv(pc)
			gf256.ScaleRow(eq[row], inv)
			if t > 0 {
				gf256.ScaleRow(eqSym[row], inv)
			}
		}
		for r := 0; r < len(eq); r++ {
			if r == row || eq[r][col] == 0 {
				continue
			}
			beta := eq[r][col]
			gf256.MulAddRow(eq[r], eq[row], beta)
			if t > 0 {
				gf256.MulAddRow(eqSym[r], eqSym[row], beta)
			}
		}
		rowOfCol[col] = row
		row++
	}
	vals := make([][]byte, u)
	for col := 0; col < u; col++ {
		vals[col] = eqSym[rowOfCol[col]]
	}
	return vals, nil
}

// symDiff applies dst ^= src in set form (symmetric difference).
func symDiff(dst, src map[int32]struct{}) {
	//polyvet:orderfree per-key toggle: src keys are distinct, so each dst entry flips exactly once regardless of visit order
	for k := range src {
		if _, ok := dst[k]; ok {
			delete(dst, k)
		} else {
			dst[k] = struct{}{}
		}
	}
}
