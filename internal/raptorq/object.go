package raptorq

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Object-level framing: a large object is split into Z source blocks
// (RFC 6330 §4.4.1 Partition), each independently encoded/decoded.
// Symbols are addressed by (SBN, ESI) — source block number and
// encoding symbol identifier — exactly the addressing Polyraptor
// sessions use on the wire.

// Partition computes RFC 6330's Partition[I, J] = (IL, IS, JL, JS):
// J blocks covering I items, JL blocks of IL items followed by JS
// blocks of IS items.
func Partition(i, j int) (il, is, jl, js int) {
	il = ceilDiv(i, j)
	is = i / j
	jl = i - is*j
	js = j - jl
	return il, is, jl, js
}

// BlockLayout describes how an object of F bytes is partitioned.
type BlockLayout struct {
	// F is the object size in bytes.
	F int64
	// T is the symbol size in bytes.
	T int
	// K holds the number of source symbols of each of the Z blocks.
	K []int
}

// Z returns the number of source blocks.
func (bl BlockLayout) Z() int { return len(bl.K) }

// TotalSymbols returns the total number of source symbols across
// blocks (Kt).
func (bl BlockLayout) TotalSymbols() int {
	n := 0
	for _, k := range bl.K {
		n += k
	}
	return n
}

// NewBlockLayout partitions an object of size f into blocks of at most
// maxK symbols of size t.
func NewBlockLayout(f int64, t, maxK int) (BlockLayout, error) {
	if f <= 0 {
		return BlockLayout{}, fmt.Errorf("raptorq: object size %d", f)
	}
	if t <= 0 {
		return BlockLayout{}, fmt.Errorf("raptorq: symbol size %d", t)
	}
	if maxK <= 0 || maxK > MaxK {
		return BlockLayout{}, fmt.Errorf("raptorq: maxK %d out of range", maxK)
	}
	kt := int((f + int64(t) - 1) / int64(t))
	z := ceilDiv(kt, maxK)
	kl, ks, zl, zs := Partition(kt, z)
	ks2 := make([]int, 0, z)
	for i := 0; i < zl; i++ {
		ks2 = append(ks2, kl)
	}
	for i := 0; i < zs; i++ {
		ks2 = append(ks2, ks)
	}
	// A zero-K block can only appear when kt < z, which ceilDiv rules out.
	return BlockLayout{F: f, T: t, K: ks2}, nil
}

// ObjectEncoder encodes a whole object: one Encoder per source block.
type ObjectEncoder struct {
	layout BlockLayout
	blocks []*Encoder
}

// NewObjectEncoder partitions data into blocks of at most maxK symbols
// of size t and builds per-block encoders. The final symbol of the
// final block is zero-padded; the layout records the true object size
// so decoding strips the padding. Block encoders are built on a worker
// pool sized to GOMAXPROCS; use NewObjectEncoderWorkers to control it.
func NewObjectEncoder(data []byte, t, maxK int) (*ObjectEncoder, error) {
	return NewObjectEncoderWorkers(data, t, maxK, 0)
}

// NewObjectEncoderWorkers is NewObjectEncoder with an explicit worker
// count for the per-block precode solves; workers <= 0 selects
// GOMAXPROCS. Source blocks are independent, and results are placed by
// block index, so the produced encoder is identical for every worker
// count — parallelism changes wall-clock only, never output.
func NewObjectEncoderWorkers(data []byte, t, maxK, workers int) (*ObjectEncoder, error) {
	layout, err := NewBlockLayout(int64(len(data)), t, maxK)
	if err != nil {
		return nil, err
	}
	z := layout.Z()
	srcs := make([][][]byte, z)
	off := 0
	for bi, k := range layout.K {
		syms := make([][]byte, k)
		for i := 0; i < k; i++ {
			end := off + t
			if end <= len(data) {
				syms[i] = data[off:end]
			} else {
				// Zero-padded tail symbol.
				pad := make([]byte, t)
				copy(pad, data[off:])
				syms[i] = pad
			}
			off = end
		}
		srcs[bi] = syms
	}
	enc := &ObjectEncoder{layout: layout, blocks: make([]*Encoder, z)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > z {
		workers = z
	}
	if workers <= 1 {
		for bi := range srcs {
			e, err := NewEncoder(srcs[bi])
			if err != nil {
				return nil, err
			}
			enc.blocks[bi] = e
		}
		return enc, nil
	}
	errs := make([]error, z)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := int(next.Add(1)) - 1
				if bi >= z {
					return
				}
				e, err := NewEncoder(srcs[bi])
				if err != nil {
					errs[bi] = err
					continue
				}
				enc.blocks[bi] = e
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// Layout returns the object's block layout.
func (oe *ObjectEncoder) Layout() BlockLayout { return oe.layout }

// Block returns the encoder for source block sbn.
func (oe *ObjectEncoder) Block(sbn int) *Encoder { return oe.blocks[sbn] }

// Symbol returns encoding symbol (sbn, esi).
func (oe *ObjectEncoder) Symbol(sbn int, esi uint32) []byte {
	return oe.blocks[sbn].Symbol(esi)
}

// ObjectDecoder reassembles an object from (SBN, ESI, data) symbols.
type ObjectDecoder struct {
	layout BlockLayout
	blocks []*Decoder
	done   []bool
	nDone  int

	// workers bounds TryDecode's block parallelism; <= 0 means
	// GOMAXPROCS. Blocks decode independently and completion is
	// recorded by index, so the worker count never changes results.
	workers  int
	readyBuf []int
	okBuf    []bool
}

// NewObjectDecoder creates a decoder for an object with the given
// layout (communicated out-of-band, e.g. in Polyraptor's session
// establishment).
func NewObjectDecoder(layout BlockLayout) (*ObjectDecoder, error) {
	od := &ObjectDecoder{layout: layout, done: make([]bool, layout.Z())}
	for _, k := range layout.K {
		d, err := NewDecoder(k, layout.T)
		if err != nil {
			return nil, err
		}
		od.blocks = append(od.blocks, d)
	}
	return od, nil
}

// AddSymbol feeds one received symbol. It returns true if the symbol
// was new.
func (od *ObjectDecoder) AddSymbol(sbn int, esi uint32, data []byte) (bool, error) {
	if sbn < 0 || sbn >= len(od.blocks) {
		return false, fmt.Errorf("raptorq: SBN %d out of range [0,%d)", sbn, len(od.blocks))
	}
	return od.blocks[sbn].AddSymbol(esi, data)
}

// SetWorkers bounds the block parallelism of TryDecode; n <= 0 selects
// GOMAXPROCS. Must not be called concurrently with TryDecode.
func (od *ObjectDecoder) SetWorkers(n int) { od.workers = n }

// TryDecode attempts to decode every ready, not-yet-decoded block and
// reports whether the whole object is now recovered. When two or more
// blocks are ready it fans the per-block solves out over a worker
// pool; completion flags are written by block index afterwards, so
// results and observable state are identical to the serial order.
func (od *ObjectDecoder) TryDecode() bool {
	ready := od.readyBuf[:0]
	for i, d := range od.blocks {
		if !od.done[i] && d.Ready() {
			ready = append(ready, i)
		}
	}
	od.readyBuf = ready
	workers := od.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ready) {
		workers = len(ready)
	}
	if workers <= 1 || len(ready) < 2 {
		for _, i := range ready {
			if _, err := od.blocks[i].Decode(); err == nil {
				od.done[i] = true
				od.nDone++
			}
		}
		return od.nDone == len(od.blocks)
	}
	if cap(od.okBuf) < len(ready) {
		od.okBuf = make([]bool, len(ready))
	}
	ok := od.okBuf[:len(ready)]
	clear(ok)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(ready) {
					return
				}
				if _, err := od.blocks[ready[j]].Decode(); err == nil {
					ok[j] = true
				}
			}
		}()
	}
	wg.Wait()
	for j, i := range ready {
		if ok[j] {
			od.done[i] = true
			od.nDone++
		}
	}
	return od.nDone == len(od.blocks)
}

// Complete reports whether every block has been decoded.
func (od *ObjectDecoder) Complete() bool { return od.nDone == len(od.blocks) }

// BlockComplete reports whether block sbn has been decoded.
func (od *ObjectDecoder) BlockComplete(sbn int) bool { return od.done[sbn] }

// Object returns the reassembled object with padding stripped. It
// errors if any block is still undecoded.
func (od *ObjectDecoder) Object() ([]byte, error) {
	if !od.Complete() {
		return nil, errors.New("raptorq: object incomplete")
	}
	out := make([]byte, 0, od.layout.F)
	for i, d := range od.blocks {
		src, err := d.Decode()
		if err != nil {
			return nil, err
		}
		for j := range src {
			out = append(out, src[j]...)
		}
		_ = i
	}
	return out[:od.layout.F], nil
}
