package raptorq

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"polyraptor/internal/gf256"
)

// uncachedSymbol recomputes encoding symbol esi the way the pre-cache
// encoder did: a fresh LTIndices expansion XORed over the intermediate
// symbols, bypassing ltIndices entirely.
func uncachedSymbol(e *Encoder, esi uint32) []byte {
	out := make([]byte, e.t)
	if int(esi) < e.p.K {
		copy(out, e.src[esi])
		return out
	}
	for _, c := range e.p.LTIndices(esi) {
		gf256.AddRow(out, e.c[c])
	}
	return out
}

// TestEncoderCacheParity: symbols produced through the LT-expansion
// cache (first touch, memo hit, and source fast path) must be
// byte-identical to the uncached scalar-era computation.
func TestEncoderCacheParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 13, 64} {
		src := make([][]byte, k)
		for i := range src {
			src[i] = make([]byte, 96)
			rng.Read(src[i])
		}
		enc, err := NewEncoder(src)
		if err != nil {
			t.Fatal(err)
		}
		// Two passes over the same ESIs: pass 1 populates the repair
		// memo, pass 2 must serve hits with identical bytes.
		for pass := 0; pass < 2; pass++ {
			for esi := uint32(0); esi < uint32(2*k+5); esi++ {
				want := uncachedSymbol(enc, esi)
				got := enc.Symbol(esi)
				if !bytes.Equal(got, want) {
					t.Fatalf("K=%d esi=%d pass=%d: cached symbol diverges", k, esi, pass)
				}
			}
		}
	}
}

// TestEncoderCacheBeyondCap: ESIs past the memo cap must still encode
// correctly (computed, just not stored).
func TestEncoderCacheBeyondCap(t *testing.T) {
	src := [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}}
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the memo past its cap, then verify a fresh high ESI and a
	// cached low one.
	for i := 0; i < ltRepairCacheCap+10; i++ {
		enc.Symbol(uint32(enc.K() + i))
	}
	if len(enc.ltRepair) > ltRepairCacheCap {
		t.Fatalf("memo grew past cap: %d", len(enc.ltRepair))
	}
	for _, esi := range []uint32{uint32(enc.K()), uint32(enc.K() + ltRepairCacheCap + 7), 1 << 30} {
		if !bytes.Equal(enc.Symbol(esi), uncachedSymbol(enc, esi)) {
			t.Fatalf("esi %d diverges beyond cache cap", esi)
		}
	}
}

// TestEncoderConcurrentSymbols: the documented contract — an Encoder
// is safe for concurrent use after construction — now also covers the
// memo. Run with -race.
func TestEncoderConcurrentSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := make([][]byte, 32)
	for i := range src {
		src[i] = make([]byte, 64)
		rng.Read(src[i])
	}
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 80)
	for esi := range want {
		want[esi] = uncachedSymbol(enc, uint32(esi))
	}
	var wg sync.WaitGroup
	errs := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for round := 0; round < 4; round++ {
				for esi := range want {
					buf = enc.AppendSymbol(buf[:0], uint32(esi))
					if !bytes.Equal(buf, want[esi]) {
						errs[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, n := range errs {
		if n != 0 {
			t.Fatalf("goroutine %d saw %d divergent symbols", g, n)
		}
	}
}
