package raptorq

import (
	"math/rand"
	"testing"
)

// Steady-state benchmarks for the layered codec pipeline. These mirror
// the perfbench codec cells (which drive ALLOC_BUDGET.json); keeping
// them here too makes `go test -bench` useful during codec work.

func benchSource(k, t int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, t)
		rng.Read(src[i])
	}
	return src
}

func BenchmarkEncodeReset(b *testing.B) {
	const k, t = 256, 1024
	src := benchSource(k, t)
	enc, err := NewEncoder(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * t))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Reset(src); err != nil {
			b.Fatal(err)
		}
	}
}

type benchArrival struct {
	esi uint32
	sym []byte
}

func benchArrivals(b *testing.B, k, t int, keep float64) []benchArrival {
	src := benchSource(k, t)
	enc, err := NewEncoder(src)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var arrivals []benchArrival
	for i := 0; i < k; i++ {
		if rng.Float64() < keep {
			arrivals = append(arrivals, benchArrival{uint32(i), enc.Symbol(uint32(i))})
		}
	}
	for esi := uint32(k); len(arrivals) < k+2; esi++ {
		arrivals = append(arrivals, benchArrival{esi, enc.Symbol(esi)})
	}
	return arrivals
}

func benchDecode(b *testing.B, keep float64) {
	const k, t = 256, 1024
	arrivals := benchArrivals(b, k, t, keep)
	dec, err := NewDecoder(k, t)
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		dec.Reset()
		for _, a := range arrivals {
			if _, err := dec.AddSymbol(a.esi, a.sym); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm caches and arenas
	b.SetBytes(int64(k * t))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkDecodeSystematic(b *testing.B) { benchDecode(b, 1.01) }
func BenchmarkDecode5pctLoss(b *testing.B)   { benchDecode(b, 0.95) }
func BenchmarkDecode30pctLoss(b *testing.B)  { benchDecode(b, 0.70) }
