// Package raptorq implements a systematic, rateless erasure code with
// the architecture of RaptorQ (RFC 6330): K source symbols are mapped
// to L = K + S + H intermediate symbols constrained by S sparse binary
// LDPC rows and H dense GF(256) HDPC rows; encoding symbols (source and
// repair) are LT combinations of the intermediates, so the code is
// systematic (encoding symbol ESI < K is exactly source symbol ESI) and
// rateless (any number of repair symbols can be generated). Decoding
// uses sparse Gaussian elimination with column inactivation.
//
// Deviation from RFC 6330, by necessity of an offline build: the RFC's
// large numeric lookup tables (systematic indices Table 2, Rand tables
// V0..V3) are replaced by algorithmically derived equivalents — the
// S/H parameter derivation follows the published Raptor derivation
// (RFC 5053 §5.4.2.3) and the systematic index is discovered by a
// deterministic rank search shared by encoder and decoder. The
// decisive properties (systematic output, statistically unique repair
// symbols, decode failure probability decaying ~two decades per symbol
// of overhead) are enforced by the test suite. See DESIGN.md.
package raptorq

import (
	"fmt"
	"sync"
)

// MaxK is the largest supported number of source symbols per block,
// mirroring RFC 6330's limit of 56403.
const MaxK = 56403

// Params holds the derived code parameters for a source block of K
// source symbols.
//
// The L = K + S + H intermediate symbols are split into W "LT" columns
// [0, W) and P = L - W "permanently inactive" (PI) columns [W, L), with
// the H HDPC symbols occupying the last H PI columns (RFC 6330
// §5.3.3.3). Every encoding symbol combines an LT walk over the W
// columns with a short PI walk over the P columns; the PI part is what
// collapses the probability of low-weight dependencies (duplicate
// tuples, degree-2 cycles) and gives the code its steep failure curve.
type Params struct {
	// K is the number of source symbols.
	K int
	// S is the number of LDPC (sparse binary) constraint symbols.
	// S is prime.
	S int
	// H is the number of HDPC (dense GF(256)) constraint symbols.
	H int
	// L = K + S + H is the number of intermediate symbols.
	L int
	// W is the number of LT intermediate columns; B = W - S of them are
	// free and S carry the LDPC identities.
	W int
	// Wp is the smallest prime >= W (LT walk modulus).
	Wp int
	// P = L - W is the number of permanently inactive columns.
	P int
	// Pp is the smallest prime >= P (PI walk modulus).
	Pp int
	// SIdx is the systematic index: the smallest seed for which the
	// precode constraint matrix is invertible. It is derived from K
	// alone, so encoder and decoder always agree.
	SIdx int
}

// B returns the number of free LT intermediate columns (W - S).
func (p Params) B() int { return p.W - p.S }

// NewParams derives code parameters for K source symbols. The
// systematic index search runs at most a handful of structure-only
// eliminations and is cached per K.
func NewParams(k int) (Params, error) {
	if k < 1 || k > MaxK {
		return Params{}, fmt.Errorf("raptorq: K=%d out of range [1,%d]", k, MaxK)
	}
	p := baseParams(k)
	sidx, err := systematicIndex(p)
	if err != nil {
		return Params{}, err
	}
	p.SIdx = sidx
	return p, nil
}

// baseParams computes everything except the systematic index.
func baseParams(k int) Params {
	// X is the smallest positive integer with X*(X-1) >= 2K
	// (RFC 5053 §5.4.2.3).
	x := 1
	for x*(x-1) < 2*k {
		x++
	}
	// S is the smallest prime >= ceil(K/100) + X.
	s := nextPrime(ceilDiv(k, 100) + x)
	// H is the smallest integer with choose(H, ceil(H/2)) >= K + S.
	h := 1
	for choose(h, (h+1)/2) < int64(k+s) {
		h++
	}
	l := k + s + h
	// PI region: the H HDPC symbols plus a few extra columns. Extra PI
	// columns sharpen the failure curve; they are capped so that at
	// least one free LT column remains (B = W - S >= 1, i.e.
	// P <= K + H - 1).
	extra := 2 + ceilDiv(k, 100)
	if extra > 16 {
		extra = 16
	}
	p := h + extra
	if p > k+h-1 {
		p = k + h - 1
	}
	if p < h {
		p = h
	}
	w := l - p
	return Params{
		K: k, S: s, H: h, L: l,
		W: w, Wp: nextPrime(w),
		P: p, Pp: nextPrime(p),
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func nextPrime(n int) int {
	for !isPrime(n) {
		n++
	}
	return n
}

// choose returns C(n, k), saturating at a value comfortably above any
// K + S this package can produce.
func choose(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
		if c > 1<<40 {
			return 1 << 40
		}
	}
	return c
}

var (
	sidxMu    sync.Mutex
	sidxCache = map[int]int{}
)

// systematicIndex finds the smallest seed j such that the precode
// matrix for (p, j) has full rank, by running the structural part of
// the solver with zero-length symbols. The search is deterministic, so
// encoder and decoder derive identical parameters from K alone.
func systematicIndex(p Params) (int, error) {
	sidxMu.Lock()
	if j, ok := sidxCache[p.K]; ok {
		sidxMu.Unlock()
		return j, nil
	}
	sidxMu.Unlock()
	for j := 0; j < 64; j++ {
		cand := p
		cand.SIdx = j
		if precodeRankOK(cand) {
			sidxMu.Lock()
			sidxCache[p.K] = j
			sidxMu.Unlock()
			return j, nil
		}
	}
	return 0, fmt.Errorf("raptorq: no systematic index found for K=%d", p.K)
}

// precodeRankOK reports whether the L x L precode constraint matrix
// (S LDPC rows, H HDPC rows, K LT rows for ESIs 0..K-1) is invertible.
// It runs the regular solver with zero-length symbols so only the
// structural elimination cost is paid.
func precodeRankOK(p Params) bool {
	s := newSolver(p.L, 0)
	addConstraintRows(s, p)
	for i := 0; i < p.K; i++ {
		s.addBinaryRow(p.LTIndices(uint32(i)), nil)
	}
	_, err := s.solve()
	return err == nil
}
